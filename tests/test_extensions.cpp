// Tests for the §VI extension modules: sybil defense, graph anonymization /
// de-anonymization, and attribute inference.
#include <gtest/gtest.h>

#include "dosn/social/anonymize.hpp"
#include "dosn/social/graph_gen.hpp"
#include "dosn/social/inference.hpp"
#include "dosn/social/sybil.hpp"

namespace dosn::social {
namespace {

// --- SybilGuard ---

class SybilTest : public ::testing::Test {
 protected:
  util::Rng rng_{42};
};

TEST_F(SybilTest, PlantedRegionHasExpectedShape) {
  SocialGraph graph = wattsStrogatz(60, 3, 0.1, rng_);
  const std::size_t honestEdges = graph.edgeCount();
  const auto sybils = plantSybilRegion(graph, 20, 3, rng_);
  EXPECT_EQ(sybils.size(), 20u);
  EXPECT_EQ(graph.userCount(), 80u);
  EXPECT_GT(graph.edgeCount(), honestEdges + 20);  // ring + chords + attack
  // Attack edges are scarce: at most 3 sybil-honest edges.
  std::size_t attackEdges = 0;
  for (const UserId& s : sybils) {
    for (const UserId& f : graph.friendsOf(s)) {
      if (f.rfind("sybil", 0) != 0) ++attackEdges;
    }
  }
  EXPECT_LE(attackEdges, 3u);
}

TEST_F(SybilTest, HonestUsersIntersectStrongly) {
  SocialGraph graph = wattsStrogatz(80, 4, 0.1, rng_);
  SybilGuardConfig config{10, 16, 0.2};
  const SybilGuard guard(graph, config, rng_);
  std::size_t accepted = 0;
  std::size_t trials = 0;
  for (int i = 0; i < 10; ++i) {
    for (int j = 10; j < 20; ++j) {
      if (i == j) continue;
      ++trials;
      if (guard.accepts(syntheticUser(static_cast<std::size_t>(i) * 3),
                        syntheticUser(static_cast<std::size_t>(j) * 4))) {
        ++accepted;
      }
    }
  }
  EXPECT_GT(static_cast<double>(accepted) / static_cast<double>(trials), 0.8);
}

TEST_F(SybilTest, SybilsWithFewAttackEdgesRejected) {
  SocialGraph graph = wattsStrogatz(100, 4, 0.1, rng_);
  const auto sybils = plantSybilRegion(graph, 30, 2, rng_);
  SybilGuardConfig config{10, 16, 0.2};
  const SybilGuard guard(graph, config, rng_);
  std::size_t accepted = 0;
  std::size_t trials = 0;
  for (int v = 0; v < 10; ++v) {
    for (std::size_t s = 0; s < sybils.size(); s += 5) {
      ++trials;
      if (guard.accepts(syntheticUser(static_cast<std::size_t>(v) * 9), sybils[s])) {
        ++accepted;
      }
    }
  }
  EXPECT_LT(static_cast<double>(accepted) / static_cast<double>(trials), 0.3);
}

TEST_F(SybilTest, IntersectionFractionSymmetricallyBounded) {
  SocialGraph graph = wattsStrogatz(40, 3, 0.1, rng_);
  const SybilGuard guard(graph, SybilGuardConfig{}, rng_);
  const double f = guard.intersectionFraction("u0", "u20");
  EXPECT_GE(f, 0.0);
  EXPECT_LE(f, 1.0);
  EXPECT_EQ(guard.intersectionFraction("ghost", "u0"), 0.0);
}

// --- Anonymization ---

class AnonymizeTest : public ::testing::Test {
 protected:
  util::Rng rng_{7};
};

TEST_F(AnonymizeTest, PseudonymsPreserveStructure) {
  const SocialGraph graph = erdosRenyi(50, 0.1, rng_);
  const AnonymizedGraph published = anonymize(graph, rng_);
  EXPECT_EQ(published.graph.userCount(), graph.userCount());
  EXPECT_EQ(published.graph.edgeCount(), graph.edgeCount());
  // No original id leaks into the published graph.
  for (const UserId& u : published.graph.users()) {
    EXPECT_EQ(u.rfind("n", 0), 0u) << u;
  }
  // The mapping is a bijection.
  std::set<UserId> pseudonyms;
  for (const auto& [user, pseudonym] : published.pseudonymOf) {
    EXPECT_TRUE(pseudonyms.insert(pseudonym).second);
  }
  EXPECT_EQ(pseudonyms.size(), graph.userCount());
}

TEST_F(AnonymizeTest, PerturbationKeepsEdgeCountApproximately) {
  const SocialGraph graph = erdosRenyi(60, 0.15, rng_);
  const AnonymizedGraph published = anonymizePerturbed(graph, 0.3, rng_);
  const double ratio = static_cast<double>(published.graph.edgeCount()) /
                       static_cast<double>(graph.edgeCount());
  EXPECT_GT(ratio, 0.85);
  EXPECT_LE(ratio, 1.05);
}

TEST_F(AnonymizeTest, DegreeAttackBeatsChanceOnScaleFree) {
  const SocialGraph graph = barabasiAlbert(200, 3, rng_);
  const AnonymizedGraph published = anonymize(graph, rng_);
  const auto attack = degreeAttack(graph, published.graph);
  const double rate = reidentificationRate(published, attack);
  // Chance would be 1/200 = 0.5%; degree structure does far better on hubs.
  EXPECT_GT(rate, 0.05);
}

TEST_F(AnonymizeTest, PerturbationReducesReidentification) {
  const SocialGraph graph = barabasiAlbert(200, 3, rng_);
  const AnonymizedGraph naive = anonymize(graph, rng_);
  const AnonymizedGraph perturbed = anonymizePerturbed(graph, 0.5, rng_);
  const double naiveRate =
      reidentificationRate(naive, degreeAttack(graph, naive.graph));
  const double perturbedRate =
      reidentificationRate(perturbed, degreeAttack(graph, perturbed.graph));
  EXPECT_LE(perturbedRate, naiveRate);
}

TEST_F(AnonymizeTest, ReidentificationRateBounds) {
  const SocialGraph graph = erdosRenyi(30, 0.2, rng_);
  const AnonymizedGraph published = anonymize(graph, rng_);
  // A perfect oracle attack scores 1.0.
  std::map<UserId, UserId> oracle = published.pseudonymOf;
  EXPECT_DOUBLE_EQ(reidentificationRate(published, oracle), 1.0);
  // An empty attack scores 0.
  EXPECT_DOUBLE_EQ(reidentificationRate(published, {}), 0.0);
}

// --- Attribute inference ---

class InferenceTest : public ::testing::Test {
 protected:
  util::Rng rng_{11};
};

TEST_F(InferenceTest, WorldBookkeeping) {
  AttributeWorld world;
  world.setTrueValue("alice", "red");
  world.setPublished("alice", true);
  EXPECT_EQ(world.visibleValue("alice").value(), "red");
  EXPECT_FALSE(world.isHidden("alice"));
  world.setPublished("alice", false);
  EXPECT_FALSE(world.visibleValue("alice").has_value());
  EXPECT_TRUE(world.isHidden("alice"));
  EXPECT_EQ(world.trueValue("alice").value(), "red");
  EXPECT_FALSE(world.trueValue("ghost").has_value());
}

TEST_F(InferenceTest, MajorityVoteWorks) {
  SocialGraph graph;
  graph.addFriendship("target", "f1");
  graph.addFriendship("target", "f2");
  graph.addFriendship("target", "f3");
  AttributeWorld world;
  world.setTrueValue("target", "blue");
  world.setPublished("target", false);
  for (const char* f : {"f1", "f2"}) {
    world.setTrueValue(f, "blue");
    world.setPublished(f, true);
  }
  world.setTrueValue("f3", "red");
  world.setPublished("f3", true);
  EXPECT_EQ(inferByNeighborMajority(graph, world, "target").value(), "blue");
}

TEST_F(InferenceTest, NoVisibleFriendsNoGuess) {
  SocialGraph graph;
  graph.addFriendship("target", "f1");
  AttributeWorld world;
  world.setTrueValue("target", "x");
  world.setPublished("target", false);
  world.setTrueValue("f1", "x");
  world.setPublished("f1", false);
  EXPECT_FALSE(inferByNeighborMajority(graph, world, "target").has_value());
}

TEST_F(InferenceTest, HomophilyDrivesLeakage) {
  const SocialGraph graph = wattsStrogatz(200, 4, 0.1, rng_);
  const AttributeWorld strong =
      plantHomophilousAttribute(graph, 4, 0.95, 0.3, rng_);
  const AttributeWorld none =
      plantHomophilousAttribute(graph, 4, 0.0, 0.3, rng_);
  const double strongAcc = runInferenceAttack(graph, strong).accuracyOnInferred();
  const double noneAcc = runInferenceAttack(graph, none).accuracyOnInferred();
  EXPECT_GT(strongAcc, 0.6);
  // Without homophily the attack hovers near the 1/4 random baseline.
  EXPECT_LT(noneAcc, 0.45);
  EXPECT_GT(strongAcc, noneAcc);
}

TEST_F(InferenceTest, ReportArithmetic) {
  InferenceReport report;
  report.hidden = 10;
  report.inferred = 8;
  report.correct = 6;
  EXPECT_DOUBLE_EQ(report.accuracyOnInferred(), 0.75);
  EXPECT_DOUBLE_EQ(report.leakRate(), 0.6);
  EXPECT_DOUBLE_EQ(InferenceReport{}.accuracyOnInferred(), 0.0);
}

}  // namespace
}  // namespace dosn::social
