// Per-destination RTT estimation (net/rtt.hpp) and its wiring through the
// shared RPC endpoint (CallOptions::adaptiveTimeout):
//
//  - the RFC 6298 arithmetic against hand-computed values (first sample,
//    the RTTVAR-before-SRTT update order, the SRTT+4*RTTVAR timeout);
//  - Karn's rule enforced by the endpoint: a call that was retransmitted
//    never samples, a call answered on its first attempt always does;
//  - clamp bounds and the persistent cross-call backoff that lets a
//    mis-trained estimator escape the "timeout < RTT forever" trap;
//  - PeerStateTable LRU semantics (deterministic eviction, no clocks);
//  - two deterministic latency-model sweeps through sim/faults.hpp delay
//    rules — bimodal (half the fleet slow) and drifting (a global delay
//    window) — asserting that at the same seed the adaptive policy completes
//    no fewer calls than the fixed baseline while firing strictly fewer
//    spurious timeouts and retransmissions.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "dosn/net/rpc_endpoint.hpp"
#include "dosn/net/rtt.hpp"
#include "dosn/sim/faults.hpp"
#include "dosn/sim/metrics.hpp"
#include "dosn/sim/network.hpp"
#include "dosn/util/codec.hpp"

namespace dosn {
namespace {

using net::CallOptions;
using net::OpenCallOptions;
using net::PeerStateTable;
using net::PeerTableConfig;
using net::RetryPolicy;
using net::RpcEndpoint;
using net::RttEstimator;
using sim::kMillisecond;
using sim::kSecond;
using sim::Message;
using sim::NodeAddr;
using sim::SimTime;

// --- RFC 6298 arithmetic -------------------------------------------------

TEST(RttEstimator, FirstSampleInitializesPerRfc6298) {
  RttEstimator est;
  EXPECT_FALSE(est.hasSample());
  est.addSample(100 * kMillisecond);
  EXPECT_TRUE(est.hasSample());
  // SRTT = R, RTTVAR = R/2, timeout = SRTT + 4*RTTVAR = 3R.
  EXPECT_DOUBLE_EQ(est.srtt(), 100000.0);
  EXPECT_DOUBLE_EQ(est.rttvar(), 50000.0);
  EXPECT_EQ(est.timeout(0), 300 * kMillisecond);
}

TEST(RttEstimator, SubsequentSamplesFollowRfc6298Arithmetic) {
  RttEstimator est;
  est.addSample(100 * kMillisecond);
  // R = 50ms. RTTVAR first (using the OLD srtt), then SRTT:
  //   RTTVAR = 0.75*50000 + 0.25*|100000 - 50000| = 50000
  //   SRTT   = 0.875*100000 + 0.125*50000        = 93750
  est.addSample(50 * kMillisecond);
  EXPECT_DOUBLE_EQ(est.rttvar(), 50000.0);
  EXPECT_DOUBLE_EQ(est.srtt(), 93750.0);
  EXPECT_EQ(est.timeout(0), SimTime{293750});
  // R = 150ms:
  //   RTTVAR = 0.75*50000 + 0.25*|93750 - 150000| = 51562.5
  //   SRTT   = 0.875*93750 + 0.125*150000         = 100781.25
  est.addSample(150 * kMillisecond);
  EXPECT_DOUBLE_EQ(est.rttvar(), 51562.5);
  EXPECT_DOUBLE_EQ(est.srtt(), 100781.25);
  EXPECT_EQ(est.samples(), 3u);
}

TEST(RttEstimator, FallbackRulesBeforeFirstSample) {
  RttEstimator est;
  // No opinion yet: the caller's fixed timeout passes through...
  EXPECT_EQ(est.timeout(400 * kMillisecond), 400 * kMillisecond);
  // ...but still backs off on timeouts (the escape hatch works even before
  // the first sample) and clamps.
  est.onTimeout();
  EXPECT_EQ(est.timeout(400 * kMillisecond), 800 * kMillisecond);
  est.onTimeout();
  EXPECT_EQ(est.timeout(400 * kMillisecond), 1600 * kMillisecond);
}

TEST(RttEstimator, TimeoutClampsToMinimum) {
  RttEstimator est;
  est.addSample(1 * kMillisecond);  // raw SRTT+4*RTTVAR = 3ms, under the floor
  EXPECT_EQ(est.timeout(0), est.config().minTimeout);
}

TEST(RttEstimator, TimeoutClampsToMaximum) {
  RttEstimator est;
  est.addSample(5 * kSecond);  // raw = 15s, over the 10s ceiling
  EXPECT_EQ(est.timeout(0), est.config().maxTimeout);
}

TEST(RttEstimator, BackoffDoublesAndCollapsesOnSample) {
  RttEstimator est;
  est.addSample(100 * kMillisecond);
  EXPECT_EQ(est.timeout(0), 300 * kMillisecond);
  est.onTimeout();
  EXPECT_EQ(est.consecutiveTimeouts(), 1u);
  EXPECT_EQ(est.timeout(0), 600 * kMillisecond);
  est.onTimeout();
  EXPECT_EQ(est.timeout(0), 1200 * kMillisecond);
  // A valid sample collapses the backoff entirely:
  //   RTTVAR = 0.75*50000 + 0.25*0 = 37500, SRTT = 100000.
  est.addSample(100 * kMillisecond);
  EXPECT_EQ(est.consecutiveTimeouts(), 0u);
  EXPECT_EQ(est.timeout(0), SimTime{250000});
}

TEST(RttEstimator, BackoffSaturatesWithoutOverflow) {
  RttEstimator est;
  est.addSample(100 * kMillisecond);
  for (int i = 0; i < 200; ++i) est.onTimeout();
  // 2^200 would overflow any integer type; the clamp catches the inf/huge
  // double and the counter saturates instead of wrapping.
  EXPECT_EQ(est.timeout(0), est.config().maxTimeout);
  EXPECT_LE(est.consecutiveTimeouts(), 63u);
}

// --- PeerStateTable ------------------------------------------------------

TEST(PeerStateTable, CreatesOnFirstUseAndFindsWithoutCreating) {
  PeerStateTable table;
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.find(7), nullptr);
  EXPECT_EQ(table.size(), 0u);  // find() never creates
  table.state(7).rtt.addSample(80 * kMillisecond);
  ASSERT_NE(table.find(7), nullptr);
  EXPECT_TRUE(table.find(7)->rtt.hasSample());
  EXPECT_EQ(table.size(), 1u);
}

TEST(PeerStateTable, EvictsLeastRecentlyUsed) {
  PeerTableConfig config;
  config.maxPeers = 2;
  PeerStateTable table(config);
  table.state(1);
  table.state(2);
  table.state(3);  // evicts 1, the least recently touched
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.find(1), nullptr);
  EXPECT_NE(table.find(2), nullptr);
  EXPECT_NE(table.find(3), nullptr);
}

TEST(PeerStateTable, TouchRefreshesLruOrder) {
  PeerTableConfig config;
  config.maxPeers = 2;
  PeerStateTable table(config);
  table.state(1);
  table.state(2);
  table.state(1);  // refresh: 2 is now the oldest
  table.state(3);
  EXPECT_NE(table.find(1), nullptr);
  EXPECT_EQ(table.find(2), nullptr);
  EXPECT_NE(table.find(3), nullptr);
}

TEST(PeerStateTable, NewEntryIsNeverItsOwnEvictionVictim) {
  PeerTableConfig config;
  config.maxPeers = 1;
  PeerStateTable table(config);
  table.state(1);
  PeerStateTable::PeerState& two = table.state(2);
  two.rtt.addSample(60 * kMillisecond);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.find(1), nullptr);
  ASSERT_NE(table.find(2), nullptr);  // the entry just handed out survived
  EXPECT_TRUE(table.find(2)->rtt.hasSample());
}

TEST(PeerStateTable, EraseAndSampledPeers) {
  PeerStateTable table;
  table.state(1).rtt.addSample(50 * kMillisecond);
  table.state(2);  // tracked but never sampled
  EXPECT_EQ(table.sampledPeers(), 1u);
  EXPECT_TRUE(table.erase(1));
  EXPECT_FALSE(table.erase(1));
  EXPECT_EQ(table.sampledPeers(), 0u);
  EXPECT_EQ(table.size(), 1u);
}

// --- endpoint wiring: Karn's rule, sampling, gauges ----------------------

class AdaptiveRpcTest : public ::testing::Test {
 protected:
  static constexpr SimTime kLatency = 100 * kMillisecond;  // RTT = 200ms

  util::Rng rng_{7};
  sim::Simulator sim_;
  sim::Network net_{sim_, sim::LatencyModel{kLatency, 0, 0.0}, rng_};
  sim::Metrics metrics_;

  void SetUp() override { net_.setMetrics(&metrics_); }

  /// A raw node answering every "req" with one "resp" echoing the rpcId.
  NodeAddr addEchoServer() {
    const NodeAddr addr = net_.addNode();
    net_.setHandler(addr, [this, addr](NodeAddr from, const Message& msg) {
      util::Reader r(msg.payload);
      const std::uint64_t id = r.u64();
      util::Writer w;
      w.u64(id);
      w.str("pong");
      net_.send(addr, from, Message{"resp", w.take()});
    });
    return addr;
  }
};

TEST_F(AdaptiveRpcTest, KarnRuleRetransmittedCallNeverSamples) {
  RpcEndpoint client(net_, "rtt.rpc");
  client.addReplyChannel("resp");
  const NodeAddr server = addEchoServer();

  // Adaptive calls take their retry budget from the per-destination table
  // (CallOptions::retry is ignored), so give the table a budget that allows
  // retransmission.
  PeerTableConfig tableConfig;
  tableConfig.retry.base = RetryPolicy{3, 50 * kMillisecond, 2.0};
  client.configurePeerTable(tableConfig);

  // Fallback 150ms < the 200ms RTT: the first attempt times out, the call
  // completes on the late reply — ambiguous under Karn, so no sample.
  CallOptions options;
  options.timeout = 150 * kMillisecond;
  options.adaptiveTimeout = true;
  bool ok = false;
  client.call(server, "req", {}, options,
              [&](bool replied, util::BytesView) { ok = replied; });
  sim_.run();
  EXPECT_TRUE(ok);
  const PeerStateTable::PeerState* state = client.peerStates().find(server);
  ASSERT_NE(state, nullptr);
  EXPECT_FALSE(state->rtt.hasSample());
  EXPECT_GE(state->rtt.consecutiveTimeouts(), 1u);

  // Second call: the backed-off timeout (2 x 150ms = 300ms > RTT) lets the
  // attempt survive unretransmitted — the classic escape from the trap —
  // and the 200ms sample is exact (zero jitter).
  ok = false;
  client.call(server, "req", {}, options,
              [&](bool replied, util::BytesView) { ok = replied; });
  sim_.run();
  EXPECT_TRUE(ok);
  ASSERT_TRUE(state->rtt.hasSample());
  EXPECT_DOUBLE_EQ(state->rtt.srtt(), 200000.0);
  EXPECT_EQ(state->rtt.consecutiveTimeouts(), 0u);
}

TEST_F(AdaptiveRpcTest, CleanCallSamplesAndExportsGauges) {
  RpcEndpoint client(net_, "rtt.rpc");
  client.addReplyChannel("resp");
  const NodeAddr server = addEchoServer();

  CallOptions options;
  options.timeout = 500 * kMillisecond;  // comfortably above the 200ms RTT
  options.adaptiveTimeout = true;
  client.call(server, "req", {}, options, {});
  sim_.run();

  EXPECT_EQ(metrics_.counter("rpc.rtt.req.samples"), 1u);
  EXPECT_DOUBLE_EQ(metrics_.gaugeValue("rpc.rtt.req.srtt"), 200.0);
  EXPECT_DOUBLE_EQ(metrics_.gaugeValue("rpc.rtt.req.rttvar"), 100.0);
  // timeout gauge = SRTT + 4*RTTVAR = 600ms.
  EXPECT_DOUBLE_EQ(metrics_.gaugeValue("rpc.rtt.req.timeout"), 600.0);
  EXPECT_EQ(client.peerStates().sampledPeers(), 1u);
}

TEST_F(AdaptiveRpcTest, ChurnNoticeEvictsDepartedPeerState) {
  RpcEndpoint client(net_, "rtt.rpc");
  client.addReplyChannel("resp");
  const NodeAddr server = addEchoServer();

  CallOptions options;
  options.timeout = 500 * kMillisecond;
  options.adaptiveTimeout = true;
  client.call(server, "req", {}, options, {});
  sim_.run();
  ASSERT_NE(client.peerStates().find(server), nullptr);

  // Authoritative churn notice: the node leaves, its estimator state goes
  // with it — a rejoining instance starts from the fixed fallback instead of
  // inheriting a dead node's RTT history.
  net_.setOnline(server, false);
  EXPECT_EQ(client.peerStates().find(server), nullptr);

  // Coming back online does not resurrect anything.
  net_.setOnline(server, true);
  EXPECT_EQ(client.peerStates().find(server), nullptr);
  // And the endpoint still works against the rejoined peer.
  bool ok = false;
  client.call(server, "req", {}, options,
              [&](bool replied, util::BytesView) { ok = replied; });
  sim_.run();
  EXPECT_TRUE(ok);
  EXPECT_NE(client.peerStates().find(server), nullptr);
}

TEST_F(AdaptiveRpcTest, DestroyedEndpointDeregistersChurnObserver) {
  const NodeAddr server = addEchoServer();
  {
    RpcEndpoint client(net_, "rtt.rpc");
    client.peerStates().state(server);
  }
  // The endpoint is gone; a churn flip must not invoke its observer.
  net_.setOnline(server, false);
  net_.setOnline(server, true);
}

TEST_F(AdaptiveRpcTest, FixedTimeoutCallsLeaveTheTableUntouched) {
  RpcEndpoint client(net_, "rtt.rpc");
  client.addReplyChannel("resp");
  const NodeAddr server = addEchoServer();
  CallOptions options;
  options.timeout = 500 * kMillisecond;  // adaptiveTimeout defaults to off
  client.call(server, "req", {}, options, {});
  sim_.run();
  EXPECT_EQ(client.peerStates().size(), 0u);
  EXPECT_EQ(metrics_.counter("rpc.rtt.req.samples"), 0u);
}

TEST_F(AdaptiveRpcTest, OpenCallAdaptiveDeadlineSamplesAndBacksOff) {
  RpcEndpoint client(net_, "rtt.rpc");
  const NodeAddr opKey = client.addr();  // fan-out ops key by the origin

  // Expired open call: the op's estimator for the key backs off.
  OpenCallOptions options;
  options.timeout = 100 * kMillisecond;
  options.adaptiveTimeout = true;
  options.peer = opKey;
  bool ok = true;
  client.openCall("op", options, {},
                  [&](bool completed, util::BytesView) { ok = completed; });
  sim_.run();
  EXPECT_FALSE(ok);
  const PeerStateTable::PeerState* state = client.peerStates().find(opKey);
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->rtt.consecutiveTimeouts(), 1u);

  // Completed open call: openCall never retransmits, so the completion is
  // Karn-valid by construction and feeds the estimator.
  const net::RpcId id = client.openCall("op", options, {}, {});
  sim_.schedule(40 * kMillisecond, [&client, id] { client.complete(id, {}); });
  sim_.run();
  ASSERT_TRUE(state->rtt.hasSample());
  EXPECT_DOUBLE_EQ(state->rtt.srtt(), 40000.0);
  EXPECT_EQ(state->rtt.consecutiveTimeouts(), 0u);
}

// --- deterministic latency-model sweeps ----------------------------------

struct SweepOutcome {
  std::uint64_t completed = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t spurious = 0;
};

// Round-robin `calls` echo RPCs from one client to `servers`, with the given
// delay rules active, under either the fixed policy or the per-destination
// adaptive one. Everything is seeded and jitter-free, so each configuration
// yields one exact outcome.
SweepOutcome runSweep(bool adaptive, std::size_t farServers,
                      const std::function<void(sim::FaultPlan&,
                                               const std::vector<NodeAddr>&)>&
                          addRules) {
  util::Rng rng(7);
  sim::Simulator sim;
  sim::Network net(sim, sim::LatencyModel{20 * kMillisecond, 0, 0.0}, rng);
  sim::Metrics metrics;
  net.setMetrics(&metrics);

  constexpr std::size_t kServers = 4;
  constexpr std::size_t kCalls = 40;
  std::vector<NodeAddr> servers;
  for (std::size_t i = 0; i < kServers; ++i) {
    const NodeAddr addr = net.addNode();
    net.setHandler(addr, [&net, addr](NodeAddr from, const Message& msg) {
      util::Reader r(msg.payload);
      const std::uint64_t id = r.u64();
      util::Writer w;
      w.u64(id);
      net.send(addr, from, Message{"resp", w.take()});
    });
    servers.push_back(addr);
  }

  RpcEndpoint client(net, "rtt.rpc");
  client.addReplyChannel("resp");
  client.trackSpuriousTimeouts(true);
  const RetryPolicy retry{4, 100 * kMillisecond, 2.0};
  if (adaptive) {
    PeerTableConfig config;
    config.retry.base = retry;
    client.configurePeerTable(config);
  }

  sim::FaultPlan plan;
  addRules(plan, std::vector<NodeAddr>(servers.end() - farServers,
                                       servers.end()));
  net.setFaultPlan(&plan);

  CallOptions options;
  options.timeout = 150 * kMillisecond;
  options.retry = retry;
  options.adaptiveTimeout = adaptive;
  // Calls start on a fixed absolute cadence (not serially), so time-windowed
  // fault rules hit the same calls under both policies.
  constexpr SimTime kInterval = 200 * kMillisecond;
  for (std::size_t i = 0; i < kCalls; ++i) {
    sim.scheduleAt(static_cast<SimTime>(i) * kInterval,
                   [&client, &servers, &options, i] {
                     client.call(servers[i % kServers], "req", {}, options, {});
                   });
  }
  sim.run();

  SweepOutcome out;
  out.completed = metrics.counter("rpc.req.completed");
  out.timeouts = metrics.counter("rpc.req.timeouts");
  out.retransmits = metrics.counter("rpc.req.retries");
  out.spurious = metrics.counter("rpc.req.spurious_timeouts");
  return out;
}

TEST(LatencyModelSweep, BimodalDelaysAdaptiveBeatsFixedAtSameSeed) {
  // Half the servers sit behind +300ms each way (RTT 640ms vs 40ms near).
  // The fixed 150ms timeout fires 2-3 times per far call forever; the
  // adaptive policy pays a bounded warmup per destination and then completes
  // far calls on their first attempt.
  const auto bimodal = [](sim::FaultPlan& plan,
                          const std::vector<NodeAddr>& far) {
    for (const NodeAddr addr : far) {
      plan.add(sim::FaultRule::node(addr).delay(300 * kMillisecond));
    }
  };
  const SweepOutcome fixed = runSweep(false, 2, bimodal);
  const SweepOutcome adaptive = runSweep(true, 2, bimodal);

  // Both policies complete every call (the lossless late reply always lands
  // inside the fixed policy's retry window)...
  EXPECT_EQ(fixed.completed, 40u);
  EXPECT_EQ(adaptive.completed, 40u);
  // ...but the fixed policy pays for every far call, wave after wave, while
  // the adaptive one stops timing out once each destination is learned.
  EXPECT_GT(fixed.spurious, 0u);
  EXPECT_LT(adaptive.spurious, fixed.spurious);
  EXPECT_LT(adaptive.timeouts, fixed.timeouts);
  EXPECT_LT(adaptive.retransmits, fixed.retransmits);
}

TEST(LatencyModelSweep, DriftingLatencyAdaptiveBeatsFixedAtSameSeed) {
  // All links drift slow for a window (+230ms each way -> RTT 500ms) and
  // then recover. The fixed timeout fires throughout the window; the
  // adaptive estimator tracks the drift up (a few backoff probes), rides it,
  // and simply relaxes back afterwards.
  const auto drifting = [](sim::FaultPlan& plan, const std::vector<NodeAddr>&) {
    plan.between(2 * kSecond, 6 * kSecond,
                 sim::FaultRule::global().delay(230 * kMillisecond));
  };
  const SweepOutcome fixed = runSweep(false, 0, drifting);
  const SweepOutcome adaptive = runSweep(true, 0, drifting);

  EXPECT_EQ(fixed.completed, 40u);
  EXPECT_EQ(adaptive.completed, 40u);
  EXPECT_GT(fixed.spurious, 0u);
  EXPECT_LT(adaptive.spurious, fixed.spurious);
  EXPECT_LT(adaptive.timeouts, fixed.timeouts);
  EXPECT_LT(adaptive.retransmits, fixed.retransmits);
}

}  // namespace
}  // namespace dosn
