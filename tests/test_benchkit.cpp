// Unit tests for the shared benchmark harness (src/dosn/benchkit): scenario
// registry and --filter matching, wall-clock statistics on hand-computed
// samples, the JSON document round-trip bench_compare.py depends on, the
// shared CLI's exit-code contract, and seed/smoke plumbing through
// runScenarios.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "dosn/benchkit/benchkit.hpp"
#include "dosn/benchkit/json.hpp"

using dosn::benchkit::CliResult;
using dosn::benchkit::Json;
using dosn::benchkit::Options;
using dosn::benchkit::Registry;
using dosn::benchkit::RunConfig;
using dosn::benchkit::ScenarioContext;
using dosn::benchkit::WallStats;

namespace {

void noop(ScenarioContext&) {}

TEST(Registry, MatchFiltersByEcmaRegex) {
  Registry registry;
  registry.add("e1_alpha", &noop);
  registry.add("e1_beta", &noop);
  registry.add("zz_gamma", &noop);

  EXPECT_EQ(registry.match("").size(), 3u);
  EXPECT_EQ(registry.match(""), (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(registry.match("e1_"), (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(registry.match("beta|gamma"), (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(registry.match("^zz"), (std::vector<std::size_t>{2}));
  EXPECT_TRUE(registry.match("nothing").empty());
}

TEST(Registry, PreservesRegistrationOrderAndOptions) {
  Registry registry;
  registry.add("slow", &noop, Options{.reps = 5, .warmup = 2, .hot = true});
  registry.add("heavy", &noop, Options{.skipInSmoke = true});

  ASSERT_EQ(registry.scenarios().size(), 2u);
  EXPECT_EQ(registry.scenarios()[0].name, "slow");
  EXPECT_EQ(registry.scenarios()[0].opts.reps, 5u);
  EXPECT_EQ(registry.scenarios()[0].opts.warmup, 2u);
  EXPECT_TRUE(registry.scenarios()[0].opts.hot);
  EXPECT_FALSE(registry.scenarios()[0].opts.skipInSmoke);
  EXPECT_TRUE(registry.scenarios()[1].opts.skipInSmoke);
}

TEST(RegistryDeathTest, DuplicateNameAborts) {
  Registry registry;
  registry.add("once", &noop);
  EXPECT_DEATH(registry.add("once", &noop), "duplicate scenario");
}

TEST(WallStats, HandComputedSamples) {
  // Sorted: {1, 2, 3, 4}. Median interpolates between 2 and 3; p95 sits at
  // rank 0.95 * 3 = 2.85, i.e. 3 + 0.85 * (4 - 3).
  const WallStats stats = WallStats::fromSamples({4.0, 1.0, 3.0, 2.0});
  EXPECT_EQ(stats.reps, 4u);
  EXPECT_DOUBLE_EQ(stats.minMs, 1.0);
  EXPECT_DOUBLE_EQ(stats.maxMs, 4.0);
  EXPECT_DOUBLE_EQ(stats.meanMs, 2.5);
  EXPECT_DOUBLE_EQ(stats.medianMs, 2.5);
  EXPECT_DOUBLE_EQ(stats.p95Ms, 3.85);
}

TEST(WallStats, SingleSampleAndEmpty) {
  const WallStats one = WallStats::fromSamples({7.5});
  EXPECT_EQ(one.reps, 1u);
  EXPECT_DOUBLE_EQ(one.minMs, 7.5);
  EXPECT_DOUBLE_EQ(one.medianMs, 7.5);
  EXPECT_DOUBLE_EQ(one.p95Ms, 7.5);
  EXPECT_DOUBLE_EQ(one.maxMs, 7.5);

  const WallStats none = WallStats::fromSamples({});
  EXPECT_EQ(none.reps, 0u);
  EXPECT_DOUBLE_EQ(none.medianMs, 0.0);
}

TEST(WallStats, PercentileInterpolatesLikeHistogram) {
  const std::vector<double> sorted{10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(WallStats::percentile(sorted, 0), 10.0);
  EXPECT_DOUBLE_EQ(WallStats::percentile(sorted, 50), 20.0);
  EXPECT_DOUBLE_EQ(WallStats::percentile(sorted, 75), 25.0);
  EXPECT_DOUBLE_EQ(WallStats::percentile(sorted, 100), 30.0);
  EXPECT_DOUBLE_EQ(WallStats::percentile({}, 50), 0.0);
}

TEST(JsonTest, RoundTripPreservesStructure) {
  Json doc = Json::object();
  doc.set("schema", "dosn-bench/1");
  doc.set("count", std::uint64_t{12345});
  doc.set("ratio", 0.125);
  doc.set("negative", -42.5);
  doc.set("flag", true);
  doc.set("nothing", Json());
  doc.set("escaped", std::string("line\nquote\"back\\slash\ttab"));
  Json arr = Json::array();
  arr.push(1.0);
  arr.push("two");
  Json nested = Json::object();
  nested.set("deep", 3.5);
  arr.push(std::move(nested));
  doc.set("items", std::move(arr));

  for (const int indent : {0, 2}) {
    const std::string text = doc.dump(indent);
    const auto parsed = Json::parse(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    EXPECT_EQ(*parsed, doc) << text;
  }
}

TEST(JsonTest, ObjectsPreserveInsertionOrderAndSetReplacesInPlace) {
  Json doc = Json::object();
  doc.set("zebra", 1.0);
  doc.set("apple", 2.0);
  doc.set("zebra", 3.0);  // replaced in place, keeps first position
  ASSERT_EQ(doc.size(), 2u);
  EXPECT_EQ(doc.items()[0].first, "zebra");
  EXPECT_DOUBLE_EQ(doc.items()[0].second.asNumber(), 3.0);
  EXPECT_EQ(doc.items()[1].first, "apple");
  ASSERT_NE(doc.find("apple"), nullptr);
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(JsonTest, NonFiniteNumbersSerializeAsNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).dump(), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(Json(-std::numeric_limits<double>::infinity()).dump(), "null");
}

TEST(JsonTest, ParseRejectsMalformedDocuments) {
  EXPECT_FALSE(Json::parse("{").has_value());
  EXPECT_FALSE(Json::parse("[1, 2] garbage").has_value());
  EXPECT_FALSE(Json::parse("tru").has_value());
  EXPECT_FALSE(Json::parse("{\"a\": }").has_value());
  EXPECT_FALSE(Json::parse("").has_value());

  const auto ok = Json::parse("{\"a\": [1, 2.5, \"x\", null, false]}");
  ASSERT_TRUE(ok.has_value());
  const Json* a = ok->find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->size(), 5u);
  EXPECT_DOUBLE_EQ(a->at(1).asNumber(), 2.5);
  EXPECT_TRUE(a->at(3).isNull());
  EXPECT_FALSE(a->at(4).asBool());
}

CliResult parseArgs(const std::vector<const char*>& args) {
  std::FILE* sink = std::tmpfile();
  const CliResult result = dosn::benchkit::parseCli(
      static_cast<int>(args.size()), args.data(), sink, sink);
  std::fclose(sink);
  return result;
}

TEST(Cli, HelpExitsZeroUnknownFlagExitsTwo) {
  EXPECT_EQ(parseArgs({"bench", "--help"}).exitCode, 0);
  EXPECT_EQ(parseArgs({"bench", "-h"}).exitCode, 0);
  EXPECT_EQ(parseArgs({"bench", "--no-such-flag"}).exitCode, 2);
  EXPECT_EQ(parseArgs({"bench", "extra"}).exitCode, 2);
  EXPECT_EQ(parseArgs({"bench", "--seed"}).exitCode, 2);       // missing value
  EXPECT_EQ(parseArgs({"bench", "--seed", "x"}).exitCode, 2);  // not a number
}

TEST(Cli, ParsesFlagsInBothForms) {
  const CliResult spaced = parseArgs(
      {"bench", "--smoke", "--seed", "7", "--filter", "e1", "--reps", "3"});
  EXPECT_EQ(spaced.exitCode, -1);
  EXPECT_TRUE(spaced.config.smoke);
  EXPECT_EQ(spaced.config.seed, 7u);
  EXPECT_EQ(spaced.config.filter, "e1");
  ASSERT_TRUE(spaced.config.repsOverride.has_value());
  EXPECT_EQ(*spaced.config.repsOverride, 3u);
  EXPECT_FALSE(spaced.config.warmupOverride.has_value());

  const CliResult inlined = parseArgs(
      {"bench", "--seed=9", "--json=out.json", "--warmup=2", "--list"});
  EXPECT_EQ(inlined.exitCode, -1);
  EXPECT_EQ(inlined.config.seed, 9u);
  EXPECT_EQ(inlined.config.jsonPath, "out.json");
  ASSERT_TRUE(inlined.config.warmupOverride.has_value());
  EXPECT_EQ(*inlined.config.warmupOverride, 2u);
  EXPECT_TRUE(inlined.config.list);
}

TEST(Cli, DefaultsMatchHistoricalBehavior) {
  const CliResult bare = parseArgs({"bench"});
  EXPECT_EQ(bare.exitCode, -1);
  EXPECT_EQ(bare.config.seed, 42u);
  EXPECT_FALSE(bare.config.smoke);
  EXPECT_TRUE(bare.config.filter.empty());
  EXPECT_TRUE(bare.config.jsonPath.empty());
}

// runScenarios probes: plain function pointers, so state lives in globals.
std::uint64_t gSeenSeed = 0;
int gProbeCalls = 0;
int gHeavyCalls = 0;

void seedProbe(ScenarioContext& ctx) {
  gSeenSeed = ctx.seed();
  ++gProbeCalls;
  ctx.counter("calls", 1);
  ctx.param("seed_param", static_cast<double>(ctx.seed()));
}

void heavyProbe(ScenarioContext&) { ++gHeavyCalls; }

void failingProbe(ScenarioContext& ctx) { ctx.fail("boom"); }

TEST(RunScenarios, PlumbsSeedAndEmitsDocument) {
  Registry registry;
  registry.add("probe", &seedProbe, Options{.hot = true});
  gSeenSeed = 0;
  gProbeCalls = 0;

  RunConfig config;
  config.seed = 7;
  bool failed = true;
  const Json doc = dosn::benchkit::runScenarios(registry, config, "test_bench",
                                                &failed);
  EXPECT_FALSE(failed);
  EXPECT_EQ(gSeenSeed, 7u);
  EXPECT_EQ(gProbeCalls, 1);

  EXPECT_EQ(doc.find("schema")->asString(), "dosn-bench/1");
  EXPECT_EQ(doc.find("bench")->asString(), "test_bench");
  EXPECT_DOUBLE_EQ(doc.find("seed")->asNumber(), 7.0);
  const Json* scenarios = doc.find("scenarios");
  ASSERT_NE(scenarios, nullptr);
  ASSERT_EQ(scenarios->size(), 1u);
  const Json& entry = scenarios->at(0);
  EXPECT_EQ(entry.find("name")->asString(), "probe");
  EXPECT_TRUE(entry.find("hot")->asBool());
  EXPECT_DOUBLE_EQ(entry.find("counters")->find("calls")->asNumber(), 1.0);
  EXPECT_DOUBLE_EQ(entry.find("params")->find("seed_param")->asNumber(), 7.0);
  const Json* wall = entry.find("wall_ms");
  ASSERT_NE(wall, nullptr);
  EXPECT_GE(wall->find("median")->asNumber(), 0.0);
  EXPECT_EQ(wall->find("samples")->size(), 1u);
  EXPECT_EQ(entry.find("failures"), nullptr);
}

TEST(RunScenarios, SmokeSkipsHeavyAndRepsOverrideReruns) {
  Registry registry;
  registry.add("probe", &seedProbe);
  registry.add("heavy", &heavyProbe, Options{.skipInSmoke = true});
  gProbeCalls = 0;
  gHeavyCalls = 0;

  RunConfig smoke;
  smoke.smoke = true;
  const Json doc = dosn::benchkit::runScenarios(registry, smoke, "t");
  EXPECT_EQ(gProbeCalls, 1);
  EXPECT_EQ(gHeavyCalls, 0);
  EXPECT_EQ(doc.find("scenarios")->size(), 1u);

  gProbeCalls = 0;
  gHeavyCalls = 0;
  RunConfig reps;
  reps.repsOverride = 3;
  reps.filter = "probe";
  const Json doc2 = dosn::benchkit::runScenarios(registry, reps, "t");
  EXPECT_EQ(gProbeCalls, 3);
  EXPECT_EQ(gHeavyCalls, 0);  // filtered out, not skipped
  const Json& entry = doc2.find("scenarios")->at(0);
  EXPECT_DOUBLE_EQ(entry.find("reps")->asNumber(), 3.0);
  EXPECT_EQ(entry.find("wall_ms")->find("samples")->size(), 3u);
  // The counter accumulated across reps in one context.
  EXPECT_DOUBLE_EQ(entry.find("counters")->find("calls")->asNumber(), 3.0);
}

TEST(RunScenarios, FailureIsReportedAndRecorded) {
  Registry registry;
  registry.add("bad", &failingProbe);

  RunConfig config;
  bool failed = false;
  const Json doc = dosn::benchkit::runScenarios(registry, config, "t", &failed);
  EXPECT_TRUE(failed);
  const Json& entry = doc.find("scenarios")->at(0);
  const Json* failures = entry.find("failures");
  ASSERT_NE(failures, nullptr);
  ASSERT_EQ(failures->size(), 1u);
  EXPECT_EQ(failures->at(0).asString(), "boom");
}

}  // namespace
