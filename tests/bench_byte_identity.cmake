# ctest driver for the byte-identity gate (label `quick`): runs the fault
# benchmark in smoke mode at the pinned seed and requires every counter to
# match the committed baseline EXACTLY via bench_compare.py --exact-counters.
# The simulator is deterministic, so sim-driven counters at a fixed seed are
# a pure function of the code — any drift means event ordering, RNG
# consumption, or delivery semantics changed (see DESIGN.md §3d).
#
# Expects: BENCH (bench binary), BASELINE (committed JSON), COMPARE
# (tools/bench_compare.py), PYTHON (python3), OUT (scratch JSON path).
execute_process(
  COMMAND ${BENCH} --smoke --seed 42 --json ${OUT}
  RESULT_VARIABLE bench_rc
  OUTPUT_QUIET)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "bench run failed (rc=${bench_rc}): ${BENCH}")
endif()
execute_process(
  COMMAND ${PYTHON} ${COMPARE} ${BASELINE} ${OUT} --exact-counters
  RESULT_VARIABLE compare_rc)
if(NOT compare_rc EQUAL 0)
  message(FATAL_ERROR
          "byte identity violated (rc=${compare_rc}): counters at seed 42 "
          "diverged from ${BASELINE}")
endif()
