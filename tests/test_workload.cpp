// Tests for dosn/workload (DESIGN.md §3h): the determinism contract of the
// day-in-the-life generator — a (config, seed) pair maps to exactly one event
// schedule — plus the statistical shape (Zipf activity, diurnal wave), the
// flash-crowd fan-out invariant, and an end-to-end check that replaying the
// schedule's revocation storm against a real HybridAcl leaves no revoked
// reader with access.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "dosn/pkcrypto/group.hpp"
#include "dosn/privacy/hybrid_acl.hpp"
#include "dosn/social/graph_gen.hpp"
#include "dosn/util/rng.hpp"
#include "dosn/workload/generator.hpp"
#include "dosn/workload/model.hpp"

namespace dosn::workload {
namespace {

// --- determinism contract ---

// The pinned schedule hash for the canonical config at the canonical seed.
// This value must reproduce on every platform, compiler and build mode; if a
// deliberate generator change moves it, update the constant in the same
// commit and say so in the message — any other drift is a determinism bug.
constexpr std::uint64_t kPinnedDayHash = 0x628db2c113e1bdf4ull;

TEST(Workload, ScheduleHashPinnedAtSeed42) {
  const WorkloadGenerator gen(WorkloadConfig::dayInLife(24), 42);
  EXPECT_EQ(gen.hash(), kPinnedDayHash);
}

TEST(Workload, SameSeedSameSchedule) {
  const auto config = WorkloadConfig::dayInLife(16, 0.05);
  const WorkloadGenerator a(config, 7);
  const WorkloadGenerator b(config, 7);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].at, b.events()[i].at);
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].actor, b.events()[i].actor);
    EXPECT_EQ(a.events()[i].target, b.events()[i].target);
    EXPECT_EQ(a.events()[i].flashId, b.events()[i].flashId);
  }
  EXPECT_EQ(a.hash(), b.hash());
  const WorkloadGenerator c(config, 8);
  EXPECT_NE(a.hash(), c.hash());
}

TEST(Workload, EventsSortedAndInDay) {
  const auto config = WorkloadConfig::dayInLife(16, 0.05);
  const WorkloadGenerator gen(config, 42);
  ASSERT_FALSE(gen.events().empty());
  sim::SimTime prev = 0;
  for (const auto& e : gen.events()) {
    EXPECT_GE(e.at, prev);
    EXPECT_LT(e.actor, config.users);
    prev = e.at;
  }
  // Background and flash events land within the day; flash fetches may
  // jitter slightly past the last phase boundary, but never unboundedly.
  EXPECT_LT(gen.events().back().at,
            config.dayLength() + 100 * config.flashJitterMean);
}

// --- statistical shape ---

TEST(Workload, ZipfActivityFavorsLowRanks) {
  const auto config = WorkloadConfig::dayInLife(24, 0.2);
  const WorkloadGenerator gen(config, 42);
  std::map<std::uint32_t, std::size_t> perActor;
  std::size_t background = 0;
  for (const auto& e : gen.events()) {
    if (e.kind == EventKind::kPost || e.kind == EventKind::kFetch) {
      ++perActor[e.actor];
      ++background;
    }
  }
  ASSERT_GT(background, 200u);
  // Rank 0 must act more than any rank in the bottom half (Zipf head vs
  // tail; a uniform sampler fails this with overwhelming probability).
  std::size_t tailMax = 0;
  for (std::uint32_t r = 12; r < 24; ++r) {
    tailMax = std::max(tailMax, perActor[r]);
  }
  EXPECT_GT(perActor[0], tailMax);
}

TEST(Workload, DiurnalWaveModulatesPhaseRates) {
  const auto config = WorkloadConfig::dayInLife(24, 0.2);
  const WorkloadGenerator gen(config, 42);
  // Count background events per phase, normalized by phase duration.
  std::vector<std::size_t> perPhase(config.phases.size(), 0);
  for (const auto& e : gen.events()) {
    if (e.kind == EventKind::kPost || e.kind == EventKind::kFetch) {
      ++perPhase[phaseIndexAt(config, e.at)];
    }
  }
  const std::size_t noon = perPhase[2];   // activityLevel 1.00
  const std::size_t night = perPhase[5];  // activityLevel 0.15
  ASSERT_GT(noon, 0u);
  // Thinning keeps ~15% at night vs 100% at noon; 2x headroom on the 6.7x
  // expected ratio keeps the assertion robust to Poisson noise.
  EXPECT_GT(noon, 3 * night);
}

TEST(Workload, DiurnalLevelFollowsPhaseTable) {
  const auto config = WorkloadConfig::dayInLife(24, 1.0);
  sim::SimTime start = 0;
  for (std::size_t p = 0; p < config.phases.size(); ++p) {
    const auto& phase = config.phases[p];
    EXPECT_EQ(phaseIndexAt(config, start), p);
    EXPECT_EQ(diurnalLevel(config, start + phase.duration / 2),
              phase.activityLevel);
    start += phase.duration;
  }
  // Past the end of the day both clamp to the last phase.
  EXPECT_EQ(phaseIndexAt(config, start + sim::kSecond),
            config.phases.size() - 1);
  EXPECT_EQ(diurnalLevel(config, start + sim::kSecond),
            config.phases.back().activityLevel);
}

// --- flash crowds ---

TEST(Workload, FlashFanOutReachesExactlyTheCircle) {
  const auto config = WorkloadConfig::dayInLife(24, 0.05);
  const WorkloadGenerator gen(config, 42);
  std::map<std::uint32_t, std::uint32_t> celebrityOf;  // flashId -> actor
  std::map<std::uint32_t, sim::SimTime> postedAt;
  std::map<std::uint32_t, std::multiset<std::uint32_t>> fetchers;
  for (const auto& e : gen.events()) {
    if (e.kind == EventKind::kFlashPost) {
      celebrityOf[e.flashId] = e.actor;
      postedAt[e.flashId] = e.at;
    } else if (e.kind == EventKind::kFlashFetch) {
      fetchers[e.flashId].insert(e.actor);
      EXPECT_EQ(e.target, celebrityOf[e.flashId]);
      EXPECT_GT(e.at, postedAt[e.flashId]);  // never before the post
    }
  }
  ASSERT_FALSE(celebrityOf.empty());
  for (const auto& [flashId, celebrity] : celebrityOf) {
    // Every circle member fetches exactly once — no extras, no one missed.
    const auto& circle = gen.circleOf(celebrity);
    const std::multiset<std::uint32_t> expected(circle.begin(), circle.end());
    EXPECT_EQ(fetchers[flashId], expected) << "flash " << flashId;
  }
}

// --- revocation storm vs a real access controller ---

TEST(Workload, RevocationStormLocksOutRevokedReaders) {
  const auto config = WorkloadConfig::dayInLife(24, 0.05);
  const WorkloadGenerator gen(config, 42);
  ASSERT_FALSE(gen.revocations().empty());

  util::Rng rng(42);
  privacy::HybridAcl acl(pkcrypto::DlogGroup::cached(256), rng,
                         privacy::WrapScheme::kIbbe);

  // Stand up one wall group per owner that revokes someone, with the circle
  // snapshot as the membership, and publish one pre-storm envelope each.
  std::set<std::uint32_t> owners;
  for (const auto& [owner, member] : gen.revocations()) owners.insert(owner);
  std::map<std::uint32_t, privacy::Envelope> preStorm;
  for (const std::uint32_t owner : owners) {
    const auto groupId = "wall:" + social::syntheticUser(owner);
    acl.createGroup(groupId);
    for (const std::uint32_t member : gen.circleOf(owner)) {
      acl.addMember(groupId, social::syntheticUser(member));
    }
    preStorm.emplace(owner, acl.encrypt(groupId, util::toBytes("pre"), rng));
  }

  // Replay the storm in schedule order. DECENT-style revocation: every
  // removeMember rotates data keys and re-encrypts the group's history.
  for (const auto& [owner, member] : gen.revocations()) {
    const auto report = acl.removeMember("wall:" + social::syntheticUser(owner),
                                         social::syntheticUser(member));
    // The pre-storm envelope (plus any earlier re-encryptions) must have
    // been rewritten under a fresh data key.
    EXPECT_GE(report.reencryptedEnvelopes, 1u);
  }

  for (const std::uint32_t owner : owners) {
    const auto groupId = "wall:" + social::syntheticUser(owner);
    const auto postStorm = acl.encrypt(groupId, util::toBytes("post"), rng);
    const std::set<std::uint32_t> survivors(gen.survivorsOf(owner).begin(),
                                            gen.survivorsOf(owner).end());
    for (const std::uint32_t member : gen.circleOf(owner)) {
      const auto reader = social::syntheticUser(member);
      const bool survived = survivors.count(member) > 0;
      // Post-storm content is only readable by survivors, and the history
      // re-encryption revoked access to the pre-storm envelope too.
      EXPECT_EQ(acl.decrypt(reader, postStorm).has_value(), survived)
          << reader << " on " << groupId;
      EXPECT_EQ(acl.decrypt(reader, preStorm.at(owner)).has_value(), survived)
          << reader << " on pre-storm " << groupId;
    }
  }
}

}  // namespace
}  // namespace dosn::workload
