// Tests for the access-control schemes of §III, the PAD, and information
// substitution. The revocation tests verify the *semantic differences* the
// paper describes between the schemes.
#include <gtest/gtest.h>

#include <memory>

#include "dosn/privacy/abe_acl.hpp"
#include "dosn/privacy/hybrid_acl.hpp"
#include "dosn/privacy/ibbe_acl.hpp"
#include "dosn/privacy/pad.hpp"
#include "dosn/privacy/publickey_acl.hpp"
#include "dosn/privacy/substitution.hpp"
#include "dosn/privacy/symmetric_acl.hpp"

namespace dosn::privacy {
namespace {

using util::toBytes;

const pkcrypto::DlogGroup& testGroup() {
  return pkcrypto::DlogGroup::cached(256);
}

// ---------- Common behaviour across all AccessController implementations ----

enum class Scheme {
  kSymmetric,
  kPublicKey,
  kAbe,
  kIbbe,
  kHybridPk,
  kHybridAbe,
  kHybridIbbe,
};

std::unique_ptr<AccessController> makeController(Scheme scheme,
                                                 util::Rng& rng) {
  switch (scheme) {
    case Scheme::kSymmetric:
      return std::make_unique<SymmetricAcl>(rng);
    case Scheme::kPublicKey:
      return std::make_unique<PublicKeyAcl>(testGroup(), rng);
    case Scheme::kAbe:
      return std::make_unique<AbeAcl>(testGroup(), rng);
    case Scheme::kIbbe:
      return std::make_unique<IbbeAcl>(testGroup(), rng);
    case Scheme::kHybridPk:
      return std::make_unique<HybridAcl>(testGroup(), rng, WrapScheme::kPublicKey);
    case Scheme::kHybridAbe:
      return std::make_unique<HybridAcl>(testGroup(), rng, WrapScheme::kCpAbe);
    case Scheme::kHybridIbbe:
      return std::make_unique<HybridAcl>(testGroup(), rng, WrapScheme::kIbbe);
  }
  return nullptr;
}

class AclConformance : public ::testing::TestWithParam<Scheme> {
 protected:
  util::Rng rng_{42};
  std::unique_ptr<AccessController> acl_ = makeController(GetParam(), rng_);
};

TEST_P(AclConformance, MembersDecryptNonMembersDont) {
  acl_->createGroup("friends");
  acl_->addMember("friends", "alice");
  acl_->addMember("friends", "bob");
  const Envelope env = acl_->encrypt("friends", toBytes("secret post"), rng_);
  EXPECT_EQ(acl_->decrypt("alice", env).value(), toBytes("secret post"));
  EXPECT_EQ(acl_->decrypt("bob", env).value(), toBytes("secret post"));
  EXPECT_FALSE(acl_->decrypt("eve", env).has_value());
}

TEST_P(AclConformance, RevokedMemberLosesAccessToNewData) {
  acl_->createGroup("g");
  acl_->addMember("g", "alice");
  acl_->addMember("g", "bob");
  acl_->removeMember("g", "bob");
  const Envelope after = acl_->encrypt("g", toBytes("post-revocation"), rng_);
  EXPECT_TRUE(acl_->decrypt("alice", after).has_value());
  EXPECT_FALSE(acl_->decrypt("bob", after).has_value());
}

TEST_P(AclConformance, MembershipBookkeeping) {
  acl_->createGroup("g");
  acl_->addMember("g", "alice");
  acl_->addMember("g", "bob");
  EXPECT_TRUE(acl_->isMember("g", "alice"));
  EXPECT_EQ(acl_->members("g").size(), 2u);
  acl_->removeMember("g", "alice");
  EXPECT_FALSE(acl_->isMember("g", "alice"));
  EXPECT_EQ(acl_->members("g").size(), 1u);
}

TEST_P(AclConformance, SeparateGroupsAreIsolated) {
  acl_->createGroup("g1");
  acl_->createGroup("g2");
  acl_->addMember("g1", "alice");
  acl_->addMember("g2", "bob");
  const Envelope env1 = acl_->encrypt("g1", toBytes("for g1"), rng_);
  EXPECT_TRUE(acl_->decrypt("alice", env1).has_value());
  EXPECT_FALSE(acl_->decrypt("bob", env1).has_value());
}

TEST_P(AclConformance, HistoryRetained) {
  acl_->createGroup("g");
  acl_->addMember("g", "alice");
  acl_->encrypt("g", toBytes("one"), rng_);
  acl_->encrypt("g", toBytes("two"), rng_);
  EXPECT_EQ(acl_->history("g").size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, AclConformance,
    ::testing::Values(Scheme::kSymmetric, Scheme::kPublicKey, Scheme::kAbe,
                      Scheme::kIbbe, Scheme::kHybridPk, Scheme::kHybridAbe,
                      Scheme::kHybridIbbe),
    [](const ::testing::TestParamInfo<Scheme>& info) {
      switch (info.param) {
        case Scheme::kSymmetric: return std::string("Symmetric");
        case Scheme::kPublicKey: return std::string("PublicKey");
        case Scheme::kAbe: return std::string("CpAbe");
        case Scheme::kIbbe: return std::string("Ibbe");
        case Scheme::kHybridPk: return std::string("HybridPk");
        case Scheme::kHybridAbe: return std::string("HybridAbe");
        case Scheme::kHybridIbbe: return std::string("HybridIbbe");
      }
      return std::string("Unknown");
    });

// ---------- Scheme-specific revocation semantics (the paper's §III claims) --

TEST(SymmetricAclTest, RevocationReencryptsWholeHistory) {
  util::Rng rng(1);
  SymmetricAcl acl(rng);
  acl.createGroup("g");
  acl.addMember("g", "alice");
  acl.addMember("g", "bob");
  for (int i = 0; i < 5; ++i) {
    acl.encrypt("g", toBytes("post " + std::to_string(i)), rng);
  }
  EXPECT_EQ(acl.keyEpoch("g"), 0u);
  const RevocationReport report = acl.removeMember("g", "bob");
  // "We need to create a new key and re-encrypt the whole data."
  EXPECT_EQ(report.reencryptedEnvelopes, 5u);
  EXPECT_GT(report.rewrittenBytes, 0u);
  EXPECT_EQ(report.keyOperations, 1u);  // alice gets the new key
  EXPECT_EQ(acl.keyEpoch("g"), 1u);
  // Alice still reads old posts (they were re-encrypted under her new key).
  // history() returns by value, so take a copy — a reference into the
  // temporary vector's element dangles once the full expression ends.
  const Envelope old = acl.history("g")[0];
  EXPECT_TRUE(acl.decrypt("alice", old).has_value());
  EXPECT_FALSE(acl.decrypt("bob", old).has_value());
}

TEST(PublicKeyAclTest, RevocationTouchesNothing) {
  util::Rng rng(2);
  PublicKeyAcl acl(testGroup(), rng);
  acl.createGroup("g");
  acl.addMember("g", "alice");
  acl.addMember("g", "bob");
  const Envelope before = acl.encrypt("g", toBytes("old"), rng);
  const RevocationReport report = acl.removeMember("g", "bob");
  // "His public key will be deleted from the list" — no re-encryption.
  EXPECT_EQ(report.reencryptedEnvelopes, 0u);
  // The paper's caveat: data bob could already decrypt stays decryptable.
  EXPECT_TRUE(acl.decrypt("bob", before).has_value());
  EXPECT_FALSE(acl.decrypt("bob", acl.encrypt("g", toBytes("new"), rng))
                   .has_value());
}

TEST(PublicKeyAclTest, EnvelopeGrowsWithMembers) {
  util::Rng rng(3);
  PublicKeyAcl acl(testGroup(), rng);
  acl.createGroup("small");
  acl.createGroup("large");
  acl.addMember("small", "u0");
  for (int i = 0; i < 8; ++i) acl.addMember("large", "u" + std::to_string(i));
  const auto small = acl.encrypt("small", toBytes("m"), rng);
  const auto large = acl.encrypt("large", toBytes("m"), rng);
  // §III-C: naive per-member encryption — blob scales with group size.
  EXPECT_GT(large.blob.size(), small.blob.size() * 6);
}

TEST(AbeAclTest, RevocationBumpsEpochAndReencrypts) {
  util::Rng rng(4);
  AbeAcl acl(testGroup(), rng);
  acl.createGroup("family");
  acl.addMember("family", "alice");
  acl.addMember("family", "bob");
  acl.encrypt("family", toBytes("p1"), rng);
  acl.encrypt("family", toBytes("p2"), rng);
  EXPECT_EQ(acl.attributeEpoch("family"), 0u);
  const RevocationReport report = acl.removeMember("family", "bob");
  // "Usual revocation methods for ABE use frequent re-keying ... previous
  // data ... must be encrypted and stored again."
  EXPECT_EQ(acl.attributeEpoch("family"), 1u);
  EXPECT_EQ(report.reencryptedEnvelopes, 2u);
  EXPECT_EQ(report.keyOperations, 1u);  // alice re-keyed
  EXPECT_TRUE(acl.decrypt("alice", acl.history("family")[0]).has_value());
  EXPECT_FALSE(acl.decrypt("bob", acl.history("family")[0]).has_value());
}

TEST(AbeAclTest, PolicyEnvelopeAcrossGroups) {
  util::Rng rng(5);
  AbeAcl acl(testGroup(), rng);
  acl.createGroup("relative");
  acl.createGroup("doctor");
  acl.createGroup("painter");
  acl.addMember("relative", "alice");
  acl.addMember("doctor", "alice");
  acl.addMember("painter", "paula");
  acl.addMember("relative", "rita");

  const auto p = *policy::Policy::parse("(relative AND doctor) OR painter");
  const Envelope env = acl.encryptWithPolicy(p, toBytes("the scan"), rng);
  EXPECT_TRUE(acl.decrypt("alice", env).has_value());   // relative AND doctor
  EXPECT_TRUE(acl.decrypt("paula", env).has_value());   // painter
  EXPECT_FALSE(acl.decrypt("rita", env).has_value());   // relative only
}

TEST(IbbeAclTest, RevocationIsFree) {
  util::Rng rng(6);
  IbbeAcl acl(testGroup(), rng);
  acl.createGroup("g");
  acl.addMember("g", "alice");
  acl.addMember("g", "bob");
  acl.encrypt("g", toBytes("p1"), rng);
  const RevocationReport report = acl.removeMember("g", "bob");
  // "Removing a recipient from the list would then have no extra cost."
  EXPECT_EQ(report.reencryptedEnvelopes, 0u);
  EXPECT_EQ(report.keyOperations, 0u);
  EXPECT_EQ(report.rewrittenBytes, 0u);
}

TEST(HybridAclTest, RevocationRewrapsHistory) {
  util::Rng rng(7);
  HybridAcl acl(testGroup(), rng, WrapScheme::kPublicKey);
  acl.createGroup("g");
  acl.addMember("g", "alice");
  acl.addMember("g", "bob");
  acl.encrypt("g", toBytes("p1"), rng);
  acl.encrypt("g", toBytes("p2"), rng);
  const RevocationReport report = acl.removeMember("g", "bob");
  EXPECT_EQ(report.reencryptedEnvelopes, 2u);
  EXPECT_TRUE(acl.decrypt("alice", acl.history("g")[0]).has_value());
  EXPECT_FALSE(acl.decrypt("bob", acl.history("g")[0]).has_value());
}

TEST(HybridAclTest, WrapIsSmallComparedToNaivePk) {
  util::Rng rng(8);
  PublicKeyAcl naive(testGroup(), rng);
  HybridAcl hybrid(testGroup(), rng, WrapScheme::kPublicKey);
  for (auto* acl : std::initializer_list<AccessController*>{&naive, &hybrid}) {
    acl->createGroup("g");
    for (int i = 0; i < 6; ++i) acl->addMember("g", "u" + std::to_string(i));
  }
  const util::Bytes bigPayload(8000, 0x5a);
  const auto naiveEnv = naive.encrypt("g", bigPayload, rng);
  const auto hybridEnv = hybrid.encrypt("g", bigPayload, rng);
  // §III-F: hybrid seals the payload once; naive PK encrypts it per member.
  EXPECT_LT(hybridEnv.blob.size(), naiveEnv.blob.size() / 3);
  EXPECT_EQ(hybrid.decrypt("u3", hybridEnv).value(), bigPayload);
}

// ---------- PAD ----------

TEST(PadTest, InsertFindRemove) {
  Pad pad;
  EXPECT_EQ(pad.size(), 0u);
  Pad v1 = pad.insert("alice", toBytes("rw"));
  Pad v2 = v1.insert("bob", toBytes("r"));
  EXPECT_EQ(v2.size(), 2u);
  EXPECT_EQ(v2.find("alice").value(), toBytes("rw"));
  EXPECT_EQ(v2.find("bob").value(), toBytes("r"));
  EXPECT_FALSE(v2.find("carol").has_value());
  Pad v3 = v2.remove("alice");
  EXPECT_FALSE(v3.find("alice").has_value());
  EXPECT_EQ(v3.size(), 1u);
  // Removing a missing key is a no-op.
  EXPECT_EQ(v3.remove("ghost").size(), 1u);
}

TEST(PadTest, PersistenceOldVersionsIntact) {
  Pad v1 = Pad().insert("a", toBytes("1"));
  Pad v2 = v1.insert("b", toBytes("2"));
  Pad v3 = v2.remove("a");
  // Every version remains readable.
  EXPECT_TRUE(v1.find("a").has_value());
  EXPECT_FALSE(v1.find("b").has_value());
  EXPECT_TRUE(v2.find("a").has_value());
  EXPECT_TRUE(v2.find("b").has_value());
  EXPECT_FALSE(v3.find("a").has_value());
  // Roots differ across versions.
  EXPECT_NE(v1.rootHash(), v2.rootHash());
  EXPECT_NE(v2.rootHash(), v3.rootHash());
}

TEST(PadTest, UpdateOverwritesValue) {
  Pad v1 = Pad().insert("k", toBytes("old"));
  Pad v2 = v1.insert("k", toBytes("new"));
  EXPECT_EQ(v2.size(), 1u);
  EXPECT_EQ(v2.find("k").value(), toBytes("new"));
  EXPECT_EQ(v1.find("k").value(), toBytes("old"));
}

TEST(PadTest, DeterministicRoot) {
  // Same contents, different insertion orders: the treap shape is determined
  // by key priorities, so roots must agree.
  Pad a = Pad().insert("x", toBytes("1")).insert("y", toBytes("2")).insert("z", toBytes("3"));
  Pad b = Pad().insert("z", toBytes("3")).insert("x", toBytes("1")).insert("y", toBytes("2"));
  EXPECT_EQ(a.rootHash(), b.rootHash());
}

TEST(PadTest, ProofsVerify) {
  Pad pad;
  for (int i = 0; i < 30; ++i) {
    pad = pad.insert("user" + std::to_string(i), toBytes("perm" + std::to_string(i)));
  }
  for (int i = 0; i < 30; ++i) {
    const std::string key = "user" + std::to_string(i);
    const auto proof = pad.prove(key);
    ASSERT_TRUE(proof.has_value()) << key;
    EXPECT_TRUE(Pad::verify(pad.rootHash(), key, *proof)) << key;
  }
  EXPECT_FALSE(pad.prove("nonmember").has_value());
}

TEST(PadTest, TamperedProofRejected) {
  Pad pad = Pad().insert("a", toBytes("1")).insert("b", toBytes("2")).insert("c", toBytes("3"));
  auto proof = *pad.prove("b");
  proof.value = toBytes("forged");
  EXPECT_FALSE(Pad::verify(pad.rootHash(), "b", proof));
  // Proof against a different version's root also fails.
  const Pad newer = pad.insert("d", toBytes("4"));
  EXPECT_FALSE(Pad::verify(newer.rootHash(), "b", *pad.prove("b")));
  EXPECT_TRUE(Pad::verify(newer.rootHash(), "b", *newer.prove("b")));
}

TEST(PadTest, HeightIsLogarithmic) {
  Pad pad;
  const std::size_t n = 1000;
  for (std::size_t i = 0; i < n; ++i) {
    pad = pad.insert("member" + std::to_string(i), toBytes("x"));
  }
  EXPECT_EQ(pad.size(), n);
  // Treap height is O(log n) w.h.p.: ~ 3*log2(1000) = 30 as a loose bound.
  EXPECT_LT(pad.height(), 40u);
  EXPECT_GE(pad.height(), 10u);  // log2(1000)
}

// ---------- Substitution ----------

TEST(Substitution, ProviderSeesFakeFriendSeesReal) {
  FakeProfileService service;
  social::Profile real{"alice", {{"city", "Istanbul"}}};
  social::Profile fake{"alice", {{"city", "Atlantis"}}};
  service.publish("alice", real, fake, {"bob"});
  EXPECT_EQ(service.providerView("alice")->fields.at("city"), "Atlantis");
  EXPECT_EQ(service.view("bob", "alice")->fields.at("city"), "Istanbul");
  EXPECT_EQ(service.view("eve", "alice")->fields.at("city"), "Atlantis");
  EXPECT_FALSE(service.providerView("ghost").has_value());
}

TEST(Substitution, NoybRoundTrip) {
  AtomDictionary dict;
  dict.defineClass("first-name", {"Ada", "Bela", "Cem", "Deniz", "Efe"});
  util::Rng rng(11);
  const util::Bytes key = rng.bytes(32);
  const auto stored = dict.substitute(key, "first-name", "Cem");
  ASSERT_TRUE(stored.has_value());
  // The provider-visible atom is a plausible dictionary member...
  EXPECT_TRUE(dict.indexOf("first-name", *stored).has_value());
  // ...and key holders invert it.
  EXPECT_EQ(dict.recover(key, "first-name", *stored).value(), "Cem");
}

TEST(Substitution, NoybWrongKeyGivesWrongAtom) {
  AtomDictionary dict;
  dict.defineClass("city", {"Ankara", "Berlin", "Cairo", "Delhi", "Espoo",
                            "Fes", "Graz"});
  util::Rng rng(12);
  const util::Bytes key1 = rng.bytes(32);
  const util::Bytes key2 = rng.bytes(32);
  const auto stored = dict.substitute(key1, "city", "Cairo");
  ASSERT_TRUE(stored.has_value());
  const auto recovered = dict.recover(key2, "city", *stored);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_NE(*recovered, "Cairo");
}

TEST(Substitution, NoybAllAtomsRoundTrip) {
  AtomDictionary dict;
  std::vector<std::string> atoms;
  for (int i = 0; i < 17; ++i) atoms.push_back("atom" + std::to_string(i));
  dict.defineClass("c", atoms);
  util::Rng rng(13);
  const util::Bytes key = rng.bytes(32);
  for (const std::string& atom : atoms) {
    const auto stored = dict.substitute(key, "c", atom);
    ASSERT_TRUE(stored.has_value());
    EXPECT_EQ(dict.recover(key, "c", *stored).value(), atom);
  }
}

TEST(Substitution, UnknownClassOrAtom) {
  AtomDictionary dict;
  dict.defineClass("c", {"a", "b"});
  util::Rng rng(14);
  const util::Bytes key = rng.bytes(32);
  EXPECT_FALSE(dict.substitute(key, "missing", "a").has_value());
  EXPECT_FALSE(dict.substitute(key, "c", "zz").has_value());
  EXPECT_EQ(dict.classSize("missing"), 0u);
}

}  // namespace
}  // namespace dosn::privacy
