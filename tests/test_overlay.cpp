// Tests for the overlay tier: node ids, Kademlia DHT, flooding, gossip,
// super-peers, hybrid lookup, federation, replication.
#include <gtest/gtest.h>

#include <memory>

#include "dosn/overlay/federation.hpp"
#include "dosn/overlay/flooding.hpp"
#include "dosn/overlay/gossip.hpp"
#include "dosn/overlay/hybrid.hpp"
#include "dosn/overlay/kademlia.hpp"
#include "dosn/overlay/location_tree.hpp"
#include "dosn/overlay/node_id.hpp"
#include "dosn/overlay/replication.hpp"
#include "dosn/overlay/superpeer.hpp"
#include "dosn/sim/churn.hpp"
#include "dosn/sim/faults.hpp"
#include "dosn/social/graph_gen.hpp"

namespace dosn::overlay {
namespace {

using sim::kMillisecond;
using sim::kSecond;
using util::toBytes;

GossipConfig gossipConfig(sim::SimTime interval, std::size_t fanout) {
  GossipConfig config;
  config.interval = interval;
  config.fanout = fanout;
  return config;
}

// --- OverlayId ---

TEST(OverlayId, HashDeterministic) {
  EXPECT_EQ(OverlayId::hash("alice"), OverlayId::hash("alice"));
  EXPECT_NE(OverlayId::hash("alice"), OverlayId::hash("bob"));
}

TEST(OverlayId, XorDistanceProperties) {
  util::Rng rng(1);
  const OverlayId a = OverlayId::random(rng);
  const OverlayId b = OverlayId::random(rng);
  EXPECT_EQ(xorDistance(a, a), OverlayId{});
  EXPECT_EQ(xorDistance(a, b), xorDistance(b, a));
}

TEST(OverlayId, BucketIndex) {
  OverlayId a{};
  OverlayId b{};
  EXPECT_EQ(bucketIndex(a, b), -1);
  b.bytes[kIdBytes - 1] = 0x01;  // differs in the lowest bit
  EXPECT_EQ(bucketIndex(a, b), 0);
  b = OverlayId{};
  b.bytes[0] = 0x80;  // highest bit
  EXPECT_EQ(bucketIndex(a, b), 159);
}

TEST(OverlayId, CloserTo) {
  OverlayId target{};
  OverlayId near{};
  near.bytes[kIdBytes - 1] = 1;
  OverlayId far{};
  far.bytes[0] = 0x80;
  EXPECT_TRUE(closerTo(target, near, far));
  EXPECT_FALSE(closerTo(target, far, near));
  EXPECT_FALSE(closerTo(target, near, near));
}

// --- RoutingTable ---

TEST(RoutingTable, ObserveAndClosest) {
  util::Rng rng(2);
  const OverlayId self = OverlayId::random(rng);
  RoutingTable table(self, 4);
  std::vector<Contact> contacts;
  for (int i = 0; i < 50; ++i) {
    Contact c{OverlayId::random(rng), static_cast<sim::NodeAddr>(i + 1)};
    contacts.push_back(c);
    table.observe(c);
  }
  const OverlayId target = OverlayId::random(rng);
  const auto closest = table.closest(target, 5);
  ASSERT_LE(closest.size(), 5u);
  // Returned contacts are sorted by distance.
  for (std::size_t i = 0; i + 1 < closest.size(); ++i) {
    EXPECT_FALSE(closerTo(target, closest[i + 1].id, closest[i].id));
  }
}

TEST(RoutingTable, SelfIsIgnored) {
  util::Rng rng(3);
  const OverlayId self = OverlayId::random(rng);
  RoutingTable table(self, 4);
  table.observe(Contact{self, 1});
  EXPECT_EQ(table.size(), 0u);
}

TEST(RoutingTable, BucketEvictsOldest) {
  OverlayId self{};
  RoutingTable table(self, 2);
  // Three ids in the same (top) bucket.
  OverlayId id1{};
  id1.bytes[0] = 0x80;
  OverlayId id2{};
  id2.bytes[0] = 0x81;
  OverlayId id3{};
  id3.bytes[0] = 0x82;
  table.observe(Contact{id1, 1});
  table.observe(Contact{id2, 2});
  table.observe(Contact{id3, 3});
  EXPECT_EQ(table.size(), 2u);
  const auto closest = table.closest(id1, 3);
  // id1 (oldest) was evicted.
  for (const Contact& c : closest) EXPECT_NE(c.id, id1);
}

// --- Kademlia over the simulator ---

class KademliaTest : public ::testing::Test {
 protected:
  void buildNetwork(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      nodes_.push_back(std::make_unique<KademliaNode>(
          net_, OverlayId::random(rng_), config_));
    }
    // Bootstrap everyone through node 0.
    const Contact seed{nodes_[0]->id(), nodes_[0]->addr()};
    for (std::size_t i = 1; i < nodes_.size(); ++i) {
      nodes_[i]->bootstrap(seed);
      sim_.run();
    }
  }

  util::Rng rng_{42};
  sim::Simulator sim_;
  sim::Network net_{sim_, sim::LatencyModel{5 * kMillisecond, 2 * kMillisecond, 0.0},
                    rng_};
  KademliaConfig config_{8, 3, 500 * kMillisecond, 0, {}};
  std::vector<std::unique_ptr<KademliaNode>> nodes_;
};

TEST_F(KademliaTest, StoreAndFindValue) {
  buildNetwork(30);
  const OverlayId key = OverlayId::hash("profile:alice");
  bool stored = false;
  nodes_[5]->store(key, toBytes("alice-data"), [&](bool ok) { stored = ok; });
  sim_.run();
  EXPECT_TRUE(stored);

  std::optional<util::Bytes> found;
  nodes_[20]->findValue(key, [&](LookupResult result) { found = result.value; });
  sim_.run();
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, toBytes("alice-data"));
}

TEST_F(KademliaTest, MissingKeyNotFound) {
  buildNetwork(20);
  std::optional<util::Bytes> found = toBytes("sentinel");
  bool completed = false;
  nodes_[3]->findValue(OverlayId::hash("missing"), [&](LookupResult result) {
    found = result.value;
    completed = true;
  });
  sim_.run();
  EXPECT_TRUE(completed);
  EXPECT_FALSE(found.has_value());
}

TEST_F(KademliaTest, LookupHopsAreBounded) {
  buildNetwork(40);
  const OverlayId key = OverlayId::hash("item");
  nodes_[1]->store(key, toBytes("v"), {});
  sim_.run();
  std::size_t hops = 999;
  nodes_[35]->findValue(key, [&](LookupResult result) { hops = result.hops; });
  sim_.run();
  // "Queries will be resolved in a limited number of steps": O(log n).
  EXPECT_LE(hops, 8u);
}

TEST_F(KademliaTest, ValueSurvivesOriginGoingOffline) {
  buildNetwork(30);
  const OverlayId key = OverlayId::hash("replicated");
  nodes_[2]->store(key, toBytes("v"), {});
  sim_.run();
  net_.setOnline(nodes_[2]->addr(), false);
  std::optional<util::Bytes> found;
  nodes_[17]->findValue(key, [&](LookupResult result) { found = result.value; });
  sim_.run();
  // The store placed k=8 replicas; losing the origin must not lose the data.
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, toBytes("v"));
}

TEST_F(KademliaTest, RejoinAfterDowntimeRestoresLookups) {
  buildNetwork(25);
  const OverlayId key = OverlayId::hash("persistent");
  nodes_[4]->store(key, toBytes("v"), {});
  sim_.run();

  // Node 12 goes offline; the world moves on; it rejoins later.
  net_.setOnline(nodes_[12]->addr(), false);
  sim_.run();
  net_.setOnline(nodes_[12]->addr(), true);
  nodes_[12]->rejoin(Contact{nodes_[0]->id(), nodes_[0]->addr()});
  sim_.run();

  std::optional<util::Bytes> found;
  nodes_[12]->findValue(key, [&](LookupResult r) { found = r.value; });
  sim_.run();
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, toBytes("v"));
}

TEST_F(KademliaTest, StoreWidthLimitsReplicaCount) {
  config_.storeWidth = 2;
  buildNetwork(20);
  const OverlayId key = OverlayId::hash("narrow");
  nodes_[3]->store(key, toBytes("v"), {});
  sim_.run();
  std::size_t replicas = 0;
  for (const auto& node : nodes_) {
    replicas += node->localStore().has(key) ? 1 : 0;
  }
  EXPECT_GE(replicas, 1u);
  EXPECT_LE(replicas, 2u);
}

TEST_F(KademliaTest, FindNodeReturnsClosest) {
  buildNetwork(25);
  const OverlayId target = OverlayId::random(rng_);
  std::vector<Contact> closest;
  nodes_[10]->findNode(target, [&](LookupResult r) { closest = r.closest; });
  sim_.run();
  ASSERT_FALSE(closest.empty());
  for (std::size_t i = 0; i + 1 < closest.size(); ++i) {
    EXPECT_FALSE(closerTo(target, closest[i + 1].id, closest[i].id));
  }
}

// --- Flooding ---

class FloodingTest : public ::testing::Test {
 protected:
  void buildRing(std::size_t n, std::size_t extraLinks = 0) {
    for (std::size_t i = 0; i < n; ++i) {
      nodes_.push_back(std::make_unique<FloodingNode>(net_, OverlayId::random(rng_)));
    }
    for (std::size_t i = 0; i < n; ++i) {
      linkNodes(*nodes_[i], *nodes_[(i + 1) % n]);
    }
    for (std::size_t i = 0; i < extraLinks; ++i) {
      const std::size_t a = rng_.uniform(n);
      const std::size_t b = rng_.uniform(n);
      if (a != b) linkNodes(*nodes_[a], *nodes_[b]);
    }
  }

  util::Rng rng_{7};
  sim::Simulator sim_;
  sim::Network net_{sim_, sim::LatencyModel{5 * kMillisecond, 0, 0.0}, rng_};
  std::vector<std::unique_ptr<FloodingNode>> nodes_;
};

TEST_F(FloodingTest, FindsValueWithinTtl) {
  buildRing(10);
  const OverlayId key = OverlayId::hash("k");
  nodes_[3]->publish(key, toBytes("v"));
  std::optional<util::Bytes> found;
  nodes_[0]->search(key, /*ttl=*/5, 10 * kSecond,
                    [&](std::optional<util::Bytes> v) { found = v; });
  sim_.run();
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, toBytes("v"));
}

TEST_F(FloodingTest, TtlLimitsReach) {
  buildRing(20);
  const OverlayId key = OverlayId::hash("far");
  nodes_[10]->publish(key, toBytes("v"));  // 10 hops away on the ring
  std::optional<util::Bytes> found = toBytes("sentinel");
  nodes_[0]->search(key, /*ttl=*/3, 5 * kSecond,
                    [&](std::optional<util::Bytes> v) { found = v; });
  sim_.run();
  EXPECT_FALSE(found.has_value());
}

TEST_F(FloodingTest, LocalHitImmediate) {
  buildRing(5);
  const OverlayId key = OverlayId::hash("mine");
  nodes_[0]->publish(key, toBytes("v"));
  std::optional<util::Bytes> found;
  nodes_[0]->search(key, 1, kSecond, [&](std::optional<util::Bytes> v) { found = v; });
  sim_.run();
  EXPECT_TRUE(found.has_value());
}

TEST_F(FloodingTest, DuplicateSuppressionBoundsTraffic) {
  buildRing(12, 12);  // ring + random chords: plenty of cycles
  const OverlayId key = OverlayId::hash("nonexistent");
  nodes_[0]->search(key, 8, 5 * kSecond, [](std::optional<util::Bytes>) {});
  sim_.run();
  // Each node forwards a query at most once; with 12 nodes and ~3 links each,
  // the flood must stay far below the no-dedup explosion.
  EXPECT_LT(net_.messagesSent(), 200u);
}

// --- Gossip ---

TEST(Gossip, EntrySpreadsToAllPeers) {
  util::Rng rng(11);
  sim::Simulator sim;
  sim::Network net(sim, sim::LatencyModel{5 * kMillisecond, 0, 0.0}, rng);
  std::vector<std::unique_ptr<GossipNode>> nodes;
  GossipConfig config = gossipConfig(500 * kMillisecond, 2);
  for (int i = 0; i < 12; ++i) {
    nodes.push_back(std::make_unique<GossipNode>(net, config));
  }
  std::vector<sim::NodeAddr> peers;
  for (const auto& n : nodes) peers.push_back(n->addr());
  for (const auto& n : nodes) {
    n->setPeers(peers);
    n->start();
  }
  const OverlayId key = OverlayId::hash("rumor");
  nodes[0]->put(key, toBytes("spreading"), 1);
  sim.runUntil(30 * kSecond);
  for (const auto& n : nodes) n->stop();
  std::size_t have = 0;
  for (const auto& n : nodes) {
    if (n->get(key)) ++have;
  }
  EXPECT_EQ(have, nodes.size());
}

TEST(Gossip, NewerVersionWins) {
  util::Rng rng(12);
  sim::Simulator sim;
  sim::Network net(sim, sim::LatencyModel{5 * kMillisecond, 0, 0.0}, rng);
  GossipNode a(net, gossipConfig(200 * kMillisecond, 1));
  GossipNode b(net, gossipConfig(200 * kMillisecond, 1));
  a.setPeers({b.addr()});
  b.setPeers({a.addr()});
  const OverlayId key = OverlayId::hash("k");
  a.put(key, toBytes("old"), 1);
  b.put(key, toBytes("new"), 2);
  a.start();
  b.start();
  sim.runUntil(5 * kSecond);
  a.stop();
  b.stop();
  EXPECT_EQ(a.get(key).value(), toBytes("new"));
  EXPECT_EQ(b.get(key).value(), toBytes("new"));
  EXPECT_EQ(a.version(key).value(), 2u);
}

TEST(Gossip, UpdateHookFiresOnGossipedEntries) {
  util::Rng rng(14);
  sim::Simulator sim;
  sim::Network net(sim, sim::LatencyModel{5 * kMillisecond, 0, 0.0}, rng);
  GossipNode a(net, gossipConfig(200 * kMillisecond, 1));
  GossipNode b(net, gossipConfig(200 * kMillisecond, 1));
  a.setPeers({b.addr()});
  b.setPeers({a.addr()});
  std::vector<OverlayId> arrived;
  b.onUpdate([&](const OverlayId& key, const util::Bytes&) {
    arrived.push_back(key);
  });
  const OverlayId key = OverlayId::hash("hooked");
  a.put(key, toBytes("v"), 1);
  a.start();
  b.start();
  sim.runUntil(3 * kSecond);
  a.stop();
  b.stop();
  ASSERT_EQ(arrived.size(), 1u);
  EXPECT_EQ(arrived[0], key);
}

TEST(Gossip, StaleVersionDoesNotOverwrite) {
  util::Rng rng(13);
  sim::Simulator sim;
  sim::Network net(sim, sim::LatencyModel{}, rng);
  GossipNode a(net);
  const OverlayId key = OverlayId::hash("k");
  a.put(key, toBytes("v2"), 2);
  a.put(key, toBytes("v1"), 1);
  EXPECT_EQ(a.get(key).value(), toBytes("v2"));
}

// --- Super-peer ---

TEST(SuperPeer, CrossSuperPeerSearch) {
  util::Rng rng(17);
  sim::Simulator sim;
  sim::Network net(sim, sim::LatencyModel{5 * kMillisecond, 0, 0.0}, rng);
  SuperPeer sp1(net);
  SuperPeer sp2(net);
  sp1.setPeers({sp2.addr()});
  sp2.setPeers({sp1.addr()});
  LeafPeer leafA(net, sp1.addr());
  LeafPeer leafB(net, sp2.addr());

  const OverlayId key = OverlayId::hash("b-content");
  leafB.publish(key, toBytes("value-b"));
  sim.run();
  EXPECT_EQ(sp2.indexSize(), 1u);

  std::optional<util::Bytes> found;
  leafA.search(key, 10 * kSecond, [&](std::optional<util::Bytes> v) { found = v; });
  sim.run();
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, toBytes("value-b"));
}

TEST(SuperPeer, MissTimesOut) {
  util::Rng rng(18);
  sim::Simulator sim;
  sim::Network net(sim, sim::LatencyModel{5 * kMillisecond, 0, 0.0}, rng);
  SuperPeer sp(net);
  LeafPeer leaf(net, sp.addr());
  bool called = false;
  std::optional<util::Bytes> found;
  leaf.search(OverlayId::hash("nothing"), kSecond,
              [&](std::optional<util::Bytes> v) {
                called = true;
                found = v;
              });
  sim.run();
  EXPECT_TRUE(called);
  EXPECT_FALSE(found.has_value());
}

// --- Hybrid ---

TEST(Hybrid, CacheServesPopularDhtServesRare) {
  util::Rng rng(21);
  sim::Simulator sim;
  sim::Network net(sim, sim::LatencyModel{5 * kMillisecond, 0, 0.0}, rng);
  KademliaConfig kconfig{8, 3, 500 * kMillisecond, 0, {}};
  GossipConfig gconfig = gossipConfig(500 * kMillisecond, 2);

  std::vector<std::unique_ptr<HybridNode>> nodes;
  for (int i = 0; i < 15; ++i) {
    nodes.push_back(std::make_unique<HybridNode>(net, OverlayId::random(rng),
                                                 kconfig, gconfig));
  }
  const Contact seed{nodes[0]->dht().id(), nodes[0]->dht().addr()};
  std::vector<sim::NodeAddr> cachePeers;
  for (const auto& n : nodes) cachePeers.push_back(n->cache().addr());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) nodes[i]->dht().bootstrap(seed);
    nodes[i]->cache().setPeers(cachePeers);
    sim.run();  // caches not started yet, so the queue drains
  }

  const OverlayId popular = OverlayId::hash("popular");
  const OverlayId rare = OverlayId::hash("rare");
  nodes[1]->publish(popular, toBytes("pop"), /*seedCache=*/true);
  nodes[2]->publish(rare, toBytes("rare"), /*seedCache=*/false);
  sim.run();
  // Let gossip spread the popular item, then stop the periodic rounds so the
  // final sim.run() drains instead of gossiping forever.
  for (const auto& n : nodes) n->cache().start();
  sim.runUntil(sim.now() + 20 * kSecond);
  for (const auto& n : nodes) n->cache().stop();

  HybridLookupResult popResult;
  nodes[10]->lookup(popular, [&](HybridLookupResult r) { popResult = r; });
  sim.run();
  ASSERT_TRUE(popResult.value.has_value());
  EXPECT_TRUE(popResult.fromCache);
  EXPECT_EQ(popResult.messagesSent, 0u);

  HybridLookupResult rareResult;
  nodes[10]->lookup(rare, [&](HybridLookupResult r) { rareResult = r; });
  sim.run();
  ASSERT_TRUE(rareResult.value.has_value());
  // The rare item was never gossiped: it comes through the DHT tier (possibly
  // from the local DHT replica if node 10 happens to hold one).
  EXPECT_FALSE(rareResult.fromCache);
}

// --- Federation ---

TEST(Federation, CrossServerQuery) {
  util::Rng rng(23);
  sim::Simulator sim;
  sim::Network net(sim, sim::LatencyModel{5 * kMillisecond, 0, 0.0}, rng);
  FederationDirectory directory;
  FederatedServer s1(net, directory);
  FederatedServer s2(net, directory);
  directory.assign("alice", s1.addr());
  directory.assign("bob", s2.addr());
  s1.storeLocal("alice", "profile", toBytes("alice-profile"));
  s2.storeLocal("bob", "profile", toBytes("bob-profile"));

  // Query for bob via s1 (cross-server forward).
  std::optional<util::Bytes> found;
  s1.query("bob", "profile", 5 * kSecond,
           [&](std::optional<util::Bytes> v) { found = v; });
  sim.run();
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, toBytes("bob-profile"));

  // Local query stays local.
  std::optional<util::Bytes> local;
  s1.query("alice", "profile", 5 * kSecond,
           [&](std::optional<util::Bytes> v) { local = v; });
  sim.run();
  EXPECT_TRUE(local.has_value());
}

TEST(Federation, NoServerHasGlobalView) {
  util::Rng rng(24);
  sim::Simulator sim;
  sim::Network net(sim, sim::LatencyModel{}, rng);
  FederationDirectory directory;
  FederatedServer s1(net, directory);
  FederatedServer s2(net, directory);
  FederatedServer s3(net, directory);
  for (int i = 0; i < 30; ++i) {
    const std::string user = "u" + std::to_string(i);
    FederatedServer* home = (i % 3 == 0) ? &s1 : (i % 3 == 1) ? &s2 : &s3;
    directory.assign(user, home->addr());
    home->storeLocal(user, "d", toBytes("x"));
  }
  const auto views = directory.viewSizes();
  EXPECT_EQ(views.size(), 3u);
  for (const auto& [server, count] : views) {
    EXPECT_EQ(count, 10u);  // each server sees only a third of the users
  }
  EXPECT_EQ(s1.localUserCount(), 10u);
}

TEST(Federation, UnknownUserFails) {
  util::Rng rng(25);
  sim::Simulator sim;
  sim::Network net(sim, sim::LatencyModel{}, rng);
  FederationDirectory directory;
  FederatedServer s1(net, directory);
  bool called = false;
  std::optional<util::Bytes> found = toBytes("sentinel");
  s1.query("ghost", "profile", kSecond, [&](std::optional<util::Bytes> v) {
    called = true;
    found = v;
  });
  sim.run();
  EXPECT_TRUE(called);
  EXPECT_FALSE(found.has_value());
}

// --- Replication / availability ---

TEST(Replication, AvailabilityRequiresOneOnlineReplica) {
  util::Rng rng(27);
  sim::Simulator sim;
  sim::Network net(sim, sim::LatencyModel{}, rng);
  std::vector<sim::NodeAddr> nodes;
  for (int i = 0; i < 10; ++i) nodes.push_back(net.addNode());
  ReplicationManager manager(net);
  const OverlayId item = OverlayId::hash("item");
  const auto replicas = manager.place(item, 3, nodes);
  ASSERT_EQ(replicas.size(), 3u);
  EXPECT_TRUE(manager.available(item));
  EXPECT_EQ(manager.onlineReplicas(item), 3u);

  net.setOnline(replicas[0], false);
  net.setOnline(replicas[1], false);
  EXPECT_TRUE(manager.available(item));
  net.setOnline(replicas[2], false);
  EXPECT_FALSE(manager.available(item));
}

TEST(Replication, MoreReplicasMoreAvailabilityUnderChurn) {
  util::Rng rng(29);
  sim::Simulator sim;
  sim::Network net(sim, sim::LatencyModel{}, rng);
  std::vector<sim::NodeAddr> nodes;
  for (int i = 0; i < 100; ++i) nodes.push_back(net.addNode());
  sim::ChurnConfig churnConfig{300, 300, 0.5};  // 50% expected availability
  sim::ChurnProcess churn(net, churnConfig, nodes);

  ReplicationManager manager(net);
  std::vector<OverlayId> itemsK1;
  std::vector<OverlayId> itemsK4;
  for (int i = 0; i < 40; ++i) {
    const OverlayId a = OverlayId::hash("k1-" + std::to_string(i));
    const OverlayId b = OverlayId::hash("k4-" + std::to_string(i));
    manager.place(a, 1, nodes);
    manager.place(b, 4, nodes);
    itemsK1.push_back(a);
    itemsK4.push_back(b);
  }
  AvailabilityProbe probe1(manager, itemsK1);
  AvailabilityProbe probe4(manager, itemsK4);
  probe1.schedule(sim, 60 * kSecond, 30);
  probe4.schedule(sim, 60 * kSecond, 30);
  sim.runUntil(31 * 60 * kSecond);
  churn.stop();

  EXPECT_NEAR(probe1.meanAvailability(), 0.5, 0.15);
  EXPECT_GT(probe4.meanAvailability(), probe1.meanAvailability() + 0.2);
  EXPECT_GT(probe4.meanAvailability(), 0.85);
}

TEST(Replication, ObserverViewSizes) {
  util::Rng rng(31);
  sim::Simulator sim;
  sim::Network net(sim, sim::LatencyModel{}, rng);
  std::vector<sim::NodeAddr> nodes;
  for (int i = 0; i < 5; ++i) nodes.push_back(net.addNode());
  ReplicationManager manager(net);
  for (int i = 0; i < 20; ++i) {
    manager.place(OverlayId::hash("i" + std::to_string(i)), 2, nodes);
  }
  const auto views = manager.observerViewSizes();
  std::size_t total = 0;
  for (const auto& [node, count] : views) total += count;
  EXPECT_EQ(total, 40u);  // 20 items x 2 replicas
}

TEST(Replication, RepairRestoresTargetOnlineReplicas) {
  util::Rng rng(35);
  sim::Simulator sim;
  sim::Network net(sim, sim::LatencyModel{}, rng);
  std::vector<sim::NodeAddr> nodes;
  for (int i = 0; i < 20; ++i) nodes.push_back(net.addNode());
  ReplicationManager manager(net);
  const OverlayId item = OverlayId::hash("repairable");
  const auto replicas = manager.place(item, 3, nodes);
  // Two replicas depart permanently.
  net.setOnline(replicas[0], false);
  net.setOnline(replicas[1], false);
  EXPECT_EQ(manager.onlineReplicas(item), 1u);
  const std::size_t added = manager.repair(nodes);
  EXPECT_EQ(added, 2u);
  EXPECT_EQ(manager.onlineReplicas(item), 3u);
  // A second pass is a no-op.
  EXPECT_EQ(manager.repair(nodes), 0u);
}

TEST(Replication, SocialPlacementConvergesUnderChurnAndFaults) {
  // Social placement under the PR 1 fault machinery: exponential churn plus
  // a 20% global drop storm and a partition that heals. Faults shape message
  // delivery, churn shapes the online set the repair loop recruits from —
  // after everything heals, every item must be back at its full replication
  // factor with no node holding two replicas of the same item.
  util::Rng rng(42);
  sim::Simulator sim;
  sim::Network net(sim, sim::LatencyModel{}, rng);
  std::vector<sim::NodeAddr> nodes;
  for (int i = 0; i < 30; ++i) nodes.push_back(net.addNode());

  util::Rng graphRng(7);
  const social::SocialGraph graph =
      social::zipfFollower(30, 4, 1.0, graphRng);
  SocialPolicy policy(net, {&graph});
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    policy.bind(nodes[i], social::syntheticUser(i));
    policy.bindId(nodes[i], OverlayId::hash("n" + std::to_string(i)));
  }

  sim::FaultPlan plan;
  plan.between(2 * 60 * kSecond, 8 * 60 * kSecond,
               sim::FaultRule::global().drop(0.2));
  plan.partition("island", {nodes[0], nodes[1], nodes[2]}, 3 * 60 * kSecond,
                 /*heal=*/9 * 60 * kSecond);
  net.setFaultPlan(&plan);

  ReplicationManager manager(net, &policy);
  std::vector<OverlayId> items;
  for (int i = 0; i < 20; ++i) {
    const OverlayId item = OverlayId::hash("wall-" + std::to_string(i));
    const auto chosen =
        manager.place(item, 3, nodes, social::syntheticUser(i));
    EXPECT_EQ(chosen.size(), 3u);
    items.push_back(item);
  }

  sim::ChurnConfig churnConfig{240, 120, 0.8};
  sim::ChurnProcess churn(net, churnConfig, nodes);
  for (int minute = 1; minute <= 15; ++minute) {
    sim.schedule(minute * 60 * kSecond, [&] {
      manager.repair(nodes);
      for (const OverlayId& item : items) {
        const auto& replicas = manager.replicasOf(item);
        for (std::size_t i = 1; i < replicas.size(); ++i) {
          ASSERT_LT(replicas[i - 1], replicas[i])
              << "duplicate replica placed on one node";
        }
      }
    });
  }
  sim.runUntil(16 * 60 * kSecond);
  churn.stop();
  net.setFaultPlan(nullptr);

  // Everything heals: one final repair restores every item to at least its
  // full factor (repair never drops, so sets recruited during churn can
  // exceed the target once offline replicas return).
  for (const sim::NodeAddr node : nodes) net.setOnline(node, true);
  manager.repair(nodes);
  for (const OverlayId& item : items) {
    EXPECT_GE(manager.onlineReplicas(item), 3u);
    const auto& replicas = manager.replicasOf(item);
    for (std::size_t i = 1; i < replicas.size(); ++i) {
      EXPECT_LT(replicas[i - 1], replicas[i]);
    }
  }
}

TEST(Replication, RepairSkipsHealthyItems) {
  util::Rng rng(36);
  sim::Simulator sim;
  sim::Network net(sim, sim::LatencyModel{}, rng);
  std::vector<sim::NodeAddr> nodes;
  for (int i = 0; i < 10; ++i) nodes.push_back(net.addNode());
  ReplicationManager manager(net);
  manager.place(OverlayId::hash("healthy"), 2, nodes);
  EXPECT_EQ(manager.repair(nodes), 0u);
}

// --- Location tree (Vis-a-vis, sec II-B) ---

TEST(LocationTree, RegisterAndRegionQueries) {
  LocationTree tree;
  EXPECT_TRUE(tree.registerUser("alice", "tr/istanbul/kadikoy"));
  EXPECT_TRUE(tree.registerUser("bob", "tr/istanbul/besiktas"));
  EXPECT_TRUE(tree.registerUser("carol", "tr/ankara"));
  EXPECT_TRUE(tree.registerUser("dave", "de/berlin"));

  EXPECT_EQ(tree.usersIn("tr/istanbul"),
            (std::vector<social::UserId>{"alice", "bob"}));
  EXPECT_EQ(tree.usersIn("tr").size(), 3u);
  EXPECT_EQ(tree.usersIn("de"), (std::vector<social::UserId>{"dave"}));
  EXPECT_TRUE(tree.usersIn("us").empty());
  EXPECT_EQ(tree.usersExactlyAt("tr/istanbul").size(), 0u);
  EXPECT_EQ(tree.usersExactlyAt("tr/ankara").size(), 1u);
  EXPECT_EQ(tree.userCount(), 4u);
}

TEST(LocationTree, PathsAreCaseNormalizedAndValidated) {
  LocationTree tree;
  EXPECT_TRUE(tree.registerUser("alice", "TR/Istanbul"));
  EXPECT_EQ(tree.usersIn("tr/istanbul"),
            (std::vector<social::UserId>{"alice"}));
  EXPECT_FALSE(tree.registerUser("bob", ""));
  EXPECT_FALSE(tree.registerUser("bob", "tr//kadikoy"));
}

TEST(LocationTree, MovingUserUpdatesRegistration) {
  LocationTree tree;
  tree.registerUser("alice", "tr/istanbul");
  tree.registerUser("alice", "de/berlin");
  EXPECT_TRUE(tree.usersIn("tr").empty());
  EXPECT_EQ(tree.locationOf("alice").value(), "de/berlin");
}

TEST(LocationTree, CoordinatorElectionAndHandoff) {
  LocationTree tree;
  tree.registerUser("alice", "tr/istanbul");
  tree.registerUser("bob", "tr/istanbul");
  EXPECT_EQ(tree.coordinatorOf("tr/istanbul").value(), "alice");
  EXPECT_EQ(tree.coordinatorOf("tr").value(), "alice");
  // Coordinator leaves: bob takes over.
  tree.deregisterUser("alice");
  EXPECT_EQ(tree.coordinatorOf("tr/istanbul").value(), "bob");
  EXPECT_EQ(tree.coordinatorOf("tr").value(), "bob");
}

TEST(LocationTree, QueriesTouchOnlyTheSubtree) {
  LocationTree tree;
  for (int c = 0; c < 5; ++c) {
    for (int i = 0; i < 4; ++i) {
      tree.registerUser("u" + std::to_string(c * 10 + i),
                        "cc" + std::to_string(c) + "/city" + std::to_string(i));
    }
  }
  // A city query touches far fewer nodes than the whole tree.
  EXPECT_LT(tree.nodesTouchedBy("cc0/city0"), tree.regionCount() / 2);
  EXPECT_GT(tree.regionCount(), 20u);
}

TEST(Replication, BadPlacementThrows) {
  util::Rng rng(33);
  sim::Simulator sim;
  sim::Network net(sim, sim::LatencyModel{}, rng);
  ReplicationManager manager(net);
  EXPECT_THROW(manager.place(OverlayId::hash("x"), 0, {net.addNode()}),
               util::NetError);
  EXPECT_THROW(manager.place(OverlayId::hash("x"), 1, {}), util::NetError);
}

}  // namespace
}  // namespace dosn::overlay
