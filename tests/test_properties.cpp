// Cross-module property tests: randomized sweeps checking invariants that
// single-case unit tests can miss.
//
//  - random policy formulas: the pure evaluator and CP-ABE decryption must
//    agree on every attribute subset;
//  - ciphertext robustness: random corruption of any envelope never crashes
//    and never yields a different plaintext;
//  - Kademlia under message loss: redundancy keeps lookups working;
//  - bignum algebra: ring identities on random operands.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "dosn/abe/cpabe.hpp"
#include "dosn/bignum/modmath.hpp"
#include "dosn/bignum/prime.hpp"
#include "dosn/crypto/aead.hpp"
#include "dosn/overlay/kademlia.hpp"
#include "dosn/privacy/hybrid_acl.hpp"

namespace dosn {
namespace {

using policy::Policy;
using policy::PolicyNode;
using util::toBytes;

const pkcrypto::DlogGroup& testGroup() {
  return pkcrypto::DlogGroup::cached(256);
}

// --- Random policy <-> CP-ABE agreement ---

std::unique_ptr<PolicyNode> randomPolicyTree(util::Rng& rng,
                                             const std::vector<std::string>& attrs,
                                             int depth) {
  auto node = std::make_unique<PolicyNode>();
  if (depth == 0 || rng.chance(0.4)) {
    node->kind = PolicyNode::Kind::kAttribute;
    node->attribute = attrs[rng.uniform(attrs.size())];
    return node;
  }
  node->kind = PolicyNode::Kind::kThreshold;
  const std::size_t children = 2 + rng.uniform(3);  // 2..4
  node->threshold = 1 + rng.uniform(children);      // 1..children
  for (std::size_t i = 0; i < children; ++i) {
    node->children.push_back(randomPolicyTree(rng, attrs, depth - 1));
  }
  return node;
}

Policy randomPolicy(util::Rng& rng, const std::vector<std::string>& attrs,
                    int depth) {
  // Policy has no public from-root constructor, so encode the random tree in
  // Policy's wire format and decode it — which also exercises the codec.
  auto root = randomPolicyTree(rng, attrs, depth);
  util::Writer w;
  w.boolean(true);
  // Mirror of Policy::serialize's node encoding:
  std::function<void(const PolicyNode&)> enc = [&](const PolicyNode& n) {
    if (n.kind == PolicyNode::Kind::kAttribute) {
      w.u8(0);
      w.str(n.attribute);
      return;
    }
    w.u8(1);
    w.u32(static_cast<std::uint32_t>(n.threshold));
    w.u32(static_cast<std::uint32_t>(n.children.size()));
    for (const auto& c : n.children) enc(*c);
  };
  enc(*root);
  const auto decoded = Policy::deserialize(w.buffer());
  EXPECT_TRUE(decoded.has_value());
  return *decoded;
}

class PolicyAbeAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PolicyAbeAgreement, EvaluatorAndDecryptionAgree) {
  util::Rng rng(GetParam());
  const std::vector<std::string> universe = {"a", "b", "c", "d", "e"};
  const auto& group = testGroup();
  abe::CpAbeAuthority authority(group, rng);

  for (int round = 0; round < 4; ++round) {
    const Policy p = randomPolicy(rng, universe, 2);
    const auto ct = abe::cpabeEncrypt(group, authority.publicKeysFor(p), p,
                                      toBytes("payload"), rng);
    for (int subset = 0; subset < 6; ++subset) {
      std::set<std::string> attrs;
      for (const auto& a : universe) {
        if (rng.chance(0.5)) attrs.insert(a);
      }
      const bool expected = p.satisfied(attrs);
      const auto decrypted =
          abe::cpabeDecrypt(group, authority.keyGen(attrs), ct);
      EXPECT_EQ(decrypted.has_value(), expected)
          << "policy=" << p.toString() << " attrs=" << attrs.size();
      if (decrypted) {
        EXPECT_EQ(*decrypted, toBytes("payload"));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyAbeAgreement,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// --- Corruption robustness ---

class CorruptionRobustness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CorruptionRobustness, AeadNeverAcceptsCorruptedBox) {
  util::Rng rng(GetParam());
  const util::Bytes key = rng.bytes(32);
  const util::Bytes plaintext = rng.bytes(100);
  const util::Bytes box = crypto::sealWithNonce(key, plaintext, rng);
  for (int trial = 0; trial < 50; ++trial) {
    util::Bytes corrupted = box;
    // Flip 1-3 random bits, or truncate, or extend.
    const int mode = static_cast<int>(rng.uniform(3));
    if (mode == 0) {
      const int flips = 1 + static_cast<int>(rng.uniform(3));
      for (int f = 0; f < flips; ++f) {
        corrupted[rng.uniform(corrupted.size())] ^=
            static_cast<std::uint8_t>(1 << rng.uniform(8));
      }
    } else if (mode == 1) {
      corrupted.resize(rng.uniform(corrupted.size()));
    } else {
      corrupted.push_back(static_cast<std::uint8_t>(rng.next()));
    }
    if (corrupted == box) continue;
    const auto opened = crypto::openWithNonce(key, corrupted);
    EXPECT_FALSE(opened.has_value());
  }
}

TEST_P(CorruptionRobustness, HybridEnvelopeCorruptionSafe) {
  util::Rng rng(GetParam());
  privacy::HybridAcl acl(testGroup(), rng, privacy::WrapScheme::kPublicKey);
  acl.createGroup("g");
  acl.addMember("g", "alice");
  const util::Bytes payload = rng.bytes(256);
  const privacy::Envelope env = acl.encrypt("g", payload, rng);
  for (int trial = 0; trial < 25; ++trial) {
    privacy::Envelope corrupted = env;
    corrupted.serial = 0;  // detach from retained history: force direct parse
    corrupted.blob[rng.uniform(corrupted.blob.size())] ^=
        static_cast<std::uint8_t>(1 << rng.uniform(8));
    const auto opened = acl.decrypt("alice", corrupted);
    // Either rejected, or (if the flip hit ignorable bytes) the original.
    if (opened) {
      EXPECT_EQ(*opened, payload);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptionRobustness,
                         ::testing::Values(101, 202, 303));

// --- Kademlia under message loss (failure injection) ---

TEST(KademliaLoss, LookupsSurviveTenPercentLoss) {
  util::Rng rng(7);
  sim::Simulator simulator;
  sim::Network net(
      simulator,
      sim::LatencyModel{5 * sim::kMillisecond, 2 * sim::kMillisecond, 0.10},
      rng);
  std::vector<std::unique_ptr<overlay::KademliaNode>> peers;
  for (int i = 0; i < 30; ++i) {
    peers.push_back(std::make_unique<overlay::KademliaNode>(
        net, overlay::OverlayId::random(rng)));
  }
  const overlay::Contact seed{peers[0]->id(), peers[0]->addr()};
  for (std::size_t i = 1; i < peers.size(); ++i) {
    peers[i]->bootstrap(seed);
    simulator.run();
  }
  // Store 20 items, look each up from a random peer.
  std::size_t found = 0;
  for (int i = 0; i < 20; ++i) {
    const auto key = overlay::OverlayId::hash("lossy-" + std::to_string(i));
    peers[static_cast<std::size_t>(i) % peers.size()]->store(key, toBytes("v"), {});
    simulator.run();
    peers[rng.uniform(peers.size())]->findValue(
        key, [&](overlay::LookupResult r) {
          if (r.value) ++found;
        });
    simulator.run();
  }
  // Replication (k=20) and lookup parallelism (alpha=3) absorb 10% loss.
  EXPECT_GE(found, 18u);
}

// --- Bignum ring identities ---

class BignumAlgebra : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BignumAlgebra, RingIdentities) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 20; ++i) {
    const bignum::BigUint a = bignum::randomBits(8 + rng.uniform(200), rng);
    const bignum::BigUint b = bignum::randomBits(8 + rng.uniform(200), rng);
    const bignum::BigUint c = bignum::randomBits(8 + rng.uniform(100), rng);
    // Commutativity and distributivity.
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) * c, a * c + b * c);
    // Shift-multiply equivalence.
    EXPECT_EQ(a << 13, a * (bignum::BigUint(1) << 13));
    // Add-then-subtract round trip.
    EXPECT_EQ((a + b) - b, a);
  }
}

TEST_P(BignumAlgebra, ModularExponentLaws) {
  util::Rng rng(GetParam() + 1000);
  const bignum::BigUint m = bignum::randomPrime(96, rng);
  for (int i = 0; i < 8; ++i) {
    const bignum::BigUint g = bignum::randomUnit(m, rng);
    const bignum::BigUint x = bignum::randomBits(48, rng);
    const bignum::BigUint y = bignum::randomBits(48, rng);
    // g^x * g^y == g^(x+y) mod m
    EXPECT_EQ(bignum::mulMod(bignum::powMod(g, x, m), bignum::powMod(g, y, m), m),
              bignum::powMod(g, x + y, m));
    // (g^x)^y == g^(x*y) mod m
    EXPECT_EQ(bignum::powMod(bignum::powMod(g, x, m), y, m),
              bignum::powMod(g, x * y, m));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BignumAlgebra, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace dosn
