// Tests for the policy language, Shamir sharing, CP-ABE, KP-ABE and IBBE.
#include <gtest/gtest.h>

#include "dosn/abe/cpabe.hpp"
#include "dosn/abe/kpabe.hpp"
#include "dosn/ibbe/ibbe.hpp"
#include "dosn/policy/field.hpp"
#include "dosn/policy/policy.hpp"
#include "dosn/policy/shamir.hpp"
#include "dosn/util/error.hpp"

namespace dosn {
namespace {

using policy::Policy;
using policy::PrimeField;
using policy::Share;
using util::toBytes;

const pkcrypto::DlogGroup& testGroup() {
  return pkcrypto::DlogGroup::cached(256);
}

// --- PrimeField ---

TEST(Field, BasicOps) {
  const PrimeField f(bignum::BigUint(97));
  EXPECT_EQ(f.add(bignum::BigUint(90), bignum::BigUint(10)).toUint64(), 3u);
  EXPECT_EQ(f.sub(bignum::BigUint(5), bignum::BigUint(10)).toUint64(), 92u);
  EXPECT_EQ(f.mul(bignum::BigUint(10), bignum::BigUint(10)).toUint64(), 3u);
  EXPECT_EQ(f.neg(bignum::BigUint(1)).toUint64(), 96u);
  EXPECT_EQ(f.mul(bignum::BigUint(3), f.inv(bignum::BigUint(3))).toUint64(), 1u);
  EXPECT_THROW(f.inv(bignum::BigUint(0)), util::DosnError);
}

TEST(Field, StandardFieldIs255Bits) {
  EXPECT_EQ(PrimeField::standard().modulus().bitLength(), 255u);
  EXPECT_EQ(PrimeField::standard().encodedSize(), 32u);
}

TEST(Field, EncodeFixedWidth) {
  const PrimeField& f = PrimeField::standard();
  EXPECT_EQ(f.encode(bignum::BigUint(1)).size(), 32u);
  EXPECT_EQ(f.encode(bignum::BigUint(1)).back(), 1);
}

// --- Shamir ---

TEST(Shamir, ReconstructWithExactThreshold) {
  util::Rng rng(1);
  const PrimeField& f = PrimeField::standard();
  const bignum::BigUint secret = f.random(rng);
  const auto shares = policy::shamirShare(f, secret, 3, 5, rng);
  ASSERT_EQ(shares.size(), 5u);
  const std::vector<Share> subset{shares[0], shares[2], shares[4]};
  EXPECT_EQ(policy::shamirReconstruct(f, subset), secret);
}

TEST(Shamir, AllSharesAlsoReconstruct) {
  util::Rng rng(2);
  const PrimeField& f = PrimeField::standard();
  const bignum::BigUint secret = f.random(rng);
  const auto shares = policy::shamirShare(f, secret, 2, 4, rng);
  EXPECT_EQ(policy::shamirReconstruct(f, shares), secret);
}

TEST(Shamir, FewerThanThresholdGivesGarbage) {
  util::Rng rng(3);
  const PrimeField& f = PrimeField::standard();
  const bignum::BigUint secret = f.random(rng);
  const auto shares = policy::shamirShare(f, secret, 3, 5, rng);
  const std::vector<Share> subset{shares[0], shares[1]};
  EXPECT_NE(policy::shamirReconstruct(f, subset), secret);
}

TEST(Shamir, OneOfOne) {
  util::Rng rng(4);
  const PrimeField& f = PrimeField::standard();
  const bignum::BigUint secret(12345);
  const auto shares = policy::shamirShare(f, secret, 1, 1, rng);
  EXPECT_EQ(policy::shamirReconstruct(f, shares), secret);
}

TEST(Shamir, BadParamsThrow) {
  util::Rng rng(5);
  const PrimeField& f = PrimeField::standard();
  EXPECT_THROW(policy::shamirShare(f, bignum::BigUint(1), 0, 3, rng),
               util::DosnError);
  EXPECT_THROW(policy::shamirShare(f, bignum::BigUint(1), 4, 3, rng),
               util::DosnError);
  EXPECT_THROW(policy::shamirReconstruct(f, {}), util::DosnError);
}

struct ShamirParams {
  std::size_t k;
  std::size_t n;
};

class ShamirSweep : public ::testing::TestWithParam<ShamirParams> {};

TEST_P(ShamirSweep, AnyKSubsetReconstructs) {
  const auto [k, n] = GetParam();
  util::Rng rng(100 + k * 10 + n);
  const PrimeField& f = PrimeField::standard();
  const bignum::BigUint secret = f.random(rng);
  const auto shares = policy::shamirShare(f, secret, k, n, rng);
  // Take a few random k-subsets.
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<Share> pool = shares;
    rng.shuffle(pool);
    pool.resize(k);
    EXPECT_EQ(policy::shamirReconstruct(f, pool), secret)
        << "k=" << k << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    KN, ShamirSweep,
    ::testing::Values(ShamirParams{1, 3}, ShamirParams{2, 3},
                      ShamirParams{3, 3}, ShamirParams{2, 7},
                      ShamirParams{5, 7}, ShamirParams{7, 10},
                      ShamirParams{10, 10}));

// --- Policy language ---

TEST(Policy, ParseSingleAttribute) {
  const auto p = Policy::parse("family");
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->satisfied({"family"}));
  EXPECT_FALSE(p->satisfied({"work"}));
}

TEST(Policy, ParseAndOr) {
  const auto p = Policy::parse("(relative AND doctor) OR painter");
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->satisfied({"relative", "doctor"}));
  EXPECT_TRUE(p->satisfied({"painter"}));
  EXPECT_FALSE(p->satisfied({"relative"}));
  EXPECT_FALSE(p->satisfied({"doctor"}));
  EXPECT_TRUE(p->satisfied({"relative", "doctor", "painter"}));
}

TEST(Policy, ParseThreshold) {
  const auto p = Policy::parse("2 of (a, b, c)");
  ASSERT_TRUE(p.has_value());
  EXPECT_FALSE(p->satisfied({"a"}));
  EXPECT_TRUE(p->satisfied({"a", "c"}));
  EXPECT_TRUE(p->satisfied({"a", "b", "c"}));
}

TEST(Policy, NestedThreshold) {
  const auto p = Policy::parse("2 of (a AND b, c, d OR e)");
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->satisfied({"a", "b", "c"}));
  EXPECT_TRUE(p->satisfied({"c", "e"}));
  EXPECT_FALSE(p->satisfied({"a", "c"}));  // a alone doesn't satisfy (a AND b)
}

TEST(Policy, CaseInsensitiveKeywords) {
  const auto p = Policy::parse("a and b or c");
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->satisfied({"c"}));
  EXPECT_TRUE(p->satisfied({"a", "b"}));
}

TEST(Policy, RejectsBadSyntax) {
  EXPECT_FALSE(Policy::parse("").has_value());
  EXPECT_FALSE(Policy::parse("a AND").has_value());
  EXPECT_FALSE(Policy::parse("(a").has_value());
  EXPECT_FALSE(Policy::parse("4 of (a, b)").has_value());
  EXPECT_FALSE(Policy::parse("0 of (a)").has_value());
  EXPECT_FALSE(Policy::parse("a b").has_value());
  EXPECT_FALSE(Policy::parse("AND").has_value());
}

TEST(Policy, ToStringRoundTrips) {
  for (const char* text :
       {"family", "(a AND b) OR c", "2 of (x, y, z)", "a AND b AND c"}) {
    const auto p = Policy::parse(text);
    ASSERT_TRUE(p.has_value()) << text;
    const auto reparsed = Policy::parse(p->toString());
    ASSERT_TRUE(reparsed.has_value()) << p->toString();
    // Same satisfiability on the attribute universe.
    const auto attrs = p->attributes();
    EXPECT_EQ(p->satisfied(attrs), reparsed->satisfied(attrs));
    EXPECT_EQ(p->toString(), reparsed->toString());
  }
}

TEST(Policy, SerializeRoundTrips) {
  const auto p = Policy::parse("2 of (a AND b, c, d OR e)");
  ASSERT_TRUE(p.has_value());
  const auto back = Policy::deserialize(p->serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->toString(), p->toString());
  EXPECT_FALSE(Policy::deserialize(toBytes("junk")).has_value());
}

TEST(Policy, LeavesInDfsOrder) {
  const auto p = Policy::parse("(a AND b) OR c");
  ASSERT_TRUE(p.has_value());
  const auto leaves = p->leaves();
  ASSERT_EQ(leaves.size(), 3u);
  EXPECT_EQ(leaves[0]->attribute, "a");
  EXPECT_EQ(leaves[1]->attribute, "b");
  EXPECT_EQ(leaves[2]->attribute, "c");
}

TEST(Policy, MapAttributes) {
  const auto p = Policy::parse("a AND b");
  ASSERT_TRUE(p.has_value());
  const Policy q = p->mapAttributes([](const std::string& a) { return a + "#1"; });
  EXPECT_TRUE(q.satisfied({"a#1", "b#1"}));
  EXPECT_FALSE(q.satisfied({"a", "b"}));
  // Original unchanged (deep copy).
  EXPECT_TRUE(p->satisfied({"a", "b"}));
}

TEST(Policy, DuplicateAttributesInPolicy) {
  const auto p = Policy::parse("(a AND b) OR (a AND c)");
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->satisfied({"a", "c"}));
  EXPECT_EQ(p->attributes().size(), 3u);
  EXPECT_EQ(p->leaves().size(), 4u);
}

// --- CP-ABE ---

class CpAbeTest : public ::testing::Test {
 protected:
  util::Rng rng_{42};
  const pkcrypto::DlogGroup& group_ = testGroup();
  abe::CpAbeAuthority authority_{group_, rng_};
};

TEST_F(CpAbeTest, SatisfyingKeyDecrypts) {
  const auto p = *Policy::parse("(relative AND doctor) OR painter");
  const auto ct = abe::cpabeEncrypt(group_, authority_.publicKeysFor(p), p,
                                    toBytes("the diagnosis"), rng_);
  const auto key = authority_.keyGen({"relative", "doctor"});
  EXPECT_EQ(abe::cpabeDecrypt(group_, key, ct).value(), toBytes("the diagnosis"));
  const auto painterKey = authority_.keyGen({"painter"});
  EXPECT_EQ(abe::cpabeDecrypt(group_, painterKey, ct).value(),
            toBytes("the diagnosis"));
}

TEST_F(CpAbeTest, UnsatisfyingKeyFails) {
  const auto p = *Policy::parse("(relative AND doctor) OR painter");
  const auto ct = abe::cpabeEncrypt(group_, authority_.publicKeysFor(p), p,
                                    toBytes("secret"), rng_);
  EXPECT_FALSE(abe::cpabeDecrypt(group_, authority_.keyGen({"relative"}), ct)
                   .has_value());
  EXPECT_FALSE(abe::cpabeDecrypt(group_, authority_.keyGen({"sculptor"}), ct)
                   .has_value());
  EXPECT_FALSE(abe::cpabeDecrypt(group_, authority_.keyGen({}), ct).has_value());
}

TEST_F(CpAbeTest, ThresholdPolicy) {
  const auto p = *Policy::parse("2 of (a, b, c)");
  const auto ct = abe::cpabeEncrypt(group_, authority_.publicKeysFor(p), p,
                                    toBytes("m"), rng_);
  EXPECT_TRUE(abe::cpabeDecrypt(group_, authority_.keyGen({"a", "c"}), ct)
                  .has_value());
  EXPECT_FALSE(abe::cpabeDecrypt(group_, authority_.keyGen({"b"}), ct)
                   .has_value());
}

TEST_F(CpAbeTest, SerializationRoundTrip) {
  const auto p = *Policy::parse("x OR y");
  const auto ct = abe::cpabeEncrypt(group_, authority_.publicKeysFor(p), p,
                                    toBytes("m"), rng_);
  const auto back = abe::CpAbeCiphertext::deserialize(ct.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(abe::cpabeDecrypt(group_, authority_.keyGen({"x"}), *back).value(),
            toBytes("m"));
}

TEST_F(CpAbeTest, DifferentAuthoritiesIncompatible) {
  abe::CpAbeAuthority other(group_, rng_);
  const auto p = *Policy::parse("a");
  const auto ct = abe::cpabeEncrypt(group_, authority_.publicKeysFor(p), p,
                                    toBytes("m"), rng_);
  EXPECT_FALSE(abe::cpabeDecrypt(group_, other.keyGen({"a"}), ct).has_value());
}

TEST_F(CpAbeTest, MissingAttributeKeyThrows) {
  const auto p = *Policy::parse("a AND b");
  abe::AttributePublicKeys partial;
  partial.emplace("a", authority_.attributePublicKey("a"));
  EXPECT_THROW(abe::cpabeEncrypt(group_, partial, p, toBytes("m"), rng_),
               util::CryptoError);
}

TEST_F(CpAbeTest, DeepNestedPolicy) {
  const auto p = *Policy::parse(
      "2 of (alpha AND beta, gamma OR delta, 2 of (x, y, z))");
  const auto ct = abe::cpabeEncrypt(group_, authority_.publicKeysFor(p), p,
                                    toBytes("deep"), rng_);
  EXPECT_TRUE(abe::cpabeDecrypt(group_,
                                authority_.keyGen({"alpha", "beta", "gamma"}),
                                ct)
                  .has_value());
  EXPECT_TRUE(
      abe::cpabeDecrypt(group_, authority_.keyGen({"x", "z", "delta"}), ct)
          .has_value());
  EXPECT_FALSE(
      abe::cpabeDecrypt(group_, authority_.keyGen({"alpha", "gamma"}), ct)
          .has_value());
}

// --- KP-ABE ---

class KpAbeTest : public ::testing::Test {
 protected:
  util::Rng rng_{43};
  const pkcrypto::DlogGroup& group_ = testGroup();
  abe::KpAbeAuthority authority_{group_, rng_};
};

TEST_F(KpAbeTest, MatchingPolicyDecrypts) {
  const auto key = authority_.keyGen(*Policy::parse("sports AND turkey"));
  const std::set<std::string> attrs = {"sports", "turkey", "news"};
  const auto ct = abe::kpabeEncrypt(group_, authority_.publicKeysFor(attrs),
                                    attrs, toBytes("match report"), rng_);
  EXPECT_EQ(abe::kpabeDecrypt(group_, key, ct).value(), toBytes("match report"));
}

TEST_F(KpAbeTest, NonMatchingPolicyFails) {
  const auto key = authority_.keyGen(*Policy::parse("sports AND france"));
  const std::set<std::string> attrs = {"sports", "turkey"};
  const auto ct = abe::kpabeEncrypt(group_, authority_.publicKeysFor(attrs),
                                    attrs, toBytes("m"), rng_);
  EXPECT_FALSE(abe::kpabeDecrypt(group_, key, ct).has_value());
}

TEST_F(KpAbeTest, OrPolicyNeedsOneAttribute) {
  const auto key = authority_.keyGen(*Policy::parse("finance OR tech"));
  const std::set<std::string> attrs = {"tech"};
  const auto ct = abe::kpabeEncrypt(group_, authority_.publicKeysFor(attrs),
                                    attrs, toBytes("m"), rng_);
  EXPECT_TRUE(abe::kpabeDecrypt(group_, key, ct).has_value());
}

TEST_F(KpAbeTest, SerializationRoundTrip) {
  const auto key = authority_.keyGen(*Policy::parse("a"));
  const std::set<std::string> attrs = {"a", "b"};
  const auto ct = abe::kpabeEncrypt(group_, authority_.publicKeysFor(attrs),
                                    attrs, toBytes("m"), rng_);
  const auto back = abe::KpAbeCiphertext::deserialize(ct.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(abe::kpabeDecrypt(group_, key, *back).value(), toBytes("m"));
}

TEST_F(KpAbeTest, EmptyAttributeSetThrows) {
  EXPECT_THROW(abe::kpabeEncrypt(group_, {}, {}, toBytes("m"), rng_),
               util::CryptoError);
}

// --- IBBE ---

class IbbeTest : public ::testing::Test {
 protected:
  util::Rng rng_{44};
  const pkcrypto::DlogGroup& group_ = testGroup();
  ibbe::Pkg pkg_{group_, rng_};

  ibbe::IbbeCiphertext encryptTo(const std::vector<std::string>& recipients,
                                 const std::string& msg) {
    std::map<std::string, bignum::BigUint> directory;
    for (const auto& id : recipients) {
      directory.emplace(id, pkg_.identityPublicKey(id));
    }
    return ibbe::ibbeEncrypt(group_, directory, recipients, toBytes(msg), rng_);
  }
};

TEST_F(IbbeTest, ListedRecipientsDecrypt) {
  const auto ct = encryptTo({"alice@osn", "bob@osn"}, "party on friday");
  EXPECT_EQ(ibbe::ibbeDecrypt(group_, pkg_.extract("alice@osn"), ct).value(),
            toBytes("party on friday"));
  EXPECT_EQ(ibbe::ibbeDecrypt(group_, pkg_.extract("bob@osn"), ct).value(),
            toBytes("party on friday"));
}

TEST_F(IbbeTest, UnlistedIdentityFails) {
  const auto ct = encryptTo({"alice@osn"}, "m");
  EXPECT_FALSE(ibbe::ibbeDecrypt(group_, pkg_.extract("eve@osn"), ct).has_value());
}

TEST_F(IbbeTest, AnyStringIsAnIdentity) {
  const std::string weird = "Üñïçødé user!! +tag";
  const auto ct = encryptTo({weird}, "m");
  EXPECT_TRUE(ibbe::ibbeDecrypt(group_, pkg_.extract(weird), ct).has_value());
}

TEST_F(IbbeTest, RemovalNeedsNoRekey) {
  // Same key object decrypts broadcast 1 but not broadcast 2 (which simply
  // omits bob) — no key material changed anywhere.
  const auto bobKey = pkg_.extract("bob@osn");
  const auto ct1 = encryptTo({"alice@osn", "bob@osn"}, "m1");
  const auto ct2 = encryptTo({"alice@osn"}, "m2");
  EXPECT_TRUE(ibbe::ibbeDecrypt(group_, bobKey, ct1).has_value());
  EXPECT_FALSE(ibbe::ibbeDecrypt(group_, bobKey, ct2).has_value());
  EXPECT_TRUE(
      ibbe::ibbeDecrypt(group_, pkg_.extract("alice@osn"), ct2).has_value());
}

TEST_F(IbbeTest, SerializationRoundTrip) {
  const auto ct = encryptTo({"a", "b", "c"}, "m");
  const auto back = ibbe::IbbeCiphertext::deserialize(ct.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(ibbe::ibbeDecrypt(group_, pkg_.extract("b"), *back).value(),
            toBytes("m"));
}

TEST_F(IbbeTest, DifferentPkgsIncompatible) {
  ibbe::Pkg other(group_, rng_);
  const auto ct = encryptTo({"alice"}, "m");
  EXPECT_FALSE(ibbe::ibbeDecrypt(group_, other.extract("alice"), ct).has_value());
}

TEST_F(IbbeTest, CiphertextSizeLinearInRecipients) {
  // Documented deviation from Delerablée: our header is linear. Verify the
  // shape so EXPERIMENTS.md reports it honestly.
  const auto small = encryptTo({"u1", "u2"}, "m");
  std::vector<std::string> many;
  for (int i = 0; i < 20; ++i) many.push_back("u" + std::to_string(i));
  const auto large = encryptTo(many, "m");
  EXPECT_GT(large.serialize().size(), small.serialize().size() * 5);
}

}  // namespace
}  // namespace dosn
