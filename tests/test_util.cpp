// Unit tests for dosn/util: bytes, rng, codec, strings.
#include <gtest/gtest.h>

#include "dosn/util/bytes.hpp"
#include "dosn/util/codec.hpp"
#include "dosn/util/error.hpp"
#include "dosn/util/rng.hpp"
#include "dosn/util/strings.hpp"

namespace dosn::util {
namespace {

// --- bytes ---

TEST(Bytes, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7f};
  EXPECT_EQ(toHex(data), "0001abff7f");
  EXPECT_EQ(fromHex("0001abff7f").value(), data);
  EXPECT_EQ(fromHex("0001ABFF7F").value(), data);
}

TEST(Bytes, HexRejectsBadInput) {
  EXPECT_FALSE(fromHex("abc").has_value());   // odd length
  EXPECT_FALSE(fromHex("zz").has_value());    // non-hex
  EXPECT_TRUE(fromHex("").has_value());       // empty is valid
  EXPECT_TRUE(fromHex("").value().empty());
}

TEST(Bytes, Base64KnownVectors) {
  // RFC 4648 test vectors.
  EXPECT_EQ(toBase64(toBytes("")), "");
  EXPECT_EQ(toBase64(toBytes("f")), "Zg==");
  EXPECT_EQ(toBase64(toBytes("fo")), "Zm8=");
  EXPECT_EQ(toBase64(toBytes("foo")), "Zm9v");
  EXPECT_EQ(toBase64(toBytes("foob")), "Zm9vYg==");
  EXPECT_EQ(toBase64(toBytes("fooba")), "Zm9vYmE=");
  EXPECT_EQ(toBase64(toBytes("foobar")), "Zm9vYmFy");
}

TEST(Bytes, Base64RoundTrip) {
  Rng rng(1);
  for (std::size_t len : {0u, 1u, 2u, 3u, 31u, 32u, 33u, 255u}) {
    const Bytes data = rng.bytes(len);
    EXPECT_EQ(fromBase64(toBase64(data)).value(), data) << "len=" << len;
  }
}

TEST(Bytes, Base64RejectsBadInput) {
  EXPECT_FALSE(fromBase64("!!!!").has_value());
  EXPECT_FALSE(fromBase64("Zg=?").has_value());
  // Non-canonical trailing bits.
  EXPECT_FALSE(fromBase64("Zh==").has_value());
}

TEST(Bytes, ConstantTimeEqual) {
  EXPECT_TRUE(constantTimeEqual(toBytes("same"), toBytes("same")));
  EXPECT_FALSE(constantTimeEqual(toBytes("same"), toBytes("sane")));
  EXPECT_FALSE(constantTimeEqual(toBytes("short"), toBytes("longer")));
  EXPECT_TRUE(constantTimeEqual({}, {}));
}

TEST(Bytes, XorAndConcat) {
  const Bytes a = {0xf0, 0x0f};
  const Bytes b = {0xff, 0xff};
  EXPECT_EQ(xorBytes(a, b), (Bytes{0x0f, 0xf0}));
  EXPECT_THROW(xorBytes(a, Bytes{0x01}), std::invalid_argument);
  EXPECT_EQ(concat(a, b), (Bytes{0xf0, 0x0f, 0xff, 0xff}));
  EXPECT_EQ(concat(a, b, a), (Bytes{0xf0, 0x0f, 0xff, 0xff, 0xf0, 0x0f}));
}

// --- rng ---

TEST(Rng, DeterministicUnderSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
  EXPECT_THROW(rng.uniform(0), std::invalid_argument);
}

TEST(Rng, RangeInclusive) {
  Rng rng(7);
  bool sawLo = false;
  bool sawHi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    sawLo |= (v == 3);
    sawHi |= (v == 5);
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, UniformRealInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniformReal();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.2);
}

TEST(Rng, FillAndBytes) {
  Rng rng(13);
  const Bytes a = rng.bytes(33);
  EXPECT_EQ(a.size(), 33u);
  Rng rng2(13);
  EXPECT_EQ(rng2.bytes(33), a);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ZipfSkewsTowardLowRanks) {
  Rng rng(19);
  const std::size_t n = 100;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.zipf(n, 1.0)];
  // Rank 0 must dominate rank 50 heavily under s=1.
  EXPECT_GT(counts[0], counts[50] * 5);
}

TEST(Rng, ZipfZeroExponentIsUniformish) {
  Rng rng(21);
  const std::size_t n = 10;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < 10000; ++i) ++counts[rng.zipf(n, 0.0)];
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_GT(counts[i], 700) << "rank " << i;
    EXPECT_LT(counts[i], 1300) << "rank " << i;
  }
}

// --- codec ---

TEST(Codec, RoundTripAllTypes) {
  Writer w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);
  w.boolean(true);
  w.bytes(toBytes("payload"));
  w.str("text");
  w.raw(toBytes("raw"));

  Reader r(w.buffer());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_TRUE(r.boolean());
  EXPECT_EQ(r.bytes(), toBytes("payload"));
  EXPECT_EQ(r.str(), "text");
  EXPECT_EQ(r.raw(3), toBytes("raw"));
  EXPECT_TRUE(r.atEnd());
  EXPECT_NO_THROW(r.expectEnd());
}

TEST(Codec, TruncationThrows) {
  Writer w;
  w.u32(5);
  Reader r(w.buffer());
  r.u16();
  EXPECT_THROW(r.u32(), CodecError);
}

TEST(Codec, TruncatedBytesThrows) {
  Writer w;
  w.u32(100);  // claims 100 bytes follow
  Reader r(w.buffer());
  EXPECT_THROW(r.bytes(), CodecError);
}

TEST(Codec, InvalidBooleanThrows) {
  Writer w;
  w.u8(2);
  Reader r(w.buffer());
  EXPECT_THROW(r.boolean(), CodecError);
}

TEST(Codec, TrailingBytesDetected) {
  Writer w;
  w.u8(1);
  w.u8(2);
  Reader r(w.buffer());
  r.u8();
  EXPECT_THROW(r.expectEnd(), CodecError);
}

// --- strings ---

TEST(Strings, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, ToLower) { EXPECT_EQ(toLower("AbC123"), "abc123"); }

TEST(Strings, Tokenize) {
  EXPECT_EQ(tokenize("Hello, World! 42"),
            (std::vector<std::string>{"hello", "world", "42"}));
  EXPECT_EQ(tokenize("...:::"), (std::vector<std::string>{}));
}

}  // namespace
}  // namespace dosn::util
