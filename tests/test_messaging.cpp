// Tests for pairwise direct messaging and PAD-backed authenticated group
// membership.
#include <gtest/gtest.h>

#include "dosn/privacy/app_capability.hpp"
#include "dosn/privacy/direct_message.hpp"
#include "dosn/privacy/pad_membership.hpp"
#include "dosn/util/error.hpp"

namespace dosn::privacy {
namespace {

using util::toBytes;

const pkcrypto::DlogGroup& testGroup() {
  return pkcrypto::DlogGroup::cached(256);
}

class MessagingTest : public ::testing::Test {
 protected:
  MessagingTest() {
    alice_ = social::createKeyring(testGroup(), "alice", rng_);
    bob_ = social::createKeyring(testGroup(), "bob", rng_);
    mallory_ = social::createKeyring(testGroup(), "mallory", rng_);
    registry_.registerIdentity(social::publicIdentity(alice_));
    registry_.registerIdentity(social::publicIdentity(bob_));
    registry_.registerIdentity(social::publicIdentity(mallory_));
  }

  util::Rng rng_{42};
  social::IdentityRegistry registry_;
  social::Keyring alice_;
  social::Keyring bob_;
  social::Keyring mallory_;
};

TEST_F(MessagingTest, RoundTrip) {
  MessageChannel aliceChan(testGroup(), alice_, registry_);
  MessageChannel bobChan(testGroup(), bob_, registry_);
  const SealedMessage m = aliceChan.seal("bob", toBytes("hi bob"), rng_);
  EXPECT_EQ(m.from, "alice");
  EXPECT_EQ(m.counter, 1u);
  EXPECT_EQ(bobChan.open(m).value(), toBytes("hi bob"));
}

TEST_F(MessagingTest, BothDirectionsIndependent) {
  MessageChannel aliceChan(testGroup(), alice_, registry_);
  MessageChannel bobChan(testGroup(), bob_, registry_);
  const SealedMessage m1 = aliceChan.seal("bob", toBytes("ping"), rng_);
  const SealedMessage m2 = bobChan.seal("alice", toBytes("pong"), rng_);
  EXPECT_EQ(bobChan.open(m1).value(), toBytes("ping"));
  EXPECT_EQ(aliceChan.open(m2).value(), toBytes("pong"));
  // Direction keys differ: bob's reply box under alice->bob key would fail.
  EXPECT_NE(m1.box, m2.box);
}

TEST_F(MessagingTest, EavesdropperCannotOpen) {
  MessageChannel aliceChan(testGroup(), alice_, registry_);
  MessageChannel malloryChan(testGroup(), mallory_, registry_);
  const SealedMessage m = aliceChan.seal("bob", toBytes("secret"), rng_);
  // Mallory intercepts: addressed to bob, so her open() refuses; even a
  // re-addressed copy fails the AEAD (wrong pairwise key + header AAD).
  EXPECT_FALSE(malloryChan.open(m).has_value());
  SealedMessage redirected = m;
  redirected.to = "mallory";
  EXPECT_FALSE(malloryChan.open(redirected).has_value());
}

TEST_F(MessagingTest, TamperDetected) {
  MessageChannel aliceChan(testGroup(), alice_, registry_);
  MessageChannel bobChan(testGroup(), bob_, registry_);
  SealedMessage m = aliceChan.seal("bob", toBytes("pay 5"), rng_);
  m.box[m.box.size() / 2] ^= 1;
  EXPECT_FALSE(bobChan.open(m).has_value());
}

TEST_F(MessagingTest, ReplayRejected) {
  MessageChannel aliceChan(testGroup(), alice_, registry_);
  MessageChannel bobChan(testGroup(), bob_, registry_);
  const SealedMessage m = aliceChan.seal("bob", toBytes("once"), rng_);
  EXPECT_TRUE(bobChan.open(m).has_value());
  EXPECT_FALSE(bobChan.open(m).has_value());  // replay
  // Later messages still flow.
  const SealedMessage m2 = aliceChan.seal("bob", toBytes("twice"), rng_);
  EXPECT_TRUE(bobChan.open(m2).has_value());
}

TEST_F(MessagingTest, HeaderTamperDetected) {
  MessageChannel aliceChan(testGroup(), alice_, registry_);
  MessageChannel bobChan(testGroup(), bob_, registry_);
  SealedMessage m = aliceChan.seal("bob", toBytes("x"), rng_);
  m.counter += 10;  // header is AAD: any change breaks the tag
  EXPECT_FALSE(bobChan.open(m).has_value());
}

TEST_F(MessagingTest, UnknownPeerThrowsOnSeal) {
  MessageChannel aliceChan(testGroup(), alice_, registry_);
  EXPECT_THROW(aliceChan.seal("stranger", toBytes("x"), rng_), util::DosnError);
}

TEST_F(MessagingTest, SerializationRoundTrip) {
  MessageChannel aliceChan(testGroup(), alice_, registry_);
  MessageChannel bobChan(testGroup(), bob_, registry_);
  const SealedMessage m = aliceChan.seal("bob", toBytes("wire"), rng_);
  const auto back = SealedMessage::deserialize(m.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(bobChan.open(*back).value(), toBytes("wire"));
  EXPECT_FALSE(SealedMessage::deserialize(toBytes("junk")).has_value());
}

// --- PAD-backed membership ---

class PadAclTest : public MessagingTest {};

TEST_F(PadAclTest, GrantProveVerify) {
  PadAcl acl(testGroup(), alice_);
  acl.grant("bob", "rw", rng_);
  acl.grant("carol", "r", rng_);
  EXPECT_EQ(acl.memberCount(), 2u);
  EXPECT_EQ(acl.version(), 2u);

  const auto attestation = acl.proveMembership("bob");
  ASSERT_TRUE(attestation.has_value());
  const auto permission = verifyMembership(testGroup(), alice_.signing.pub,
                                           "bob", *attestation);
  ASSERT_TRUE(permission.has_value());
  EXPECT_EQ(*permission, "rw");
}

TEST_F(PadAclTest, NonMemberHasNoProof) {
  PadAcl acl(testGroup(), alice_);
  acl.grant("bob", "rw", rng_);
  EXPECT_FALSE(acl.proveMembership("eve").has_value());
}

TEST_F(PadAclTest, RevocationInvalidatesFutureProofs) {
  PadAcl acl(testGroup(), alice_);
  acl.grant("bob", "rw", rng_);
  const auto oldAttestation = *acl.proveMembership("bob");
  acl.revoke("bob", rng_);
  EXPECT_FALSE(acl.proveMembership("bob").has_value());
  // The old attestation still verifies — against the OLD root. Readers who
  // track the latest version (as Frientegrity clients do) reject it.
  EXPECT_TRUE(verifyMembership(testGroup(), alice_.signing.pub, "bob",
                               oldAttestation)
                  .has_value());
  EXPECT_LT(oldAttestation.signedRoot.version, acl.version());
}

TEST_F(PadAclTest, ForgedProofRejected) {
  PadAcl acl(testGroup(), alice_);
  acl.grant("bob", "r", rng_);
  auto attestation = *acl.proveMembership("bob");
  // Upgrade attempt: claim "rw" in the proof value.
  attestation.proof.value = util::toBytes("rw");
  EXPECT_FALSE(verifyMembership(testGroup(), alice_.signing.pub, "bob",
                                attestation)
                   .has_value());
  // Wrong owner key fails too.
  const auto genuine = *acl.proveMembership("bob");
  EXPECT_FALSE(
      verifyMembership(testGroup(), bob_.signing.pub, "bob", genuine).has_value());
}

TEST_F(PadAclTest, ProviderCannotMintRoots) {
  PadAcl acl(testGroup(), alice_);
  acl.grant("bob", "r", rng_);
  auto attestation = *acl.proveMembership("bob");
  // A malicious provider swaps in its own root (no valid owner signature).
  attestation.signedRoot.root = crypto::sha256(util::toBytes("evil"));
  EXPECT_FALSE(verifyMembership(testGroup(), alice_.signing.pub, "bob",
                                attestation)
                   .has_value());
}

// --- Application capabilities (Persona-style, paper sec II-A / sec VI) ---

class CapabilityTest : public MessagingTest {
 protected:
  CapabilityIssuer issuer_{testGroup(), alice_};
  std::set<std::uint64_t> revoked_;

  bool check(const CapabilityToken& token, const std::string& app,
             const std::string& resource, AppRight needed,
             std::uint64_t now = 100) {
    return checkCapability(testGroup(), registry_, token, revoked_, app,
                           resource, needed, now);
  }
};

TEST_F(CapabilityTest, ScopedGrantAdmitsExactlyItsScope) {
  const CapabilityToken token =
      issuer_.issue("photo-app", "alice/photos", AppRight::kRead, 0, rng_);
  EXPECT_TRUE(check(token, "photo-app", "alice/photos", AppRight::kRead));
  EXPECT_TRUE(check(token, "photo-app", "alice/photos/2024/img1",
                    AppRight::kRead));
  // Outside the scope: the "install = everything" ambient authority is gone.
  EXPECT_FALSE(check(token, "photo-app", "alice/messages", AppRight::kRead));
  EXPECT_FALSE(check(token, "photo-app", "alice/photosarchive",
                     AppRight::kRead));  // prefix but not a path segment
}

TEST_F(CapabilityTest, RightsAreChecked) {
  const CapabilityToken readOnly =
      issuer_.issue("app", "alice/data", AppRight::kRead, 0, rng_);
  EXPECT_TRUE(check(readOnly, "app", "alice/data", AppRight::kRead));
  EXPECT_FALSE(check(readOnly, "app", "alice/data", AppRight::kWrite));
  const CapabilityToken rw =
      issuer_.issue("app", "alice/data", AppRight::kReadWrite, 0, rng_);
  EXPECT_TRUE(check(rw, "app", "alice/data", AppRight::kWrite));
}

TEST_F(CapabilityTest, WrongAppRejected) {
  const CapabilityToken token =
      issuer_.issue("app-a", "alice/data", AppRight::kRead, 0, rng_);
  EXPECT_FALSE(check(token, "app-b", "alice/data", AppRight::kRead));
}

TEST_F(CapabilityTest, ExpiryEnforced) {
  const CapabilityToken token =
      issuer_.issue("app", "alice/data", AppRight::kRead, /*expiresAt=*/50, rng_);
  EXPECT_TRUE(check(token, "app", "alice/data", AppRight::kRead, /*now=*/40));
  EXPECT_FALSE(check(token, "app", "alice/data", AppRight::kRead, /*now=*/51));
}

TEST_F(CapabilityTest, RevocationWins) {
  const CapabilityToken token =
      issuer_.issue("app", "alice/data", AppRight::kRead, 0, rng_);
  EXPECT_TRUE(check(token, "app", "alice/data", AppRight::kRead));
  issuer_.revoke(token.id);
  revoked_ = issuer_.revocationList();
  EXPECT_FALSE(check(token, "app", "alice/data", AppRight::kRead));
}

TEST_F(CapabilityTest, ForgedTokenRejected) {
  // Mallory mints a token claiming alice granted her app everything.
  CapabilityIssuer malloryIssuer(testGroup(), mallory_);
  CapabilityToken forged =
      malloryIssuer.issue("evil-app", "alice/data", AppRight::kReadWrite, 0, rng_);
  forged.owner = "alice";  // lie about the grantor
  EXPECT_FALSE(check(forged, "evil-app", "alice/data", AppRight::kRead));
  // Tampering a genuine token (scope widening) breaks the signature.
  CapabilityToken widened =
      issuer_.issue("app", "alice/photos", AppRight::kRead, 0, rng_);
  widened.scope = "alice";
  EXPECT_FALSE(check(widened, "app", "alice/messages", AppRight::kRead));
}

TEST_F(CapabilityTest, SerializationRoundTrip) {
  const CapabilityToken token =
      issuer_.issue("app", "alice/data", AppRight::kReadWrite, 7, rng_);
  const auto back = CapabilityToken::deserialize(token.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(check(*back, "app", "alice/data", AppRight::kWrite, 5));
  EXPECT_FALSE(CapabilityToken::deserialize(util::toBytes("junk")).has_value());
}

}  // namespace
}  // namespace dosn::privacy
