// Differential tests for the batch-crypto throughput pass: Karatsuba multiply
// vs the retained schoolbook path, Montgomery batch inversion vs per-element
// invMod, Barrett reduction vs powModSimple, Shamir/Strauss multi-exponentiation
// vs products of single exponentiations, batched Schnorr verification vs the
// one-by-one path (including a randomized 1k-page differential), batched OPRF
// finalization, and byte-pinned Shamir/Lagrange reconstruction — every fast
// path against its retained simple reference (the test_montgomery pattern).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "dosn/bignum/barrett.hpp"
#include "dosn/bignum/batch.hpp"
#include "dosn/bignum/biguint.hpp"
#include "dosn/bignum/modmath.hpp"
#include "dosn/bignum/montgomery.hpp"
#include "dosn/integrity/hash_chain.hpp"
#include "dosn/integrity/signed_post.hpp"
#include "dosn/pkcrypto/elgamal.hpp"
#include "dosn/pkcrypto/group.hpp"
#include "dosn/pkcrypto/multiexp.hpp"
#include "dosn/pkcrypto/oprf.hpp"
#include "dosn/pkcrypto/schnorr.hpp"
#include "dosn/policy/field.hpp"
#include "dosn/policy/shamir.hpp"
#include "dosn/search/hummingbird.hpp"
#include "dosn/search/zkp_access.hpp"
#include "dosn/util/error.hpp"
#include "dosn/util/rng.hpp"

namespace {

using dosn::bignum::BarrettReducer;
using dosn::bignum::batchInvMod;
using dosn::bignum::BigUint;
using dosn::bignum::invMod;
using dosn::bignum::MontgomeryContext;
using dosn::bignum::mulMod;
using dosn::bignum::powMod;
using dosn::bignum::powModSimple;
using dosn::bignum::randomBits;
using dosn::bignum::schoolbookMul;
using dosn::pkcrypto::DlogGroup;
using dosn::pkcrypto::dualPowMod;
using dosn::pkcrypto::multiPowMod;
using dosn::pkcrypto::PowTerm;
using dosn::util::Rng;

BigUint oddModulus(std::size_t bits, Rng& rng) {
  BigUint m = randomBits(bits, rng);
  if (m.isEven()) m += BigUint(1);
  return m;
}

BigUint evenModulus(std::size_t bits, Rng& rng) {
  BigUint m = randomBits(bits, rng);
  if (m.isOdd()) m += BigUint(1);
  return m;
}

// ---------------------------------------------------------------------------
// Karatsuba multiply vs the retained schoolbook path.

TEST(Karatsuba, MatchesSchoolbookAcrossLimbWidths) {
  Rng rng(101);
  // Widths straddle the 32-limb crossover: below it operator* IS schoolbook,
  // at/above it the Karatsuba recursion (and its base case) must agree.
  for (const std::size_t limbs : {1u, 2u, 31u, 32u, 33u, 48u, 64u, 65u, 128u}) {
    for (int i = 0; i < 4; ++i) {
      const BigUint a = randomBits(limbs * 32 - (i % 3), rng);
      const BigUint b = randomBits(limbs * 32 - ((i + 1) % 5), rng);
      EXPECT_EQ(a * b, schoolbookMul(a, b)) << "limbs=" << limbs << " i=" << i;
    }
  }
}

TEST(Karatsuba, AsymmetricOperandsAndEdges) {
  Rng rng(103);
  const BigUint wide = randomBits(64 * 32, rng);
  const BigUint narrow = randomBits(3 * 32, rng);
  EXPECT_EQ(wide * narrow, schoolbookMul(wide, narrow));
  EXPECT_EQ(narrow * wide, schoolbookMul(narrow, wide));
  // One operand above the crossover, the other just below it: the split
  // point m derives from the larger operand, so the low/high partition of
  // the smaller one is uneven.
  const BigUint mid = randomBits(40 * 32, rng);
  const BigUint big = randomBits(100 * 32, rng);
  EXPECT_EQ(mid * big, schoolbookMul(mid, big));
  EXPECT_EQ(wide * BigUint(0), BigUint(0));
  EXPECT_EQ(BigUint(0) * wide, BigUint(0));
  EXPECT_EQ(wide * BigUint(1), wide);
  // Maximal limbs (all-ones) maximize carry propagation in every helper.
  const BigUint ones = (BigUint(1) << (48 * 32)) - BigUint(1);
  EXPECT_EQ(ones * ones, schoolbookMul(ones, ones));
}

TEST(Karatsuba, AsymmetricRecombinationStaysInBounds) {
  // Regression for a heap overflow in the Karatsuba recombination: when the
  // split point m (derived from the LARGER operand) reaches the smaller
  // operand's width, a1 is empty and z1 = (a0+a1)(b0+b1) - z0 - z2 keeps its
  // full untrimmed product length even though the subtractions shrink its
  // value, so addInto(out, m, z1) indexed past the an+bn output allocation
  // (e.g. 32x63 limbs: off 32 + 65 untrimmed limbs > 95). Both operands must
  // be >= 32 limbs to take the Karatsuba path at all; these shapes sweep the
  // asymmetric region around and past the empty-a1 threshold bn >= 2*an - 1.
  Rng rng(109);
  const std::size_t shapes[][2] = {{32, 60},  {32, 62},  {32, 63},  {32, 64},
                                   {32, 65},  {32, 96},  {32, 127}, {33, 64},
                                   {33, 200}, {40, 127}, {48, 97},  {64, 255}};
  for (const auto& shape : shapes) {
    const BigUint a = randomBits(shape[0] * 32, rng);
    const BigUint b = randomBits(shape[1] * 32, rng);
    EXPECT_EQ(a * b, schoolbookMul(a, b))
        << "an=" << shape[0] << " bn=" << shape[1];
    EXPECT_EQ(b * a, schoolbookMul(b, a))
        << "an=" << shape[1] << " bn=" << shape[0];
  }
}

// ---------------------------------------------------------------------------
// Montgomery batch inversion vs per-element invMod.

TEST(BatchInv, MatchesInvModElementwise) {
  Rng rng(107);
  for (const std::size_t bits : {64u, 255u, 256u}) {
    for (const bool odd : {true, false}) {
      const BigUint m = odd ? oddModulus(bits, rng) : evenModulus(bits, rng);
      for (const std::size_t n : {1u, 2u, 3u, 16u, 65u}) {
        std::vector<BigUint> values;
        for (std::size_t i = 0; i < n; ++i) {
          // Retry until invertible so the batch is well-defined.
          while (true) {
            BigUint v = randomBits(bits + 8, rng);
            if (invMod(v, m).has_value()) {
              values.push_back(std::move(v));
              break;
            }
          }
        }
        const auto batch = batchInvMod(values, m);
        ASSERT_TRUE(batch.has_value()) << "bits=" << bits << " n=" << n;
        for (std::size_t i = 0; i < n; ++i) {
          EXPECT_EQ((*batch)[i], *invMod(values[i], m))
              << "bits=" << bits << " odd=" << odd << " n=" << n << " i=" << i;
        }
      }
    }
  }
}

TEST(BatchInv, NonInvertibleElementYieldsNullopt) {
  Rng rng(109);
  const BigUint m = oddModulus(128, rng);
  std::vector<BigUint> values = {BigUint(3) % m, BigUint(0), BigUint(5) % m};
  EXPECT_FALSE(batchInvMod(values, m).has_value());  // 0 shares every factor
  const BigUint even = evenModulus(128, rng);
  EXPECT_FALSE(batchInvMod({BigUint(2)}, even).has_value());  // gcd 2
}

TEST(BatchInv, TrivialModulusAndEmptyInput) {
  const auto empty = batchInvMod({}, BigUint(7));
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());
  // invMod(a, 1) == 0 for every a; the batch must agree.
  const auto ones = batchInvMod({BigUint(4), BigUint(9)}, BigUint(1));
  ASSERT_TRUE(ones.has_value());
  EXPECT_EQ((*ones)[0], BigUint(0));
  EXPECT_EQ((*ones)[1], BigUint(0));
  EXPECT_THROW(batchInvMod({BigUint(3)}, BigUint(0)), dosn::util::DosnError);
}

TEST(BatchInv, ContextOverloadMatchesValueOverload) {
  Rng rng(113);
  const BigUint m = oddModulus(256, rng);
  const MontgomeryContext ctx(m);
  std::vector<BigUint> values;
  while (values.size() < 20) {
    BigUint v = randomBits(250, rng);
    if (invMod(v, m).has_value()) values.push_back(std::move(v));
  }
  const auto viaCtx = batchInvMod(values, ctx);
  const auto viaValue = batchInvMod(values, m);
  ASSERT_EQ(viaCtx.has_value(), viaValue.has_value());
  if (viaCtx) {
    EXPECT_EQ(*viaCtx, *viaValue);
  }
}

// ---------------------------------------------------------------------------
// Barrett reduction vs the retained simple path (even-modulus powMod).

TEST(Barrett, ReduceMatchesDivision) {
  Rng rng(127);
  for (const std::size_t bits : {8u, 31u, 32u, 33u, 64u, 127u, 255u, 512u}) {
    for (const bool odd : {true, false}) {
      const BigUint m = odd ? oddModulus(bits, rng) : evenModulus(bits, rng);
      if (m <= BigUint(1)) continue;
      const BarrettReducer red(m);
      for (int i = 0; i < 8; ++i) {
        // Products of reduced operands are the division-free range; also
        // cover x < m and x just above the precomputed range.
        const BigUint a = randomBits(bits, rng) % m;
        const BigUint b = randomBits(bits, rng) % m;
        EXPECT_EQ(red.reduce(a * b), (a * b) % m) << "bits=" << bits;
        EXPECT_EQ(red.reduce(a), a % m);
        EXPECT_EQ(red.mulMod(a, b), mulMod(a, b, m));
      }
      const BigUint wide = randomBits(bits * 3 + 7, rng);  // fallback path
      EXPECT_EQ(red.reduce(wide), wide % m) << "bits=" << bits;
    }
  }
}

TEST(Barrett, PowModMatchesSimpleOnEvenModuli) {
  Rng rng(131);
  for (const std::size_t bits : {16u, 64u, 96u, 128u, 256u, 512u}) {
    const BigUint m = evenModulus(bits, rng);
    const BarrettReducer red(m);
    for (int i = 0; i < 5; ++i) {
      const BigUint base = randomBits(bits + 16, rng);
      const BigUint e = randomBits(1 + (i * 53) % 300, rng);
      EXPECT_EQ(red.powMod(base, e), powModSimple(base, e, m))
          << "bits=" << bits << " i=" << i;
      // The public dispatcher routes even moduli through Barrett.
      EXPECT_EQ(powMod(base, e, m), powModSimple(base, e, m));
    }
    EXPECT_EQ(red.powMod(randomBits(bits, rng), BigUint(0)), BigUint(1) % m);
  }
  EXPECT_THROW(BarrettReducer(BigUint(0)), dosn::util::DosnError);
  EXPECT_THROW(BarrettReducer(BigUint(1)), dosn::util::DosnError);
}

// ---------------------------------------------------------------------------
// Sliding-window powMod recoding: edge exponents across window widths.

TEST(SlidingWindow, EdgeExponentsAcrossWidths) {
  Rng rng(137);
  // Moduli sized so exponents exercise w=4 (<=128 bits), w=5 (<=768) and
  // w=6 (>768) recoding paths.
  const BigUint m = oddModulus(256, rng);
  const BigUint base = randomBits(260, rng);
  for (const std::size_t ebits : {1u, 2u, 5u, 64u, 128u, 129u, 300u, 768u, 900u}) {
    const BigUint e = randomBits(ebits, rng);
    EXPECT_EQ(powMod(base, e, m), powModSimple(base, e, m)) << "ebits=" << ebits;
    // All-ones exponents make every window maximal; 10...01 shapes make
    // zero-runs maximal between two single-bit windows.
    const BigUint allOnes = (BigUint(1) << ebits) - BigUint(1);
    EXPECT_EQ(powMod(base, allOnes, m), powModSimple(base, allOnes, m))
        << "ebits=" << ebits;
    const BigUint sparse = (BigUint(1) << ebits) + BigUint(1);
    EXPECT_EQ(powMod(base, sparse, m), powModSimple(base, sparse, m))
        << "ebits=" << ebits;
  }
  EXPECT_EQ(powMod(base, BigUint(0), m), BigUint(1));
  EXPECT_EQ(powMod(base, BigUint(1), m), base % m);
  EXPECT_EQ(powMod(base, BigUint(2), m), mulMod(base, base, m));
}

// ---------------------------------------------------------------------------
// Multi-exponentiation vs products of single exponentiations.

TEST(MultiExp, DualPowMatchesProductOfPows) {
  Rng rng(139);
  const BigUint m = oddModulus(256, rng);
  const MontgomeryContext ctx(m);
  for (int i = 0; i < 10; ++i) {
    const BigUint b1 = randomBits(250, rng);
    const BigUint b2 = randomBits(250, rng);
    const BigUint e1 = randomBits(1 + (i * 29) % 256, rng);
    const BigUint e2 = randomBits(1 + (i * 71) % 256, rng);
    const BigUint expected =
        mulMod(powModSimple(b1, e1, m), powModSimple(b2, e2, m), m);
    EXPECT_EQ(dualPowMod(ctx, b1, e1, b2, e2), expected) << "i=" << i;
  }
  // Zero exponents collapse terms to 1.
  const BigUint b = randomBits(200, rng);
  EXPECT_EQ(dualPowMod(ctx, b, BigUint(0), b, BigUint(0)), BigUint(1));
  EXPECT_EQ(dualPowMod(ctx, b, BigUint(3), b, BigUint(0)),
            powModSimple(b, BigUint(3), m));
}

TEST(MultiExp, MultiPowMatchesProductOfPows) {
  Rng rng(149);
  const BigUint m = oddModulus(256, rng);
  const MontgomeryContext ctx(m);
  for (const std::size_t n : {1u, 2u, 3u, 8u, 33u}) {
    std::vector<PowTerm> terms;
    BigUint expected(1);
    for (std::size_t i = 0; i < n; ++i) {
      PowTerm t{randomBits(250, rng), randomBits(1 + (i * 37) % 200, rng)};
      expected = mulMod(expected, powModSimple(t.base, t.exponent, m), m);
      terms.push_back(std::move(t));
    }
    EXPECT_EQ(multiPowMod(ctx, terms), expected) << "n=" << n;
  }
  EXPECT_EQ(multiPowMod(ctx, {}), BigUint(1));
  EXPECT_EQ(multiPowMod(ctx, {PowTerm{randomBits(100, rng), BigUint(0)}}),
            BigUint(1));
}

// ---------------------------------------------------------------------------
// Batched Schnorr signature verification vs the one-by-one path.

using dosn::pkcrypto::SchnorrBatchItem;
using dosn::pkcrypto::schnorrGenerate;
using dosn::pkcrypto::SchnorrPrivateKey;
using dosn::pkcrypto::schnorrSign;
using dosn::pkcrypto::schnorrVerify;
using dosn::pkcrypto::schnorrVerifyBatch;
using dosn::pkcrypto::SchnorrSignature;

TEST(SchnorrBatch, AllValidPageAccepts) {
  const DlogGroup& group = DlogGroup::cached(256);
  Rng rng(151);
  const auto key = schnorrGenerate(group, rng);
  std::vector<SchnorrBatchItem> items;
  for (int i = 0; i < 16; ++i) {
    const auto msg = dosn::util::toBytes("post #" + std::to_string(i));
    items.push_back(
        SchnorrBatchItem{key.pub, msg, schnorrSign(group, key, msg, rng)});
  }
  const auto results = schnorrVerifyBatch(group, items);
  ASSERT_EQ(results.size(), items.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i]) << "i=" << i;
  }
  EXPECT_TRUE(schnorrVerifyBatch(group, {}).empty());
}

// A single forged signature in a page of 64 is pinpointed exactly — every
// other item still verifies (the ISSUE's pinpointing requirement).
TEST(SchnorrBatch, SingleForgeryInPageOf64Pinpointed) {
  const DlogGroup& group = DlogGroup::cached(256);
  Rng rng(157);
  const auto key = schnorrGenerate(group, rng);
  std::vector<SchnorrBatchItem> items;
  for (int i = 0; i < 64; ++i) {
    const auto msg = dosn::util::toBytes("page item " + std::to_string(i));
    items.push_back(
        SchnorrBatchItem{key.pub, msg, schnorrSign(group, key, msg, rng)});
  }
  const std::size_t forged = 37;
  items[forged].sig.s = (items[forged].sig.s + BigUint(1)) % group.q();
  const auto results = schnorrVerifyBatch(group, items);
  ASSERT_EQ(results.size(), items.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], i != forged) << "i=" << i;
  }
}

// Randomized differential over 1k pages: for every item of every page, the
// batch verdict must equal the one-by-one verdict — in particular the batch
// NEVER accepts anything schnorrVerify rejects.
TEST(SchnorrBatch, RandomizedPagesMatchOneByOne) {
  const DlogGroup& group = DlogGroup::cached(256);
  Rng rng(163);
  // Pre-signed pool: two signers, eight messages each.
  std::vector<SchnorrPrivateKey> keys;
  keys.push_back(schnorrGenerate(group, rng));
  keys.push_back(schnorrGenerate(group, rng));
  std::vector<SchnorrBatchItem> pool;
  for (std::size_t k = 0; k < keys.size(); ++k) {
    for (int i = 0; i < 8; ++i) {
      const auto msg =
          dosn::util::toBytes("pool " + std::to_string(k) + ":" + std::to_string(i));
      pool.push_back(SchnorrBatchItem{keys[k].pub, msg,
                                      schnorrSign(group, keys[k], msg, rng)});
    }
  }
  std::size_t mutatedTotal = 0;
  for (int page = 0; page < 1000; ++page) {
    const std::size_t pageSize = 1 + rng.next() % 6;
    std::vector<SchnorrBatchItem> items;
    for (std::size_t i = 0; i < pageSize; ++i) {
      SchnorrBatchItem item = pool[rng.next() % pool.size()];
      switch (rng.next() % 8) {
        case 0:  // tamper message
          item.message.push_back(0x42);
          ++mutatedTotal;
          break;
        case 1:  // tamper s
          item.sig.s = (item.sig.s + BigUint(1)) % group.q();
          ++mutatedTotal;
          break;
        case 2:  // tamper e
          item.sig.e = (item.sig.e + BigUint(1)) % group.q();
          ++mutatedTotal;
          break;
        case 3:  // range violation: e == q
          item.sig.e = group.q();
          ++mutatedTotal;
          break;
        case 4:  // key not in the subgroup (order-2 element p-1)
          item.key.y = group.p() - BigUint(1);
          ++mutatedTotal;
          break;
        case 5: {  // signature swapped from another pool entry
          item.sig = pool[rng.next() % pool.size()].sig;
          ++mutatedTotal;  // usually invalid; one-by-one arbitrates
          break;
        }
        default:  // leave valid
          break;
      }
      items.push_back(std::move(item));
    }
    const auto batch = schnorrVerifyBatch(group, items);
    ASSERT_EQ(batch.size(), items.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
      const bool single =
          schnorrVerify(group, items[i].key, items[i].message, items[i].sig);
      ASSERT_EQ(batch[i], single) << "page=" << page << " i=" << i;
    }
  }
  ASSERT_GT(mutatedTotal, 0u);
}

// ---------------------------------------------------------------------------
// Batched Schnorr proof verification (random linear combination).

using dosn::pkcrypto::SchnorrProof;
using dosn::pkcrypto::SchnorrProofBatchItem;
using dosn::pkcrypto::schnorrProofVerify;
using dosn::pkcrypto::schnorrProofVerifyBatch;
using dosn::pkcrypto::schnorrProve;

TEST(SchnorrProofBatch, AllValidPageAccepts) {
  const DlogGroup& group = DlogGroup::cached(256);
  Rng rng(167);
  std::vector<SchnorrProofBatchItem> items;
  for (int i = 0; i < 8; ++i) {
    const auto key = schnorrGenerate(group, rng);
    const auto context = dosn::util::toBytes("ctx " + std::to_string(i));
    items.push_back(SchnorrProofBatchItem{
        key.pub, context, schnorrProve(group, key, context, rng)});
  }
  const auto results = schnorrProofVerifyBatch(group, items);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i]) << "i=" << i;
  }
}

TEST(SchnorrProofBatch, OffenderIsolatedViaFallback) {
  const DlogGroup& group = DlogGroup::cached(256);
  Rng rng(173);
  std::vector<SchnorrProofBatchItem> items;
  for (int i = 0; i < 12; ++i) {
    const auto key = schnorrGenerate(group, rng);
    const auto context = dosn::util::toBytes("res " + std::to_string(i));
    items.push_back(SchnorrProofBatchItem{
        key.pub, context, schnorrProve(group, key, context, rng)});
  }
  items[5].proof.s = (items[5].proof.s + BigUint(1)) % group.q();
  const auto results = schnorrProofVerifyBatch(group, items);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], i != 5) << "i=" << i;
  }
}

TEST(SchnorrProofBatch, RandomizedPagesMatchOneByOne) {
  const DlogGroup& group = DlogGroup::cached(256);
  Rng rng(179);
  std::vector<SchnorrProofBatchItem> pool;
  for (int i = 0; i < 10; ++i) {
    const auto key = schnorrGenerate(group, rng);
    const auto context = dosn::util::toBytes("pool ctx " + std::to_string(i));
    pool.push_back(SchnorrProofBatchItem{
        key.pub, context, schnorrProve(group, key, context, rng)});
  }
  for (int page = 0; page < 200; ++page) {
    const std::size_t pageSize = 1 + rng.next() % 5;
    std::vector<SchnorrProofBatchItem> items;
    for (std::size_t i = 0; i < pageSize; ++i) {
      SchnorrProofBatchItem item = pool[rng.next() % pool.size()];
      switch (rng.next() % 6) {
        case 0:
          item.context.push_back(0x17);
          break;
        case 1:
          item.proof.s = (item.proof.s + BigUint(1)) % group.q();
          break;
        case 2:
          item.proof.r = group.p() - BigUint(1);  // order-2, not in subgroup
          break;
        case 3:
          item.proof.s = group.q();  // range violation
          break;
        default:
          break;
      }
      items.push_back(std::move(item));
    }
    const auto batch = schnorrProofVerifyBatch(group, items);
    ASSERT_EQ(batch.size(), items.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
      const bool single = schnorrProofVerify(group, items[i].key,
                                             items[i].context, items[i].proof);
      ASSERT_EQ(batch[i], single) << "page=" << page << " i=" << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Batched OPRF finalization and Hummingbird subscription rounds.

TEST(OprfBatch, FinalizeBatchMatchesPerReceiver) {
  const DlogGroup& group = DlogGroup::cached(256);
  Rng rng(181);
  dosn::pkcrypto::OprfSender sender(group, rng);
  std::vector<dosn::pkcrypto::OprfReceiver> receivers;
  std::vector<BigUint> replies;
  for (int i = 0; i < 17; ++i) {
    receivers.emplace_back(group,
                           dosn::util::toBytes("tag" + std::to_string(i)), rng);
    replies.push_back(sender.evaluateBlinded(receivers.back().blinded()));
  }
  std::vector<const dosn::pkcrypto::OprfReceiver*> ptrs;
  for (const auto& r : receivers) ptrs.push_back(&r);
  const auto batch = dosn::pkcrypto::oprfFinalizeBatch(ptrs, replies);
  ASSERT_EQ(batch.size(), receivers.size());
  for (std::size_t i = 0; i < receivers.size(); ++i) {
    EXPECT_EQ(batch[i], receivers[i].finalize(replies[i])) << "i=" << i;
    // And both match the sender's direct evaluation (OPRF correctness).
    EXPECT_EQ(batch[i],
              sender.evaluate(dosn::util::toBytes("tag" + std::to_string(i))));
  }
  EXPECT_THROW(dosn::pkcrypto::oprfFinalizeBatch({ptrs[0]}, {}),
               dosn::util::CryptoError);
  EXPECT_THROW(dosn::pkcrypto::oprfFinalizeBatch({ptrs[0]}, {BigUint(0)}),
               dosn::util::CryptoError);
}

TEST(OprfBatch, HummingbirdSubscriptionRoundMatches) {
  const DlogGroup& group = DlogGroup::cached(256);
  Rng rng(191);
  dosn::search::HummingbirdPublisher publisher(group, 512, rng);
  dosn::search::HummingbirdSubscriber subscriber(group);
  std::vector<dosn::search::HummingbirdSubscriber::OprfRequest> requests;
  std::vector<BigUint> replies;
  for (int i = 0; i < 9; ++i) {
    requests.push_back(
        subscriber.beginOprf("#topic" + std::to_string(i), rng));
    replies.push_back(publisher.oprfEvaluate(requests.back().blinded()));
  }
  std::vector<const dosn::search::HummingbirdSubscriber::OprfRequest*> ptrs;
  for (const auto& r : requests) ptrs.push_back(&r);
  const auto subs = subscriber.finishOprfBatch(ptrs, replies);
  ASSERT_EQ(subs.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const auto single = subscriber.finishOprf(requests[i], replies[i]);
    EXPECT_EQ(subs[i].key, single.key) << "i=" << i;
    EXPECT_EQ(subs[i].index, single.index) << "i=" << i;
  }
}

// ---------------------------------------------------------------------------
// Group scalar batch inversion and PrimeField::invBatch.

TEST(ScalarBatch, GroupScalarInvBatchMatches) {
  const DlogGroup& group = DlogGroup::cached(256);
  Rng rng(193);
  std::vector<BigUint> scalars;
  for (int i = 0; i < 33; ++i) scalars.push_back(group.randomScalar(rng));
  const auto batch = group.scalarInvBatch(scalars);
  ASSERT_EQ(batch.size(), scalars.size());
  for (std::size_t i = 0; i < scalars.size(); ++i) {
    EXPECT_EQ(batch[i], group.scalarInv(scalars[i])) << "i=" << i;
  }
  EXPECT_THROW(group.scalarInvBatch({BigUint(0)}), dosn::util::CryptoError);
}

TEST(ScalarBatch, PrimeFieldInvBatchMatches) {
  const auto& field = dosn::policy::PrimeField::standard();
  Rng rng(197);
  std::vector<BigUint> values;
  for (int i = 0; i < 21; ++i) {
    // randomBits forces the MSB, so the value is nonzero and < p (prime):
    // always invertible.
    values.push_back(field.reduce(randomBits(254, rng)));
  }
  const auto batch = field.invBatch(values);
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(batch[i], field.inv(values[i])) << "i=" << i;
  }
  EXPECT_THROW(field.invBatch({BigUint(0)}), dosn::util::DosnError);
}

// ---------------------------------------------------------------------------
// Shamir reconstruction: batched path pinned byte-identical to the
// per-coefficient reference.

TEST(ShamirBatch, ReconstructMatchesPerCoefficientReference) {
  const auto& field = dosn::policy::PrimeField::standard();
  Rng rng(199);
  for (const std::size_t k : {1u, 2u, 3u, 5u, 12u}) {
    const BigUint secret = field.reduce(randomBits(250, rng));
    const auto shares = dosn::policy::shamirShare(field, secret, k, k + 3, rng);
    // Any k-subset reconstructs; use the first k shares.
    std::vector<dosn::policy::Share> subset(shares.begin(), shares.begin() + k);
    // Reference: the retained per-coefficient path, one inversion each.
    BigUint reference{};
    for (std::size_t i = 0; i < subset.size(); ++i) {
      const BigUint li =
          dosn::policy::lagrangeCoefficientAtZero(field, subset, i);
      reference = field.add(reference, field.mul(subset[i].y, li));
    }
    const BigUint batched = dosn::policy::shamirReconstruct(field, subset);
    EXPECT_EQ(batched, reference) << "k=" << k;
    EXPECT_EQ(batched, secret) << "k=" << k;
    // Byte-identical encodings, not merely equal values.
    EXPECT_EQ(field.encode(batched), field.encode(reference)) << "k=" << k;
  }
}

// ---------------------------------------------------------------------------
// Consumer wiring: signed-post pages, hash chains, ZKP access, ElGamal.

TEST(Consumers, VerifyPostsBatchMatchesVerifyPost) {
  const DlogGroup& group = DlogGroup::cached(256);
  Rng rng(211);
  dosn::social::IdentityRegistry registry;
  const auto alice = dosn::social::createKeyring(group, "alice", rng);
  const auto bob = dosn::social::createKeyring(group, "bob", rng);
  registry.registerIdentity(dosn::social::publicIdentity(alice));
  registry.registerIdentity(dosn::social::publicIdentity(bob));

  std::vector<dosn::integrity::SignedPost> posts;
  for (int i = 0; i < 10; ++i) {
    dosn::social::Post post;
    post.author = (i % 2 == 0) ? "alice" : "bob";
    post.id = static_cast<std::uint64_t>(i);
    post.text = "hello " + std::to_string(i);
    posts.push_back(dosn::integrity::signPost(
        group, (i % 2 == 0) ? alice : bob, post, rng));
  }
  posts[3].signature.s = (posts[3].signature.s + BigUint(1)) % group.q();
  posts[6].post.author = "mallory";  // unregistered author
  const auto batch = dosn::integrity::verifyPostsBatch(group, registry, posts);
  ASSERT_EQ(batch.size(), posts.size());
  for (std::size_t i = 0; i < posts.size(); ++i) {
    EXPECT_EQ(batch[i], dosn::integrity::verifyPost(group, registry, posts[i]))
        << "i=" << i;
  }
  EXPECT_FALSE(batch[3]);
  EXPECT_FALSE(batch[6]);
}

TEST(Consumers, VerifyChainStillCatchesEveryTamper) {
  const DlogGroup& group = DlogGroup::cached(256);
  Rng rng(223);
  const auto keyring = dosn::social::createKeyring(group, "carol", rng);
  dosn::integrity::Timeline timeline(group, keyring);
  for (int i = 0; i < 8; ++i) {
    timeline.append(dosn::util::toBytes("entry " + std::to_string(i)), rng);
  }
  auto entries = timeline.entries();
  EXPECT_TRUE(dosn::integrity::verifyChain(group, keyring.signing.pub, entries));
  EXPECT_TRUE(dosn::integrity::verifyChain(group, keyring.signing.pub, {}));

  auto tamperedSig = entries;
  tamperedSig[4].signature.s =
      (tamperedSig[4].signature.s + BigUint(1)) % group.q();
  EXPECT_FALSE(
      dosn::integrity::verifyChain(group, keyring.signing.pub, tamperedSig));

  auto tamperedPayload = entries;
  tamperedPayload[2].payload.push_back(0x01);
  EXPECT_FALSE(
      dosn::integrity::verifyChain(group, keyring.signing.pub, tamperedPayload));

  auto reordered = entries;
  std::swap(reordered[1], reordered[2]);
  EXPECT_FALSE(
      dosn::integrity::verifyChain(group, keyring.signing.pub, reordered));
}

TEST(Consumers, CheckAccessBatchMatchesCheckAccess) {
  const DlogGroup& group = DlogGroup::cached(256);
  Rng rng(227);
  dosn::search::AccessGate gate(group);
  std::vector<dosn::search::Pseudonym> pseudonyms;
  std::vector<dosn::search::AccessGate::AccessRequest> requests;
  for (int i = 0; i < 6; ++i) {
    auto p = dosn::search::createPseudonym(group, rng);
    const std::string resource = "album/" + std::to_string(i % 3);
    gate.authorize(resource, p.handle, p.key.pub);
    requests.push_back(dosn::search::AccessGate::AccessRequest{
        resource, p.handle,
        dosn::search::proveAccess(group, p, resource, rng)});
    pseudonyms.push_back(std::move(p));
  }
  // A tampered proof, a revoked pseudonym, and an unknown resource.
  requests[1].proof.s = (requests[1].proof.s + BigUint(1)) % group.q();
  gate.revoke("album/2", pseudonyms[2].handle);
  requests.push_back(dosn::search::AccessGate::AccessRequest{
      "no-such-resource", pseudonyms[0].handle, requests[0].proof});
  const auto batch = gate.checkAccessBatch(requests);
  ASSERT_EQ(batch.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(batch[i], gate.checkAccess(requests[i].resource,
                                         requests[i].handle, requests[i].proof))
        << "i=" << i;
  }
  EXPECT_TRUE(batch[0]);
  EXPECT_FALSE(batch[1]);
  EXPECT_FALSE(batch.back());
}

TEST(Consumers, ElGamalFermatDecryptRoundTrips) {
  const DlogGroup& group = DlogGroup::cached(256);
  Rng rng(229);
  const auto key = dosn::pkcrypto::elgamalGenerate(group, rng);
  for (int i = 0; i < 6; ++i) {
    // A random subgroup element as the message.
    const BigUint m = group.exp(group.randomScalar(rng));
    const auto ct =
        dosn::pkcrypto::elgamalEncryptElement(group, key.pub, m, rng);
    EXPECT_EQ(dosn::pkcrypto::elgamalDecryptElement(group, key, ct), m);
    // Differential against the historical inv-based decryption.
    const BigUint shared = group.exp(ct.c1, key.x);
    EXPECT_EQ(group.mul(ct.c2, group.inv(shared)),
              dosn::pkcrypto::elgamalDecryptElement(group, key, ct));
  }
  // Degenerate c1 == 0 rejects (the inv path threw on the non-unit too).
  dosn::pkcrypto::ElGamalElementCiphertext bad{BigUint(0), BigUint(5)};
  EXPECT_THROW(dosn::pkcrypto::elgamalDecryptElement(group, key, bad),
               dosn::util::CryptoError);
}

}  // namespace
