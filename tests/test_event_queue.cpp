// Property tests for the calendar event queue (DESIGN.md §3d): randomized
// differential checks against a reference std::priority_queue with the exact
// comparator the simulator used before the calendar queue replaced it, edge
// cases for every partition transition (ring rollover, far-future overflow,
// early events behind a rebased window, pushes behind the cursor), and a
// fixed-seed determinism pin over the first 10k pops so any future change to
// pop order — however subtle — fails loudly.
#include <gtest/gtest.h>

#include <cstdint>
#include <queue>
#include <vector>

#include "dosn/sim/event_queue.hpp"
#include "dosn/sim/pool.hpp"
#include "dosn/util/rng.hpp"

namespace dosn::sim {
namespace {

using Key = std::pair<SimTime, std::uint64_t>;  // (when, seq)

// The comparator std::priority_queue<Event> used before the calendar queue:
// min by `when`, ties broken min by `seq` (scheduling = FIFO order).
struct LaterByWhenSeq {
  bool operator()(const Key& a, const Key& b) const {
    return a.first != b.first ? a.first > b.first : a.second > b.second;
  }
};
using ReferenceQueue =
    std::priority_queue<Key, std::vector<Key>, LaterByWhenSeq>;

constexpr SimTime kWindowSpan =
    EventQueue::kBucketWidth * EventQueue::kBucketCount;

Event makeEvent(Pool& pool, SimTime when, std::uint64_t seq) {
  return Event{when, seq, EventClosure(pool, [] {})};
}

/// Drains both queues in lockstep, asserting identical (when, seq) order.
void expectSameDrain(EventQueue& queue, ReferenceQueue& reference) {
  while (!reference.empty()) {
    ASSERT_FALSE(queue.empty());
    const Key want = reference.top();
    reference.pop();
    ASSERT_EQ(queue.nextTime(), want.first);
    Event got = queue.pop();
    ASSERT_EQ(got.when, want.first);
    ASSERT_EQ(got.seq, want.second);
  }
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
}

TEST(EventQueue, StartsEmpty) {
  EventQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_EQ(queue.ringSize(), 0u);
  EXPECT_EQ(queue.earlySize(), 0u);
  EXPECT_EQ(queue.overflowSize(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  Pool pool;
  EventQueue queue;
  ReferenceQueue reference;
  const SimTime whens[] = {30, 10, 20, 5, 25};
  std::uint64_t seq = 0;
  for (SimTime when : whens) {
    queue.push(makeEvent(pool, when, seq));
    reference.push({when, seq});
    ++seq;
  }
  expectSameDrain(queue, reference);
}

TEST(EventQueue, SameTimestampPopsInSchedulingOrder) {
  Pool pool;
  EventQueue queue;
  for (std::uint64_t seq = 0; seq < 100; ++seq) {
    queue.push(makeEvent(pool, 777, seq));
  }
  for (std::uint64_t seq = 0; seq < 100; ++seq) {
    Event e = queue.pop();
    EXPECT_EQ(e.when, 777u);
    EXPECT_EQ(e.seq, seq);
  }
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, FifoTiesSurviveInterleavedTimestamps) {
  // Ties at several distinct timestamps, pushed in shuffled order: within
  // each timestamp the original scheduling order must come back out.
  Pool pool;
  EventQueue queue;
  ReferenceQueue reference;
  util::Rng rng(7);
  std::uint64_t seq = 0;
  for (int i = 0; i < 500; ++i) {
    const SimTime when = 1000 + 10 * rng.uniform(5);  // 5 distinct stamps
    queue.push(makeEvent(pool, when, seq));
    reference.push({when, seq});
    ++seq;
  }
  expectSameDrain(queue, reference);
}

TEST(EventQueue, RandomizedDifferentialPushThenDrain) {
  Pool pool;
  EventQueue queue;
  ReferenceQueue reference;
  util::Rng rng(42);
  for (std::uint64_t seq = 0; seq < 20000; ++seq) {
    // Mixed horizons: mostly near-future (in-window), some far timers that
    // land in overflow, some duplicates for tie coverage.
    const SimTime when = rng.uniform(4) == 0
                             ? kWindowSpan * (1 + rng.uniform(5)) + rng.uniform(1000)
                             : rng.uniform(100000);
    queue.push(makeEvent(pool, when, seq));
    reference.push({when, seq});
  }
  expectSameDrain(queue, reference);
}

TEST(EventQueue, RandomizedDifferentialInterleavedPushPop) {
  // The simulator's actual usage pattern: pops and pushes interleave, and a
  // push may target a time at or before the event just popped (delay-0
  // reschedules land behind the cursor).
  Pool pool;
  EventQueue queue;
  ReferenceQueue reference;
  util::Rng rng(4242);
  std::uint64_t seq = 0;
  SimTime now = 0;
  for (int op = 0; op < 30000; ++op) {
    const bool doPop = !reference.empty() && rng.uniform(100) < 45;
    if (doPop) {
      const Key want = reference.top();
      reference.pop();
      ASSERT_FALSE(queue.empty());
      Event got = queue.pop();
      ASSERT_EQ(got.when, want.first);
      ASSERT_EQ(got.seq, want.second);
      now = got.when;
    } else {
      // Delays 0..~2 windows, anchored at the last popped time, so pushes
      // land in every partition including exactly-now (behind the cursor).
      const SimTime when = now + rng.uniform(2 * kWindowSpan);
      queue.push(makeEvent(pool, when, seq));
      reference.push({when, seq});
      ++seq;
    }
  }
  expectSameDrain(queue, reference);
}

TEST(EventQueue, PushBehindCursorDragsCursorBack) {
  Pool pool;
  EventQueue queue;
  // March the cursor forward by draining a late bucket...
  queue.push(makeEvent(pool, 100 * EventQueue::kBucketWidth, 0));
  EXPECT_EQ(queue.pop().seq, 0u);
  // ...then push into an earlier bucket of the same window. The static
  // window means this must still pop (no event may be stranded).
  queue.push(makeEvent(pool, EventQueue::kBucketWidth, 1));
  queue.push(makeEvent(pool, 2 * EventQueue::kBucketWidth, 2));
  EXPECT_EQ(queue.nextTime(), EventQueue::kBucketWidth);
  EXPECT_EQ(queue.pop().seq, 1u);
  EXPECT_EQ(queue.pop().seq, 2u);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, BucketRolloverAcrossWindowBoundary) {
  // Events straddling the first window boundary: the in-window ones fill the
  // ring, the rest sit in overflow until a rebase pulls them in.
  Pool pool;
  EventQueue queue;
  ReferenceQueue reference;
  std::uint64_t seq = 0;
  for (SimTime when = kWindowSpan - 5 * EventQueue::kBucketWidth;
       when < kWindowSpan + 5 * EventQueue::kBucketWidth;
       when += EventQueue::kBucketWidth / 2) {
    queue.push(makeEvent(pool, when, seq));
    reference.push({when, seq});
    ++seq;
  }
  EXPECT_GT(queue.ringSize(), 0u);
  EXPECT_GT(queue.overflowSize(), 0u);
  expectSameDrain(queue, reference);
}

TEST(EventQueue, FarFutureEventsGoToOverflow) {
  Pool pool;
  EventQueue queue;
  queue.push(makeEvent(pool, 60u * 1000 * 1000, 0));  // +60s, many windows out
  EXPECT_EQ(queue.overflowSize(), 1u);
  EXPECT_EQ(queue.ringSize(), 0u);
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue.nextTime(), 60u * 1000 * 1000);
  EXPECT_EQ(queue.pop().seq, 0u);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, RebasePullsOverflowPrefixIntoRing) {
  Pool pool;
  EventQueue queue;
  ReferenceQueue reference;
  // Spread events over ~8 windows; draining forces repeated rebases, each
  // pulling the overflow prefix that fits the fresh window.
  std::uint64_t seq = 0;
  util::Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    const SimTime when = rng.uniform(8 * kWindowSpan);
    queue.push(makeEvent(pool, when, seq));
    reference.push({when, seq});
    ++seq;
  }
  expectSameDrain(queue, reference);
}

TEST(EventQueue, EarlyPartitionAfterRebase) {
  Pool pool;
  EventQueue queue;
  // Rebase the window far forward by draining a far-future event...
  queue.push(makeEvent(pool, 10 * kWindowSpan, 0));
  EXPECT_EQ(queue.pop().seq, 0u);
  ASSERT_GT(queue.windowStartBucket(), 0u);
  // ...then push events BEFORE the rebased window: they must land in the
  // early heap and still pop first, in (when, seq) order.
  queue.push(makeEvent(pool, 50, 1));
  queue.push(makeEvent(pool, 10, 2));
  queue.push(makeEvent(pool, 10 * kWindowSpan + 100, 3));
  EXPECT_EQ(queue.earlySize(), 2u);
  EXPECT_EQ(queue.nextTime(), 10u);
  EXPECT_EQ(queue.pop().seq, 2u);
  EXPECT_EQ(queue.pop().seq, 1u);
  EXPECT_EQ(queue.pop().seq, 3u);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, EarlyTiesWithRingEventsKeepSeqOrder) {
  Pool pool;
  EventQueue queue;
  queue.push(makeEvent(pool, 5 * kWindowSpan, 0));
  queue.pop();  // move the window forward
  const SimTime when = 5 * kWindowSpan + 7;  // in the rebased window
  queue.push(makeEvent(pool, when, 1));      // ring
  queue.push(makeEvent(pool, 3, 2));         // early
  queue.push(makeEvent(pool, when, 3));      // ring, tie with seq 1
  EXPECT_EQ(queue.pop().seq, 2u);
  EXPECT_EQ(queue.pop().seq, 1u);
  EXPECT_EQ(queue.pop().seq, 3u);
}

TEST(EventQueue, SizeAccountsAllPartitions) {
  Pool pool;
  EventQueue queue;
  queue.push(makeEvent(pool, 10 * kWindowSpan, 0));
  queue.pop();
  queue.push(makeEvent(pool, 1, 1));                       // early
  queue.push(makeEvent(pool, 10 * kWindowSpan + 50, 2));   // ring
  queue.push(makeEvent(pool, 30 * kWindowSpan, 3));        // overflow
  EXPECT_EQ(queue.earlySize(), 1u);
  EXPECT_EQ(queue.ringSize(), 1u);
  EXPECT_EQ(queue.overflowSize(), 1u);
  EXPECT_EQ(queue.size(), 3u);
  queue.pop();
  queue.pop();
  queue.pop();
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_EQ(queue.earlySize() + queue.ringSize() + queue.overflowSize(), 0u);
}

TEST(EventQueue, NextTimeMatchesEveryPop) {
  Pool pool;
  EventQueue queue;
  util::Rng rng(5);
  for (std::uint64_t seq = 0; seq < 3000; ++seq) {
    queue.push(makeEvent(pool, rng.uniform(3 * kWindowSpan), seq));
  }
  SimTime last = 0;
  while (!queue.empty()) {
    const SimTime peek = queue.nextTime();
    Event e = queue.pop();
    EXPECT_EQ(e.when, peek);
    EXPECT_GE(e.when, last);  // virtual time never runs backwards
    last = e.when;
  }
}

TEST(EventQueue, PoppedClosuresRun) {
  Pool pool;
  EventQueue queue;
  int ran = 0;
  queue.push(Event{10, 0, EventClosure(pool, [&ran] { ran += 1; })});
  queue.push(Event{5, 1, EventClosure(pool, [&ran] { ran += 10; })});
  Event first = queue.pop();
  first.fn();
  EXPECT_EQ(ran, 10);
  Event second = queue.pop();
  second.fn();
  EXPECT_EQ(ran, 11);
}

TEST(EventQueue, PrefetchNextIsSafeEverywhere) {
  // prefetchNext is a pure hint: legal on an empty queue, after pushes into
  // any partition, and it must never perturb pop order.
  Pool pool;
  EventQueue queue;
  queue.prefetchNext();  // empty: no-op
  queue.push(makeEvent(pool, 10, 0));
  queue.push(makeEvent(pool, 5 * kWindowSpan, 1));  // overflow
  queue.prefetchNext();
  EXPECT_EQ(queue.pop().seq, 0u);
  queue.prefetchNext();
  EXPECT_EQ(queue.pop().seq, 1u);
  queue.prefetchNext();  // empty again
  EXPECT_TRUE(queue.empty());
}

// Fixed-seed determinism pin: FNV-1a over the (when, seq) stream of the
// first 10k pops of a canonical mixed-horizon workload. The constant was
// recorded from the reference std::priority_queue drain of the same
// workload (the calendar queue is pop-for-pop identical, as the
// differential tests above establish); any change to comparator semantics,
// partition boundaries, or rebase behavior shifts the stream and fails this
// EXPECT with both hashes printed.
std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xff;
    hash *= 1099511628211ull;
  }
  return hash;
}

TEST(EventQueue, DeterminismPinFirst10kPops) {
  Pool pool;
  EventQueue queue;
  util::Rng rng(20260808);
  std::uint64_t seq = 0;
  SimTime now = 0;
  std::uint64_t hash = 14695981039346656037ull;  // FNV offset basis
  std::size_t pops = 0;
  while (pops < 10000) {
    if (queue.empty() || rng.uniform(100) < 55) {
      const SimTime when =
          now + (rng.uniform(8) == 0 ? 60u * 1000 * 1000 + rng.uniform(1000)
                                     : rng.uniform(50000));
      queue.push(makeEvent(pool, when, seq++));
    } else {
      Event e = queue.pop();
      now = e.when;
      hash = fnv1a(hash, e.when);
      hash = fnv1a(hash, e.seq);
      ++pops;
    }
  }
  EXPECT_EQ(hash, 0xe1b4cfc53ba07992ull)
      << "pop order changed: hash 0x" << std::hex << hash;
}

}  // namespace
}  // namespace dosn::sim
