// Tests for the discrete-event simulator, network, churn and metrics.
#include <gtest/gtest.h>

#include "dosn/sim/churn.hpp"
#include "dosn/sim/metrics.hpp"
#include "dosn/sim/network.hpp"
#include "dosn/sim/simulator.hpp"
#include "dosn/util/error.hpp"

namespace dosn::sim {
namespace {

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(30, [&] { order.push_back(3); });
  sim.schedule(10, [&] { order.push_back(1); });
  sim.schedule(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(5, [&] { order.push_back(1); });
  sim.schedule(5, [&] { order.push_back(2); });
  sim.schedule(5, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, HandlersCanScheduleMoreEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) sim.schedule(10, tick);
  };
  sim.schedule(10, tick);
  sim.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.now(), 50u);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int ran = 0;
  sim.schedule(10, [&] { ++ran; });
  sim.schedule(20, [&] { ++ran; });
  sim.schedule(30, [&] { ++ran; });
  sim.runUntil(20);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(sim.now(), 20u);
  EXPECT_EQ(sim.pendingEvents(), 1u);
  sim.run();
  EXPECT_EQ(ran, 3);
}

TEST(Simulator, SchedulingInPastThrows) {
  Simulator sim;
  sim.schedule(10, [] {});
  sim.run();
  EXPECT_THROW(sim.scheduleAt(5, [] {}), util::NetError);
}

TEST(Simulator, MaxEventsGuard) {
  Simulator sim;
  std::function<void()> forever = [&] { sim.schedule(1, forever); };
  sim.schedule(1, forever);
  const std::size_t executed = sim.run(1000);
  EXPECT_EQ(executed, 1000u);
}

// --- Network ---

class NetworkTest : public ::testing::Test {
 protected:
  util::Rng rng_{42};
  Simulator sim_;
  Network net_{sim_, LatencyModel{10 * kMillisecond, 0, 0.0}, rng_};
};

TEST_F(NetworkTest, MessageDelivered) {
  const NodeAddr a = net_.addNode();
  const NodeAddr b = net_.addNode();
  std::string received;
  net_.setHandler(b, [&](NodeAddr from, const Message& msg) {
    EXPECT_EQ(from, a);
    received = msg.type;
  });
  net_.send(a, b, Message{"hello", util::toBytes("x")});
  sim_.run();
  EXPECT_EQ(received, "hello");
  EXPECT_EQ(net_.messagesSent(), 1u);
  EXPECT_EQ(net_.messagesDelivered(), 1u);
}

TEST_F(NetworkTest, LatencyApplied) {
  const NodeAddr a = net_.addNode();
  const NodeAddr b = net_.addNode();
  SimTime deliveredAt = 0;
  net_.setHandler(b, [&](NodeAddr, const Message&) { deliveredAt = sim_.now(); });
  net_.send(a, b, Message{"m", {}});
  sim_.run();
  EXPECT_EQ(deliveredAt, 10 * kMillisecond);
}

TEST_F(NetworkTest, OfflineSenderDropsSilently) {
  const NodeAddr a = net_.addNode();
  const NodeAddr b = net_.addNode();
  int delivered = 0;
  net_.setHandler(b, [&](NodeAddr, const Message&) { ++delivered; });
  net_.setOnline(a, false);
  net_.send(a, b, Message{"m", {}});
  sim_.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net_.messagesSent(), 0u);
}

TEST_F(NetworkTest, ReceiverOfflineAtDeliveryDrops) {
  const NodeAddr a = net_.addNode();
  const NodeAddr b = net_.addNode();
  int delivered = 0;
  net_.setHandler(b, [&](NodeAddr, const Message&) { ++delivered; });
  net_.send(a, b, Message{"m", {}});
  // b goes offline while the message is in flight.
  sim_.schedule(5 * kMillisecond, [&] { net_.setOnline(b, false); });
  sim_.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net_.messagesSent(), 1u);
  EXPECT_EQ(net_.messagesDelivered(), 0u);
}

TEST_F(NetworkTest, StatusHookFires) {
  const NodeAddr a = net_.addNode();
  std::vector<bool> transitions;
  net_.setStatusHook(a, [&](NodeAddr, bool online) {
    transitions.push_back(online);
  });
  net_.setOnline(a, false);
  net_.setOnline(a, false);  // no-op
  net_.setOnline(a, true);
  EXPECT_EQ(transitions, (std::vector<bool>{false, true}));
}

TEST_F(NetworkTest, UnknownNodeThrows) {
  const NodeAddr a = net_.addNode();
  EXPECT_THROW(net_.send(a, 9999, Message{"m", {}}), util::NetError);
  EXPECT_THROW(net_.isOnline(9999), util::NetError);
}

TEST_F(NetworkTest, PerTypeAccounting) {
  const NodeAddr a = net_.addNode();
  const NodeAddr b = net_.addNode();
  net_.setHandler(b, [](NodeAddr, const Message&) {});
  net_.send(a, b, Message{"x", util::Bytes(10, 0)});
  net_.send(a, b, Message{"x", util::Bytes(5, 0)});
  net_.send(a, b, Message{"y", {}});
  EXPECT_EQ(net_.messagesByType().at("x"), 2u);
  EXPECT_EQ(net_.messagesByType().at("y"), 1u);
  EXPECT_EQ(net_.bytesSent(), 15u);
  net_.resetStats();
  EXPECT_EQ(net_.messagesSent(), 0u);
}

TEST(NetworkLoss, LossyLinkDropsSome) {
  util::Rng rng(7);
  Simulator sim;
  Network net(sim, LatencyModel{kMillisecond, 0, 0.5}, rng);
  const NodeAddr a = net.addNode();
  const NodeAddr b = net.addNode();
  int delivered = 0;
  net.setHandler(b, [&](NodeAddr, const Message&) { ++delivered; });
  for (int i = 0; i < 200; ++i) net.send(a, b, Message{"m", {}});
  sim.run();
  EXPECT_GT(delivered, 60);
  EXPECT_LT(delivered, 140);
}

// --- Churn ---

TEST(Churn, SteadyStateAvailabilityMatchesExpectation) {
  util::Rng rng(11);
  Simulator sim;
  Network net(sim, LatencyModel{}, rng);
  std::vector<NodeAddr> nodes;
  for (int i = 0; i < 200; ++i) nodes.push_back(net.addNode());
  ChurnConfig config;
  config.meanOnlineSeconds = 100;
  config.meanOfflineSeconds = 300;
  config.initialOnlineFraction = 0.25;
  ChurnProcess churn(net, config, nodes);
  EXPECT_NEAR(expectedAvailability(config), 0.25, 1e-9);

  // Sample online fraction over a long horizon.
  double sum = 0;
  int samples = 0;
  for (int s = 1; s <= 50; ++s) {
    sim.runUntil(static_cast<SimTime>(s) * 100 * kSecond);
    sum += static_cast<double>(net.onlineCount()) / static_cast<double>(nodes.size());
    ++samples;
  }
  churn.stop();
  EXPECT_NEAR(sum / samples, 0.25, 0.06);
}

TEST(Churn, StopHaltsTransitions) {
  util::Rng rng(13);
  Simulator sim;
  Network net(sim, LatencyModel{}, rng);
  std::vector<NodeAddr> nodes{net.addNode()};
  ChurnProcess churn(net, ChurnConfig{1, 1, 1.0}, nodes);
  churn.stop();
  sim.runUntil(1000 * kSecond);
  // Node state frozen after stop: it started online (fraction 1.0).
  EXPECT_TRUE(net.isOnline(nodes[0]));
}

// --- Metrics ---

TEST(Metrics, CountersAccumulate) {
  Metrics m;
  m.increment("a");
  m.increment("a", 4);
  EXPECT_EQ(m.counter("a"), 5u);
  EXPECT_EQ(m.counter("missing"), 0u);
}

TEST(Metrics, HistogramStats) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
  EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 3.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 5.0);
  EXPECT_THROW(h.percentile(101), std::invalid_argument);
}

TEST(Metrics, EmptyHistogramSafe) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(50), 0.0);
}

}  // namespace
}  // namespace dosn::sim
