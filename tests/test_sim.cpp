// Tests for the discrete-event simulator, network, churn and metrics.
#include <gtest/gtest.h>

#include <cmath>
#include <string_view>
#include <utility>

#include "dosn/sim/churn.hpp"
#include "dosn/sim/message_type.hpp"
#include "dosn/sim/metrics.hpp"
#include "dosn/sim/network.hpp"
#include "dosn/sim/pool.hpp"
#include "dosn/sim/simulator.hpp"
#include "dosn/util/error.hpp"

namespace dosn::sim {
namespace {

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(30, [&] { order.push_back(3); });
  sim.schedule(10, [&] { order.push_back(1); });
  sim.schedule(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(5, [&] { order.push_back(1); });
  sim.schedule(5, [&] { order.push_back(2); });
  sim.schedule(5, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, HandlersCanScheduleMoreEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) sim.schedule(10, tick);
  };
  sim.schedule(10, tick);
  sim.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.now(), 50u);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int ran = 0;
  sim.schedule(10, [&] { ++ran; });
  sim.schedule(20, [&] { ++ran; });
  sim.schedule(30, [&] { ++ran; });
  sim.runUntil(20);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(sim.now(), 20u);
  EXPECT_EQ(sim.pendingEvents(), 1u);
  sim.run();
  EXPECT_EQ(ran, 3);
}

TEST(Simulator, SchedulingInPastThrows) {
  Simulator sim;
  sim.schedule(10, [] {});
  sim.run();
  EXPECT_THROW(sim.scheduleAt(5, [] {}), util::NetError);
}

TEST(Simulator, MaxEventsGuard) {
  Simulator sim;
  std::function<void()> forever = [&] { sim.schedule(1, forever); };
  sim.schedule(1, forever);
  const std::size_t executed = sim.run(1000);
  EXPECT_EQ(executed, 1000u);
}

// --- Network ---

class NetworkTest : public ::testing::Test {
 protected:
  util::Rng rng_{42};
  Simulator sim_;
  Network net_{sim_, LatencyModel{10 * kMillisecond, 0, 0.0}, rng_};
};

TEST_F(NetworkTest, MessageDelivered) {
  const NodeAddr a = net_.addNode();
  const NodeAddr b = net_.addNode();
  std::string received;
  net_.setHandler(b, [&](NodeAddr from, const Message& msg) {
    EXPECT_EQ(from, a);
    received = msg.type;
  });
  net_.send(a, b, Message{"hello", util::toBytes("x")});
  sim_.run();
  EXPECT_EQ(received, "hello");
  EXPECT_EQ(net_.messagesSent(), 1u);
  EXPECT_EQ(net_.messagesDelivered(), 1u);
}

TEST_F(NetworkTest, LatencyApplied) {
  const NodeAddr a = net_.addNode();
  const NodeAddr b = net_.addNode();
  SimTime deliveredAt = 0;
  net_.setHandler(b, [&](NodeAddr, const Message&) { deliveredAt = sim_.now(); });
  net_.send(a, b, Message{"m", {}});
  sim_.run();
  EXPECT_EQ(deliveredAt, 10 * kMillisecond);
}

TEST_F(NetworkTest, OfflineSenderDropsSilently) {
  const NodeAddr a = net_.addNode();
  const NodeAddr b = net_.addNode();
  int delivered = 0;
  net_.setHandler(b, [&](NodeAddr, const Message&) { ++delivered; });
  net_.setOnline(a, false);
  net_.send(a, b, Message{"m", {}});
  sim_.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net_.messagesSent(), 0u);
}

TEST_F(NetworkTest, ReceiverOfflineAtDeliveryDrops) {
  const NodeAddr a = net_.addNode();
  const NodeAddr b = net_.addNode();
  int delivered = 0;
  net_.setHandler(b, [&](NodeAddr, const Message&) { ++delivered; });
  net_.send(a, b, Message{"m", {}});
  // b goes offline while the message is in flight.
  sim_.schedule(5 * kMillisecond, [&] { net_.setOnline(b, false); });
  sim_.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net_.messagesSent(), 1u);
  EXPECT_EQ(net_.messagesDelivered(), 0u);
}

TEST_F(NetworkTest, StatusHookFires) {
  const NodeAddr a = net_.addNode();
  std::vector<bool> transitions;
  net_.setStatusHook(a, [&](NodeAddr, bool online) {
    transitions.push_back(online);
  });
  net_.setOnline(a, false);
  net_.setOnline(a, false);  // no-op
  net_.setOnline(a, true);
  EXPECT_EQ(transitions, (std::vector<bool>{false, true}));
}

TEST_F(NetworkTest, UnknownNodeThrows) {
  const NodeAddr a = net_.addNode();
  EXPECT_THROW(net_.send(a, 9999, Message{"m", {}}), util::NetError);
  EXPECT_THROW(net_.isOnline(9999), util::NetError);
}

TEST_F(NetworkTest, PerTypeAccounting) {
  const NodeAddr a = net_.addNode();
  const NodeAddr b = net_.addNode();
  net_.setHandler(b, [](NodeAddr, const Message&) {});
  net_.send(a, b, Message{"x", util::Bytes(10, 0)});
  net_.send(a, b, Message{"x", util::Bytes(5, 0)});
  net_.send(a, b, Message{"y", {}});
  EXPECT_EQ(net_.messagesByType().at("x"), 2u);
  EXPECT_EQ(net_.messagesByType().at("y"), 1u);
  EXPECT_EQ(net_.bytesSent(), 15u);
  net_.resetStats();
  EXPECT_EQ(net_.messagesSent(), 0u);
}

TEST_F(NetworkTest, SentVersusDeliveredAccountingSplit) {
  // Regression: messages lost in flight used to be indistinguishable from
  // delivered ones in the per-type/bytes stats. "Sent" must count every
  // send, "delivered" only what reached a live handler.
  const NodeAddr a = net_.addNode();
  const NodeAddr b = net_.addNode();
  net_.setHandler(b, [](NodeAddr, const Message&) {});
  net_.send(a, b, Message{"ok", util::Bytes(10, 0)});  // arrives at 10ms
  sim_.schedule(15 * kMillisecond, [&] { net_.setOnline(b, false); });
  // b offline while these two are in flight: sent, never delivered.
  sim_.schedule(20 * kMillisecond, [&] {
    net_.send(a, b, Message{"lost", util::Bytes(7, 0)});
    net_.send(a, b, Message{"lost", util::Bytes(3, 0)});
  });
  sim_.run();
  EXPECT_EQ(net_.messagesSent(), 3u);
  EXPECT_EQ(net_.messagesDelivered(), 1u);
  EXPECT_EQ(net_.messagesDropped(), 2u);
  EXPECT_EQ(net_.bytesSent(), 20u);
  EXPECT_EQ(net_.bytesDelivered(), 10u);
  EXPECT_EQ(net_.messagesByType().at("ok"), 1u);
  EXPECT_EQ(net_.messagesByType().at("lost"), 2u);
  EXPECT_EQ(net_.deliveredByType().at("ok"), 1u);
  EXPECT_EQ(net_.deliveredByType().count("lost"), 0u);
}

TEST(NetworkLoss, LinkLossExcludedFromDeliveredStats) {
  util::Rng rng(7);
  Simulator sim;
  Network net(sim, LatencyModel{kMillisecond, 0, 1.0}, rng);
  const NodeAddr a = net.addNode();
  const NodeAddr b = net.addNode();
  int delivered = 0;
  net.setHandler(b, [&](NodeAddr, const Message&) { ++delivered; });
  for (int i = 0; i < 20; ++i) net.send(a, b, Message{"m", util::Bytes(4, 0)});
  sim.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net.messagesSent(), 20u);
  EXPECT_EQ(net.messagesByType().at("m"), 20u);  // sends are still counted
  EXPECT_EQ(net.messagesDelivered(), 0u);
  EXPECT_EQ(net.messagesDropped(), 20u);
  EXPECT_EQ(net.bytesDelivered(), 0u);
  EXPECT_TRUE(net.deliveredByType().empty());
}

TEST(NetworkLoss, LossyLinkDropsSome) {
  util::Rng rng(7);
  Simulator sim;
  Network net(sim, LatencyModel{kMillisecond, 0, 0.5}, rng);
  const NodeAddr a = net.addNode();
  const NodeAddr b = net.addNode();
  int delivered = 0;
  net.setHandler(b, [&](NodeAddr, const Message&) { ++delivered; });
  for (int i = 0; i < 200; ++i) net.send(a, b, Message{"m", {}});
  sim.run();
  EXPECT_GT(delivered, 60);
  EXPECT_LT(delivered, 140);
}

// --- Churn ---

TEST(Churn, SteadyStateAvailabilityMatchesExpectation) {
  util::Rng rng(11);
  Simulator sim;
  Network net(sim, LatencyModel{}, rng);
  std::vector<NodeAddr> nodes;
  for (int i = 0; i < 200; ++i) nodes.push_back(net.addNode());
  ChurnConfig config;
  config.meanOnlineSeconds = 100;
  config.meanOfflineSeconds = 300;
  config.initialOnlineFraction = 0.25;
  ChurnProcess churn(net, config, nodes);
  EXPECT_NEAR(expectedAvailability(config), 0.25, 1e-9);

  // Sample online fraction over a long horizon.
  double sum = 0;
  int samples = 0;
  for (int s = 1; s <= 50; ++s) {
    sim.runUntil(static_cast<SimTime>(s) * 100 * kSecond);
    sum += static_cast<double>(net.onlineCount()) / static_cast<double>(nodes.size());
    ++samples;
  }
  churn.stop();
  EXPECT_NEAR(sum / samples, 0.25, 0.06);
}

TEST(Churn, TimeWeightedAvailabilityConvergesToExpectation) {
  // Empirical per-node availability (time-integrated via status hooks, not
  // point samples) over a long run must converge to expectedAvailability.
  util::Rng rng(17);
  Simulator sim;
  Network net(sim, LatencyModel{}, rng);
  std::vector<NodeAddr> nodes;
  for (int i = 0; i < 100; ++i) nodes.push_back(net.addNode());
  ChurnConfig config;
  config.meanOnlineSeconds = 60;
  config.meanOfflineSeconds = 180;
  config.initialOnlineFraction = expectedAvailability(config);
  ChurnProcess churn(net, config, nodes);
  EXPECT_NEAR(expectedAvailability(config), 0.25, 1e-9);

  struct Tracker {
    SimTime lastChange = 0;
    bool online = false;
    double onlineTime = 0;
  };
  std::vector<Tracker> trackers(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    trackers[i].online = net.isOnline(nodes[i]);
    net.setStatusHook(nodes[i], [&, i](NodeAddr, bool online) {
      Tracker& t = trackers[i];
      if (t.online) {
        t.onlineTime += static_cast<double>(sim.now() - t.lastChange);
      }
      t.lastChange = sim.now();
      t.online = online;
    });
  }
  const SimTime horizon = 20'000 * kSecond;
  sim.runUntil(horizon);
  churn.stop();
  double onlineTotal = 0;
  for (Tracker& t : trackers) {
    if (t.online) t.onlineTime += static_cast<double>(horizon - t.lastChange);
    onlineTotal += t.onlineTime;
  }
  const double availability =
      onlineTotal / (static_cast<double>(horizon) * static_cast<double>(nodes.size()));
  EXPECT_NEAR(availability, expectedAvailability(config), 0.02);
}

TEST(Churn, StopHaltsTransitions) {
  util::Rng rng(13);
  Simulator sim;
  Network net(sim, LatencyModel{}, rng);
  std::vector<NodeAddr> nodes;
  for (int i = 0; i < 20; ++i) nodes.push_back(net.addNode());
  // Fast churn (1s/1s sessions) so a leak after stop() would surface within
  // the long horizon below.
  ChurnProcess churn(net, ChurnConfig{1, 1, 1.0}, nodes);
  int transitions = 0;
  for (const NodeAddr node : nodes) {
    net.setStatusHook(node, [&](NodeAddr, bool) { ++transitions; });
  }
  sim.runUntil(10 * kSecond);
  const int beforeStop = transitions;
  EXPECT_GT(beforeStop, 0);
  churn.stop();
  sim.runUntil(1000 * kSecond);
  // No transition fires after stop — in-flight events become no-ops.
  EXPECT_EQ(transitions, beforeStop);
  // Nodes all started online (fraction 1.0) and are now frozen in whatever
  // state stop() caught them; the states must stop changing too.
  std::vector<bool> frozen;
  for (const NodeAddr node : nodes) frozen.push_back(net.isOnline(node));
  sim.runUntil(2000 * kSecond);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_EQ(net.isOnline(nodes[i]), frozen[i]);
  }
}

// --- Metrics ---

TEST(Metrics, CountersAccumulate) {
  Metrics m;
  m.increment("a");
  m.increment("a", 4);
  EXPECT_EQ(m.counter("a"), 5u);
  EXPECT_EQ(m.counter("missing"), 0u);
}

TEST(Metrics, HistogramStats) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
  EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 3.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 5.0);
  EXPECT_THROW(h.percentile(101), std::invalid_argument);
}

TEST(Metrics, EmptyHistogramReturnsNaN) {
  // 0.0 from an empty histogram is indistinguishable from a measured zero in
  // a report; NaN is unmistakable.
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_TRUE(std::isnan(h.mean()));
  EXPECT_TRUE(std::isnan(h.min()));
  EXPECT_TRUE(std::isnan(h.max()));
  EXPECT_TRUE(std::isnan(h.percentile(0)));
  EXPECT_TRUE(std::isnan(h.percentile(50)));
  EXPECT_TRUE(std::isnan(h.percentile(100)));
  // Range validation still applies to an empty histogram.
  EXPECT_THROW(h.percentile(-1), std::invalid_argument);
  EXPECT_THROW(h.percentile(101), std::invalid_argument);
}

TEST(Metrics, SingleElementHistogram) {
  Histogram h;
  h.record(7.5);
  EXPECT_DOUBLE_EQ(h.mean(), 7.5);
  EXPECT_DOUBLE_EQ(h.min(), 7.5);
  EXPECT_DOUBLE_EQ(h.max(), 7.5);
  EXPECT_DOUBLE_EQ(h.percentile(0), 7.5);
  EXPECT_DOUBLE_EQ(h.percentile(50), 7.5);
  EXPECT_DOUBLE_EQ(h.percentile(100), 7.5);
}

TEST(Metrics, TwoSamplePercentileInterpolatesLinearly) {
  Histogram h;
  h.record(20.0);
  h.record(10.0);  // out of order: percentile sorts first
  EXPECT_DOUBLE_EQ(h.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(h.percentile(25), 12.5);
  EXPECT_DOUBLE_EQ(h.percentile(50), 15.0);
  EXPECT_DOUBLE_EQ(h.percentile(75), 17.5);
  EXPECT_DOUBLE_EQ(h.percentile(100), 20.0);
  // Recording after a percentile query re-sorts before the next query.
  h.record(0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 10.0);
}

TEST(Metrics, GaugesKeepLastValueAndNaNWhenUnset) {
  Metrics m;
  EXPECT_TRUE(std::isnan(m.gaugeValue("rtt.srtt")));
  m.gauge("rtt.srtt", 42.0);
  EXPECT_DOUBLE_EQ(m.gaugeValue("rtt.srtt"), 42.0);
  m.gauge("rtt.srtt", 17.5);  // last value wins, no accumulation
  EXPECT_DOUBLE_EQ(m.gaugeValue("rtt.srtt"), 17.5);
  EXPECT_EQ(m.gauges().size(), 1u);
}

TEST(Metrics, CountersWithPrefixHandlesOverlappingPrefixes) {
  // The endpoint's counter families nest ("rpc." contains "rpc.rtt."): the
  // prefix scan must honor full-prefix matches only, in name order.
  Metrics m;
  m.increment("rpc.req.sent", 3);
  m.increment("rpc.rtt.req.samples", 2);
  m.increment("rpcx.other");   // shares the characters but not the prefix
  m.increment("gossip.sent");

  const auto all = m.countersWithPrefix("rpc.");
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].first, "rpc.req.sent");
  EXPECT_EQ(all[0].second, 3u);
  EXPECT_EQ(all[1].first, "rpc.rtt.req.samples");

  const auto rtt = m.countersWithPrefix("rpc.rtt.");
  ASSERT_EQ(rtt.size(), 1u);
  EXPECT_EQ(rtt[0].first, "rpc.rtt.req.samples");

  // The empty prefix matches everything; a non-existent one, nothing.
  EXPECT_EQ(m.countersWithPrefix("").size(), 4u);
  EXPECT_TRUE(m.countersWithPrefix("zzz.").empty());
}

// ---- Interned message types (DESIGN.md §3d) ----

TEST(MessageTypeIntern, RoundTripsIdAndName) {
  const MessageType t("intern.roundtrip");
  EXPECT_EQ(t.name(), "intern.roundtrip");
  EXPECT_EQ(MessageType::fromId(t.id()).name(), "intern.roundtrip");
  EXPECT_EQ(internMessageType("intern.roundtrip"), t.id());
}

TEST(MessageTypeIntern, DuplicateRegistrationReturnsSameId) {
  const MessageType a("intern.dup");
  const MessageType b(std::string("intern.dup"));
  const MessageType c(std::string_view("intern.dup"));
  EXPECT_EQ(a.id(), b.id());
  EXPECT_EQ(a.id(), c.id());
  EXPECT_EQ(a, b);
  // A distinct spelling gets a distinct id.
  EXPECT_NE(a, MessageType("intern.dup2"));
}

TEST(MessageTypeIntern, DefaultIsTheEmptyNameWithIdZero) {
  const MessageType def;
  EXPECT_EQ(def.id(), 0u);
  EXPECT_EQ(def.name(), "");
  EXPECT_EQ(MessageType("").id(), 0u);
}

TEST(MessageTypeIntern, StringComparisonNeverInterns) {
  const MessageType t("intern.compare");
  const std::size_t before = messageTypeCount();
  EXPECT_FALSE(t == "intern.nobody-sends-this");
  EXPECT_TRUE(t != std::string("intern.nor-this"));
  EXPECT_TRUE(t == "intern.compare");
  EXPECT_EQ(messageTypeCount(), before);
}

TEST(MessageTypeIntern, CountGrowsMonotonically) {
  const std::size_t before = messageTypeCount();
  const MessageType t("intern.growth-probe");
  EXPECT_EQ(messageTypeCount(), before + 1);
  EXPECT_LT(t.id(), messageTypeCount());
  // Re-interning does not grow the table.
  internMessageType("intern.growth-probe");
  EXPECT_EQ(messageTypeCount(), before + 1);
}

TEST(MessageTypeIntern, ForgedIdThrows) {
  EXPECT_THROW(messageTypeName(static_cast<MessageTypeId>(~0u)),
               util::DosnError);
}

TEST_F(NetworkTest, TypeCounterViewMatchesDenseLookups) {
  const NodeAddr a = net_.addNode();
  const NodeAddr b = net_.addNode();
  net_.setHandler(b, [](NodeAddr, const Message&) {});
  const MessageType ping("view.ping");
  const MessageType pong("view.pong");
  net_.send(a, b, Message{ping, util::toBytes("x")});
  net_.send(a, b, Message{ping, util::toBytes("y")});
  net_.send(a, b, Message{pong, util::toBytes("z")});
  sim_.run();

  // Dense per-id counters and the string-keyed views must agree exactly.
  EXPECT_EQ(net_.sentOfType(ping), 2u);
  EXPECT_EQ(net_.sentOfType(pong), 1u);
  EXPECT_EQ(net_.deliveredOfType(ping), 2u);
  const auto sent = net_.messagesByType();
  const auto delivered = net_.deliveredByType();
  EXPECT_EQ(sent.at("view.ping"), 2u);
  EXPECT_EQ(sent.at("view.pong"), 1u);
  EXPECT_EQ(delivered.at("view.ping"), 2u);
  EXPECT_EQ(delivered.at("view.pong"), 1u);
  // Zero-count types are omitted from the views (the old map behavior).
  const MessageType silent("view.never-sent");
  EXPECT_EQ(net_.sentOfType(silent), 0u);
  EXPECT_EQ(sent.count("view.never-sent"), 0u);
}

// ---- Event/payload pools (DESIGN.md §3d) ----

TEST(PoolTest, ReusesFreedBlocks) {
  Pool pool(64, 8);
  void* first = pool.allocate(64);
  pool.deallocate(first, 64);
  void* second = pool.allocate(64);
  EXPECT_EQ(first, second);  // LIFO free list hands the hot block back
  EXPECT_EQ(pool.blockAllocs(), 2u);
  EXPECT_EQ(pool.reuses(), 1u);
  EXPECT_EQ(pool.spills(), 0u);
  pool.deallocate(second, 64);
}

TEST(PoolTest, OversizedRequestsSpill) {
  Pool pool(64, 8);
  void* big = pool.allocate(65);
  EXPECT_NE(big, nullptr);
  EXPECT_EQ(pool.spills(), 1u);
  EXPECT_EQ(pool.liveSpills(), 1u);
  EXPECT_EQ(pool.blockAllocs(), 0u);
  pool.deallocate(big, 65);
  EXPECT_EQ(pool.liveSpills(), 0u);
}

TEST(PoolTest, CarvesNewSlabsOnDemand) {
  Pool pool(32, 4);
  std::vector<void*> blocks;
  for (int i = 0; i < 9; ++i) blocks.push_back(pool.allocate(32));
  EXPECT_EQ(pool.slabCount(), 3u);  // 4 + 4 + 1
  EXPECT_EQ(pool.liveBlocks(), 9u);
  for (void* p : blocks) pool.deallocate(p, 32);
  EXPECT_EQ(pool.liveBlocks(), 0u);
}

TEST(PoolTest, ResetRefusesWhileBlocksLive) {
  Pool pool(32, 4);
  void* p = pool.allocate(32);
  EXPECT_THROW(pool.reset(), util::DosnError);
  pool.deallocate(p, 32);
  pool.reset();
  EXPECT_EQ(pool.slabCount(), 0u);
  // Cumulative counters survive reset; the pool is immediately usable.
  EXPECT_EQ(pool.blockAllocs(), 1u);
  void* q = pool.allocate(32);
  EXPECT_NE(q, nullptr);
  pool.deallocate(q, 32);
}

TEST(PoolTest, ReuseUnderChurn) {
  // Steady-state simulation shape: allocate/free cycling far more blocks
  // than one slab holds must reuse the free list, not grow slabs.
  Pool pool(64, 16);
  for (int round = 0; round < 100; ++round) {
    std::vector<void*> live;
    for (int i = 0; i < 8; ++i) live.push_back(pool.allocate(64));
    for (void* p : live) pool.deallocate(p, 64);
  }
  EXPECT_EQ(pool.slabCount(), 1u);
  EXPECT_EQ(pool.blockAllocs(), 800u);
  EXPECT_GE(pool.reuses(), 800u - 16u);
  EXPECT_EQ(pool.liveBlocks(), 0u);
}

TEST(PooledBytesTest, SmallPayloadsLiveInline) {
  const util::Bytes small = util::toBytes("inline-sized payload");
  PooledBytes b(small);
  EXPECT_TRUE(b.inlined());
  EXPECT_FALSE(b.pooled());
  EXPECT_EQ(util::Bytes(b), small);
  EXPECT_EQ(b.size(), small.size());
}

TEST(PooledBytesTest, InlineBoundaryIsExact) {
  const util::Bytes atLimit(PooledBytes::kInlineSize, 0xab);
  const util::Bytes overLimit(PooledBytes::kInlineSize + 1, 0xcd);
  PooledBytes in(atLimit);
  PooledBytes out(overLimit);
  EXPECT_TRUE(in.inlined());
  EXPECT_FALSE(out.inlined());
  EXPECT_TRUE(out.pooled());
  EXPECT_EQ(util::Bytes(in), atLimit);
  EXPECT_EQ(util::Bytes(out), overLimit);
}

TEST(PooledBytesTest, MidSizePayloadsTakePoolBlocks) {
  const std::uint64_t before = payloadPool().blockAllocs();
  const util::Bytes mid(128, 0x5a);
  PooledBytes b(mid);
  EXPECT_TRUE(b.pooled());
  EXPECT_FALSE(b.inlined());
  EXPECT_EQ(payloadPool().blockAllocs(), before + 1);
  EXPECT_EQ(util::Bytes(b), mid);
}

TEST(PooledBytesTest, OversizedPayloadsSpillToHeap) {
  const util::Bytes big(payloadPool().blockSize() + 1, 0x11);
  PooledBytes b(big);
  EXPECT_FALSE(b.pooled());
  EXPECT_FALSE(b.inlined());
  EXPECT_EQ(b.size(), big.size());
  EXPECT_EQ(util::Bytes(b), big);
}

TEST(PooledBytesTest, AdoptsRvalueBytesWithoutPoolTraffic) {
  util::Bytes payload(200, 0x77);
  const std::uint8_t* storage = payload.data();
  const std::uint64_t allocsBefore = payloadPool().blockAllocs();
  const std::uint64_t spillsBefore = payloadPool().spills();
  PooledBytes b(std::move(payload));
  EXPECT_EQ(b.data(), storage);  // same heap buffer, no copy
  EXPECT_EQ(payloadPool().blockAllocs(), allocsBefore);
  EXPECT_EQ(payloadPool().spills(), spillsBefore);
}

TEST(PooledBytesTest, MovesPreserveEveryTier) {
  const util::Bytes small = util::toBytes("tiny");
  const util::Bytes mid(128, 0x22);
  const util::Bytes big(payloadPool().blockSize() + 16, 0x33);
  for (const util::Bytes& payload : {small, mid, big}) {
    PooledBytes source(payload);
    PooledBytes moved(std::move(source));
    EXPECT_EQ(util::Bytes(moved), payload);
    EXPECT_TRUE(source.empty());
    PooledBytes assigned;
    assigned = std::move(moved);
    EXPECT_EQ(util::Bytes(assigned), payload);
  }
}

TEST(PooledBytesTest, CopiesReassignStorageTier) {
  // A copy re-tiers by size, regardless of the source's storage: a copy of
  // an adopted heap buffer that fits inline goes inline.
  util::Bytes adopted = util::toBytes("fits inline after copy");
  PooledBytes source(std::move(adopted));
  EXPECT_FALSE(source.inlined());
  PooledBytes copy(source);
  EXPECT_TRUE(copy.inlined());
  EXPECT_EQ(util::Bytes(copy), util::toBytes("fits inline after copy"));
}

TEST(PooledBytesTest, ReleasesBlocksOnDestruction) {
  const std::size_t liveBefore = payloadPool().liveBlocks();
  const util::Bytes mid(128, 0x44);  // lvalue: copied into a pool block
  {
    PooledBytes b(mid);
    EXPECT_EQ(payloadPool().liveBlocks(), liveBefore + 1);
  }
  EXPECT_EQ(payloadPool().liveBlocks(), liveBefore);
}

TEST(EventClosureTest, DroppedUnrunClosureReleasesItsBlock) {
  Pool pool(256, 16);
  bool ran = false;
  // Captures larger than the header's block make the closure take a pool
  // block; dropping it unrun must destroy the capture and free the block.
  {
    EventClosure closure(pool, [&ran] { ran = true; });
    EXPECT_TRUE(static_cast<bool>(closure));
    EXPECT_EQ(pool.liveBlocks(), 1u);
  }
  EXPECT_FALSE(ran);
  EXPECT_EQ(pool.liveBlocks(), 0u);
}

TEST(EventClosureTest, RunReleasesAndClears) {
  Pool pool(256, 16);
  int calls = 0;
  EventClosure closure(pool, [&calls] { ++calls; });
  closure();
  EXPECT_EQ(calls, 1);
  EXPECT_FALSE(static_cast<bool>(closure));
  EXPECT_EQ(pool.liveBlocks(), 0u);
  // The freed block recycles to the next closure.
  EventClosure next(pool, [&calls] { ++calls; });
  EXPECT_EQ(pool.reuses(), 1u);
  next();
  EXPECT_EQ(calls, 2);
}

}  // namespace
}  // namespace dosn::sim
