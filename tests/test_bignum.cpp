// Unit + property tests for dosn/bignum: arithmetic identities, Knuth
// division, modular math, primality.
#include <gtest/gtest.h>

#include "dosn/bignum/biguint.hpp"
#include "dosn/bignum/modmath.hpp"
#include "dosn/bignum/prime.hpp"
#include "dosn/util/error.hpp"

namespace dosn::bignum {
namespace {

TEST(BigUint, ConstructionAndU64) {
  EXPECT_TRUE(BigUint{}.isZero());
  EXPECT_TRUE(BigUint(0).isZero());
  EXPECT_EQ(BigUint(1).toUint64(), 1u);
  EXPECT_EQ(BigUint(0xffffffffffffffffull).toUint64(), 0xffffffffffffffffull);
}

TEST(BigUint, HexRoundTrip) {
  const auto v = BigUint::fromHex("deadbeef00112233445566778899aabb");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->toHex(), "deadbeef00112233445566778899aabb");
  EXPECT_EQ(BigUint(0).toHex(), "0");
  EXPECT_FALSE(BigUint::fromHex("xyz").has_value());
  EXPECT_FALSE(BigUint::fromHex("").has_value());
}

TEST(BigUint, DecimalRoundTrip) {
  const auto v = BigUint::fromDecimal("123456789012345678901234567890");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->toDecimal(), "123456789012345678901234567890");
  EXPECT_EQ(BigUint(0).toDecimal(), "0");
  EXPECT_FALSE(BigUint::fromDecimal("12a").has_value());
}

TEST(BigUint, BytesRoundTrip) {
  util::Rng rng(3);
  for (std::size_t len : {1u, 7u, 16u, 33u}) {
    util::Bytes data = rng.bytes(len);
    data[0] |= 1;  // avoid leading zero ambiguity
    const BigUint v = BigUint::fromBytes(data);
    EXPECT_EQ(v.toBytes(), data);
  }
  EXPECT_EQ(BigUint(0x1234).toBytesPadded(4), (util::Bytes{0, 0, 0x12, 0x34}));
  EXPECT_THROW(BigUint(0x123456).toBytesPadded(2), util::DosnError);
}

TEST(BigUint, Comparison) {
  EXPECT_LT(BigUint(1), BigUint(2));
  EXPECT_GT(BigUint(1) << 64, BigUint(0xffffffffffffffffull));
  EXPECT_EQ(BigUint(5), BigUint(5));
}

TEST(BigUint, AddSub) {
  const BigUint a = *BigUint::fromHex("ffffffffffffffffffffffffffffffff");
  const BigUint one(1);
  const BigUint sum = a + one;
  EXPECT_EQ(sum.toHex(), "100000000000000000000000000000000");
  EXPECT_EQ(sum - one, a);
  EXPECT_THROW(one - sum, util::DosnError);
}

TEST(BigUint, MulKnownValue) {
  const BigUint a = *BigUint::fromDecimal("12345678901234567890");
  const BigUint b = *BigUint::fromDecimal("98765432109876543210");
  EXPECT_EQ((a * b).toDecimal(), "1219326311370217952237463801111263526900");
}

TEST(BigUint, Shifts) {
  const BigUint v(0x1234);
  EXPECT_EQ((v << 4).toUint64(), 0x12340u);
  EXPECT_EQ((v >> 4).toUint64(), 0x123u);
  EXPECT_EQ((v << 100) >> 100, v);
  EXPECT_TRUE((v >> 64).isZero());
}

TEST(BigUint, BitAccess) {
  const BigUint v(0b1010);
  EXPECT_FALSE(v.bit(0));
  EXPECT_TRUE(v.bit(1));
  EXPECT_FALSE(v.bit(2));
  EXPECT_TRUE(v.bit(3));
  EXPECT_FALSE(v.bit(100));
  EXPECT_EQ(v.bitLength(), 4u);
  EXPECT_EQ(BigUint(0).bitLength(), 0u);
  EXPECT_EQ((BigUint(1) << 255).bitLength(), 256u);
}

TEST(BigUint, DivModSmall) {
  const auto [q, r] = BigUint(100).divmod(BigUint(7));
  EXPECT_EQ(q.toUint64(), 14u);
  EXPECT_EQ(r.toUint64(), 2u);
  EXPECT_THROW(BigUint(1).divmod(BigUint(0)), util::DosnError);
}

TEST(BigUint, DivModDividendSmaller) {
  const auto [q, r] = BigUint(5).divmod(BigUint(100));
  EXPECT_TRUE(q.isZero());
  EXPECT_EQ(r.toUint64(), 5u);
}

// Property: for random a, b: a == (a/b)*b + (a%b) and a%b < b.
class DivModProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DivModProperty, Identity) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const std::size_t aBits = 8 + rng.uniform(512);
    const std::size_t bBits = 8 + rng.uniform(256);
    const BigUint a = randomBits(aBits, rng);
    const BigUint b = randomBits(bBits, rng);
    const auto [q, r] = a.divmod(b);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r, b);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DivModProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(BigUint, DivisionStressKnuthAddBack) {
  // Divisors engineered to trigger the rare q-hat correction path: top limbs
  // of the form 0x80000000... with dividends just below a multiple.
  const BigUint b = (BigUint(1) << 96) - BigUint(1);
  const BigUint a = (b * BigUint(0x7fffffff)) + (b - BigUint(1));
  const auto [q, r] = a.divmod(b);
  EXPECT_EQ(q * b + r, a);
  EXPECT_LT(r, b);
}

// --- modmath ---

TEST(ModMath, AddSubMulMod) {
  const BigUint m(97);
  EXPECT_EQ(addMod(BigUint(90), BigUint(10), m).toUint64(), 3u);
  EXPECT_EQ(subMod(BigUint(5), BigUint(10), m).toUint64(), 92u);
  EXPECT_EQ(mulMod(BigUint(96), BigUint(96), m).toUint64(), 1u);
}

TEST(ModMath, PowModKnownValues) {
  EXPECT_EQ(powMod(BigUint(2), BigUint(10), BigUint(1000)).toUint64(), 24u);
  EXPECT_EQ(powMod(BigUint(5), BigUint(0), BigUint(7)).toUint64(), 1u);
  EXPECT_EQ(powMod(BigUint(5), BigUint(117), BigUint(1)).toUint64(), 0u);
}

TEST(ModMath, PowModFermat) {
  // a^(p-1) = 1 mod p for prime p and a not divisible by p.
  const BigUint p(1000003);
  for (std::uint64_t a : {2ull, 3ull, 999999ull}) {
    EXPECT_EQ(powMod(BigUint(a), p - BigUint(1), p), BigUint(1)) << a;
  }
}

TEST(ModMath, PowModMatchesNaive) {
  util::Rng rng(9);
  const BigUint m(1000003);
  for (int i = 0; i < 20; ++i) {
    const std::uint64_t base = rng.uniform(1000000) + 1;
    const std::uint64_t exp = rng.uniform(50);
    std::uint64_t expected = 1;
    for (std::uint64_t e = 0; e < exp; ++e) expected = expected * base % 1000003;
    EXPECT_EQ(powMod(BigUint(base), BigUint(exp), m).toUint64(), expected);
  }
}

TEST(ModMath, Gcd) {
  EXPECT_EQ(gcd(BigUint(48), BigUint(36)).toUint64(), 12u);
  EXPECT_EQ(gcd(BigUint(17), BigUint(13)).toUint64(), 1u);
  EXPECT_EQ(gcd(BigUint(0), BigUint(5)).toUint64(), 5u);
}

TEST(ModMath, InvMod) {
  const auto inv = invMod(BigUint(3), BigUint(11));
  ASSERT_TRUE(inv.has_value());
  EXPECT_EQ(inv->toUint64(), 4u);
  EXPECT_FALSE(invMod(BigUint(6), BigUint(9)).has_value());  // gcd != 1
}

TEST(ModMath, InvModProperty) {
  util::Rng rng(11);
  const BigUint p = *BigUint::fromDecimal("1000003");
  for (int i = 0; i < 50; ++i) {
    const BigUint a(rng.uniform(1000002) + 1);
    const auto inv = invMod(a, p);
    ASSERT_TRUE(inv.has_value());
    EXPECT_EQ(mulMod(a, *inv, p), BigUint(1));
  }
}

TEST(ModMath, InvModLarge) {
  util::Rng rng(13);
  const BigUint p = randomPrime(128, rng);
  for (int i = 0; i < 10; ++i) {
    const BigUint a = randomUnit(p, rng);
    const auto inv = invMod(a, p);
    ASSERT_TRUE(inv.has_value());
    EXPECT_EQ(mulMod(a, *inv, p), BigUint(1));
  }
}

TEST(ModMath, JacobiKnownValues) {
  // (a/7) for a = 0..6: residues are {1, 2, 4}.
  const int expected7[] = {0, 1, 1, -1, 1, -1, -1};
  for (std::uint64_t a = 0; a < 7; ++a) {
    EXPECT_EQ(jacobi(BigUint(a), BigUint(7)), expected7[a]) << a;
  }
  // Composite modulus: (2/15) = (2/3)(2/5) = (-1)(-1) = 1 even though 2 is
  // a non-residue mod 15 — the Jacobi symbol is only a residue test for
  // prime moduli.
  EXPECT_EQ(jacobi(BigUint(2), BigUint(15)), 1);
  EXPECT_EQ(jacobi(BigUint(5), BigUint(15)), 0);  // shared factor
  EXPECT_EQ(jacobi(BigUint(1001), BigUint(9907)), -1);  // textbook example
  EXPECT_THROW(jacobi(BigUint(3), BigUint(10)), util::DosnError);  // even n
}

TEST(ModMath, JacobiMatchesEulerCriterion) {
  // For prime p, (a/p) == 1 iff a^((p-1)/2) == 1 — differential test of the
  // binary Jacobi against the powMod reference across several prime widths.
  util::Rng rng(23);
  for (std::size_t bits : {64u, 128u, 256u}) {
    const BigUint p = randomPrime(bits, rng);
    const BigUint halfOrder = (p - BigUint(1)) >> 1;
    for (int i = 0; i < 25; ++i) {
      const BigUint a = randomUnit(p, rng);
      const BigUint euler = powMod(a, halfOrder, p);
      const int viaEuler = euler == BigUint(1) ? 1 : -1;
      EXPECT_EQ(jacobi(a, p), viaEuler) << "bits=" << bits;
    }
    EXPECT_EQ(jacobi(p, p), 0);
    EXPECT_EQ(jacobi(BigUint(0), p), 0);
    EXPECT_EQ(jacobi(BigUint(1), p), 1);
  }
}

TEST(ModMath, JacobiIsMultiplicative) {
  util::Rng rng(29);
  const BigUint n = randomPrime(96, rng);
  for (int i = 0; i < 25; ++i) {
    const BigUint a = randomBelow(n, rng);
    const BigUint b = randomBelow(n, rng);
    EXPECT_EQ(jacobi(mulMod(a, b, n), n), jacobi(a, n) * jacobi(b, n));
  }
}

TEST(ModMath, RandomBelowInRange) {
  util::Rng rng(15);
  const BigUint bound(1000);
  for (int i = 0; i < 200; ++i) {
    EXPECT_LT(randomBelow(bound, rng), bound);
  }
}

TEST(ModMath, RandomBitsExactWidth) {
  util::Rng rng(17);
  for (std::size_t bits : {8u, 17u, 64u, 129u}) {
    EXPECT_EQ(randomBits(bits, rng).bitLength(), bits);
  }
}

// --- primality ---

TEST(Prime, KnownPrimes) {
  util::Rng rng(19);
  for (std::uint64_t p : {2ull, 3ull, 5ull, 101ull, 65537ull, 1000003ull,
                          2147483647ull}) {
    EXPECT_TRUE(isProbablePrime(BigUint(p), rng)) << p;
  }
}

TEST(Prime, KnownComposites) {
  util::Rng rng(21);
  for (std::uint64_t n : {1ull, 4ull, 100ull, 65539ull * 3, 561ull /*Carmichael*/,
                          1000001ull}) {
    EXPECT_FALSE(isProbablePrime(BigUint(n), rng)) << n;
  }
}

TEST(Prime, LargeCarmichaelRejected) {
  util::Rng rng(23);
  // 1729 and 294409 are Carmichael numbers.
  EXPECT_FALSE(isProbablePrime(BigUint(1729), rng));
  EXPECT_FALSE(isProbablePrime(BigUint(294409), rng));
}

TEST(Prime, RandomPrimeHasRequestedBits) {
  util::Rng rng(25);
  for (std::size_t bits : {16u, 32u, 64u, 128u}) {
    const BigUint p = randomPrime(bits, rng);
    EXPECT_EQ(p.bitLength(), bits);
    EXPECT_TRUE(isProbablePrime(p, rng));
  }
}

TEST(Prime, SafePrimeStructure) {
  util::Rng rng(27);
  const BigUint p = randomSafePrime(64, rng);
  EXPECT_TRUE(isProbablePrime(p, rng));
  const BigUint q = (p - BigUint(1)) >> 1;
  EXPECT_TRUE(isProbablePrime(q, rng));
}

TEST(Prime, RsaLikeModulusFactorsBehave) {
  util::Rng rng(29);
  const BigUint p = randomPrime(64, rng);
  const BigUint q = randomPrime(64, rng);
  const BigUint n = p * q;
  EXPECT_FALSE(isProbablePrime(n, rng));
  EXPECT_EQ(gcd(n, p), p);
}

}  // namespace
}  // namespace dosn::bignum
