// Tests for the §V secure-social-search mechanisms: the index substrate,
// Hummingbird (OPRF + blind-signature subscription), proxy aliases,
// matryoshka rings, ZKP access, resource handlers, and trust ranking.
#include <gtest/gtest.h>

#include "dosn/search/friend_finder.hpp"
#include "dosn/search/friend_rings.hpp"
#include "dosn/search/hummingbird.hpp"
#include "dosn/search/proxy_alias.hpp"
#include "dosn/search/resource_handler.hpp"
#include "dosn/search/search_index.hpp"
#include "dosn/search/topic_subscription.hpp"
#include "dosn/search/trust_rank.hpp"
#include "dosn/search/zkp_access.hpp"
#include "dosn/social/graph_gen.hpp"
#include "dosn/util/error.hpp"

namespace dosn::search {
namespace {

using util::toBytes;

const pkcrypto::DlogGroup& testGroup() {
  return pkcrypto::DlogGroup::cached(256);
}

// --- InvertedIndex ---

TEST(Index, ConjunctiveSearch) {
  InvertedIndex index;
  index.indexPost("alice", 1, "privacy in social networks");
  index.indexPost("bob", 2, "privacy matters");
  index.indexPost("carol", 3, "social games");
  const auto both = index.search("privacy social");
  ASSERT_EQ(both.size(), 1u);
  EXPECT_EQ(both[0].owner, "alice");
  EXPECT_EQ(index.search("privacy").size(), 2u);
  EXPECT_TRUE(index.search("absent").empty());
  EXPECT_TRUE(index.search("").empty());
}

TEST(Index, DisjunctiveRankedSearch) {
  InvertedIndex index;
  index.indexPost("a", 1, "alpha beta gamma");
  index.indexPost("b", 2, "alpha beta");
  index.indexPost("c", 3, "alpha");
  const auto ranked = index.searchAny("alpha beta gamma");
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].first.owner, "a");
  EXPECT_EQ(ranked[0].second, 3u);
  EXPECT_EQ(ranked[2].first.owner, "c");
}

TEST(Index, ProfileIndexing) {
  InvertedIndex index;
  index.indexProfile(social::Profile{"alice", {{"city", "Istanbul"}}});
  EXPECT_EQ(index.search("istanbul").size(), 1u);
}

// --- Hummingbird ---

class HummingbirdTest : public ::testing::Test {
 protected:
  util::Rng rng_{42};
  const pkcrypto::DlogGroup& group_ = testGroup();
  HummingbirdPublisher publisher_{group_, 512, rng_};
  HummingbirdSubscriber subscriber_{group_};
  HummingbirdServer server_;
};

TEST_F(HummingbirdTest, OprfSubscriptionDecryptsMatchingTweets) {
  server_.accept(publisher_.publish("#privacy", "tweet one", rng_));
  server_.accept(publisher_.publish("#privacy", "tweet two", rng_));
  server_.accept(publisher_.publish("#cats", "unrelated", rng_));

  const auto request = subscriber_.beginOprf("#privacy", rng_);
  const auto reply = publisher_.oprfEvaluate(request.blinded());
  const Subscription sub = subscriber_.finishOprf(request, reply);

  const auto matched = server_.match(sub.index);
  ASSERT_EQ(matched.size(), 2u);
  EXPECT_EQ(HummingbirdSubscriber::decrypt(sub, matched[0]).value(), "tweet one");
  EXPECT_EQ(HummingbirdSubscriber::decrypt(sub, matched[1]).value(), "tweet two");
}

TEST_F(HummingbirdTest, WrongTagSubscriptionMatchesNothing) {
  server_.accept(publisher_.publish("#privacy", "t", rng_));
  const auto request = subscriber_.beginOprf("#other", rng_);
  const Subscription sub =
      subscriber_.finishOprf(request, publisher_.oprfEvaluate(request.blinded()));
  EXPECT_TRUE(server_.match(sub.index).empty());
}

TEST_F(HummingbirdTest, ServerLearnsNothingButOpaqueIndexes) {
  const EncryptedTweet t1 = publisher_.publish("#privacy", "m1", rng_);
  const EncryptedTweet t2 = publisher_.publish("#privacy", "m2", rng_);
  const EncryptedTweet t3 = publisher_.publish("#cats", "m3", rng_);
  // Same tag -> same index (matching works); different tag -> different.
  EXPECT_EQ(t1.index, t2.index);
  EXPECT_NE(t1.index, t3.index);
  // The index is not the tag or a simple hash of it anyone could brute-force
  // without the publisher's secret: derived through f_s. (We verify it
  // differs across publishers with different secrets.)
  HummingbirdPublisher other(group_, 512, rng_);
  EXPECT_NE(other.publish("#privacy", "m", rng_).index, t1.index);
  // Ciphertexts of distinct tweets differ.
  EXPECT_NE(t1.box, t2.box);
}

TEST_F(HummingbirdTest, BlindSignatureSubscription) {
  server_.accept(
      publisher_.publish("#jazz", "late night set", rng_, KeyPath::kBlindSig));
  auto request = subscriber_.beginBlind(publisher_.blindPublicKey(), "#jazz", rng_);
  const auto blindSig = publisher_.blindSign(request.blinded());
  const auto sub =
      subscriber_.finishBlind(publisher_.blindPublicKey(), request, blindSig);
  ASSERT_TRUE(sub.has_value());
  const auto matched = server_.match(sub->index);
  ASSERT_EQ(matched.size(), 1u);
  EXPECT_EQ(HummingbirdSubscriber::decrypt(*sub, matched[0]).value(),
            "late night set");
}

TEST_F(HummingbirdTest, CheatingBlindSignerDetected) {
  auto request = subscriber_.beginBlind(publisher_.blindPublicKey(), "#tag", rng_);
  // Signer returns garbage instead of a valid blind signature.
  const auto sub = subscriber_.finishBlind(publisher_.blindPublicKey(), request,
                                           bignum::BigUint(12345));
  EXPECT_FALSE(sub.has_value());
}

TEST_F(HummingbirdTest, PublisherCannotLinkBlindRequestsToTags) {
  auto r1 = subscriber_.beginBlind(publisher_.blindPublicKey(), "#same", rng_);
  auto r2 = subscriber_.beginBlind(publisher_.blindPublicKey(), "#same", rng_);
  EXPECT_NE(r1.blinded(), r2.blinded());
}

TEST_F(HummingbirdTest, TweetSerializationRoundTrip) {
  const EncryptedTweet tweet = publisher_.publish("#wire", "over the wire", rng_);
  const auto back = EncryptedTweet::deserialize(tweet.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->index, tweet.index);
  const auto request = subscriber_.beginOprf("#wire", rng_);
  const Subscription sub =
      subscriber_.finishOprf(request, publisher_.oprfEvaluate(request.blinded()));
  EXPECT_EQ(HummingbirdSubscriber::decrypt(sub, *back).value(), "over the wire");
  EXPECT_FALSE(EncryptedTweet::deserialize(toBytes("junk")).has_value());
}

TEST_F(HummingbirdTest, ServerCounts) {
  server_.accept(publisher_.publish("#a", "1", rng_));
  server_.accept(publisher_.publish("#a", "2", rng_));
  server_.accept(publisher_.publish("#b", "3", rng_));
  EXPECT_EQ(server_.tweetCount(), 3u);
  EXPECT_EQ(server_.streamCount(), 2u);
}

// --- Proxy aliases ---

TEST(ProxyAlias, AliasStableAndResolvable) {
  util::Rng rng(1);
  ProxyServer proxy("p1");
  const Alias a1 = proxy.registerUser("alice", rng);
  const Alias a2 = proxy.registerUser("alice", rng);
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(proxy.resolve(a1).value(), "alice");
  EXPECT_EQ(proxy.aliasOf("alice").value(), a1);
  EXPECT_FALSE(proxy.resolve("p1:unknown").has_value());
}

TEST(ProxyAlias, CrossProxyDeliveryHidesRealNames) {
  util::Rng rng(2);
  ProxyNetwork network;
  network.addProxy("p1");
  network.addProxy("p2");
  network.registerUser("alice", 0, rng);
  const Alias bobAlias = network.registerUser("bob", 1, rng);

  const auto delivered = network.send("alice", bobAlias, toBytes("hi"));
  ASSERT_TRUE(delivered.has_value());
  EXPECT_EQ(delivered->to, "bob");
  // The receiver sees only the sender's alias, never "alice".
  EXPECT_NE(delivered->fromAlias, "alice");
  EXPECT_EQ(delivered->fromAlias.substr(0, 3), "p1:");
}

TEST(ProxyAlias, CollusionRecoversMappings) {
  util::Rng rng(3);
  ProxyNetwork network;
  network.addProxy("p1");
  network.addProxy("p2");
  network.addProxy("p3");
  for (int i = 0; i < 30; ++i) {
    network.registerUser("u" + std::to_string(i), i % 3, rng);
  }
  EXPECT_NEAR(network.collusionRecoveryFraction({0}), 1.0 / 3, 1e-9);
  EXPECT_NEAR(network.collusionRecoveryFraction({0, 1}), 2.0 / 3, 1e-9);
  // "The security of this approach can be under the risk by collusion of
  // proxy servers": full collusion deanonymizes everyone.
  EXPECT_NEAR(network.collusionRecoveryFraction({0, 1, 2}), 1.0, 1e-9);
}

TEST(ProxyAlias, UnknownPartiesFail) {
  util::Rng rng(4);
  ProxyNetwork network;
  network.addProxy("p1");
  network.registerUser("alice", 0, rng);
  EXPECT_FALSE(network.send("ghost", "p1:xx", {}).has_value());
  EXPECT_FALSE(network.send("alice", "p1:unknown", {}).has_value());
}

// --- Matryoshka rings ---

class MatryoshkaTest : public ::testing::Test {
 protected:
  MatryoshkaTest() {
    graph_ = social::wattsStrogatz(60, 3, 0.2, rng_);
  }
  util::Rng rng_{5};
  social::SocialGraph graph_;
};

TEST_F(MatryoshkaTest, PathsAreFriendshipChains) {
  Matryoshka ring(graph_, "u0", 3, 2, rng_);
  ASSERT_GE(ring.pathCount(), 1u);
  for (std::size_t p = 0; p < ring.pathCount(); ++p) {
    const auto& path = ring.path(p);
    ASSERT_FALSE(path.empty());
    EXPECT_TRUE(graph_.areFriends("u0", path[0]));
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      EXPECT_TRUE(graph_.areFriends(path[i], path[i + 1]));
    }
  }
}

TEST_F(MatryoshkaTest, PathsAreDisjoint) {
  Matryoshka ring(graph_, "u0", 3, 3, rng_);
  std::set<social::UserId> seen;
  for (std::size_t p = 0; p < ring.pathCount(); ++p) {
    for (const auto& user : ring.path(p)) {
      EXPECT_TRUE(seen.insert(user).second) << user << " reused";
      EXPECT_NE(user, "u0");
    }
  }
}

TEST_F(MatryoshkaTest, RoutingReachesCoreViaRelays) {
  Matryoshka ring(graph_, "u0", 3, 1, rng_);
  ASSERT_GE(ring.pathCount(), 1u);
  std::vector<social::UserId> trace;
  const std::string answer = ring.route(
      0, "profile?", [](const std::string& q) { return "profile-of-u0:" + q; },
      &trace);
  EXPECT_EQ(answer, "profile-of-u0:profile?");
  // The trace starts at the entry point and ends at the innermost friend.
  ASSERT_EQ(trace.size(), ring.path(0).size());
  EXPECT_EQ(trace.front(), ring.entryPoint(0));
  EXPECT_TRUE(graph_.areFriends(trace.back(), "u0"));
}

TEST_F(MatryoshkaTest, DeeperRingsLargerAnonymitySets) {
  // Averaged over several cores: deeper chains hide the core among more
  // candidates (experiment E11's shape).
  double shallowTotal = 0;
  double deepTotal = 0;
  int samples = 0;
  for (int c = 0; c < 10; ++c) {
    const std::string core = "u" + std::to_string(c * 5);
    Matryoshka shallow(graph_, core, 1, 1, rng_);
    Matryoshka deep(graph_, core, 3, 1, rng_);
    if (shallow.pathCount() == 0 || deep.pathCount() == 0) continue;
    if (deep.path(0).size() < 3) continue;  // neighborhood too small
    shallowTotal += static_cast<double>(shallow.anonymitySetSize(graph_, 0));
    deepTotal += static_cast<double>(deep.anonymitySetSize(graph_, 0));
    ++samples;
  }
  ASSERT_GT(samples, 3);
  EXPECT_GT(deepTotal / samples, shallowTotal / samples);
}

// --- ZKP access ---

TEST(ZkpAccess, AuthorizedPseudonymAdmitted) {
  util::Rng rng(6);
  const auto& group = testGroup();
  const Pseudonym p = createPseudonym(group, rng);
  AccessGate gate(group);
  gate.authorize("album", p.handle, p.key.pub);
  const auto proof = proveAccess(group, p, "album", rng);
  EXPECT_TRUE(gate.checkAccess("album", p.handle, proof));
}

TEST(ZkpAccess, UnauthorizedPseudonymRejected) {
  util::Rng rng(7);
  const auto& group = testGroup();
  const Pseudonym authorized = createPseudonym(group, rng);
  const Pseudonym intruder = createPseudonym(group, rng);
  AccessGate gate(group);
  gate.authorize("album", authorized.handle, authorized.key.pub);
  const auto proof = proveAccess(group, intruder, "album", rng);
  EXPECT_FALSE(gate.checkAccess("album", intruder.handle, proof));
  // Using the authorized handle with the intruder's key also fails.
  const auto forged = proveAccess(group, intruder, "album", rng);
  EXPECT_FALSE(gate.checkAccess("album", authorized.handle, forged));
}

TEST(ZkpAccess, ProofNotReplayableAcrossResources) {
  util::Rng rng(8);
  const auto& group = testGroup();
  const Pseudonym p = createPseudonym(group, rng);
  AccessGate gate(group);
  gate.authorize("album", p.handle, p.key.pub);
  gate.authorize("diary", p.handle, p.key.pub);
  const auto albumProof = proveAccess(group, p, "album", rng);
  EXPECT_TRUE(gate.checkAccess("album", p.handle, albumProof));
  EXPECT_FALSE(gate.checkAccess("diary", p.handle, albumProof));
}

TEST(ZkpAccess, RevocationImmediate) {
  util::Rng rng(9);
  const auto& group = testGroup();
  const Pseudonym p = createPseudonym(group, rng);
  AccessGate gate(group);
  gate.authorize("r", p.handle, p.key.pub);
  gate.revoke("r", p.handle);
  EXPECT_FALSE(gate.checkAccess("r", p.handle, proveAccess(group, p, "r", rng)));
  EXPECT_EQ(gate.authorizedCount("r"), 0u);
}

TEST(ZkpAccess, PseudonymsAreUnlinkable) {
  util::Rng rng(10);
  const auto& group = testGroup();
  const Pseudonym p1 = createPseudonym(group, rng);
  const Pseudonym p2 = createPseudonym(group, rng);
  EXPECT_NE(p1.handle, p2.handle);
  EXPECT_NE(p1.key.pub.y, p2.key.pub.y);
}

// --- Resource handlers ---

TEST(ResourceHandler, HandlerVisibleContentGated) {
  util::Rng rng(11);
  const auto& group = testGroup();
  ResourceHandlerRegistry registry(group);
  registry.registerResource("alice/birthday", "alice", toBytes("26 October 1990"));

  // Searches see the handler, not the content.
  EXPECT_EQ(registry.listHandles(),
            (std::vector<std::string>{"alice/birthday"}));
  EXPECT_EQ(registry.ownerOf("alice/birthday").value(), "alice");

  const Pseudonym bob = createPseudonym(group, rng);
  // Before the grant: denied even with a valid proof.
  EXPECT_FALSE(registry
                   .request("alice/birthday", bob.handle,
                            proveAccess(group, bob, "alice/birthday", rng))
                   .has_value());
  registry.grant("alice/birthday", "alice", bob.handle, bob.key.pub);
  const auto content = registry.request(
      "alice/birthday", bob.handle, proveAccess(group, bob, "alice/birthday", rng));
  ASSERT_TRUE(content.has_value());
  EXPECT_EQ(*content, toBytes("26 October 1990"));
}

TEST(ResourceHandler, OnlyOwnerGrants) {
  util::Rng rng(12);
  const auto& group = testGroup();
  ResourceHandlerRegistry registry(group);
  registry.registerResource("alice/photo", "alice", toBytes("img"));
  const Pseudonym p = createPseudonym(group, rng);
  EXPECT_THROW(registry.grant("alice/photo", "mallory", p.handle, p.key.pub),
               util::DosnError);
  EXPECT_THROW(registry.revoke("alice/photo", "mallory", p.handle),
               util::DosnError);
}

TEST(ResourceHandler, RevokeStopsAccess) {
  util::Rng rng(13);
  const auto& group = testGroup();
  ResourceHandlerRegistry registry(group);
  registry.registerResource("r", "owner", toBytes("c"));
  const Pseudonym p = createPseudonym(group, rng);
  registry.grant("r", "owner", p.handle, p.key.pub);
  registry.revoke("r", "owner", p.handle);
  EXPECT_FALSE(
      registry.request("r", p.handle, proveAccess(group, p, "r", rng)).has_value());
}

// --- Trust ranking ---

TEST(TrustRank, ChainTrustIsProduct) {
  social::SocialGraph g;
  g.addFriendship("alice", "bob", 0.9);
  g.addFriendship("bob", "sara", 0.8);
  EXPECT_NEAR(chainTrust(g, {"alice", "bob", "sara"}).value(), 0.72, 1e-9);
  EXPECT_FALSE(chainTrust(g, {"alice", "sara"}).has_value());
  EXPECT_FALSE(chainTrust(g, {"alice"}).has_value());
}

TEST(TrustRank, BestChainPicksStrongerPath) {
  social::SocialGraph g;
  // Two paths alice->target: direct weak edge vs strong two-hop chain.
  g.addFriendship("alice", "target", 0.3);
  g.addFriendship("alice", "bob", 0.9);
  g.addFriendship("bob", "target", 0.9);
  EXPECT_NEAR(bestChainTrust(g, "alice", "target", 3).value(), 0.81, 1e-9);
  // With maxHops=1 only the direct edge is allowed.
  EXPECT_NEAR(bestChainTrust(g, "alice", "target", 1).value(), 0.3, 1e-9);
}

TEST(TrustRank, UnreachableIsNull) {
  social::SocialGraph g;
  g.addFriendship("a", "b", 0.5);
  g.addUser("island");
  EXPECT_FALSE(bestChainTrust(g, "a", "island", 5).has_value());
  // Hop bound cuts off distant targets.
  g.addFriendship("b", "c", 0.5);
  g.addFriendship("c", "d", 0.5);
  EXPECT_FALSE(bestChainTrust(g, "a", "d", 2).has_value());
  EXPECT_TRUE(bestChainTrust(g, "a", "d", 3).has_value());
}

TEST(TrustRank, RankingPrefersTrustedOverPopular) {
  social::SocialGraph g;
  g.addFriendship("searcher", "friend", 0.95);
  g.addFriendship("friend", "trusted", 0.95);
  // "popular" has many friends but no trust chain to the searcher.
  for (int i = 0; i < 10; ++i) {
    g.addFriendship("popular", "fan" + std::to_string(i), 0.9);
  }
  const auto results =
      trustRankedSearch(g, "searcher", {"trusted", "popular"}, 4, 0.7);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].user, "trusted");
  EXPECT_GT(results[0].trust, 0.8);
  EXPECT_EQ(results[1].trust, 0.0);
  EXPECT_GT(results[1].popularity, results[0].popularity);
}

TEST(TrustRank, AlphaZeroRanksByPopularity) {
  social::SocialGraph g;
  g.addFriendship("s", "a", 1.0);
  for (int i = 0; i < 5; ++i) g.addFriendship("b", "x" + std::to_string(i), 0.5);
  const auto results = trustRankedSearch(g, "s", {"a", "b"}, 3, 0.0);
  EXPECT_EQ(results[0].user, "b");
}

TEST(TrustRank, SelfHasFullTrust) {
  social::SocialGraph g;
  g.addUser("me");
  EXPECT_DOUBLE_EQ(bestChainTrust(g, "me", "me", 3).value(), 1.0);
}

// --- Friend finder pipeline ---

class FriendFinderTest : public ::testing::Test {
 protected:
  FriendFinderTest() {
    // searcher -- friend -- trusted (hiking fan, 2 hops)
    // popular: hiking fan hub with no trust chain to searcher
    // hidden: hiking fan who never published a profile
    graph_.addFriendship("searcher", "friend", 0.9);
    graph_.addFriendship("friend", "trusted", 0.9);
    graph_.addFriendship("searcher", "buddy", 0.8);
    for (int i = 0; i < 8; ++i) {
      graph_.addFriendship("popular", "fan" + std::to_string(i), 0.9);
    }
    graph_.addUser("hidden");
  }

  social::Profile profile(const std::string& user, const std::string& bio) {
    return social::Profile{user, {{"bio", bio}}};
  }

  social::SocialGraph graph_;
};

TEST_F(FriendFinderTest, RanksTrustedMatchFirst) {
  FriendFinder finder(graph_);
  finder.publishProfile(profile("trusted", "hiking and photography"));
  finder.publishProfile(profile("popular", "hiking every weekend"));
  finder.publishProfile(profile("buddy", "cooking"));
  const auto results = finder.find("searcher", "hiking");
  ASSERT_EQ(results.size(), 2u);  // buddy doesn't match; already-friends skip
  EXPECT_EQ(results[0].user, "trusted");
  EXPECT_GT(results[0].trust, 0.7);
  EXPECT_EQ(results[1].user, "popular");
  EXPECT_EQ(results[1].trust, 0.0);
}

TEST_F(FriendFinderTest, UnpublishedUsersNeverSurface) {
  FriendFinder finder(graph_);
  finder.publishProfile(profile("trusted", "hiking"));
  // "hidden" likes hiking too but never opted in.
  const auto results = finder.find("searcher", "hiking");
  for (const auto& r : results) EXPECT_NE(r.user, "hidden");
}

TEST_F(FriendFinderTest, ExistingFriendsAndSelfExcluded) {
  FriendFinder finder(graph_);
  finder.publishProfile(profile("friend", "hiking"));
  finder.publishProfile(profile("searcher", "hiking"));
  EXPECT_TRUE(finder.find("searcher", "hiking").empty());
}

TEST_F(FriendFinderTest, FofScopeRestrictsResults) {
  FriendFinderConfig config;
  config.fofOnly = true;
  FriendFinder finder(graph_, config);
  finder.publishProfile(profile("trusted", "hiking"));  // fof of searcher
  finder.publishProfile(profile("popular", "hiking"));  // stranger
  const auto results = finder.find("searcher", "hiking");
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].user, "trusted");
}

TEST_F(FriendFinderTest, MatchStrengthWeighsMultiTokenQueries) {
  FriendFinder finder(graph_);
  finder.publishProfile(profile("trusted", "hiking"));
  finder.publishProfile(profile("popular", "hiking photography mountains"));
  const auto results = finder.find("searcher", "hiking photography mountains");
  ASSERT_EQ(results.size(), 2u);
  const auto& fullMatch =
      results[0].user == "popular" ? results[0] : results[1];
  const auto& partial = results[0].user == "popular" ? results[1] : results[0];
  EXPECT_DOUBLE_EQ(fullMatch.matchStrength, 1.0);
  EXPECT_NEAR(partial.matchStrength, 1.0 / 3, 1e-9);
}

TEST_F(FriendFinderTest, EmptyQuerySafe) {
  FriendFinder finder(graph_);
  finder.publishProfile(profile("trusted", "hiking"));
  EXPECT_TRUE(finder.find("searcher", "").empty());
  EXPECT_TRUE(finder.find("searcher", "!!!").empty());
}

// --- KP-ABE topic subscriptions ---

class TopicSubscriptionTest : public ::testing::Test {
 protected:
  util::Rng rng_{21};
  const pkcrypto::DlogGroup& group_ = testGroup();
  abe::KpAbeAuthority authority_{group_, rng_};
  TopicPublisher publisher_{authority_};

  TopicPost makePost(const std::set<std::string>& topics,
                     const std::string& text) {
    return publisher_.publish(topics,
                              social::Post{"pub", 1, 0, text}, rng_);
  }
};

TEST_F(TopicSubscriptionTest, PolicyFiltersFeed) {
  TopicSubscriber sports(
      group_, authority_.keyGen(*policy::Policy::parse("sports AND turkey")));
  const std::vector<TopicPost> feed = {
      makePost({"sports", "turkey"}, "galatasaray wins"),
      makePost({"sports", "france"}, "psg draws"),
      makePost({"politics", "turkey"}, "election news"),
      makePost({"sports", "turkey", "live"}, "derby tonight"),
  };
  const auto matched = sports.filterFeed(feed);
  ASSERT_EQ(matched.size(), 2u);
  EXPECT_EQ(matched[0].text, "galatasaray wins");
  EXPECT_EQ(matched[1].text, "derby tonight");
}

TEST_F(TopicSubscriptionTest, OrPolicyMatchesEither) {
  TopicSubscriber either(
      group_, authority_.keyGen(*policy::Policy::parse("music OR art")));
  EXPECT_TRUE(either.receive(makePost({"music"}, "m")).has_value());
  EXPECT_TRUE(either.receive(makePost({"art", "news"}, "a")).has_value());
  EXPECT_FALSE(either.receive(makePost({"news"}, "n")).has_value());
}

TEST_F(TopicSubscriptionTest, TopicsArePublicButContentSealed) {
  const TopicPost post = makePost({"secret-club", "events"}, "members only");
  // Labels are visible to the feed store...
  EXPECT_TRUE(post.topics.count("secret-club"));
  // ...but a non-matching subscriber gets nothing.
  TopicSubscriber outsider(group_,
                           authority_.keyGen(*policy::Policy::parse("cooking")));
  EXPECT_FALSE(outsider.receive(post).has_value());
}

TEST_F(TopicSubscriptionTest, CorruptedFeedEntrySkipped) {
  TopicSubscriber sub(group_, authority_.keyGen(*policy::Policy::parse("a")));
  TopicPost bogus;
  bogus.topics = {"a"};
  bogus.ciphertext = util::toBytes("garbage");
  EXPECT_FALSE(sub.receive(bogus).has_value());
  EXPECT_TRUE(sub.filterFeed({bogus}).empty());
}

}  // namespace
}  // namespace dosn::search
