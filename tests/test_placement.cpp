// Placement-policy test pass (DESIGN.md §3f). Three layers of pinning:
//
//  1. A randomized differential trace proving VanillaPolicy (through the
//     refactored ReplicationManager) reproduces the pre-refactor inlined
//     place/repair logic pop-for-pop at a fixed seed — the byte-identity
//     guarantee every seeded bench now rests on.
//  2. SocialPolicy property tests: friends outrank non-friends at equal
//     liveness, selection is a deterministic strict total order regardless
//     of candidate order, and an owner with zero friends degrades to the
//     XOR/addr fallback without surprises.
//  3. The friend-cache tier: repeat fetches resolve from cache, the cache
//     honors its block bound, and a stale cache is invalidated and
//     re-fetched after the owner overwrites the timeline.
//
// Plus the recruit-path dedup regression: duplicate candidate addresses must
// never place or recruit the same node twice into one replica set.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>

#include "dosn/app/microblog.hpp"
#include "dosn/overlay/placement.hpp"
#include "dosn/overlay/replication.hpp"
#include "dosn/privacy/symmetric_acl.hpp"
#include "dosn/social/graph.hpp"

namespace dosn::overlay {
namespace {

using sim::kMillisecond;
using sim::kSecond;
using sim::NodeAddr;

bool strictlySortedUnique(const std::vector<NodeAddr>& v) {
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i - 1] >= v[i]) return false;
  }
  return true;
}

// --- 1. Differential trace: VanillaPolicy vs the pre-refactor logic ---

// Verbatim reimplementation of the pre-placement-layer ReplicationManager
// (uniform shuffle inline in place(), shuffle + front-insert in repair()),
// fed from its own Rng. Driving both models with identically seeded
// generators and comparing every return value pins that the refactor moved
// the logic without changing a single draw.
class LegacyReplicationModel {
 public:
  explicit LegacyReplicationModel(std::uint64_t seed) : rng_(seed) {}

  std::vector<NodeAddr> place(const OverlayId& item, std::size_t replicas,
                              const std::vector<NodeAddr>& candidates) {
    std::vector<NodeAddr> pool = candidates;
    rng_.shuffle(pool);
    if (pool.size() > replicas) pool.resize(replicas);
    Item& state = items_[item];
    state.replicas.assign(pool.begin(), pool.end());
    std::sort(state.replicas.begin(), state.replicas.end());
    state.replicas.erase(
        std::unique(state.replicas.begin(), state.replicas.end()),
        state.replicas.end());
    state.target = replicas;
    return pool;
  }

  std::size_t repair(const sim::Network& net,
                     const std::vector<NodeAddr>& candidates) {
    std::size_t added = 0;
    for (auto& [item, state] : items_) {
      std::size_t online = 0;
      for (const NodeAddr node : state.replicas) {
        if (net.isOnline(node)) ++online;
      }
      if (online >= state.target) continue;
      std::vector<NodeAddr> pool;
      for (const NodeAddr node : candidates) {
        if (net.isOnline(node) &&
            !std::binary_search(state.replicas.begin(), state.replicas.end(),
                                node)) {
          pool.push_back(node);
        }
      }
      rng_.shuffle(pool);
      for (const NodeAddr node : pool) {
        if (online >= state.target) break;
        state.replicas.insert(std::lower_bound(state.replicas.begin(),
                                               state.replicas.end(), node),
                              node);
        ++online;
        ++added;
      }
    }
    return added;
  }

  const std::vector<NodeAddr>& replicasOf(const OverlayId& item) {
    return items_[item].replicas;
  }

 private:
  struct Item {
    std::vector<NodeAddr> replicas;  // sorted ascending
    std::size_t target = 0;
  };

  util::Rng rng_;
  // std::map iterates in OverlayId order — the same order as the manager's
  // sorted flat vector, so repair() visits items identically.
  std::map<OverlayId, Item> items_;
};

TEST(PlacementDifferential, VanillaMatchesLegacyTracePopForPop) {
  // The manager draws from the network's rng; the legacy model from its own
  // rng with the same seed. Nothing else in this trace consumes randomness,
  // so the two streams must stay in lockstep through every shuffle.
  util::Rng netRng(42);
  sim::Simulator sim;
  sim::Network net(sim, sim::LatencyModel{}, netRng);
  std::vector<NodeAddr> nodes;
  for (int i = 0; i < 24; ++i) nodes.push_back(net.addNode());

  ReplicationManager manager(net);  // null policy -> owned VanillaPolicy
  LegacyReplicationModel legacy(42);

  std::vector<OverlayId> ids;
  for (int i = 0; i < 16; ++i) {
    ids.push_back(OverlayId::hash("item-" + std::to_string(i)));
  }

  // A third generator scripts the op sequence so placements, outages and
  // repairs interleave; it never touches the streams under test.
  util::Rng script(7);
  for (int op = 0; op < 200; ++op) {
    const std::size_t kind = script.uniform(4);
    if (kind == 0 || kind == 1) {
      const OverlayId& item = ids[script.uniform(ids.size())];
      const std::size_t target = 1 + script.uniform(5);
      const auto got = manager.place(item, target, nodes);
      const auto want = legacy.place(item, target, nodes);
      ASSERT_EQ(got, want) << "place diverged at op " << op;
      ASSERT_EQ(manager.replicasOf(item), legacy.replicasOf(item));
    } else if (kind == 2) {
      const NodeAddr node = nodes[script.uniform(nodes.size())];
      net.setOnline(node, !net.isOnline(node));
    } else {
      const std::size_t got = manager.repair(nodes);
      const std::size_t want = legacy.repair(net, nodes);
      ASSERT_EQ(got, want) << "repair count diverged at op " << op;
      for (const OverlayId& item : ids) {
        ASSERT_EQ(manager.replicasOf(item), legacy.replicasOf(item))
            << "repair replicas diverged at op " << op;
      }
    }
  }
}

// --- 2. SocialPolicy properties ---

class SocialPolicyTest : public ::testing::Test {
 protected:
  SocialPolicyTest() {
    for (int i = 0; i < 10; ++i) {
      nodes_.push_back(net_.addNode());
      graph_.addUser(user(i));
      policy_.bind(nodes_[i], user(i));
      policy_.bindId(nodes_[i], OverlayId::hash("node-" + std::to_string(i)));
    }
  }

  static social::UserId user(int i) { return "u" + std::to_string(i); }

  util::Rng rng_{11};
  sim::Simulator sim_;
  sim::Network net_{sim_, sim::LatencyModel{}, rng_};
  social::SocialGraph graph_;
  std::vector<NodeAddr> nodes_;
  SocialPolicy policy_{net_, {&graph_}};
};

TEST_F(SocialPolicyTest, FriendsOutrankNonFriendsAtEqualLiveness) {
  graph_.addFriendship(user(0), user(1));
  graph_.addFriendship(user(0), user(2));
  graph_.addFriendship(user(0), user(3));
  const PlacementContext ctx{OverlayId::hash("wall"), user(0)};

  std::vector<NodeAddr> candidates(nodes_.begin() + 1, nodes_.end());
  const auto chosen = policy_.select(ctx, 3, candidates);
  ASSERT_EQ(chosen.size(), 3u);
  for (const NodeAddr addr : chosen) {
    EXPECT_EQ(policy_.tierOf(user(0), addr), 0)
        << "a non-friend was chosen while friends were available";
  }
}

TEST_F(SocialPolicyTest, LivenessBeatsFriendship) {
  graph_.addFriendship(user(0), user(1));
  net_.setOnline(nodes_[1], false);  // the only friend is offline
  const PlacementContext ctx{OverlayId::hash("wall"), user(0)};

  const auto chosen =
      policy_.select(ctx, 1, {nodes_[1], nodes_[5]});
  ASSERT_EQ(chosen.size(), 1u);
  EXPECT_EQ(chosen[0], nodes_[5]) << "an offline friend outranked an online "
                                     "stranger";

  // At equal (offline) liveness the friend wins again.
  net_.setOnline(nodes_[5], false);
  const auto bothOffline = policy_.select(ctx, 1, {nodes_[1], nodes_[5]});
  ASSERT_EQ(bothOffline.size(), 1u);
  EXPECT_EQ(bothOffline[0], nodes_[1]);
}

TEST_F(SocialPolicyTest, FriendsOfFriendsRankBetweenFriendsAndStrangers) {
  graph_.addFriendship(user(0), user(1));
  graph_.addFriendship(user(1), user(2));  // u2 is a friend-of-friend
  EXPECT_EQ(policy_.tierOf(user(0), nodes_[1]), 0);
  EXPECT_EQ(policy_.tierOf(user(0), nodes_[2]), 1);
  EXPECT_EQ(policy_.tierOf(user(0), nodes_[7]), 2);

  const PlacementContext ctx{OverlayId::hash("wall"), user(0)};
  const auto chosen = policy_.select(ctx, 2, {nodes_[7], nodes_[2], nodes_[1]});
  ASSERT_EQ(chosen.size(), 2u);
  EXPECT_EQ(chosen[0], nodes_[1]);
  EXPECT_EQ(chosen[1], nodes_[2]);
}

TEST_F(SocialPolicyTest, DeterministicAcrossCandidateOrder) {
  graph_.addFriendship(user(0), user(1));
  graph_.addFriendship(user(0), user(4));
  const PlacementContext ctx{OverlayId::hash("wall"), user(0)};

  std::vector<NodeAddr> shuffled = nodes_;
  const auto baseline = policy_.select(ctx, 4, shuffled);
  util::Rng order(3);
  for (int round = 0; round < 8; ++round) {
    order.shuffle(shuffled);
    EXPECT_EQ(policy_.select(ctx, 4, shuffled), baseline)
        << "selection depends on candidate order";
  }
}

TEST_F(SocialPolicyTest, ZeroFriendsFallsBackToXorDistance) {
  // u0 has no friends: every candidate (excluding u0's own node, which is
  // always tier 0) is a stranger, so ranking falls back to XOR distance of
  // the bound ids to the item.
  const OverlayId item = OverlayId::hash("lonely-wall");
  const PlacementContext ctx{item, user(0)};
  const std::vector<NodeAddr> strangers(nodes_.begin() + 1, nodes_.end());
  const auto chosen = policy_.select(ctx, 3, strangers);
  ASSERT_EQ(chosen.size(), 3u);
  for (std::size_t i = 1; i < chosen.size(); ++i) {
    const OverlayId prev = OverlayId::hash(
        "node-" + std::to_string(chosen[i - 1] - nodes_[0]));
    const OverlayId cur =
        OverlayId::hash("node-" + std::to_string(chosen[i] - nodes_[0]));
    EXPECT_TRUE(xorDistance(prev, item) < xorDistance(cur, item));
  }
}

TEST_F(SocialPolicyTest, UnknownOwnerAndUnboundCandidatesDegradeGracefully) {
  // An owner absent from the graph plus candidates with no user/id bindings:
  // everything lands in the stranger tier, ordered by address.
  SocialPolicy bare(net_, {&graph_});
  const PlacementContext ctx{OverlayId::hash("wall"), social::UserId("ghost")};
  const auto chosen = bare.select(ctx, 3, {nodes_[4], nodes_[2], nodes_[8]});
  EXPECT_EQ(chosen,
            (std::vector<NodeAddr>{nodes_[2], nodes_[4], nodes_[8]}));
}

TEST_F(SocialPolicyTest, DuplicateCandidatesNeverRepeatAnAddress) {
  const PlacementContext ctx{OverlayId::hash("wall"), user(0)};
  const auto chosen = policy_.select(
      ctx, 4, {nodes_[1], nodes_[1], nodes_[2], nodes_[2], nodes_[3]});
  EXPECT_EQ(chosen.size(), 3u);
  auto sorted = chosen;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(strictlySortedUnique(sorted));
}

// --- Recruit-path dedup regression (the latent bug this PR fixes) ---

TEST(ReplicationDedup, PlaceWithDuplicateCandidatesYieldsDistinctReplicas) {
  util::Rng rng(5);
  sim::Simulator sim;
  sim::Network net(sim, sim::LatencyModel{}, rng);
  const NodeAddr a = net.addNode();
  const NodeAddr b = net.addNode();
  const NodeAddr c = net.addNode();
  ReplicationManager manager(net);
  const OverlayId item = OverlayId::hash("dup-place");
  const auto chosen = manager.place(item, 3, {a, a, b, b, c, c});
  EXPECT_EQ(chosen.size(), 3u);
  auto sorted = chosen;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<NodeAddr>{a, b, c}));
  EXPECT_TRUE(strictlySortedUnique(manager.replicasOf(item)));
}

TEST(ReplicationDedup, RepairSkipsAlreadyRecruitedNodesByAddress) {
  util::Rng rng(6);
  sim::Simulator sim;
  sim::Network net(sim, sim::LatencyModel{}, rng);
  std::vector<NodeAddr> initial;
  for (int i = 0; i < 3; ++i) initial.push_back(net.addNode());
  const NodeAddr fresh = net.addNode();
  ReplicationManager manager(net);
  const OverlayId item = OverlayId::hash("dup-repair");
  manager.place(item, 3, initial);
  net.setOnline(initial[0], false);
  net.setOnline(initial[1], false);

  // The candidate list repeats the one recruitable node. The pre-fix code
  // inserted it once per occurrence, double-counting it toward the target
  // and corrupting the sorted replica set.
  std::vector<NodeAddr> candidates = initial;
  candidates.push_back(fresh);
  candidates.push_back(fresh);
  candidates.push_back(fresh);
  const std::size_t added = manager.repair(candidates);
  EXPECT_EQ(added, 1u) << "one distinct node can only be recruited once";
  EXPECT_TRUE(strictlySortedUnique(manager.replicasOf(item)));
  EXPECT_EQ(manager.onlineReplicas(item), 2u);
}

}  // namespace
}  // namespace dosn::overlay

// --- 3. Friend-cache tier ---

namespace dosn::app {
namespace {

using overlay::Contact;
using overlay::OverlayId;
using sim::kMillisecond;

class FriendCacheTest : public ::testing::Test {
 protected:
  FriendCacheTest() {
    for (int i = 0; i < 12; ++i) {
      peers_.push_back(std::make_unique<overlay::KademliaNode>(
          net_, OverlayId::random(rng_)));
    }
    seed_ = Contact{peers_[0]->id(), peers_[0]->addr()};
    for (std::size_t i = 1; i < peers_.size(); ++i) {
      peers_[i]->bootstrap(seed_);
      sim_.run();
    }
  }

  std::unique_ptr<MicroblogNode> makeNode(const std::string& user,
                                          FriendCacheConfig cache = {}) {
    auto node = std::make_unique<MicroblogNode>(
        net_, OverlayId::random(rng_), group_, user, registry_, acl_, rng_,
        overlay::KademliaConfig{}, cache);
    node->join(seed_);
    sim_.run();
    return node;
  }

  FetchedTimeline fetch(MicroblogNode& reader, const std::string& author) {
    FetchedTimeline out;
    reader.fetchTimeline(author,
                         [&](FetchedTimeline t) { out = std::move(t); });
    sim_.run();
    return out;
  }

  util::Rng rng_{42};
  sim::Simulator sim_;
  sim::Network net_{
      sim_, sim::LatencyModel{5 * kMillisecond, 2 * kMillisecond, 0.0}, rng_};
  const pkcrypto::DlogGroup& group_ = pkcrypto::DlogGroup::cached(256);
  social::IdentityRegistry registry_;
  privacy::SymmetricAcl acl_{rng_};
  std::vector<std::unique_ptr<overlay::KademliaNode>> peers_;
  Contact seed_;
};

TEST_F(FriendCacheTest, RepeatFetchResolvesFromLocalCache) {
  FriendCacheConfig cache;
  cache.enabled = true;
  auto alice = makeNode("alice", cache);
  auto bob = makeNode("bob", cache);
  bob->addFriendPeer("alice", alice->dht().addr());

  alice->createCircle("friends");
  alice->addToCircle("friends", "bob");
  alice->publish("friends", "one", 1, rng_);
  sim_.run();
  alice->publish("friends", "two", 2, rng_);
  sim_.run();

  // Cold fetch: entries resolve via alice's publish-seeded cache (one hop)
  // or the DHT, and populate bob's local cache either way.
  const auto first = fetch(*bob, "alice");
  ASSERT_TRUE(first.chainValid);
  ASSERT_EQ(first.posts.size(), 2u);
  EXPECT_EQ(bob->fetchStats().cacheRemoteHits, 2u);
  const std::uint64_t lookupsAfterFirst = bob->fetchStats().lookups;

  // Warm fetch: both entries are local; only the head touches the DHT.
  const auto second = fetch(*bob, "alice");
  ASSERT_TRUE(second.chainValid);
  ASSERT_EQ(second.posts.size(), 2u);
  EXPECT_EQ(bob->fetchStats().cacheLocalHits, 2u);
  EXPECT_EQ(bob->fetchStats().lookups, lookupsAfterFirst + 1)
      << "a warm fetch should only look up the head in the DHT";
  EXPECT_EQ(bob->fetchStats().cacheInvalidations, 0u);
}

TEST_F(FriendCacheTest, StaleCacheInvalidatedAndRefetchedAfterOverwrite) {
  FriendCacheConfig cache;
  cache.enabled = true;
  auto alice = makeNode("alice", cache);
  auto bob = makeNode("bob", cache);
  bob->addFriendPeer("alice", alice->dht().addr());

  alice->createCircle("friends");
  alice->addToCircle("friends", "bob");
  alice->publish("friends", "old-one", 1, rng_);
  sim_.run();
  alice->publish("friends", "old-two", 2, rng_);
  sim_.run();
  ASSERT_EQ(fetch(*bob, "alice").posts.size(), 2u);  // caches both entries

  // "alice" re-keys and overwrites her timeline under the same DHT keys
  // (the registry replaces her identity, the head and entry 0 get new
  // values). Bob's cache still holds the old records.
  auto alice2 = makeNode("alice", cache);
  alice2->createCircle("inner");
  alice2->addToCircle("inner", "bob");
  alice2->publish("inner", "fresh", 3, rng_);
  sim_.run();

  // The freshly fetched head (never cached) exposes the stale entries:
  // chain verification fails against the new identity, the cache is
  // invalidated and the fetch retried straight from the DHT.
  const auto refetched = fetch(*bob, "alice");
  EXPECT_EQ(bob->fetchStats().cacheInvalidations, 1u);
  ASSERT_TRUE(refetched.chainValid) << "retry should have served fresh data";
  ASSERT_EQ(refetched.posts.size(), 1u);
  EXPECT_EQ(refetched.posts[0].text, "fresh");

  // The retry repopulated the cache with fresh records: a further fetch is
  // valid, local, and triggers no second invalidation.
  const auto warm = fetch(*bob, "alice");
  ASSERT_TRUE(warm.chainValid);
  ASSERT_EQ(warm.posts.size(), 1u);
  EXPECT_EQ(bob->fetchStats().cacheInvalidations, 1u);
}

TEST_F(FriendCacheTest, CacheStaysWithinItsBlockBound) {
  FriendCacheConfig cache;
  cache.enabled = true;
  cache.capacityBlocks = 4;
  auto alice = makeNode("alice", cache);
  alice->createCircle("friends");
  for (int i = 0; i < 9; ++i) {
    alice->publish("friends", "post " + std::to_string(i), i + 1, rng_);
    sim_.run();
  }
  ASSERT_NE(alice->friendCache(), nullptr);
  // Both the LRU index and the backing store are bounded — evicted blocks
  // must not linger in the inner MemoryStore.
  EXPECT_LE(alice->friendCache()->cacheStats().cachedBlocks, 4u);
  EXPECT_LE(alice->friendCache()->list().size(), 4u);
  EXPECT_GT(alice->friendCache()->cacheStats().evictions, 0u);
}

TEST_F(FriendCacheTest, DisabledTierHasNoCacheAndNoStats) {
  auto alice = makeNode("alice");
  auto bob = makeNode("bob");
  alice->createCircle("friends");
  alice->addToCircle("friends", "bob");
  alice->publish("friends", "plain", 1, rng_);
  sim_.run();
  const auto fetched = fetch(*bob, "alice");
  ASSERT_TRUE(fetched.chainValid);
  EXPECT_EQ(bob->friendCache(), nullptr);
  EXPECT_EQ(bob->fetchStats().cacheLocalHits, 0u);
  EXPECT_EQ(bob->fetchStats().cacheRemoteHits, 0u);
  EXPECT_GT(bob->fetchStats().lookups, 0u);
}

}  // namespace
}  // namespace dosn::app
