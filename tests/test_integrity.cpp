// Tests for the §IV integrity mechanisms, organized around the paper's party-
// invitation scenario: owner/content integrity, historical integrity (chains,
// entanglement, history trees, fork detection) and relation integrity.
#include <gtest/gtest.h>

#include "dosn/integrity/entanglement.hpp"
#include "dosn/integrity/fork_consistency.hpp"
#include "dosn/integrity/hash_chain.hpp"
#include "dosn/integrity/history_tree.hpp"
#include "dosn/integrity/relation.hpp"
#include "dosn/integrity/signed_post.hpp"
#include "dosn/util/codec.hpp"

namespace dosn::integrity {
namespace {

using social::Keyring;
using util::toBytes;

const pkcrypto::DlogGroup& testGroup() {
  return pkcrypto::DlogGroup::cached(256);
}

class IntegrityTest : public ::testing::Test {
 protected:
  IntegrityTest() {
    bob_ = social::createKeyring(testGroup(), "bob", rng_);
    alice_ = social::createKeyring(testGroup(), "alice", rng_);
    mallory_ = social::createKeyring(testGroup(), "mallory", rng_);
    registry_.registerIdentity(social::publicIdentity(bob_));
    registry_.registerIdentity(social::publicIdentity(alice_));
    registry_.registerIdentity(social::publicIdentity(mallory_));
  }

  util::Rng rng_{42};
  social::IdentityRegistry registry_;
  Keyring bob_;
  Keyring alice_;
  Keyring mallory_;
};

// --- Owner + content integrity (§IV-A) ---

TEST_F(IntegrityTest, AliceVerifiesBobsInvitation) {
  social::Post invitation{"bob", 1, 100,
                          "Come to my party held at my home on Friday"};
  const SignedPost sp = signPost(testGroup(), bob_, invitation, rng_);
  EXPECT_TRUE(verifyPost(testGroup(), registry_, sp));
}

TEST_F(IntegrityTest, ForgedSenderDetected) {
  // Mallory forges an invitation claiming to be from Bob: she can only sign
  // with her own key, and the registry lookup for "bob" exposes her.
  social::Post forged{"bob", 2, 100, "Party at my place, bring gifts"};
  SignedPost sp;
  sp.post = forged;
  sp.signature =
      pkcrypto::schnorrSign(testGroup(), mallory_.signing, forged.serialize(), rng_);
  EXPECT_FALSE(verifyPost(testGroup(), registry_, sp));
  // signPost itself refuses to sign someone else's authorship.
  EXPECT_THROW(signPost(testGroup(), mallory_, forged, rng_), util::DosnError);
}

TEST_F(IntegrityTest, TamperedContentDetected) {
  social::Post invitation{"bob", 1, 100, "Party on Friday"};
  SignedPost sp = signPost(testGroup(), bob_, invitation, rng_);
  sp.post.text = "Party on Saturday";  // tampered in transit
  EXPECT_FALSE(verifyPost(testGroup(), registry_, sp));
}

TEST_F(IntegrityTest, UnknownAuthorRejected) {
  social::Post post{"stranger", 1, 1, "hi"};
  SignedPost sp;
  sp.post = post;
  sp.signature =
      pkcrypto::schnorrSign(testGroup(), bob_.signing, post.serialize(), rng_);
  EXPECT_FALSE(verifyPost(testGroup(), registry_, sp));
}

TEST_F(IntegrityTest, SignedPostSerializationRoundTrip) {
  social::Post post{"bob", 3, 50, "hello"};
  const SignedPost sp = signPost(testGroup(), bob_, post, rng_);
  const auto back = SignedPost::deserialize(sp.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(verifyPost(testGroup(), registry_, *back));
  EXPECT_FALSE(SignedPost::deserialize(toBytes("junk")).has_value());
}

// --- Historical integrity: hash chains (§IV-B) ---

TEST_F(IntegrityTest, ChainVerifies) {
  Timeline timeline(testGroup(), bob_);
  for (int i = 0; i < 5; ++i) {
    timeline.append(toBytes("post " + std::to_string(i)), rng_);
  }
  EXPECT_TRUE(verifyChain(testGroup(), bob_.signing.pub, timeline.entries()));
}

TEST_F(IntegrityTest, TamperedEntryBreaksChain) {
  Timeline timeline(testGroup(), bob_);
  for (int i = 0; i < 4; ++i) timeline.append(toBytes("p"), rng_);
  auto entries = timeline.entries();
  entries[1].payload = toBytes("tampered");
  EXPECT_FALSE(verifyChain(testGroup(), bob_.signing.pub, entries));
}

TEST_F(IntegrityTest, ReorderedEntriesBreakChain) {
  Timeline timeline(testGroup(), bob_);
  for (int i = 0; i < 4; ++i) timeline.append(toBytes("p" + std::to_string(i)), rng_);
  auto entries = timeline.entries();
  std::swap(entries[1], entries[2]);
  EXPECT_FALSE(verifyChain(testGroup(), bob_.signing.pub, entries));
}

TEST_F(IntegrityTest, DroppedInteriorEntryDetected) {
  Timeline timeline(testGroup(), bob_);
  for (int i = 0; i < 4; ++i) timeline.append(toBytes("p"), rng_);
  auto entries = timeline.entries();
  entries.erase(entries.begin() + 1);
  EXPECT_FALSE(verifyChain(testGroup(), bob_.signing.pub, entries));
}

TEST_F(IntegrityTest, TruncationFromTailNotDetectedByChainAlone) {
  // A known limitation the paper's fork-consistency section addresses:
  // dropping the newest entries still yields a valid (shorter) chain.
  Timeline timeline(testGroup(), bob_);
  for (int i = 0; i < 4; ++i) timeline.append(toBytes("p"), rng_);
  auto entries = timeline.entries();
  entries.pop_back();
  EXPECT_TRUE(verifyChain(testGroup(), bob_.signing.pub, entries));
}

TEST_F(IntegrityTest, WrongPublisherKeyFails) {
  Timeline timeline(testGroup(), bob_);
  timeline.append(toBytes("p"), rng_);
  EXPECT_FALSE(verifyChain(testGroup(), alice_.signing.pub, timeline.entries()));
}

TEST_F(IntegrityTest, ChainEntrySerializationRoundTrip) {
  Timeline timeline(testGroup(), bob_);
  const ChainEntry& entry = timeline.append(toBytes("data"), rng_);
  const auto back = ChainEntry::deserialize(entry.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->entryHash(), entry.entryHash());
}

// --- Expired-invitation freshness via the chain (the scenario's "is this
// invitation valid for an upcoming event?") ---

TEST_F(IntegrityTest, FreshnessProvableViaChainPosition) {
  Timeline timeline(testGroup(), bob_);
  timeline.append(toBytes("invitation: party friday week 1"), rng_);
  timeline.append(toBytes("cancellation: week 1 party off"), rng_);
  timeline.append(toBytes("invitation: party friday week 2"), rng_);
  ASSERT_TRUE(verifyChain(testGroup(), bob_.signing.pub, timeline.entries()));
  // The cancellation provably follows the first invitation.
  EXPECT_TRUE(provablyPrecedes(timeline.entries(), 0, 1));
  EXPECT_FALSE(provablyPrecedes(timeline.entries(), 1, 0));
}

// --- Cross-timeline entanglement (§IV-B) ---

TEST_F(IntegrityTest, EntanglementEstablishesCrossUserOrder) {
  EntangledTimeline bobLine(testGroup(), bob_);
  EntangledTimeline aliceLine(testGroup(), alice_);

  const crypto::Digest bobPost =
      bobLine.append(toBytes("party friday!"), {}, rng_).entryHash();
  // Alice replies, entangling with Bob's head.
  const crypto::Digest aliceReply =
      aliceLine.append(toBytes("i'll be there"), {{"bob", bobLine.head()}}, rng_)
          .entryHash();
  // Bob posts again, entangling with Alice.
  const crypto::Digest bobFollowup =
      bobLine
          .append(toBytes("great, see you"), {{"alice", aliceLine.head()}}, rng_)
          .entryHash();

  ASSERT_TRUE(verifyEntangledChain(testGroup(), bob_.signing.pub, bobLine.entries()));
  ASSERT_TRUE(
      verifyEntangledChain(testGroup(), alice_.signing.pub, aliceLine.entries()));

  OrderOracle oracle({&bobLine, &aliceLine});
  EXPECT_TRUE(oracle.happenedBefore(bobPost, aliceReply));
  EXPECT_TRUE(oracle.happenedBefore(aliceReply, bobFollowup));
  // Transitivity across users.
  EXPECT_TRUE(oracle.happenedBefore(bobPost, bobFollowup));
  EXPECT_FALSE(oracle.happenedBefore(aliceReply, bobPost));
}

TEST_F(IntegrityTest, UnentangledEntriesAreConcurrent) {
  EntangledTimeline bobLine(testGroup(), bob_);
  EntangledTimeline aliceLine(testGroup(), alice_);
  const auto& b = bobLine.append(toBytes("x"), {}, rng_);
  const auto& a = aliceLine.append(toBytes("y"), {}, rng_);
  OrderOracle oracle({&bobLine, &aliceLine});
  EXPECT_TRUE(oracle.concurrent(a.entryHash(), b.entryHash()));
}

TEST_F(IntegrityTest, TamperedEntangledChainFails) {
  EntangledTimeline bobLine(testGroup(), bob_);
  bobLine.append(toBytes("a"), {}, rng_);
  bobLine.append(toBytes("b"), {}, rng_);
  auto entries = bobLine.entries();
  entries[0].references.push_back({"alice", crypto::sha256(toBytes("fake"))});
  EXPECT_FALSE(verifyEntangledChain(testGroup(), bob_.signing.pub, entries));
}

// --- History tree + signed roots (§IV-B Frientegrity) ---

TEST_F(IntegrityTest, HistoryTreeMembershipProofs) {
  HistoryTree tree;
  for (int i = 0; i < 10; ++i) tree.append(toBytes("op" + std::to_string(i)));
  const crypto::Digest root = tree.root();
  for (std::uint64_t i = 0; i < 10; ++i) {
    const auto proof = tree.prove(i, 10);
    ASSERT_TRUE(proof.has_value());
    EXPECT_TRUE(HistoryTree::verifyMembership(root, *proof));
  }
  // Proof against an older version's root.
  const crypto::Digest oldRoot = tree.rootAt(5);
  const auto oldProof = tree.prove(2, 5);
  ASSERT_TRUE(oldProof.has_value());
  EXPECT_TRUE(HistoryTree::verifyMembership(oldRoot, *oldProof));
  EXPECT_FALSE(HistoryTree::verifyMembership(root, *oldProof));
}

TEST_F(IntegrityTest, HistoryTreePrefixConsistency) {
  HistoryTree tree;
  std::vector<crypto::Digest> roots;
  for (int i = 0; i < 8; ++i) {
    tree.append(toBytes("op" + std::to_string(i)));
    roots.push_back(tree.root());
  }
  // Every historical root is a consistent prefix of the current log.
  for (std::uint64_t v = 1; v <= 8; ++v) {
    EXPECT_TRUE(tree.consistentWith(v, roots[v - 1]));
  }
  EXPECT_FALSE(tree.consistentWith(3, roots[4]));
  EXPECT_FALSE(tree.consistentWith(100, roots[0]));
}

TEST_F(IntegrityTest, HistoryTreeCacheInvalidatedOnAppend) {
  HistoryTree tree;
  tree.append(toBytes("op0"));
  const crypto::Digest rootBefore = tree.root();  // warms the cache
  const auto proofBefore = tree.prove(0, 1);
  tree.append(toBytes("op1"));
  const crypto::Digest rootAfter = tree.root();
  EXPECT_NE(rootBefore, rootAfter);
  // Old proof still verifies against the old root, not the new one.
  EXPECT_TRUE(HistoryTree::verifyMembership(rootBefore, *proofBefore));
  EXPECT_FALSE(HistoryTree::verifyMembership(rootAfter, *proofBefore));
  // New proofs cover both operations.
  EXPECT_TRUE(HistoryTree::verifyMembership(rootAfter, *tree.prove(1, 2)));
}

TEST_F(IntegrityTest, SignedRootVerification) {
  HistoryTree tree;
  tree.append(toBytes("op"));
  const auto provider = pkcrypto::schnorrGenerate(testGroup(), rng_);
  const SignedRoot sr =
      signRoot(testGroup(), provider, tree.version(), tree.root(), rng_);
  EXPECT_TRUE(verifySignedRoot(testGroup(), provider.pub, sr));
  SignedRoot bad = sr;
  bad.version = 99;
  EXPECT_FALSE(verifySignedRoot(testGroup(), provider.pub, bad));
}

// --- Fork-consistency detection (§IV-B) ---

class ForkTest : public ::testing::Test {
 protected:
  util::Rng rng_{7};
  const pkcrypto::DlogGroup& group_ = testGroup();
  ForkingProvider provider_{group_, rng_};
};

TEST_F(ForkTest, HonestProviderPassesCrossChecks) {
  provider_.addClient("alice");
  provider_.addClient("bob");
  provider_.appendAs("alice", toBytes("op1"), rng_);
  provider_.appendAs("bob", toBytes("op2"), rng_);

  AuditingClient alice(group_, "alice", provider_.publicKey());
  AuditingClient bob(group_, "bob", provider_.publicKey());
  alice.observe(provider_.headFor("alice"));
  bob.observe(provider_.headFor("bob"));
  EXPECT_FALSE(alice.crossCheck(bob, provider_));
  EXPECT_FALSE(bob.crossCheck(alice, provider_));
}

TEST_F(ForkTest, EquivocationDetectedOnCrossCheck) {
  provider_.addClient("alice");
  provider_.addClient("bob");
  provider_.appendAs("alice", toBytes("shared-op"), rng_);

  // The provider forks bob off and serves divergent updates.
  provider_.fork({"bob"});
  provider_.appendAs("alice", toBytes("alice-only"), rng_);
  provider_.appendAs("bob", toBytes("bob-only"), rng_);

  AuditingClient alice(group_, "alice", provider_.publicKey());
  AuditingClient bob(group_, "bob", provider_.publicKey());
  alice.observe(provider_.headFor("alice"));
  bob.observe(provider_.headFor("bob"));
  // Same version (2), different roots: caught immediately.
  EXPECT_TRUE(alice.crossCheck(bob, provider_));
}

TEST_F(ForkTest, EquivocationDetectedAcrossVersions) {
  provider_.addClient("alice");
  provider_.addClient("bob");
  provider_.appendAs("alice", toBytes("op1"), rng_);
  provider_.fork({"bob"});
  provider_.appendAs("bob", toBytes("bob-divergent"), rng_);
  provider_.appendAs("bob", toBytes("bob-more"), rng_);
  provider_.appendAs("alice", toBytes("alice-2"), rng_);

  AuditingClient alice(group_, "alice", provider_.publicKey());
  AuditingClient bob(group_, "bob", provider_.publicKey());
  alice.observe(provider_.headFor("alice"));  // version 2 on fork 0
  bob.observe(provider_.headFor("bob"));      // version 3 on fork 1
  // Alice's version-2 root is not a prefix of bob's fork: detected.
  EXPECT_TRUE(alice.crossCheck(bob, provider_));
}

TEST_F(ForkTest, ClientsOnSameForkSeeNoEvidence) {
  provider_.addClient("alice");
  provider_.addClient("bob");
  provider_.addClient("carol");
  provider_.appendAs("alice", toBytes("op"), rng_);
  provider_.fork({"bob", "carol"});
  provider_.appendAs("bob", toBytes("fork-op"), rng_);

  AuditingClient bob(group_, "bob", provider_.publicKey());
  AuditingClient carol(group_, "carol", provider_.publicKey());
  bob.observe(provider_.headFor("bob"));
  carol.observe(provider_.headFor("carol"));
  // Both are on fork 1: their views are mutually consistent (the fork is
  // only visible across forks — the paper's point about needing
  // client-to-client communication).
  EXPECT_FALSE(bob.crossCheck(carol, provider_));
}

TEST_F(ForkTest, BadProviderSignatureRejected) {
  provider_.addClient("alice");
  provider_.appendAs("alice", toBytes("op"), rng_);
  SignedRoot head = provider_.headFor("alice");
  head.root[0] ^= 1;
  AuditingClient alice(group_, "alice", provider_.publicKey());
  EXPECT_THROW(alice.observe(head), util::DosnError);
}

// --- Relation integrity (§IV-C) ---

class RelationTest : public IntegrityTest {
 protected:
  util::Bytes commenterKey_ = rng_.bytes(32);
};

TEST_F(RelationTest, AuthorizedCommentVerifies) {
  social::Post post{"bob", 10, 100, "party friday"};
  const RelationPost rp =
      createRelationPost(testGroup(), bob_, post, commenterKey_, rng_);
  ASSERT_TRUE(verifyPost(testGroup(), registry_, rp.base));

  const auto commentKey = extractCommentKey(testGroup(), rp, commenterKey_);
  ASSERT_TRUE(commentKey.has_value());
  const SignedComment sc = signComment(
      testGroup(), rp, *commentKey,
      social::Comment{"alice", 10, 101, "count me in"}, rng_);
  EXPECT_TRUE(verifyComment(testGroup(), rp, sc));
}

TEST_F(RelationTest, UnauthorizedCannotExtractKey) {
  social::Post post{"bob", 11, 100, "p"};
  const RelationPost rp =
      createRelationPost(testGroup(), bob_, post, commenterKey_, rng_);
  const util::Bytes wrongKey = rng_.bytes(32);
  EXPECT_FALSE(extractCommentKey(testGroup(), rp, wrongKey).has_value());
}

TEST_F(RelationTest, CommentBoundToItsPost) {
  social::Post post1{"bob", 20, 100, "post one"};
  social::Post post2{"bob", 21, 100, "post two"};
  const RelationPost rp1 =
      createRelationPost(testGroup(), bob_, post1, commenterKey_, rng_);
  const RelationPost rp2 =
      createRelationPost(testGroup(), bob_, post2, commenterKey_, rng_);
  const auto key1 = extractCommentKey(testGroup(), rp1, commenterKey_);
  const SignedComment sc = signComment(
      testGroup(), rp1, *key1, social::Comment{"alice", 20, 1, "c"}, rng_);
  // A comment for post 20 does not verify against post 21 (different id AND
  // different per-post key).
  EXPECT_FALSE(verifyComment(testGroup(), rp2, sc));
  EXPECT_TRUE(verifyComment(testGroup(), rp1, sc));
}

TEST_F(RelationTest, ForgedCommentWithoutKeyFails) {
  social::Post post{"bob", 30, 100, "p"};
  const RelationPost rp =
      createRelationPost(testGroup(), bob_, post, commenterKey_, rng_);
  // Mallory signs with her own key instead of the post's comment key.
  social::Comment comment{"mallory", 30, 1, "spam"};
  SignedComment forged;
  forged.comment = comment;
  util::Writer ctx;
  ctx.bytes(rp.base.signature.serialize());
  ctx.bytes(comment.serialize());
  forged.signature =
      pkcrypto::schnorrSign(testGroup(), mallory_.signing, ctx.buffer(), rng_);
  EXPECT_FALSE(verifyComment(testGroup(), rp, forged));
}

TEST_F(RelationTest, MismatchedPostIdThrowsOnSign) {
  social::Post post{"bob", 40, 100, "p"};
  const RelationPost rp =
      createRelationPost(testGroup(), bob_, post, commenterKey_, rng_);
  const auto key = extractCommentKey(testGroup(), rp, commenterKey_);
  EXPECT_THROW(signComment(testGroup(), rp, *key,
                           social::Comment{"alice", 41, 1, "c"}, rng_),
               util::DosnError);
}

}  // namespace
}  // namespace dosn::integrity
