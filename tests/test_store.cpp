// Tests for the pluggable block-storage layer (src/dosn/store/, DESIGN.md
// §3e): differential equivalence of every decorator stack against a plain
// MemoryStore, CryptStore authentication failures pinned against a known-
// answer envelope, LRU eviction-order determinism, write-behind flush
// ordering and crash-loss semantics, FileStore cold-restart recovery, and
// the full Crypt(Cache(Async(File))) replica-host restart path.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <map>

#include "dosn/overlay/replication.hpp"
#include "dosn/sim/network.hpp"
#include "dosn/sim/simulator.hpp"
#include "dosn/store/async_store.hpp"
#include "dosn/store/cache_store.hpp"
#include "dosn/store/crypt_store.hpp"
#include "dosn/store/file_store.hpp"
#include "dosn/store/memory_store.hpp"
#include "dosn/store/stack.hpp"
#include "dosn/util/rng.hpp"

namespace {

namespace fs = std::filesystem;
using dosn::overlay::OverlayId;
using dosn::sim::kMillisecond;
using dosn::sim::kSecond;
using dosn::util::Bytes;
using dosn::util::BytesView;
using dosn::util::toBytes;
using namespace dosn::store;

// Unique scratch directory per test process (gtest_discover_tests runs each
// TEST as its own process, so pid disambiguates parallel ctest workers).
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag)
      : path(fs::temp_directory_path() /
             ("dosn_test_store_" + tag + "_" + std::to_string(::getpid()))) {
    fs::remove_all(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

OverlayId blockId(std::size_t i) {
  return OverlayId::hash("blk-" + std::to_string(i));
}

Bytes keyBytes() {
  Bytes key(32);
  for (std::size_t i = 0; i < key.size(); ++i)
    key[i] = static_cast<std::uint8_t>(i + 1);
  return key;
}

// Records the order in which ops reach it — used to pin AsyncStore's FIFO
// flush order without trusting the inner store's own bookkeeping.
class RecordingStore final : public StoreDecorator {
 public:
  struct Op {
    char kind;  // 'p' or 'e'
    BlockId id;
  };

  RecordingStore() : StoreDecorator(std::make_unique<MemoryStore>()) {}

  void put(const BlockId& id, BytesView data) override {
    ops.push_back({'p', id});
    inner_->put(id, data);
  }
  std::optional<Bytes> get(const BlockId& id) override {
    return inner_->get(id);
  }
  bool erase(const BlockId& id) override {
    ops.push_back({'e', id});
    return inner_->erase(id);
  }
  std::string describe() const override { return "recording"; }

  std::vector<Op> ops;
};

// Throws BackendError on put/erase while armed — models a transient medium
// failure (full disk, unreachable root) under a write-behind tier.
class FailingStore final : public StoreDecorator {
 public:
  FailingStore() : StoreDecorator(std::make_unique<MemoryStore>()) {}

  void put(const BlockId& id, BytesView data) override {
    if (failing) throw BackendError("injected put failure");
    inner_->put(id, data);
  }
  std::optional<Bytes> get(const BlockId& id) override {
    return inner_->get(id);
  }
  bool erase(const BlockId& id) override {
    if (failing) throw BackendError("injected erase failure");
    return inner_->erase(id);
  }
  std::string describe() const override { return "failing"; }

  bool failing = false;
};

// --- Differential suite: every stack behaves exactly like MemoryStore ------

// Replays one deterministic randomized trace of put/get/erase/flush against
// a stack and a reference std::map, asserting observable equivalence after
// every op and full list()/size() agreement at checkpoints.
void runDifferentialTrace(BlockStore& store, std::uint64_t seed) {
  SCOPED_TRACE(store.describe());
  dosn::util::Rng rng(seed);
  std::map<OverlayId, Bytes> reference;
  constexpr std::size_t kUniverse = 48;
  constexpr int kOps = 700;
  for (int op = 0; op < kOps; ++op) {
    const OverlayId id = blockId(rng.uniform(kUniverse));
    const std::uint64_t roll = rng.uniform(100);
    if (roll < 45) {
      Bytes value = rng.bytes(rng.uniform(120));
      store.put(id, value);
      reference[id] = std::move(value);
    } else if (roll < 75) {
      const auto got = store.get(id);
      const auto ref = reference.find(id);
      if (ref == reference.end()) {
        EXPECT_FALSE(got.has_value()) << "op " << op;
      } else {
        ASSERT_TRUE(got.has_value()) << "op " << op;
        EXPECT_EQ(*got, ref->second) << "op " << op;
      }
    } else if (roll < 90) {
      EXPECT_EQ(store.erase(id), reference.erase(id) > 0) << "op " << op;
    } else if (roll < 95) {
      store.flush();  // no-op on stacks without a write-behind tier
    } else {
      // Checkpoint: membership and enumeration agree, including while an
      // AsyncStore holds unflushed writes.
      EXPECT_EQ(store.size(), reference.size()) << "op " << op;
      std::vector<OverlayId> expected;
      for (const auto& [k, v] : reference) expected.push_back(k);
      EXPECT_EQ(store.list(), expected) << "op " << op;
    }
    EXPECT_EQ(store.has(id), reference.count(id) > 0) << "op " << op;
  }
  // Final full-state comparison.
  EXPECT_EQ(store.size(), reference.size());
  for (const auto& [k, v] : reference) {
    auto got = store.get(k);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, v);
  }
}

TEST(StoreDifferential, MemoryStoreMatchesReferenceMap) {
  MemoryStore store;
  runDifferentialTrace(store, 1);
}

TEST(StoreDifferential, FileStoreMatchesMemory) {
  TempDir dir("diff_file");
  FileStore store(dir.path);
  runDifferentialTrace(store, 2);
}

TEST(StoreDifferential, CryptOverMemoryMatchesMemory) {
  CryptStore store(std::make_unique<MemoryStore>(), keyBytes());
  runDifferentialTrace(store, 3);
}

TEST(StoreDifferential, CacheOverMemoryMatchesMemory) {
  // Deliberately tiny cache: most gets must fall through to the inner store.
  CacheStore store(std::make_unique<MemoryStore>(), 4, 256);
  runDifferentialTrace(store, 4);
  EXPECT_GT(store.cacheStats().evictions, 0u);
}

TEST(StoreDifferential, AsyncOverMemoryMatchesMemory) {
  dosn::sim::Simulator simulator;
  AsyncStore store(std::make_unique<MemoryStore>(), simulator,
                   AsyncConfig{8, 0});
  runDifferentialTrace(store, 5);
  EXPECT_GT(store.asyncStats().spilledOps, 0u);  // the bound was exercised
}

TEST(StoreDifferential, FullStackMatchesMemory) {
  TempDir dir("diff_stack");
  dosn::sim::Simulator simulator;
  StackConfig config;
  config.fileRoot = dir.path;
  config.async = true;
  config.asyncConfig = AsyncConfig{16, 0};
  config.simulator = &simulator;
  config.cache = true;
  config.cacheBlocks = 8;
  config.cacheBytes = 4096;
  config.crypt = true;
  config.cryptKey = keyBytes();
  auto store = makeStack(config);
  EXPECT_EQ(store->describe(), "crypt(cache(async(file)))");
  runDifferentialTrace(*store, 6);
}

// --- CryptStore: known-answer envelope and authentication failures ---------

// The envelope for a fixed (key, id, seq=0, plaintext) tuple is pinned so the
// derivation chain (HKDF key, SIV-style plaintext-bound nonce, AAD binding,
// layout) cannot drift silently. Regenerate only on a deliberate format
// change.
constexpr char kKatEnvelopeHex[] =
    "00000000000000004512ae4201763db92c08daa5a00bd3f758e8f78ffc33a2ade4ba9f87"
    "b50b878770b11d154666a50fca5c";

TEST(CryptStoreTest, KnownAnswerEnvelope) {
  auto inner = std::make_unique<MemoryStore>();
  MemoryStore* raw = inner.get();
  CryptStore store(std::move(inner), keyBytes());
  const OverlayId id = OverlayId::hash("kat-block");
  store.put(id, toBytes("attack at dawn"));
  const auto envelope = raw->get(id);
  ASSERT_TRUE(envelope.has_value());
  // seq(8) || nonce(12) || ciphertext(14) || tag(16)
  ASSERT_EQ(envelope->size(), 8u + 12u + 14u + 16u);
  EXPECT_EQ(dosn::util::toHex(*envelope), kKatEnvelopeHex);
  // And it round-trips.
  EXPECT_EQ(store.get(id).value(), toBytes("attack at dawn"));
}

TEST(CryptStoreTest, SeqRegressionNeverReusesNonceForDifferentPlaintext) {
  // Two stores whose put counters both sit at 0 (modeling a counter that
  // regressed across erase/crash) seal different plaintexts under the same
  // (id, seq): the plaintext-bound nonce derivation must yield different
  // nonces, so the (blockKey, nonce) pair is never reused across plaintexts.
  const OverlayId id = OverlayId::hash("regress");
  auto innerA = std::make_unique<MemoryStore>();
  MemoryStore* rawA = innerA.get();
  CryptStore a(std::move(innerA), keyBytes());
  a.put(id, toBytes("first value"));

  auto innerB = std::make_unique<MemoryStore>();
  MemoryStore* rawB = innerB.get();
  CryptStore b(std::move(innerB), keyBytes());
  b.put(id, toBytes("second value"));

  const Bytes envA = rawA->get(id).value();
  const Bytes envB = rawB->get(id).value();
  // Same seq prefix...
  EXPECT_TRUE(std::equal(envA.begin(), envA.begin() + 8, envB.begin()));
  // ...different nonce (bytes 8..20 of the envelope).
  EXPECT_FALSE(std::equal(envA.begin() + 8, envA.begin() + 20,
                          envB.begin() + 8));
  // Identical plaintext at the same (id, seq) is deterministic — the only
  // case where a (key, nonce) pair repeats, revealing nothing but equality.
  auto innerC = std::make_unique<MemoryStore>();
  MemoryStore* rawC = innerC.get();
  CryptStore c(std::move(innerC), keyBytes());
  c.put(id, toBytes("first value"));
  EXPECT_EQ(rawC->get(id).value(), envA);
  // Both regressed envelopes still round-trip.
  EXPECT_EQ(a.get(id).value(), toBytes("first value"));
  EXPECT_EQ(b.get(id).value(), toBytes("second value"));
}

TEST(CryptStoreTest, TamperedByteThrowsNeverForges) {
  auto inner = std::make_unique<MemoryStore>();
  MemoryStore* raw = inner.get();
  CryptStore store(std::move(inner), keyBytes());
  const OverlayId id = OverlayId::hash("tamper");
  store.put(id, toBytes("secret payload"));
  const auto pristine = raw->get(id).value();
  // Flip one ciphertext byte (past the seq and nonce header).
  auto envelope = pristine;
  envelope[22] ^= 0x01;
  raw->put(id, envelope);
  EXPECT_THROW((void)store.get(id), CorruptBlockError);
  EXPECT_EQ(store.rejectedBlocks(), 1u);
  // Flip one stored-nonce byte: authenticated the same way.
  envelope = pristine;
  envelope[10] ^= 0x01;
  raw->put(id, envelope);
  EXPECT_THROW((void)store.get(id), CorruptBlockError);
  EXPECT_EQ(store.rejectedBlocks(), 2u);
}

TEST(CryptStoreTest, TruncatedEnvelopeThrows) {
  auto inner = std::make_unique<MemoryStore>();
  MemoryStore* raw = inner.get();
  CryptStore store(std::move(inner), keyBytes());
  const OverlayId id = OverlayId::hash("trunc");
  store.put(id, toBytes("secret payload"));
  auto envelope = raw->get(id).value();
  // Shorter than seq + nonce + tag: structurally invalid.
  envelope.resize(8 + 12 + 15);
  raw->put(id, envelope);
  EXPECT_THROW((void)store.get(id), CorruptBlockError);
  // Drop the tail of the tag instead.
  auto envelope2 = raw->get(id).value();
  (void)envelope2;
  EXPECT_EQ(store.rejectedBlocks(), 1u);
}

TEST(CryptStoreTest, WrongKeyThrows) {
  auto inner = std::make_unique<MemoryStore>();
  MemoryStore* raw = inner.get();
  CryptStore writer(std::move(inner), keyBytes());
  const OverlayId id = OverlayId::hash("wrong-key");
  writer.put(id, toBytes("secret payload"));
  const Bytes envelope = raw->get(id).value();

  auto other = std::make_unique<MemoryStore>();
  other->put(id, envelope);
  Bytes wrongKey = keyBytes();
  wrongKey[0] ^= 0xff;
  CryptStore reader(std::move(other), wrongKey);
  EXPECT_THROW((void)reader.get(id), CorruptBlockError);
  EXPECT_EQ(reader.rejectedBlocks(), 1u);
}

TEST(CryptStoreTest, EnvelopeCopiedUnderOtherIdThrows) {
  auto inner = std::make_unique<MemoryStore>();
  MemoryStore* raw = inner.get();
  CryptStore store(std::move(inner), keyBytes());
  const OverlayId a = OverlayId::hash("id-a");
  const OverlayId b = OverlayId::hash("id-b");
  store.put(a, toBytes("bound to a"));
  // A replica splicing a's valid envelope under b must be detected: the AAD
  // binds ciphertext to its block id.
  raw->put(b, raw->get(a).value());
  EXPECT_THROW((void)store.get(b), CorruptBlockError);
}

TEST(CryptStoreTest, SeqResumesAcrossColdRestart) {
  TempDir dir("crypt_seq");
  std::uint64_t seqAfterPuts = 0;
  {
    CryptStore store(std::make_unique<FileStore>(dir.path), keyBytes());
    EXPECT_EQ(store.nextSeq(), 0u);
    store.put(OverlayId::hash("s0"), toBytes("v0"));
    store.put(OverlayId::hash("s1"), toBytes("v1"));
    store.put(OverlayId::hash("s2"), toBytes("v2"));
    seqAfterPuts = store.nextSeq();
    EXPECT_EQ(seqAfterPuts, 3u);
  }
  // Reopen over the same root: the counter resumes above the largest stored
  // seq, so a re-put never reuses a (key, nonce) pair.
  CryptStore reopened(std::make_unique<FileStore>(dir.path), keyBytes());
  EXPECT_EQ(reopened.nextSeq(), seqAfterPuts);
  reopened.put(OverlayId::hash("s0"), toBytes("v0 again"));
  EXPECT_EQ(reopened.get(OverlayId::hash("s0")).value(), toBytes("v0 again"));
  EXPECT_EQ(reopened.get(OverlayId::hash("s2")).value(), toBytes("v2"));
}

// --- CacheStore: deterministic LRU eviction order --------------------------

TEST(CacheStoreTest, LruEvictionOrderIsDeterministic) {
  CacheStore store(std::make_unique<MemoryStore>(), 3, 1 << 20);
  const OverlayId a = blockId(0), b = blockId(1), c = blockId(2),
                  d = blockId(3);
  store.put(a, toBytes("A"));
  store.put(b, toBytes("B"));
  store.put(c, toBytes("C"));
  EXPECT_EQ(store.cachedIds(), (std::vector<OverlayId>{c, b, a}));

  // Touch a: it becomes most-recent, so b is now the victim.
  EXPECT_TRUE(store.get(a).has_value());
  EXPECT_EQ(store.cachedIds(), (std::vector<OverlayId>{a, c, b}));

  store.put(d, toBytes("D"));
  EXPECT_EQ(store.cachedIds(), (std::vector<OverlayId>{d, a, c}));
  EXPECT_EQ(store.cacheStats().evictions, 1u);

  // Write-through: the evicted block is still served from the inner store
  // (a cache miss that promotes it back in).
  const auto stats = store.cacheStats();
  EXPECT_EQ(store.get(b).value(), toBytes("B"));
  EXPECT_EQ(store.cacheStats().misses, stats.misses + 1);
  EXPECT_EQ(store.cachedIds().front(), b);
}

TEST(CacheStoreTest, ByteCapacityBoundsResidency) {
  CacheStore store(std::make_unique<MemoryStore>(), 100, 10);
  store.put(blockId(0), toBytes("123456"));   // 6 bytes, cached
  store.put(blockId(1), toBytes("1234"));     // 6+4 = 10, still fits
  EXPECT_EQ(store.cacheStats().cachedBytes, 10u);
  store.put(blockId(2), toBytes("12345678"));  // evicts until it fits
  EXPECT_LE(store.cacheStats().cachedBytes, 10u);
  // A block larger than the whole byte budget is stored but never cached.
  store.put(blockId(3), toBytes("0123456789abcdef"));
  EXPECT_TRUE(store.has(blockId(3)));
  const auto ids = store.cachedIds();
  EXPECT_TRUE(std::find(ids.begin(), ids.end(), blockId(3)) == ids.end());
  EXPECT_EQ(store.get(blockId(3)).value(), toBytes("0123456789abcdef"));
}

TEST(CacheStoreTest, OversizedOverwriteInvalidatesCachedEntry) {
  CacheStore store(std::make_unique<MemoryStore>(), 100, 10);
  // Cache a small value, then overwrite it with one too big to cache: the
  // stale cached bytes must be dropped, and reads must serve the new value.
  store.put(blockId(0), toBytes("small"));
  EXPECT_EQ(store.cachedIds(), (std::vector<OverlayId>{blockId(0)}));
  store.put(blockId(0), toBytes("much-too-big-to-cache"));
  EXPECT_TRUE(store.cachedIds().empty());
  EXPECT_EQ(store.cacheStats().cachedBytes, 0u);
  EXPECT_EQ(store.get(blockId(0)).value(), toBytes("much-too-big-to-cache"));
  // Same stale-read hazard via the promotion path: a get() that promotes a
  // small value, then an oversized overwrite.
  store.put(blockId(1), toBytes("tiny"));
  EXPECT_EQ(store.get(blockId(1)).value(), toBytes("tiny"));
  store.put(blockId(1), toBytes("also-much-too-big-0123"));
  EXPECT_EQ(store.get(blockId(1)).value(), toBytes("also-much-too-big-0123"));
}

TEST(CacheStoreTest, HitRatioTracksWorkload) {
  CacheStore store(std::make_unique<MemoryStore>(), 8, 1 << 20);
  store.put(blockId(0), toBytes("x"));
  for (int i = 0; i < 9; ++i) EXPECT_TRUE(store.get(blockId(0)).has_value());
  EXPECT_FALSE(store.get(blockId(7)).has_value());
  EXPECT_DOUBLE_EQ(store.hitRatio(), 0.9);
}

// --- AsyncStore: flush order, crash loss, bounded dirty set ----------------

TEST(AsyncStoreTest, FlushAppliesFifoByFirstDirtyTimeWithCoalescing) {
  dosn::sim::Simulator simulator;
  auto recording = std::make_unique<RecordingStore>();
  RecordingStore* raw = recording.get();
  AsyncStore store(std::move(recording), simulator, AsyncConfig{64, 0});

  const OverlayId x = blockId(0), y = blockId(1), z = blockId(2);
  store.put(x, toBytes("x1"));
  store.put(y, toBytes("y1"));
  store.put(x, toBytes("x2"));  // coalesces onto x's original position
  store.put(z, toBytes("z1"));
  EXPECT_TRUE(store.erase(y));  // y never reached the inner store: cancelled
  EXPECT_EQ(raw->ops.size(), 0u);  // nothing applied yet

  EXPECT_EQ(store.flush(), 2u);
  ASSERT_EQ(raw->ops.size(), 2u);
  EXPECT_EQ(raw->ops[0].kind, 'p');
  EXPECT_EQ(raw->ops[0].id, x);  // x first (first-dirty), with coalesced value
  EXPECT_EQ(raw->ops[1].id, z);
  EXPECT_EQ(raw->inner().get(x).value(), toBytes("x2"));
  EXPECT_FALSE(raw->has(y));

  // Erase of an inner-resident block flushes as a tombstone, in FIFO order.
  EXPECT_TRUE(store.erase(x));
  store.put(y, toBytes("y2"));
  store.flush();
  ASSERT_EQ(raw->ops.size(), 4u);
  EXPECT_EQ(raw->ops[2].kind, 'e');
  EXPECT_EQ(raw->ops[2].id, x);
  EXPECT_EQ(raw->ops[3].kind, 'p');
  EXPECT_EQ(raw->ops[3].id, y);
}

TEST(AsyncStoreTest, AckedButUnflushedWritesAreLostOnCrash) {
  dosn::sim::Simulator simulator;
  AsyncStore store(std::make_unique<MemoryStore>(), simulator,
                   AsyncConfig{64, 0});
  store.put(blockId(0), toBytes("durable0"));
  store.put(blockId(1), toBytes("durable1"));
  store.flush();  // durability boundary
  store.put(blockId(2), toBytes("volatile2"));
  store.put(blockId(3), toBytes("volatile3"));
  EXPECT_TRUE(store.has(blockId(2)));  // acked: visible before the crash

  EXPECT_EQ(store.discardPending(), 2u);  // the crash
  EXPECT_EQ(store.asyncStats().lostOps, 2u);
  EXPECT_TRUE(store.has(blockId(0)));
  EXPECT_TRUE(store.has(blockId(1)));
  EXPECT_FALSE(store.has(blockId(2)));
  EXPECT_FALSE(store.has(blockId(3)));
}

TEST(AsyncStoreTest, BoundedDirtySetSpillsOldestSynchronously) {
  dosn::sim::Simulator simulator;
  auto recording = std::make_unique<RecordingStore>();
  RecordingStore* raw = recording.get();
  AsyncStore store(std::move(recording), simulator, AsyncConfig{2, 0});
  store.put(blockId(0), toBytes("a"));
  store.put(blockId(1), toBytes("b"));
  EXPECT_EQ(raw->ops.size(), 0u);
  store.put(blockId(2), toBytes("c"));  // bound hit: oldest (0) spills
  ASSERT_EQ(raw->ops.size(), 1u);
  EXPECT_EQ(raw->ops[0].id, blockId(0));
  EXPECT_EQ(store.asyncStats().spilledOps, 1u);
  EXPECT_EQ(store.pendingOps(), 2u);
}

TEST(AsyncStoreTest, InnerFailureDuringFlushKeepsQueueAndPendingInSync) {
  dosn::sim::Simulator simulator;
  auto failing = std::make_unique<FailingStore>();
  FailingStore* raw = failing.get();
  AsyncStore store(std::move(failing), simulator, AsyncConfig{64, 0});
  store.put(blockId(0), toBytes("a1"));
  store.put(blockId(1), toBytes("b1"));

  raw->failing = true;
  EXPECT_THROW(store.flush(), BackendError);
  // Nothing was dequeued without being applied: both ops are still pending,
  // still visible, and still coalescible.
  EXPECT_EQ(store.pendingOps(), 2u);
  EXPECT_TRUE(store.has(blockId(0)));
  EXPECT_TRUE(store.has(blockId(1)));
  store.put(blockId(0), toBytes("a2"));  // coalesces onto the queued entry
  EXPECT_EQ(store.pendingOps(), 2u);

  // Once the medium recovers, a retry applies everything — no orphaned
  // pending entry that flush() would silently skip.
  raw->failing = false;
  EXPECT_EQ(store.flush(), 2u);
  EXPECT_EQ(store.pendingOps(), 0u);
  EXPECT_EQ(raw->get(blockId(0)).value(), toBytes("a2"));
  EXPECT_EQ(raw->get(blockId(1)).value(), toBytes("b1"));
}

TEST(AsyncStoreTest, InnerFailureDuringSpillLeavesVictimQueued) {
  dosn::sim::Simulator simulator;
  auto failing = std::make_unique<FailingStore>();
  FailingStore* raw = failing.get();
  AsyncStore store(std::move(failing), simulator, AsyncConfig{1, 0});
  store.put(blockId(0), toBytes("v0"));

  raw->failing = true;
  // The dirty bound forces a synchronous spill of blockId(0), which fails:
  // the victim must stay queued and the new put is not acked.
  EXPECT_THROW(store.put(blockId(1), toBytes("v1")), BackendError);
  EXPECT_EQ(store.pendingOps(), 1u);
  EXPECT_TRUE(store.has(blockId(0)));
  EXPECT_FALSE(store.has(blockId(1)));

  raw->failing = false;
  EXPECT_EQ(store.flush(), 1u);
  EXPECT_EQ(raw->get(blockId(0)).value(), toBytes("v0"));
}

TEST(AsyncStoreTest, PeriodicFlushDrainsOnSimClock) {
  dosn::sim::Simulator simulator;
  AsyncStore store(std::make_unique<MemoryStore>(), simulator,
                   AsyncConfig{64, 100 * kMillisecond});
  store.put(blockId(0), toBytes("v"));
  EXPECT_EQ(store.pendingOps(), 1u);
  simulator.run();  // the self-scheduled flush event fires
  EXPECT_EQ(store.pendingOps(), 0u);
  EXPECT_EQ(store.asyncStats().flushes, 1u);
  EXPECT_EQ(store.asyncStats().flushLatencyMax, 100 * kMillisecond);
  // Destroying the store with events possibly in flight must be safe (the
  // alive flag guards the closure); run the simulator dry afterwards.
  store.put(blockId(1), toBytes("w"));
}

// --- FileStore: deterministic layout and cold-restart recovery -------------

TEST(FileStoreTest, ColdRestartRecoversExactState) {
  TempDir dir("file_restart");
  std::map<OverlayId, Bytes> expected;
  {
    FileStore store(dir.path);
    dosn::util::Rng rng(7);
    for (std::size_t i = 0; i < 12; ++i) {
      const Bytes value = rng.bytes(1 + rng.uniform(64));
      store.put(blockId(i), value);
      expected[blockId(i)] = value;
    }
    // Overwrites and erases must survive restart too.
    store.put(blockId(3), toBytes("overwritten"));
    expected[blockId(3)] = toBytes("overwritten");
    store.erase(blockId(5));
    expected.erase(blockId(5));
    // A stray .tmp (crash mid-write) must be ignored by the reopened store.
    std::FILE* f = std::fopen((dir.path / "deadbeef.tmp").c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fclose(f);
  }
  FileStore reopened(dir.path);
  EXPECT_EQ(reopened.size(), expected.size());
  std::vector<OverlayId> expectedIds;
  for (const auto& [k, v] : expected) expectedIds.push_back(k);
  EXPECT_EQ(reopened.list(), expectedIds);
  for (const auto& [k, v] : expected) {
    EXPECT_EQ(reopened.get(k).value(), v) << k.toHex();
  }
  EXPECT_FALSE(reopened.has(blockId(5)));
}

TEST(FileStoreTest, UnwritableRootThrowsBackendError) {
  EXPECT_THROW(FileStore("/proc/nonexistent/store"), BackendError);
}

// --- ReplicaHost over the full stack: teardown, rebuild, re-serve ----------

// The acceptance path: a replica host running Crypt(Cache(Async(File))) is
// torn down after flushing and rebuilt over the same root + key; every block
// a client saw acked must be re-served, and a tampered on-disk envelope must
// surface as not-found (never as forged plaintext).
TEST(ReplicaRestart, FullStackColdRestartReServesAllAckedBlocks) {
  TempDir dir("replica_restart");
  dosn::util::Rng rng(42);
  dosn::sim::Simulator simulator;
  dosn::sim::Network net(
      simulator, dosn::sim::LatencyModel{10 * kMillisecond, 0, 0.0}, rng);

  StackConfig config;
  config.fileRoot = dir.path;
  config.async = true;
  config.asyncConfig = AsyncConfig{256, 0};
  config.simulator = &simulator;
  config.cache = true;
  config.cacheBlocks = 16;
  config.cacheBytes = 1 << 16;
  config.crypt = true;
  config.cryptKey = keyBytes();

  auto host = std::make_unique<dosn::overlay::ReplicaHost>(
      net, makeStack(config));
  dosn::overlay::ReplicaClient client(net);

  constexpr std::size_t kBlocks = 25;
  std::size_t acked = 0;
  for (std::size_t i = 0; i < kBlocks; ++i) {
    client.store(host->addr(), blockId(i),
                 toBytes("payload-" + std::to_string(i)),
                 [&](bool ok) { acked += ok ? 1 : 0; });
  }
  simulator.run();
  ASSERT_EQ(acked, kBlocks);

  // Graceful shutdown: flush the write-behind tier down to the FileStore,
  // then tear the host down (endpoint unregisters, stack is destroyed).
  host->store().flush();
  host.reset();

  // Cold restart: a fresh host over the same root and master key.
  host = std::make_unique<dosn::overlay::ReplicaHost>(net, makeStack(config));
  EXPECT_EQ(host->blockCount(), kBlocks);

  std::size_t recovered = 0;
  for (std::size_t i = 0; i < kBlocks; ++i) {
    const std::string want = "payload-" + std::to_string(i);
    client.fetch(host->addr(), blockId(i),
                 [&, want](std::optional<Bytes> value) {
                   if (value && *value == toBytes(want)) ++recovered;
                 });
  }
  simulator.run();
  EXPECT_EQ(recovered, kBlocks);  // 100% of acked blocks re-served

  // Tamper with one envelope on disk: the host must answer not-found (and
  // count the corruption), never decrypt it.
  const fs::path victim = dir.path / (blockId(0).toHex() + ".blk");
  ASSERT_TRUE(fs::exists(victim));
  {
    std::FILE* f = std::fopen(victim.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 12, SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, 12, SEEK_SET);
    std::fputc(c ^ 0x01, f);
    std::fclose(f);
  }
  // Rebuild once more so the tampered block is not served from the cache.
  host = std::make_unique<dosn::overlay::ReplicaHost>(net, makeStack(config));
  std::optional<Bytes> fetched = toBytes("sentinel");
  client.fetch(host->addr(), blockId(0),
               [&](std::optional<Bytes> value) { fetched = std::move(value); });
  simulator.run();
  EXPECT_FALSE(fetched.has_value());
  EXPECT_EQ(host->storeErrors(), 1u);
}

TEST(ReplicaRestart, CrashWithoutFlushLosesOnlyUnflushedBlocks) {
  TempDir dir("replica_crash");
  dosn::util::Rng rng(43);
  dosn::sim::Simulator simulator;
  dosn::sim::Network net(
      simulator, dosn::sim::LatencyModel{10 * kMillisecond, 0, 0.0}, rng);

  StackConfig config;
  config.fileRoot = dir.path;
  config.async = true;
  config.asyncConfig = AsyncConfig{256, 0};
  config.simulator = &simulator;

  auto host = std::make_unique<dosn::overlay::ReplicaHost>(
      net, makeStack(config));
  dosn::overlay::ReplicaClient client(net);

  for (std::size_t i = 0; i < 10; ++i) {
    client.store(host->addr(), blockId(i), toBytes("early"), {});
  }
  simulator.run();
  host->store().flush();
  for (std::size_t i = 10; i < 20; ++i) {
    client.store(host->addr(), blockId(i), toBytes("late"), {});
  }
  simulator.run();
  host.reset();  // crash: AsyncStore's destructor does NOT flush

  host = std::make_unique<dosn::overlay::ReplicaHost>(net, makeStack(config));
  EXPECT_EQ(host->blockCount(), 10u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_TRUE(host->hasBlock(blockId(i)));
  for (std::size_t i = 10; i < 20; ++i)
    EXPECT_FALSE(host->hasBlock(blockId(i)));
}

// --- Stack assembly guardrails ---------------------------------------------

TEST(StackTest, InconsistentConfigThrows) {
  StackConfig async;
  async.async = true;  // no simulator
  EXPECT_THROW(makeStack(async), StoreError);

  StackConfig crypt;
  crypt.crypt = true;  // empty key
  EXPECT_THROW(makeStack(crypt), StoreError);
}

TEST(StackTest, DefaultConfigIsPlainMemory) {
  auto store = makeStack({});
  EXPECT_EQ(store->describe(), "memory");
  store->put(blockId(0), toBytes("v"));
  EXPECT_EQ(store->flush(), 0u);  // no write-behind tier anywhere
  EXPECT_EQ(store->get(blockId(0)).value(), toBytes("v"));
}

}  // namespace
