// Fault-injection property sweep: the availability threats the paper's §I
// motivates (flaky links, partitions, corruption, duplication) scripted
// against the deterministic simulator, and the overlay defenses (retry with
// exponential backoff, AEAD/codec rejection) that survive them.
//
//  - FaultPlan semantics: windows, asymmetric links, partitions + heal,
//    duplication, corruption, delay spikes, metrics counters;
//  - determinism: same seed + same plan => byte-identical delivery trace;
//  - Kademlia under 20% drop + a healed partition: retries lift lookup
//    success measurably and above an absolute threshold;
//  - corrupted payloads never crash a handler and never decrypt to anything
//    but the original plaintext;
//  - single-shot timeout paths in flooding/super-peer/federation: a fully
//    dropped query invokes its callback exactly once, at the timeout, never
//    twice and never late.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "dosn/crypto/aead.hpp"
#include "dosn/overlay/federation.hpp"
#include "dosn/overlay/flooding.hpp"
#include "dosn/overlay/kademlia.hpp"
#include "dosn/overlay/replication.hpp"
#include "dosn/overlay/superpeer.hpp"
#include "dosn/sim/faults.hpp"
#include "dosn/sim/metrics.hpp"
#include "dosn/sim/network.hpp"

namespace dosn {
namespace {

using overlay::Contact;
using overlay::KademliaConfig;
using overlay::KademliaNode;
using overlay::OverlayId;
using overlay::RetryPolicy;
using sim::FaultPlan;
using sim::FaultRule;
using sim::kMillisecond;
using sim::kSecond;
using sim::Message;
using sim::NodeAddr;
using sim::SimTime;
using util::toBytes;

// --- FaultPlan semantics ---

class FaultPlanTest : public ::testing::Test {
 protected:
  util::Rng rng_{42};
  sim::Simulator sim_;
  sim::Network net_{sim_, sim::LatencyModel{10 * kMillisecond, 0, 0.0}, rng_};
  sim::Metrics metrics_;
  FaultPlan plan_;

  void SetUp() override {
    net_.setMetrics(&metrics_);
    net_.setFaultPlan(&plan_);
  }

  int countDeliveries(NodeAddr to) {
    auto counter = std::make_shared<int>(0);
    net_.setHandler(to, [counter](NodeAddr, const Message&) { ++*counter; });
    deliveryCounts_.push_back(counter);
    return static_cast<int>(deliveryCounts_.size()) - 1;
  }
  int delivered(int idx) const { return *deliveryCounts_[idx]; }

  std::vector<std::shared_ptr<int>> deliveryCounts_;
};

TEST_F(FaultPlanTest, AsymmetricLinkDrop) {
  const NodeAddr a = net_.addNode();
  const NodeAddr b = net_.addNode();
  plan_.add(FaultRule::link(a, b).drop(1.0));
  const int atA = countDeliveries(a);
  const int atB = countDeliveries(b);
  net_.send(a, b, Message{"m", {}});
  net_.send(b, a, Message{"m", {}});
  sim_.run();
  EXPECT_EQ(delivered(atB), 0);  // a -> b severed
  EXPECT_EQ(delivered(atA), 1);  // b -> a untouched
  EXPECT_EQ(metrics_.counter("net.dropped.fault"), 1u);
  EXPECT_EQ(net_.messagesSent(), 2u);
  EXPECT_EQ(net_.messagesDelivered(), 1u);
  EXPECT_EQ(net_.messagesDropped(), 1u);
}

TEST_F(FaultPlanTest, RuleWindowsActivateAndExpire) {
  const NodeAddr a = net_.addNode();
  const NodeAddr b = net_.addNode();
  plan_.between(1 * kSecond, 2 * kSecond, FaultRule::global().drop(1.0));
  const int atB = countDeliveries(b);
  sim_.schedule(0, [&] { net_.send(a, b, Message{"before", {}}); });
  sim_.schedule(1500 * kMillisecond, [&] { net_.send(a, b, Message{"during", {}}); });
  // [t1, t2) is half-open: a message at exactly t2 is unaffected.
  sim_.schedule(2 * kSecond, [&] { net_.send(a, b, Message{"after", {}}); });
  sim_.run();
  EXPECT_EQ(delivered(atB), 2);
  EXPECT_EQ(net_.deliveredByType().count("during"), 0u);
  EXPECT_EQ(net_.deliveredByType().at("before"), 1u);
  EXPECT_EQ(net_.deliveredByType().at("after"), 1u);
}

TEST_F(FaultPlanTest, PartitionSeversUntilHeal) {
  const NodeAddr a = net_.addNode();
  const NodeAddr b = net_.addNode();
  const NodeAddr c = net_.addNode();
  plan_.partition("island", {a, b}, 1 * kSecond, 5 * kSecond);
  const int atA = countDeliveries(a);
  const int atB = countDeliveries(b);
  const int atC = countDeliveries(c);
  // Before the partition starts: boundary traffic flows.
  sim_.schedule(0, [&] { net_.send(a, c, Message{"m", {}}); });
  // During: island <-> rest severed both ways, intra-island traffic fine.
  sim_.schedule(2 * kSecond, [&] {
    net_.send(a, c, Message{"m", {}});
    net_.send(c, b, Message{"m", {}});
    net_.send(a, b, Message{"m", {}});
  });
  // After heal: flows again.
  sim_.schedule(6 * kSecond, [&] { net_.send(c, a, Message{"m", {}}); });
  sim_.run();
  EXPECT_EQ(delivered(atC), 1);  // only the pre-partition message
  EXPECT_EQ(delivered(atB), 1);  // the intra-island message
  EXPECT_EQ(delivered(atA), 1);  // the post-heal message
  EXPECT_EQ(metrics_.counter("net.partitioned"), 2u);
}

TEST_F(FaultPlanTest, DuplicationDeliversTwice) {
  const NodeAddr a = net_.addNode();
  const NodeAddr b = net_.addNode();
  plan_.add(FaultRule::link(a, b).duplicate(1.0));
  const int atB = countDeliveries(b);
  net_.send(a, b, Message{"m", toBytes("payload")});
  sim_.run();
  EXPECT_EQ(delivered(atB), 2);
  EXPECT_EQ(net_.messagesSent(), 1u);
  EXPECT_EQ(net_.messagesDelivered(), 2u);
  EXPECT_EQ(metrics_.counter("net.duplicated"), 1u);
}

TEST_F(FaultPlanTest, CorruptionFlipsBitsSameLength) {
  const NodeAddr a = net_.addNode();
  const NodeAddr b = net_.addNode();
  plan_.add(FaultRule::node(b).corrupt(1.0));
  const util::Bytes original = rng_.bytes(64);
  util::Bytes received;
  net_.setHandler(b, [&](NodeAddr, const Message& msg) { received = msg.payload; });
  net_.send(a, b, Message{"m", original});
  sim_.run();
  ASSERT_EQ(received.size(), original.size());
  EXPECT_NE(received, original);
  EXPECT_EQ(metrics_.counter("net.corrupted"), 1u);
}

TEST_F(FaultPlanTest, DelaySpikePostponesDelivery) {
  const NodeAddr a = net_.addNode();
  const NodeAddr b = net_.addNode();
  plan_.add(FaultRule::link(a, b).delay(2 * kSecond));
  SimTime deliveredAt = 0;
  net_.setHandler(b, [&](NodeAddr, const Message&) { deliveredAt = sim_.now(); });
  net_.send(a, b, Message{"m", {}});
  sim_.run();
  EXPECT_EQ(deliveredAt, 2 * kSecond + 10 * kMillisecond);
}

TEST_F(FaultPlanTest, DropOverrideReplacesBaseLoss) {
  // The rule's drop(0.0) must override a lossy link back to reliable.
  util::Rng rng(7);
  sim::Simulator sim;
  sim::Network net(sim, sim::LatencyModel{kMillisecond, 0, 0.9}, rng);
  FaultPlan plan;
  plan.add(FaultRule::global().drop(0.0));
  net.setFaultPlan(&plan);
  const NodeAddr a = net.addNode();
  const NodeAddr b = net.addNode();
  int count = 0;
  net.setHandler(b, [&](NodeAddr, const Message&) { ++count; });
  for (int i = 0; i < 50; ++i) net.send(a, b, Message{"m", {}});
  sim.run();
  EXPECT_EQ(count, 50);
}

// --- Determinism: same seed + same plan => byte-identical delivery trace ---

struct TraceEntry {
  SimTime at;
  NodeAddr from;
  NodeAddr to;
  std::string type;
  util::Bytes payload;

  bool operator==(const TraceEntry&) const = default;
};

std::vector<TraceEntry> runFaultyWorkload(std::uint64_t seed) {
  util::Rng rng(seed);
  sim::Simulator simulator;
  sim::Network net(simulator,
                   sim::LatencyModel{10 * kMillisecond, 5 * kMillisecond, 0.05},
                   rng);
  std::vector<NodeAddr> nodes;
  for (int i = 0; i < 8; ++i) nodes.push_back(net.addNode());

  FaultPlan plan;
  plan.between(2 * kSecond, 6 * kSecond, FaultRule::global().drop(0.25));
  plan.add(FaultRule::link(nodes[0], nodes[1]).duplicate(0.5));
  plan.at(1 * kSecond, FaultRule::node(nodes[2]).corrupt(0.5));
  plan.add(FaultRule::link(nodes[3], nodes[4]).delay(800 * kMillisecond, 0.5));
  plan.partition("racks", {nodes[5], nodes[6]}, 3 * kSecond, 7 * kSecond);
  net.setFaultPlan(&plan);

  auto trace = std::make_shared<std::vector<TraceEntry>>();
  for (const NodeAddr node : nodes) {
    net.setHandler(node, [trace, node, &simulator](NodeAddr from,
                                                   const Message& msg) {
      trace->push_back({simulator.now(), from, node, msg.type, msg.payload});
    });
  }
  // Fixed message schedule; all randomness (loss, jitter, fault draws) flows
  // through the seeded rng inside the network.
  for (std::uint64_t t = 0; t < 100; ++t) {
    const NodeAddr from = nodes[t % nodes.size()];
    const NodeAddr to = nodes[(t * 3 + 1) % nodes.size()];
    simulator.scheduleAt(t * 100 * kMillisecond, [&net, from, to, t] {
      util::Bytes payload(1 + t % 32, static_cast<std::uint8_t>(t));
      net.send(from, to, Message{"w" + std::to_string(t % 4), std::move(payload)});
    });
  }
  simulator.run();
  return *trace;
}

TEST(FaultDeterminism, SameSeedSamePlanSameTrace) {
  const auto first = runFaultyWorkload(1234);
  const auto second = runFaultyWorkload(1234);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);  // byte-identical, corruption bits included
}

TEST(FaultDeterminism, DifferentSeedDifferentTrace) {
  EXPECT_NE(runFaultyWorkload(1234), runFaultyWorkload(5678));
}

// --- Kademlia under 20% drop + healed partition: retries earn their keep ---

struct SwarmOutcome {
  std::size_t successes = 0;
  std::size_t lookups = 0;
  std::uint64_t retries = 0;
};

SwarmOutcome runKademliaUnderFaults(bool withRetries) {
  constexpr std::size_t kPeers = 30;
  constexpr std::size_t kItems = 20;
  constexpr std::size_t kLookups = 40;

  util::Rng rng(99);
  sim::Simulator simulator;
  sim::Network net(simulator,
                   sim::LatencyModel{10 * kMillisecond, 5 * kMillisecond, 0.0},
                   rng);
  sim::Metrics metrics;
  net.setMetrics(&metrics);

  KademliaConfig config;
  config.k = 8;
  config.alpha = 3;
  config.rpcTimeout = 250 * kMillisecond;
  config.storeWidth = 2;  // few replicas: the find_value RPC has to land
  if (withRetries) {
    config.retry = RetryPolicy{4, 200 * kMillisecond, 2.0};
  }

  std::vector<std::unique_ptr<KademliaNode>> peers;
  for (std::size_t i = 0; i < kPeers; ++i) {
    peers.push_back(
        std::make_unique<KademliaNode>(net, OverlayId::random(rng), config));
  }
  const Contact seed{peers[0]->id(), peers[0]->addr()};
  for (std::size_t i = 1; i < kPeers; ++i) {
    peers[i]->bootstrap(seed);
    simulator.run();
  }
  std::vector<OverlayId> keys;
  for (std::size_t i = 0; i < kItems; ++i) {
    keys.push_back(OverlayId::hash("faulty-" + std::to_string(i)));
    peers[i % kPeers]->store(keys.back(), toBytes("v"), {});
    simulator.run();
  }

  // Faults start only now: a healthy overlay hit by a storm + a partition.
  const SimTime t0 = simulator.now();
  FaultPlan plan;
  plan.at(t0, FaultRule::global().drop(0.20));
  std::set<NodeAddr> island;
  for (std::size_t i = 10; i < 16; ++i) island.insert(peers[i]->addr());
  plan.partition("storm-island", island, t0, t0 + 30 * kSecond);
  net.setFaultPlan(&plan);

  auto outcome = std::make_shared<SwarmOutcome>();
  outcome->lookups = kLookups;
  for (std::size_t q = 0; q < kLookups; ++q) {
    simulator.scheduleAt(t0 + q * 2 * kSecond, [&, q] {
      peers[(q * 7) % kPeers]->findValue(keys[q % kItems],
                                         [outcome](overlay::LookupResult r) {
                                           if (r.value) ++outcome->successes;
                                         });
    });
  }
  simulator.run();
  for (const auto& peer : peers) outcome->retries += peer->rpcRetries();
  if (withRetries) {
    EXPECT_EQ(metrics.counter("kad.rpc.retry"), outcome->retries);
  }
  return *outcome;
}

TEST(KademliaFaults, RetriesLiftLookupSuccessUnderDropAndPartition) {
  const SwarmOutcome without = runKademliaUnderFaults(false);
  const SwarmOutcome with = runKademliaUnderFaults(true);
  EXPECT_EQ(without.retries, 0u);
  EXPECT_GT(with.retries, 0u);
  // Absolute bar: with retries the overlay still answers >= 75% of lookups
  // under a 20% storm plus a six-node island that heals mid-run.
  EXPECT_GE(with.successes, (with.lookups * 3) / 4)
      << with.successes << "/" << with.lookups;
  // And the improvement over single-shot RPCs is measurable.
  EXPECT_GT(with.successes, without.successes)
      << "with=" << with.successes << " without=" << without.successes;
}

// --- Corruption: handlers reject cleanly, AEAD never lies ---

TEST(CorruptionFaults, CorruptedPayloadsNeverCrashOrForgeValues) {
  constexpr std::size_t kPeers = 20;
  constexpr std::size_t kItems = 15;

  util::Rng rng(1717);
  sim::Simulator simulator;
  sim::Network net(simulator,
                   sim::LatencyModel{10 * kMillisecond, 5 * kMillisecond, 0.0},
                   rng);
  sim::Metrics metrics;
  net.setMetrics(&metrics);

  KademliaConfig config;
  config.k = 8;
  config.alpha = 3;
  config.rpcTimeout = 250 * kMillisecond;
  config.retry = RetryPolicy{3, 100 * kMillisecond, 2.0};

  std::vector<std::unique_ptr<KademliaNode>> peers;
  for (std::size_t i = 0; i < kPeers; ++i) {
    peers.push_back(
        std::make_unique<KademliaNode>(net, OverlayId::random(rng), config));
  }
  const Contact seed{peers[0]->id(), peers[0]->addr()};
  for (std::size_t i = 1; i < kPeers; ++i) {
    peers[i]->bootstrap(seed);
    simulator.run();
  }

  // Store AEAD-sealed payloads while the network is still clean so the
  // ground truth is well-defined.
  const util::Bytes key = rng.bytes(32);
  std::vector<OverlayId> ids;
  std::vector<util::Bytes> plaintexts;
  for (std::size_t i = 0; i < kItems; ++i) {
    ids.push_back(OverlayId::hash("sealed-" + std::to_string(i)));
    plaintexts.push_back(rng.bytes(64 + i));
    const util::Bytes box = crypto::sealWithNonce(key, plaintexts[i], rng);
    peers[i % kPeers]->store(ids[i], box, {});
    simulator.run();
  }

  // Now every third message gets its bits flipped. Every handler (kad RPCs,
  // codec parsing, AEAD) must reject garbage without crashing, and a fetch
  // that does decrypt must yield the original plaintext.
  FaultPlan plan;
  plan.add(FaultRule::global().corrupt(0.34).drop(0.05));
  net.setFaultPlan(&plan);

  std::size_t opened = 0;
  std::size_t rejected = 0;
  for (int round = 0; round < 4; ++round) {
    for (std::size_t i = 0; i < kItems; ++i) {
      peers[rng.uniform(kPeers)]->findValue(
          ids[i], [&, i](overlay::LookupResult r) {
            if (!r.value) return;
            const auto plain = crypto::openWithNonce(key, *r.value);
            if (!plain) {
              ++rejected;  // corrupted in flight, AEAD refused — correct
              return;
            }
            ++opened;
            EXPECT_EQ(*plain, plaintexts[i]);
          });
      simulator.run();
    }
  }
  EXPECT_GT(metrics.counter("net.corrupted"), 0u);
  EXPECT_GT(opened, 0u);  // the sweep exercised the happy path too
  (void)rejected;
}

// --- Replica store/fetch RPCs: retry/backoff and single-shot failure ---

TEST(ReplicaRpc, StoreFetchRoundTripClean) {
  util::Rng rng(5);
  sim::Simulator simulator;
  sim::Network net(simulator, sim::LatencyModel{10 * kMillisecond, 0, 0.0}, rng);
  overlay::ReplicaHost host(net);
  overlay::ReplicaClient client(net);
  const OverlayId item = OverlayId::hash("item");
  bool stored = false;
  client.store(host.addr(), item, toBytes("hello"), [&](bool ok) { stored = ok; });
  simulator.run();
  EXPECT_TRUE(stored);
  ASSERT_TRUE(host.hasBlock(item));
  EXPECT_EQ(host.store().get(item).value(), toBytes("hello"));
  std::optional<util::Bytes> fetched;
  client.fetch(host.addr(), item, [&](std::optional<util::Bytes> v) {
    fetched = std::move(v);
  });
  simulator.run();
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(*fetched, toBytes("hello"));
  EXPECT_EQ(client.rpcRetries(), 0u);
}

TEST(ReplicaRpc, RetriesRecoverFromLossyHost) {
  util::Rng rng(6);
  sim::Simulator simulator;
  sim::Network net(simulator, sim::LatencyModel{10 * kMillisecond, 0, 0.0}, rng);
  sim::Metrics metrics;
  net.setMetrics(&metrics);
  overlay::ReplicaHost host(net);
  overlay::ReplicaClient client(net, RetryPolicy{6, 100 * kMillisecond, 2.0},
                                200 * kMillisecond);
  FaultPlan plan;
  plan.add(FaultRule::node(host.addr()).drop(0.4));
  net.setFaultPlan(&plan);

  const OverlayId item = OverlayId::hash("flaky");
  int storeCallbacks = 0;
  bool stored = false;
  client.store(host.addr(), item, toBytes("v"), [&](bool ok) {
    ++storeCallbacks;
    stored = ok;
  });
  simulator.run();
  EXPECT_EQ(storeCallbacks, 1);
  EXPECT_TRUE(stored);
  std::optional<util::Bytes> fetched;
  int fetchCallbacks = 0;
  client.fetch(host.addr(), item, [&](std::optional<util::Bytes> v) {
    ++fetchCallbacks;
    fetched = std::move(v);
  });
  simulator.run();
  EXPECT_EQ(fetchCallbacks, 1);
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(*fetched, toBytes("v"));
  EXPECT_GT(client.rpcRetries(), 0u);
  EXPECT_EQ(metrics.counter("repl.rpc.retry"), client.rpcRetries());
}

TEST(ReplicaRpc, SingleShotFailureFiresOnceAtTimeout) {
  util::Rng rng(8);
  sim::Simulator simulator;
  sim::Network net(simulator, sim::LatencyModel{10 * kMillisecond, 0, 0.0}, rng);
  overlay::ReplicaHost host(net);
  overlay::ReplicaClient client(net, RetryPolicy{1},
                                300 * kMillisecond);
  FaultPlan plan;
  plan.add(FaultRule::global().drop(1.0));
  net.setFaultPlan(&plan);

  int callbacks = 0;
  SimTime firedAt = 0;
  bool ok = true;
  client.store(host.addr(), OverlayId::hash("x"), toBytes("v"), [&](bool r) {
    ++callbacks;
    ok = r;
    firedAt = simulator.now();
  });
  simulator.runUntil(100 * kSecond);
  EXPECT_EQ(callbacks, 1);
  EXPECT_FALSE(ok);
  EXPECT_EQ(firedAt, 300 * kMillisecond);
  EXPECT_EQ(client.rpcFailures(), 1u);
}

// --- Single-shot timeout paths: flooding, super-peer, federation ---
// A query whose every probe is dropped must invoke its callback exactly once,
// with nullopt, at the timeout — never twice, never late.

TEST(TimeoutSingleShot, FloodingAllProbesDropped) {
  util::Rng rng(31);
  sim::Simulator simulator;
  sim::Network net(simulator, sim::LatencyModel{10 * kMillisecond, 0, 0.0}, rng);
  overlay::FloodingNode a(net, OverlayId::hash("a"));
  overlay::FloodingNode b(net, OverlayId::hash("b"));
  overlay::linkNodes(a, b);
  b.publish(OverlayId::hash("key"), toBytes("v"));

  FaultPlan plan;
  plan.add(FaultRule::global().drop(1.0));
  net.setFaultPlan(&plan);

  int callbacks = 0;
  std::optional<util::Bytes> result = toBytes("sentinel");
  SimTime firedAt = 0;
  a.search(OverlayId::hash("key"), /*ttl=*/3, /*timeout=*/2 * kSecond,
           [&](std::optional<util::Bytes> v) {
             ++callbacks;
             result = std::move(v);
             firedAt = simulator.now();
           });
  simulator.runUntil(100 * kSecond);
  EXPECT_EQ(callbacks, 1);
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(firedAt, 2 * kSecond);
}

TEST(TimeoutSingleShot, FloodingLateHitDoesNotFireTwice) {
  util::Rng rng(32);
  sim::Simulator simulator;
  sim::Network net(simulator, sim::LatencyModel{10 * kMillisecond, 0, 0.0}, rng);
  overlay::FloodingNode a(net, OverlayId::hash("a"));
  overlay::FloodingNode b(net, OverlayId::hash("b"));
  overlay::linkNodes(a, b);
  const OverlayId key = OverlayId::hash("key");
  b.publish(key, toBytes("v"));

  // The query reaches b normally but b's hit limps home after the timeout.
  FaultPlan plan;
  plan.add(FaultRule::link(b.addr(), a.addr()).delay(3 * kSecond));
  net.setFaultPlan(&plan);

  int callbacks = 0;
  std::optional<util::Bytes> result = toBytes("sentinel");
  a.search(key, /*ttl=*/2, /*timeout=*/1 * kSecond,
           [&](std::optional<util::Bytes> v) {
             ++callbacks;
             result = std::move(v);
           });
  simulator.runUntil(100 * kSecond);  // the late hit arrives around t=3s
  EXPECT_EQ(callbacks, 1);
  EXPECT_FALSE(result.has_value());
}

TEST(TimeoutSingleShot, SuperPeerAllProbesDropped) {
  util::Rng rng(33);
  sim::Simulator simulator;
  sim::Network net(simulator, sim::LatencyModel{10 * kMillisecond, 0, 0.0}, rng);
  overlay::SuperPeer sp(net);
  overlay::LeafPeer owner(net, sp.addr());
  overlay::LeafPeer searcher(net, sp.addr());
  const OverlayId key = OverlayId::hash("key");
  owner.publish(key, toBytes("v"));
  simulator.run();

  FaultPlan plan;
  plan.add(FaultRule::global().drop(1.0));
  net.setFaultPlan(&plan);

  int callbacks = 0;
  std::optional<util::Bytes> result = toBytes("sentinel");
  SimTime firedAt = 0;
  const SimTime start = simulator.now();
  searcher.search(key, /*timeout=*/2 * kSecond,
                  [&](std::optional<util::Bytes> v) {
                    ++callbacks;
                    result = std::move(v);
                    firedAt = simulator.now();
                  });
  simulator.runUntil(start + 100 * kSecond);
  EXPECT_EQ(callbacks, 1);
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(firedAt, start + 2 * kSecond);
}

TEST(TimeoutSingleShot, FederationAllProbesDropped) {
  util::Rng rng(34);
  sim::Simulator simulator;
  sim::Network net(simulator, sim::LatencyModel{10 * kMillisecond, 0, 0.0}, rng);
  overlay::FederationDirectory directory;
  overlay::FederatedServer home(net, directory);
  overlay::FederatedServer remote(net, directory);
  directory.assign("alice", home.addr());
  home.storeLocal("alice", "post", toBytes("v"));

  FaultPlan plan;
  plan.add(FaultRule::global().drop(1.0));
  net.setFaultPlan(&plan);

  int callbacks = 0;
  std::optional<util::Bytes> result = toBytes("sentinel");
  SimTime firedAt = 0;
  remote.query("alice", "post", /*timeout=*/2 * kSecond,
               [&](std::optional<util::Bytes> v) {
                 ++callbacks;
                 result = std::move(v);
                 firedAt = simulator.now();
               });
  simulator.runUntil(100 * kSecond);
  EXPECT_EQ(callbacks, 1);
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(firedAt, 2 * kSecond);
}

}  // namespace
}  // namespace dosn
