// The shared RPC endpoint layer (net/rpc_endpoint.hpp): correlation edge
// cases that every overlay now inherits instead of hand-rolling —
//
//  - a reply arriving after the final timeout is ignored (counted as an
//    orphan), the callback having fired exactly once already;
//  - fault-duplicated replies complete the call exactly once;
//  - a corrupted reply rejected by the channel's validating observer leaves
//    the call pending until the deadline — no crash, no bogus completion;
//  - a retransmission racing a late reply to the first attempt: the late
//    reply completes the call, the second attempt's reply is an orphan;
//  - RetryPolicy's closed-form backoff matches iterated multiplication and
//    clamps at maxBackoff instead of overflowing SimTime;
//  - AdaptiveRetryPolicy grows the attempt budget as observed timeouts
//    accumulate and decays it back on successes;
//  - gossip anti-entropy (the layer that gained retry last) converges under
//    a drop storm, with uniform rpc.gossip.digest.* counters to show for it.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dosn/net/rpc_endpoint.hpp"
#include "dosn/net/retry.hpp"
#include "dosn/overlay/gossip.hpp"
#include "dosn/sim/faults.hpp"
#include "dosn/sim/metrics.hpp"
#include "dosn/sim/network.hpp"
#include "dosn/util/codec.hpp"

namespace dosn {
namespace {

using net::AdaptiveRetryPolicy;
using net::CallOptions;
using net::RetryPolicy;
using net::RpcEndpoint;
using sim::FaultPlan;
using sim::FaultRule;
using sim::kMillisecond;
using sim::kSecond;
using sim::Message;
using sim::NodeAddr;
using sim::SimTime;

class RpcEndpointTest : public ::testing::Test {
 protected:
  static constexpr SimTime kLatency = 50 * kMillisecond;

  util::Rng rng_{7};
  sim::Simulator sim_;
  sim::Network net_{sim_, sim::LatencyModel{kLatency, 0, 0.0}, rng_};
  sim::Metrics metrics_;

  void SetUp() override { net_.setMetrics(&metrics_); }

  /// A raw node that answers every "req" with `copies` "resp" frames echoing
  /// the rpcId, after `extraDelay` of local processing.
  NodeAddr addEchoServer(std::size_t copies = 1, SimTime extraDelay = 0) {
    const NodeAddr addr = net_.addNode();
    net_.setHandler(addr, [this, addr, copies, extraDelay](NodeAddr from,
                                                          const Message& msg) {
      util::Reader r(msg.payload);
      const std::uint64_t id = r.u64();
      sim_.schedule(extraDelay, [this, addr, from, copies, id] {
        for (std::size_t i = 0; i < copies; ++i) {
          util::Writer w;
          w.u64(id);
          w.str("pong");
          net_.send(addr, from, Message{"resp", w.take()});
        }
      });
    });
    return addr;
  }
};

TEST_F(RpcEndpointTest, ReplyAfterTimeoutIsOrphanedAndCallbackFiresOnce) {
  RpcEndpoint client(net_, "test.rpc");
  client.addReplyChannel("resp");
  // Server sits on the reply for 300ms; the call gives up after 150ms.
  const NodeAddr server = addEchoServer(1, 300 * kMillisecond);

  int callbacks = 0;
  bool lastOk = true;
  CallOptions options;
  options.timeout = 150 * kMillisecond;
  client.call(server, "req", util::toBytes("ping"), options,
              [&](bool ok, util::BytesView) {
                ++callbacks;
                lastOk = ok;
              });
  sim_.run();

  EXPECT_EQ(callbacks, 1);
  EXPECT_FALSE(lastOk);
  EXPECT_EQ(client.failures(), 1u);
  EXPECT_EQ(client.pendingCalls(), 0u);
  EXPECT_EQ(metrics_.counter("test.rpc.orphan"), 1u);
  EXPECT_EQ(metrics_.counter("rpc.req.failed"), 1u);
  EXPECT_EQ(metrics_.counter("rpc.req.completed"), 0u);
}

TEST_F(RpcEndpointTest, DuplicateRepliesCompleteOnce) {
  RpcEndpoint client(net_, "test.rpc");
  client.addReplyChannel("resp");
  const NodeAddr server = addEchoServer(/*copies=*/3);

  int callbacks = 0;
  client.call(server, "req", util::toBytes("ping"), CallOptions{},
              [&](bool ok, util::BytesView) {
                ++callbacks;
                EXPECT_TRUE(ok);
              });
  sim_.run();

  EXPECT_EQ(callbacks, 1);
  EXPECT_EQ(metrics_.counter("rpc.req.completed"), 1u);
  EXPECT_EQ(metrics_.counter("test.rpc.orphan"), 2u);  // the two duplicates
}

TEST_F(RpcEndpointTest, CorruptedReplyRejectedByObserverLeavesCallPending) {
  RpcEndpoint client(net_, "test.rpc");
  client.addReplyChannel("resp");
  // The observer insists the body parses as a string; the server below sends
  // a body too short for its declared length.
  client.setReplyObserver("resp", [](NodeAddr, util::BytesView body) {
    util::Reader r(body);
    r.str();
  });
  const NodeAddr server = net_.addNode();
  net_.setHandler(server, [this, server](NodeAddr from, const Message& msg) {
    util::Reader r(msg.payload);
    util::Writer w;
    w.u64(r.u64());
    w.u32(1000);  // declares a 1000-byte string that is not there
    net_.send(server, from, Message{"resp", w.take()});
  });

  int callbacks = 0;
  bool lastOk = true;
  SimTime failedAt = 0;
  CallOptions options;
  options.timeout = 200 * kMillisecond;
  client.call(server, "req", util::toBytes("ping"), options,
              [&](bool ok, util::BytesView) {
                ++callbacks;
                lastOk = ok;
                failedAt = sim_.now();
              });
  sim_.run();

  EXPECT_EQ(callbacks, 1);
  EXPECT_FALSE(lastOk);
  EXPECT_EQ(failedAt, 200 * kMillisecond);  // at the deadline, not the reply
  EXPECT_EQ(metrics_.counter("rpc.req.completed"), 0u);
  EXPECT_EQ(metrics_.counter("rpc.req.timeouts"), 1u);
}

TEST_F(RpcEndpointTest, RetryRacingLateFirstReplyCompletesOnceViaLateReply) {
  RpcEndpoint client(net_, "test.rpc");
  client.addReplyChannel("resp");
  // One-way latency 50ms + 150ms server think time = 250ms round trip; the
  // call times out at 200ms and retransmits after a 40ms backoff (240ms,
  // strictly before the first reply lands). The first attempt's reply then
  // completes the call at 250ms and the second attempt's reply (490ms) must
  // be an orphan.
  const NodeAddr server = addEchoServer(1, 150 * kMillisecond);

  int callbacks = 0;
  bool lastOk = false;
  SimTime completedAt = 0;
  CallOptions options;
  options.timeout = 200 * kMillisecond;
  options.retry.attempts = 3;
  options.retry.backoffBase = 40 * kMillisecond;
  client.call(server, "req", util::toBytes("ping"), options,
              [&](bool ok, util::BytesView) {
                ++callbacks;
                lastOk = ok;
                completedAt = sim_.now();
              });
  sim_.run();

  EXPECT_EQ(callbacks, 1);
  EXPECT_TRUE(lastOk);
  EXPECT_EQ(completedAt, 250 * kMillisecond);
  EXPECT_EQ(client.retries(), 1u);
  EXPECT_EQ(client.failures(), 0u);
  EXPECT_EQ(metrics_.counter("rpc.req.sent"), 2u);
  EXPECT_EQ(metrics_.counter("rpc.req.completed"), 1u);
  EXPECT_EQ(metrics_.counter("test.rpc.orphan"), 1u);  // attempt 2's reply
}

TEST_F(RpcEndpointTest, RttHistogramRecordsCompletedCallsOnly) {
  RpcEndpoint client(net_, "test.rpc");
  client.addReplyChannel("resp");
  const NodeAddr server = addEchoServer();

  client.call(server, "req", util::toBytes("ping"), CallOptions{},
              [](bool, util::BytesView) {});
  sim_.run();

  const auto& rtt = metrics_.histogram("rpc.req.rtt_ms");
  ASSERT_EQ(rtt.count(), 1u);
  EXPECT_DOUBLE_EQ(rtt.mean(), 100.0);  // 2 * 50ms fixed latency
}

// --- RetryPolicy backoff: closed form + clamp ---

TEST(RetryPolicyTest, ClosedFormMatchesIteratedMultiplication) {
  RetryPolicy policy;
  policy.backoffBase = 100 * kMillisecond;
  policy.backoffMultiplier = 2.0;
  SimTime expected = policy.backoffBase;
  for (std::size_t attempt = 1; attempt <= 8; ++attempt) {
    EXPECT_EQ(policy.backoff(attempt), expected) << "attempt " << attempt;
    expected *= 2;
  }
}

TEST(RetryPolicyTest, BackoffClampsAtMaxInsteadOfOverflowing) {
  RetryPolicy policy;
  policy.backoffBase = 100 * kMillisecond;
  policy.backoffMultiplier = 2.0;
  policy.maxBackoff = 60 * kSecond;
  // 2^1000 overflows every integer type; the clamp must win first.
  EXPECT_EQ(policy.backoff(1000), policy.maxBackoff);
  // The crossover attempt: first delay at or past the clamp.
  EXPECT_EQ(policy.backoff(11), 60 * kSecond);  // 100ms * 2^10 = 102.4s
  EXPECT_EQ(policy.backoff(10), SimTime{100 * kMillisecond} * 512);
  // Degenerate multipliers cannot smuggle NaN/inf through the cast.
  RetryPolicy weird;
  weird.backoffBase = 0;
  weird.backoffMultiplier = 1e308;
  EXPECT_LE(weird.backoff(50), weird.maxBackoff);
}

TEST(RetryPolicyTest, ZeroJitterConsumesNoRngDraws) {
  RetryPolicy policy;
  policy.backoffBase = 100 * kMillisecond;
  // Same-seeded rngs: if the zero-jitter path drew anything, the second rng
  // would desynchronize from the first and the next draws would differ —
  // which would silently reshuffle every existing fixed-seed experiment.
  util::Rng a(99);
  util::Rng b(99);
  for (std::size_t attempt = 1; attempt <= 4; ++attempt) {
    EXPECT_EQ(policy.backoff(attempt, a), policy.backoff(attempt));
  }
  EXPECT_EQ(a.next(), b.next());
}

TEST(RetryPolicyTest, JitteredBackoffStaysInBoundsAndIsSeedDeterministic) {
  RetryPolicy policy;
  policy.backoffBase = 100 * kMillisecond;
  policy.backoffMultiplier = 2.0;
  policy.jitterFraction = 0.3;
  util::Rng rng(7);
  util::Rng replay(7);
  bool sawJitter = false;
  for (std::size_t attempt = 1; attempt <= 6; ++attempt) {
    const SimTime flat = policy.backoff(attempt);
    const SimTime jittered = policy.backoff(attempt, rng);
    EXPECT_GE(jittered, static_cast<SimTime>(static_cast<double>(flat) * 0.7) - 1);
    EXPECT_LE(jittered, static_cast<SimTime>(static_cast<double>(flat) * 1.3) + 1);
    EXPECT_LE(jittered, policy.maxBackoff);
    if (jittered != flat) sawJitter = true;
    // Deterministic per seed: a same-seeded replay produces the same delay.
    EXPECT_EQ(policy.backoff(attempt, replay), jittered);
  }
  EXPECT_TRUE(sawJitter);
  // At the clamp, jitter scales downward from maxBackoff (spreading even the
  // saturated cohort) but can never exceed it.
  const SimTime clamped = policy.backoff(1000, rng);
  EXPECT_LE(clamped, policy.maxBackoff);
  EXPECT_GE(clamped,
            static_cast<SimTime>(static_cast<double>(policy.maxBackoff) * 0.7) - 1);
}

// --- AdaptiveRetryPolicy ---

TEST(AdaptiveRetryPolicyTest, BudgetGrowsWithTimeoutsAndDecaysWithSuccesses) {
  AdaptiveRetryPolicy::Config config;
  config.maxAttempts = 6;
  config.targetResidualFailure = 0.01;
  AdaptiveRetryPolicy adaptive(config);

  EXPECT_EQ(adaptive.attempts(), 1u);  // nothing observed: base budget
  EXPECT_DOUBLE_EQ(adaptive.timeoutRate(), 0.0);

  for (int i = 0; i < 50; ++i) adaptive.observeAttempt(true);
  EXPECT_GT(adaptive.timeoutRate(), 0.8);
  EXPECT_EQ(adaptive.attempts(), config.maxAttempts);  // rate^n never meets 1%
  EXPECT_EQ(adaptive.current().attempts, config.maxAttempts);

  for (int i = 0; i < 100; ++i) adaptive.observeAttempt(false);
  EXPECT_LT(adaptive.timeoutRate(), 0.01);
  EXPECT_EQ(adaptive.attempts(), 1u);  // healthy again: budget shrinks back
  EXPECT_EQ(adaptive.observedAttempts(), 150u);
}

TEST(AdaptiveRetryPolicyTest, ModerateLossPicksIntermediateBudget) {
  AdaptiveRetryPolicy adaptive;
  // Alternate 1 timeout : 4 successes -> EWMA settles near 20%.
  for (int i = 0; i < 200; ++i) adaptive.observeAttempt(i % 5 == 0);
  const double rate = adaptive.timeoutRate();
  EXPECT_GT(rate, 0.05);
  EXPECT_LT(rate, 0.45);
  // smallest n with rate^n <= 0.01 for rate in (0.05, 0.45) is 2 or 3.
  EXPECT_GE(adaptive.attempts(), 2u);
  EXPECT_LE(adaptive.attempts(), 3u);
}

// --- Gossip over the endpoint: anti-entropy retry under loss ---

TEST(GossipRetryTest, AntiEntropyConvergesUnderDropStormWithRetries) {
  util::Rng rng(1234);
  sim::Simulator sim;
  sim::Network net(sim, sim::LatencyModel{10 * kMillisecond, 0, 0.0}, rng);
  sim::Metrics metrics;
  net.setMetrics(&metrics);
  FaultPlan plan;
  plan.add(FaultRule::global().drop(0.35));
  net.setFaultPlan(&plan);

  overlay::GossipConfig config;
  config.interval = 200 * kMillisecond;
  config.fanout = 2;
  config.rpcTimeout = 100 * kMillisecond;
  config.retry.attempts = 4;
  config.retry.backoffBase = 20 * kMillisecond;

  std::vector<std::unique_ptr<overlay::GossipNode>> nodes;
  for (int i = 0; i < 8; ++i) {
    nodes.push_back(std::make_unique<overlay::GossipNode>(net, config));
  }
  std::vector<NodeAddr> addrs;
  for (const auto& n : nodes) addrs.push_back(n->addr());
  for (const auto& n : nodes) n->setPeers(addrs);

  const overlay::OverlayId key = overlay::OverlayId::hash("post");
  nodes[0]->put(key, util::toBytes("hello"), 1);
  for (const auto& n : nodes) n->start();
  sim.schedule(30 * kSecond, [&] {
    for (const auto& n : nodes) n->stop();
  });
  sim.run();

  std::size_t have = 0;
  for (const auto& n : nodes) {
    if (n->get(key)) ++have;
  }
  EXPECT_EQ(have, nodes.size()) << "anti-entropy did not converge";

  // The uniform rpc.* surface exists and shows retry work under the storm.
  EXPECT_GT(metrics.counter("rpc.gossip.digest.sent"), 0u);
  EXPECT_GT(metrics.counter("rpc.gossip.digest.retries"), 0u);
  EXPECT_GT(metrics.counter("rpc.gossip.digest.completed"), 0u);
  EXPECT_GT(metrics.histogram("rpc.gossip.digest.rtt_ms").count(), 0u);
  std::uint64_t retries = 0;
  for (const auto& n : nodes) retries += n->rpcRetries();
  EXPECT_GT(retries, 0u);
}

}  // namespace
}  // namespace dosn
