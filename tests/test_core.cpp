// Tests for the core facade: the scheme registry / Table I generator and the
// DosnNode end-to-end flow.
#include <gtest/gtest.h>

#include "dosn/core/node.hpp"
#include "dosn/core/registry.hpp"
#include "dosn/core/table1.hpp"
#include "dosn/privacy/abe_acl.hpp"
#include "dosn/privacy/hybrid_acl.hpp"
#include "dosn/privacy/ibbe_acl.hpp"
#include "dosn/privacy/symmetric_acl.hpp"
#include "dosn/util/error.hpp"

namespace dosn::core {
namespace {

const pkcrypto::DlogGroup& testGroup() {
  return pkcrypto::DlogGroup::cached(256);
}

// --- Registry / Table I ---

TEST(Registry, CoversAllTableOneRows) {
  const auto& registry = schemeRegistry();
  // The paper's Table I has 13 rows: 6 privacy, 3 integrity, 4 search.
  EXPECT_EQ(registry.size(), 13u);
  std::size_t privacy = 0;
  std::size_t integrity = 0;
  std::size_t search = 0;
  for (const SchemeInfo& info : registry) {
    switch (info.category) {
      case Category::kDataPrivacy: ++privacy; break;
      case Category::kDataIntegrity: ++integrity; break;
      case Category::kSecureSocialSearch: ++search; break;
    }
    EXPECT_FALSE(info.aspect.empty());
    EXPECT_FALSE(info.module.empty());
    EXPECT_FALSE(info.detail.empty());
  }
  EXPECT_EQ(privacy, 6u);
  EXPECT_EQ(integrity, 3u);
  EXPECT_EQ(search, 4u);
}

TEST(Registry, RowsMatchPaperLabels) {
  const auto& registry = schemeRegistry();
  const std::vector<std::string> expected = {
      "Information substitution",
      "Symmetric key encryption",
      "Public key encryption",
      "Attribute based encryption",
      "Identity based broadcast encryption",
      "Hybrid encryption",
      "Integrity of data owner and data content",
      "Historical integrity",
      "Integrity of data relations",
      "Content privacy",
      "Privacy of searcher",
      "Privacy of searched data owner",
      "Trusted search result",
  };
  ASSERT_EQ(registry.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(registry[i].aspect, expected[i]) << "row " << i;
  }
}

TEST(Table1, RenderContainsEveryRowAndCategory) {
  const std::string table = renderTable1();
  for (const SchemeInfo& info : schemeRegistry()) {
    EXPECT_NE(table.find(info.aspect), std::string::npos) << info.aspect;
  }
  EXPECT_NE(table.find("Data privacy"), std::string::npos);
  EXPECT_NE(table.find("Data integrity"), std::string::npos);
  EXPECT_NE(table.find("Secure Social Search"), std::string::npos);
  EXPECT_NE(table.find("TABLE I"), std::string::npos);
}

TEST(Table1, InventoryListsModules) {
  const std::string inventory = renderImplementationInventory();
  EXPECT_NE(inventory.find("dosn/privacy/symmetric_acl"), std::string::npos);
  EXPECT_NE(inventory.find("dosn/search/trust_rank"), std::string::npos);
}

// --- DosnNode end-to-end ---

class DosnNodeTest : public ::testing::Test {
 protected:
  util::Rng rng_{42};
  social::IdentityRegistry registry_;
  privacy::SymmetricAcl acl_{rng_};
};

TEST_F(DosnNodeTest, PublishAndFriendReads) {
  DosnNode alice(testGroup(), "alice", registry_, acl_, rng_);
  DosnNode bob(testGroup(), "bob", registry_, acl_, rng_);
  alice.createCircle("friends");
  alice.addToCircle("friends", "bob");
  alice.publish("friends", "hello friends", 100, rng_);

  const auto post = bob.read(alice, 0);
  ASSERT_TRUE(post.has_value());
  EXPECT_EQ(post->text, "hello friends");
  EXPECT_EQ(post->author, "alice");
}

TEST_F(DosnNodeTest, NonMemberCannotRead) {
  DosnNode alice(testGroup(), "alice", registry_, acl_, rng_);
  DosnNode bob(testGroup(), "bob", registry_, acl_, rng_);
  DosnNode eve(testGroup(), "eve", registry_, acl_, rng_);
  alice.createCircle("friends");
  alice.addToCircle("friends", "bob");
  alice.publish("friends", "secret", 100, rng_);
  EXPECT_TRUE(bob.read(alice, 0).has_value());
  EXPECT_FALSE(eve.read(alice, 0).has_value());
}

TEST_F(DosnNodeTest, OwnerAlwaysReadsOwnPosts) {
  DosnNode alice(testGroup(), "alice", registry_, acl_, rng_);
  alice.createCircle("empty");
  alice.publish("empty", "note to self", 1, rng_);
  EXPECT_TRUE(alice.read(alice, 0).has_value());
}

TEST_F(DosnNodeTest, RevokedFriendLosesAccess) {
  DosnNode alice(testGroup(), "alice", registry_, acl_, rng_);
  DosnNode bob(testGroup(), "bob", registry_, acl_, rng_);
  alice.createCircle("friends");
  alice.addToCircle("friends", "bob");
  alice.publish("friends", "p1", 1, rng_);
  const auto report = alice.removeFromCircle("friends", "bob");
  EXPECT_EQ(report.reencryptedEnvelopes, 1u);  // symmetric scheme re-encrypts
  alice.publish("friends", "p2", 2, rng_);
  EXPECT_FALSE(bob.read(alice, 0).has_value());
  EXPECT_FALSE(bob.read(alice, 1).has_value());
  EXPECT_TRUE(alice.read(alice, 1).has_value());
}

TEST_F(DosnNodeTest, CannotRevokeOwner) {
  DosnNode alice(testGroup(), "alice", registry_, acl_, rng_);
  alice.createCircle("c");
  EXPECT_THROW(alice.removeFromCircle("c", "alice"), util::DosnError);
}

TEST_F(DosnNodeTest, TimelineChainsAllPublishes) {
  DosnNode alice(testGroup(), "alice", registry_, acl_, rng_);
  DosnNode bob(testGroup(), "bob", registry_, acl_, rng_);
  alice.createCircle("friends");
  alice.addToCircle("friends", "bob");
  for (int i = 0; i < 4; ++i) {
    alice.publish("friends", "post " + std::to_string(i),
                  static_cast<social::Timestamp>(i), rng_);
  }
  EXPECT_EQ(alice.timeline().size(), 4u);
  EXPECT_TRUE(bob.verifyTimelineOf(alice));
}

TEST_F(DosnNodeTest, WorksWithHybridAcl) {
  privacy::HybridAcl hybrid(testGroup(), rng_, privacy::WrapScheme::kPublicKey);
  DosnNode alice(testGroup(), "alice", registry_, hybrid, rng_);
  DosnNode bob(testGroup(), "bob", registry_, hybrid, rng_);
  alice.createCircle("inner");
  alice.addToCircle("inner", "bob");
  alice.publish("inner", "hybrid-sealed", 9, rng_);
  const auto post = bob.read(alice, 0);
  ASSERT_TRUE(post.has_value());
  EXPECT_EQ(post->text, "hybrid-sealed");
}

TEST_F(DosnNodeTest, ReadOutOfRangeFails) {
  DosnNode alice(testGroup(), "alice", registry_, acl_, rng_);
  DosnNode bob(testGroup(), "bob", registry_, acl_, rng_);
  EXPECT_FALSE(bob.read(alice, 0).has_value());
}

TEST_F(DosnNodeTest, WorksWithIbbeAcl) {
  privacy::IbbeAcl ibbe(testGroup(), rng_);
  DosnNode alice(testGroup(), "alice2", registry_, ibbe, rng_);
  DosnNode bob(testGroup(), "bob2", registry_, ibbe, rng_);
  DosnNode eve(testGroup(), "eve2", registry_, ibbe, rng_);
  alice.createCircle("inner");
  alice.addToCircle("inner", "bob2");
  alice.publish("inner", "ibbe-sealed", 5, rng_);
  EXPECT_EQ(bob.read(alice, 0)->text, "ibbe-sealed");
  EXPECT_FALSE(eve.read(alice, 0).has_value());
  // IBBE revocation is free and forward-effective.
  const auto report = alice.removeFromCircle("inner", "bob2");
  EXPECT_EQ(report.keyOperations, 0u);
  alice.publish("inner", "after", 6, rng_);
  EXPECT_FALSE(bob.read(alice, 1).has_value());
}

TEST_F(DosnNodeTest, WorksWithAbeAcl) {
  privacy::AbeAcl abe(testGroup(), rng_);
  DosnNode alice(testGroup(), "alice3", registry_, abe, rng_);
  DosnNode bob(testGroup(), "bob3", registry_, abe, rng_);
  alice.createCircle("family");
  alice.addToCircle("family", "bob3");
  alice.publish("family", "abe-sealed", 5, rng_);
  EXPECT_EQ(bob.read(alice, 0)->text, "abe-sealed");
  // ABE revocation bumps the attribute epoch and re-encrypts history.
  const auto report = alice.removeFromCircle("family", "bob3");
  EXPECT_EQ(report.reencryptedEnvelopes, 1u);
  EXPECT_FALSE(bob.read(alice, 0).has_value());
  EXPECT_TRUE(alice.read(alice, 0).has_value());
}

TEST_F(DosnNodeTest, CircleNamespacesAreIsolatedBetweenUsers) {
  DosnNode alice(testGroup(), "alice", registry_, acl_, rng_);
  DosnNode bob(testGroup(), "bob", registry_, acl_, rng_);
  alice.createCircle("friends");
  bob.createCircle("friends");  // same name, different namespace
  alice.addToCircle("friends", "carol");
  EXPECT_FALSE(acl_.isMember("bob/friends", "carol"));
  EXPECT_TRUE(acl_.isMember("alice/friends", "carol"));
}

}  // namespace
}  // namespace dosn::core
