// Tests for the social substrate: identities, graph, generators, content.
#include <gtest/gtest.h>

#include "dosn/social/content.hpp"
#include "dosn/social/graph.hpp"
#include "dosn/social/graph_gen.hpp"
#include "dosn/social/identity.hpp"

namespace dosn::social {
namespace {

const pkcrypto::DlogGroup& testGroup() {
  return pkcrypto::DlogGroup::cached(256);
}

// --- identity ---

TEST(Identity, KeyringHasAllMaterial) {
  util::Rng rng(1);
  const Keyring k = createKeyring(testGroup(), "alice", rng);
  EXPECT_EQ(k.user, "alice");
  EXPECT_EQ(k.masterSymmetric.size(), 32u);
  EXPECT_FALSE(k.signing.x.isZero());
  EXPECT_FALSE(k.encryption.x.isZero());
}

TEST(Identity, RegistryLookup) {
  util::Rng rng(2);
  IdentityRegistry registry;
  const Keyring alice = createKeyring(testGroup(), "alice", rng);
  registry.registerIdentity(publicIdentity(alice));
  EXPECT_TRUE(registry.contains("alice"));
  EXPECT_FALSE(registry.contains("bob"));
  const auto found = registry.lookup("alice");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->signingKey.y, alice.signing.pub.y);
  EXPECT_FALSE(registry.lookup("bob").has_value());
}

// --- graph ---

TEST(Graph, FriendshipBasics) {
  SocialGraph g;
  g.addFriendship("alice", "bob", 0.8);
  EXPECT_TRUE(g.areFriends("alice", "bob"));
  EXPECT_TRUE(g.areFriends("bob", "alice"));
  EXPECT_DOUBLE_EQ(g.trust("alice", "bob").value(), 0.8);
  EXPECT_DOUBLE_EQ(g.trust("bob", "alice").value(), 0.8);
  EXPECT_FALSE(g.areFriends("alice", "carol"));
  EXPECT_FALSE(g.trust("alice", "carol").has_value());
}

TEST(Graph, InvalidEdgesRejected) {
  SocialGraph g;
  EXPECT_THROW(g.addFriendship("a", "a"), std::invalid_argument);
  EXPECT_THROW(g.addFriendship("a", "b", 1.5), std::invalid_argument);
  EXPECT_THROW(g.addFriendship("a", "b", -0.1), std::invalid_argument);
}

TEST(Graph, RemoveFriendship) {
  SocialGraph g;
  g.addFriendship("a", "b");
  g.removeFriendship("a", "b");
  EXPECT_FALSE(g.areFriends("a", "b"));
  EXPECT_EQ(g.edgeCount(), 0u);
}

TEST(Graph, SetTrust) {
  SocialGraph g;
  g.addFriendship("a", "b", 0.5);
  g.setTrust("a", "b", 0.9);
  EXPECT_DOUBLE_EQ(g.trust("b", "a").value(), 0.9);
  EXPECT_THROW(g.setTrust("a", "c", 0.5), std::invalid_argument);
}

TEST(Graph, FriendsOfFriends) {
  SocialGraph g;
  g.addFriendship("a", "b");
  g.addFriendship("b", "c");
  g.addFriendship("a", "d");
  const auto fof = g.friendsOfFriends("a");
  EXPECT_EQ(fof, (std::set<UserId>{"c"}));
}

TEST(Graph, Distance) {
  SocialGraph g;
  g.addFriendship("a", "b");
  g.addFriendship("b", "c");
  g.addFriendship("c", "d");
  g.addUser("isolated");
  EXPECT_EQ(g.distance("a", "a").value(), 0u);
  EXPECT_EQ(g.distance("a", "b").value(), 1u);
  EXPECT_EQ(g.distance("a", "d").value(), 3u);
  EXPECT_FALSE(g.distance("a", "isolated").has_value());
  EXPECT_FALSE(g.distance("a", "ghost").has_value());
}

TEST(Graph, DegreeAndCounts) {
  SocialGraph g;
  g.addFriendship("hub", "a");
  g.addFriendship("hub", "b");
  g.addFriendship("hub", "c");
  EXPECT_EQ(g.degree("hub"), 3u);
  EXPECT_EQ(g.degree("a"), 1u);
  EXPECT_EQ(g.degree("ghost"), 0u);
  EXPECT_EQ(g.edgeCount(), 3u);
  EXPECT_EQ(g.userCount(), 4u);
}

// --- generators ---

TEST(GraphGen, ErdosRenyiEdgeCount) {
  util::Rng rng(5);
  const SocialGraph g = erdosRenyi(50, 0.1, rng);
  EXPECT_EQ(g.userCount(), 50u);
  // E[edges] = C(50,2) * 0.1 = 122.5; allow generous slack.
  EXPECT_GT(g.edgeCount(), 70u);
  EXPECT_LT(g.edgeCount(), 180u);
}

TEST(GraphGen, WattsStrogatzDegreePreserved) {
  util::Rng rng(6);
  const SocialGraph g = wattsStrogatz(40, 3, 0.1, rng);
  EXPECT_EQ(g.userCount(), 40u);
  // Rewiring preserves total edge count: n*k.
  EXPECT_EQ(g.edgeCount(), 120u);
}

TEST(GraphGen, WattsStrogatzZeroBetaIsLattice) {
  util::Rng rng(7);
  const SocialGraph g = wattsStrogatz(20, 2, 0.0, rng);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(g.degree(syntheticUser(i)), 4u) << i;
  }
}

TEST(GraphGen, BarabasiAlbertHubsEmerge) {
  util::Rng rng(8);
  const SocialGraph g = barabasiAlbert(200, 2, rng);
  EXPECT_EQ(g.userCount(), 200u);
  std::size_t maxDegree = 0;
  for (const UserId& u : g.users()) maxDegree = std::max(maxDegree, g.degree(u));
  // Preferential attachment must produce hubs well above the minimum degree.
  EXPECT_GT(maxDegree, 10u);
}

TEST(GraphGen, TrustWithinBounds) {
  util::Rng rng(9);
  const SocialGraph g = erdosRenyi(20, 0.3, rng, 0.5);
  for (const UserId& u : g.users()) {
    for (const UserId& f : g.friendsOf(u)) {
      const double t = g.trust(u, f).value();
      EXPECT_GE(t, 0.5);
      EXPECT_LE(t, 1.0);
    }
  }
}

TEST(GraphGen, BadParamsThrow) {
  util::Rng rng(10);
  EXPECT_THROW(wattsStrogatz(4, 2, 0.1, rng), std::invalid_argument);
  EXPECT_THROW(barabasiAlbert(3, 0, rng), std::invalid_argument);
  EXPECT_THROW(barabasiAlbert(2, 2, rng), std::invalid_argument);
}

// --- content ---

TEST(Content, PostSerializationRoundTrip) {
  Post post{"alice", 7, 123456, "hello world"};
  const auto back = Post::deserialize(post.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, post);
}

TEST(Content, CommentSerializationRoundTrip) {
  Comment comment{"bob", 7, 99, "nice post"};
  const auto back = Comment::deserialize(comment.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, comment);
}

TEST(Content, ProfileSerializationRoundTrip) {
  Profile profile{"carol", {{"name", "Carol"}, {"city", "Istanbul"}}};
  const auto back = Profile::deserialize(profile.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, profile);
}

TEST(Content, MalformedBytesRejected) {
  EXPECT_FALSE(Post::deserialize(util::toBytes("x")).has_value());
  EXPECT_FALSE(Comment::deserialize(util::toBytes("")).has_value());
  EXPECT_FALSE(Profile::deserialize(util::toBytes("yy")).has_value());
}

TEST(Content, SerializationIsCanonical) {
  Post a{"alice", 1, 2, "t"};
  Post b{"alice", 1, 2, "t"};
  EXPECT_EQ(a.serialize(), b.serialize());
  b.text = "u";
  EXPECT_NE(a.serialize(), b.serialize());
}

}  // namespace
}  // namespace dosn::social
