// Unit tests for dosn/crypto against published test vectors (FIPS 180-4,
// RFC 4231, RFC 5869, RFC 8439) plus behavioural/property tests.
#include <gtest/gtest.h>

#include "dosn/crypto/aead.hpp"
#include "dosn/crypto/chacha20.hpp"
#include "dosn/crypto/hkdf.hpp"
#include "dosn/crypto/hmac.hpp"
#include "dosn/crypto/merkle.hpp"
#include "dosn/crypto/poly1305.hpp"
#include "dosn/crypto/sha256.hpp"
#include "dosn/util/error.hpp"

namespace dosn::crypto {
namespace {

using util::Bytes;
using util::fromHex;
using util::toBytes;
using util::toHex;

std::string hexDigest(const Digest& d) { return toHex(util::BytesView(d)); }

// --- SHA-256 ---

TEST(Sha256, EmptyString) {
  EXPECT_EQ(hexDigest(sha256({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hexDigest(sha256(toBytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(
      hexDigest(sha256(toBytes(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, FourBlockMessage) {
  // The 896-bit NIST message (FIPS 180-4 §A / SHA-2 test corpus).
  EXPECT_EQ(
      hexDigest(sha256(toBytes(
          "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno"
          "ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"))),
      "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hexDigest(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShot) {
  const Bytes data = toBytes("the quick brown fox jumps over the lazy dog");
  Sha256 h;
  for (std::size_t i = 0; i < data.size(); ++i) {
    h.update(util::BytesView(&data[i], 1));
  }
  EXPECT_EQ(h.finish(), sha256(data));
}

TEST(Sha256, BoundaryLengths) {
  // Padding edge cases: 55, 56, 63, 64, 65 bytes.
  for (std::size_t len : {55u, 56u, 63u, 64u, 65u}) {
    const Bytes data(len, 'x');
    Sha256 streaming;
    streaming.update(util::BytesView(data.data(), len / 2));
    streaming.update(util::BytesView(data.data() + len / 2, len - len / 2));
    EXPECT_EQ(streaming.finish(), sha256(data)) << "len=" << len;
  }
}

TEST(Sha256, FinishTwiceThrows) {
  Sha256 h;
  h.update(toBytes("x"));
  h.finish();
  EXPECT_THROW(h.finish(), util::CryptoError);
}

// --- HMAC-SHA256 (RFC 4231) ---

TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(hexDigest(hmacSha256(key, toBytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(
      hexDigest(hmacSha256(toBytes("Jefe"),
                           toBytes("what do ya want for nothing?"))),
      "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes msg(50, 0xdd);
  EXPECT_EQ(hexDigest(hmacSha256(key, msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231Case4CombinedKeyAndData) {
  Bytes key;
  for (std::uint8_t b = 0x01; b <= 0x19; ++b) key.push_back(b);
  const Bytes msg(50, 0xcd);
  EXPECT_EQ(hexDigest(hmacSha256(key, msg)),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(
      hexDigest(hmacSha256(
          key, toBytes("Test Using Larger Than Block-Size Key - Hash Key First"))),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, Rfc4231Case7LongKeyLongData) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(
      hexDigest(hmacSha256(
          key,
          toBytes("This is a test using a larger than block-size key and a "
                  "larger than block-size data. The key needs to be hashed "
                  "before being used by the HMAC algorithm."))),
      "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
}

TEST(Hmac, VerifyDetectsTamper) {
  const Bytes key = toBytes("k");
  const Bytes msg = toBytes("m");
  const Digest tag = hmacSha256(key, msg);
  EXPECT_TRUE(verifyHmacSha256(key, msg, util::BytesView(tag)));
  Digest bad = tag;
  bad[0] ^= 1;
  EXPECT_FALSE(verifyHmacSha256(key, msg, util::BytesView(bad)));
  EXPECT_FALSE(verifyHmacSha256(key, toBytes("m2"), util::BytesView(tag)));
}

// --- HKDF (RFC 5869) ---

TEST(Hkdf, Rfc5869Case1) {
  const Bytes ikm(22, 0x0b);
  const Bytes salt = *fromHex("000102030405060708090a0b0c");
  const Bytes info = *fromHex("f0f1f2f3f4f5f6f7f8f9");
  const Bytes okm = hkdf(ikm, salt, info, 42);
  EXPECT_EQ(toHex(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hkdf, Rfc5869Case2LongInputs) {
  // 80-byte IKM/salt/info and an output spanning three expand blocks — the
  // only published vector exercising the T(n-1) chaining across rounds.
  Bytes ikm, salt, info;
  for (int b = 0x00; b <= 0x4f; ++b) ikm.push_back(static_cast<std::uint8_t>(b));
  for (int b = 0x60; b <= 0xaf; ++b) salt.push_back(static_cast<std::uint8_t>(b));
  for (int b = 0xb0; b <= 0xff; ++b) info.push_back(static_cast<std::uint8_t>(b));
  const Bytes okm = hkdf(ikm, salt, info, 82);
  EXPECT_EQ(toHex(okm),
            "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c"
            "59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71"
            "cc30c58179ec3e87c14c01d5c1f3434f1d87");
}

TEST(Hkdf, Rfc5869Case3NoSaltNoInfo) {
  const Bytes ikm(22, 0x0b);
  const Bytes okm = hkdf(ikm, {}, {}, 42);
  EXPECT_EQ(toHex(okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(Hkdf, LengthLimit) {
  EXPECT_THROW(hkdfExpand(Bytes(32, 1), {}, 255 * 32 + 1), util::CryptoError);
  EXPECT_EQ(hkdfExpand(Bytes(32, 1), {}, 255 * 32).size(), 255u * 32u);
}

TEST(Hkdf, DeriveKeyDomainSeparation) {
  const Bytes secret = toBytes("secret");
  EXPECT_NE(deriveKey(secret, "a"), deriveKey(secret, "b"));
  EXPECT_EQ(deriveKey(secret, "a"), deriveKey(secret, "a"));
  EXPECT_EQ(deriveKey(secret, "a").size(), 32u);
}

// --- ChaCha20 (RFC 8439 §2.4.2) ---

TEST(ChaCha20, Rfc8439Encryption) {
  const Bytes key = *fromHex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const Bytes nonce = *fromHex("000000000000004a00000000");
  const std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you only "
      "one tip for the future, sunscreen would be it.";
  const Bytes ct = chacha20Xor(key, nonce, 1, toBytes(plaintext));
  EXPECT_EQ(toHex(util::BytesView(ct.data(), 16)),
            "6e2e359a2568f98041ba0728dd0d6981");
  // Decryption is the same operation.
  EXPECT_EQ(chacha20Xor(key, nonce, 1, ct), toBytes(plaintext));
}

TEST(ChaCha20, Rfc8439AppendixA1KeystreamBlock) {
  // Appendix A.1 test vector #1: all-zero key, nonce and counter. XORing
  // zeros exposes the raw first keystream block.
  const Bytes zeros(64, 0x00);
  EXPECT_EQ(toHex(chacha20Xor(Bytes(32, 0), Bytes(12, 0), 0, zeros)),
            "76b8e0ada0f13d90405d6ae55386bd28bdd219b8a08ded1aa836efcc8b770dc7"
            "da41597c5157488d7724e03fb8d84a376a43b8f41518a11cc387b669b2ee6586");
}

TEST(ChaCha20, RejectsBadKeyNonce) {
  EXPECT_THROW(chacha20Xor(Bytes(31, 0), Bytes(12, 0), 0, {}),
               util::CryptoError);
  EXPECT_THROW(chacha20Xor(Bytes(32, 0), Bytes(11, 0), 0, {}),
               util::CryptoError);
}

// --- Poly1305 (RFC 8439 §2.5.2) ---

TEST(Poly1305, Rfc8439Vector) {
  const Bytes key = *fromHex(
      "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
  const PolyTag tag =
      poly1305(key, toBytes("Cryptographic Forum Research Group"));
  EXPECT_EQ(toHex(util::BytesView(tag)), "a8061dc1305136c6c22b8baf0c0127a9");
}

TEST(Poly1305, Rfc8439AppendixA3DegenerateKeys) {
  // Vector #1: r = s = 0 forces a zero tag for any message.
  const PolyTag zeroTag = poly1305(Bytes(32, 0), Bytes(64, 0));
  EXPECT_EQ(toHex(util::BytesView(zeroTag)), "00000000000000000000000000000000");
  // Vector #2: r = 0 makes the polynomial vanish, so the tag is exactly s —
  // for the RFC's 375-byte message or any other.
  Bytes key(16, 0x00);
  const Bytes s = *fromHex("36e5f6b5c5e06070f0efca96227a863e");
  key.insert(key.end(), s.begin(), s.end());
  const PolyTag tag =
      poly1305(key, toBytes("Any submission to the IETF intended by the "
                            "Contributor for publication"));
  EXPECT_EQ(toHex(util::BytesView(tag)), toHex(s));
}

// --- AEAD (RFC 8439 §2.8.2) ---

TEST(Aead, Rfc8439SealVector) {
  const Bytes key = *fromHex(
      "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f");
  const Bytes nonce = *fromHex("070000004041424344454647");
  const Bytes aad = *fromHex("50515253c0c1c2c3c4c5c6c7");
  const std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you only "
      "one tip for the future, sunscreen would be it.";
  const Bytes sealed = aeadSeal(key, nonce, toBytes(plaintext), aad);
  // Tag from the RFC.
  EXPECT_EQ(toHex(util::BytesView(sealed).last(16)),
            "1ae10b594f09e26a7e902ecbd0600691");
  const auto opened = aeadOpen(key, nonce, sealed, aad);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, toBytes(plaintext));
}

TEST(Aead, TamperDetected) {
  util::Rng rng(5);
  const Bytes key = rng.bytes(32);
  const Bytes nonce = rng.bytes(12);
  Bytes sealed = aeadSeal(key, nonce, toBytes("attack at dawn"));
  sealed[3] ^= 1;
  EXPECT_FALSE(aeadOpen(key, nonce, sealed).has_value());
}

TEST(Aead, WrongAadRejected) {
  util::Rng rng(5);
  const Bytes key = rng.bytes(32);
  const Bytes nonce = rng.bytes(12);
  const Bytes sealed = aeadSeal(key, nonce, toBytes("msg"), toBytes("aad1"));
  EXPECT_FALSE(aeadOpen(key, nonce, sealed, toBytes("aad2")).has_value());
  EXPECT_TRUE(aeadOpen(key, nonce, sealed, toBytes("aad1")).has_value());
}

TEST(Aead, WithNonceRoundTrip) {
  util::Rng rng(6);
  const Bytes key = rng.bytes(32);
  const Bytes box = sealWithNonce(key, toBytes("hello"), rng);
  EXPECT_EQ(openWithNonce(key, box).value(), toBytes("hello"));
  EXPECT_FALSE(openWithNonce(rng.bytes(32), box).has_value());
  EXPECT_FALSE(openWithNonce(key, Bytes(10, 0)).has_value());
}

TEST(Aead, EmptyPlaintext) {
  util::Rng rng(7);
  const Bytes key = rng.bytes(32);
  const Bytes box = sealWithNonce(key, {}, rng);
  EXPECT_EQ(openWithNonce(key, box).value(), Bytes{});
}

// --- Merkle tree ---

TEST(Merkle, SingleLeaf) {
  MerkleTree tree({toBytes("only")});
  EXPECT_EQ(tree.leafCount(), 1u);
  EXPECT_TRUE(merkleVerify(tree.root(), toBytes("only"), tree.prove(0)));
}

TEST(Merkle, ProofsVerifyForAllLeaves) {
  std::vector<Bytes> leaves;
  for (int i = 0; i < 9; ++i) leaves.push_back(toBytes("leaf" + std::to_string(i)));
  MerkleTree tree(leaves);
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    EXPECT_TRUE(merkleVerify(tree.root(), leaves[i], tree.prove(i))) << i;
  }
}

TEST(Merkle, WrongLeafFails) {
  MerkleTree tree({toBytes("a"), toBytes("b"), toBytes("c")});
  EXPECT_FALSE(merkleVerify(tree.root(), toBytes("x"), tree.prove(1)));
}

TEST(Merkle, ProofForWrongPositionFails) {
  MerkleTree tree({toBytes("a"), toBytes("b"), toBytes("c"), toBytes("d")});
  EXPECT_FALSE(merkleVerify(tree.root(), toBytes("a"), tree.prove(1)));
}

TEST(Merkle, RootChangesWithContent) {
  MerkleTree t1({toBytes("a"), toBytes("b")});
  MerkleTree t2({toBytes("a"), toBytes("c")});
  MerkleTree t3({toBytes("b"), toBytes("a")});
  EXPECT_NE(t1.root(), t2.root());
  EXPECT_NE(t1.root(), t3.root());  // order matters
}

TEST(Merkle, LeafNodeDomainSeparation) {
  // A leaf equal to an inner-node encoding must not produce the same hash.
  const Digest leaf = merkleLeafHash(toBytes("x"));
  Digest a{};
  Digest b{};
  EXPECT_NE(merkleNodeHash(a, b), merkleLeafHash(util::Bytes{0x01}));
  EXPECT_NE(leaf, merkleNodeHash(leaf, leaf));
}

TEST(Merkle, OutOfRangeProofThrows) {
  MerkleTree tree({toBytes("a")});
  EXPECT_THROW(tree.prove(1), util::DosnError);
}

class MerkleParam : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MerkleParam, AllProofsVerifyAtSize) {
  const std::size_t n = GetParam();
  std::vector<Bytes> leaves;
  for (std::size_t i = 0; i < n; ++i) {
    leaves.push_back(toBytes("item-" + std::to_string(i)));
  }
  MerkleTree tree(leaves);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(merkleVerify(tree.root(), leaves[i], tree.prove(i)))
        << "n=" << n << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleParam,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 15, 16, 33));

}  // namespace
}  // namespace dosn::crypto
