// Differential tests for the Montgomery/CIOS fast path (bignum/montgomery):
// powMod vs the retained powModSimple reference across widths and edge
// moduli, CRT-RSA vs the plain private-key path, fixed-base tables vs
// generic exponentiation, and KATs pinning the private-key wire format
// (including the pre-CRT legacy layout).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "dosn/bignum/modmath.hpp"
#include "dosn/bignum/montgomery.hpp"
#include "dosn/bignum/prime.hpp"
#include "dosn/pkcrypto/group.hpp"
#include "dosn/pkcrypto/rsa.hpp"
#include "dosn/util/error.hpp"
#include "dosn/util/rng.hpp"

namespace {

using dosn::bignum::BigUint;
using dosn::bignum::FixedBasePowerTable;
using dosn::bignum::MontgomeryContext;
using dosn::bignum::powMod;
using dosn::bignum::powModSimple;
using dosn::bignum::randomBits;
using dosn::util::Rng;

// Pinned serialization of rsaGenerate(128, Rng(20260805)) — regenerate only
// on a deliberate, versioned format change.
constexpr const char* kExpectedFullHex =
    "100000009aa2d13bc3c988637f4360909b1a8519030000000100011000000068f2fdec"
    "80f9c38d2cbc503d78690cf108000000b790d4da0465c53508000000d7a79ac9c795b0"
    "d508000000465c1d39f3b58e81080000000275439b672dfa9d08000000394aa3aa185b"
    "0e23";
constexpr const char* kExpectedLegacyHex =
    "100000009aa2d13bc3c988637f4360909b1a8519030000000100011000000068f2fdec"
    "80f9c38d2cbc503d78690cf1";

// Odd modulus with exactly `bits` bits, deterministic per (bits, rng state).
BigUint oddModulus(std::size_t bits, Rng& rng) {
  BigUint m = randomBits(bits, rng);
  if (m.isEven()) m += BigUint(1);
  return m;
}

TEST(Montgomery, RejectsEvenAndTrivialModuli) {
  EXPECT_THROW(MontgomeryContext(BigUint(0)), dosn::util::DosnError);
  EXPECT_THROW(MontgomeryContext(BigUint(1)), dosn::util::DosnError);
  EXPECT_THROW(MontgomeryContext(BigUint(10)), dosn::util::DosnError);
  EXPECT_NO_THROW(MontgomeryContext(BigUint(3)));
}

TEST(Montgomery, RoundTripThroughDomain) {
  Rng rng(7);
  const BigUint m = oddModulus(256, rng);
  const MontgomeryContext ctx(m);
  for (int i = 0; i < 20; ++i) {
    const BigUint x = randomBits(250, rng) % m;
    EXPECT_EQ(ctx.fromMont(ctx.toMont(x)), x);
  }
  EXPECT_EQ(ctx.fromMont(ctx.one()), BigUint(1));
}

TEST(Montgomery, MulModMatchesReference) {
  Rng rng(11);
  for (const std::size_t bits : {8u, 63u, 64u, 65u, 127u, 128u, 129u, 512u}) {
    const BigUint m = oddModulus(bits, rng);
    const MontgomeryContext ctx(m);
    for (int i = 0; i < 10; ++i) {
      const BigUint a = randomBits(bits + 10, rng);
      const BigUint b = randomBits(bits, rng);
      EXPECT_EQ(ctx.mulMod(a, b), dosn::bignum::mulMod(a, b, m))
          << "bits=" << bits;
    }
  }
}

// The heart of the differential suite: the dispatching powMod (Montgomery
// for odd m) must agree with the retained reference everywhere, including
// the 64/128-bit word boundaries where CIOS carry chains are most fragile.
TEST(Montgomery, PowModMatchesSimpleAcrossWidths) {
  Rng rng(13);
  for (const std::size_t bits :
       {8u, 32u, 63u, 64u, 65u, 127u, 128u, 129u, 255u, 384u, 512u}) {
    const BigUint m = oddModulus(bits, rng);
    for (int i = 0; i < 6; ++i) {
      const BigUint base = randomBits(bits + 16, rng);  // also base >= m
      const BigUint e = randomBits(1 + (i * 37) % 200, rng);
      EXPECT_EQ(powMod(base, e, m), powModSimple(base, e, m))
          << "bits=" << bits << " i=" << i;
    }
  }
}

TEST(Montgomery, PowModEdgeCases) {
  const BigUint m(3);
  EXPECT_EQ(powMod(BigUint(5), BigUint(7), m),
            powModSimple(BigUint(5), BigUint(7), m));
  // 2^255 - 19: the Shamir field prime used throughout policy/.
  const BigUint p25519 = (BigUint(1) << 255) - BigUint(19);
  Rng rng(17);
  const BigUint base = randomBits(260, rng);
  const BigUint e = randomBits(254, rng);
  EXPECT_EQ(powMod(base, e, p25519), powModSimple(base, e, p25519));
  // Exponent 0 and 1; zero base.
  EXPECT_EQ(powMod(base, BigUint(0), p25519), BigUint(1));
  EXPECT_EQ(powMod(base, BigUint(1), p25519), base % p25519);
  EXPECT_EQ(powMod(BigUint(0), e, p25519), BigUint(0));
}

TEST(Montgomery, EvenModulusStillDispatches) {
  Rng rng(19);
  BigUint m = randomBits(96, rng);
  if (m.isOdd()) m += BigUint(1);
  const BigUint base = randomBits(100, rng);
  const BigUint e = randomBits(40, rng);
  EXPECT_EQ(powMod(base, e, m), powModSimple(base, e, m));
}

TEST(FixedBase, MatchesGenericPow) {
  Rng rng(23);
  const BigUint m = oddModulus(256, rng);
  const BigUint g = randomBits(200, rng) % m;
  const FixedBasePowerTable table(g, m, 256);
  EXPECT_EQ(table.maxExponentBits(), 256u);
  for (int i = 0; i < 20; ++i) {
    const BigUint e = randomBits(1 + (i * 13) % 256, rng);
    EXPECT_EQ(table.pow(e), powModSimple(g, e, m)) << "i=" << i;
  }
  EXPECT_EQ(table.pow(BigUint(0)), BigUint(1));
  EXPECT_EQ(table.pow(BigUint(1)), g % m);
}

TEST(FixedBase, WideExponentFallsBack) {
  Rng rng(29);
  const BigUint m = oddModulus(128, rng);
  const BigUint g = randomBits(100, rng) % m;
  const FixedBasePowerTable table(g, m, 64);
  const BigUint wide = randomBits(200, rng);  // wider than the table
  EXPECT_EQ(table.pow(wide), powModSimple(g, wide, m));
}

TEST(FixedBase, CachedTableIsStableAndShared) {
  const auto& group = dosn::pkcrypto::DlogGroup::cached(256);
  const auto& t1 = dosn::pkcrypto::fixedBasePowerTable(
      group.g(), group.p(), group.p().bitLength());
  const auto& t2 = dosn::pkcrypto::fixedBasePowerTable(
      group.g(), group.p(), group.p().bitLength());
  EXPECT_EQ(&t1, &t2);  // same entry, reference stable across lookups
  Rng rng(31);
  const BigUint e = randomBits(250, rng) % group.q();
  EXPECT_EQ(group.exp(e), powModSimple(group.g(), e, group.p()));
}

TEST(CrtRsa, SignAndDecryptMatchPlainPath) {
  Rng rng(37);
  const auto key = dosn::pkcrypto::rsaGenerate(512, rng);
  ASSERT_TRUE(key.hasCrt());
  const auto plain = key.withoutCrt();
  ASSERT_FALSE(plain.hasCrt());
  for (int i = 0; i < 8; ++i) {
    const BigUint x = randomBits(500, rng) % key.pub.n;
    EXPECT_EQ(dosn::pkcrypto::rsaRawPrivate(key, x),
              dosn::pkcrypto::rsaRawPrivate(plain, x))
        << "i=" << i;
  }
  // End-to-end: CRT-signed verifies, and equals the plain-path signature.
  const auto msg = dosn::util::toBytes("crt differential message");
  const auto sig = dosn::pkcrypto::rsaSign(key, msg);
  EXPECT_EQ(sig, dosn::pkcrypto::rsaSign(plain, msg));
  EXPECT_TRUE(dosn::pkcrypto::rsaVerify(key.pub, msg, sig));
  // And decryption agrees with the plain path.
  const auto ct = dosn::pkcrypto::rsaEncrypt(key.pub,
                                             dosn::util::toBytes("hi"), rng);
  const auto viaCrt = dosn::pkcrypto::rsaDecrypt(key, ct);
  const auto viaPlain = dosn::pkcrypto::rsaDecrypt(plain, ct);
  ASSERT_TRUE(viaCrt.has_value());
  ASSERT_TRUE(viaPlain.has_value());
  EXPECT_EQ(*viaCrt, *viaPlain);
}

TEST(CrtRsa, CrtParamsSatisfyDefinitions) {
  Rng rng(41);
  const auto key = dosn::pkcrypto::rsaGenerate(256, rng);
  EXPECT_EQ(key.p * key.q, key.pub.n);
  EXPECT_EQ(key.dP, key.d % (key.p - BigUint(1)));
  EXPECT_EQ(key.dQ, key.d % (key.q - BigUint(1)));
  EXPECT_EQ(dosn::bignum::mulMod(key.qInv, key.q, key.p), BigUint(1));
}

TEST(CrtRsa, SerializationRoundTripsWithAndWithoutCrt) {
  Rng rng(43);
  const auto key = dosn::pkcrypto::rsaGenerate(256, rng);

  const auto full = dosn::pkcrypto::RsaPrivateKey::deserialize(key.serialize());
  EXPECT_TRUE(full.hasCrt());
  EXPECT_EQ(full.pub.n, key.pub.n);
  EXPECT_EQ(full.d, key.d);
  EXPECT_EQ(full.p, key.p);
  EXPECT_EQ(full.qInv, key.qInv);

  // A key serialized without the CRT tail (the pre-CRT wire format) must
  // deserialize as a working plain-path key.
  const auto legacy =
      dosn::pkcrypto::RsaPrivateKey::deserialize(key.withoutCrt().serialize());
  EXPECT_FALSE(legacy.hasCrt());
  const BigUint x = randomBits(200, rng) % key.pub.n;
  EXPECT_EQ(dosn::pkcrypto::rsaRawPrivate(legacy, x),
            dosn::pkcrypto::rsaRawPrivate(key, x));
}

// KAT: the serialized private-key bytes for a fixed seed are pinned, so a
// format change (field order, optional-tail handling) cannot slip through
// unnoticed and orphan stored keys.
TEST(CrtRsa, SerializedKeyFormatKat) {
  Rng rng(20260805);
  const auto key = dosn::pkcrypto::rsaGenerate(128, rng);
  const std::string fullHex = dosn::util::toHex(key.serialize());
  const std::string legacyHex = dosn::util::toHex(key.withoutCrt().serialize());
  EXPECT_EQ(fullHex, kExpectedFullHex);
  EXPECT_EQ(legacyHex, kExpectedLegacyHex);
  // The legacy serialization is a strict prefix of the full one: the CRT
  // tail is purely additive, which is the whole back-compat argument.
  ASSERT_LE(legacyHex.size(), fullHex.size());
  EXPECT_EQ(fullHex.substr(0, legacyHex.size()), legacyHex);
}

}  // namespace
