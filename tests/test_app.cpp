// Integration tests for the decentralized microblog: full-stack flows over
// the simulated DHT (publish -> replicate -> fetch -> verify -> decrypt),
// including malicious-replica tampering.
#include <gtest/gtest.h>

#include <memory>

#include "dosn/app/microblog.hpp"
#include "dosn/privacy/symmetric_acl.hpp"

namespace dosn::app {
namespace {

using overlay::Contact;
using overlay::OverlayId;
using sim::kMillisecond;

class MicroblogTest : public ::testing::Test {
 protected:
  MicroblogTest() {
    // A small DHT substrate of plain peers for replication.
    for (int i = 0; i < 12; ++i) {
      peers_.push_back(std::make_unique<overlay::KademliaNode>(
          net_, OverlayId::random(rng_)));
    }
    seed_ = Contact{peers_[0]->id(), peers_[0]->addr()};
    for (std::size_t i = 1; i < peers_.size(); ++i) {
      peers_[i]->bootstrap(seed_);
      sim_.run();
    }
    alice_ = makeNode("alice");
    bob_ = makeNode("bob");
    eve_ = makeNode("eve");
  }

  std::unique_ptr<MicroblogNode> makeNode(const std::string& user) {
    auto node = std::make_unique<MicroblogNode>(
        net_, OverlayId::random(rng_), group_, user, registry_, acl_, rng_);
    node->join(seed_);
    sim_.run();
    return node;
  }

  util::Rng rng_{42};
  sim::Simulator sim_;
  sim::Network net_{sim_, sim::LatencyModel{5 * kMillisecond, 2 * kMillisecond, 0.0},
                    rng_};
  const pkcrypto::DlogGroup& group_ = pkcrypto::DlogGroup::cached(256);
  social::IdentityRegistry registry_;
  privacy::SymmetricAcl acl_{rng_};
  std::vector<std::unique_ptr<overlay::KademliaNode>> peers_;
  Contact seed_;
  std::unique_ptr<MicroblogNode> alice_;
  std::unique_ptr<MicroblogNode> bob_;
  std::unique_ptr<MicroblogNode> eve_;
};

TEST_F(MicroblogTest, PublishFetchDecrypt) {
  alice_->createCircle("friends");
  alice_->addToCircle("friends", "bob");
  bool published = false;
  alice_->publish("friends", "first!", 1, rng_, [&](bool ok) { published = ok; });
  sim_.run();
  EXPECT_TRUE(published);
  alice_->publish("friends", "second", 2, rng_);
  sim_.run();

  FetchedTimeline fetched;
  bob_->fetchTimeline("alice", [&](FetchedTimeline t) { fetched = std::move(t); });
  sim_.run();
  EXPECT_TRUE(fetched.headValid);
  EXPECT_TRUE(fetched.chainValid);
  ASSERT_EQ(fetched.posts.size(), 2u);
  EXPECT_EQ(fetched.posts[0].text, "first!");
  EXPECT_EQ(fetched.posts[1].text, "second");
  EXPECT_EQ(fetched.undecryptable, 0u);
}

TEST_F(MicroblogTest, NonMemberSeesCiphertextOnly) {
  alice_->createCircle("friends");
  alice_->addToCircle("friends", "bob");
  alice_->publish("friends", "secret plan", 1, rng_);
  sim_.run();

  FetchedTimeline fetched;
  eve_->fetchTimeline("alice", [&](FetchedTimeline t) { fetched = std::move(t); });
  sim_.run();
  // Eve can verify integrity (public) but decrypt nothing (confidential).
  EXPECT_TRUE(fetched.chainValid);
  EXPECT_TRUE(fetched.posts.empty());
  EXPECT_EQ(fetched.undecryptable, 1u);
}

TEST_F(MicroblogTest, UnknownAuthorFails) {
  FetchedTimeline fetched;
  fetched.headValid = true;
  bob_->fetchTimeline("nobody", [&](FetchedTimeline t) { fetched = std::move(t); });
  sim_.run();
  EXPECT_FALSE(fetched.headValid);
}

TEST_F(MicroblogTest, EmptyTimelineFetches) {
  // Alice never published: no head record exists in the DHT.
  FetchedTimeline fetched;
  fetched.headValid = true;
  bob_->fetchTimeline("alice", [&](FetchedTimeline t) { fetched = std::move(t); });
  sim_.run();
  EXPECT_FALSE(fetched.headValid);  // nothing stored yet
}

TEST_F(MicroblogTest, TamperedReplicaDetected) {
  alice_->createCircle("friends");
  alice_->addToCircle("friends", "bob");
  alice_->publish("friends", "genuine", 1, rng_);
  sim_.run();

  // A malicious replica set overwrites entry 0 with forged bytes (store is
  // unauthenticated at the DHT layer — the chain must catch it).
  TimelineRecord forged;
  forged.entry.seq = 0;
  forged.entry.payload = util::toBytes("forged");
  forged.envelope.scheme = "symmetric";
  forged.envelope.group = "alice/friends";
  forged.envelope.serial = 999;
  forged.envelope.blob = util::toBytes("junk");
  peers_[3]->store(MicroblogNode::entryKey("alice", 0), forged.serialize());
  sim_.run();

  FetchedTimeline fetched;
  bob_->fetchTimeline("alice", [&](FetchedTimeline t) { fetched = std::move(t); });
  sim_.run();
  EXPECT_TRUE(fetched.headValid);
  EXPECT_FALSE(fetched.chainValid);
  EXPECT_TRUE(fetched.posts.empty());
}

TEST_F(MicroblogTest, ForgedHeadRejected) {
  alice_->createCircle("friends");
  alice_->publish("friends", "post", 1, rng_);
  sim_.run();

  // A forger (without alice's key) plants a head record claiming 5 entries.
  HeadRecord fake;
  fake.length = 5;
  fake.headHash = crypto::sha256(util::toBytes("nope"));
  const auto forgerKey = pkcrypto::schnorrGenerate(group_, rng_);
  fake.signature =
      pkcrypto::schnorrSign(group_, forgerKey, fake.signedBytes(), rng_);
  peers_[5]->store(MicroblogNode::headKey("alice"), fake.serialize());
  sim_.run();

  FetchedTimeline fetched;
  fetched.chainValid = true;
  bob_->fetchTimeline("alice", [&](FetchedTimeline t) { fetched = std::move(t); });
  sim_.run();
  // Depending on which replica answers, bob sees either the genuine head
  // (valid chain) or the forged head (rejected signature) — never a forged
  // timeline accepted as valid.
  if (fetched.headValid) {
    EXPECT_TRUE(fetched.chainValid);
    EXPECT_LE(fetched.posts.size(), 1u);
  } else {
    EXPECT_FALSE(fetched.chainValid);
  }
}

TEST_F(MicroblogTest, RecordSerializationRoundTrips) {
  HeadRecord head;
  head.length = 7;
  head.headHash = crypto::sha256(util::toBytes("x"));
  const auto key = pkcrypto::schnorrGenerate(group_, rng_);
  head.signature = pkcrypto::schnorrSign(group_, key, head.signedBytes(), rng_);
  const auto headBack = HeadRecord::deserialize(head.serialize());
  ASSERT_TRUE(headBack.has_value());
  EXPECT_EQ(headBack->length, 7u);
  EXPECT_EQ(headBack->headHash, head.headHash);
  EXPECT_FALSE(HeadRecord::deserialize(util::toBytes("junk")).has_value());
  EXPECT_FALSE(TimelineRecord::deserialize(util::toBytes("junk")).has_value());
}

}  // namespace
}  // namespace dosn::app
