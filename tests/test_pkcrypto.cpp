// Tests for dosn/pkcrypto: group, RSA, ElGamal, Schnorr (signatures +
// interactive ZKP), DH, OPRF, blind RSA. Uses the cached 256-bit test group
// and 512-bit RSA so the suite stays fast on one core.
#include <gtest/gtest.h>

#include "dosn/bignum/modmath.hpp"
#include "dosn/bignum/prime.hpp"
#include "dosn/pkcrypto/blind_rsa.hpp"
#include "dosn/pkcrypto/dh.hpp"
#include "dosn/pkcrypto/elgamal.hpp"
#include "dosn/pkcrypto/group.hpp"
#include "dosn/pkcrypto/oprf.hpp"
#include "dosn/pkcrypto/rsa.hpp"
#include "dosn/pkcrypto/schnorr.hpp"
#include "dosn/util/error.hpp"

namespace dosn::pkcrypto {
namespace {

using util::toBytes;

const DlogGroup& testGroup() { return DlogGroup::cached(256); }

// --- DlogGroup ---

TEST(Group, CachedParametersAreValid) {
  util::Rng rng(1);
  for (std::size_t bits : {256u, 512u}) {
    const DlogGroup& g = DlogGroup::cached(bits);
    EXPECT_EQ(g.p().bitLength(), bits);
    // p = 2q + 1.
    EXPECT_EQ((g.q() << 1) + bignum::BigUint(1), g.p());
    EXPECT_TRUE(bignum::isProbablePrime(g.p(), rng, 8));
    EXPECT_TRUE(bignum::isProbablePrime(g.q(), rng, 8));
    // The generator has order q.
    EXPECT_TRUE(g.isElement(g.g()));
    EXPECT_EQ(g.exp(g.g(), g.q()), bignum::BigUint(1));
  }
}

TEST(Group, Rfc1024GroupLoads) {
  const DlogGroup& g = DlogGroup::cached(1024);
  EXPECT_EQ(g.p().bitLength(), 1024u);
  EXPECT_TRUE(g.isElement(g.g()));
}

TEST(Group, UnsupportedSizeThrows) {
  EXPECT_THROW(DlogGroup::cached(333), util::CryptoError);
}

TEST(Group, ExpMulInvConsistent) {
  util::Rng rng(2);
  const DlogGroup& g = testGroup();
  const auto a = g.randomScalar(rng);
  const auto b = g.randomScalar(rng);
  // g^a * g^b == g^(a+b mod q)
  const auto lhs = g.mul(g.exp(a), g.exp(b));
  const auto rhs = g.exp(bignum::addMod(a, b, g.q()));
  EXPECT_EQ(lhs, rhs);
  // x * x^-1 == 1
  const auto x = g.exp(a);
  EXPECT_EQ(g.mul(x, g.inv(x)), bignum::BigUint(1));
}

TEST(Group, HashToGroupProducesElements) {
  const DlogGroup& g = testGroup();
  for (const char* input : {"", "alice", "#hashtag", "x"}) {
    EXPECT_TRUE(g.isElement(g.hashToGroup(toBytes(input)))) << input;
  }
  EXPECT_NE(g.hashToGroup(toBytes("a")), g.hashToGroup(toBytes("b")));
}

TEST(Group, IsElementRejectsNonMembers) {
  const DlogGroup& g = testGroup();
  EXPECT_FALSE(g.isElement(bignum::BigUint(0)));
  EXPECT_FALSE(g.isElement(g.p()));
  // A generator of the full group (order 2q) is not in the q-subgroup;
  // p-1 has order 2.
  EXPECT_FALSE(g.isElement(g.p() - bignum::BigUint(1)));
}

TEST(Group, IsElementMatchesEulerCriterion) {
  // The safe-prime fast path answers membership with a Jacobi symbol;
  // differential-test it against the full Euler-criterion exponentiation the
  // slow path uses, on members (squares), their complements, and arbitrary
  // candidates.
  util::Rng rng(7);
  const DlogGroup& g = testGroup();
  ASSERT_EQ((g.q() << 1) + bignum::BigUint(1), g.p());  // fast path active
  for (int i = 0; i < 32; ++i) {
    const auto candidate = bignum::randomUnit(g.p(), rng);
    const bool viaEuler =
        bignum::powMod(candidate, g.q(), g.p()) == bignum::BigUint(1);
    EXPECT_EQ(g.isElement(candidate), viaEuler) << candidate.toHex();
    // x^2 is always a residue; -x^2 never is when p ≡ 3 (mod 4).
    const auto square = bignum::mulMod(candidate, candidate, g.p());
    EXPECT_TRUE(g.isElement(square));
    EXPECT_FALSE(g.isElement(g.p() - square));
  }
}

// --- RSA ---

class RsaTest : public ::testing::Test {
 protected:
  util::Rng rng_{42};
  RsaPrivateKey key_ = rsaGenerate(512, rng_);
};

TEST_F(RsaTest, EncryptDecryptRoundTrip) {
  const util::Bytes msg = toBytes("top secret message");
  const util::Bytes ct = rsaEncrypt(key_.pub, msg, rng_);
  EXPECT_EQ(ct.size(), key_.pub.modulusBytes());
  EXPECT_EQ(rsaDecrypt(key_, ct).value(), msg);
}

TEST_F(RsaTest, EncryptionIsRandomized) {
  const util::Bytes msg = toBytes("same message");
  EXPECT_NE(rsaEncrypt(key_.pub, msg, rng_), rsaEncrypt(key_.pub, msg, rng_));
}

TEST_F(RsaTest, TamperedCiphertextRejected) {
  util::Bytes ct = rsaEncrypt(key_.pub, toBytes("hello"), rng_);
  ct[ct.size() / 2] ^= 1;
  EXPECT_FALSE(rsaDecrypt(key_, ct).has_value());
}

TEST_F(RsaTest, WrongKeyRejected) {
  const RsaPrivateKey other = rsaGenerate(512, rng_);
  const util::Bytes ct = rsaEncrypt(key_.pub, toBytes("hello"), rng_);
  EXPECT_FALSE(rsaDecrypt(other, ct).has_value());
}

TEST_F(RsaTest, PlaintextTooLongThrows) {
  const util::Bytes big(key_.pub.modulusBytes(), 0x41);
  EXPECT_THROW(rsaEncrypt(key_.pub, big, rng_), util::CryptoError);
}

TEST_F(RsaTest, MaximumLengthPlaintext) {
  const std::size_t maxLen = key_.pub.modulusBytes() - 2 * 16 - 2;
  const util::Bytes msg(maxLen, 0x5a);
  EXPECT_EQ(rsaDecrypt(key_, rsaEncrypt(key_.pub, msg, rng_)).value(), msg);
}

TEST_F(RsaTest, SignVerify) {
  const util::Bytes msg = toBytes("signed statement");
  const util::Bytes sig = rsaSign(key_, msg);
  EXPECT_TRUE(rsaVerify(key_.pub, msg, sig));
  EXPECT_FALSE(rsaVerify(key_.pub, toBytes("other"), sig));
  util::Bytes bad = sig;
  bad[0] ^= 1;
  EXPECT_FALSE(rsaVerify(key_.pub, msg, bad));
}

TEST_F(RsaTest, PublicKeySerializationRoundTrip) {
  const util::Bytes ser = key_.pub.serialize();
  const RsaPublicKey back = RsaPublicKey::deserialize(ser);
  EXPECT_EQ(back.n, key_.pub.n);
  EXPECT_EQ(back.e, key_.pub.e);
}

TEST_F(RsaTest, RawRoundTrip) {
  const bignum::BigUint x(123456789);
  EXPECT_EQ(rsaRawPublic(key_.pub, rsaRawPrivate(key_, x)), x);
}

// --- ElGamal ---

TEST(ElGamal, ElementRoundTrip) {
  util::Rng rng(7);
  const DlogGroup& g = testGroup();
  const auto key = elgamalGenerate(g, rng);
  const bignum::BigUint m = g.exp(g.randomScalar(rng));  // random element
  const auto ct = elgamalEncryptElement(g, key.pub, m, rng);
  EXPECT_EQ(elgamalDecryptElement(g, key, ct), m);
}

TEST(ElGamal, ElementHomomorphism) {
  util::Rng rng(8);
  const DlogGroup& g = testGroup();
  const auto key = elgamalGenerate(g, rng);
  const bignum::BigUint m1 = g.exp(bignum::BigUint(11));
  const bignum::BigUint m2 = g.exp(bignum::BigUint(13));
  const auto c1 = elgamalEncryptElement(g, key.pub, m1, rng);
  const auto c2 = elgamalEncryptElement(g, key.pub, m2, rng);
  const ElGamalElementCiphertext prod{g.mul(c1.c1, c2.c1), g.mul(c1.c2, c2.c2)};
  EXPECT_EQ(elgamalDecryptElement(g, key, prod), g.mul(m1, m2));
}

TEST(ElGamal, BytesRoundTrip) {
  util::Rng rng(9);
  const DlogGroup& g = testGroup();
  const auto key = elgamalGenerate(g, rng);
  const util::Bytes msg = toBytes("arbitrary length plaintext, longer than an element");
  const util::Bytes ct = elgamalEncrypt(g, key.pub, msg, rng);
  EXPECT_EQ(elgamalDecrypt(g, key, ct).value(), msg);
}

TEST(ElGamal, BytesWrongKeyFails) {
  util::Rng rng(10);
  const DlogGroup& g = testGroup();
  const auto key = elgamalGenerate(g, rng);
  const auto other = elgamalGenerate(g, rng);
  const util::Bytes ct = elgamalEncrypt(g, key.pub, toBytes("m"), rng);
  EXPECT_FALSE(elgamalDecrypt(g, other, ct).has_value());
}

TEST(ElGamal, MalformedCiphertextRejected) {
  util::Rng rng(11);
  const DlogGroup& g = testGroup();
  const auto key = elgamalGenerate(g, rng);
  EXPECT_FALSE(elgamalDecrypt(g, key, toBytes("garbage")).has_value());
}

// --- Schnorr signatures ---

TEST(Schnorr, SignVerify) {
  util::Rng rng(12);
  const DlogGroup& g = testGroup();
  const auto key = schnorrGenerate(g, rng);
  const auto sig = schnorrSign(g, key, toBytes("message"), rng);
  EXPECT_TRUE(schnorrVerify(g, key.pub, toBytes("message"), sig));
  EXPECT_FALSE(schnorrVerify(g, key.pub, toBytes("other"), sig));
}

TEST(Schnorr, WrongKeyFails) {
  util::Rng rng(13);
  const DlogGroup& g = testGroup();
  const auto key = schnorrGenerate(g, rng);
  const auto other = schnorrGenerate(g, rng);
  const auto sig = schnorrSign(g, key, toBytes("m"), rng);
  EXPECT_FALSE(schnorrVerify(g, other.pub, toBytes("m"), sig));
}

TEST(Schnorr, TamperedSignatureFails) {
  util::Rng rng(14);
  const DlogGroup& g = testGroup();
  const auto key = schnorrGenerate(g, rng);
  auto sig = schnorrSign(g, key, toBytes("m"), rng);
  sig.s = bignum::addMod(sig.s, bignum::BigUint(1), g.q());
  EXPECT_FALSE(schnorrVerify(g, key.pub, toBytes("m"), sig));
}

TEST(Schnorr, SerializationRoundTrip) {
  util::Rng rng(15);
  const DlogGroup& g = testGroup();
  const auto key = schnorrGenerate(g, rng);
  const auto sig = schnorrSign(g, key, toBytes("m"), rng);
  const auto back = SchnorrSignature::deserialize(sig.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(schnorrVerify(g, key.pub, toBytes("m"), *back));
  EXPECT_FALSE(SchnorrSignature::deserialize(toBytes("junk")).has_value());
}

// --- Interactive Schnorr identification (the §V-B ZKP) ---

TEST(SchnorrZkp, HonestProverAccepted) {
  util::Rng rng(16);
  const DlogGroup& g = testGroup();
  const auto key = schnorrGenerate(g, rng);
  for (int round = 0; round < 5; ++round) {
    SchnorrProver prover(g, key, rng);
    SchnorrVerifier verifier(g, key.pub, prover.commitment(), rng);
    EXPECT_TRUE(verifier.check(prover.respond(verifier.challenge())));
  }
}

TEST(SchnorrZkp, ImpostorRejected) {
  util::Rng rng(17);
  const DlogGroup& g = testGroup();
  const auto key = schnorrGenerate(g, rng);
  const auto impostor = schnorrGenerate(g, rng);
  // The impostor runs the protocol with its own secret against the honest
  // public key: must fail.
  SchnorrProver prover(g, impostor, rng);
  SchnorrVerifier verifier(g, key.pub, prover.commitment(), rng);
  EXPECT_FALSE(verifier.check(prover.respond(verifier.challenge())));
}

TEST(SchnorrZkp, NonInteractiveProofBindsContext) {
  util::Rng rng(18);
  const DlogGroup& g = testGroup();
  const auto key = schnorrGenerate(g, rng);
  const auto proof = schnorrProve(g, key, toBytes("resource-A"), rng);
  EXPECT_TRUE(schnorrProofVerify(g, key.pub, toBytes("resource-A"), proof));
  // Replaying the proof in a different context must fail.
  EXPECT_FALSE(schnorrProofVerify(g, key.pub, toBytes("resource-B"), proof));
}

TEST(SchnorrZkp, ProofSerializationRoundTrip) {
  util::Rng rng(19);
  const DlogGroup& g = testGroup();
  const auto key = schnorrGenerate(g, rng);
  const auto proof = schnorrProve(g, key, toBytes("ctx"), rng);
  const auto back = SchnorrProof::deserialize(proof.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(schnorrProofVerify(g, key.pub, toBytes("ctx"), *back));
}

// --- DH ---

TEST(Dh, SharedKeyAgrees) {
  util::Rng rng(20);
  const DlogGroup& g = testGroup();
  const auto alice = dhGenerate(g, rng);
  const auto bob = dhGenerate(g, rng);
  EXPECT_EQ(dhSharedKey(g, alice, bob.open), dhSharedKey(g, bob, alice.open));
}

TEST(Dh, DifferentPeersDifferentKeys) {
  util::Rng rng(21);
  const DlogGroup& g = testGroup();
  const auto alice = dhGenerate(g, rng);
  const auto bob = dhGenerate(g, rng);
  const auto carol = dhGenerate(g, rng);
  EXPECT_NE(dhSharedKey(g, alice, bob.open), dhSharedKey(g, alice, carol.open));
}

TEST(Dh, RejectsNonElement) {
  util::Rng rng(22);
  const DlogGroup& g = testGroup();
  const auto alice = dhGenerate(g, rng);
  EXPECT_THROW(dhSharedKey(g, alice, g.p() - bignum::BigUint(1)),
               util::CryptoError);
}

// --- OPRF ---

TEST(Oprf, ObliviousMatchesDirect) {
  util::Rng rng(23);
  const DlogGroup& g = testGroup();
  const OprfSender sender(g, rng);
  for (const char* input : {"#music", "#privacy", ""}) {
    OprfReceiver receiver(g, toBytes(input), rng);
    const auto reply = sender.evaluateBlinded(receiver.blinded());
    EXPECT_EQ(receiver.finalize(reply), sender.evaluate(toBytes(input)))
        << input;
  }
}

TEST(Oprf, DifferentInputsDifferentOutputs) {
  util::Rng rng(24);
  const DlogGroup& g = testGroup();
  const OprfSender sender(g, rng);
  EXPECT_NE(sender.evaluate(toBytes("a")), sender.evaluate(toBytes("b")));
}

TEST(Oprf, DifferentSecretsDifferentOutputs) {
  util::Rng rng(25);
  const DlogGroup& g = testGroup();
  const OprfSender s1(g, rng);
  const OprfSender s2(g, rng);
  EXPECT_NE(s1.evaluate(toBytes("x")), s2.evaluate(toBytes("x")));
}

TEST(Oprf, BlindingHidesInput) {
  // The blinded value for the same input must differ across runs (the sender
  // cannot correlate requests, let alone read the input).
  util::Rng rng(26);
  const DlogGroup& g = testGroup();
  OprfReceiver r1(g, toBytes("secret-tag"), rng);
  OprfReceiver r2(g, toBytes("secret-tag"), rng);
  EXPECT_NE(r1.blinded(), r2.blinded());
}

TEST(Oprf, SenderRejectsNonElement) {
  util::Rng rng(27);
  const DlogGroup& g = testGroup();
  const OprfSender sender(g, rng);
  EXPECT_THROW(sender.evaluateBlinded(bignum::BigUint(0)), util::CryptoError);
}

// --- Blind RSA ---

TEST(BlindRsa, UnblindedSignatureVerifies) {
  util::Rng rng(28);
  const RsaPrivateKey signer = rsaGenerate(512, rng);
  BlindSignatureRequest request(signer.pub, toBytes("#topic"), rng);
  const bignum::BigUint blindSig = blindSign(signer, request.blinded());
  const bignum::BigUint sig = request.unblind(blindSig);
  EXPECT_TRUE(blindSignatureVerify(signer.pub, toBytes("#topic"), sig));
  EXPECT_FALSE(blindSignatureVerify(signer.pub, toBytes("#other"), sig));
}

TEST(BlindRsa, SignerCannotSeeMessage) {
  // Blinded values for the same message are unlinkable across requests.
  util::Rng rng(29);
  const RsaPrivateKey signer = rsaGenerate(512, rng);
  BlindSignatureRequest r1(signer.pub, toBytes("m"), rng);
  BlindSignatureRequest r2(signer.pub, toBytes("m"), rng);
  EXPECT_NE(r1.blinded(), r2.blinded());
  // And neither equals the full-domain hash the signature is on.
  EXPECT_NE(r1.blinded(), rsaFullDomainHash(signer.pub, toBytes("m")));
}

TEST(BlindRsa, UnblindedEqualsDirectFdhSignature) {
  util::Rng rng(30);
  const RsaPrivateKey signer = rsaGenerate(512, rng);
  BlindSignatureRequest request(signer.pub, toBytes("msg"), rng);
  const bignum::BigUint sig = request.unblind(blindSign(signer, request.blinded()));
  const bignum::BigUint direct =
      rsaRawPrivate(signer, rsaFullDomainHash(signer.pub, toBytes("msg")));
  EXPECT_EQ(sig, direct);
}

class OprfManyInputs : public ::testing::TestWithParam<int> {};

TEST_P(OprfManyInputs, ConsistencyUnderSeed) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const DlogGroup& g = testGroup();
  const OprfSender sender(g, rng);
  const std::string input = "input-" + std::to_string(GetParam());
  OprfReceiver receiver(g, toBytes(input), rng);
  EXPECT_EQ(receiver.finalize(sender.evaluateBlinded(receiver.blinded())),
            sender.evaluate(toBytes(input)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, OprfManyInputs, ::testing::Range(1, 9));

}  // namespace
}  // namespace dosn::pkcrypto
