// Experiment E4 (paper §III-F): "a hybrid encryption is one which combines
// the convenience of a public-key encryption with the high speed of a
// symmetric-key encryption."
//
// Sweeps payload size for a fixed 8-member group: naive per-member public-key
// encryption pays asymmetric work per byte per member; the hybrid scheme pays
// it once for a 32-byte data key. The crossover appears immediately and the
// gap widens with payload size.
#include <benchmark/benchmark.h>

#include "dosn/privacy/hybrid_acl.hpp"
#include "dosn/privacy/publickey_acl.hpp"

namespace {

using namespace dosn;

constexpr std::size_t kMembers = 8;

struct PkFixture {
  util::Rng rng{42};
  privacy::PublicKeyAcl acl{pkcrypto::DlogGroup::cached(512), rng};
  PkFixture() {
    acl.createGroup("g");
    for (std::size_t i = 0; i < kMembers; ++i) {
      acl.addMember("g", "user" + std::to_string(i));
    }
  }
};

struct HybridFixture {
  util::Rng rng{42};
  privacy::HybridAcl acl{pkcrypto::DlogGroup::cached(512), rng,
                         privacy::WrapScheme::kPublicKey};
  HybridFixture() {
    acl.createGroup("g");
    for (std::size_t i = 0; i < kMembers; ++i) {
      acl.addMember("g", "user" + std::to_string(i));
    }
  }
};

void naivePublicKey(benchmark::State& state) {
  PkFixture fx;
  const util::Bytes payload(static_cast<std::size_t>(state.range(0)), 0x5a);
  std::size_t envelopeBytes = 0;
  for (auto _ : state) {
    auto env = fx.acl.encrypt("g", payload, fx.rng);
    envelopeBytes = env.blob.size();
    benchmark::DoNotOptimize(env);
  }
  state.counters["envelope_bytes"] =
      static_cast<double>(envelopeBytes);
}

void hybrid(benchmark::State& state) {
  HybridFixture fx;
  const util::Bytes payload(static_cast<std::size_t>(state.range(0)), 0x5a);
  std::size_t envelopeBytes = 0;
  for (auto _ : state) {
    auto env = fx.acl.encrypt("g", payload, fx.rng);
    envelopeBytes = env.blob.size();
    benchmark::DoNotOptimize(env);
  }
  state.counters["envelope_bytes"] = static_cast<double>(envelopeBytes);
}

}  // namespace

BENCHMARK(naivePublicKey)
    ->RangeMultiplier(8)
    ->Range(64, 262144)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(hybrid)
    ->RangeMultiplier(8)
    ->Range(64, 262144)
    ->Unit(benchmark::kMicrosecond);
