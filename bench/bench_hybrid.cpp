// Experiment E4 (paper §III-F): "a hybrid encryption is one which combines
// the convenience of a public-key encryption with the high speed of a
// symmetric-key encryption."
//
// Sweeps payload size for a fixed 8-member group: naive per-member public-key
// encryption pays asymmetric work per byte per member; the hybrid scheme pays
// it once for a 32-byte data key. The crossover appears immediately and the
// gap widens with payload size.
//
// Two benchkit scenarios (naive vs hybrid); JSON params carry
// `encrypt_us.<payload>` and `envelope_bytes.<payload>` per sweep point.
#include <cstdio>
#include <string>
#include <vector>

#include "dosn/benchkit/benchkit.hpp"
#include "dosn/privacy/hybrid_acl.hpp"
#include "dosn/privacy/publickey_acl.hpp"

namespace {

using namespace dosn;
using benchkit::ScenarioContext;

constexpr std::size_t kMembers = 8;

bool gHeaderPrinted = false;

void runSweep(ScenarioContext& ctx, const char* label,
              privacy::AccessController& acl, util::Rng& rng) {
  acl.createGroup("g");
  for (std::size_t i = 0; i < kMembers; ++i) {
    acl.addMember("g", "user" + std::to_string(i));
  }
  const std::vector<std::size_t> payloads =
      ctx.smoke() ? std::vector<std::size_t>{64, 4096}
                  : std::vector<std::size_t>{64, 512, 4096, 32768, 262144};
  const std::size_t iters = ctx.smoke() ? 1 : 8;
  ctx.param("members", static_cast<double>(kMembers));
  ctx.counter("iters", iters);

  if (ctx.printing() && !gHeaderPrinted) {
    gHeaderPrinted = true;
    std::printf("E4: naive public-key vs hybrid encryption, %zu members\n",
                kMembers);
    std::printf("  %-10s %9s %12s %15s\n", "scheme", "payload", "us/encrypt",
                "envelope bytes");
  }
  for (const std::size_t payloadBytes : payloads) {
    const util::Bytes payload(payloadBytes, 0x5a);
    std::size_t envelopeBytes = 0;
    benchkit::Timer timer;
    for (std::size_t i = 0; i < iters; ++i) {
      const auto env = acl.encrypt("g", payload, rng);
      envelopeBytes = env.blob.size();
    }
    const double encUs = timer.ms() * 1000.0 / static_cast<double>(iters);
    const std::string suffix = "." + std::to_string(payloadBytes);
    ctx.param("encrypt_us" + suffix, encUs);
    ctx.param("envelope_bytes" + suffix, static_cast<double>(envelopeBytes));
    if (ctx.printing()) {
      std::printf("  %-10s %9zu %12.1f %15zu\n", label, payloadBytes, encUs,
                  envelopeBytes);
    }
  }
}

}  // namespace

BENCH_SCENARIO(e4_naive_pk, {.hot = true}) {
  util::Rng rng(ctx.seed());
  privacy::PublicKeyAcl acl(pkcrypto::DlogGroup::cached(512), rng);
  runSweep(ctx, "naive_pk", acl, rng);
}

BENCH_SCENARIO(e4_hybrid, {.hot = true}) {
  util::Rng rng(ctx.seed());
  privacy::HybridAcl acl(pkcrypto::DlogGroup::cached(512), rng,
                         privacy::WrapScheme::kPublicKey);
  runSweep(ctx, "hybrid", acl, rng);
}

BENCHKIT_MAIN()
