// Experiment E3 (paper §III-D vs §III-C): "In ABE, it is enough to do a
// single encryption operation to construct a new group", while the
// public-key baseline encrypts "under the public keys of all group's
// members" — cost and ciphertext size scale with N.
//
// Sweeps group size N and reports the cost of sharing one 1 KiB post to the
// group, plus the envelope size. One benchkit scenario runs the whole sweep;
// `--smoke` caps N at 16.
#include <cstdio>
#include <string>

#include "dosn/benchkit/benchkit.hpp"
#include "dosn/privacy/abe_acl.hpp"
#include "dosn/privacy/hybrid_acl.hpp"
#include "dosn/privacy/ibbe_acl.hpp"
#include "dosn/privacy/publickey_acl.hpp"
#include "dosn/privacy/symmetric_acl.hpp"

using namespace dosn;
using benchkit::ScenarioContext;

namespace {

struct Row {
  double encryptMs;
  std::size_t envelopeBytes;
};

Row measure(privacy::AccessController& acl, std::size_t members,
            util::Rng& rng) {
  acl.createGroup("g");
  for (std::size_t i = 0; i < members; ++i) {
    acl.addMember("g", "user" + std::to_string(i));
  }
  const util::Bytes payload(1024, 0x5a);
  // Warm-up (lazy key generation happens on first use).
  acl.encrypt("g", payload, rng);
  const int reps = 3;
  benchkit::Timer timer;
  privacy::Envelope env;
  for (int i = 0; i < reps; ++i) env = acl.encrypt("g", payload, rng);
  return Row{timer.ms() / reps, env.blob.size()};
}

void record(ScenarioContext& ctx, const char* scheme, std::size_t n,
            const Row& row) {
  const std::string tag = std::string(".") + scheme + "." + std::to_string(n);
  ctx.param("encrypt_ms" + tag, row.encryptMs);
  ctx.counter("envelope_bytes" + tag, row.envelopeBytes);
}

}  // namespace

BENCH_SCENARIO(e3_group_create) {
  if (ctx.printing()) {
    std::printf("E3: cost of sharing one 1 KiB post to a group of N members\n\n");
    std::printf("%-8s | %-22s | %-22s | %-22s | %-22s\n", "N",
                "symmetric ms/bytes", "public-key ms/bytes", "cp-abe ms/bytes",
                "ibbe ms/bytes");
  }
  const auto& group = pkcrypto::DlogGroup::cached(512);
  const std::size_t maxN = ctx.smoke() ? 16 : 64;
  for (std::size_t n : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    if (n > maxN) continue;
    util::Rng rng(ctx.seed());
    privacy::SymmetricAcl sym(rng);
    privacy::PublicKeyAcl pk(group, rng);
    privacy::AbeAcl abe(group, rng);
    privacy::IbbeAcl ibbe(group, rng);
    const Row symRow = measure(sym, n, rng);
    const Row pkRow = measure(pk, n, rng);
    const Row abeRow = measure(abe, n, rng);
    const Row ibbeRow = measure(ibbe, n, rng);
    if (ctx.printing()) {
      std::printf("%-8zu | %8.3f / %-11zu | %8.3f / %-11zu | %8.3f / %-11zu | %8.3f / %-11zu\n",
                  n, symRow.encryptMs, symRow.envelopeBytes, pkRow.encryptMs,
                  pkRow.envelopeBytes, abeRow.encryptMs, abeRow.envelopeBytes,
                  ibbeRow.encryptMs, ibbeRow.envelopeBytes);
    }
    record(ctx, "symmetric", n, symRow);
    record(ctx, "public_key", n, pkRow);
    record(ctx, "cp_abe", n, abeRow);
    record(ctx, "ibbe", n, ibbeRow);
  }
  ctx.param("max_members", static_cast<double>(maxN));
  if (ctx.printing()) {
    std::printf(
        "\nexpected shape: symmetric and cp-abe flat in N (one encryption per\n"
        "group); public-key and ibbe linear in N (per-recipient work), with\n"
        "public-key also duplicating the payload N times.\n");
  }
}

BENCHKIT_MAIN()
