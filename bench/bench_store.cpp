// Experiment E17 (DESIGN.md §3e): cost of the pluggable block-storage stacks
// behind replication. The paper's §I frames replicas as "another kind of
// service provider in a small scale"; this bench prices the storage
// properties such a provider wants — persistence, encryption at rest, a hot
// cache, write-behind batching — as decorator stacks over one interface.
//
// Two scenarios:
//  - e17_stack_throughput: raw put/get wall-clock per stack composition.
//  - e17_cache_hit_ratio: LRU hit ratio vs replica fetch latency for a
//    Zipf microblog-shaped workload over the wire, sweeping cache capacity.
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <unistd.h>

#include "dosn/benchkit/benchkit.hpp"
#include "dosn/overlay/replication.hpp"
#include "dosn/store/cache_store.hpp"
#include "dosn/store/crypt_store.hpp"
#include "dosn/store/file_store.hpp"
#include "dosn/store/memory_store.hpp"
#include "dosn/store/stack.hpp"
#include "dosn/util/rng.hpp"

using namespace dosn;
using namespace dosn::store;
using benchkit::ScenarioContext;
using overlay::OverlayId;
using sim::kMillisecond;

namespace {

namespace fs = std::filesystem;

// Per-process scratch root so parallel CI jobs never collide.
fs::path scratchRoot(const std::string& tag) {
  const fs::path root = fs::temp_directory_path() /
                        ("dosn_bench_store_" + tag + "_" +
                         std::to_string(::getpid()));
  fs::remove_all(root);
  return root;
}

OverlayId itemId(std::size_t i) {
  return OverlayId::hash("bench-blk-" + std::to_string(i));
}

util::Bytes masterKey(std::uint64_t seed) {
  util::Rng keyRng(seed ^ 0x5707eu);
  return keyRng.bytes(32);
}

// Walks a decorator stack down to its cache tier (if any).
const CacheStore* findCache(const BlockStore& store) {
  const BlockStore* cur = &store;
  while (cur != nullptr) {
    if (const auto* cache = dynamic_cast<const CacheStore*>(cur)) return cache;
    const auto* decorator = dynamic_cast<const StoreDecorator*>(cur);
    cur = decorator ? &decorator->inner() : nullptr;
  }
  return nullptr;
}

}  // namespace

// E17a: put/get throughput of every canonical stack composition against the
// same deterministic workload. Wall-clock figures are recorded as params
// (environment-dependent); the store's own counters are deterministic.
BENCH_SCENARIO(e17_stack_throughput) {
  const std::size_t kBlocks = ctx.smoke() ? 1500 : 20000;
  const std::size_t kGets = kBlocks * 3;
  ctx.param("blocks", static_cast<double>(kBlocks));
  ctx.param("gets", static_cast<double>(kGets));
  if (ctx.printing()) {
    std::printf("E17a: stack put/get throughput (%zu blocks, %zu Zipf gets)\n\n",
                kBlocks, kGets);
    std::printf("  %-26s %10s %10s %10s\n", "stack", "put ms", "get ms",
                "kops/s");
  }

  const fs::path root = scratchRoot("tput");
  sim::Simulator simulator;

  struct Variant {
    std::string tag;
    StackConfig config;
  };
  std::vector<Variant> variants;
  variants.push_back({"memory", {}});
  {
    StackConfig c;
    c.fileRoot = root / "file";
    variants.push_back({"file", c});
  }
  {
    StackConfig c;
    c.crypt = true;
    c.cryptKey = masterKey(ctx.seed());
    variants.push_back({"crypt_memory", c});
  }
  {
    StackConfig c;
    c.cache = true;
    c.cacheBlocks = kBlocks / 8;
    variants.push_back({"cache_memory", c});
  }
  {
    StackConfig c;
    c.fileRoot = root / "async_file";
    c.async = true;
    c.simulator = &simulator;
    variants.push_back({"async_file", c});
  }
  {
    StackConfig c;
    c.fileRoot = root / "full";
    c.async = true;
    c.simulator = &simulator;
    c.cache = true;
    c.cacheBlocks = kBlocks / 8;
    c.crypt = true;
    c.cryptKey = masterKey(ctx.seed());
    variants.push_back({"full", c});
  }

  for (auto& variant : variants) {
    util::Rng rng(ctx.seed());
    auto store = makeStack(variant.config);

    benchkit::Timer put;
    for (std::size_t i = 0; i < kBlocks; ++i) {
      store->put(itemId(i), rng.bytes(64 + rng.uniform(192)));
    }
    store->flush();
    const double putMs = put.ms();

    std::size_t served = 0;
    benchkit::Timer get;
    for (std::size_t i = 0; i < kGets; ++i) {
      const std::size_t idx = rng.zipf(kBlocks, 0.9);
      served += store->get(itemId(idx)).has_value() ? 1 : 0;
    }
    const double getMs = get.ms();

    const double kops =
        static_cast<double>(kBlocks + kGets) / (putMs + getMs);
    if (ctx.printing()) {
      std::printf("  %-26s %10.1f %10.1f %10.1f\n", store->describe().c_str(),
                  putMs, getMs, kops);
    }
    ctx.param("put_ms." + variant.tag, putMs);
    ctx.param("get_ms." + variant.tag, getMs);
    ctx.counter("served." + variant.tag, served);
    ctx.counter("stored." + variant.tag, store->size());
  }
  fs::remove_all(root);
  if (ctx.printing()) {
    std::printf(
        "\nexpected shape: memory is the floor; crypt pays one AEAD per op;\n"
        "file pays the filesystem; the cache claws back Zipf-skewed gets and\n"
        "async batches the medium behind acks.\n");
  }
}

// E17b: cache capacity sweep under a Zipf microblog-shaped fetch workload
// against a replica host running crypt(cache(async(file))) — hit ratio from
// the cache tier, fetch latency from the wire.
BENCH_SCENARIO(e17_cache_hit_ratio) {
  const std::size_t kPosts = ctx.smoke() ? 64 : 400;
  const std::size_t kFetches = ctx.smoke() ? 256 : 4000;
  ctx.param("posts", static_cast<double>(kPosts));
  ctx.param("fetches", static_cast<double>(kFetches));
  if (ctx.printing()) {
    std::printf(
        "\nE17b: cache hit ratio vs fetch latency (%zu posts, %zu Zipf "
        "fetches,\ncrypt(cache(async(file))) host)\n\n",
        kPosts, kFetches);
    std::printf("  %-12s %10s %12s %12s\n", "cache blks", "hit ratio",
                "evictions", "fetch ms");
  }

  const fs::path root = scratchRoot("hit");
  for (const std::size_t cacheBlocks : {4u, 16u, 64u, 256u}) {
    util::Rng rng(ctx.seed());
    sim::Simulator simulator;
    sim::Network net(simulator,
                     sim::LatencyModel{10 * kMillisecond, 0, 0.0}, rng);

    StackConfig config;
    config.fileRoot = root / ("c" + std::to_string(cacheBlocks));
    config.async = true;
    config.simulator = &simulator;
    config.cache = true;
    config.cacheBlocks = cacheBlocks;
    config.crypt = true;
    config.cryptKey = masterKey(ctx.seed());

    overlay::ReplicaHost host(net, makeStack(config));
    overlay::ReplicaClient client(net);

    // Publish the timeline: microblog-sized encrypted records.
    for (std::size_t i = 0; i < kPosts; ++i) {
      client.store(host.addr(), itemId(i), rng.bytes(100 + rng.uniform(160)),
                   {});
      simulator.run();
    }
    host.store().flush();

    // Followers re-read a Zipf-skewed slice of the timeline.
    std::size_t hits = 0;
    double latencyTotal = 0;
    for (std::size_t i = 0; i < kFetches; ++i) {
      const std::size_t idx = rng.zipf(kPosts, 1.0);
      const sim::SimTime sent = simulator.now();
      client.fetch(host.addr(), itemId(idx),
                   [&](std::optional<util::Bytes> value) {
                     hits += value.has_value() ? 1 : 0;
                     latencyTotal += static_cast<double>(simulator.now() - sent);
                   });
      simulator.run();
    }
    const CacheStore* cache = findCache(host.store());
    const double hitRatio = cache ? cache->hitRatio() : 0.0;
    const double meanFetchMs =
        latencyTotal / static_cast<double>(kFetches) / kMillisecond;
    if (ctx.printing()) {
      std::printf("  %-12zu %9.1f%% %12llu %12.1f\n", cacheBlocks,
                  100 * hitRatio,
                  static_cast<unsigned long long>(
                      cache ? cache->cacheStats().evictions : 0),
                  meanFetchMs);
    }
    const std::string tag = ".c" + std::to_string(cacheBlocks);
    ctx.counter("fetch_hits" + tag, hits);
    ctx.counter("cache_evictions" + tag,
                cache ? cache->cacheStats().evictions : 0);
    ctx.param("hit_ratio" + tag, hitRatio);
    ctx.param("fetch_ms" + tag, meanFetchMs);
  }
  fs::remove_all(root);
  if (ctx.printing()) {
    std::printf(
        "\nexpected shape: hit ratio climbs with capacity toward the Zipf\n"
        "head mass; wire latency dominates fetch time either way — the cache\n"
        "saves the host's storage stack work, not the client's round trip.\n");
  }
}

BENCHKIT_MAIN()
