// Experiment E2 (paper §III): the revocation-cost comparison.
//   - symmetric (§III-B): "create a new key and re-encrypt the whole data"
//   - public-key (§III-C): "his public key will be deleted from the list"
//   - CP-ABE (§III-D): "frequent re-keying ... previous data must be
//     encrypted and stored again ... makes it time-consuming"
//   - IBBE (§III-E): "removing a recipient ... no extra cost"
//
// Sweeps group size and retained-history length; reports wall time plus the
// scheme-reported work (re-encrypted envelopes / key operations). One benchkit
// scenario per (members, history) sweep point; the two heavy points are
// skipped in `--smoke`.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "dosn/benchkit/benchkit.hpp"
#include "dosn/privacy/abe_acl.hpp"
#include "dosn/privacy/hybrid_acl.hpp"
#include "dosn/privacy/ibbe_acl.hpp"
#include "dosn/privacy/publickey_acl.hpp"
#include "dosn/privacy/symmetric_acl.hpp"

using namespace dosn;
using benchkit::ScenarioContext;

namespace {

struct SchemeEntry {
  const char* name;
  std::unique_ptr<privacy::AccessController> acl;
};

bool gHeaderPrinted = false;

void runSweep(ScenarioContext& ctx, std::size_t members,
              std::size_t historyLen) {
  util::Rng rng(ctx.seed());
  const auto& group = pkcrypto::DlogGroup::cached(512);
  std::vector<SchemeEntry> schemes;
  schemes.push_back({"symmetric", std::make_unique<privacy::SymmetricAcl>(rng)});
  schemes.push_back(
      {"public-key", std::make_unique<privacy::PublicKeyAcl>(group, rng)});
  schemes.push_back({"cp-abe", std::make_unique<privacy::AbeAcl>(group, rng)});
  schemes.push_back({"ibbe", std::make_unique<privacy::IbbeAcl>(group, rng)});
  schemes.push_back(
      {"hybrid+pk", std::make_unique<privacy::HybridAcl>(
                        group, rng, privacy::WrapScheme::kPublicKey)});

  ctx.param("members", static_cast<double>(members));
  ctx.param("history", static_cast<double>(historyLen));
  if (ctx.printing()) {
    if (!gHeaderPrinted) {
      gHeaderPrinted = true;
      std::printf("E2: membership-change cost per ACL scheme (paper sec III)\n\n");
    }
    std::printf("members=%zu history=%zu posts (1 KiB each)\n", members,
                historyLen);
    std::printf("  %-12s %10s %12s %10s %12s\n", "scheme", "add(ms)",
                "revoke(ms)", "reenc", "key-ops");
  }
  const util::Bytes payload(1024, 0x5a);
  for (auto& [name, acl] : schemes) {
    acl->createGroup("g");
    for (std::size_t i = 0; i < members; ++i) {
      acl->addMember("g", "user" + std::to_string(i));
    }
    for (std::size_t i = 0; i < historyLen; ++i) {
      acl->encrypt("g", payload, rng);
    }
    // Adding one more member.
    benchkit::Timer timer;
    acl->addMember("g", "latecomer");
    const double addMs = timer.ms();
    // Revoking one member.
    timer.reset();
    const privacy::RevocationReport report = acl->removeMember("g", "user0");
    const double revokeMs = timer.ms();
    if (ctx.printing()) {
      std::printf("  %-12s %10.3f %12.3f %10zu %12zu\n", name, addMs, revokeMs,
                  report.reencryptedEnvelopes, report.keyOperations);
    }
    const std::string tag = std::string(".") + name;
    ctx.param("add_ms" + tag, addMs);
    ctx.param("revoke_ms" + tag, revokeMs);
    ctx.counter("reenc" + tag, report.reencryptedEnvelopes);
    ctx.counter("key_ops" + tag, report.keyOperations);
  }
  if (ctx.printing()) std::printf("\n");
}

}  // namespace

BENCH_SCENARIO(e2_members4_history8) { runSweep(ctx, 4, 8); }

BENCH_SCENARIO(e2_members16_history8) { runSweep(ctx, 16, 8); }

BENCH_SCENARIO(e2_members16_history32, {.skipInSmoke = true}) {
  runSweep(ctx, 16, 32);
}

BENCH_SCENARIO(e2_members64_history8, {.skipInSmoke = true}) {
  runSweep(ctx, 64, 8);
  if (ctx.printing()) {
    std::printf(
        "expected shape: ibbe revoke ~0 work; public-key revoke O(1);\n"
        "symmetric & cp-abe & hybrid rewrite the whole history, with cp-abe\n"
        "paying public-key work per envelope and symmetric only AEAD work.\n");
  }
}

BENCHKIT_MAIN()
