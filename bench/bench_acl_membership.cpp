// Experiment E2 (paper §III): the revocation-cost comparison.
//   - symmetric (§III-B): "create a new key and re-encrypt the whole data"
//   - public-key (§III-C): "his public key will be deleted from the list"
//   - CP-ABE (§III-D): "frequent re-keying ... previous data must be
//     encrypted and stored again ... makes it time-consuming"
//   - IBBE (§III-E): "removing a recipient ... no extra cost"
//
// Sweeps group size and retained-history length; reports wall time plus the
// scheme-reported work (re-encrypted envelopes / key operations).
#include <chrono>
#include <cstdio>
#include <memory>

#include "dosn/privacy/abe_acl.hpp"
#include "dosn/privacy/hybrid_acl.hpp"
#include "dosn/privacy/ibbe_acl.hpp"
#include "dosn/privacy/publickey_acl.hpp"
#include "dosn/privacy/symmetric_acl.hpp"

using namespace dosn;

namespace {

double msSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct SchemeEntry {
  const char* name;
  std::unique_ptr<privacy::AccessController> acl;
};

void runSweep(std::size_t members, std::size_t historyLen) {
  util::Rng rng(42);
  const auto& group = pkcrypto::DlogGroup::cached(512);
  std::vector<SchemeEntry> schemes;
  schemes.push_back({"symmetric", std::make_unique<privacy::SymmetricAcl>(rng)});
  schemes.push_back(
      {"public-key", std::make_unique<privacy::PublicKeyAcl>(group, rng)});
  schemes.push_back({"cp-abe", std::make_unique<privacy::AbeAcl>(group, rng)});
  schemes.push_back({"ibbe", std::make_unique<privacy::IbbeAcl>(group, rng)});
  schemes.push_back(
      {"hybrid+pk", std::make_unique<privacy::HybridAcl>(
                        group, rng, privacy::WrapScheme::kPublicKey)});

  std::printf("members=%zu history=%zu posts (1 KiB each)\n", members,
              historyLen);
  std::printf("  %-12s %10s %12s %10s %12s\n", "scheme", "add(ms)",
              "revoke(ms)", "reenc", "key-ops");
  const util::Bytes payload(1024, 0x5a);
  for (auto& [name, acl] : schemes) {
    acl->createGroup("g");
    for (std::size_t i = 0; i < members; ++i) {
      acl->addMember("g", "user" + std::to_string(i));
    }
    for (std::size_t i = 0; i < historyLen; ++i) {
      acl->encrypt("g", payload, rng);
    }
    // Adding one more member.
    auto t0 = std::chrono::steady_clock::now();
    acl->addMember("g", "latecomer");
    const double addMs = msSince(t0);
    // Revoking one member.
    t0 = std::chrono::steady_clock::now();
    const privacy::RevocationReport report = acl->removeMember("g", "user0");
    const double revokeMs = msSince(t0);
    std::printf("  %-12s %10.3f %12.3f %10zu %12zu\n", name, addMs, revokeMs,
                report.reencryptedEnvelopes, report.keyOperations);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("E2: membership-change cost per ACL scheme (paper sec III)\n\n");
  runSweep(/*members=*/4, /*historyLen=*/8);
  runSweep(/*members=*/16, /*historyLen=*/8);
  runSweep(/*members=*/16, /*historyLen=*/32);
  runSweep(/*members=*/64, /*historyLen=*/8);
  std::printf(
      "expected shape: ibbe revoke ~0 work; public-key revoke O(1);\n"
      "symmetric & cp-abe & hybrid rewrite the whole history, with cp-abe\n"
      "paying public-key work per envelope and symmetric only AEAD work.\n");
  return 0;
}
