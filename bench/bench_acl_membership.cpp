// Experiment E2 (paper §III): the revocation-cost comparison.
//   - symmetric (§III-B): "create a new key and re-encrypt the whole data"
//   - public-key (§III-C): "his public key will be deleted from the list"
//   - CP-ABE (§III-D): "frequent re-keying ... previous data must be
//     encrypted and stored again ... makes it time-consuming"
//   - IBBE (§III-E): "removing a recipient ... no extra cost"
//
// Sweeps group size and retained-history length; reports wall time plus the
// scheme-reported work (re-encrypted envelopes / key operations). One benchkit
// scenario per (members, history) sweep point; the two heavy points are
// skipped in `--smoke`.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "dosn/benchkit/benchkit.hpp"
#include "dosn/policy/shamir.hpp"
#include "dosn/privacy/abe_acl.hpp"
#include "dosn/privacy/hybrid_acl.hpp"
#include "dosn/privacy/ibbe_acl.hpp"
#include "dosn/privacy/publickey_acl.hpp"
#include "dosn/privacy/symmetric_acl.hpp"

using namespace dosn;
using benchkit::ScenarioContext;

namespace {

struct SchemeEntry {
  const char* name;
  std::unique_ptr<privacy::AccessController> acl;
};

bool gHeaderPrinted = false;

void runSweep(ScenarioContext& ctx, std::size_t members,
              std::size_t historyLen) {
  util::Rng rng(ctx.seed());
  const auto& group = pkcrypto::DlogGroup::cached(512);
  std::vector<SchemeEntry> schemes;
  schemes.push_back({"symmetric", std::make_unique<privacy::SymmetricAcl>(rng)});
  schemes.push_back(
      {"public-key", std::make_unique<privacy::PublicKeyAcl>(group, rng)});
  schemes.push_back({"cp-abe", std::make_unique<privacy::AbeAcl>(group, rng)});
  schemes.push_back({"ibbe", std::make_unique<privacy::IbbeAcl>(group, rng)});
  schemes.push_back(
      {"hybrid+pk", std::make_unique<privacy::HybridAcl>(
                        group, rng, privacy::WrapScheme::kPublicKey)});

  ctx.param("members", static_cast<double>(members));
  ctx.param("history", static_cast<double>(historyLen));
  if (ctx.printing()) {
    if (!gHeaderPrinted) {
      gHeaderPrinted = true;
      std::printf("E2: membership-change cost per ACL scheme (paper sec III)\n\n");
    }
    std::printf("members=%zu history=%zu posts (1 KiB each)\n", members,
                historyLen);
    std::printf("  %-12s %10s %12s %10s %12s\n", "scheme", "add(ms)",
                "revoke(ms)", "reenc", "key-ops");
  }
  const util::Bytes payload(1024, 0x5a);
  for (auto& [name, acl] : schemes) {
    acl->createGroup("g");
    for (std::size_t i = 0; i < members; ++i) {
      acl->addMember("g", "user" + std::to_string(i));
    }
    for (std::size_t i = 0; i < historyLen; ++i) {
      acl->encrypt("g", payload, rng);
    }
    // Adding one more member.
    benchkit::Timer timer;
    acl->addMember("g", "latecomer");
    const double addMs = timer.ms();
    // Revoking one member.
    timer.reset();
    const privacy::RevocationReport report = acl->removeMember("g", "user0");
    const double revokeMs = timer.ms();
    if (ctx.printing()) {
      std::printf("  %-12s %10.3f %12.3f %10zu %12zu\n", name, addMs, revokeMs,
                  report.reencryptedEnvelopes, report.keyOperations);
    }
    const std::string tag = std::string(".") + name;
    ctx.param("add_ms" + tag, addMs);
    ctx.param("revoke_ms" + tag, revokeMs);
    ctx.counter("reenc" + tag, report.reencryptedEnvelopes);
    ctx.counter("key_ops" + tag, report.keyOperations);
  }
  if (ctx.printing()) std::printf("\n");
}

}  // namespace

BENCH_SCENARIO(e2_members4_history8) { runSweep(ctx, 4, 8); }

BENCH_SCENARIO(e2_members16_history8) { runSweep(ctx, 16, 8); }

BENCH_SCENARIO(e2_members16_history32, {.skipInSmoke = true}) {
  runSweep(ctx, 16, 32);
}

// CP-ABE decryption's Lagrange interpolation (policy::shamirReconstruct,
// called per satisfied threshold gate): one batch inversion over all
// denominators vs one extended-Euclid per coefficient. Swept over the
// share-set size so EXPERIMENTS.md can quote the 64-share speedup.
BENCH_SCENARIO(e2_reconstruct_batch, {.hot = true}) {
  util::Rng rng(ctx.seed());
  const auto& field = policy::PrimeField::standard();
  const std::size_t rounds = ctx.smoke() ? 1 : 50;
  if (ctx.printing()) {
    std::printf("E2: Shamir reconstruction, per-coefficient vs batched\n");
  }
  for (const std::size_t k : {1u, 4u, 16u, 64u}) {
    if (ctx.smoke() && k > 4) continue;
    const bignum::BigUint secret = field.reduce(bignum::randomBits(250, rng));
    const auto shares = policy::shamirShare(field, secret, k, k, rng);
    bignum::BigUint oldResult, newResult;
    benchkit::Timer timer;
    for (std::size_t r = 0; r < rounds; ++r) {
      // The retained reference: one field.inv per Lagrange coefficient.
      bignum::BigUint acc{};
      for (std::size_t i = 0; i < shares.size(); ++i) {
        const auto li = policy::lagrangeCoefficientAtZero(field, shares, i);
        acc = field.add(acc, field.mul(shares[i].y, li));
      }
      oldResult = acc;
    }
    const double oldMs = timer.ms();
    timer.reset();
    for (std::size_t r = 0; r < rounds; ++r) {
      newResult = policy::shamirReconstruct(field, shares);
    }
    const double newMs = timer.ms();
    ctx.require(oldResult == newResult && newResult == secret,
                "reconstruction mismatch");
    const std::string tag = std::to_string(k);
    ctx.param("old_ms_per_reconstruct." + tag,
              oldMs / static_cast<double>(rounds));
    ctx.param("new_ms_per_reconstruct." + tag,
              newMs / static_cast<double>(rounds));
    ctx.param("speedup." + tag, oldMs / newMs);
    if (ctx.printing()) {
      std::printf("  k=%-4zu %10.4f -> %10.4f ms/reconstruct  %6.2fx\n", k,
                  oldMs / static_cast<double>(rounds),
                  newMs / static_cast<double>(rounds), oldMs / newMs);
    }
  }
  ctx.counter("rounds", rounds);
}

BENCH_SCENARIO(e2_members64_history8, {.skipInSmoke = true}) {
  runSweep(ctx, 64, 8);
  if (ctx.printing()) {
    std::printf(
        "expected shape: ibbe revoke ~0 work; public-key revoke O(1);\n"
        "symmetric & cp-abe & hybrid rewrite the whole history, with cp-abe\n"
        "paying public-key work per envelope and symmetric only AEAD work.\n");
  }
}

BENCHKIT_MAIN()
