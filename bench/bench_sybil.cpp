// Experiment E13 (extension; paper §VI "Sybil attacks"): SybilGuard-style
// random-walk defense. Sybil regions attach through few attack edges, so a
// verifier's random walks rarely intersect sybil walks.
//
// Sweeps the attack-edge count and reports honest-acceptance vs
// sybil-acceptance rates — the defense degrades gracefully as the attacker
// buys more real friendships (the known SybilGuard limitation).
//
// One benchkit scenario; `--smoke` trims the attack-edge sweep.
#include <cstdio>
#include <string>

#include "dosn/benchkit/benchkit.hpp"
#include "dosn/social/graph_gen.hpp"
#include "dosn/social/sybil.hpp"

using namespace dosn;
using namespace dosn::social;
using benchkit::ScenarioContext;

namespace {

struct Rates {
  double honestAccept = 0;
  double sybilAccept = 0;
};

Rates measure(std::size_t attackEdges, std::uint64_t seed) {
  util::Rng rng(seed);
  SocialGraph graph = wattsStrogatz(150, 4, 0.1, rng);
  const std::vector<UserId> sybils =
      plantSybilRegion(graph, /*sybilCount=*/40, attackEdges, rng);

  SybilGuardConfig config;
  config.walkLength = 12;
  config.walkCount = 24;
  config.acceptThreshold = 0.2;
  const SybilGuard guard(graph, config, rng);

  Rates rates;
  std::size_t honestTrials = 0;
  std::size_t sybilTrials = 0;
  for (int v = 0; v < 20; ++v) {
    const UserId verifier = "u" + std::to_string(v * 7);
    for (int s = 0; s < 10; ++s) {
      const UserId honest = "u" + std::to_string(37 + s * 11);
      if (honest == verifier) continue;
      rates.honestAccept += guard.accepts(verifier, honest) ? 1 : 0;
      ++honestTrials;
      rates.sybilAccept += guard.accepts(verifier, sybils[static_cast<std::size_t>(s) * 3]) ? 1 : 0;
      ++sybilTrials;
    }
  }
  rates.honestAccept /= static_cast<double>(honestTrials);
  rates.sybilAccept /= static_cast<double>(sybilTrials);
  return rates;
}

}  // namespace

BENCH_SCENARIO(e13_sybilguard) {
  if (ctx.printing()) {
    std::printf(
        "E13 (extension): SybilGuard random-walk defense\n"
        "(150 honest users, 40 sybils, walk length 12, 24 walks, thresh 0.2)\n\n");
    std::printf("  %-14s %16s %16s\n", "attack edges", "honest accepted",
                "sybil accepted");
  }
  const std::size_t maxEdges = ctx.smoke() ? 10 : 60;
  for (const std::size_t edges : {1u, 2u, 5u, 10u, 25u, 60u}) {
    if (edges > maxEdges) continue;
    const Rates r = measure(edges, ctx.seed() + edges);
    if (ctx.printing()) {
      std::printf("  %-14zu %15.0f%% %15.0f%%\n", edges, 100 * r.honestAccept,
                  100 * r.sybilAccept);
    }
    const std::string tag = "." + std::to_string(edges);
    ctx.param("honest_accept" + tag, r.honestAccept);
    ctx.param("sybil_accept" + tag, r.sybilAccept);
  }
  if (ctx.printing()) {
    std::printf(
        "\nexpected shape: honest users are accepted at a high stable rate;\n"
        "sybil acceptance starts near zero and grows with attack edges — the\n"
        "defense is only as strong as real friendships are hard to obtain\n"
        "(the survey's point that sybil attacks subvert reputation systems).\n");
  }
}

BENCHKIT_MAIN()
