// Experiment E15 (extension; paper §VI "implicit information leakage" /
// "network inference"): hiding your own attribute does not stop a neighbor-
// majority attack when your friends publish theirs.
//
// Sweeps homophily strength and the fraction of users hiding the attribute;
// reports how often the hidden value is recovered. Baseline: random guessing
// over `valueCount` values.
#include <cstdio>

#include "dosn/social/graph_gen.hpp"
#include "dosn/social/inference.hpp"

using namespace dosn;
using namespace dosn::social;

int main() {
  constexpr std::size_t kValues = 4;
  std::printf(
      "E15 (extension): attribute inference from friends' public values\n"
      "(300-user small world, %zu attribute values; random-guess baseline "
      "%.0f%%)\n\n",
      kValues, 100.0 / kValues);
  std::printf("  %-12s %-12s %18s %14s\n", "homophily", "hidden", "attack accuracy",
              "leak rate");
  for (const double homophily : {0.0, 0.5, 0.8, 0.95}) {
    for (const double hidden : {0.2, 0.5, 0.8}) {
      util::Rng rng(42);
      const SocialGraph graph = wattsStrogatz(300, 4, 0.1, rng);
      const AttributeWorld world =
          plantHomophilousAttribute(graph, kValues, homophily, hidden, rng);
      const InferenceReport report = runInferenceAttack(graph, world);
      char hiddenLabel[16];
      std::snprintf(hiddenLabel, sizeof(hiddenLabel), "%.0f%%", 100 * hidden);
      std::printf("  %-12.2f %-12s %17.1f%% %13.1f%%\n", homophily,
                  hiddenLabel, 100 * report.accuracyOnInferred(),
                  100 * report.leakRate());
    }
  }
  std::printf(
      "\nexpected shape: with no homophily the attack sits at the random\n"
      "baseline; the stronger the homophily, the more a hidden attribute\n"
      "leaks through friends — and hiding helps everyone only when most\n"
      "users hide too (privacy as the 'collective phenomenon' the paper\n"
      "cites). This is the open problem the survey says has no solution.\n");
  return 0;
}
