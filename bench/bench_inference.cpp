// Experiment E15 (extension; paper §VI "implicit information leakage" /
// "network inference"): hiding your own attribute does not stop a neighbor-
// majority attack when your friends publish theirs.
//
// Sweeps homophily strength and the fraction of users hiding the attribute;
// reports how often the hidden value is recovered. Baseline: random guessing
// over `valueCount` values.
//
// One benchkit scenario; `--smoke` shrinks the graph.
#include <cstdio>
#include <string>

#include "dosn/benchkit/benchkit.hpp"
#include "dosn/social/graph_gen.hpp"
#include "dosn/social/inference.hpp"

using namespace dosn;
using namespace dosn::social;
using benchkit::ScenarioContext;

BENCH_SCENARIO(e15_inference) {
  constexpr std::size_t kValues = 4;
  const std::size_t users = ctx.smoke() ? 100 : 300;
  ctx.param("users", static_cast<double>(users));
  ctx.param("values", static_cast<double>(kValues));
  if (ctx.printing()) {
    std::printf(
        "E15 (extension): attribute inference from friends' public values\n"
        "(%zu-user small world, %zu attribute values; random-guess baseline "
        "%.0f%%)\n\n",
        users, kValues, 100.0 / kValues);
    std::printf("  %-12s %-12s %18s %14s\n", "homophily", "hidden",
                "attack accuracy", "leak rate");
  }
  for (const double homophily : {0.0, 0.5, 0.8, 0.95}) {
    for (const double hidden : {0.2, 0.5, 0.8}) {
      util::Rng rng(ctx.seed());
      const SocialGraph graph = wattsStrogatz(users, 4, 0.1, rng);
      const AttributeWorld world =
          plantHomophilousAttribute(graph, kValues, homophily, hidden, rng);
      const InferenceReport report = runInferenceAttack(graph, world);
      if (ctx.printing()) {
        char hiddenLabel[16];
        std::snprintf(hiddenLabel, sizeof(hiddenLabel), "%.0f%%", 100 * hidden);
        std::printf("  %-12.2f %-12s %17.1f%% %13.1f%%\n", homophily,
                    hiddenLabel, 100 * report.accuracyOnInferred(),
                    100 * report.leakRate());
      }
      const std::string tag =
          ".h" + std::to_string(static_cast<int>(100 * homophily)) + ".hide" +
          std::to_string(static_cast<int>(100 * hidden));
      ctx.param("accuracy" + tag, report.accuracyOnInferred());
      ctx.param("leak_rate" + tag, report.leakRate());
    }
  }
  if (ctx.printing()) {
    std::printf(
        "\nexpected shape: with no homophily the attack sits at the random\n"
        "baseline; the stronger the homophily, the more a hidden attribute\n"
        "leaks through friends — and hiding helps everyone only when most\n"
        "users hide too (privacy as the 'collective phenomenon' the paper\n"
        "cites). This is the open problem the survey says has no solution.\n");
  }
}

BENCHKIT_MAIN()
