// Ablation A2: gossip parameter sweep. Cachet-style caching rides on
// epidemic dissemination; this measures rounds-to-full-coverage and traffic
// as fanout varies, and coverage under churn-like offline fractions.
//
// One benchkit scenario per offline fraction; `--smoke` shrinks the node
// count.
#include <cstdio>
#include <memory>
#include <string>

#include "dosn/benchkit/benchkit.hpp"
#include "dosn/overlay/gossip.hpp"

using namespace dosn;
using namespace dosn::overlay;
using benchkit::ScenarioContext;
using sim::kMillisecond;
using sim::kSecond;

namespace {

struct Outcome {
  double coverage = 0;          // fraction of nodes holding the rumor
  double virtualSeconds = 0;    // time until (observed) full coverage
  std::uint64_t messages = 0;
};

Outcome run(const ScenarioContext& ctx, std::size_t fanout,
            double offlineFraction) {
  const std::size_t nodeCount = ctx.smoke() ? 16 : 40;
  util::Rng rng(ctx.seed());
  sim::Simulator simulator;
  sim::Network net(simulator,
                   sim::LatencyModel{10 * kMillisecond, 5 * kMillisecond, 0.0},
                   rng);
  GossipConfig config;
  config.interval = 500 * kMillisecond;
  config.fanout = fanout;

  std::vector<std::unique_ptr<GossipNode>> nodes;
  for (std::size_t i = 0; i < nodeCount; ++i) {
    nodes.push_back(std::make_unique<GossipNode>(net, config));
  }
  std::vector<sim::NodeAddr> peers;
  for (const auto& n : nodes) peers.push_back(n->addr());
  for (std::size_t i = 0; i < nodeCount; ++i) {
    nodes[i]->setPeers(peers);
    if (rng.chance(offlineFraction)) net.setOnline(nodes[i]->addr(), false);
    nodes[i]->start();
  }
  const OverlayId rumor = OverlayId::hash("rumor");
  nodes[0]->put(rumor, util::toBytes("x"), 1);
  net.setOnline(nodes[0]->addr(), true);  // the source is online

  Outcome out;
  sim::SimTime coveredAt = 0;
  for (int tick = 1; tick <= 120; ++tick) {
    simulator.runUntil(static_cast<sim::SimTime>(tick) * 500 * kMillisecond);
    std::size_t have = 0;
    for (const auto& n : nodes) {
      if (n->get(rumor)) ++have;
    }
    if (have == nodeCount && coveredAt == 0) {
      coveredAt = simulator.now();
      break;
    }
  }
  std::size_t have = 0;
  for (const auto& n : nodes) {
    if (n->get(rumor)) ++have;
    n->stop();
  }
  out.coverage = static_cast<double>(have) / static_cast<double>(nodeCount);
  out.virtualSeconds =
      coveredAt ? static_cast<double>(coveredAt) / kSecond : -1;
  out.messages = net.messagesSent();
  return out;
}

bool gHeaderPrinted = false;

void runOfflineLevel(ScenarioContext& ctx, double offline) {
  const std::size_t nodeCount = ctx.smoke() ? 16 : 40;
  if (ctx.printing()) {
    if (!gHeaderPrinted) {
      gHeaderPrinted = true;
      std::printf(
          "A2 (ablation): gossip fanout sweep (%zu nodes, 500 ms rounds)\n\n",
          nodeCount);
    }
    std::printf("offline fraction = %.0f%%\n", 100 * offline);
    std::printf("  %-8s %12s %18s %12s\n", "fanout", "coverage",
                "full-coverage(s)", "messages");
  }
  ctx.param("nodes", static_cast<double>(nodeCount));
  ctx.param("offline", offline);
  for (const std::size_t fanout : {1u, 2u, 4u}) {
    const Outcome o = run(ctx, fanout, offline);
    if (ctx.printing()) {
      if (o.virtualSeconds >= 0) {
        std::printf("  %-8zu %11.0f%% %18.1f %12llu\n", fanout,
                    100 * o.coverage, o.virtualSeconds,
                    static_cast<unsigned long long>(o.messages));
      } else {
        std::printf("  %-8zu %11.0f%% %18s %12llu\n", fanout, 100 * o.coverage,
                    "(60s cap)", static_cast<unsigned long long>(o.messages));
      }
    }
    const std::string tag = ".f" + std::to_string(fanout);
    ctx.param("coverage" + tag, o.coverage);
    ctx.param("full_coverage_s" + tag, o.virtualSeconds);
    ctx.counter("messages" + tag, o.messages);
  }
  if (ctx.printing()) std::printf("\n");
}

}  // namespace

BENCH_SCENARIO(a2_gossip_online) { runOfflineLevel(ctx, 0.0); }

BENCH_SCENARIO(a2_gossip_offline40) {
  runOfflineLevel(ctx, 0.4);
  if (ctx.printing()) {
    std::printf(
        "expected shape: higher fanout reaches full coverage in fewer rounds\n"
        "at proportionally higher traffic; offline nodes never receive the\n"
        "rumor (coverage caps at the online fraction), motivating the DHT\n"
        "fallback of the hybrid overlay.\n");
  }
}

BENCHKIT_MAIN()
