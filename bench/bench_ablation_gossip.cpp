// Ablation A2: gossip parameter sweep. Cachet-style caching rides on
// epidemic dissemination; this measures rounds-to-full-coverage and traffic
// as fanout varies, and coverage under churn-like offline fractions.
#include <cstdio>
#include <memory>

#include "dosn/overlay/gossip.hpp"

using namespace dosn;
using namespace dosn::overlay;
using sim::kMillisecond;
using sim::kSecond;

namespace {

constexpr std::size_t kNodes = 40;

struct Outcome {
  double coverage = 0;          // fraction of nodes holding the rumor
  double virtualSeconds = 0;    // time until (observed) full coverage
  std::uint64_t messages = 0;
};

Outcome run(std::size_t fanout, double offlineFraction) {
  util::Rng rng(42);
  sim::Simulator simulator;
  sim::Network net(simulator,
                   sim::LatencyModel{10 * kMillisecond, 5 * kMillisecond, 0.0},
                   rng);
  GossipConfig config;
  config.interval = 500 * kMillisecond;
  config.fanout = fanout;

  std::vector<std::unique_ptr<GossipNode>> nodes;
  for (std::size_t i = 0; i < kNodes; ++i) {
    nodes.push_back(std::make_unique<GossipNode>(net, config));
  }
  std::vector<sim::NodeAddr> peers;
  for (const auto& n : nodes) peers.push_back(n->addr());
  for (std::size_t i = 0; i < kNodes; ++i) {
    nodes[i]->setPeers(peers);
    if (rng.chance(offlineFraction)) net.setOnline(nodes[i]->addr(), false);
    nodes[i]->start();
  }
  const OverlayId rumor = OverlayId::hash("rumor");
  nodes[0]->put(rumor, util::toBytes("x"), 1);
  net.setOnline(nodes[0]->addr(), true);  // the source is online

  Outcome out;
  sim::SimTime coveredAt = 0;
  for (int tick = 1; tick <= 120; ++tick) {
    simulator.runUntil(static_cast<sim::SimTime>(tick) * 500 * kMillisecond);
    std::size_t have = 0;
    for (const auto& n : nodes) {
      if (n->get(rumor)) ++have;
    }
    if (have == kNodes && coveredAt == 0) {
      coveredAt = simulator.now();
      break;
    }
  }
  std::size_t have = 0;
  for (const auto& n : nodes) {
    if (n->get(rumor)) ++have;
    n->stop();
  }
  out.coverage = static_cast<double>(have) / kNodes;
  out.virtualSeconds =
      coveredAt ? static_cast<double>(coveredAt) / kSecond : -1;
  out.messages = net.messagesSent();
  return out;
}

}  // namespace

int main() {
  std::printf("A2 (ablation): gossip fanout sweep (%zu nodes, 500 ms rounds)\n\n",
              kNodes);
  for (const double offline : {0.0, 0.4}) {
    std::printf("offline fraction = %.0f%%\n", 100 * offline);
    std::printf("  %-8s %12s %18s %12s\n", "fanout", "coverage",
                "full-coverage(s)", "messages");
    for (const std::size_t fanout : {1u, 2u, 4u}) {
      const Outcome o = run(fanout, offline);
      if (o.virtualSeconds >= 0) {
        std::printf("  %-8zu %11.0f%% %18.1f %12llu\n", fanout,
                    100 * o.coverage, o.virtualSeconds,
                    static_cast<unsigned long long>(o.messages));
      } else {
        std::printf("  %-8zu %11.0f%% %18s %12llu\n", fanout, 100 * o.coverage,
                    "(60s cap)", static_cast<unsigned long long>(o.messages));
      }
    }
    std::printf("\n");
  }
  std::printf(
      "expected shape: higher fanout reaches full coverage in fewer rounds\n"
      "at proportionally higher traffic; offline nodes never receive the\n"
      "rumor (coverage caps at the online fraction), motivating the DHT\n"
      "fallback of the hybrid overlay.\n");
  return 0;
}
