// Experiment B1: bignum microbenchmark — the Montgomery/CIOS fast path vs
// the retained reference implementations, at the same fixed seed and with
// output equality asserted on every pair (a benchmark that silently computes
// different numbers measures nothing).
//
//   mulMod           (a*b) % m division path   vs MontgomeryContext::mulMod
//   powMod           powModSimple              vs Montgomery powMod
//   RSA sign         plain x^d mod n           vs CRT (dP/dQ/qInv)
//   ElGamal-style    g^x via powModSimple      vs cached FixedBasePowerTable
//   multiply         schoolbookMul             vs Karatsuba operator*
//   batch inversion  per-element invMod        vs batchInvMod, sweep 1/4/16/64
//   Schnorr page     per-item schnorrVerify    vs schnorrVerifyBatch, same sweep
//
// Runs on benchkit (BENCHMARKS.md): `--smoke` shrinks every kernel to one
// iteration at 512 bits and asserts equality only — fast enough for CI
// (including sanitizer jobs), no timing thresholds that could flake. Each
// scenario records old/new ms-per-op and the speedup as JSON params, so
// BENCH_bignum.json is the artifact future bignum PRs (Barrett, Karatsuba)
// regress against.
#include <cstdio>
#include <string>
#include <vector>

#include "dosn/benchkit/benchkit.hpp"
#include "dosn/bignum/batch.hpp"
#include "dosn/bignum/modmath.hpp"
#include "dosn/bignum/montgomery.hpp"
#include "dosn/pkcrypto/group.hpp"
#include "dosn/pkcrypto/rsa.hpp"
#include "dosn/pkcrypto/schnorr.hpp"
#include "dosn/util/rng.hpp"

using namespace dosn;
using bignum::BigUint;
using benchkit::ScenarioContext;

namespace {

bool gHeaderPrinted = false;

void printHeader() {
  if (gHeaderPrinted) return;
  gHeaderPrinted = true;
  std::printf("B1: bignum microbench (old vs new, fixed seeds)\n");
  std::printf("  %-22s %10s %10s %9s\n", "kernel", "old ms/op", "new ms/op",
              "speedup");
}

void report(ScenarioContext& ctx, const char* name, double oldMs, double newMs,
            std::size_t iters) {
  if (ctx.printing()) {
    printHeader();
    std::printf("  %-22s %10.3f %10.3f %8.2fx   (%zu iters)\n", name,
                oldMs / static_cast<double>(iters),
                newMs / static_cast<double>(iters), oldMs / newMs, iters);
  }
  ctx.param("old_ms_per_op", oldMs / static_cast<double>(iters));
  ctx.param("new_ms_per_op", newMs / static_cast<double>(iters));
  ctx.param("speedup", oldMs / newMs);
  ctx.counter("iters", iters);
}

void check(ScenarioContext& ctx, const BigUint& oldResult,
           const BigUint& newResult, const char* what) {
  if (oldResult != newResult) {
    ctx.fail(std::string("differential mismatch in ") + what + ": old=" +
             oldResult.toHex() + " new=" + newResult.toHex());
  }
}

BigUint oddModulus(std::size_t bits, util::Rng& rng) {
  BigUint m = bignum::randomBits(bits, rng);
  if (m.isEven()) m += BigUint(1);
  return m;
}

// Chained mulMod: each product feeds the next so the work can't be hoisted.
void benchMulMod(ScenarioContext& ctx, std::size_t bits, std::size_t iters) {
  util::Rng rng(ctx.seed() + 959);
  const BigUint m = oddModulus(bits, rng);
  const BigUint b = bignum::randomBits(bits - 1, rng);
  const bignum::MontgomeryContext mont(m);

  BigUint accOld = bignum::randomBits(bits - 1, rng);
  BigUint accNew = accOld;
  benchkit::Timer timer;
  for (std::size_t i = 0; i < iters; ++i) accOld = bignum::mulMod(accOld, b, m);
  const double oldMs = timer.ms();
  timer.reset();
  for (std::size_t i = 0; i < iters; ++i) accNew = mont.mulMod(accNew, b);
  const double newMs = timer.ms();
  check(ctx, accOld, accNew, "mulMod");
  ctx.param("bits", static_cast<double>(bits));
  const std::string name = "mulMod " + std::to_string(bits) + "-bit";
  report(ctx, name.c_str(), oldMs, newMs, iters);
}

void benchPowMod(ScenarioContext& ctx, std::size_t bits, std::size_t iters) {
  util::Rng rng(ctx.seed() + 960);
  const BigUint m = oddModulus(bits, rng);
  const BigUint base = bignum::randomBits(bits - 1, rng);
  const BigUint e = bignum::randomBits(bits - 1, rng);

  BigUint oldResult, newResult;
  benchkit::Timer timer;
  for (std::size_t i = 0; i < iters; ++i) {
    oldResult = bignum::powModSimple(base, e, m);
  }
  const double oldMs = timer.ms();
  timer.reset();
  for (std::size_t i = 0; i < iters; ++i) {
    newResult = bignum::powMod(base, e, m);  // dispatches to Montgomery
  }
  const double newMs = timer.ms();
  check(ctx, oldResult, newResult, "powMod");
  ctx.param("bits", static_cast<double>(bits));
  const std::string name = "powMod " + std::to_string(bits) + "-bit";
  report(ctx, name.c_str(), oldMs, newMs, iters);
}

void benchRsaSign(ScenarioContext& ctx, std::size_t bits, std::size_t iters) {
  util::Rng rng(ctx.seed() + 961);
  const auto key = pkcrypto::rsaGenerate(bits, rng);
  const auto plain = key.withoutCrt();
  const auto msg = util::toBytes("B1 signing benchmark message");

  util::Bytes oldSig, newSig;
  benchkit::Timer timer;
  for (std::size_t i = 0; i < iters; ++i) oldSig = pkcrypto::rsaSign(plain, msg);
  const double oldMs = timer.ms();
  timer.reset();
  for (std::size_t i = 0; i < iters; ++i) newSig = pkcrypto::rsaSign(key, msg);
  const double newMs = timer.ms();
  ctx.require(oldSig == newSig, "differential mismatch in rsaSign");
  ctx.param("bits", static_cast<double>(bits));
  const std::string name = "RSA-" + std::to_string(bits) + " sign";
  report(ctx, name.c_str(), oldMs, newMs, iters);
}

// ElGamal-style encryption is two fixed-base exponentiations (g^r, h^r); the
// representative kernel is g^x on the cached group generator.
void benchFixedBase(ScenarioContext& ctx, std::size_t bits, std::size_t iters) {
  const auto& group = pkcrypto::DlogGroup::cached(bits);
  util::Rng rng(ctx.seed() + 962);
  std::vector<BigUint> exps;
  exps.reserve(iters);
  for (std::size_t i = 0; i < iters; ++i) exps.push_back(group.randomScalar(rng));

  BigUint oldResult, newResult;
  benchkit::Timer timer;
  for (const BigUint& e : exps) {
    oldResult = bignum::powModSimple(group.g(), e, group.p());
  }
  const double oldMs = timer.ms();
  (void)group.exp(exps[0]);  // pay the table build outside the timed region
  timer.reset();
  for (const BigUint& e : exps) newResult = group.exp(e);
  const double newMs = timer.ms();
  check(ctx, oldResult, newResult, "fixed-base exp");
  ctx.param("bits", static_cast<double>(bits));
  const std::string name = "g^x " + std::to_string(bits) + "-bit (ElGamal)";
  report(ctx, name.c_str(), oldMs, newMs, iters);
}

// Chained wide multiply: schoolbook reference vs the Karatsuba operator*
// (the crossover sits at 32 limbs = 1024 bits, so both sizes here recurse).
void benchKaratsuba(ScenarioContext& ctx, std::size_t bits, std::size_t iters) {
  util::Rng rng(ctx.seed() + 963);
  const BigUint a = bignum::randomBits(bits, rng);
  const BigUint b = bignum::randomBits(bits, rng);
  const BigUint m = oddModulus(bits, rng);

  // Feed each product back through % m so the operands stay at width and the
  // multiply can't be hoisted.
  BigUint accOld = a;
  benchkit::Timer timer;
  for (std::size_t i = 0; i < iters; ++i) {
    accOld = bignum::schoolbookMul(accOld, b) % m;
  }
  const double oldMs = timer.ms();
  BigUint accNew = a;
  timer.reset();
  for (std::size_t i = 0; i < iters; ++i) accNew = (accNew * b) % m;
  const double newMs = timer.ms();
  check(ctx, accOld, accNew, "karatsuba");
  ctx.param("bits", static_cast<double>(bits));
  const std::string name = "mul " + std::to_string(bits) + "-bit";
  report(ctx, name.c_str(), oldMs, newMs, iters);
}

// Batch inversion sweep: n extended-Euclid invMod calls vs one batchInvMod
// (1 invMod + 3(n-1) Montgomery multiplies). Reported per batch size so
// EXPERIMENTS.md can quote the 64-element speedup directly.
void benchBatchInv(ScenarioContext& ctx, std::size_t bits, std::size_t rounds) {
  util::Rng rng(ctx.seed() + 964);
  const BigUint m = oddModulus(bits, rng);
  const bignum::MontgomeryContext mont(m);
  if (ctx.printing()) printHeader();
  for (const std::size_t n : {1u, 4u, 16u, 64u}) {
    std::vector<BigUint> values;
    while (values.size() < n) {
      BigUint v = bignum::randomBits(bits - 1, rng);
      if (bignum::invMod(v, m).has_value()) values.push_back(std::move(v));
    }
    std::vector<BigUint> oldInv(n), newInv;
    benchkit::Timer timer;
    for (std::size_t r = 0; r < rounds; ++r) {
      for (std::size_t i = 0; i < n; ++i) oldInv[i] = *bignum::invMod(values[i], m);
    }
    const double oldMs = timer.ms();
    timer.reset();
    for (std::size_t r = 0; r < rounds; ++r) {
      newInv = *bignum::batchInvMod(values, mont);
    }
    const double newMs = timer.ms();
    for (std::size_t i = 0; i < n; ++i) check(ctx, oldInv[i], newInv[i], "batchInv");
    const std::string tag = std::to_string(n);
    const double items = static_cast<double>(n * rounds);
    ctx.param("old_ms_per_item." + tag, oldMs / items);
    ctx.param("new_ms_per_item." + tag, newMs / items);
    ctx.param("speedup." + tag, oldMs / newMs);
    if (ctx.printing()) {
      std::printf("  %-22s %10.4f %10.4f %8.2fx   (%zu rounds)\n",
                  ("invMod batch n=" + tag).c_str(), oldMs / items,
                  newMs / items, oldMs / newMs, rounds);
    }
  }
  ctx.param("bits", static_cast<double>(bits));
  ctx.counter("rounds", rounds);
}

// Feed-page Schnorr verification sweep: one-by-one schnorrVerify vs one
// schnorrVerifyBatch call, single-author pages (the microblog shape) so the
// batch amortizes the author-key subgroup check and fixed-base table.
void benchSchnorrPage(ScenarioContext& ctx, std::size_t bits,
                      std::size_t rounds) {
  const auto& group = pkcrypto::DlogGroup::cached(bits);
  util::Rng rng(ctx.seed() + 965);
  const auto key = pkcrypto::schnorrGenerate(group, rng);
  if (ctx.printing()) printHeader();
  for (const std::size_t n : {1u, 4u, 16u, 64u}) {
    std::vector<pkcrypto::SchnorrBatchItem> items;
    for (std::size_t i = 0; i < n; ++i) {
      const auto msg = util::toBytes("feed post " + std::to_string(i));
      items.push_back(pkcrypto::SchnorrBatchItem{
          key.pub, msg, pkcrypto::schnorrSign(group, key, msg, rng)});
    }
    bool oldOk = true;
    benchkit::Timer timer;
    for (std::size_t r = 0; r < rounds; ++r) {
      for (const auto& item : items) {
        oldOk = pkcrypto::schnorrVerify(group, item.key, item.message,
                                        item.sig) && oldOk;
      }
    }
    const double oldMs = timer.ms();
    bool newOk = true;
    timer.reset();
    for (std::size_t r = 0; r < rounds; ++r) {
      for (const bool ok : pkcrypto::schnorrVerifyBatch(group, items)) {
        newOk = newOk && ok;
      }
    }
    const double newMs = timer.ms();
    ctx.require(oldOk && newOk, "schnorr page verification failed");
    const std::string tag = std::to_string(n);
    const double itemCount = static_cast<double>(n * rounds);
    ctx.param("old_ms_per_item." + tag, oldMs / itemCount);
    ctx.param("new_ms_per_item." + tag, newMs / itemCount);
    ctx.param("speedup." + tag, oldMs / newMs);
    if (ctx.printing()) {
      std::printf("  %-22s %10.4f %10.4f %8.2fx   (%zu rounds)\n",
                  ("schnorr page n=" + tag).c_str(), oldMs / itemCount,
                  newMs / itemCount, oldMs / newMs, rounds);
    }
  }
  ctx.param("bits", static_cast<double>(bits));
  ctx.counter("rounds", rounds);
}

}  // namespace

// Smoke runs every kernel once at CI-friendly sizes (correctness-only, also
// run under ASan/UBSan); full mode uses the B1 sizes from EXPERIMENTS.md.
BENCH_SCENARIO(b1_mulmod, {.hot = true}) {
  if (ctx.smoke()) {
    benchMulMod(ctx, 512, 64);
  } else {
    benchMulMod(ctx, 2048, 20000);
  }
}

BENCH_SCENARIO(b1_powmod_1024, {.hot = true}) {
  if (ctx.smoke()) {
    benchPowMod(ctx, 512, 1);
  } else {
    benchPowMod(ctx, 1024, 12);
  }
}

BENCH_SCENARIO(b1_powmod_2048, {.hot = true, .skipInSmoke = true}) {
  benchPowMod(ctx, 2048, 4);
}

BENCH_SCENARIO(b1_rsa_sign_1024, {.hot = true}) {
  if (ctx.smoke()) {
    benchRsaSign(ctx, 512, 1);
  } else {
    benchRsaSign(ctx, 1024, 12);
  }
}

BENCH_SCENARIO(b1_rsa_sign_2048, {.hot = true, .skipInSmoke = true}) {
  benchRsaSign(ctx, 2048, 4);
}

BENCH_SCENARIO(b1_fixed_base, {.hot = true}) {
  if (ctx.smoke()) {
    benchFixedBase(ctx, 512, 4);
  } else {
    benchFixedBase(ctx, 2048, 24);
  }
}

BENCH_SCENARIO(b1_karatsuba, {.hot = true}) {
  if (ctx.smoke()) {
    benchKaratsuba(ctx, 2048, 4);
  } else {
    benchKaratsuba(ctx, 8192, 400);
  }
}

BENCH_SCENARIO(b1_batch_inv, {.hot = true}) {
  if (ctx.smoke()) {
    benchBatchInv(ctx, 256, 1);
  } else {
    benchBatchInv(ctx, 256, 50);
  }
}

BENCH_SCENARIO(b1_schnorr_page, {.hot = true}) {
  if (ctx.smoke()) {
    benchSchnorrPage(ctx, 256, 1);
  } else {
    benchSchnorrPage(ctx, 256, 8);
  }
}

BENCHKIT_MAIN()
