// Experiment B1: bignum microbenchmark — the Montgomery/CIOS fast path vs
// the retained reference implementations, at the same fixed seed and with
// output equality asserted on every pair (a benchmark that silently computes
// different numbers measures nothing).
//
//   mulMod           (a*b) % m division path   vs MontgomeryContext::mulMod
//   powMod 2048-bit  powModSimple              vs Montgomery powMod
//   RSA-2048 sign    plain x^d mod n           vs CRT (dP/dQ/qInv)
//   ElGamal-style    g^x via powModSimple      vs cached FixedBasePowerTable
//
// `--smoke` runs one iteration of every pair with small sizes and asserts
// equality only — fast enough for CI (including sanitizer jobs), no timing
// thresholds that could flake.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "dosn/bignum/modmath.hpp"
#include "dosn/bignum/montgomery.hpp"
#include "dosn/pkcrypto/group.hpp"
#include "dosn/pkcrypto/rsa.hpp"
#include "dosn/util/rng.hpp"

using namespace dosn;
using bignum::BigUint;

namespace {

double msSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

bool gAllEqual = true;

void check(const BigUint& oldResult, const BigUint& newResult,
           const char* what) {
  if (oldResult != newResult) {
    gAllEqual = false;
    std::printf("MISMATCH in %s: old=%s new=%s\n", what,
                oldResult.toHex().c_str(), newResult.toHex().c_str());
  }
}

void report(const char* name, double oldMs, double newMs, std::size_t iters) {
  std::printf("  %-22s %10.3f %10.3f %8.2fx   (%zu iters)\n", name,
              oldMs / static_cast<double>(iters),
              newMs / static_cast<double>(iters), oldMs / newMs, iters);
}

BigUint oddModulus(std::size_t bits, util::Rng& rng) {
  BigUint m = bignum::randomBits(bits, rng);
  if (m.isEven()) m += BigUint(1);
  return m;
}

// Chained mulMod: each product feeds the next so the work can't be hoisted.
void benchMulMod(std::size_t bits, std::size_t iters) {
  util::Rng rng(1001);
  const BigUint m = oddModulus(bits, rng);
  const BigUint b = bignum::randomBits(bits - 1, rng);
  const bignum::MontgomeryContext ctx(m);

  BigUint accOld = bignum::randomBits(bits - 1, rng);
  BigUint accNew = accOld;
  auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) accOld = bignum::mulMod(accOld, b, m);
  const double oldMs = msSince(t0);
  t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) accNew = ctx.mulMod(accNew, b);
  const double newMs = msSince(t0);
  check(accOld, accNew, "mulMod");
  std::string name = "mulMod " + std::to_string(bits) + "-bit";
  report(name.c_str(), oldMs, newMs, iters);
}

void benchPowMod(std::size_t bits, std::size_t iters) {
  util::Rng rng(1002);
  const BigUint m = oddModulus(bits, rng);
  const BigUint base = bignum::randomBits(bits - 1, rng);
  const BigUint e = bignum::randomBits(bits - 1, rng);

  BigUint oldResult, newResult;
  auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    oldResult = bignum::powModSimple(base, e, m);
  }
  const double oldMs = msSince(t0);
  t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    newResult = bignum::powMod(base, e, m);  // dispatches to Montgomery
  }
  const double newMs = msSince(t0);
  check(oldResult, newResult, "powMod");
  std::string name = "powMod " + std::to_string(bits) + "-bit";
  report(name.c_str(), oldMs, newMs, iters);
}

void benchRsaSign(std::size_t bits, std::size_t iters) {
  util::Rng rng(1003);
  const auto key = pkcrypto::rsaGenerate(bits, rng);
  const auto plain = key.withoutCrt();
  const auto msg = util::toBytes("B1 signing benchmark message");

  util::Bytes oldSig, newSig;
  auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) oldSig = pkcrypto::rsaSign(plain, msg);
  const double oldMs = msSince(t0);
  t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) newSig = pkcrypto::rsaSign(key, msg);
  const double newMs = msSince(t0);
  if (oldSig != newSig) {
    gAllEqual = false;
    std::printf("MISMATCH in rsaSign\n");
  }
  std::string name = "RSA-" + std::to_string(bits) + " sign";
  report(name.c_str(), oldMs, newMs, iters);
}

// ElGamal-style encryption is two fixed-base exponentiations (g^r, h^r); the
// representative kernel is g^x on the cached group generator.
void benchFixedBase(std::size_t bits, std::size_t iters) {
  const auto& group = pkcrypto::DlogGroup::cached(bits);
  util::Rng rng(1004);
  std::vector<BigUint> exps;
  exps.reserve(iters);
  for (std::size_t i = 0; i < iters; ++i) exps.push_back(group.randomScalar(rng));

  BigUint oldResult, newResult;
  auto t0 = std::chrono::steady_clock::now();
  for (const BigUint& e : exps) {
    oldResult = bignum::powModSimple(group.g(), e, group.p());
  }
  const double oldMs = msSince(t0);
  (void)group.exp(exps[0]);  // pay the table build outside the timed region
  t0 = std::chrono::steady_clock::now();
  for (const BigUint& e : exps) newResult = group.exp(e);
  const double newMs = msSince(t0);
  check(oldResult, newResult, "fixed-base exp");
  std::string name = "g^x " + std::to_string(bits) + "-bit (ElGamal)";
  report(name.c_str(), oldMs, newMs, iters);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  if (smoke) {
    // Correctness-only pass at CI-friendly sizes (also run under ASan/UBSan).
    benchMulMod(512, 64);
    benchPowMod(512, 1);
    benchRsaSign(512, 1);
    benchFixedBase(512, 4);
    std::printf(smoke && gAllEqual ? "smoke: all outputs equal\n"
                                   : "smoke: FAILED\n");
    return gAllEqual ? 0 : 1;
  }

  std::printf("B1: bignum microbench (old vs new, fixed seeds)\n");
  std::printf("  %-22s %10s %10s %9s\n", "kernel", "old ms/op", "new ms/op",
              "speedup");
  benchMulMod(2048, 20000);
  benchPowMod(1024, 12);
  benchPowMod(2048, 4);
  benchRsaSign(1024, 12);
  benchRsaSign(2048, 4);
  benchFixedBase(2048, 24);
  if (!gAllEqual) {
    std::printf("FAILED: differential mismatch\n");
    return 1;
  }
  return 0;
}
