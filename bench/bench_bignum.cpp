// Experiment B1: bignum microbenchmark — the Montgomery/CIOS fast path vs
// the retained reference implementations, at the same fixed seed and with
// output equality asserted on every pair (a benchmark that silently computes
// different numbers measures nothing).
//
//   mulMod           (a*b) % m division path   vs MontgomeryContext::mulMod
//   powMod           powModSimple              vs Montgomery powMod
//   RSA sign         plain x^d mod n           vs CRT (dP/dQ/qInv)
//   ElGamal-style    g^x via powModSimple      vs cached FixedBasePowerTable
//
// Runs on benchkit (BENCHMARKS.md): `--smoke` shrinks every kernel to one
// iteration at 512 bits and asserts equality only — fast enough for CI
// (including sanitizer jobs), no timing thresholds that could flake. Each
// scenario records old/new ms-per-op and the speedup as JSON params, so
// BENCH_bignum.json is the artifact future bignum PRs (Barrett, Karatsuba)
// regress against.
#include <cstdio>
#include <string>
#include <vector>

#include "dosn/benchkit/benchkit.hpp"
#include "dosn/bignum/modmath.hpp"
#include "dosn/bignum/montgomery.hpp"
#include "dosn/pkcrypto/group.hpp"
#include "dosn/pkcrypto/rsa.hpp"
#include "dosn/util/rng.hpp"

using namespace dosn;
using bignum::BigUint;
using benchkit::ScenarioContext;

namespace {

bool gHeaderPrinted = false;

void printHeader() {
  if (gHeaderPrinted) return;
  gHeaderPrinted = true;
  std::printf("B1: bignum microbench (old vs new, fixed seeds)\n");
  std::printf("  %-22s %10s %10s %9s\n", "kernel", "old ms/op", "new ms/op",
              "speedup");
}

void report(ScenarioContext& ctx, const char* name, double oldMs, double newMs,
            std::size_t iters) {
  if (ctx.printing()) {
    printHeader();
    std::printf("  %-22s %10.3f %10.3f %8.2fx   (%zu iters)\n", name,
                oldMs / static_cast<double>(iters),
                newMs / static_cast<double>(iters), oldMs / newMs, iters);
  }
  ctx.param("old_ms_per_op", oldMs / static_cast<double>(iters));
  ctx.param("new_ms_per_op", newMs / static_cast<double>(iters));
  ctx.param("speedup", oldMs / newMs);
  ctx.counter("iters", iters);
}

void check(ScenarioContext& ctx, const BigUint& oldResult,
           const BigUint& newResult, const char* what) {
  if (oldResult != newResult) {
    ctx.fail(std::string("differential mismatch in ") + what + ": old=" +
             oldResult.toHex() + " new=" + newResult.toHex());
  }
}

BigUint oddModulus(std::size_t bits, util::Rng& rng) {
  BigUint m = bignum::randomBits(bits, rng);
  if (m.isEven()) m += BigUint(1);
  return m;
}

// Chained mulMod: each product feeds the next so the work can't be hoisted.
void benchMulMod(ScenarioContext& ctx, std::size_t bits, std::size_t iters) {
  util::Rng rng(ctx.seed() + 959);
  const BigUint m = oddModulus(bits, rng);
  const BigUint b = bignum::randomBits(bits - 1, rng);
  const bignum::MontgomeryContext mont(m);

  BigUint accOld = bignum::randomBits(bits - 1, rng);
  BigUint accNew = accOld;
  benchkit::Timer timer;
  for (std::size_t i = 0; i < iters; ++i) accOld = bignum::mulMod(accOld, b, m);
  const double oldMs = timer.ms();
  timer.reset();
  for (std::size_t i = 0; i < iters; ++i) accNew = mont.mulMod(accNew, b);
  const double newMs = timer.ms();
  check(ctx, accOld, accNew, "mulMod");
  ctx.param("bits", static_cast<double>(bits));
  const std::string name = "mulMod " + std::to_string(bits) + "-bit";
  report(ctx, name.c_str(), oldMs, newMs, iters);
}

void benchPowMod(ScenarioContext& ctx, std::size_t bits, std::size_t iters) {
  util::Rng rng(ctx.seed() + 960);
  const BigUint m = oddModulus(bits, rng);
  const BigUint base = bignum::randomBits(bits - 1, rng);
  const BigUint e = bignum::randomBits(bits - 1, rng);

  BigUint oldResult, newResult;
  benchkit::Timer timer;
  for (std::size_t i = 0; i < iters; ++i) {
    oldResult = bignum::powModSimple(base, e, m);
  }
  const double oldMs = timer.ms();
  timer.reset();
  for (std::size_t i = 0; i < iters; ++i) {
    newResult = bignum::powMod(base, e, m);  // dispatches to Montgomery
  }
  const double newMs = timer.ms();
  check(ctx, oldResult, newResult, "powMod");
  ctx.param("bits", static_cast<double>(bits));
  const std::string name = "powMod " + std::to_string(bits) + "-bit";
  report(ctx, name.c_str(), oldMs, newMs, iters);
}

void benchRsaSign(ScenarioContext& ctx, std::size_t bits, std::size_t iters) {
  util::Rng rng(ctx.seed() + 961);
  const auto key = pkcrypto::rsaGenerate(bits, rng);
  const auto plain = key.withoutCrt();
  const auto msg = util::toBytes("B1 signing benchmark message");

  util::Bytes oldSig, newSig;
  benchkit::Timer timer;
  for (std::size_t i = 0; i < iters; ++i) oldSig = pkcrypto::rsaSign(plain, msg);
  const double oldMs = timer.ms();
  timer.reset();
  for (std::size_t i = 0; i < iters; ++i) newSig = pkcrypto::rsaSign(key, msg);
  const double newMs = timer.ms();
  ctx.require(oldSig == newSig, "differential mismatch in rsaSign");
  ctx.param("bits", static_cast<double>(bits));
  const std::string name = "RSA-" + std::to_string(bits) + " sign";
  report(ctx, name.c_str(), oldMs, newMs, iters);
}

// ElGamal-style encryption is two fixed-base exponentiations (g^r, h^r); the
// representative kernel is g^x on the cached group generator.
void benchFixedBase(ScenarioContext& ctx, std::size_t bits, std::size_t iters) {
  const auto& group = pkcrypto::DlogGroup::cached(bits);
  util::Rng rng(ctx.seed() + 962);
  std::vector<BigUint> exps;
  exps.reserve(iters);
  for (std::size_t i = 0; i < iters; ++i) exps.push_back(group.randomScalar(rng));

  BigUint oldResult, newResult;
  benchkit::Timer timer;
  for (const BigUint& e : exps) {
    oldResult = bignum::powModSimple(group.g(), e, group.p());
  }
  const double oldMs = timer.ms();
  (void)group.exp(exps[0]);  // pay the table build outside the timed region
  timer.reset();
  for (const BigUint& e : exps) newResult = group.exp(e);
  const double newMs = timer.ms();
  check(ctx, oldResult, newResult, "fixed-base exp");
  ctx.param("bits", static_cast<double>(bits));
  const std::string name = "g^x " + std::to_string(bits) + "-bit (ElGamal)";
  report(ctx, name.c_str(), oldMs, newMs, iters);
}

}  // namespace

// Smoke runs every kernel once at CI-friendly sizes (correctness-only, also
// run under ASan/UBSan); full mode uses the B1 sizes from EXPERIMENTS.md.
BENCH_SCENARIO(b1_mulmod, {.hot = true}) {
  if (ctx.smoke()) {
    benchMulMod(ctx, 512, 64);
  } else {
    benchMulMod(ctx, 2048, 20000);
  }
}

BENCH_SCENARIO(b1_powmod_1024, {.hot = true}) {
  if (ctx.smoke()) {
    benchPowMod(ctx, 512, 1);
  } else {
    benchPowMod(ctx, 1024, 12);
  }
}

BENCH_SCENARIO(b1_powmod_2048, {.hot = true, .skipInSmoke = true}) {
  benchPowMod(ctx, 2048, 4);
}

BENCH_SCENARIO(b1_rsa_sign_1024, {.hot = true}) {
  if (ctx.smoke()) {
    benchRsaSign(ctx, 512, 1);
  } else {
    benchRsaSign(ctx, 1024, 12);
  }
}

BENCH_SCENARIO(b1_rsa_sign_2048, {.hot = true, .skipInSmoke = true}) {
  benchRsaSign(ctx, 2048, 4);
}

BENCH_SCENARIO(b1_fixed_base, {.hot = true}) {
  if (ctx.smoke()) {
    benchFixedBase(ctx, 512, 4);
  } else {
    benchFixedBase(ctx, 2048, 24);
  }
}

BENCHKIT_MAIN()
