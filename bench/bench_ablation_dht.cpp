// Ablation A1: Kademlia parameter sweep. The survey's structured-overlay
// claim ("queries resolved in a limited number of steps") hides two design
// knobs — bucket size / replication width k and lookup parallelism alpha.
// This sweep shows what each buys: k buys loss-resilience and shorter paths
// (denser routing tables), alpha buys latency at the cost of messages.
//
// One benchkit scenario per loss level; `--smoke` shrinks the network and
// trims the k sweep.
#include <cstdio>
#include <memory>
#include <string>

#include "dosn/benchkit/benchkit.hpp"
#include "dosn/overlay/kademlia.hpp"

using namespace dosn;
using namespace dosn::overlay;
using benchkit::ScenarioContext;
using sim::kMillisecond;

namespace {

struct Outcome {
  double successRate = 0;
  double meanLatencyMs = 0;
  double msgsPerLookup = 0;
};

Outcome run(const ScenarioContext& ctx, std::size_t k, std::size_t alpha,
            double loss) {
  const std::size_t peersCount = ctx.smoke() ? 20 : 50;
  const std::size_t itemCount = ctx.smoke() ? 10 : 25;
  const std::size_t lookups = ctx.smoke() ? 30 : 100;
  util::Rng rng(ctx.seed());
  sim::Simulator simulator;
  sim::Network net(simulator,
                   sim::LatencyModel{20 * kMillisecond, 10 * kMillisecond, loss},
                   rng);
  KademliaConfig config;
  config.k = k;
  config.alpha = alpha;
  config.rpcTimeout = 300 * kMillisecond;

  std::vector<std::unique_ptr<KademliaNode>> peers;
  for (std::size_t i = 0; i < peersCount; ++i) {
    peers.push_back(
        std::make_unique<KademliaNode>(net, OverlayId::random(rng), config));
  }
  const Contact seed{peers[0]->id(), peers[0]->addr()};
  for (std::size_t i = 1; i < peersCount; ++i) {
    peers[i]->bootstrap(seed);
    simulator.run();
  }
  std::vector<OverlayId> keys;
  for (std::size_t i = 0; i < itemCount; ++i) {
    keys.push_back(OverlayId::hash("ablation-" + std::to_string(i)));
    peers[i % peersCount]->store(keys.back(), util::toBytes("v"), {});
    simulator.run();
  }
  net.resetStats();
  std::size_t found = 0;
  double latencySum = 0;
  for (std::size_t q = 0; q < lookups; ++q) {
    const sim::SimTime start = simulator.now();
    sim::SimTime foundAt = start;
    bool ok = false;
    peers[rng.uniform(peersCount)]->findValue(keys[q % itemCount],
                                              [&](LookupResult r) {
                                                ok = r.value.has_value();
                                                foundAt = simulator.now();
                                              });
    simulator.run();
    if (ok) {
      ++found;
      latencySum += static_cast<double>(foundAt - start) / kMillisecond;
    }
  }
  Outcome out;
  out.successRate = static_cast<double>(found) / static_cast<double>(lookups);
  out.meanLatencyMs = found ? latencySum / static_cast<double>(found) : 0;
  out.msgsPerLookup =
      static_cast<double>(net.messagesSent()) / static_cast<double>(lookups);
  return out;
}

bool gHeaderPrinted = false;

void runLossLevel(ScenarioContext& ctx, double loss) {
  const std::size_t peersCount = ctx.smoke() ? 20 : 50;
  if (ctx.printing()) {
    if (!gHeaderPrinted) {
      gHeaderPrinted = true;
      std::printf("A1 (ablation): Kademlia k / alpha sweep (%zu peers)\n\n",
                  peersCount);
    }
    std::printf("message loss = %.0f%%\n", 100 * loss);
    std::printf("  %-4s %-6s %10s %14s %14s\n", "k", "alpha", "success",
                "latency(ms)", "msgs/lookup");
  }
  ctx.param("peers", static_cast<double>(peersCount));
  ctx.param("loss", loss);
  const std::size_t maxK = ctx.smoke() ? 8 : 16;
  for (const std::size_t k : {2u, 4u, 8u, 16u}) {
    if (k > maxK) continue;
    for (const std::size_t alpha : {1u, 3u}) {
      const Outcome o = run(ctx, k, alpha, loss);
      if (ctx.printing()) {
        std::printf("  %-4zu %-6zu %9.0f%% %14.1f %14.1f\n", k, alpha,
                    100 * o.successRate, o.meanLatencyMs, o.msgsPerLookup);
      }
      const std::string tag =
          ".k" + std::to_string(k) + ".a" + std::to_string(alpha);
      ctx.param("success" + tag, o.successRate);
      ctx.param("latency_ms" + tag, o.meanLatencyMs);
      ctx.param("msgs_per_lookup" + tag, o.msgsPerLookup);
    }
  }
  if (ctx.printing()) std::printf("\n");
}

}  // namespace

BENCH_SCENARIO(a1_kademlia_no_loss) { runLossLevel(ctx, 0.0); }

BENCH_SCENARIO(a1_kademlia_loss15) {
  runLossLevel(ctx, 0.15);
  if (ctx.printing()) {
    std::printf(
        "expected shape: under loss, small k degrades success (fewer replicas\n"
        "and sparser tables); larger alpha cuts latency (parallel probes mask\n"
        "timeouts) while costing proportionally more messages.\n");
  }
}

BENCHKIT_MAIN()
