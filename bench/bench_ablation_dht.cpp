// Ablation A1: Kademlia parameter sweep. The survey's structured-overlay
// claim ("queries resolved in a limited number of steps") hides two design
// knobs — bucket size / replication width k and lookup parallelism alpha.
// This sweep shows what each buys: k buys loss-resilience and shorter paths
// (denser routing tables), alpha buys latency at the cost of messages.
#include <cstdio>
#include <memory>

#include "dosn/overlay/kademlia.hpp"

using namespace dosn;
using namespace dosn::overlay;
using sim::kMillisecond;

namespace {

constexpr std::size_t kPeers = 50;
constexpr std::size_t kItems = 25;

struct Outcome {
  double successRate = 0;
  double meanLatencyMs = 0;
  double msgsPerLookup = 0;
};

Outcome run(std::size_t k, std::size_t alpha, double loss) {
  util::Rng rng(42);
  sim::Simulator simulator;
  sim::Network net(simulator,
                   sim::LatencyModel{20 * kMillisecond, 10 * kMillisecond, loss},
                   rng);
  KademliaConfig config;
  config.k = k;
  config.alpha = alpha;
  config.rpcTimeout = 300 * kMillisecond;

  std::vector<std::unique_ptr<KademliaNode>> peers;
  for (std::size_t i = 0; i < kPeers; ++i) {
    peers.push_back(
        std::make_unique<KademliaNode>(net, OverlayId::random(rng), config));
  }
  const Contact seed{peers[0]->id(), peers[0]->addr()};
  for (std::size_t i = 1; i < kPeers; ++i) {
    peers[i]->bootstrap(seed);
    simulator.run();
  }
  std::vector<OverlayId> keys;
  for (std::size_t i = 0; i < kItems; ++i) {
    keys.push_back(OverlayId::hash("ablation-" + std::to_string(i)));
    peers[i % kPeers]->store(keys.back(), util::toBytes("v"), {});
    simulator.run();
  }
  net.resetStats();
  std::size_t found = 0;
  double latencySum = 0;
  const std::size_t lookups = 100;
  for (std::size_t q = 0; q < lookups; ++q) {
    const sim::SimTime start = simulator.now();
    sim::SimTime foundAt = start;
    bool ok = false;
    peers[rng.uniform(kPeers)]->findValue(keys[q % kItems],
                                          [&](LookupResult r) {
                                            ok = r.value.has_value();
                                            foundAt = simulator.now();
                                          });
    simulator.run();
    if (ok) {
      ++found;
      latencySum += static_cast<double>(foundAt - start) / kMillisecond;
    }
  }
  Outcome out;
  out.successRate = static_cast<double>(found) / lookups;
  out.meanLatencyMs = found ? latencySum / static_cast<double>(found) : 0;
  out.msgsPerLookup = static_cast<double>(net.messagesSent()) / lookups;
  return out;
}

}  // namespace

int main() {
  std::printf("A1 (ablation): Kademlia k / alpha sweep (%zu peers)\n\n", kPeers);
  for (const double loss : {0.0, 0.15}) {
    std::printf("message loss = %.0f%%\n", 100 * loss);
    std::printf("  %-4s %-6s %10s %14s %14s\n", "k", "alpha", "success",
                "latency(ms)", "msgs/lookup");
    for (const std::size_t k : {2u, 4u, 8u, 16u}) {
      for (const std::size_t alpha : {1u, 3u}) {
        const Outcome o = run(k, alpha, loss);
        std::printf("  %-4zu %-6zu %9.0f%% %14.1f %14.1f\n", k, alpha,
                    100 * o.successRate, o.meanLatencyMs, o.msgsPerLookup);
      }
    }
    std::printf("\n");
  }
  std::printf(
      "expected shape: under loss, small k degrades success (fewer replicas\n"
      "and sparser tables); larger alpha cuts latency (parallel probes mask\n"
      "timeouts) while costing proportionally more messages.\n");
  return 0;
}
