// S-series: simulator scale benchmark (BENCHMARKS.md entry "bench_scale",
// EXPERIMENTS.md S1). Measures raw event-loop throughput of the sim core —
// calendar event queue + interned message types + pooled closures/payloads
// (DESIGN.md §3d) — at fleet sizes from 1k to 1M nodes.
//
// The S1 workload is the canonical outstanding-RPC load, not a synthetic
// queue drill:
//  - N nodes on one Network with the default latency model (20 ms base,
//    10 ms jitter, no loss);
//  - every node keeps 4 pings in flight (Kademlia's alpha=3 parallel lookups
//    plus one maintenance ping) with a 64-byte payload — each delivery
//    handler immediately re-pings a uniformly random peer until the global
//    send budget (20 x N) runs out;
//  - handlers capture {ctx, self} (16 bytes -> std::function SBO), the same
//    shape RpcEndpoint-style code registers;
//  - one +60 s maintenance timer per 64 nodes keeps long-horizon events in
//    the queue, so the calendar queue's overflow partition stays exercised.
//
// Reported per size: events/sec over the drain, executed/delivered counts,
// peak RSS (getrusage ru_maxrss, whole process — monotone across scenarios,
// so the 1M gauge is the honest high-water mark), and end-of-warmup queue
// partition sizes (ring vs overflow) for introspection.
#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "dosn/benchkit/benchkit.hpp"
#include "dosn/sim/network.hpp"
#include "dosn/sim/simulator.hpp"
#include "dosn/util/rng.hpp"

using namespace dosn;
using namespace dosn::benchkit;

namespace {

const sim::MessageType kPing("scale.ping");

struct Ctx {
  sim::Network* net = nullptr;
  util::Rng* rng = nullptr;
  std::vector<sim::NodeAddr> addrs;
  util::Bytes payload;
  std::uint64_t sent = 0;
  std::uint64_t sendBudget = 0;
};

double peakRssMb() {
  struct rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

struct ScaleResult {
  std::size_t executed = 0;
  std::uint64_t delivered = 0;
  double wallSecs = 0;
  double eventsPerSec = 0;
  std::size_t ringSize = 0;      // queue partition sizes after seeding
  std::size_t overflowSize = 0;
};

ScaleResult runScale(ScenarioContext& ctx, std::size_t nodes) {
  const std::uint64_t eventBudget = 20 * static_cast<std::uint64_t>(nodes);
  util::Rng rng(ctx.seed());
  sim::Simulator simulator;
  sim::LatencyModel latency;
  sim::Network net(simulator, latency, rng);

  Ctx workload;
  workload.net = &net;
  workload.rng = &rng;
  workload.sendBudget = eventBudget;
  workload.payload = util::toBytes(
      "scale-probe-payload-64-bytes....................................");
  workload.addrs.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) workload.addrs.push_back(net.addNode());

  Ctx* c = &workload;
  for (std::size_t i = 0; i < nodes; ++i) {
    const sim::NodeAddr self = workload.addrs[i];
    net.setHandler(self, [c, self](sim::NodeAddr, const sim::Message&) {
      if (c->sent >= c->sendBudget) return;
      ++c->sent;
      const sim::NodeAddr to = c->addrs[c->rng->uniform(c->addrs.size())];
      c->net->send(self, to, sim::Message{kPing, c->payload});
    });
  }
  // Long-horizon maintenance timers land in the queue's overflow partition.
  std::size_t timers = 0;
  for (std::size_t i = 0; i < nodes; i += 64) {
    simulator.schedule(60 * sim::kSecond + i * sim::kMicrosecond,
                       [&timers] { ++timers; });
  }
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t i = 0; i < nodes; ++i) {
      ++workload.sent;
      const sim::NodeAddr to = workload.addrs[rng.uniform(workload.addrs.size())];
      net.send(workload.addrs[i], to, sim::Message{kPing, workload.payload});
    }
  }

  ScaleResult result;
  result.ringSize = simulator.eventQueue().ringSize();
  result.overflowSize = simulator.eventQueue().overflowSize();

  const auto t0 = std::chrono::steady_clock::now();
  result.executed = simulator.run();
  const auto t1 = std::chrono::steady_clock::now();
  result.wallSecs = std::chrono::duration<double>(t1 - t0).count();
  result.delivered = net.messagesDelivered();
  result.eventsPerSec =
      result.wallSecs > 0 ? result.executed / result.wallSecs : 0;

  ctx.require(timers == (nodes + 63) / 64, "all maintenance timers fired");
  ctx.require(result.delivered == eventBudget, "send budget fully delivered");
  return result;
}

void report(ScenarioContext& ctx, std::size_t nodes, const ScaleResult& r) {
  if (ctx.printing()) {
    std::printf(
        "S1 scale: %zu nodes, %zu events executed (%llu delivered)\n"
        "  wall %.3f s -> %.0f events/sec; peak RSS %.1f MB\n"
        "  queue after seeding: ring=%zu overflow=%zu\n",
        nodes, r.executed, static_cast<unsigned long long>(r.delivered),
        r.wallSecs, r.eventsPerSec, peakRssMb(), r.ringSize, r.overflowSize);
  }
  ctx.counter("executed", r.executed);
  ctx.counter("delivered", r.delivered);
  ctx.counter("ring_after_seed", r.ringSize);
  ctx.counter("overflow_after_seed", r.overflowSize);
  ctx.param("nodes", static_cast<double>(nodes));
  ctx.gauge("events_per_sec", r.eventsPerSec);
  ctx.gauge("peak_rss_mb", peakRssMb());
}

}  // namespace

// Smoke mode shrinks each rung one decade so CI finishes in seconds while
// still crossing a calendar-queue rebase (the 100k rung's smoke size, 10k,
// drains ~200k events). Counters therefore differ between modes by design;
// bench_compare.py baselines are recorded per mode.
BENCH_SCENARIO(s1_1k) {
  report(ctx, 1000, runScale(ctx, 1000));
}

BENCH_SCENARIO(s1_10k, {.hot = true}) {
  const std::size_t nodes = ctx.smoke() ? 2000 : 10000;
  report(ctx, nodes, runScale(ctx, nodes));
}

BENCH_SCENARIO(s1_100k) {
  const std::size_t nodes = ctx.smoke() ? 10000 : 100000;
  report(ctx, nodes, runScale(ctx, nodes));
}

// The full-scale rung: ~20M events, ~22 s and ~1.3 GB RSS on the reference
// machine. Far too heavy for the CI smoke sweep; run locally via
//   bench_scale --filter s1_1m
BENCH_SCENARIO(s1_1m, {.skipInSmoke = true}) {
  report(ctx, 1000000, runScale(ctx, 1000000));
}

BENCHKIT_MAIN()
