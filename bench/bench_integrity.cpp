// Experiment E8 (paper §IV-B): historical-integrity mechanism costs.
//   - hash-chained timelines: append/verify cost vs timeline length
//     (verification is linear — the price of "provable partial ordering");
//   - object history tree: membership-proof size and verification stay
//     logarithmic in the log length;
//   - tamper detection: a corrupted interior entry is always caught.
//
// Two benchkit scenarios (chain vs tree); `--smoke` caps the sweep lengths.
#include <cstdio>
#include <string>
#include <vector>

#include "dosn/benchkit/benchkit.hpp"
#include "dosn/integrity/hash_chain.hpp"
#include "dosn/integrity/history_tree.hpp"

using namespace dosn;
using benchkit::ScenarioContext;

BENCH_SCENARIO(e8_hash_chain) {
  util::Rng rng(ctx.seed());
  const auto& group = pkcrypto::DlogGroup::cached(512);
  const social::Keyring publisher = social::createKeyring(group, "bob", rng);

  if (ctx.printing()) {
    std::printf("E8: historical-integrity costs\n\n");
    std::printf("hash-chained timeline (Schnorr-512 per entry):\n");
    std::printf("  %-8s %12s %14s %14s\n", "length", "append(ms)", "verify(ms)",
                "tamper-found");
  }
  const std::size_t maxLength = ctx.smoke() ? 32 : 512;
  for (const std::size_t length : {8u, 32u, 128u, 512u}) {
    if (length > maxLength) continue;
    integrity::Timeline timeline(group, publisher);
    benchkit::Timer timer;
    for (std::size_t i = 0; i < length; ++i) {
      timeline.append(util::toBytes("post " + std::to_string(i)), rng);
    }
    const double appendMs = timer.ms() / static_cast<double>(length);

    timer.reset();
    const bool valid =
        integrity::verifyChain(group, publisher.signing.pub, timeline.entries());
    const double verifyMs = timer.ms();
    ctx.require(valid, "untampered chain failed to verify");

    // Tamper an interior entry; detection must be 100%.
    std::size_t detected = 0;
    const std::size_t trials = 10;
    for (std::size_t t = 0; t < trials; ++t) {
      auto entries = timeline.entries();
      entries[rng.uniform(entries.size())].payload = util::toBytes("evil");
      if (!integrity::verifyChain(group, publisher.signing.pub, entries)) {
        ++detected;
      }
    }
    ctx.require(detected == trials, "interior tampering went undetected");
    if (ctx.printing()) {
      std::printf("  %-8zu %12.3f %14.2f %11zu/%zu%s\n", length, appendMs,
                  verifyMs, detected, trials, valid ? "" : "  (BUG: invalid)");
    }
    const std::string tag = "." + std::to_string(length);
    ctx.param("append_ms" + tag, appendMs);
    ctx.param("verify_ms" + tag, verifyMs);
    ctx.counter("tamper_detected" + tag, detected);
  }
}

BENCH_SCENARIO(e8_history_tree, {.hot = true}) {
  util::Rng rng(ctx.seed());
  if (ctx.printing()) {
    std::printf("\nobject history tree (Frientegrity):\n");
    std::printf("  %-8s %14s %12s %12s %14s %12s\n", "ops", "append(us)",
                "prove(us)", "verify(us)", "proof-steps", "consistent");
  }
  const std::size_t maxOps = ctx.smoke() ? 128 : 8192;
  const std::size_t trials = ctx.smoke() ? 50 : 200;
  for (const std::size_t ops : {16u, 128u, 1024u, 8192u}) {
    if (ops > maxOps) continue;
    integrity::HistoryTree tree;
    benchkit::Timer timer;
    for (std::size_t i = 0; i < ops; ++i) {
      tree.append(util::toBytes("op" + std::to_string(i)));
    }
    const double appendUs = 1000 * timer.ms() / static_cast<double>(ops);

    const crypto::Digest root = tree.root();
    std::vector<integrity::HistoryTree::MembershipProof> proofs;
    proofs.reserve(trials);
    timer.reset();
    for (std::size_t t = 0; t < trials; ++t) {
      proofs.push_back(*tree.prove(rng.uniform(ops), ops));
    }
    const double proveUs = 1000 * timer.ms() / static_cast<double>(trials);

    timer.reset();
    bool allGood = true;
    for (const auto& proof : proofs) {
      allGood &= integrity::HistoryTree::verifyMembership(root, proof);
    }
    const double verifyUs = 1000 * timer.ms() / static_cast<double>(trials);
    ctx.require(allGood, "membership proof failed to verify");

    // Prefix consistency against a historical root.
    const bool consistent = tree.consistentWith(ops / 2, tree.rootAt(ops / 2));
    ctx.require(consistent, "prefix consistency check failed");
    if (ctx.printing()) {
      std::printf("  %-8zu %14.2f %12.2f %12.2f %14zu %12s%s\n", ops, appendUs,
                  proveUs, verifyUs, proofs.back().path.size(),
                  consistent ? "yes" : "NO",
                  allGood ? "" : "  (BUG: proof failed)");
    }
    const std::string tag = "." + std::to_string(ops);
    ctx.param("append_us" + tag, appendUs);
    ctx.param("prove_us" + tag, proveUs);
    ctx.param("verify_us" + tag, verifyUs);
    ctx.counter("proof_steps" + tag, proofs.back().path.size());
  }
  if (ctx.printing()) {
    std::printf(
        "\nexpected shape: chain verification linear in length (one signature\n"
        "check per entry); history-tree proof size/time logarithmic in ops;\n"
        "interior tampering detected 10/10.\n");
  }
}

BENCHKIT_MAIN()
