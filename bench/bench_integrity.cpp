// Experiment E8 (paper §IV-B): historical-integrity mechanism costs.
//   - hash-chained timelines: append/verify cost vs timeline length
//     (verification is linear — the price of "provable partial ordering");
//   - object history tree: membership-proof size and verification stay
//     logarithmic in the log length;
//   - tamper detection: a corrupted interior entry is always caught.
#include <chrono>
#include <cstdio>

#include "dosn/integrity/hash_chain.hpp"
#include "dosn/integrity/history_tree.hpp"

using namespace dosn;

namespace {

double msSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  util::Rng rng(42);
  const auto& group = pkcrypto::DlogGroup::cached(512);
  const social::Keyring publisher = social::createKeyring(group, "bob", rng);

  std::printf("E8: historical-integrity costs\n\n");
  std::printf("hash-chained timeline (Schnorr-512 per entry):\n");
  std::printf("  %-8s %12s %14s %14s\n", "length", "append(ms)", "verify(ms)",
              "tamper-found");
  for (const std::size_t length : {8u, 32u, 128u, 512u}) {
    integrity::Timeline timeline(group, publisher);
    auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < length; ++i) {
      timeline.append(util::toBytes("post " + std::to_string(i)), rng);
    }
    const double appendMs = msSince(t0) / static_cast<double>(length);

    t0 = std::chrono::steady_clock::now();
    const bool valid =
        integrity::verifyChain(group, publisher.signing.pub, timeline.entries());
    const double verifyMs = msSince(t0);

    // Tamper an interior entry; detection must be 100%.
    std::size_t detected = 0;
    const std::size_t trials = 10;
    for (std::size_t t = 0; t < trials; ++t) {
      auto entries = timeline.entries();
      entries[rng.uniform(entries.size())].payload = util::toBytes("evil");
      if (!integrity::verifyChain(group, publisher.signing.pub, entries)) {
        ++detected;
      }
    }
    std::printf("  %-8zu %12.3f %14.2f %11zu/%zu%s\n", length, appendMs,
                verifyMs, detected, trials, valid ? "" : "  (BUG: invalid)");
  }

  std::printf("\nobject history tree (Frientegrity):\n");
  std::printf("  %-8s %14s %12s %12s %14s %12s\n", "ops", "append(us)",
              "prove(us)", "verify(us)", "proof-steps", "consistent");
  for (const std::size_t ops : {16u, 128u, 1024u, 8192u}) {
    integrity::HistoryTree tree;
    auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < ops; ++i) {
      tree.append(util::toBytes("op" + std::to_string(i)));
    }
    const double appendUs = 1000 * msSince(t0) / static_cast<double>(ops);

    const crypto::Digest root = tree.root();
    const std::size_t trials = 200;
    std::vector<integrity::HistoryTree::MembershipProof> proofs;
    proofs.reserve(trials);
    t0 = std::chrono::steady_clock::now();
    for (std::size_t t = 0; t < trials; ++t) {
      proofs.push_back(*tree.prove(rng.uniform(ops), ops));
    }
    const double proveUs = 1000 * msSince(t0) / static_cast<double>(trials);

    t0 = std::chrono::steady_clock::now();
    bool allGood = true;
    for (const auto& proof : proofs) {
      allGood &= integrity::HistoryTree::verifyMembership(root, proof);
    }
    const double verifyUs = 1000 * msSince(t0) / static_cast<double>(trials);

    // Prefix consistency against a historical root.
    const bool consistent = tree.consistentWith(ops / 2, tree.rootAt(ops / 2));
    std::printf("  %-8zu %14.2f %12.2f %12.2f %14zu %12s%s\n", ops, appendUs,
                proveUs, verifyUs, proofs.back().path.size(),
                consistent ? "yes" : "NO",
                allGood ? "" : "  (BUG: proof failed)");
  }
  std::printf(
      "\nexpected shape: chain verification linear in length (one signature\n"
      "check per entry); history-tree proof size/time logarithmic in ops;\n"
      "interior tampering detected 10/10.\n");
  return 0;
}
