// Experiment T1: regenerate the paper's Table I ("Classification of security
// aspects and solutions in OSNs") from the live scheme registry, and list the
// module implementing each row in this repository.
//
// `--markdown` emits the committed TABLE1.md document (CI regenerates it and
// fails on drift); every other invocation goes through the shared benchkit
// CLI (`--smoke`, `--json`, ... — see BENCHMARKS.md).
#include <cstdio>
#include <cstring>
#include <string>

#include "dosn/benchkit/benchkit.hpp"
#include "dosn/core/table1.hpp"

using namespace dosn;

namespace {

std::size_t countLines(const std::string& text) {
  std::size_t lines = 0;
  for (const char c : text) {
    if (c == '\n') ++lines;
  }
  return lines;
}

}  // namespace

BENCH_SCENARIO(t1_table1_render) {
  const std::string table = core::renderImplementationInventory();
  if (ctx.printing()) std::printf("%s\n", table.c_str());
  ctx.param("renderer", "renderImplementationInventory");
  ctx.counter("table1.bytes", table.size());
  ctx.counter("table1.lines", countLines(table));
}

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--markdown") == 0) {
    // The exact content of TABLE1.md. Keep this stable: CI diffs the output
    // against the committed file (see .github/workflows/ci.yml).
    std::printf(
        "# Table I — capability matrix\n"
        "\n"
        "Generated from the live scheme registry. Regenerate with:\n"
        "\n"
        "```sh\n"
        "cmake -B build -S . && cmake --build build -j --target bench_table1\n"
        "./build/bench/bench_table1 --markdown > TABLE1.md\n"
        "```\n"
        "\n"
        "CI regenerates this file and fails on drift, so a registry change\n"
        "must land together with the refreshed TABLE1.md.\n"
        "\n"
        "```text\n"
        "%s\n"
        "```\n",
        core::renderImplementationInventory().c_str());
    return 0;
  }
  return benchkit::benchMain(argc, argv);
}
