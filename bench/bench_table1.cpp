// Experiment T1: regenerate the paper's Table I ("Classification of security
// aspects and solutions in OSNs") from the live scheme registry, and list the
// module implementing each row in this repository.
#include <cstdio>

#include "dosn/core/table1.hpp"

int main() {
  std::printf("%s\n", dosn::core::renderImplementationInventory().c_str());
  return 0;
}
