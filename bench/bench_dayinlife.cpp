// Experiment E19: the day-in-the-life macro-workload — the whole DOSN stack
// (Kademlia + replication + socially-aware placement + block stores + friend
// cache + batch chain verification + hybrid-IBBE ACLs) under one sustained,
// production-shaped day of load from src/dosn/workload/ (DESIGN.md §3h):
// Zipf follower/activity skew, a diurnal wave, celebrity flash crowds,
// DECENT-style revocation storms, and an evening churn + fault storm.
//
// Reported per phase (the scenario's JSON "timeline"): applied/completed
// operation counts, revocation re-encryption work, and p50/p95/p99
// end-to-end post-visibility latency — publish to the first *verified* fetch
// by a follower whose chain covers the post. Visibility is a workload-level
// metric: a post published into a quiet phase stays invisible until someone
// bothers to read the wall, so the dawn/night tails are hours while the
// flash-crowd tail is seconds.
//
// e19_dayinlife is the committed-baseline scenario (hot: its wall median is
// gated by the nightly same-runner job); e19_dayinlife_100k re-runs the same
// day inside a >=100k-node simulation — the microblog fleet and its DHT core
// share the event loop with an ambient fleet that pings along the same
// diurnal wave and churns through the same storms.
#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "dosn/app/microblog.hpp"
#include "dosn/benchkit/benchkit.hpp"
#include "dosn/overlay/placement.hpp"
#include "dosn/privacy/hybrid_acl.hpp"
#include "dosn/sim/churn.hpp"
#include "dosn/sim/faults.hpp"
#include "dosn/social/graph_gen.hpp"
#include "dosn/workload/generator.hpp"

using namespace dosn;
using namespace dosn::app;
using benchkit::ScenarioContext;
using sim::kMillisecond;
using sim::kSecond;
using workload::EventKind;
using workload::WorkloadConfig;
using workload::WorkloadEvent;
using workload::WorkloadGenerator;

namespace {

const sim::MessageType kAmbientPing("dayinlife.ambient");

struct PhaseRow {
  std::string name;
  double level = 0;
  std::size_t postsStarted = 0, postsOk = 0;
  std::size_t fetchesStarted = 0, fetchesOk = 0;
  std::size_t flashFetches = 0;
  std::size_t revokes = 0, reencrypted = 0, keyOps = 0;
  std::size_t undecryptable = 0;
  std::size_t visible = 0;
  std::vector<double> visibilityMs;  // sim-clock publish -> verified-visible
  std::map<std::string, std::uint64_t> counterDeltas;  // rpc.* / net.* slices
  sim::SimTime duration = 0;
};

struct DayOutcome {
  std::vector<PhaseRow> rows;
  std::uint64_t scheduleHash = 0;
  std::size_t eventsApplied = 0;
  std::size_t pendingAtEnd = 0;
  std::size_t totalNodes = 0;
  double setupWallMs = 0;
  double dayWallMs = 0;
};

struct Sizes {
  std::size_t users = 20;
  std::size_t substrate = 48;   // full Kademlia replica hosts
  std::size_t ambient = 0;      // plain sim nodes sharing the event loop
  double hourScale = 0.02;      // 1 workload hour -> 72 sim-seconds
  double loadFactor = 1.0;      // scales the peak post/fetch rates
};

double percentile(std::vector<double>& values, double p) {
  std::sort(values.begin(), values.end());
  return benchkit::WallStats::percentile(values, p);
}

DayOutcome runDay(ScenarioContext& ctx, const Sizes& sizes) {
  benchkit::Timer setupTimer;
  WorkloadConfig config = WorkloadConfig::dayInLife(sizes.users);
  // Compress the day onto the sim clock without changing the expected event
  // counts: durations shrink by hourScale, rates grow by 1/hourScale.
  for (auto& phase : config.phases) {
    phase.duration = static_cast<sim::SimTime>(
        static_cast<double>(phase.duration) * sizes.hourScale);
  }
  config.peakPostsPerUserHour *= sizes.loadFactor / sizes.hourScale;
  config.peakFetchesPerUserHour *= sizes.loadFactor / sizes.hourScale;
  const WorkloadGenerator gen(config, ctx.seed());
  const auto& events = gen.events();

  util::Rng rng(ctx.seed());
  sim::Metrics metrics;
  sim::Simulator simulator;
  sim::Network net(simulator,
                   sim::LatencyModel{20 * kMillisecond, 10 * kMillisecond, 0.0},
                   rng);
  net.setMetrics(&metrics);
  const auto& group = pkcrypto::DlogGroup::cached(256);
  social::IdentityRegistry registry;
  // Hybrid envelopes with IBBE identity-key wraps: list-cheap adds, and a
  // DECENT-style revocation — fresh data keys, re-wrap to the surviving
  // members, full history re-encryption — whose work the bench meters.
  privacy::HybridAcl acl(group, rng, privacy::WrapScheme::kIbbe);

  overlay::SocialPolicyConfig policyConfig;
  policyConfig.graph = &gen.graph();
  overlay::SocialPolicy policy(net, policyConfig);

  overlay::KademliaConfig dhtConfig;
  dhtConfig.k = 8;
  dhtConfig.storeWidth = 4;
  dhtConfig.rpcTimeout = 300 * kMillisecond;
  dhtConfig.adaptiveTimeout = true;
  dhtConfig.retry = overlay::RetryPolicy{2, 150 * kMillisecond, 2.0};
  dhtConfig.placement = &policy;

  FriendCacheConfig cache;
  cache.enabled = true;

  // DHT core: replica-host substrate plus one MicroblogNode per user.
  std::vector<std::unique_ptr<overlay::KademliaNode>> substrate;
  substrate.reserve(sizes.substrate);
  for (std::size_t i = 0; i < sizes.substrate; ++i) {
    substrate.push_back(std::make_unique<overlay::KademliaNode>(
        net, overlay::OverlayId::random(rng), dhtConfig));
  }
  const overlay::Contact seed{substrate[0]->id(), substrate[0]->addr()};
  for (std::size_t i = 1; i < sizes.substrate; ++i) {
    substrate[i]->bootstrap(seed);
    simulator.run();
  }
  std::vector<std::unique_ptr<MicroblogNode>> users;
  users.reserve(sizes.users);
  for (std::size_t i = 0; i < sizes.users; ++i) {
    users.push_back(std::make_unique<MicroblogNode>(
        net, overlay::OverlayId::random(rng), group, social::syntheticUser(i),
        registry, acl, rng, dhtConfig, cache));
    users.back()->join(seed);
    simulator.run();
  }
  std::vector<sim::NodeAddr> userAddr(sizes.users);
  for (std::size_t i = 0; i < sizes.users; ++i) {
    userAddr[i] = users[i]->dht().addr();
    policy.bind(userAddr[i], social::syntheticUser(i));
    policy.bindId(userAddr[i], users[i]->dht().id());
  }
  for (std::uint32_t u = 0; u < sizes.users; ++u) {
    users[u]->createCircle("wall");
    for (const std::uint32_t f : gen.circleOf(u)) {
      users[u]->addToCircle("wall", social::syntheticUser(f));
      users[u]->addFriendPeer(social::syntheticUser(f), userAddr[f]);
    }
  }

  // Ambient fleet (the 100k rung): plain nodes that share the event loop,
  // the churn storms and the fault plan, and ping along the diurnal wave.
  std::vector<sim::NodeAddr> ambient;
  ambient.reserve(sizes.ambient);
  for (std::size_t i = 0; i < sizes.ambient; ++i) {
    ambient.push_back(net.addNode());
  }

  // One warm-up post per user so every wall exists before the day opens;
  // warm-up posts are born visible so they don't pollute the day's metrics.
  std::size_t warmupOk = 0;
  for (std::size_t i = 0; i < sizes.users; ++i) {
    users[i]->publish("wall", "hello", 0, rng,
                      [&warmupOk](bool ok) { warmupOk += ok ? 1 : 0; });
    simulator.run();
  }

  // Per-author publish ledger for the visibility metric.
  std::vector<std::vector<sim::SimTime>> pubAt(sizes.users);
  std::vector<std::vector<bool>> seen(sizes.users);
  for (std::size_t i = 0; i < sizes.users; ++i) {
    pubAt[i].assign(users[i]->publishedCount(), 0);
    seen[i].assign(users[i]->publishedCount(), true);  // warm-ups: born visible
  }

  const sim::SimTime t0 = simulator.now();
  const auto phaseOfNow = [&]() {
    return workload::phaseIndexAt(
        config, simulator.now() > t0 ? simulator.now() - t0 : 0);
  };

  DayOutcome out;
  out.scheduleHash = gen.hash();
  out.totalNodes = sizes.substrate + sizes.users + sizes.ambient;
  out.rows.resize(config.phases.size());
  for (std::size_t i = 0; i < config.phases.size(); ++i) {
    out.rows[i].name = config.phases[i].name;
    out.rows[i].level = config.phases[i].activityLevel;
    out.rows[i].duration = config.phases[i].duration;
  }
  out.setupWallMs = setupTimer.ms();

  // Fault storm windows come straight from the phase specs.
  sim::FaultPlan plan;
  {
    sim::SimTime start = t0;
    for (const auto& phase : config.phases) {
      if (phase.dropProbability > 0) {
        plan.between(start, start + phase.duration,
                     sim::FaultRule::global().drop(phase.dropProbability));
      }
      start += phase.duration;
    }
  }
  net.setFaultPlan(&plan);

  std::vector<sim::NodeAddr> churnable;
  for (const auto& host : substrate) churnable.push_back(host->addr());
  for (const sim::NodeAddr addr : ambient) churnable.push_back(addr);

  std::size_t pending = 0;
  const auto applyFetch = [&](const WorkloadEvent& e) {
    PhaseRow& issueRow = out.rows[phaseOfNow()];
    ++issueRow.fetchesStarted;
    if (e.kind == EventKind::kFlashFetch) ++issueRow.flashFetches;
    ++pending;
    const std::uint32_t author = e.target;
    users[e.actor]->fetchTimeline(
        social::syntheticUser(author), [&, author](FetchedTimeline t) {
          PhaseRow& row = out.rows[phaseOfNow()];
          --pending;
          if (!t.headValid || !t.chainValid) return;
          ++row.fetchesOk;
          row.undecryptable += t.undecryptable;
          // Everything the verified chain covers is now provably visible at
          // this follower; first sighting records the publish->visible gap.
          const std::size_t len = t.posts.size() + t.undecryptable;
          for (std::size_t seq = 0; seq < len && seq < seen[author].size();
               ++seq) {
            if (seen[author][seq]) continue;
            seen[author][seq] = true;
            ++row.visible;
            row.visibilityMs.push_back(
                static_cast<double>(simulator.now() - pubAt[author][seq]) /
                kMillisecond);
          }
        });
  };
  const auto applyEvent = [&](const WorkloadEvent& e) {
    switch (e.kind) {
      case EventKind::kPost:
      case EventKind::kFlashPost: {
        PhaseRow& row = out.rows[phaseOfNow()];
        ++row.postsStarted;
        pubAt[e.actor].push_back(simulator.now());
        seen[e.actor].push_back(false);
        ++pending;
        users[e.actor]->publish(
            "wall", "p" + std::to_string(pubAt[e.actor].size()),
            static_cast<social::Timestamp>(simulator.now() / kSecond), rng,
            [&](bool ok) {
              --pending;
              if (ok) ++out.rows[phaseOfNow()].postsOk;
            });
        break;
      }
      case EventKind::kFetch:
      case EventKind::kFlashFetch:
        applyFetch(e);
        break;
      case EventKind::kRevoke: {
        PhaseRow& row = out.rows[phaseOfNow()];
        const auto report = acl.removeMember(
            users[e.actor]->circleId("wall"), social::syntheticUser(e.target));
        ++row.revokes;
        row.reencrypted += report.reencryptedEnvelopes;
        row.keyOps += report.keyOperations;
        break;
      }
    }
  };

  // The day itself: phase by phase, replaying the schedule on the sim clock.
  benchkit::Timer dayTimer;
  util::Rng ambientRng(ctx.seed() + 0xa3b1e47ull);
  std::size_t next = 0;
  sim::SimTime phaseStart = t0;
  for (std::size_t p = 0; p < config.phases.size(); ++p) {
    const auto& phase = config.phases[p];
    const sim::SimTime phaseEnd = phaseStart + phase.duration;
    const auto before = metrics.counters();
    const std::uint64_t sentBefore = net.messagesSent();

    std::unique_ptr<sim::ChurnProcess> churn;
    if (phase.offlineFraction > 0 && !churnable.empty()) {
      sim::ChurnConfig churnConfig;
      const double a = 1.0 - phase.offlineFraction;
      churnConfig.meanOnlineSeconds =
          static_cast<double>(phase.duration) / kSecond * a / 2;
      churnConfig.meanOfflineSeconds =
          static_cast<double>(phase.duration) / kSecond * (1 - a) / 2;
      churnConfig.initialOnlineFraction = a;
      churn = std::make_unique<sim::ChurnProcess>(net, churnConfig, churnable);
    }
    // Ambient background load follows the same diurnal wave: two one-shot
    // pings per ambient node-hour of activity, spread over the phase.
    if (!ambient.empty()) {
      const auto pings = static_cast<std::size_t>(
          static_cast<double>(ambient.size()) * phase.activityLevel * 2.0);
      for (std::size_t i = 0; i < pings; ++i) {
        const sim::NodeAddr from =
            ambient[ambientRng.uniform(ambient.size())];
        const sim::NodeAddr to = ambient[ambientRng.uniform(ambient.size())];
        simulator.schedule(
            ambientRng.uniform(phase.duration),
            [&net, from, to] {
              net.send(from, to, sim::Message{kAmbientPing, {}});
            });
      }
    }

    while (next < events.size() && events[next].at + t0 < phaseEnd) {
      const sim::SimTime at = events[next].at + t0;
      if (at > simulator.now()) simulator.runUntil(at);
      applyEvent(events[next]);
      ++next;
      ++out.eventsApplied;
    }
    simulator.runUntil(phaseEnd);
    if (churn) {
      churn->stop();
      for (const sim::NodeAddr addr : churnable) net.setOnline(addr, true);
    }

    PhaseRow& row = out.rows[p];
    for (const auto& [name, value] : metrics.counters()) {
      const auto it = before.find(name);
      const std::uint64_t delta =
          value - (it == before.end() ? 0 : it->second);
      if (delta > 0) row.counterDeltas[name] = delta;
    }
    row.counterDeltas["net.sent"] = net.messagesSent() - sentBefore;
    phaseStart = phaseEnd;
  }

  // Post-day drain: flash tails and in-flight RPCs finish against a healed,
  // fully-online network (bounded so a lost callback fails loudly instead of
  // hanging the bench).
  for (int i = 0; i < 240 && pending > 0; ++i) {
    simulator.runUntil(simulator.now() + kSecond);
  }
  simulator.run();
  out.pendingAtEnd = pending;
  out.dayWallMs = dayTimer.ms();

  ctx.require(warmupOk == sizes.users, "all warm-up publishes must land");
  ctx.require(next == events.size(), "the whole schedule must be applied");
  ctx.require(out.pendingAtEnd == 0, "all operations must complete");
  ctx.mergeMetrics(metrics);
  return out;
}

void report(ScenarioContext& ctx, const Sizes& sizes, const DayOutcome& out) {
  std::size_t postsOk = 0, fetchesOk = 0, fetchesStarted = 0, postsStarted = 0;
  std::size_t revokes = 0, reencrypted = 0, visible = 0, flash = 0;
  std::vector<double> allVis;
  sim::SimTime day = 0;
  for (const PhaseRow& row : out.rows) {
    postsOk += row.postsOk;
    postsStarted += row.postsStarted;
    fetchesOk += row.fetchesOk;
    fetchesStarted += row.fetchesStarted;
    revokes += row.revokes;
    reencrypted += row.reencrypted;
    visible += row.visible;
    flash += row.flashFetches;
    allVis.insert(allVis.end(), row.visibilityMs.begin(),
                  row.visibilityMs.end());
    day += row.duration;
  }

  if (ctx.printing()) {
    std::string ambientNote;
    if (sizes.ambient > 0) {
      ambientNote = " + " + std::to_string(sizes.ambient) + " ambient";
    }
    std::printf(
        "E19 day-in-the-life: %zu users + %zu replica hosts%s "
        "(%zu nodes total),\n"
        "%zu scheduled events over a %.0f sim-second day "
        "(schedule hash %016llx)\n\n",
        sizes.users, sizes.substrate, ambientNote.c_str(), out.totalNodes,
        out.eventsApplied, static_cast<double>(day) / kSecond,
        static_cast<unsigned long long>(out.scheduleHash));
    std::printf("  %-19s %5s %9s %11s %7s %7s %7s %24s\n", "phase", "level",
                "posts", "fetches", "flash", "revoke", "reenc",
                "visibility p50/p95/p99 (s)");
    for (const PhaseRow& row : out.rows) {
      std::vector<double> vis = row.visibilityMs;
      const double p50 = percentile(vis, 50), p95 = percentile(vis, 95),
                   p99 = percentile(vis, 99);
      std::printf("  %-19s %5.2f %4zu/%-4zu %5zu/%-5zu %7zu %7zu %7zu"
                  "   %7.1f %7.1f %7.1f\n",
                  row.name.c_str(), row.level, row.postsOk, row.postsStarted,
                  row.fetchesOk, row.fetchesStarted, row.flashFetches,
                  row.revokes, row.reencrypted, p50 / 1000, p95 / 1000,
                  p99 / 1000);
    }
    std::printf(
        "\nexpected shape: visibility tails track the wave — posts published\n"
        "into quiet phases wait for readers (tails of sim-hours), the flash\n"
        "crowd sees its celebrity post within seconds, and the evening fault\n"
        "storm pays latency without losing completions; revocations re-key +\n"
        "re-encrypt whole histories (the DECENT cost the ACL bench isolates).\n");
  }

  // Scenario totals (exact-gated at seed 42) + the per-phase timeline.
  ctx.counter("events", out.eventsApplied);
  ctx.counter("posts_ok", postsOk);
  ctx.counter("fetches_ok", fetchesOk);
  ctx.counter("flash_fetches", flash);
  ctx.counter("revokes", revokes);
  ctx.counter("reencrypted_envelopes", reencrypted);
  ctx.counter("visible_posts", visible);
  ctx.counter("nodes", out.totalNodes);
  ctx.param("schedule_hash", std::to_string(out.scheduleHash));
  ctx.param("posts_started", static_cast<double>(postsStarted));
  ctx.param("fetches_started", static_cast<double>(fetchesStarted));
  ctx.param("visibility_p50_ms", percentile(allVis, 50));
  ctx.param("visibility_p95_ms", percentile(allVis, 95));
  ctx.param("visibility_p99_ms", percentile(allVis, 99));
  const double daySecs = static_cast<double>(day) / kSecond;
  ctx.param("ops_per_sim_min",
            daySecs > 0 ? (postsOk + fetchesOk) * 60.0 / daySecs : 0);
  ctx.gauge("setup_wall_ms", out.setupWallMs);
  ctx.gauge("day_wall_ms", out.dayWallMs);

  benchkit::Json timeline = benchkit::Json::array();
  for (const PhaseRow& row : out.rows) {
    benchkit::Json phase = benchkit::Json::object();
    phase.set("name", row.name);
    benchkit::Json counters = benchkit::Json::object();
    counters.set("posts_started", row.postsStarted);
    counters.set("posts_ok", row.postsOk);
    counters.set("fetches_started", row.fetchesStarted);
    counters.set("fetches_ok", row.fetchesOk);
    counters.set("flash_fetches", row.flashFetches);
    counters.set("revokes", row.revokes);
    counters.set("reencrypted_envelopes", row.reencrypted);
    counters.set("undecryptable", row.undecryptable);
    counters.set("visible_posts", row.visible);
    for (const auto& [name, value] : row.counterDeltas) {
      counters.set(name, value);
    }
    phase.set("counters", std::move(counters));
    benchkit::Json params = benchkit::Json::object();
    params.set("activity_level", row.level);
    params.set("duration_s", static_cast<double>(row.duration) / kSecond);
    std::vector<double> vis = row.visibilityMs;
    params.set("visibility_p50_ms", percentile(vis, 50));
    params.set("visibility_p95_ms", percentile(vis, 95));
    params.set("visibility_p99_ms", percentile(vis, 99));
    const double phaseSecs = static_cast<double>(row.duration) / kSecond;
    params.set("ops_per_sim_min",
               phaseSecs > 0
                   ? (row.postsOk + row.fetchesOk) * 60.0 / phaseSecs
                   : 0.0);
    phase.set("params", std::move(params));
    timeline.push(std::move(phase));
  }
  ctx.setTimeline(std::move(timeline));
}

}  // namespace

BENCH_SCENARIO(e19_dayinlife, {.hot = true}) {
  Sizes sizes;
  if (ctx.smoke()) {
    sizes.users = 10;
    sizes.substrate = 24;
    sizes.loadFactor = 0.4;
  }
  report(ctx, sizes, runDay(ctx, sizes));
}

// The scale rung: the same day inside a >=100k-node simulation. Too heavy
// for the CI smoke sweep; the acceptance check is byte-identical counters at
// seed 42 across two runs (the sim is deterministic, so any drift means the
// macro-workload perturbed event ordering or RNG consumption).
BENCH_SCENARIO(e19_dayinlife_100k, {.skipInSmoke = true}) {
  Sizes sizes;
  sizes.users = 16;
  sizes.substrate = 128;
  sizes.ambient = 100096 - sizes.users - sizes.substrate;
  sizes.loadFactor = 0.6;
  const DayOutcome out = runDay(ctx, sizes);
  ctx.require(out.totalNodes >= 100000, "the scale rung must run >=100k nodes");
  report(ctx, sizes, out);
}

BENCHKIT_MAIN()
