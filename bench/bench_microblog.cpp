// Experiment E16 (system-level): the full DOSN stack under churn — encrypted,
// hash-chained microblog timelines stored in the Kademlia DHT, fetched and
// verified by followers while nodes come and go.
//
// Sweeps the DHT replication width k and reports end-to-end fetch success,
// verification outcomes and latency — the paper's §I thesis ("replication
// ... to ensure availability" at the price of replica exposure) measured on
// the complete system rather than a single layer.
// F2 (the second scenario) layers a FaultPlan on top of the churn: a
// sustained drop storm plus a substrate partition window, sweeping the DHT
// retry budget (single-shot, fixed, adaptive) — the combined-failure scenario
// the unified RPC endpoint exists for.
//
// `--smoke` shrinks the substrate, fetch rounds and the k sweep.
// E18 compares vanilla vs socially-aware placement (overlay/placement.hpp)
// plus the one-hop friend-cache tier on a Zipf-follower graph: same graph,
// same fetch schedule, two configurations — counting lookup hops, p95 fetch
// latency and total network traffic.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <set>
#include <string>

#include "dosn/app/microblog.hpp"
#include "dosn/benchkit/benchkit.hpp"
#include "dosn/net/retry.hpp"
#include "dosn/overlay/placement.hpp"
#include "dosn/privacy/symmetric_acl.hpp"
#include "dosn/sim/churn.hpp"
#include "dosn/sim/faults.hpp"
#include "dosn/social/graph_gen.hpp"

using namespace dosn;
using namespace dosn::app;
using benchkit::ScenarioContext;
using sim::kMillisecond;
using sim::kSecond;

namespace {

struct Outcome {
  std::size_t attempts = 0;
  std::size_t fetched = 0;      // head found + chain valid
  std::size_t decrypted = 0;    // all posts decrypted
  double meanLatencyMs = 0;
  std::uint64_t readerRetries = 0;  // the fetching node's DHT retries
  std::uint64_t fleetRetries = 0;   // whole swarm, via the shared endpoints
};

Outcome run(const ScenarioContext& ctx, std::size_t replication,
            double onlineFraction, std::size_t retryAttempts = 1,
            net::AdaptiveRetryPolicy* adaptive = nullptr,
            bool withFaults = false, double jitterFraction = 0.0) {
  const int substrateSize = ctx.smoke() ? 12 : 30;
  const int rounds = ctx.smoke() ? 8 : 30;
  util::Rng rng(ctx.seed());
  sim::Simulator simulator;
  sim::Network net(simulator,
                   sim::LatencyModel{20 * kMillisecond, 10 * kMillisecond, 0.0},
                   rng);
  const auto& group = pkcrypto::DlogGroup::cached(256);
  social::IdentityRegistry registry;
  privacy::SymmetricAcl acl(rng);

  overlay::KademliaConfig config;
  config.k = 8;                    // healthy routing tables
  config.storeWidth = replication; // the swept replication factor
  config.rpcTimeout = 300 * kMillisecond;
  // attempts=1 (the E16 default) means no retries — identical behavior to
  // the pre-retry bench; F2 sweeps this, and its "+jitter" row decorrelates
  // the retransmissions of calls that timed out together.
  config.retry = overlay::RetryPolicy{retryAttempts, 150 * kMillisecond, 2.0};
  config.retry.jitterFraction = jitterFraction;
  config.adaptiveRetry = adaptive;
  // Per-destination RFC 6298 timeouts, on for the whole experiment: each
  // peer's timeout tracks its observed RTT instead of the fixed 300ms.
  config.adaptiveTimeout = true;

  // Substrate peers carry replicas; publisher and readers are MicroblogNodes.
  std::vector<std::unique_ptr<overlay::KademliaNode>> substrate;
  for (int i = 0; i < substrateSize; ++i) {
    substrate.push_back(std::make_unique<overlay::KademliaNode>(
        net, overlay::OverlayId::random(rng), config));
  }
  const overlay::Contact seed{substrate[0]->id(), substrate[0]->addr()};
  for (std::size_t i = 1; i < substrate.size(); ++i) {
    substrate[i]->bootstrap(seed);
    simulator.run();
  }

  MicroblogNode alice(net, overlay::OverlayId::random(rng), group, "alice",
                      registry, acl, rng, config);
  MicroblogNode bob(net, overlay::OverlayId::random(rng), group, "bob",
                    registry, acl, rng, config);
  alice.join(seed);
  simulator.run();
  bob.join(seed);
  simulator.run();

  alice.createCircle("friends");
  alice.addToCircle("friends", "bob");
  for (int i = 0; i < 5; ++i) {
    alice.publish("friends", "post " + std::to_string(i),
                  static_cast<social::Timestamp>(i), rng);
    simulator.run();
  }

  // F2 only: a sustained drop storm for the whole fetch phase, plus a
  // partition that islands a third of the substrate for rounds ~10-20.
  sim::FaultPlan plan;
  if (withFaults) {
    plan.at(simulator.now(), sim::FaultRule::global().drop(0.25));
    std::set<sim::NodeAddr> island;
    for (std::size_t i = 0; i < substrate.size() / 3; ++i) {
      island.insert(substrate[i]->addr());
    }
    plan.partition("storm", island, simulator.now() + 300 * kSecond,
                   simulator.now() + 600 * kSecond);
    net.setFaultPlan(&plan);
  }

  // Churn the substrate (publisher goes offline too: the availability test).
  std::vector<sim::NodeAddr> churnable;
  for (const auto& p : substrate) churnable.push_back(p->addr());
  churnable.push_back(alice.dht().addr());
  sim::ChurnConfig churnConfig;
  churnConfig.meanOnlineSeconds = 300 * onlineFraction;
  churnConfig.meanOfflineSeconds = 300 * (1 - onlineFraction);
  churnConfig.initialOnlineFraction = onlineFraction;
  sim::ChurnProcess churn(net, churnConfig, churnable);

  Outcome out;
  double latencySum = 0;
  for (int round = 0; round < rounds; ++round) {
    simulator.runUntil(simulator.now() + 30 * kSecond);
    ++out.attempts;
    const sim::SimTime start = simulator.now();
    sim::SimTime doneAt = start;
    FetchedTimeline fetched;
    bool completed = false;
    bob.fetchTimeline("alice", [&](FetchedTimeline t) {
      fetched = std::move(t);
      doneAt = simulator.now();
      completed = true;
    });
    // Churn keeps the event queue alive forever; give each fetch a bounded
    // window instead of draining.
    while (!completed) {
      simulator.runUntil(simulator.now() + kSecond);
    }
    if (fetched.headValid && fetched.chainValid) {
      ++out.fetched;
      latencySum += static_cast<double>(doneAt - start) / kMillisecond;
      if (fetched.posts.size() == 5 && fetched.undecryptable == 0) {
        ++out.decrypted;
      }
    }
  }
  churn.stop();
  out.meanLatencyMs =
      out.fetched ? latencySum / static_cast<double>(out.fetched) : 0;
  out.readerRetries = bob.dhtRpcRetries();
  out.fleetRetries = alice.dhtRpcRetries() + bob.dhtRpcRetries();
  for (const auto& p : substrate) out.fleetRetries += p->rpcRetries();
  return out;
}

// --- E18: social vs vanilla placement + friend-cache tier -----------------

struct SocialOutcome {
  std::size_t attempts = 0;
  std::size_t verified = 0;      // head found + chain valid
  std::uint64_t lookups = 0;     // DHT value lookups across the fleet
  std::uint64_t hops = 0;        // DHT query rounds + 1 per remote cache hit
  std::uint64_t localHits = 0;
  std::uint64_t remoteHits = 0;
  std::uint64_t misses = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t msgs = 0;        // network messages sent during fetch phase
  double p95Ms = 0;
  double meanMs = 0;
};

// One full run of the E18 workload: `users` MicroblogNodes (one per user of
// a Zipf-follower graph, every node both publishes and reads), no churn.
// `social` switches BOTH levers at once — SocialPolicy placement and the
// friend-cache tier — vanilla is the stock closest-XOR store path with no
// cache. The follower graph and the fetch schedule are drawn from their own
// RNG streams so both configurations see byte-identical workloads.
SocialOutcome runSocial(const ScenarioContext& ctx, bool social) {
  const std::size_t users = ctx.smoke() ? 10 : 24;
  // Stranger substrate nodes dilute the DHT so value lookups cost real query
  // rounds (in a users-only network everyone is within one hop of every key
  // and there is nothing for locality to save).
  const std::size_t substrateSize = ctx.smoke() ? 30 : 72;
  const int rounds = ctx.smoke() ? 24 : 120;
  const std::size_t postsPerUser = 3;

  util::Rng graphRng(ctx.seed() + 0x50c1a1);
  const social::SocialGraph graph =
      social::zipfFollower(users, 3, 1.0, graphRng);

  util::Rng rng(ctx.seed());
  sim::Simulator simulator;
  sim::Network net(simulator,
                   sim::LatencyModel{20 * kMillisecond, 10 * kMillisecond, 0.0},
                   rng);
  const auto& group = pkcrypto::DlogGroup::cached(256);
  social::IdentityRegistry registry;
  privacy::SymmetricAcl acl(rng);

  overlay::SocialPolicyConfig policyConfig;
  policyConfig.graph = &graph;
  overlay::SocialPolicy policy(net, policyConfig);

  overlay::KademliaConfig config;
  config.k = 8;
  config.storeWidth = 4;
  config.rpcTimeout = 300 * kMillisecond;
  config.adaptiveTimeout = true;
  if (social) config.placement = &policy;

  FriendCacheConfig cache;
  cache.enabled = social;

  // Stranger substrate first, then one full MicroblogNode per user so social
  // placement can land replicas on the owner's friends.
  std::vector<std::unique_ptr<overlay::KademliaNode>> substrate;
  substrate.reserve(substrateSize);
  for (std::size_t i = 0; i < substrateSize; ++i) {
    substrate.push_back(std::make_unique<overlay::KademliaNode>(
        net, overlay::OverlayId::random(rng), config));
  }
  const overlay::Contact seed{substrate[0]->id(), substrate[0]->addr()};
  for (std::size_t i = 1; i < substrateSize; ++i) {
    substrate[i]->bootstrap(seed);
    simulator.run();
  }
  std::vector<std::unique_ptr<MicroblogNode>> nodes;
  nodes.reserve(users);
  for (std::size_t i = 0; i < users; ++i) {
    nodes.push_back(std::make_unique<MicroblogNode>(
        net, overlay::OverlayId::random(rng), group, social::syntheticUser(i),
        registry, acl, rng, config, cache));
    nodes.back()->join(seed);
    simulator.run();
  }

  // Bind every node for the policy (even in the vanilla run — binding draws
  // no randomness and keeps the two runs structurally identical), and tell
  // each node where its friends' caches live.
  std::vector<sim::NodeAddr> addrOf(users);
  for (std::size_t i = 0; i < users; ++i) {
    addrOf[i] = nodes[i]->dht().addr();
    policy.bind(addrOf[i], social::syntheticUser(i));
    policy.bindId(addrOf[i], nodes[i]->dht().id());
  }
  for (std::size_t i = 0; i < users; ++i) {
    for (const auto& friendId : graph.friendsOf(social::syntheticUser(i))) {
      const std::size_t f = std::stoul(friendId.substr(1));
      nodes[i]->addFriendPeer(friendId, addrOf[f]);
    }
  }

  // Every user publishes a short wall readable by their (symmetric) friends.
  for (std::size_t i = 0; i < users; ++i) {
    nodes[i]->createCircle("wall");
    for (const auto& friendId : graph.friendsOf(social::syntheticUser(i))) {
      nodes[i]->addToCircle("wall", friendId);
    }
    for (std::size_t p = 0; p < postsPerUser; ++p) {
      nodes[i]->publish("wall", "post " + std::to_string(p),
                        static_cast<social::Timestamp>(p), rng);
      simulator.run();
    }
  }

  // Fetch phase: readers fetch the timelines of users they follow, with
  // authors drawn Zipf (the celebrities get read the most — exactly where a
  // friend cache amortizes). Schedule RNG is shared across configurations.
  util::Rng scheduleRng(ctx.seed() + 0xf00d);
  const std::uint64_t msgsBefore = net.messagesSent();
  SocialOutcome out;
  std::vector<double> latencies;
  latencies.reserve(static_cast<std::size_t>(rounds));
  for (int round = 0; round < rounds; ++round) {
    simulator.runUntil(simulator.now() + 10 * kSecond);
    const std::size_t a = scheduleRng.zipf(users, 1.0);
    const auto author = social::syntheticUser(a);
    const auto followers = graph.friendsOf(author);
    if (followers.empty()) continue;  // same branch in both runs
    const auto& readerId =
        followers[static_cast<std::size_t>(scheduleRng.uniform(followers.size()))];
    MicroblogNode& reader = *nodes[std::stoul(readerId.substr(1))];
    ++out.attempts;
    const sim::SimTime start = simulator.now();
    sim::SimTime doneAt = start;
    bool ok = false;
    reader.fetchTimeline(author, [&](FetchedTimeline t) {
      ok = t.headValid && t.chainValid;
      doneAt = simulator.now();
    });
    simulator.run();  // no churn: the queue drains
    if (ok) {
      ++out.verified;
      latencies.push_back(static_cast<double>(doneAt - start) / kMillisecond);
    }
  }
  out.msgs = net.messagesSent() - msgsBefore;
  for (const auto& node : nodes) {
    const FetchStats& s = node->fetchStats();
    out.lookups += s.lookups;
    out.hops += s.hops;
    out.localHits += s.cacheLocalHits;
    out.remoteHits += s.cacheRemoteHits;
    out.misses += s.cacheMisses;
    out.invalidations += s.cacheInvalidations;
  }
  std::sort(latencies.begin(), latencies.end());
  out.p95Ms = benchkit::WallStats::percentile(latencies, 95.0);
  double sum = 0;
  for (const double v : latencies) sum += v;
  out.meanMs =
      latencies.empty() ? 0 : sum / static_cast<double>(latencies.size());
  return out;
}

}  // namespace

BENCH_SCENARIO(e16_churn_sweep) {
  const int substrateSize = ctx.smoke() ? 12 : 30;
  const int rounds = ctx.smoke() ? 8 : 30;
  ctx.param("substrate", static_cast<double>(substrateSize));
  ctx.param("rounds", static_cast<double>(rounds));
  if (ctx.printing()) {
    std::printf(
        "E16 (system-level): encrypted microblog fetches under churn\n"
        "(%d substrate peers + publisher churn, 5-post timeline, %d fetches)\n\n",
        substrateSize, rounds);
  }
  for (const double online : {0.5, 0.8}) {
    if (ctx.smoke() && online < 0.8) continue;
    if (ctx.printing()) {
      std::printf("node availability a=%.0f%%\n", 100 * online);
      std::printf("  %-6s %18s %18s %14s\n", "k", "verified fetches",
                  "fully decrypted", "latency(ms)");
    }
    for (const std::size_t k : {1u, 2u, 4u, 8u}) {
      if (ctx.smoke() && k != 2 && k != 4) continue;
      const Outcome o = run(ctx, k, online);
      if (ctx.printing()) {
        std::printf("  %-6zu %13zu/%-4zu %13zu/%-4zu %14.0f\n", k, o.fetched,
                    o.attempts, o.decrypted, o.attempts, o.meanLatencyMs);
      }
      const std::string tag = ".a" + std::to_string(static_cast<int>(
                                  100 * online)) +
                              ".k" + std::to_string(k);
      ctx.counter("fetched" + tag, o.fetched);
      ctx.counter("decrypted" + tag, o.decrypted);
      ctx.param("latency_ms" + tag, o.meanLatencyMs);
    }
    if (ctx.printing()) std::printf("\n");
  }
  if (ctx.printing()) {
    std::printf(
        "expected shape: fetch success tracks replica availability (all 6 DHT\n"
        "records must be reachable), rising steeply with k and with node\n"
        "uptime; every successful fetch verifies the chain and decrypts — the\n"
        "full privacy+integrity+availability story at once.\n");
  }
}

BENCH_SCENARIO(f2_storm) {
  if (ctx.printing()) {
    std::printf(
        "\nF2: churn + fault storm combined (k=4, a=80%%, 25%% drop for the\n"
        "whole fetch phase, 1/3 of the substrate partitioned for ~5 minutes),\n"
        "sweeping the per-destination retry budget base through the shared\n"
        "RPC endpoint (adaptive timeouts on: each peer's budget can grow\n"
        "beyond the base as its observed timeout rate warrants)\n\n");
    std::printf("  %-10s %18s %18s %14s %10s %10s\n", "budget",
                "verified fetches", "fully decrypted", "latency(ms)",
                "rdr.retry", "all.retry");
  }
  auto record = [&ctx](const char* label, const Outcome& o) {
    const std::string tag = std::string(".") + label;
    ctx.counter("fetched" + tag, o.fetched);
    ctx.counter("decrypted" + tag, o.decrypted);
    ctx.param("latency_ms" + tag, o.meanLatencyMs);
    ctx.counter("reader_retries" + tag, o.readerRetries);
    ctx.counter("fleet_retries" + tag, o.fleetRetries);
  };
  for (const std::size_t attempts : {1u, 3u}) {
    if (ctx.smoke() && attempts == 1) continue;
    const Outcome o = run(ctx, 4, 0.8, attempts, nullptr, /*withFaults=*/true);
    if (ctx.printing()) {
      std::printf("  %-10zu %13zu/%-4zu %13zu/%-4zu %14.0f %10llu %10llu\n",
                  attempts, o.fetched, o.attempts, o.decrypted, o.attempts,
                  o.meanLatencyMs,
                  static_cast<unsigned long long>(o.readerRetries),
                  static_cast<unsigned long long>(o.fleetRetries));
    }
    record(attempts == 1 ? "base1" : "base3", o);
  }
  if (!ctx.smoke()) {
    // Budget 3 with +/-30% backoff jitter: same retry spend, but the storm's
    // synchronized timeout cohorts retransmit at decorrelated instants.
    const Outcome o =
        run(ctx, 4, 0.8, 3, nullptr, /*withFaults=*/true, /*jitterFraction=*/0.3);
    if (ctx.printing()) {
      std::printf("  %-10s %13zu/%-4zu %13zu/%-4zu %14.0f %10llu %10llu\n",
                  "3+jitter", o.fetched, o.attempts, o.decrypted, o.attempts,
                  o.meanLatencyMs,
                  static_cast<unsigned long long>(o.readerRetries),
                  static_cast<unsigned long long>(o.fleetRetries));
    }
    record("jitter", o);
  }
  {
    net::AdaptiveRetryPolicy::Config config;
    config.base = overlay::RetryPolicy{1, 150 * kMillisecond, 2.0};
    config.maxAttempts = 4;
    net::AdaptiveRetryPolicy adaptive(config);
    const Outcome o = run(ctx, 4, 0.8, 1, &adaptive, /*withFaults=*/true);
    if (ctx.printing()) {
      std::printf("  %-10s %13zu/%-4zu %13zu/%-4zu %14.0f %10llu %10llu"
                  "   (final budget %zu, est.rate %.0f%%)\n",
                  "adaptive", o.fetched, o.attempts, o.decrypted, o.attempts,
                  o.meanLatencyMs,
                  static_cast<unsigned long long>(o.readerRetries),
                  static_cast<unsigned long long>(o.fleetRetries),
                  adaptive.attempts(), 100 * adaptive.timeoutRate());
    }
    record("adaptive", o);
    ctx.counter("adaptive_budget", adaptive.attempts());
    ctx.param("adaptive_timeout_rate", adaptive.timeoutRate());
  }
  if (ctx.printing()) {
    std::printf(
        "expected shape: per-destination budgets grow where the storm bites,\n"
        "so even base 1 recovers most fetches; a larger base spends more\n"
        "retries for the same success; backoff jitter decorrelates the\n"
        "storm's synchronized retransmit cohorts and buys back the rest.\n");
  }
}

BENCH_SCENARIO(e18_social_vs_vanilla) {
  const std::size_t users = ctx.smoke() ? 10 : 24;
  const int rounds = ctx.smoke() ? 24 : 120;
  ctx.param("users", static_cast<double>(users));
  ctx.param("rounds", static_cast<double>(rounds));
  if (ctx.printing()) {
    std::printf(
        "\nE18: socially-aware placement + friend-cache tier vs vanilla\n"
        "(%zu users on a Zipf follower graph, 3 posts each, %d Zipf-read\n"
        "fetches by followers; no churn — pure locality comparison)\n\n",
        users, rounds);
    std::printf("  %-8s %12s %8s %8s %10s %10s %10s\n", "config", "verified",
                "lookups", "hops", "p95(ms)", "mean(ms)", "msgs");
  }
  SocialOutcome results[2];
  for (const bool social : {false, true}) {
    const SocialOutcome o = runSocial(ctx, social);
    results[social ? 1 : 0] = o;
    const std::string tag = social ? ".social" : ".vanilla";
    ctx.counter("verified" + tag, o.verified);
    ctx.counter("lookups" + tag, o.lookups);
    ctx.counter("hops" + tag, o.hops);
    ctx.counter("msgs" + tag, o.msgs);
    ctx.param("p95_ms" + tag, o.p95Ms);
    ctx.param("mean_ms" + tag, o.meanMs);
    if (social) {
      ctx.counter("cache_local_hits", o.localHits);
      ctx.counter("cache_remote_hits", o.remoteHits);
      ctx.counter("cache_misses", o.misses);
      ctx.counter("cache_invalidations", o.invalidations);
      const std::uint64_t probes = o.localHits + o.remoteHits + o.misses;
      const double hitRatio =
          probes ? static_cast<double>(o.localHits + o.remoteHits) /
                       static_cast<double>(probes)
                 : 0.0;
      ctx.param("cache_hit_ratio", hitRatio);
      if (ctx.printing()) {
        std::printf(
            "  %-8s %7zu/%-4zu %8llu %8llu %10.0f %10.0f %10llu\n"
            "           cache: %llu local + %llu remote hits, %llu misses, "
            "%llu invalidations (hit ratio %.2f)\n",
            "social", o.verified, o.attempts,
            static_cast<unsigned long long>(o.lookups),
            static_cast<unsigned long long>(o.hops), o.p95Ms, o.meanMs,
            static_cast<unsigned long long>(o.msgs),
            static_cast<unsigned long long>(o.localHits),
            static_cast<unsigned long long>(o.remoteHits),
            static_cast<unsigned long long>(o.misses),
            static_cast<unsigned long long>(o.invalidations), hitRatio);
      }
    } else if (ctx.printing()) {
      std::printf("  %-8s %7zu/%-4zu %8llu %8llu %10.0f %10.0f %10llu\n",
                  "vanilla", o.verified, o.attempts,
                  static_cast<unsigned long long>(o.lookups),
                  static_cast<unsigned long long>(o.hops), o.p95Ms, o.meanMs,
                  static_cast<unsigned long long>(o.msgs));
    }
  }
  ctx.require(results[1].verified >= results[0].verified,
              "social must verify at least as many fetches as vanilla");
  ctx.require(results[1].hops < results[0].hops,
              "social placement + friend cache must cut lookup hops");
  ctx.require(results[1].p95Ms < results[0].p95Ms,
              "social placement + friend cache must cut p95 fetch latency");
  if (ctx.printing()) {
    std::printf(
        "\nexpected shape: the friend cache absorbs repeat reads of popular\n"
        "walls (local hits are free, remote hits cost 1 hop) and social\n"
        "placement keeps replicas on follower nodes, so the social column\n"
        "wins on hops, p95 latency and total message traffic.\n");
  }
}

BENCHKIT_MAIN()
