// Experiment E16 (system-level): the full DOSN stack under churn — encrypted,
// hash-chained microblog timelines stored in the Kademlia DHT, fetched and
// verified by followers while nodes come and go.
//
// Sweeps the DHT replication width k and reports end-to-end fetch success,
// verification outcomes and latency — the paper's §I thesis ("replication
// ... to ensure availability" at the price of replica exposure) measured on
// the complete system rather than a single layer.
#include <cstdio>
#include <memory>

#include "dosn/app/microblog.hpp"
#include "dosn/privacy/symmetric_acl.hpp"
#include "dosn/sim/churn.hpp"

using namespace dosn;
using namespace dosn::app;
using sim::kMillisecond;
using sim::kSecond;

namespace {

struct Outcome {
  std::size_t attempts = 0;
  std::size_t fetched = 0;      // head found + chain valid
  std::size_t decrypted = 0;    // all posts decrypted
  double meanLatencyMs = 0;
};

Outcome run(std::size_t replication, double onlineFraction) {
  util::Rng rng(42);
  sim::Simulator simulator;
  sim::Network net(simulator,
                   sim::LatencyModel{20 * kMillisecond, 10 * kMillisecond, 0.0},
                   rng);
  const auto& group = pkcrypto::DlogGroup::cached(256);
  social::IdentityRegistry registry;
  privacy::SymmetricAcl acl(rng);

  overlay::KademliaConfig config;
  config.k = 8;                    // healthy routing tables
  config.storeWidth = replication; // the swept replication factor
  config.rpcTimeout = 300 * kMillisecond;

  // Substrate peers carry replicas; publisher and readers are MicroblogNodes.
  std::vector<std::unique_ptr<overlay::KademliaNode>> substrate;
  for (int i = 0; i < 30; ++i) {
    substrate.push_back(std::make_unique<overlay::KademliaNode>(
        net, overlay::OverlayId::random(rng), config));
  }
  const overlay::Contact seed{substrate[0]->id(), substrate[0]->addr()};
  for (std::size_t i = 1; i < substrate.size(); ++i) {
    substrate[i]->bootstrap(seed);
    simulator.run();
  }

  MicroblogNode alice(net, overlay::OverlayId::random(rng), group, "alice",
                      registry, acl, rng, config);
  MicroblogNode bob(net, overlay::OverlayId::random(rng), group, "bob",
                    registry, acl, rng, config);
  alice.join(seed);
  simulator.run();
  bob.join(seed);
  simulator.run();

  alice.createCircle("friends");
  alice.addToCircle("friends", "bob");
  for (int i = 0; i < 5; ++i) {
    alice.publish("friends", "post " + std::to_string(i),
                  static_cast<social::Timestamp>(i), rng);
    simulator.run();
  }

  // Churn the substrate (publisher goes offline too: the availability test).
  std::vector<sim::NodeAddr> churnable;
  for (const auto& p : substrate) churnable.push_back(p->addr());
  churnable.push_back(alice.dht().addr());
  sim::ChurnConfig churnConfig;
  churnConfig.meanOnlineSeconds = 300 * onlineFraction;
  churnConfig.meanOfflineSeconds = 300 * (1 - onlineFraction);
  churnConfig.initialOnlineFraction = onlineFraction;
  sim::ChurnProcess churn(net, churnConfig, churnable);

  Outcome out;
  double latencySum = 0;
  for (int round = 0; round < 30; ++round) {
    simulator.runUntil(simulator.now() + 30 * kSecond);
    ++out.attempts;
    const sim::SimTime start = simulator.now();
    sim::SimTime doneAt = start;
    FetchedTimeline fetched;
    bool completed = false;
    bob.fetchTimeline("alice", [&](FetchedTimeline t) {
      fetched = std::move(t);
      doneAt = simulator.now();
      completed = true;
    });
    // Churn keeps the event queue alive forever; give each fetch a bounded
    // window instead of draining.
    while (!completed) {
      simulator.runUntil(simulator.now() + kSecond);
    }
    if (fetched.headValid && fetched.chainValid) {
      ++out.fetched;
      latencySum += static_cast<double>(doneAt - start) / kMillisecond;
      if (fetched.posts.size() == 5 && fetched.undecryptable == 0) {
        ++out.decrypted;
      }
    }
  }
  churn.stop();
  out.meanLatencyMs =
      out.fetched ? latencySum / static_cast<double>(out.fetched) : 0;
  return out;
}

}  // namespace

int main() {
  std::printf(
      "E16 (system-level): encrypted microblog fetches under churn\n"
      "(30 substrate peers + publisher churn, 5-post timeline, 30 fetches)\n\n");
  for (const double online : {0.5, 0.8}) {
    std::printf("node availability a=%.0f%%\n", 100 * online);
    std::printf("  %-6s %18s %18s %14s\n", "k", "verified fetches",
                "fully decrypted", "latency(ms)");
    for (const std::size_t k : {1u, 2u, 4u, 8u}) {
      const Outcome o = run(k, online);
      std::printf("  %-6zu %13zu/%-4zu %13zu/%-4zu %14.0f\n", k, o.fetched,
                  o.attempts, o.decrypted, o.attempts, o.meanLatencyMs);
    }
    std::printf("\n");
  }
  std::printf(
      "expected shape: fetch success tracks replica availability (all 6 DHT\n"
      "records must be reachable), rising steeply with k and with node\n"
      "uptime; every successful fetch verifies the chain and decrypts — the\n"
      "full privacy+integrity+availability story at once.\n");
  return 0;
}
