// Experiment E16 (system-level): the full DOSN stack under churn — encrypted,
// hash-chained microblog timelines stored in the Kademlia DHT, fetched and
// verified by followers while nodes come and go.
//
// Sweeps the DHT replication width k and reports end-to-end fetch success,
// verification outcomes and latency — the paper's §I thesis ("replication
// ... to ensure availability" at the price of replica exposure) measured on
// the complete system rather than a single layer.
// F2 (the second scenario) layers a FaultPlan on top of the churn: a
// sustained drop storm plus a substrate partition window, sweeping the DHT
// retry budget (single-shot, fixed, adaptive) — the combined-failure scenario
// the unified RPC endpoint exists for.
//
// `--smoke` shrinks the substrate, fetch rounds and the k sweep.
#include <cstdio>
#include <memory>
#include <set>
#include <string>

#include "dosn/app/microblog.hpp"
#include "dosn/benchkit/benchkit.hpp"
#include "dosn/net/retry.hpp"
#include "dosn/privacy/symmetric_acl.hpp"
#include "dosn/sim/churn.hpp"
#include "dosn/sim/faults.hpp"

using namespace dosn;
using namespace dosn::app;
using benchkit::ScenarioContext;
using sim::kMillisecond;
using sim::kSecond;

namespace {

struct Outcome {
  std::size_t attempts = 0;
  std::size_t fetched = 0;      // head found + chain valid
  std::size_t decrypted = 0;    // all posts decrypted
  double meanLatencyMs = 0;
  std::uint64_t readerRetries = 0;  // the fetching node's DHT retries
  std::uint64_t fleetRetries = 0;   // whole swarm, via the shared endpoints
};

Outcome run(const ScenarioContext& ctx, std::size_t replication,
            double onlineFraction, std::size_t retryAttempts = 1,
            net::AdaptiveRetryPolicy* adaptive = nullptr,
            bool withFaults = false, double jitterFraction = 0.0) {
  const int substrateSize = ctx.smoke() ? 12 : 30;
  const int rounds = ctx.smoke() ? 8 : 30;
  util::Rng rng(ctx.seed());
  sim::Simulator simulator;
  sim::Network net(simulator,
                   sim::LatencyModel{20 * kMillisecond, 10 * kMillisecond, 0.0},
                   rng);
  const auto& group = pkcrypto::DlogGroup::cached(256);
  social::IdentityRegistry registry;
  privacy::SymmetricAcl acl(rng);

  overlay::KademliaConfig config;
  config.k = 8;                    // healthy routing tables
  config.storeWidth = replication; // the swept replication factor
  config.rpcTimeout = 300 * kMillisecond;
  // attempts=1 (the E16 default) means no retries — identical behavior to
  // the pre-retry bench; F2 sweeps this, and its "+jitter" row decorrelates
  // the retransmissions of calls that timed out together.
  config.retry = overlay::RetryPolicy{retryAttempts, 150 * kMillisecond, 2.0};
  config.retry.jitterFraction = jitterFraction;
  config.adaptiveRetry = adaptive;
  // Per-destination RFC 6298 timeouts, on for the whole experiment: each
  // peer's timeout tracks its observed RTT instead of the fixed 300ms.
  config.adaptiveTimeout = true;

  // Substrate peers carry replicas; publisher and readers are MicroblogNodes.
  std::vector<std::unique_ptr<overlay::KademliaNode>> substrate;
  for (int i = 0; i < substrateSize; ++i) {
    substrate.push_back(std::make_unique<overlay::KademliaNode>(
        net, overlay::OverlayId::random(rng), config));
  }
  const overlay::Contact seed{substrate[0]->id(), substrate[0]->addr()};
  for (std::size_t i = 1; i < substrate.size(); ++i) {
    substrate[i]->bootstrap(seed);
    simulator.run();
  }

  MicroblogNode alice(net, overlay::OverlayId::random(rng), group, "alice",
                      registry, acl, rng, config);
  MicroblogNode bob(net, overlay::OverlayId::random(rng), group, "bob",
                    registry, acl, rng, config);
  alice.join(seed);
  simulator.run();
  bob.join(seed);
  simulator.run();

  alice.createCircle("friends");
  alice.addToCircle("friends", "bob");
  for (int i = 0; i < 5; ++i) {
    alice.publish("friends", "post " + std::to_string(i),
                  static_cast<social::Timestamp>(i), rng);
    simulator.run();
  }

  // F2 only: a sustained drop storm for the whole fetch phase, plus a
  // partition that islands a third of the substrate for rounds ~10-20.
  sim::FaultPlan plan;
  if (withFaults) {
    plan.at(simulator.now(), sim::FaultRule::global().drop(0.25));
    std::set<sim::NodeAddr> island;
    for (std::size_t i = 0; i < substrate.size() / 3; ++i) {
      island.insert(substrate[i]->addr());
    }
    plan.partition("storm", island, simulator.now() + 300 * kSecond,
                   simulator.now() + 600 * kSecond);
    net.setFaultPlan(&plan);
  }

  // Churn the substrate (publisher goes offline too: the availability test).
  std::vector<sim::NodeAddr> churnable;
  for (const auto& p : substrate) churnable.push_back(p->addr());
  churnable.push_back(alice.dht().addr());
  sim::ChurnConfig churnConfig;
  churnConfig.meanOnlineSeconds = 300 * onlineFraction;
  churnConfig.meanOfflineSeconds = 300 * (1 - onlineFraction);
  churnConfig.initialOnlineFraction = onlineFraction;
  sim::ChurnProcess churn(net, churnConfig, churnable);

  Outcome out;
  double latencySum = 0;
  for (int round = 0; round < rounds; ++round) {
    simulator.runUntil(simulator.now() + 30 * kSecond);
    ++out.attempts;
    const sim::SimTime start = simulator.now();
    sim::SimTime doneAt = start;
    FetchedTimeline fetched;
    bool completed = false;
    bob.fetchTimeline("alice", [&](FetchedTimeline t) {
      fetched = std::move(t);
      doneAt = simulator.now();
      completed = true;
    });
    // Churn keeps the event queue alive forever; give each fetch a bounded
    // window instead of draining.
    while (!completed) {
      simulator.runUntil(simulator.now() + kSecond);
    }
    if (fetched.headValid && fetched.chainValid) {
      ++out.fetched;
      latencySum += static_cast<double>(doneAt - start) / kMillisecond;
      if (fetched.posts.size() == 5 && fetched.undecryptable == 0) {
        ++out.decrypted;
      }
    }
  }
  churn.stop();
  out.meanLatencyMs =
      out.fetched ? latencySum / static_cast<double>(out.fetched) : 0;
  out.readerRetries = bob.dhtRpcRetries();
  out.fleetRetries = alice.dhtRpcRetries() + bob.dhtRpcRetries();
  for (const auto& p : substrate) out.fleetRetries += p->rpcRetries();
  return out;
}

}  // namespace

BENCH_SCENARIO(e16_churn_sweep) {
  const int substrateSize = ctx.smoke() ? 12 : 30;
  const int rounds = ctx.smoke() ? 8 : 30;
  ctx.param("substrate", static_cast<double>(substrateSize));
  ctx.param("rounds", static_cast<double>(rounds));
  if (ctx.printing()) {
    std::printf(
        "E16 (system-level): encrypted microblog fetches under churn\n"
        "(%d substrate peers + publisher churn, 5-post timeline, %d fetches)\n\n",
        substrateSize, rounds);
  }
  for (const double online : {0.5, 0.8}) {
    if (ctx.smoke() && online < 0.8) continue;
    if (ctx.printing()) {
      std::printf("node availability a=%.0f%%\n", 100 * online);
      std::printf("  %-6s %18s %18s %14s\n", "k", "verified fetches",
                  "fully decrypted", "latency(ms)");
    }
    for (const std::size_t k : {1u, 2u, 4u, 8u}) {
      if (ctx.smoke() && k != 2 && k != 4) continue;
      const Outcome o = run(ctx, k, online);
      if (ctx.printing()) {
        std::printf("  %-6zu %13zu/%-4zu %13zu/%-4zu %14.0f\n", k, o.fetched,
                    o.attempts, o.decrypted, o.attempts, o.meanLatencyMs);
      }
      const std::string tag = ".a" + std::to_string(static_cast<int>(
                                  100 * online)) +
                              ".k" + std::to_string(k);
      ctx.counter("fetched" + tag, o.fetched);
      ctx.counter("decrypted" + tag, o.decrypted);
      ctx.param("latency_ms" + tag, o.meanLatencyMs);
    }
    if (ctx.printing()) std::printf("\n");
  }
  if (ctx.printing()) {
    std::printf(
        "expected shape: fetch success tracks replica availability (all 6 DHT\n"
        "records must be reachable), rising steeply with k and with node\n"
        "uptime; every successful fetch verifies the chain and decrypts — the\n"
        "full privacy+integrity+availability story at once.\n");
  }
}

BENCH_SCENARIO(f2_storm) {
  if (ctx.printing()) {
    std::printf(
        "\nF2: churn + fault storm combined (k=4, a=80%%, 25%% drop for the\n"
        "whole fetch phase, 1/3 of the substrate partitioned for ~5 minutes),\n"
        "sweeping the per-destination retry budget base through the shared\n"
        "RPC endpoint (adaptive timeouts on: each peer's budget can grow\n"
        "beyond the base as its observed timeout rate warrants)\n\n");
    std::printf("  %-10s %18s %18s %14s %10s %10s\n", "budget",
                "verified fetches", "fully decrypted", "latency(ms)",
                "rdr.retry", "all.retry");
  }
  auto record = [&ctx](const char* label, const Outcome& o) {
    const std::string tag = std::string(".") + label;
    ctx.counter("fetched" + tag, o.fetched);
    ctx.counter("decrypted" + tag, o.decrypted);
    ctx.param("latency_ms" + tag, o.meanLatencyMs);
    ctx.counter("reader_retries" + tag, o.readerRetries);
    ctx.counter("fleet_retries" + tag, o.fleetRetries);
  };
  for (const std::size_t attempts : {1u, 3u}) {
    if (ctx.smoke() && attempts == 1) continue;
    const Outcome o = run(ctx, 4, 0.8, attempts, nullptr, /*withFaults=*/true);
    if (ctx.printing()) {
      std::printf("  %-10zu %13zu/%-4zu %13zu/%-4zu %14.0f %10llu %10llu\n",
                  attempts, o.fetched, o.attempts, o.decrypted, o.attempts,
                  o.meanLatencyMs,
                  static_cast<unsigned long long>(o.readerRetries),
                  static_cast<unsigned long long>(o.fleetRetries));
    }
    record(attempts == 1 ? "base1" : "base3", o);
  }
  if (!ctx.smoke()) {
    // Budget 3 with +/-30% backoff jitter: same retry spend, but the storm's
    // synchronized timeout cohorts retransmit at decorrelated instants.
    const Outcome o =
        run(ctx, 4, 0.8, 3, nullptr, /*withFaults=*/true, /*jitterFraction=*/0.3);
    if (ctx.printing()) {
      std::printf("  %-10s %13zu/%-4zu %13zu/%-4zu %14.0f %10llu %10llu\n",
                  "3+jitter", o.fetched, o.attempts, o.decrypted, o.attempts,
                  o.meanLatencyMs,
                  static_cast<unsigned long long>(o.readerRetries),
                  static_cast<unsigned long long>(o.fleetRetries));
    }
    record("jitter", o);
  }
  {
    net::AdaptiveRetryPolicy::Config config;
    config.base = overlay::RetryPolicy{1, 150 * kMillisecond, 2.0};
    config.maxAttempts = 4;
    net::AdaptiveRetryPolicy adaptive(config);
    const Outcome o = run(ctx, 4, 0.8, 1, &adaptive, /*withFaults=*/true);
    if (ctx.printing()) {
      std::printf("  %-10s %13zu/%-4zu %13zu/%-4zu %14.0f %10llu %10llu"
                  "   (final budget %zu, est.rate %.0f%%)\n",
                  "adaptive", o.fetched, o.attempts, o.decrypted, o.attempts,
                  o.meanLatencyMs,
                  static_cast<unsigned long long>(o.readerRetries),
                  static_cast<unsigned long long>(o.fleetRetries),
                  adaptive.attempts(), 100 * adaptive.timeoutRate());
    }
    record("adaptive", o);
    ctx.counter("adaptive_budget", adaptive.attempts());
    ctx.param("adaptive_timeout_rate", adaptive.timeoutRate());
  }
  if (ctx.printing()) {
    std::printf(
        "expected shape: per-destination budgets grow where the storm bites,\n"
        "so even base 1 recovers most fetches; a larger base spends more\n"
        "retries for the same success; backoff jitter decorrelates the\n"
        "storm's synchronized retransmit cohorts and buys back the rest.\n");
  }
}

BENCHKIT_MAIN()
