// Experiment E1 (paper §III-B): "since symmetric encryption methods use
// simpler operations, they have the advantage of running faster in comparison
// to other schemes."
//
// Measures encrypt and decrypt latency per ACL scheme across payload sizes.
// Expected shape: symmetric << hybrid < public-key/IBBE < CP-ABE, with the
// asymmetric schemes' costs independent of payload (hybrid) or scaling with
// members (naive public-key).
#include <benchmark/benchmark.h>

#include <memory>

#include "dosn/privacy/abe_acl.hpp"
#include "dosn/privacy/hybrid_acl.hpp"
#include "dosn/privacy/ibbe_acl.hpp"
#include "dosn/privacy/publickey_acl.hpp"
#include "dosn/privacy/symmetric_acl.hpp"

namespace {

using namespace dosn;

constexpr std::size_t kGroupMembers = 8;

const pkcrypto::DlogGroup& benchGroup() {
  return pkcrypto::DlogGroup::cached(512);
}

enum class Scheme { kSymmetric, kPublicKey, kAbe, kIbbe, kHybridPk, kHybridAbe };

std::unique_ptr<privacy::AccessController> makeAcl(Scheme scheme,
                                                   util::Rng& rng) {
  switch (scheme) {
    case Scheme::kSymmetric:
      return std::make_unique<privacy::SymmetricAcl>(rng);
    case Scheme::kPublicKey:
      return std::make_unique<privacy::PublicKeyAcl>(benchGroup(), rng);
    case Scheme::kAbe:
      return std::make_unique<privacy::AbeAcl>(benchGroup(), rng);
    case Scheme::kIbbe:
      return std::make_unique<privacy::IbbeAcl>(benchGroup(), rng);
    case Scheme::kHybridPk:
      return std::make_unique<privacy::HybridAcl>(benchGroup(), rng,
                                                  privacy::WrapScheme::kPublicKey);
    case Scheme::kHybridAbe:
      return std::make_unique<privacy::HybridAcl>(benchGroup(), rng,
                                                  privacy::WrapScheme::kCpAbe);
  }
  return nullptr;
}

struct Fixture {
  util::Rng rng{42};
  std::unique_ptr<privacy::AccessController> acl;

  explicit Fixture(Scheme scheme) : acl(makeAcl(scheme, rng)) {
    acl->createGroup("g");
    for (std::size_t i = 0; i < kGroupMembers; ++i) {
      acl->addMember("g", "user" + std::to_string(i));
    }
  }
};

void encryptBench(benchmark::State& state, Scheme scheme) {
  Fixture fx(scheme);
  const util::Bytes payload(static_cast<std::size_t>(state.range(0)), 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.acl->encrypt("g", payload, fx.rng));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}

void decryptBench(benchmark::State& state, Scheme scheme) {
  Fixture fx(scheme);
  const util::Bytes payload(static_cast<std::size_t>(state.range(0)), 0x5a);
  const privacy::Envelope env = fx.acl->encrypt("g", payload, fx.rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.acl->decrypt("user3", env));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}

}  // namespace

#define DOSN_E1(name, scheme)                                            \
  BENCHMARK_CAPTURE(encryptBench, name, scheme)                          \
      ->Arg(256)->Arg(4096)->Arg(65536)->Unit(benchmark::kMicrosecond);  \
  BENCHMARK_CAPTURE(decryptBench, name, scheme)                          \
      ->Arg(256)->Arg(4096)->Arg(65536)->Unit(benchmark::kMicrosecond);

DOSN_E1(symmetric, Scheme::kSymmetric)
DOSN_E1(public_key, Scheme::kPublicKey)
DOSN_E1(cp_abe, Scheme::kAbe)
DOSN_E1(ibbe, Scheme::kIbbe)
DOSN_E1(hybrid_pk, Scheme::kHybridPk)
DOSN_E1(hybrid_abe, Scheme::kHybridAbe)
