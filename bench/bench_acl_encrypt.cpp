// Experiment E1 (paper §III-B): "since symmetric encryption methods use
// simpler operations, they have the advantage of running faster in comparison
// to other schemes."
//
// Measures encrypt and decrypt latency per ACL scheme across payload sizes.
// Expected shape: symmetric << hybrid < public-key/IBBE < CP-ABE, with the
// asymmetric schemes' costs independent of payload (hybrid) or scaling with
// members (naive public-key).
//
// One benchkit scenario per scheme; each sweeps payload sizes and records
// `encrypt_us.<payload>` / `decrypt_us.<payload>` params in the JSON output.
// `--smoke` runs the 256-byte point once per scheme.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "dosn/benchkit/benchkit.hpp"
#include "dosn/privacy/abe_acl.hpp"
#include "dosn/privacy/hybrid_acl.hpp"
#include "dosn/privacy/ibbe_acl.hpp"
#include "dosn/privacy/publickey_acl.hpp"
#include "dosn/privacy/symmetric_acl.hpp"

namespace {

using namespace dosn;
using benchkit::ScenarioContext;

constexpr std::size_t kGroupMembers = 8;

const pkcrypto::DlogGroup& benchGroup() {
  return pkcrypto::DlogGroup::cached(512);
}

enum class Scheme { kSymmetric, kPublicKey, kAbe, kIbbe, kHybridPk, kHybridAbe };

std::unique_ptr<privacy::AccessController> makeAcl(Scheme scheme,
                                                   util::Rng& rng) {
  switch (scheme) {
    case Scheme::kSymmetric:
      return std::make_unique<privacy::SymmetricAcl>(rng);
    case Scheme::kPublicKey:
      return std::make_unique<privacy::PublicKeyAcl>(benchGroup(), rng);
    case Scheme::kAbe:
      return std::make_unique<privacy::AbeAcl>(benchGroup(), rng);
    case Scheme::kIbbe:
      return std::make_unique<privacy::IbbeAcl>(benchGroup(), rng);
    case Scheme::kHybridPk:
      return std::make_unique<privacy::HybridAcl>(benchGroup(), rng,
                                                  privacy::WrapScheme::kPublicKey);
    case Scheme::kHybridAbe:
      return std::make_unique<privacy::HybridAcl>(benchGroup(), rng,
                                                  privacy::WrapScheme::kCpAbe);
  }
  return nullptr;
}

bool gHeaderPrinted = false;

void runScheme(ScenarioContext& ctx, const char* label, Scheme scheme) {
  util::Rng rng(ctx.seed());
  auto acl = makeAcl(scheme, rng);
  acl->createGroup("g");
  for (std::size_t i = 0; i < kGroupMembers; ++i) {
    acl->addMember("g", "user" + std::to_string(i));
  }
  const std::vector<std::size_t> payloads =
      ctx.smoke() ? std::vector<std::size_t>{256}
                  : std::vector<std::size_t>{256, 4096, 65536};
  const std::size_t iters = ctx.smoke() ? 1 : 10;
  ctx.param("members", static_cast<double>(kGroupMembers));
  ctx.counter("iters", iters);

  if (ctx.printing() && !gHeaderPrinted) {
    gHeaderPrinted = true;
    std::printf("E1: ACL encrypt/decrypt latency, %zu-member group (us/op)\n",
                kGroupMembers);
    std::printf("  %-12s %9s %12s %12s\n", "scheme", "payload", "encrypt",
                "decrypt");
  }
  for (const std::size_t payloadBytes : payloads) {
    const util::Bytes payload(payloadBytes, 0x5a);
    privacy::Envelope env = acl->encrypt("g", payload, rng);
    benchkit::Timer timer;
    for (std::size_t i = 0; i < iters; ++i) {
      env = acl->encrypt("g", payload, rng);
    }
    const double encUs = timer.ms() * 1000.0 / static_cast<double>(iters);
    timer.reset();
    for (std::size_t i = 0; i < iters; ++i) {
      const auto plain = acl->decrypt("user3", env);
      ctx.require(plain.has_value() && *plain == payload,
                  "decrypt round-trip failed");
    }
    const double decUs = timer.ms() * 1000.0 / static_cast<double>(iters);
    const std::string suffix = "." + std::to_string(payloadBytes);
    ctx.param("encrypt_us" + suffix, encUs);
    ctx.param("decrypt_us" + suffix, decUs);
    if (ctx.printing()) {
      std::printf("  %-12s %9zu %12.1f %12.1f\n", label, payloadBytes, encUs,
                  decUs);
    }
  }
}

}  // namespace

BENCH_SCENARIO(e1_symmetric, {.hot = true}) {
  runScheme(ctx, "symmetric", Scheme::kSymmetric);
}

BENCH_SCENARIO(e1_public_key) {
  runScheme(ctx, "public_key", Scheme::kPublicKey);
}

BENCH_SCENARIO(e1_cp_abe) { runScheme(ctx, "cp_abe", Scheme::kAbe); }

BENCH_SCENARIO(e1_ibbe) { runScheme(ctx, "ibbe", Scheme::kIbbe); }

BENCH_SCENARIO(e1_hybrid_pk, {.hot = true}) {
  runScheme(ctx, "hybrid_pk", Scheme::kHybridPk);
}

BENCH_SCENARIO(e1_hybrid_abe) {
  runScheme(ctx, "hybrid_abe", Scheme::kHybridAbe);
}

BENCHKIT_MAIN()
