// Experiment E14 (extension; paper §VI "OSN anonymization and
// de-anonymization"): how much does pseudonymizing a published social graph
// actually protect? The degree-sequence attack re-identifies nodes from
// structure alone; edge perturbation trades data utility for resistance.
//
// One benchkit scenario per graph model; `--smoke` shrinks the graphs.
#include <cstdio>
#include <string>

#include "dosn/benchkit/benchkit.hpp"
#include "dosn/social/anonymize.hpp"
#include "dosn/social/graph_gen.hpp"

using namespace dosn;
using namespace dosn::social;
using benchkit::ScenarioContext;

namespace {

bool gHeaderPrinted = false;

void runModel(ScenarioContext& ctx, const char* model) {
  util::Rng rng(ctx.seed());
  const std::size_t users = ctx.smoke() ? 100 : 300;
  const SocialGraph graph = (std::string(model) == "barabasi-albert")
                                ? barabasiAlbert(users, 3, rng)
                                : wattsStrogatz(users, 3, 0.1, rng);
  ctx.param("users", static_cast<double>(users));
  ctx.counter("edges", graph.edgeCount());
  if (ctx.printing()) {
    if (!gHeaderPrinted) {
      gHeaderPrinted = true;
      std::printf(
          "E14 (extension): graph anonymization vs degree-sequence attack\n\n");
    }
    std::printf("%s graph (%zu users, %zu edges)\n", model, users,
                graph.edgeCount());
    std::printf("  %-22s %18s\n", "edge perturbation", "re-identified");
  }
  for (const double perturbation : {0.0, 0.05, 0.1, 0.25, 0.5}) {
    const AnonymizedGraph published =
        perturbation == 0.0 ? anonymize(graph, rng)
                            : anonymizePerturbed(graph, perturbation, rng);
    const auto attack = degreeAttack(graph, published.graph);
    const double rate = reidentificationRate(published, attack);
    if (ctx.printing()) {
      std::printf("  %-22.2f %17.1f%%\n", perturbation, 100 * rate);
    }
    ctx.param("reidentified.p" +
                  std::to_string(static_cast<int>(100 * perturbation)),
              rate);
  }
  if (ctx.printing()) std::printf("\n");
}

}  // namespace

BENCH_SCENARIO(e14_barabasi_albert) { runModel(ctx, "barabasi-albert"); }

BENCH_SCENARIO(e14_watts_strogatz) {
  runModel(ctx, "watts-strogatz");
  if (ctx.printing()) {
    std::printf(
        "expected shape: on hub-heavy (scale-free) graphs, plain pseudonyms\n"
        "leave high-degree users re-identifiable from degree alone; on\n"
        "degree-homogeneous small-world graphs the same attack does far worse;\n"
        "perturbation pushes re-identification down at the cost of publishing\n"
        "a distorted graph.\n");
  }
}

BENCHKIT_MAIN()
