// Experiment E14 (extension; paper §VI "OSN anonymization and
// de-anonymization"): how much does pseudonymizing a published social graph
// actually protect? The degree-sequence attack re-identifies nodes from
// structure alone; edge perturbation trades data utility for resistance.
#include <cstdio>

#include "dosn/social/anonymize.hpp"
#include "dosn/social/graph_gen.hpp"

using namespace dosn;
using namespace dosn::social;

int main() {
  std::printf(
      "E14 (extension): graph anonymization vs degree-sequence attack\n\n");
  for (const char* model : {"barabasi-albert", "watts-strogatz"}) {
    util::Rng rng(42);
    const SocialGraph graph =
        (std::string(model) == "barabasi-albert")
            ? barabasiAlbert(300, 3, rng)
            : wattsStrogatz(300, 3, 0.1, rng);
    std::printf("%s graph (300 users, %zu edges)\n", model, graph.edgeCount());
    std::printf("  %-22s %18s\n", "edge perturbation", "re-identified");
    for (const double perturbation : {0.0, 0.05, 0.1, 0.25, 0.5}) {
      const AnonymizedGraph published =
          perturbation == 0.0 ? anonymize(graph, rng)
                              : anonymizePerturbed(graph, perturbation, rng);
      const auto attack = degreeAttack(graph, published.graph);
      std::printf("  %-22.2f %17.1f%%\n", perturbation,
                  100 * reidentificationRate(published, attack));
    }
    std::printf("\n");
  }
  std::printf(
      "expected shape: on hub-heavy (scale-free) graphs, plain pseudonyms\n"
      "leave high-degree users re-identifiable from degree alone; on\n"
      "degree-homogeneous small-world graphs the same attack does far worse;\n"
      "perturbation pushes re-identification down at the cost of publishing\n"
      "a distorted graph.\n");
  return 0;
}
