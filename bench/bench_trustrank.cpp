// Experiment E12 (paper §V-D, after Huang et al. [41]): trust-chain ranking
// quality. "The amount of trust assigned to Sara by Alice ... is a function
// of trust levels of every intermediate friend of that chain."
//
// Setup: a small-world graph; for each searcher we plant "good" targets —
// users reachable through high-trust chains — among popular-but-untrusted
// decoys, and measure precision@3 of trust-ranked search vs popularity-only
// ranking, plus how chain trust decays with hop distance.
//
// One benchkit scenario; `--smoke` shrinks the graph and searcher count.
#include <cstdio>
#include <string>
#include <vector>

#include "dosn/benchkit/benchkit.hpp"
#include "dosn/search/trust_rank.hpp"
#include "dosn/social/graph_gen.hpp"

using namespace dosn;
using namespace dosn::search;
using benchkit::ScenarioContext;

BENCH_SCENARIO(e12_trustrank) {
  util::Rng rng(ctx.seed());
  const std::size_t users = ctx.smoke() ? 100 : 200;
  const int searchers = ctx.smoke() ? 12 : 30;
  social::SocialGraph graph = social::wattsStrogatz(users, 3, 0.1, rng, 0.7);

  // Plant popular decoys: hubs with many low-trust edges, disconnected from
  // the searchers' trust neighborhoods.
  for (int d = 0; d < 5; ++d) {
    const std::string decoy = "decoy" + std::to_string(d);
    for (int f = 0; f < 25; ++f) {
      graph.addFriendship(decoy, "fan" + std::to_string(d) + "-" + std::to_string(f),
                          0.9);
    }
  }

  ctx.param("users", static_cast<double>(users));
  if (ctx.printing()) {
    std::printf("E12: trust-ranked search vs popularity-only ranking\n");
    std::printf("(%zu-user small world + 5 planted popular decoys)\n\n", users);
  }

  // For each searcher, candidates = 3 users at graph distance 2-3 (trusted
  // through chains) + the 5 decoys. Good result = non-decoy.
  std::size_t trials = 0;
  double trustPrecision = 0;
  double popularityPrecision = 0;
  for (int s = 0; s < searchers; ++s) {
    const std::string searcher = "u" + std::to_string(s * 6);
    std::vector<social::UserId> candidates;
    for (const auto& fof : graph.friendsOfFriends(searcher)) {
      candidates.push_back(fof);
      if (candidates.size() == 3) break;
    }
    if (candidates.size() < 3) continue;
    for (int d = 0; d < 5; ++d) candidates.push_back("decoy" + std::to_string(d));

    const auto byTrust = trustRankedSearch(graph, searcher, candidates, 4, 1.0);
    const auto byPopularity =
        trustRankedSearch(graph, searcher, candidates, 4, 0.0);
    auto precisionAt3 = [](const std::vector<RankedResult>& results) {
      double good = 0;
      for (std::size_t i = 0; i < 3 && i < results.size(); ++i) {
        if (results[i].user.rfind("decoy", 0) != 0) good += 1;
      }
      return good / 3.0;
    };
    trustPrecision += precisionAt3(byTrust);
    popularityPrecision += precisionAt3(byPopularity);
    ++trials;
  }
  ctx.require(trials > 0, "no searcher had enough candidates");
  if (ctx.printing()) {
    std::printf("  ranking            precision@3 (over %zu searchers)\n", trials);
    std::printf("  trust-chain        %6.1f%%\n",
                100 * trustPrecision / static_cast<double>(trials));
    std::printf("  popularity-only    %6.1f%%\n\n",
                100 * popularityPrecision / static_cast<double>(trials));
  }
  ctx.counter("searchers", trials);
  ctx.param("trust_precision_at3", trustPrecision / static_cast<double>(trials));
  ctx.param("popularity_precision_at3",
            popularityPrecision / static_cast<double>(trials));

  // Chain-trust decay with distance: mean best-chain trust at hop k.
  if (ctx.printing()) {
    std::printf("  chain-trust decay with distance (mean edge trust ~0.85):\n");
    std::printf("  %-6s %14s %10s\n", "hops", "mean trust", "samples");
  }
  const int pairSamples = ctx.smoke() ? 10 : 25;
  for (std::size_t hops = 1; hops <= 5; ++hops) {
    double sum = 0;
    std::size_t count = 0;
    for (int s = 0; s < pairSamples; ++s) {
      const std::string from = "u" + std::to_string(s * 8);
      for (int t = 0; t < pairSamples; ++t) {
        const std::string to = "u" + std::to_string(t * 8 + 3);
        const auto dist = graph.distance(from, to);
        if (!dist || *dist != hops) continue;
        const auto trust = bestChainTrust(graph, from, to, hops);
        if (!trust) continue;
        sum += *trust;
        ++count;
      }
    }
    if (ctx.printing()) {
      std::printf("  %-6zu %14.3f %10zu\n", hops,
                  count ? sum / static_cast<double>(count) : 0.0, count);
    }
    ctx.param("chain_trust.hops" + std::to_string(hops),
              count ? sum / static_cast<double>(count) : 0.0);
  }
  if (ctx.printing()) {
    std::printf(
        "\nexpected shape: trust ranking keeps planted decoys out of the top-3\n"
        "(high precision) while popularity ranking surfaces them; chain trust\n"
        "decays geometrically with hop count (product of edge trusts).\n");
  }
}

BENCHKIT_MAIN()
