// Experiment E7 (paper §I/§II-B): "replication and caching are proven
// techniques to ensure availability" — and its price: every replica node is
// "another kind of service provider in a small scale".
//
// Sweeps the replication factor under a churn model and reports measured item
// availability vs the analytic prediction 1-(1-a)^k, plus the replica-state
// cost (mean items observable per node — the paper's small-provider view).
//
// Three benchkit scenarios: the E7 churn sweep, the A3 repair ablation, and
// the E7b replica wire-protocol observability run. `--smoke` shrinks the
// node/sample counts.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <unistd.h>

#include "dosn/benchkit/benchkit.hpp"
#include "dosn/overlay/placement.hpp"
#include "dosn/overlay/replication.hpp"
#include "dosn/sim/churn.hpp"
#include "dosn/sim/faults.hpp"
#include "dosn/sim/metrics.hpp"
#include "dosn/social/graph_gen.hpp"
#include "dosn/store/stack.hpp"

using namespace dosn;
using namespace dosn::overlay;
using benchkit::ScenarioContext;
using sim::kMillisecond;
using sim::kSecond;

namespace {

struct Sizes {
  std::size_t nodes;
  std::size_t itemsPerFactor;
  std::size_t samples;
};

Sizes sizesFor(const ScenarioContext& ctx) {
  return ctx.smoke() ? Sizes{60, 20, 8} : Sizes{200, 60, 40};
}

}  // namespace

BENCH_SCENARIO(e7_availability_churn) {
  const Sizes sz = sizesFor(ctx);
  ctx.param("nodes", static_cast<double>(sz.nodes));
  ctx.param("items_per_factor", static_cast<double>(sz.itemsPerFactor));
  ctx.param("samples", static_cast<double>(sz.samples));
  if (ctx.printing()) {
    std::printf("E7: availability vs replication factor under churn\n\n");
  }

  for (const double onlineFraction : {0.3, 0.5, 0.7}) {
    util::Rng rng(ctx.seed());
    sim::Simulator simulator;
    sim::Network net(simulator, sim::LatencyModel{}, rng);
    std::vector<sim::NodeAddr> nodes;
    for (std::size_t i = 0; i < sz.nodes; ++i) nodes.push_back(net.addNode());

    sim::ChurnConfig churnConfig;
    churnConfig.meanOnlineSeconds = 600 * onlineFraction;
    churnConfig.meanOfflineSeconds = 600 * (1 - onlineFraction);
    churnConfig.initialOnlineFraction = onlineFraction;
    sim::ChurnProcess churn(net, churnConfig, nodes);

    ReplicationManager manager(net);
    if (ctx.printing()) {
      std::printf("node availability a=%.0f%% (mean session %.0fs)\n",
                  100 * onlineFraction, churnConfig.meanOnlineSeconds);
      std::printf("  %-4s %14s %14s %18s\n", "k", "measured", "1-(1-a)^k",
                  "items/node");
    }

    std::vector<std::vector<OverlayId>> itemSets;
    std::vector<std::size_t> factors = {1, 2, 3, 5, 8};
    for (const std::size_t k : factors) {
      std::vector<OverlayId> items;
      for (std::size_t i = 0; i < sz.itemsPerFactor; ++i) {
        const OverlayId id = OverlayId::hash(
            "a" + std::to_string(onlineFraction) + "-k" + std::to_string(k) +
            "-i" + std::to_string(i));
        manager.place(id, k, nodes);
        items.push_back(id);
      }
      itemSets.push_back(std::move(items));
    }

    std::vector<AvailabilityProbe> probes;
    probes.reserve(factors.size());
    for (auto& items : itemSets) probes.emplace_back(manager, items);
    for (auto& probe : probes) {
      probe.schedule(simulator, 120 * kSecond, sz.samples);
    }
    simulator.runUntil((sz.samples + 1) * 120 * kSecond);
    churn.stop();

    const auto views = manager.observerViewSizes();
    double meanView = 0;
    for (const auto& [node, count] : views) meanView += static_cast<double>(count);
    meanView /= static_cast<double>(sz.nodes);

    double factorTotal = 0;
    for (const std::size_t kk : factors) factorTotal += static_cast<double>(kk);
    for (std::size_t f = 0; f < factors.size(); ++f) {
      const double predicted =
          1.0 - std::pow(1.0 - onlineFraction, static_cast<double>(factors[f]));
      const double measured = probes[f].meanAvailability();
      if (ctx.printing()) {
        std::printf("  %-4zu %13.1f%% %13.1f%% %18.2f\n", factors[f],
                    100 * measured, 100 * predicted,
                    meanView * static_cast<double>(factors[f]) / factorTotal);
      }
      const std::string tag = ".a" + std::to_string(static_cast<int>(
                                  100 * onlineFraction)) +
                              ".k" + std::to_string(factors[f]);
      ctx.param("measured" + tag, measured);
      ctx.param("predicted" + tag, predicted);
    }
    if (ctx.printing()) std::printf("\n");
  }
  if (ctx.printing()) {
    std::printf(
        "expected shape: measured availability tracks 1-(1-a)^k; higher k\n"
        "buys availability but spreads more user data onto more replica nodes\n"
        "(the survey's 'several small providers' trade-off).\n");
  }
}

// Repair ablation (A3): periodic re-replication vs none.
BENCH_SCENARIO(a3_repair, {.skipInSmoke = true}) {
  const Sizes sz = sizesFor(ctx);
  if (ctx.printing()) {
    std::printf("\nA3: periodic repair vs none (a=50%%, repair every 5 min)\n");
    std::printf("  %-4s %14s %14s %16s\n", "k", "no-repair", "with-repair",
                "replicas-added");
  }
  for (const std::size_t k : {1u, 2u, 3u}) {
    double results[2];
    std::size_t addedTotal = 0;
    for (const bool withRepair : {false, true}) {
      util::Rng rng(ctx.seed() + 735);  // historical seed 777 at default 42
      sim::Simulator simulator;
      sim::Network net(simulator, sim::LatencyModel{}, rng);
      std::vector<sim::NodeAddr> nodes;
      for (std::size_t i = 0; i < sz.nodes; ++i) nodes.push_back(net.addNode());
      sim::ChurnConfig cc{300, 300, 0.5};
      sim::ChurnProcess churn(net, cc, nodes);
      ReplicationManager manager(net);
      std::vector<OverlayId> items;
      for (std::size_t i = 0; i < sz.itemsPerFactor; ++i) {
        const OverlayId id =
            OverlayId::hash("rep-" + std::to_string(k) + "-" + std::to_string(i));
        manager.place(id, k, nodes);
        items.push_back(id);
      }
      AvailabilityProbe probe(manager, items);
      probe.schedule(simulator, 120 * kSecond, sz.samples);
      if (withRepair) {
        for (int r = 1; r <= 16; ++r) {
          simulator.schedule(static_cast<sim::SimTime>(r) * 300 * kSecond,
                             [&manager, &nodes, &addedTotal] {
                               addedTotal += manager.repair(nodes);
                             });
        }
      }
      simulator.runUntil((sz.samples + 1) * 120 * kSecond);
      churn.stop();
      results[withRepair ? 1 : 0] = probe.meanAvailability();
    }
    if (ctx.printing()) {
      std::printf("  %-4zu %13.1f%% %13.1f%% %16zu\n", k, 100 * results[0],
                  100 * results[1], addedTotal);
    }
    const std::string tag = ".k" + std::to_string(k);
    ctx.param("no_repair" + tag, results[0]);
    ctx.param("with_repair" + tag, results[1]);
    ctx.counter("replicas_added" + tag, addedTotal);
  }
  if (ctx.printing()) {
    std::printf(
        "expected shape: repair lifts low-k availability sharply (each pass\n"
        "tops the online replica set back up to k), at the cost of replica\n"
        "proliferation — more 'small providers' holding the data over time.\n");
  }
}

// E7b: the replica wire protocol's RPC observability. The sweeps above track
// *placement* availability; this drives the actual repl.store/repl.fetch wire
// protocol through a 10% drop storm so the endpoint's uniform rpc.<type>.*
// surface (same format as bench_faults F1b) shows the store/fetch traffic,
// its retries, and — because the client opts into per-destination adaptive
// timeouts — the rpc.rtt.* sample counters feeding each host's RFC 6298
// estimator.
BENCH_SCENARIO(e7b_replica_rpc) {
  constexpr std::size_t kHosts = 8;
  const std::size_t kRpcItems = ctx.smoke() ? 12 : 40;
  if (ctx.printing()) {
    std::printf(
        "\nE7b: replica RPC observability (1 adaptive client, %zu hosts, %zu "
        "items\nx2 replicas, 10%% drop storm; rpc.<type>.* surface as "
        "bench_faults F1b)\n\n",
        kHosts, kRpcItems);
  }
  util::Rng rng(ctx.seed());
  sim::Simulator simulator;
  sim::Network net(simulator,
                   sim::LatencyModel{20 * kMillisecond, 10 * kMillisecond, 0.0},
                   rng);
  net.setMetrics(&ctx.metrics());
  sim::FaultPlan plan;
  plan.add(sim::FaultRule::global().drop(0.1));
  net.setFaultPlan(&plan);

  std::vector<std::unique_ptr<ReplicaHost>> hosts;
  for (std::size_t i = 0; i < kHosts; ++i) {
    hosts.push_back(std::make_unique<ReplicaHost>(net));
  }
  ReplicaClient client(net, RetryPolicy{3, 150 * kMillisecond, 2.0},
                       250 * kMillisecond, /*adaptiveTimeout=*/true);

  std::vector<OverlayId> items;
  for (std::size_t i = 0; i < kRpcItems; ++i) {
    items.push_back(OverlayId::hash("wire-" + std::to_string(i)));
    for (std::size_t r = 0; r < 2; ++r) {
      client.store(hosts[(i + r) % kHosts]->addr(), items.back(),
                   util::toBytes("v"), {});
    }
    simulator.run();
  }
  std::size_t hits = 0;
  for (std::size_t i = 0; i < kRpcItems; ++i) {
    client.fetch(hosts[i % kHosts]->addr(), items[i],
                 [&hits](std::optional<util::Bytes> v) {
                   if (v) ++hits;
                 });
    simulator.run();
  }
  if (ctx.printing()) {
    std::printf("fetch hits: %zu/%zu, client retries: %llu, failures: %llu\n\n",
                hits, kRpcItems,
                static_cast<unsigned long long>(client.rpcRetries()),
                static_cast<unsigned long long>(client.rpcFailures()));
    sim::printRpcObservability(ctx.metrics());
  }
  ctx.counter("fetch_hits", hits);
  ctx.counter("client_retries", client.rpcRetries());
  ctx.counter("client_failures", client.rpcFailures());
}

// E7c: restart recovery of file-backed replica hosts (DESIGN.md §3e). Hosts
// run the full crypt(cache(async(file))) stack with a periodic write-behind
// flush; mid-run every host is torn down and rebuilt over its on-disk root.
// Two waves: a crash (no flush — acked-but-unflushed blocks are lost) and a
// graceful restart (flush first — recovery must be total). Reports the
// recovered-block ratio per wave and the recovery sweep latency.
BENCH_SCENARIO(e7c_restart_recovery) {
  namespace fs = std::filesystem;
  constexpr std::size_t kHosts = 4;
  const std::size_t kItems = ctx.smoke() ? 32 : 160;
  ctx.param("hosts", static_cast<double>(kHosts));
  ctx.param("items", static_cast<double>(kItems));
  if (ctx.printing()) {
    std::printf(
        "\nE7c: restart recovery (%zu crypt(cache(async(file))) hosts, %zu "
        "items,\nwrite-behind flush every 500ms)\n\n",
        kHosts, kItems);
    std::printf("  %-10s %8s %10s %10s %14s %12s\n", "wave", "acked",
                "recovered", "ratio", "sweep-ms(sim)", "rebuild-ms");
  }

  const fs::path root =
      fs::temp_directory_path() /
      ("dosn_bench_e7c_" + std::to_string(::getpid()));
  fs::remove_all(root);
  util::Rng keyRng(ctx.seed() ^ 0xe7c);
  const util::Bytes masterKey = keyRng.bytes(32);

  for (const bool graceful : {false, true}) {
    const std::string wave = graceful ? "graceful" : "crash";
    util::Rng rng(ctx.seed() + (graceful ? 1 : 0));
    sim::Simulator simulator;
    sim::Network net(simulator, sim::LatencyModel{10 * kMillisecond, 0, 0.0},
                     rng);

    auto stackFor = [&](std::size_t h) {
      store::StackConfig config;
      config.fileRoot = root / (wave + "-h" + std::to_string(h));
      config.async = true;
      config.asyncConfig.flushInterval = 500 * kMillisecond;
      config.simulator = &simulator;
      config.cache = true;
      config.cacheBlocks = 64;
      config.crypt = true;
      config.cryptKey = masterKey;
      return store::makeStack(config);
    };

    std::vector<std::unique_ptr<ReplicaHost>> hosts;
    for (std::size_t h = 0; h < kHosts; ++h) {
      hosts.push_back(std::make_unique<ReplicaHost>(net, stackFor(h)));
    }
    ReplicaClient client(net);

    // Stagger the stores so the periodic flush interleaves with the stream:
    // at teardown time the tail of the stream is still in the dirty set.
    std::size_t acked = 0;
    for (std::size_t i = 0; i < kItems; ++i) {
      simulator.schedule(
          static_cast<sim::SimTime>(i) * 50 * kMillisecond, [&, i] {
            client.store(hosts[i % kHosts]->addr(), OverlayId::hash(
                             wave + "-item-" + std::to_string(i)),
                         util::toBytes("post-" + std::to_string(i)),
                         [&acked](bool ok) { acked += ok ? 1 : 0; });
          });
    }
    simulator.runUntil(static_cast<sim::SimTime>(kItems) * 50 * kMillisecond +
                       100 * kMillisecond);

    // Teardown: graceful hosts flush their write-behind tier first; crashed
    // hosts lose whatever the 500ms cadence had not yet flushed.
    if (graceful) {
      for (auto& host : hosts) host->store().flush();
    }
    hosts.clear();

    benchkit::Timer rebuild;
    for (std::size_t h = 0; h < kHosts; ++h) {
      hosts.push_back(std::make_unique<ReplicaHost>(net, stackFor(h)));
    }
    const double rebuildMs = rebuild.ms();

    const sim::SimTime sweepStart = simulator.now();
    sim::SimTime sweepEnd = sweepStart;  // last fetch completion, not the
                                         // stragglers of the flush cadence
    std::size_t recovered = 0;
    for (std::size_t i = 0; i < kItems; ++i) {
      const std::string want = "post-" + std::to_string(i);
      client.fetch(hosts[i % kHosts]->addr(),
                   OverlayId::hash(wave + "-item-" + std::to_string(i)),
                   [&, want](std::optional<util::Bytes> value) {
                     if (value && *value == util::toBytes(want)) ++recovered;
                     sweepEnd = std::max(sweepEnd, simulator.now());
                   });
    }
    simulator.run();
    const double sweepMs =
        static_cast<double>(sweepEnd - sweepStart) / kMillisecond;

    const double ratio =
        acked ? static_cast<double>(recovered) / static_cast<double>(acked) : 0;
    if (ctx.printing()) {
      std::printf("  %-10s %8zu %10zu %9.1f%% %14.1f %12.2f\n", wave.c_str(),
                  acked, recovered, 100 * ratio, sweepMs, rebuildMs);
    }
    ctx.counter("acked." + wave, acked);
    ctx.counter("recovered." + wave, recovered);
    ctx.param("recovered_ratio." + wave, ratio);
    ctx.param("recovery_sweep_ms." + wave, sweepMs);
    if (graceful) {
      ctx.require(recovered == acked,
                  "graceful restart must re-serve every acked block");
    }
  }
  fs::remove_all(root);
  if (ctx.printing()) {
    std::printf(
        "\nexpected shape: the graceful wave recovers 100%% of acked blocks\n"
        "(flush is the durability boundary); the crash wave loses exactly the\n"
        "writes acked after the last periodic flush.\n");
  }
}

// E18a: replica friend-locality — SocialPolicy vs vanilla placement on a
// Zipf follower graph, one wall item per user, through churn + periodic
// repair. Locality = fraction of replica slots on the owner's own node, a
// direct friend, or a friend-of-a-friend (policy tiers 0-1). Availability
// is reported for both configs (uniform churn should keep it comparable);
// the claim under test is that social placement concentrates replicas in
// the owner's social neighborhood AND that repair preserves that locality.
BENCH_SCENARIO(e18a_social_locality) {
  const std::size_t n = ctx.smoke() ? 60 : 200;
  const std::size_t samples = ctx.smoke() ? 8 : 24;
  constexpr std::size_t kReplicas = 3;
  ctx.param("nodes", static_cast<double>(n));
  ctx.param("samples", static_cast<double>(samples));
  if (ctx.printing()) {
    std::printf(
        "\nE18a: replica friend-locality, social vs vanilla placement\n"
        "(%zu users on a Zipf follower graph, k=%zu, a=60%% churn, repair\n"
        "every 5 min)\n\n",
        n, kReplicas);
    std::printf("  %-8s %14s %14s %14s %12s\n", "config", "locality@place",
                "locality@end", "availability", "added");
  }

  util::Rng graphRng(ctx.seed() + 0x50c1a1);
  const social::SocialGraph graph = social::zipfFollower(n, 4, 1.0, graphRng);

  double localityAtPlace[2] = {0, 0};
  double localityAtEnd[2] = {0, 0};
  for (const bool social : {false, true}) {
    util::Rng rng(ctx.seed());
    sim::Simulator simulator;
    sim::Network net(simulator, sim::LatencyModel{}, rng);
    std::vector<sim::NodeAddr> nodes;
    nodes.reserve(n);
    for (std::size_t i = 0; i < n; ++i) nodes.push_back(net.addNode());

    SocialPolicyConfig policyConfig;
    policyConfig.graph = &graph;
    SocialPolicy policy(net, policyConfig);
    // Bind in both runs: binding draws no randomness, and the vanilla run
    // uses the policy's tierOf() for the same locality accounting.
    for (std::size_t i = 0; i < n; ++i) {
      policy.bind(nodes[i], social::syntheticUser(i));
      policy.bindId(nodes[i], OverlayId::hash("node-" + std::to_string(i)));
    }
    ReplicationManager manager(net, social ? &policy : nullptr);

    std::vector<OverlayId> items;
    items.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const OverlayId id = OverlayId::hash("wall-" + std::to_string(i));
      manager.place(id, kReplicas, nodes, social::syntheticUser(i));
      items.push_back(id);
    }

    // Replica slots in the owner's social neighborhood (tiers 0-1).
    auto friendSlots = [&] {
      std::uint64_t near = 0;
      for (std::size_t i = 0; i < n; ++i) {
        for (const auto addr : manager.replicasOf(items[i])) {
          if (policy.tierOf(social::syntheticUser(i), addr) <= 1) ++near;
        }
      }
      return near;
    };
    auto totalSlots = [&] {
      std::uint64_t total = 0;
      for (const auto& item : items) total += manager.replicasOf(item).size();
      return total;
    };

    const std::uint64_t placedNear = friendSlots();
    const std::uint64_t placedTotal = totalSlots();
    const int idx = social ? 1 : 0;
    localityAtPlace[idx] =
        static_cast<double>(placedNear) / static_cast<double>(placedTotal);

    sim::ChurnConfig churnConfig;
    churnConfig.meanOnlineSeconds = 300 * 0.6;
    churnConfig.meanOfflineSeconds = 300 * 0.4;
    churnConfig.initialOnlineFraction = 0.6;
    sim::ChurnProcess churn(net, churnConfig, nodes);
    AvailabilityProbe probe(manager, items);
    probe.schedule(simulator, 120 * kSecond, samples);
    std::size_t added = 0;
    for (std::size_t r = 1; r * 300 <= samples * 120; ++r) {
      simulator.schedule(static_cast<sim::SimTime>(r) * 300 * kSecond,
                         [&manager, &nodes, &added] {
                           added += manager.repair(nodes);
                         });
    }
    simulator.runUntil((samples + 1) * 120 * kSecond);
    churn.stop();

    const std::uint64_t endNear = friendSlots();
    const std::uint64_t endTotal = totalSlots();
    localityAtEnd[idx] =
        static_cast<double>(endNear) / static_cast<double>(endTotal);
    const double availability = probe.meanAvailability();

    const std::string tag = social ? ".social" : ".vanilla";
    ctx.counter("friend_slots_placed" + tag, placedNear);
    ctx.counter("total_slots_placed" + tag, placedTotal);
    ctx.counter("friend_slots_end" + tag, endNear);
    ctx.counter("total_slots_end" + tag, endTotal);
    ctx.counter("replicas_added" + tag, added);
    ctx.param("locality_placed" + tag, localityAtPlace[idx]);
    ctx.param("locality_end" + tag, localityAtEnd[idx]);
    ctx.param("availability" + tag, availability);
    if (ctx.printing()) {
      std::printf("  %-8s %13.1f%% %13.1f%% %13.1f%% %12zu\n",
                  social ? "social" : "vanilla", 100 * localityAtPlace[idx],
                  100 * localityAtEnd[idx], 100 * availability, added);
    }
  }
  ctx.require(localityAtPlace[1] > localityAtPlace[0],
              "social placement must beat vanilla on friend-locality");
  ctx.require(localityAtEnd[1] > localityAtEnd[0],
              "repair must preserve the social-locality advantage");
  if (ctx.printing()) {
    std::printf(
        "\nexpected shape: vanilla locality sits near the random baseline\n"
        "(the owner's neighborhood over n); social placement pushes most\n"
        "replica slots into tiers 0-1 at placement AND after churn-driven\n"
        "repair, at comparable availability (churn is social-blind).\n");
  }
}

BENCHKIT_MAIN()
