// Experiment E11 (paper §V-B): searcher-privacy mechanisms quantified.
//   - Safebook matryoshka rings: anonymity-set size and path length vs ring
//     depth ("communicate with the user without revealing identity");
//   - proxy aliases: fraction of users deanonymized as proxies collude
//     ("under the risk by collusion of proxy servers").
//
// Two benchkit scenarios (E11a rings, E11b collusion); `--smoke` shrinks the
// graph and the sampled core count.
#include <cstdio>
#include <string>
#include <vector>

#include "dosn/benchkit/benchkit.hpp"
#include "dosn/search/friend_rings.hpp"
#include "dosn/search/proxy_alias.hpp"
#include "dosn/social/graph_gen.hpp"

using namespace dosn;
using namespace dosn::search;
using benchkit::ScenarioContext;

BENCH_SCENARIO(e11a_matryoshka) {
  util::Rng rng(ctx.seed());
  const std::size_t users = ctx.smoke() ? 100 : 300;
  const std::size_t cores = ctx.smoke() ? 12 : 40;
  ctx.param("users", static_cast<double>(users));
  ctx.param("cores", static_cast<double>(cores));
  if (ctx.printing()) {
    std::printf("E11a: matryoshka anonymity vs ring depth\n");
    std::printf("(small-world graph: %zu users, k=4, beta=0.15; %zu cores)\n\n",
                users, cores);
  }
  const social::SocialGraph graph = social::wattsStrogatz(users, 4, 0.15, rng);
  if (ctx.printing()) {
    std::printf("  %-8s %18s %16s %14s\n", "depth", "anonymity-set", "path-len",
                "built-ok");
  }
  for (const std::size_t depth : {1u, 2u, 3u, 4u, 5u}) {
    double anonSum = 0;
    double lenSum = 0;
    std::size_t built = 0;
    for (std::size_t c = 0; c < cores; ++c) {
      const std::string core = "u" + std::to_string(c * 7);
      Matryoshka ring(graph, core, depth, 1, rng);
      if (ring.pathCount() == 0 || ring.path(0).size() < depth) continue;
      ++built;
      anonSum += static_cast<double>(ring.anonymitySetSize(graph, 0));
      lenSum += static_cast<double>(ring.path(0).size());
    }
    if (ctx.printing()) {
      std::printf("  %-8zu %18.1f %16.1f %11zu/%zu\n", depth,
                  built ? anonSum / static_cast<double>(built) : 0,
                  built ? lenSum / static_cast<double>(built) : 0, built,
                  cores);
    }
    const std::string tag = ".depth" + std::to_string(depth);
    ctx.param("anonymity_set" + tag,
              built ? anonSum / static_cast<double>(built) : 0);
    ctx.param("path_len" + tag,
              built ? lenSum / static_cast<double>(built) : 0);
    ctx.counter("built" + tag, built);
  }
  if (ctx.printing()) {
    std::printf(
        "\nexpected shape: the anonymity set grows with depth (more users at\n"
        "the chain-length radius) at the cost of longer relay paths.\n");
  }
}

BENCH_SCENARIO(e11b_proxy_collusion) {
  util::Rng rng(ctx.seed());
  const int users = ctx.smoke() ? 48 : 120;
  ctx.param("proxies", 6.0);
  ctx.param("users", static_cast<double>(users));
  if (ctx.printing()) {
    std::printf("\nE11b: proxy-collusion deanonymization\n");
    std::printf("(6 proxies, %d users spread round-robin)\n\n", users);
  }
  ProxyNetwork network;
  for (int p = 0; p < 6; ++p) network.addProxy("proxy" + std::to_string(p));
  for (int u = 0; u < users; ++u) {
    network.registerUser("user" + std::to_string(u),
                         static_cast<std::size_t>(u % 6), rng);
  }
  if (ctx.printing()) std::printf("  %-22s %14s\n", "colluding proxies", "deanonymized");
  std::vector<std::size_t> colluding;
  for (std::size_t p = 0; p < 6; ++p) {
    colluding.push_back(p);
    const double fraction = network.collusionRecoveryFraction(colluding);
    if (ctx.printing()) {
      std::printf("  %-22zu %13.0f%%\n", colluding.size(), 100 * fraction);
    }
    ctx.param("deanonymized." + std::to_string(colluding.size()), fraction);
  }
  if (ctx.printing()) {
    std::printf(
        "\nexpected shape: deanonymization grows linearly with the colluding\n"
        "set; full collusion recovers every alias mapping.\n");
  }
}

BENCHKIT_MAIN()
