// Experiment E11 (paper §V-B): searcher-privacy mechanisms quantified.
//   - Safebook matryoshka rings: anonymity-set size and path length vs ring
//     depth ("communicate with the user without revealing identity");
//   - proxy aliases: fraction of users deanonymized as proxies collude
//     ("under the risk by collusion of proxy servers").
#include <cstdio>

#include "dosn/search/friend_rings.hpp"
#include "dosn/search/proxy_alias.hpp"
#include "dosn/social/graph_gen.hpp"

using namespace dosn;
using namespace dosn::search;

int main() {
  util::Rng rng(42);

  std::printf("E11a: matryoshka anonymity vs ring depth\n");
  std::printf("(small-world graph: 300 users, k=4, beta=0.15; 40 cores)\n\n");
  const social::SocialGraph graph = social::wattsStrogatz(300, 4, 0.15, rng);
  std::printf("  %-8s %18s %16s %14s\n", "depth", "anonymity-set", "path-len",
              "built-ok");
  for (const std::size_t depth : {1u, 2u, 3u, 4u, 5u}) {
    double anonSum = 0;
    double lenSum = 0;
    std::size_t built = 0;
    for (std::size_t c = 0; c < 40; ++c) {
      const std::string core = "u" + std::to_string(c * 7);
      Matryoshka ring(graph, core, depth, 1, rng);
      if (ring.pathCount() == 0 || ring.path(0).size() < depth) continue;
      ++built;
      anonSum += static_cast<double>(ring.anonymitySetSize(graph, 0));
      lenSum += static_cast<double>(ring.path(0).size());
    }
    std::printf("  %-8zu %18.1f %16.1f %11zu/40\n", depth,
                built ? anonSum / static_cast<double>(built) : 0,
                built ? lenSum / static_cast<double>(built) : 0, built);
  }
  std::printf(
      "\nexpected shape: the anonymity set grows with depth (more users at\n"
      "the chain-length radius) at the cost of longer relay paths.\n");

  std::printf("\nE11b: proxy-collusion deanonymization\n");
  std::printf("(6 proxies, 120 users spread round-robin)\n\n");
  ProxyNetwork network;
  for (int p = 0; p < 6; ++p) network.addProxy("proxy" + std::to_string(p));
  for (int u = 0; u < 120; ++u) {
    network.registerUser("user" + std::to_string(u),
                         static_cast<std::size_t>(u % 6), rng);
  }
  std::printf("  %-22s %14s\n", "colluding proxies", "deanonymized");
  std::vector<std::size_t> colluding;
  for (std::size_t p = 0; p < 6; ++p) {
    colluding.push_back(p);
    std::printf("  %-22zu %13.0f%%\n", colluding.size(),
                100 * network.collusionRecoveryFraction(colluding));
  }
  std::printf(
      "\nexpected shape: deanonymization grows linearly with the colluding\n"
      "set; full collusion recovers every alias mapping.\n");
  return 0;
}
