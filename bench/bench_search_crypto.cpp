// Experiment E10 (paper §V-A/§V-B, §III-F): the cryptographic building
// blocks of secure social search — blind RSA signatures, the 2HashDH OPRF
// and Schnorr ZKPs — measured across group/modulus sizes.
//
// Expected shape: all operations are dominated by modular exponentiation, so
// costs grow ~cubically with modulus bits; every protocol stays in the
// single-digit-millisecond range at simulation sizes.
//
// One benchkit scenario per protocol; each sweeps group sizes and records
// `ms_per_round.<bits>` params. `--smoke` runs the smallest size once.
#include <cstdio>
#include <string>
#include <vector>

#include "dosn/benchkit/benchkit.hpp"
#include "dosn/pkcrypto/blind_rsa.hpp"
#include "dosn/pkcrypto/oprf.hpp"
#include "dosn/pkcrypto/schnorr.hpp"

namespace {

using namespace dosn;
using namespace dosn::pkcrypto;
using benchkit::ScenarioContext;

bool gHeaderPrinted = false;

std::vector<std::size_t> sweep(const ScenarioContext& ctx,
                               std::vector<std::size_t> full) {
  if (ctx.smoke()) return {full.front()};
  return full;
}

void report(ScenarioContext& ctx, const char* protocol, std::size_t bits,
            double totalMs, std::size_t iters) {
  const double msPerRound = totalMs / static_cast<double>(iters);
  ctx.param("ms_per_round." + std::to_string(bits), msPerRound);
  ctx.counter("iters", iters);
  if (ctx.printing()) {
    if (!gHeaderPrinted) {
      gHeaderPrinted = true;
      std::printf("E10: secure-search crypto primitives (ms/round)\n");
      std::printf("  %-22s %6s %12s\n", "protocol", "bits", "ms/round");
    }
    std::printf("  %-22s %6zu %12.3f\n", protocol, bits, msPerRound);
  }
}

}  // namespace

// One full subscribe: blind, sign, unblind, verify.
BENCH_SCENARIO(e10_blind_rsa, {.hot = true}) {
  for (const std::size_t bits : sweep(ctx, {512, 1024})) {
    util::Rng rng(ctx.seed());
    const RsaPrivateKey signer = rsaGenerate(bits, rng);
    const util::Bytes tag = util::toBytes("#hashtag");
    const std::size_t iters = ctx.smoke() ? 1 : 10;
    benchkit::Timer timer;
    for (std::size_t i = 0; i < iters; ++i) {
      BlindSignatureRequest request(signer.pub, tag, rng);
      const auto sig = request.unblind(blindSign(signer, request.blinded()));
      ctx.require(blindSignatureVerify(signer.pub, tag, sig),
                  "blind signature failed to verify");
    }
    report(ctx, "blind_rsa_round", bits, timer.ms(), iters);
  }
}

// One oblivious evaluation: blind, evaluate, finalize.
BENCH_SCENARIO(e10_oprf, {.hot = true}) {
  for (const std::size_t bits : sweep(ctx, {256, 512, 1024})) {
    util::Rng rng(ctx.seed());
    const DlogGroup& group = DlogGroup::cached(bits);
    const OprfSender sender(group, rng);
    const util::Bytes input = util::toBytes("#hashtag");
    const std::size_t iters = ctx.smoke() ? 1 : 10;
    benchkit::Timer timer;
    for (std::size_t i = 0; i < iters; ++i) {
      OprfReceiver receiver(group, input, rng);
      const auto out =
          receiver.finalize(sender.evaluateBlinded(receiver.blinded()));
      ctx.require(!out.empty(), "OPRF output empty");
    }
    report(ctx, "oprf_round", bits, timer.ms(), iters);
  }
}

// Non-interactive Schnorr proof-of-knowledge: prove + verify.
BENCH_SCENARIO(e10_zkp, {.hot = true}) {
  for (const std::size_t bits : sweep(ctx, {256, 512, 1024})) {
    util::Rng rng(ctx.seed());
    const DlogGroup& group = DlogGroup::cached(bits);
    const SchnorrPrivateKey key = schnorrGenerate(group, rng);
    const util::Bytes context = util::toBytes("resource/album");
    const std::size_t iters = ctx.smoke() ? 1 : 10;
    benchkit::Timer timer;
    for (std::size_t i = 0; i < iters; ++i) {
      const SchnorrProof proof = schnorrProve(group, key, context, rng);
      ctx.require(schnorrProofVerify(group, key.pub, context, proof),
                  "Schnorr proof failed to verify");
    }
    report(ctx, "zkp_round", bits, timer.ms(), iters);
  }
}

// Subscription-round batching: finalize n OPRF requests with one batch
// inversion (oprfFinalizeBatch) vs one extended-Euclid inversion per tag.
// Only the receiver-side finalize is timed — blinding and the sender's
// evaluation are identical on both paths.
BENCH_SCENARIO(e10_oprf_batch, {.hot = true}) {
  util::Rng rng(ctx.seed());
  const DlogGroup& group = DlogGroup::cached(256);
  const OprfSender sender(group, rng);
  const std::size_t rounds = ctx.smoke() ? 1 : 20;
  for (const std::size_t n : sweep(ctx, {1, 4, 16, 64})) {
    std::vector<OprfReceiver> receivers;
    std::vector<bignum::BigUint> replies;
    std::vector<const OprfReceiver*> ptrs;
    for (std::size_t i = 0; i < n; ++i) {
      receivers.emplace_back(group,
                             util::toBytes("#tag" + std::to_string(i)), rng);
      replies.push_back(sender.evaluateBlinded(receivers.back().blinded()));
    }
    for (const auto& r : receivers) ptrs.push_back(&r);
    std::vector<util::Bytes> oldOut(n), newOut;
    benchkit::Timer timer;
    for (std::size_t r = 0; r < rounds; ++r) {
      for (std::size_t i = 0; i < n; ++i) {
        oldOut[i] = receivers[i].finalize(replies[i]);
      }
    }
    const double oldMs = timer.ms();
    timer.reset();
    for (std::size_t r = 0; r < rounds; ++r) {
      newOut = oprfFinalizeBatch(ptrs, replies);
    }
    const double newMs = timer.ms();
    ctx.require(oldOut == newOut, "batched OPRF outputs diverge");
    const std::string tag = std::to_string(n);
    const double items = static_cast<double>(n * rounds);
    ctx.param("old_ms_per_item." + tag, oldMs / items);
    ctx.param("new_ms_per_item." + tag, newMs / items);
    ctx.param("speedup." + tag, oldMs / newMs);
    if (ctx.printing()) {
      std::printf("  oprf finalize batch n=%-4zu %8.4f -> %8.4f ms/item  %6.2fx\n",
                  n, oldMs / items, newMs / items, oldMs / newMs);
    }
  }
  ctx.counter("rounds", rounds);
}

// Access-check batching: verify a page of Schnorr proofs through the random-
// linear-combination batch (one multi-exponentiation) vs one-by-one. The page
// shape is the hot one from search/zkp_access: ONE pseudonym requesting n
// resources (opening an album), so the key's subgroup check amortizes across
// the page. With n distinct keys the batch does NOT pay — the per-item
// subgroup checks (soundness-mandatory, DESIGN.md §3g) already cost what the
// single path costs — so callers with mixed-key pages should expect parity,
// not a win.
BENCH_SCENARIO(e10_zkp_batch, {.hot = true}) {
  util::Rng rng(ctx.seed());
  const DlogGroup& group = DlogGroup::cached(256);
  const SchnorrPrivateKey key = schnorrGenerate(group, rng);
  const std::size_t rounds = ctx.smoke() ? 1 : 10;
  for (const std::size_t n : sweep(ctx, {1, 4, 16, 64})) {
    std::vector<SchnorrProofBatchItem> items;
    for (std::size_t i = 0; i < n; ++i) {
      const util::Bytes context = util::toBytes("album/" + std::to_string(i));
      items.push_back(SchnorrProofBatchItem{
          key.pub, context, schnorrProve(group, key, context, rng)});
    }
    bool oldOk = true;
    benchkit::Timer timer;
    for (std::size_t r = 0; r < rounds; ++r) {
      for (const auto& item : items) {
        oldOk = schnorrProofVerify(group, item.key, item.context, item.proof) &&
                oldOk;
      }
    }
    const double oldMs = timer.ms();
    bool newOk = true;
    timer.reset();
    for (std::size_t r = 0; r < rounds; ++r) {
      for (const bool ok : schnorrProofVerifyBatch(group, items)) {
        newOk = newOk && ok;
      }
    }
    const double newMs = timer.ms();
    ctx.require(oldOk && newOk, "ZKP batch verification failed");
    const std::string tag = std::to_string(n);
    const double itemCount = static_cast<double>(n * rounds);
    ctx.param("old_ms_per_item." + tag, oldMs / itemCount);
    ctx.param("new_ms_per_item." + tag, newMs / itemCount);
    ctx.param("speedup." + tag, oldMs / newMs);
    if (ctx.printing()) {
      std::printf("  zkp verify batch n=%-4zu    %8.4f -> %8.4f ms/item  %6.2fx\n",
                  n, oldMs / itemCount, newMs / itemCount, oldMs / newMs);
    }
  }
  ctx.counter("rounds", rounds);
}

// Plain Schnorr signature (the §IV baseline all integrity uses).
BENCH_SCENARIO(e10_schnorr_sign, {.hot = true}) {
  for (const std::size_t bits : sweep(ctx, {256, 512, 1024})) {
    util::Rng rng(ctx.seed());
    const DlogGroup& group = DlogGroup::cached(bits);
    const SchnorrPrivateKey key = schnorrGenerate(group, rng);
    const util::Bytes message = util::toBytes("a signed wall post");
    const std::size_t iters = ctx.smoke() ? 1 : 10;
    benchkit::Timer timer;
    for (std::size_t i = 0; i < iters; ++i) {
      const auto sig = schnorrSign(group, key, message, rng);
      ctx.require(schnorrVerify(group, key.pub, message, sig),
                  "Schnorr signature failed to verify");
    }
    report(ctx, "schnorr_sign_verify", bits, timer.ms(), iters);
  }
}

BENCHKIT_MAIN()
