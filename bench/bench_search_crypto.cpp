// Experiment E10 (paper §V-A/§V-B, §III-F): the cryptographic building
// blocks of secure social search — blind RSA signatures, the 2HashDH OPRF
// and Schnorr ZKPs — measured across group/modulus sizes.
//
// Expected shape: all operations are dominated by modular exponentiation, so
// costs grow ~cubically with modulus bits; every protocol stays in the
// single-digit-millisecond range at simulation sizes.
#include <benchmark/benchmark.h>

#include "dosn/pkcrypto/blind_rsa.hpp"
#include "dosn/pkcrypto/oprf.hpp"
#include "dosn/pkcrypto/schnorr.hpp"

namespace {

using namespace dosn;
using namespace dosn::pkcrypto;

// --- Blind RSA (one full subscribe: blind, sign, unblind, verify) ---

void blindSignatureRound(benchmark::State& state) {
  util::Rng rng(42);
  const RsaPrivateKey signer =
      rsaGenerate(static_cast<std::size_t>(state.range(0)), rng);
  const util::Bytes tag = util::toBytes("#hashtag");
  for (auto _ : state) {
    BlindSignatureRequest request(signer.pub, tag, rng);
    const auto sig = request.unblind(blindSign(signer, request.blinded()));
    benchmark::DoNotOptimize(blindSignatureVerify(signer.pub, tag, sig));
  }
}

// --- OPRF (one oblivious evaluation: blind, evaluate, finalize) ---

void oprfRound(benchmark::State& state) {
  util::Rng rng(42);
  const DlogGroup& group =
      DlogGroup::cached(static_cast<std::size_t>(state.range(0)));
  const OprfSender sender(group, rng);
  const util::Bytes input = util::toBytes("#hashtag");
  for (auto _ : state) {
    OprfReceiver receiver(group, input, rng);
    benchmark::DoNotOptimize(
        receiver.finalize(sender.evaluateBlinded(receiver.blinded())));
  }
}

// --- Schnorr ZKP (non-interactive prove + verify) ---

void zkpRound(benchmark::State& state) {
  util::Rng rng(42);
  const DlogGroup& group =
      DlogGroup::cached(static_cast<std::size_t>(state.range(0)));
  const SchnorrPrivateKey key = schnorrGenerate(group, rng);
  const util::Bytes context = util::toBytes("resource/album");
  for (auto _ : state) {
    const SchnorrProof proof = schnorrProve(group, key, context, rng);
    benchmark::DoNotOptimize(schnorrProofVerify(group, key.pub, context, proof));
  }
}

// --- Plain Schnorr signature (the §IV baseline all integrity uses) ---

void schnorrSignVerify(benchmark::State& state) {
  util::Rng rng(42);
  const DlogGroup& group =
      DlogGroup::cached(static_cast<std::size_t>(state.range(0)));
  const SchnorrPrivateKey key = schnorrGenerate(group, rng);
  const util::Bytes message = util::toBytes("a signed wall post");
  for (auto _ : state) {
    const auto sig = schnorrSign(group, key, message, rng);
    benchmark::DoNotOptimize(schnorrVerify(group, key.pub, message, sig));
  }
}

}  // namespace

BENCHMARK(blindSignatureRound)->Arg(512)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK(oprfRound)->Arg(256)->Arg(512)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK(zkpRound)->Arg(256)->Arg(512)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK(schnorrSignVerify)->Arg(256)->Arg(512)->Arg(1024)->Unit(benchmark::kMillisecond);
