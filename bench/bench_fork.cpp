// Experiment E9 (paper §IV-B): fork-consistency detection. "If the clients
// who have been equivocated by the service provider communicate to each
// other, they will discover the provider's misbehaviour."
//
// A malicious provider forks a subset of N clients onto a divergent view.
// Per round, each client cross-checks one random peer with probability p. We
// measure the probability that the fork has been detected after r rounds as
// a function of the fork size and p — detection needs exactly one cross-fork
// pair to talk.
//
// Two benchkit scenarios: the detection sweep and the honest-provider
// control. `--smoke` shrinks the trial count.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "dosn/benchkit/benchkit.hpp"
#include "dosn/integrity/fork_consistency.hpp"

using namespace dosn;
using benchkit::ScenarioContext;
using integrity::AuditingClient;
using integrity::ForkingProvider;

namespace {

constexpr std::size_t kClients = 20;

double detectionProbability(std::size_t forkedClients, double contactProb,
                            std::size_t rounds, std::uint64_t seed,
                            std::size_t trials) {
  std::size_t detectedTrials = 0;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    util::Rng rng(seed + trial);
    const auto& group = pkcrypto::DlogGroup::cached(256);
    ForkingProvider provider(group, rng);
    std::vector<std::string> names;
    for (std::size_t i = 0; i < kClients; ++i) {
      names.push_back("client" + std::to_string(i));
      provider.addClient(names.back());
    }
    // Fork a random subset of the given size.
    std::vector<std::string> shuffled = names;
    rng.shuffle(shuffled);
    provider.fork(std::vector<std::string>(
        shuffled.begin(),
        shuffled.begin() + static_cast<std::ptrdiff_t>(forkedClients)));
    // Divergent activity on both forks.
    provider.appendAs(shuffled.front(), util::toBytes("forked-op"), rng);
    provider.appendAs(shuffled.back(), util::toBytes("honest-op"), rng);

    std::vector<std::unique_ptr<AuditingClient>> clients;
    for (const auto& name : names) {
      clients.push_back(
          std::make_unique<AuditingClient>(group, name, provider.publicKey()));
      clients.back()->observe(provider.headFor(name));
    }

    bool detected = false;
    for (std::size_t round = 0; round < rounds && !detected; ++round) {
      for (std::size_t i = 0; i < kClients && !detected; ++i) {
        if (!rng.chance(contactProb)) continue;  // clients talk only sometimes
        const std::size_t j = rng.uniform(kClients);
        if (j == i) continue;
        detected = clients[i]->crossCheck(*clients[j], provider);
      }
    }
    if (detected) ++detectedTrials;
  }
  return static_cast<double>(detectedTrials) / static_cast<double>(trials);
}

}  // namespace

BENCH_SCENARIO(e9_fork_detection) {
  const std::size_t trials = ctx.smoke() ? 10 : 60;
  ctx.param("clients", static_cast<double>(kClients));
  ctx.param("trials", static_cast<double>(trials));
  if (ctx.printing()) {
    std::printf(
        "E9: fork detection probability (%zu clients, %zu trials)\n"
        "(per round, each client cross-checks one random peer with prob. p)\n\n",
        kClients, trials);
  }
  for (const double p : {0.1, 0.5}) {
    if (ctx.printing()) {
      std::printf("  contact probability p=%.1f\n", p);
      std::printf("    %-16s", "forked clients");
      for (const std::size_t rounds : {1u, 2u, 4u, 8u}) {
        std::printf("  after %zu round(s)", rounds);
      }
      std::printf("\n");
    }
    for (const std::size_t forked : {1u, 2u, 5u, 10u}) {
      if (ctx.printing()) std::printf("    %-16zu", forked);
      for (const std::size_t rounds : {1u, 2u, 4u, 8u}) {
        const double prob = detectionProbability(
            forked, p, rounds,
            ctx.seed() - 42 + 1000 * forked +
                static_cast<std::uint64_t>(100 * p),
            trials);
        if (ctx.printing()) std::printf("  %15.0f%%", 100 * prob);
        ctx.param("detect.p" + std::to_string(static_cast<int>(100 * p)) +
                      ".f" + std::to_string(forked) + ".r" +
                      std::to_string(rounds),
                  prob);
      }
      if (ctx.printing()) std::printf("\n");
    }
    if (ctx.printing()) std::printf("\n");
  }
  if (ctx.printing()) {
    std::printf(
        "\nexpected shape: detection needs one cross-fork contact; a 50/50 fork\n"
        "is caught almost immediately, while forking a single victim takes\n"
        "more rounds (only contacts involving that victim help). Either way\n"
        "detection converges to 1 — the paper's claim that communicating\n"
        "clients 'will discover the provider's misbehaviour'.\n");
  }
}

// A control: an honest (unforked) provider is never falsely accused.
BENCH_SCENARIO(e9_honest_control) {
  util::Rng rng(ctx.seed() - 33);  // historical seed 9 at default 42
  const auto& group = pkcrypto::DlogGroup::cached(256);
  ForkingProvider honest(group, rng);
  honest.addClient("a");
  honest.addClient("b");
  honest.appendAs("a", util::toBytes("op1"), rng);
  honest.appendAs("b", util::toBytes("op2"), rng);
  AuditingClient a(group, "a", honest.publicKey());
  AuditingClient b(group, "b", honest.publicKey());
  a.observe(honest.headFor("a"));
  b.observe(honest.headFor("b"));
  const bool falsePositive = a.crossCheck(b, honest) || b.crossCheck(a, honest);
  ctx.require(!falsePositive, "honest provider falsely accused");
  if (ctx.printing()) {
    std::printf("\ncontrol (honest provider): false positives = %s\n",
                falsePositive ? "YES (BUG)" : "0");
  }
  ctx.counter("false_positives", falsePositive ? 1 : 0);
}

BENCHKIT_MAIN()
