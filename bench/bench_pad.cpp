// Experiment E5 (paper §III-F): Frientegrity organizes ACLs as persistent
// authenticated dictionaries, "making it possible to access in logarithmic
// time."
//
// Sweeps ACL member count and compares PAD lookup (+ proof) against a flat
// list-scan ACL; also reports the structure height to make the O(log n)
// shape visible.
#include <chrono>
#include <cstdio>
#include <vector>

#include "dosn/privacy/pad.hpp"
#include "dosn/util/rng.hpp"

using namespace dosn;

namespace {

double nsPerOp(std::chrono::steady_clock::time_point start, int ops) {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now() - start)
             .count() /
         ops;
}

}  // namespace

int main() {
  std::printf("E5: PAD (log-time) vs flat-list ACL lookup\n\n");
  std::printf("%-10s %14s %14s %16s %10s %14s\n", "members", "pad-find(ns)",
              "list-scan(ns)", "pad+proof(ns)", "height", "proof-steps");

  util::Rng rng(42);
  for (std::size_t n : {16u, 64u, 256u, 1024u, 4096u, 16384u}) {
    privacy::Pad pad;
    std::vector<std::pair<std::string, util::Bytes>> list;
    for (std::size_t i = 0; i < n; ++i) {
      const std::string key = "member-" + std::to_string(i);
      pad = pad.insert(key, util::toBytes("rw"));
      list.emplace_back(key, util::toBytes("rw"));
    }
    // Lookup targets spread over the key space.
    std::vector<std::string> targets;
    for (int i = 0; i < 200; ++i) {
      targets.push_back("member-" + std::to_string(rng.uniform(n)));
    }

    auto t0 = std::chrono::steady_clock::now();
    for (const auto& key : targets) {
      volatile bool hit = pad.find(key).has_value();
      (void)hit;
    }
    const double padNs = nsPerOp(t0, static_cast<int>(targets.size()));

    t0 = std::chrono::steady_clock::now();
    for (const auto& key : targets) {
      bool hit = false;
      for (const auto& [k, v] : list) {
        if (k == key) {
          hit = true;
          break;
        }
      }
      volatile bool sink = hit;
      (void)sink;
    }
    const double listNs = nsPerOp(t0, static_cast<int>(targets.size()));

    t0 = std::chrono::steady_clock::now();
    std::size_t proofSteps = 0;
    for (const auto& key : targets) {
      const auto proof = pad.prove(key);
      proofSteps = proof->steps.size();
    }
    const double proofNs = nsPerOp(t0, static_cast<int>(targets.size()));

    std::printf("%-10zu %14.0f %14.0f %16.0f %10zu %14zu\n", n, padNs, listNs,
                proofNs, pad.height(), proofSteps);
  }
  std::printf(
      "\nexpected shape: pad-find grows ~log n (height ~1.5-3x log2 n);\n"
      "list-scan grows linearly and overtakes the PAD by orders of magnitude\n"
      "at large n.\n");
  return 0;
}
