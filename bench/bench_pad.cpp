// Experiment E5 (paper §III-F): Frientegrity organizes ACLs as persistent
// authenticated dictionaries, "making it possible to access in logarithmic
// time."
//
// Sweeps ACL member count and compares PAD lookup (+ proof) against a flat
// list-scan ACL; also reports the structure height to make the O(log n)
// shape visible. One benchkit scenario runs the sweep; `--smoke` caps the
// dictionary at 256 members.
#include <cstdio>
#include <string>
#include <vector>

#include "dosn/benchkit/benchkit.hpp"
#include "dosn/privacy/pad.hpp"
#include "dosn/util/rng.hpp"

using namespace dosn;
using benchkit::ScenarioContext;

BENCH_SCENARIO(e5_pad_lookup, {.hot = true}) {
  if (ctx.printing()) {
    std::printf("E5: PAD (log-time) vs flat-list ACL lookup\n\n");
    std::printf("%-10s %14s %14s %16s %10s %14s\n", "members", "pad-find(ns)",
                "list-scan(ns)", "pad+proof(ns)", "height", "proof-steps");
  }

  util::Rng rng(ctx.seed());
  const std::size_t maxN = ctx.smoke() ? 256 : 16384;
  const int lookups = ctx.smoke() ? 50 : 200;
  for (std::size_t n : {16u, 64u, 256u, 1024u, 4096u, 16384u}) {
    if (n > maxN) continue;
    privacy::Pad pad;
    std::vector<std::pair<std::string, util::Bytes>> list;
    for (std::size_t i = 0; i < n; ++i) {
      const std::string key = "member-" + std::to_string(i);
      pad = pad.insert(key, util::toBytes("rw"));
      list.emplace_back(key, util::toBytes("rw"));
    }
    // Lookup targets spread over the key space.
    std::vector<std::string> targets;
    for (int i = 0; i < lookups; ++i) {
      targets.push_back("member-" + std::to_string(rng.uniform(n)));
    }

    benchkit::Timer timer;
    for (const auto& key : targets) {
      volatile bool hit = pad.find(key).has_value();
      (void)hit;
    }
    const double padNs =
        timer.ms() * 1e6 / static_cast<double>(targets.size());

    timer.reset();
    for (const auto& key : targets) {
      bool hit = false;
      for (const auto& [k, v] : list) {
        if (k == key) {
          hit = true;
          break;
        }
      }
      volatile bool sink = hit;
      (void)sink;
    }
    const double listNs =
        timer.ms() * 1e6 / static_cast<double>(targets.size());

    timer.reset();
    std::size_t proofSteps = 0;
    for (const auto& key : targets) {
      const auto proof = pad.prove(key);
      proofSteps = proof->steps.size();
    }
    const double proofNs =
        timer.ms() * 1e6 / static_cast<double>(targets.size());

    if (ctx.printing()) {
      std::printf("%-10zu %14.0f %14.0f %16.0f %10zu %14zu\n", n, padNs,
                  listNs, proofNs, pad.height(), proofSteps);
    }
    const std::string tag = "." + std::to_string(n);
    ctx.param("pad_find_ns" + tag, padNs);
    ctx.param("list_scan_ns" + tag, listNs);
    ctx.param("pad_proof_ns" + tag, proofNs);
    ctx.counter("height" + tag, pad.height());
    ctx.counter("proof_steps" + tag, proofSteps);
  }
  if (ctx.printing()) {
    std::printf(
        "\nexpected shape: pad-find grows ~log n (height ~1.5-3x log2 n);\n"
        "list-scan grows linearly and overtakes the PAD by orders of magnitude\n"
        "at large n.\n");
  }
}

BENCHKIT_MAIN()
