// F1: fault-injection robustness sweep. The survey's availability discussion
// (§IV) assumes the storage overlay keeps answering queries while individual
// links misbehave. This experiment scripts increasingly hostile FaultPlans
// (uniform drop storms) against a Kademlia swarm and sweeps the RPC retry
// budget, showing how much lookup success retry-with-backoff buys back and
// what it costs in extra messages.
//
// Since every overlay RPC now flows through net::RpcEndpoint, the run also
// reports the endpoint's uniform observability surface — rpc.<type>.*
// counters and per-type round-trip latency histograms — plus an adaptive
// row per storm where a fleet-shared AdaptiveRetryPolicy sizes the budget
// from the observed timeout rate instead of a hand-picked constant.
#include <cstdio>
#include <memory>

#include "dosn/net/retry.hpp"
#include "dosn/overlay/kademlia.hpp"
#include "dosn/sim/faults.hpp"
#include "dosn/sim/metrics.hpp"

using namespace dosn;
using namespace dosn::overlay;
using sim::kMillisecond;
using sim::kSecond;

namespace {

constexpr std::size_t kPeers = 40;
constexpr std::size_t kItems = 20;
constexpr std::size_t kLookups = 60;

struct Outcome {
  double successRate = 0;
  double msgsPerLookup = 0;
  std::size_t retries = 0;
  std::size_t finalBudget = 0;   // adaptive runs: attempts() after the sweep
  double timeoutRate = 0;        // adaptive runs: final EWMA
};

Outcome run(double drop, std::size_t retryAttempts,
            net::AdaptiveRetryPolicy* adaptive = nullptr,
            sim::Metrics* metricsOut = nullptr) {
  util::Rng rng(42);
  sim::Simulator simulator;
  sim::Network net(simulator,
                   sim::LatencyModel{20 * kMillisecond, 10 * kMillisecond, 0.0},
                   rng);
  sim::Metrics metrics;
  net.setMetrics(&metrics);

  KademliaConfig config;
  config.k = 8;
  config.alpha = 3;
  config.rpcTimeout = 250 * kMillisecond;
  config.storeWidth = 3;
  config.retry = RetryPolicy{retryAttempts, 150 * kMillisecond, 2.0};
  config.adaptiveRetry = adaptive;

  std::vector<std::unique_ptr<KademliaNode>> peers;
  for (std::size_t i = 0; i < kPeers; ++i) {
    peers.push_back(
        std::make_unique<KademliaNode>(net, OverlayId::random(rng), config));
  }
  const Contact seed{peers[0]->id(), peers[0]->addr()};
  for (std::size_t i = 1; i < kPeers; ++i) {
    peers[i]->bootstrap(seed);
    simulator.run();
  }
  std::vector<OverlayId> keys;
  for (std::size_t i = 0; i < kItems; ++i) {
    keys.push_back(OverlayId::hash("fault-" + std::to_string(i)));
    peers[i % kPeers]->store(keys.back(), util::toBytes("v"), {});
    simulator.run();
  }

  // Faults start only after the swarm is built and populated, so every
  // configuration queries the same healthy topology.
  sim::FaultPlan plan;
  plan.at(simulator.now(), sim::FaultRule::global().drop(drop));
  net.setFaultPlan(&plan);
  net.resetStats();
  // Swap in the caller's sink here so it sees the lookup phase only, not the
  // (fault-free) bootstrap and store traffic.
  if (metricsOut) net.setMetrics(metricsOut);

  std::size_t found = 0;
  for (std::size_t q = 0; q < kLookups; ++q) {
    bool ok = false;
    peers[(q * 7) % kPeers]->findValue(keys[q % kItems], [&](LookupResult r) {
      ok = r.value.has_value();
    });
    simulator.run();
    if (ok) ++found;
  }
  Outcome out;
  out.successRate = static_cast<double>(found) / kLookups;
  out.msgsPerLookup = static_cast<double>(net.messagesSent()) / kLookups;
  for (const auto& peer : peers) out.retries += peer->rpcRetries();
  if (adaptive) {
    out.finalBudget = adaptive->attempts();
    out.timeoutRate = adaptive->timeoutRate();
  }
  return out;
}

void printRpcObservability(const sim::Metrics& metrics) {
  std::printf("%-24s %10s\n", "counter", "value");
  for (const auto& [name, value] : metrics.countersWithPrefix("rpc.")) {
    std::printf("%-24s %10llu\n", name.c_str(),
                static_cast<unsigned long long>(value));
  }
  std::printf("\n%-24s %8s %8s %8s %8s\n", "rtt histogram", "count", "mean",
              "p50", "p99");
  for (const auto& [name, hist] : metrics.histograms()) {
    if (name.rfind("rpc.", 0) != 0) continue;
    std::printf("%-24s %8zu %7.1fms %6.1fms %6.1fms\n", name.c_str(),
                hist.count(), hist.mean(), hist.percentile(50),
                hist.percentile(99));
  }
}

}  // namespace

int main() {
  std::printf("F1: drop probability x RPC retry budget (%zu peers, %zu lookups)\n\n",
              kPeers, kLookups);
  std::printf("%-8s %-9s %10s %14s %10s\n", "drop", "attempts", "success",
              "msgs/lookup", "retries");
  for (const double drop : {0.0, 0.1, 0.2, 0.35}) {
    for (const std::size_t attempts : {1u, 2u, 4u}) {
      const Outcome o = run(drop, attempts);
      std::printf("%-8.2f %-9zu %9.0f%% %14.1f %10zu\n", drop, attempts,
                  100 * o.successRate, o.msgsPerLookup, o.retries);
    }
    std::printf("\n");
  }
  std::printf(
      "expected shape: with a single attempt, success degrades steeply with\n"
      "the drop rate; adding retry attempts recovers most of it, paying a\n"
      "message overhead that grows with the drop rate (each retry is itself\n"
      "subject to the same faults).\n");

  std::printf(
      "\nF1a: adaptive retry budget (fleet-shared EWMA of timeout outcomes,\n"
      "budget = smallest n with rate^n <= 1%%, capped at 4 attempts)\n\n");
  std::printf("%-8s %10s %14s %10s %8s %9s\n", "drop", "success",
              "msgs/lookup", "retries", "budget", "est.rate");
  for (const double drop : {0.0, 0.1, 0.2, 0.35}) {
    net::AdaptiveRetryPolicy::Config config;
    config.base = RetryPolicy{1, 150 * kMillisecond, 2.0};
    config.maxAttempts = 4;
    net::AdaptiveRetryPolicy adaptive(config);
    const Outcome o = run(drop, 1, &adaptive);
    std::printf("%-8.2f %9.0f%% %14.1f %10zu %8zu %8.2f%%\n", drop,
                100 * o.successRate, o.msgsPerLookup, o.retries, o.finalBudget,
                100 * o.timeoutRate);
  }
  std::printf(
      "expected shape: the budget stays at 1 on a clean network (no retry\n"
      "overhead) and grows with the observed timeout rate, approaching the\n"
      "fixed attempts=4 row's success without hand-tuning per deployment.\n");

  std::printf(
      "\nF1b: per-RPC observability at drop=0.20, attempts=4 (the endpoint's\n"
      "uniform rpc.<type>.* surface; lookup phase only)\n\n");
  sim::Metrics metrics;
  run(0.2, 4, nullptr, &metrics);
  printRpcObservability(metrics);
  return 0;
}
