// F1: fault-injection robustness sweep. The survey's availability discussion
// (§IV) assumes the storage overlay keeps answering queries while individual
// links misbehave. This experiment scripts increasingly hostile FaultPlans
// (uniform drop storms) against a Kademlia swarm and sweeps the RPC retry
// budget, showing how much lookup success retry-with-backoff buys back and
// what it costs in extra messages.
#include <cstdio>
#include <memory>

#include "dosn/overlay/kademlia.hpp"
#include "dosn/sim/faults.hpp"
#include "dosn/sim/metrics.hpp"

using namespace dosn;
using namespace dosn::overlay;
using sim::kMillisecond;
using sim::kSecond;

namespace {

constexpr std::size_t kPeers = 40;
constexpr std::size_t kItems = 20;
constexpr std::size_t kLookups = 60;

struct Outcome {
  double successRate = 0;
  double msgsPerLookup = 0;
  std::size_t retries = 0;
};

Outcome run(double drop, std::size_t retryAttempts) {
  util::Rng rng(42);
  sim::Simulator simulator;
  sim::Network net(simulator,
                   sim::LatencyModel{20 * kMillisecond, 10 * kMillisecond, 0.0},
                   rng);
  sim::Metrics metrics;
  net.setMetrics(&metrics);

  KademliaConfig config;
  config.k = 8;
  config.alpha = 3;
  config.rpcTimeout = 250 * kMillisecond;
  config.storeWidth = 3;
  config.retry = RetryPolicy{retryAttempts, 150 * kMillisecond, 2.0};

  std::vector<std::unique_ptr<KademliaNode>> peers;
  for (std::size_t i = 0; i < kPeers; ++i) {
    peers.push_back(
        std::make_unique<KademliaNode>(net, OverlayId::random(rng), config));
  }
  const Contact seed{peers[0]->id(), peers[0]->addr()};
  for (std::size_t i = 1; i < kPeers; ++i) {
    peers[i]->bootstrap(seed);
    simulator.run();
  }
  std::vector<OverlayId> keys;
  for (std::size_t i = 0; i < kItems; ++i) {
    keys.push_back(OverlayId::hash("fault-" + std::to_string(i)));
    peers[i % kPeers]->store(keys.back(), util::toBytes("v"), {});
    simulator.run();
  }

  // Faults start only after the swarm is built and populated, so every
  // configuration queries the same healthy topology.
  sim::FaultPlan plan;
  plan.at(simulator.now(), sim::FaultRule::global().drop(drop));
  net.setFaultPlan(&plan);
  net.resetStats();

  std::size_t found = 0;
  for (std::size_t q = 0; q < kLookups; ++q) {
    bool ok = false;
    peers[(q * 7) % kPeers]->findValue(keys[q % kItems], [&](LookupResult r) {
      ok = r.value.has_value();
    });
    simulator.run();
    if (ok) ++found;
  }
  Outcome out;
  out.successRate = static_cast<double>(found) / kLookups;
  out.msgsPerLookup = static_cast<double>(net.messagesSent()) / kLookups;
  for (const auto& peer : peers) out.retries += peer->rpcRetries();
  return out;
}

}  // namespace

int main() {
  std::printf("F1: drop probability x RPC retry budget (%zu peers, %zu lookups)\n\n",
              kPeers, kLookups);
  std::printf("%-8s %-9s %10s %14s %10s\n", "drop", "attempts", "success",
              "msgs/lookup", "retries");
  for (const double drop : {0.0, 0.1, 0.2, 0.35}) {
    for (const std::size_t attempts : {1u, 2u, 4u}) {
      const Outcome o = run(drop, attempts);
      std::printf("%-8.2f %-9zu %9.0f%% %14.1f %10zu\n", drop, attempts,
                  100 * o.successRate, o.msgsPerLookup, o.retries);
    }
    std::printf("\n");
  }
  std::printf(
      "expected shape: with a single attempt, success degrades steeply with\n"
      "the drop rate; adding retry attempts recovers most of it, paying a\n"
      "message overhead that grows with the drop rate (each retry is itself\n"
      "subject to the same faults).\n");
  return 0;
}
