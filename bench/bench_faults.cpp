// F1: fault-injection robustness sweep. The survey's availability discussion
// (§IV) assumes the storage overlay keeps answering queries while individual
// links misbehave. This experiment scripts increasingly hostile FaultPlans
// (uniform drop storms) against a Kademlia swarm and sweeps the RPC retry
// budget, showing how much lookup success retry-with-backoff buys back and
// what it costs in extra messages.
//
// Since every overlay RPC now flows through net::RpcEndpoint, the run also
// reports the endpoint's uniform observability surface — rpc.<type>.*
// counters and per-type round-trip latency histograms — plus an adaptive
// row per storm where a fleet-shared AdaptiveRetryPolicy sizes the budget
// from the observed timeout rate instead of a hand-picked constant.
//
// Four benchkit scenarios: f1_drop_retry, f1a_adaptive, f1b_observability,
// f3_bimodal. `--smoke` shrinks the swarm and trims the sweeps.
#include <cstdio>
#include <memory>
#include <string>

#include "dosn/benchkit/benchkit.hpp"
#include "dosn/net/retry.hpp"
#include "dosn/overlay/kademlia.hpp"
#include "dosn/sim/faults.hpp"
#include "dosn/sim/metrics.hpp"

using namespace dosn;
using namespace dosn::overlay;
using benchkit::ScenarioContext;
using sim::kMillisecond;
using sim::kSecond;

namespace {

struct Sizes {
  std::size_t peers;
  std::size_t items;
  std::size_t lookups;
};

Sizes sizesFor(const ScenarioContext& ctx) {
  return ctx.smoke() ? Sizes{16, 8, 20} : Sizes{40, 20, 60};
}

struct Outcome {
  double successRate = 0;
  double msgsPerLookup = 0;
  std::size_t retries = 0;
  std::size_t finalBudget = 0;   // adaptive runs: attempts() after the sweep
  double timeoutRate = 0;        // adaptive runs: final EWMA
};

// --- F3: bimodal link delays, fixed vs adaptive timeout ------------------
//
// Half the fleet sits behind a +400ms-each-way delay (think: continental
// links or overloaded home uplinks), so the fleet's RTT distribution is
// bimodal: ~50ms near, ~850ms far (~1.7s far<->far, the spikes add). A fixed
// rpcTimeout=250ms with attempts=2 gives up 650ms after the first send —
// before a far reply can possibly arrive — so every far RPC fails and every
// far retransmission is pure waste. The adaptive rows give each destination
// its own RFC 6298 estimator (net/rtt.hpp): consecutive timeouts back the
// peer's timeout off geometrically until one attempt survives long enough to
// sample the true RTT, after which far calls complete cleanly on their first
// attempt. The run is lossless, so *every* retransmission is spurious by
// construction (the original request always arrives; only the reply is slow).
constexpr std::size_t kF3Waves = 3;
constexpr std::size_t kF3Origins = 4;
constexpr sim::SimTime kF3FarDelay = 400 * kMillisecond;

struct WaveStats {
  double successRate = 0;
  double p50Ms = 0;
  double p95Ms = 0;
  std::uint64_t retransmits = 0;  // all spurious: the plan never drops
  std::uint64_t timeouts = 0;
};

std::uint64_t sumRpcCounter(const sim::Metrics& metrics,
                            const std::string& suffix) {
  std::uint64_t total = 0;
  for (const auto& [name, value] : metrics.countersWithPrefix("rpc.")) {
    if (name.size() >= suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0) {
      total += value;
    }
  }
  return total;
}

std::vector<WaveStats> runF3(const ScenarioContext& ctx, bool adaptiveTimeout) {
  const Sizes sz = sizesFor(ctx);
  const std::size_t lookupsPerWave = ctx.smoke() ? 12 : 40;
  util::Rng rng(ctx.seed());
  sim::Simulator simulator;
  sim::Network net(simulator,
                   sim::LatencyModel{20 * kMillisecond, 10 * kMillisecond, 0.0},
                   rng);
  sim::Metrics metrics;
  net.setMetrics(&metrics);

  KademliaConfig config;
  config.k = 8;
  config.alpha = 3;
  config.rpcTimeout = 250 * kMillisecond;
  config.storeWidth = 2;
  config.retry = RetryPolicy{2, 150 * kMillisecond, 2.0};
  config.adaptiveTimeout = adaptiveTimeout;

  std::vector<std::unique_ptr<KademliaNode>> peers;
  for (std::size_t i = 0; i < sz.peers; ++i) {
    peers.push_back(
        std::make_unique<KademliaNode>(net, OverlayId::random(rng), config));
  }
  const Contact seed{peers[0]->id(), peers[0]->addr()};
  for (std::size_t i = 1; i < sz.peers; ++i) {
    peers[i]->bootstrap(seed);
    simulator.run();
  }
  std::vector<OverlayId> keys;
  for (std::size_t i = 0; i < sz.items; ++i) {
    keys.push_back(OverlayId::hash("bimodal-" + std::to_string(i)));
    peers[i % sz.peers]->store(keys.back(), util::toBytes("v"), {});
    simulator.run();
  }

  // The delay spikes start only after the (uniformly fast) build phase, so
  // both policies query the same topology — and the adaptive estimators
  // start *mis-trained*: they learned ~50ms RTTs for peers that are about to
  // become slow, the hardest starting point for an adaptive scheme.
  sim::FaultPlan plan;
  for (std::size_t i = sz.peers / 2; i < sz.peers; ++i) {
    plan.at(simulator.now(),
            sim::FaultRule::node(peers[i]->addr()).delay(kF3FarDelay));
  }
  net.setFaultPlan(&plan);

  std::vector<WaveStats> waves;
  std::uint64_t prevRetransmits = sumRpcCounter(metrics, ".retries");
  std::uint64_t prevTimeouts = sumRpcCounter(metrics, ".timeouts");
  for (std::size_t wave = 0; wave < kF3Waves; ++wave) {
    sim::Histogram completion;
    std::size_t found = 0;
    for (std::size_t q = 0; q < lookupsPerWave; ++q) {
      const sim::SimTime started = simulator.now();
      bool ok = false;
      peers[1 + (q % kF3Origins)]->findValue(
          keys[q % sz.items], [&](LookupResult r) {
            ok = r.value.has_value();
            completion.record(
                static_cast<double>(simulator.now() - started) /
                static_cast<double>(kMillisecond));
          });
      simulator.run();
      if (ok) ++found;
    }
    WaveStats stats;
    stats.successRate =
        static_cast<double>(found) / static_cast<double>(lookupsPerWave);
    stats.p50Ms = completion.percentile(50);
    stats.p95Ms = completion.percentile(95);
    const std::uint64_t retransmits = sumRpcCounter(metrics, ".retries");
    const std::uint64_t timeouts = sumRpcCounter(metrics, ".timeouts");
    stats.retransmits = retransmits - prevRetransmits;
    stats.timeouts = timeouts - prevTimeouts;
    prevRetransmits = retransmits;
    prevTimeouts = timeouts;
    waves.push_back(stats);
  }
  return waves;
}

Outcome run(const ScenarioContext& ctx, double drop, std::size_t retryAttempts,
            net::AdaptiveRetryPolicy* adaptive = nullptr,
            sim::Metrics* metricsOut = nullptr) {
  const Sizes sz = sizesFor(ctx);
  util::Rng rng(ctx.seed());
  sim::Simulator simulator;
  sim::Network net(simulator,
                   sim::LatencyModel{20 * kMillisecond, 10 * kMillisecond, 0.0},
                   rng);
  sim::Metrics metrics;
  net.setMetrics(&metrics);

  KademliaConfig config;
  config.k = 8;
  config.alpha = 3;
  config.rpcTimeout = 250 * kMillisecond;
  config.storeWidth = 3;
  config.retry = RetryPolicy{retryAttempts, 150 * kMillisecond, 2.0};
  config.adaptiveRetry = adaptive;

  std::vector<std::unique_ptr<KademliaNode>> peers;
  for (std::size_t i = 0; i < sz.peers; ++i) {
    peers.push_back(
        std::make_unique<KademliaNode>(net, OverlayId::random(rng), config));
  }
  const Contact seed{peers[0]->id(), peers[0]->addr()};
  for (std::size_t i = 1; i < sz.peers; ++i) {
    peers[i]->bootstrap(seed);
    simulator.run();
  }
  std::vector<OverlayId> keys;
  for (std::size_t i = 0; i < sz.items; ++i) {
    keys.push_back(OverlayId::hash("fault-" + std::to_string(i)));
    peers[i % sz.peers]->store(keys.back(), util::toBytes("v"), {});
    simulator.run();
  }

  // Faults start only after the swarm is built and populated, so every
  // configuration queries the same healthy topology.
  sim::FaultPlan plan;
  plan.at(simulator.now(), sim::FaultRule::global().drop(drop));
  net.setFaultPlan(&plan);
  net.resetStats();
  // Swap in the caller's sink here so it sees the lookup phase only, not the
  // (fault-free) bootstrap and store traffic.
  if (metricsOut) net.setMetrics(metricsOut);

  std::size_t found = 0;
  for (std::size_t q = 0; q < sz.lookups; ++q) {
    bool ok = false;
    peers[(q * 7) % sz.peers]->findValue(keys[q % sz.items], [&](LookupResult r) {
      ok = r.value.has_value();
    });
    simulator.run();
    if (ok) ++found;
  }
  Outcome out;
  out.successRate = static_cast<double>(found) / static_cast<double>(sz.lookups);
  out.msgsPerLookup =
      static_cast<double>(net.messagesSent()) / static_cast<double>(sz.lookups);
  for (const auto& peer : peers) out.retries += peer->rpcRetries();
  if (adaptive) {
    out.finalBudget = adaptive->attempts();
    out.timeoutRate = adaptive->timeoutRate();
  }
  return out;
}

std::string dropTag(double drop) {
  return std::to_string(static_cast<int>(100 * drop));
}

}  // namespace

BENCH_SCENARIO(f1_drop_retry, {.hot = true}) {
  const Sizes sz = sizesFor(ctx);
  ctx.param("peers", static_cast<double>(sz.peers));
  ctx.param("lookups", static_cast<double>(sz.lookups));
  if (ctx.printing()) {
    std::printf(
        "F1: drop probability x RPC retry budget (%zu peers, %zu lookups)\n\n",
        sz.peers, sz.lookups);
    std::printf("%-8s %-9s %10s %14s %10s\n", "drop", "attempts", "success",
                "msgs/lookup", "retries");
  }
  for (const double drop : {0.0, 0.1, 0.2, 0.35}) {
    if (ctx.smoke() && drop > 0.2) continue;
    for (const std::size_t attempts : {1u, 2u, 4u}) {
      if (ctx.smoke() && attempts == 2) continue;
      const Outcome o = run(ctx, drop, attempts);
      if (ctx.printing()) {
        std::printf("%-8.2f %-9zu %9.0f%% %14.1f %10zu\n", drop, attempts,
                    100 * o.successRate, o.msgsPerLookup, o.retries);
      }
      const std::string tag =
          ".d" + dropTag(drop) + ".a" + std::to_string(attempts);
      ctx.param("success" + tag, o.successRate);
      ctx.param("msgs_per_lookup" + tag, o.msgsPerLookup);
      ctx.counter("retries" + tag, o.retries);
    }
    if (ctx.printing()) std::printf("\n");
  }
  if (ctx.printing()) {
    std::printf(
        "expected shape: with a single attempt, success degrades steeply with\n"
        "the drop rate; adding retry attempts recovers most of it, paying a\n"
        "message overhead that grows with the drop rate (each retry is itself\n"
        "subject to the same faults).\n");
  }
}

BENCH_SCENARIO(f1a_adaptive) {
  if (ctx.printing()) {
    std::printf(
        "\nF1a: adaptive retry budget (fleet-shared EWMA of timeout outcomes,\n"
        "budget = smallest n with rate^n <= 1%%, capped at 4 attempts)\n\n");
    std::printf("%-8s %10s %14s %10s %8s %9s\n", "drop", "success",
                "msgs/lookup", "retries", "budget", "est.rate");
  }
  for (const double drop : {0.0, 0.1, 0.2, 0.35}) {
    if (ctx.smoke() && drop > 0.2) continue;
    net::AdaptiveRetryPolicy::Config config;
    config.base = RetryPolicy{1, 150 * kMillisecond, 2.0};
    config.maxAttempts = 4;
    net::AdaptiveRetryPolicy adaptive(config);
    const Outcome o = run(ctx, drop, 1, &adaptive);
    if (ctx.printing()) {
      std::printf("%-8.2f %9.0f%% %14.1f %10zu %8zu %8.2f%%\n", drop,
                  100 * o.successRate, o.msgsPerLookup, o.retries,
                  o.finalBudget, 100 * o.timeoutRate);
    }
    const std::string tag = ".d" + dropTag(drop);
    ctx.param("success" + tag, o.successRate);
    ctx.param("msgs_per_lookup" + tag, o.msgsPerLookup);
    ctx.counter("retries" + tag, o.retries);
    ctx.counter("budget" + tag, o.finalBudget);
    ctx.param("timeout_rate" + tag, o.timeoutRate);
  }
  if (ctx.printing()) {
    std::printf(
        "expected shape: the budget stays at 1 on a clean network (no retry\n"
        "overhead) and grows with the observed timeout rate, approaching the\n"
        "fixed attempts=4 row's success without hand-tuning per deployment.\n");
  }
}

BENCH_SCENARIO(f1b_observability) {
  if (ctx.printing()) {
    std::printf(
        "\nF1b: per-RPC observability at drop=0.20, attempts=4 (the endpoint's\n"
        "uniform rpc.<type>.* surface; lookup phase only)\n\n");
  }
  const Outcome o = run(ctx, 0.2, 4, nullptr, &ctx.metrics());
  if (ctx.printing()) sim::printRpcObservability(ctx.metrics());
  ctx.param("success", o.successRate);
  ctx.param("msgs_per_lookup", o.msgsPerLookup);
}

BENCH_SCENARIO(f3_bimodal) {
  const Sizes sz = sizesFor(ctx);
  const std::size_t lookupsPerWave = ctx.smoke() ? 12 : 40;
  if (ctx.printing()) {
    std::printf(
        "\nF3: bimodal link delays — half the fleet +%lldms each way — fixed vs\n"
        "adaptive per-destination timeouts (%zu peers, %zu waves x %zu lookups,\n"
        "rpcTimeout=250ms, attempts=2, lossless: every retransmit is spurious)\n\n",
        static_cast<long long>(kF3FarDelay / kMillisecond), sz.peers, kF3Waves,
        lookupsPerWave);
    std::printf("%-9s %-5s %9s %10s %10s %13s %9s\n", "policy", "wave",
                "success", "p50(ms)", "p95(ms)", "spur.rexmit", "timeouts");
  }
  const std::vector<WaveStats> fixedWaves = runF3(ctx, false);
  const std::vector<WaveStats> adaptiveWaves = runF3(ctx, true);
  const std::pair<const char*, const std::vector<WaveStats>&> rows[] = {
      {"fixed", fixedWaves}, {"adaptive", adaptiveWaves}};
  for (const auto& [policy, waves] : rows) {
    for (std::size_t w = 0; w < kF3Waves; ++w) {
      if (ctx.printing()) {
        std::printf("%-9s %-5zu %8.0f%% %10.1f %10.1f %13llu %9llu\n", policy,
                    w + 1, 100 * waves[w].successRate, waves[w].p50Ms,
                    waves[w].p95Ms,
                    static_cast<unsigned long long>(waves[w].retransmits),
                    static_cast<unsigned long long>(waves[w].timeouts));
      }
      const std::string tag =
          std::string(".") + policy + ".w" + std::to_string(w + 1);
      ctx.param("success" + tag, waves[w].successRate);
      ctx.param("p95_ms" + tag, waves[w].p95Ms);
      ctx.counter("retransmits" + tag, waves[w].retransmits);
      ctx.counter("timeouts" + tag, waves[w].timeouts);
    }
  }
  if (ctx.printing()) {
    std::printf(
        "\nexpected shape: fixed 250ms gives up 650ms after the first send, so\n"
        "every far RPC fails — far-replicated items are unreachable and each\n"
        "far call burns one spurious retransmission, wave after wave. The\n"
        "adaptive rows back each slow destination's timeout off until its true\n"
        "RTT is sampled (Karn's rule: only unretransmitted calls count), so by\n"
        "the last wave far calls complete on their first attempt: higher\n"
        "success, lower p95 completion, and an order of magnitude fewer\n"
        "spurious retransmits.\n");
  }
}

BENCHKIT_MAIN()
