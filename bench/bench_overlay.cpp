// Experiment E6 (paper §II-B): overlay-organization comparison.
//   - structured (DHT): "queries will be resolved in a limited number of
//     steps" — bounded hops, per-node index state, bootstrap traffic.
//   - unstructured (flooding): "almost zero overhead" maintenance, paid for
//     with heavy query-time traffic and TTL-bounded reach.
//   - semi-structured (super peers): small index tier, cheap queries.
//   - hybrid (Cuckoo-style): "fast discovery of popular items" from the
//     gossip cache, DHT fallback for rare ones.
//
// All overlays run the same workload on the same simulated network: 60 peers,
// 40 items, 200 Zipf-distributed lookups (20/10/30 in `--smoke`). One benchkit
// scenario per overlay; the workload is rebuilt from `--seed` per scenario so
// every overlay still sees identical queries.
//
// Every overlay's traffic flows through net::RpcEndpoint, so each run also
// collects the endpoint's uniform rpc.<type>.* observability surface over its
// lookup phase (same format as bench_faults F1b), printed after each row and
// merged into the scenario's JSON counters.
#include <cstdio>
#include <memory>

#include "dosn/benchkit/benchkit.hpp"
#include "dosn/overlay/flooding.hpp"
#include "dosn/overlay/hybrid.hpp"
#include "dosn/overlay/kademlia.hpp"
#include "dosn/overlay/superpeer.hpp"
#include "dosn/sim/metrics.hpp"

using namespace dosn;
using namespace dosn::overlay;
using benchkit::ScenarioContext;
using sim::kMillisecond;
using sim::kSecond;

namespace {

constexpr double kZipfExponent = 1.0;

struct Sizes {
  std::size_t peers;
  std::size_t items;
  std::size_t lookups;
};

Sizes sizesFor(const ScenarioContext& ctx) {
  return ctx.smoke() ? Sizes{20, 10, 30} : Sizes{60, 40, 200};
}

struct Workload {
  Sizes sizes;
  std::vector<OverlayId> keys;
  std::vector<std::size_t> owners;    // which peer publishes item i
  std::vector<std::size_t> queries;   // item index per lookup (Zipf)
  std::vector<std::size_t> queriers;  // peer issuing each lookup
};

Workload makeWorkload(const ScenarioContext& ctx) {
  util::Rng rng(ctx.seed());
  Workload w;
  w.sizes = sizesFor(ctx);
  for (std::size_t i = 0; i < w.sizes.items; ++i) {
    w.keys.push_back(OverlayId::hash("item-" + std::to_string(i)));
    w.owners.push_back(rng.uniform(w.sizes.peers));
  }
  for (std::size_t q = 0; q < w.sizes.lookups; ++q) {
    w.queries.push_back(rng.zipf(w.sizes.items, kZipfExponent));
    w.queriers.push_back(rng.uniform(w.sizes.peers));
  }
  return w;
}

struct Result {
  const char* name;
  std::size_t found = 0;
  double meanLatencyMs = 0;
  double msgsPerLookup = 0;
  std::uint64_t setupMessages = 0;
  double cacheHitRate = -1;  // hybrid only
};

bool gHeaderPrinted = false;

void report(ScenarioContext& ctx, const Workload& w, const Result& r) {
  if (ctx.printing()) {
    if (!gHeaderPrinted) {
      gHeaderPrinted = true;
      std::printf(
          "E6: overlay lookup comparison (%zu peers, %zu items, %zu Zipf(%.1f) "
          "lookups)\n\n",
          w.sizes.peers, w.sizes.items, w.sizes.lookups, kZipfExponent);
      std::printf("  %-12s %13s %14s %14s %14s %14s\n", "overlay", "found",
                  "latency(ms)", "msgs/lookup", "setup-msgs", "cache-hits");
    }
    std::printf("  %-12s %8zu/%-4zu %14.1f %14.1f %14llu", r.name, r.found,
                w.sizes.lookups, r.meanLatencyMs, r.msgsPerLookup,
                static_cast<unsigned long long>(r.setupMessages));
    if (r.cacheHitRate >= 0) {
      std::printf(" %13.0f%%", 100 * r.cacheHitRate);
    }
    std::printf("\n");
  }
  ctx.param("peers", static_cast<double>(w.sizes.peers));
  ctx.param("items", static_cast<double>(w.sizes.items));
  ctx.param("lookups", static_cast<double>(w.sizes.lookups));
  ctx.counter("found", r.found);
  ctx.param("mean_latency_ms", r.meanLatencyMs);
  ctx.param("msgs_per_lookup", r.msgsPerLookup);
  ctx.counter("setup_messages", r.setupMessages);
  if (r.cacheHitRate >= 0) ctx.param("cache_hit_rate", r.cacheHitRate);
}

void printSurface(const ScenarioContext& ctx, const char* name,
                  const sim::Metrics& metrics) {
  if (!ctx.printing()) return;
  std::printf(
      "\n%s RPC observability (lookup phase only; the endpoint's uniform\n"
      "rpc.<type>.* surface, format as bench_faults F1b)\n",
      name);
  sim::printRpcObservability(metrics);
  std::printf("\n");
}

Result runDht(const Workload& w, sim::Metrics* rpcMetrics) {
  util::Rng rng(1);
  sim::Simulator simulator;
  sim::Network net(simulator,
                   sim::LatencyModel{20 * kMillisecond, 10 * kMillisecond, 0.0},
                   rng);
  std::vector<std::unique_ptr<KademliaNode>> peers;
  for (std::size_t i = 0; i < w.sizes.peers; ++i) {
    peers.push_back(std::make_unique<KademliaNode>(net, OverlayId::random(rng)));
  }
  const Contact seed{peers[0]->id(), peers[0]->addr()};
  for (std::size_t i = 1; i < w.sizes.peers; ++i) {
    peers[i]->bootstrap(seed);
    simulator.run();
  }
  for (std::size_t i = 0; i < w.sizes.items; ++i) {
    peers[w.owners[i]]->store(w.keys[i], util::toBytes("v"), {});
    simulator.run();
  }
  Result r{"dht"};
  r.setupMessages = net.messagesSent();
  net.resetStats();
  // Attach the sink here so it covers the lookup phase only, matching the
  // msgs/lookup column (and bench_faults F1b's convention).
  if (rpcMetrics) net.setMetrics(rpcMetrics);
  double latencySum = 0;
  for (std::size_t q = 0; q < w.sizes.lookups; ++q) {
    const sim::SimTime start = simulator.now();
    bool found = false;
    sim::SimTime foundAt = start;
    peers[w.queriers[q]]->findValue(w.keys[w.queries[q]],
                                    [&](LookupResult result) {
                                      found = result.value.has_value();
                                      foundAt = simulator.now();
                                    });
    simulator.run();
    if (found) {
      ++r.found;
      latencySum += static_cast<double>(foundAt - start) / kMillisecond;
    }
  }
  r.meanLatencyMs = r.found ? latencySum / static_cast<double>(r.found) : 0;
  r.msgsPerLookup =
      static_cast<double>(net.messagesSent()) / static_cast<double>(w.sizes.lookups);
  return r;
}

Result runFlooding(const Workload& w, sim::Metrics* rpcMetrics) {
  util::Rng rng(2);
  sim::Simulator simulator;
  sim::Network net(simulator,
                   sim::LatencyModel{20 * kMillisecond, 10 * kMillisecond, 0.0},
                   rng);
  std::vector<std::unique_ptr<FloodingNode>> peers;
  for (std::size_t i = 0; i < w.sizes.peers; ++i) {
    peers.push_back(std::make_unique<FloodingNode>(net, OverlayId::random(rng)));
  }
  // Random 4-regular-ish graph: ring + 2 random chords per node.
  for (std::size_t i = 0; i < w.sizes.peers; ++i) {
    linkNodes(*peers[i], *peers[(i + 1) % w.sizes.peers]);
  }
  for (std::size_t i = 0; i < w.sizes.peers; ++i) {
    const std::size_t j = rng.uniform(w.sizes.peers);
    if (j != i) linkNodes(*peers[i], *peers[j]);
  }
  for (std::size_t i = 0; i < w.sizes.items; ++i) {
    peers[w.owners[i]]->publish(w.keys[i], util::toBytes("v"));
  }
  Result r{"flooding"};
  r.setupMessages = net.messagesSent();  // zero: no index maintenance
  net.resetStats();
  if (rpcMetrics) net.setMetrics(rpcMetrics);
  double latencySum = 0;
  for (std::size_t q = 0; q < w.sizes.lookups; ++q) {
    const sim::SimTime start = simulator.now();
    bool found = false;
    sim::SimTime foundAt = start;
    peers[w.queriers[q]]->search(w.keys[w.queries[q]], /*ttl=*/6,
                                 /*timeout=*/5 * kSecond,
                                 [&](std::optional<util::Bytes> v) {
                                   found = v.has_value();
                                   foundAt = simulator.now();
                                 });
    simulator.run();
    if (found) {
      ++r.found;
      latencySum += static_cast<double>(foundAt - start) / kMillisecond;
    }
  }
  r.meanLatencyMs = r.found ? latencySum / static_cast<double>(r.found) : 0;
  r.msgsPerLookup =
      static_cast<double>(net.messagesSent()) / static_cast<double>(w.sizes.lookups);
  return r;
}

Result runSuperPeer(const Workload& w, sim::Metrics* rpcMetrics) {
  util::Rng rng(3);
  sim::Simulator simulator;
  sim::Network net(simulator,
                   sim::LatencyModel{20 * kMillisecond, 10 * kMillisecond, 0.0},
                   rng);
  constexpr std::size_t kSupers = 4;
  std::vector<std::unique_ptr<SuperPeer>> supers;
  for (std::size_t i = 0; i < kSupers; ++i) {
    supers.push_back(std::make_unique<SuperPeer>(net));
  }
  for (std::size_t i = 0; i < kSupers; ++i) {
    std::vector<sim::NodeAddr> others;
    for (std::size_t j = 0; j < kSupers; ++j) {
      if (j != i) others.push_back(supers[j]->addr());
    }
    supers[i]->setPeers(others);
  }
  std::vector<std::unique_ptr<LeafPeer>> peers;
  for (std::size_t i = 0; i < w.sizes.peers; ++i) {
    peers.push_back(
        std::make_unique<LeafPeer>(net, supers[i % kSupers]->addr()));
  }
  for (std::size_t i = 0; i < w.sizes.items; ++i) {
    peers[w.owners[i]]->publish(w.keys[i], util::toBytes("v"));
  }
  simulator.run();
  Result r{"super-peer"};
  r.setupMessages = net.messagesSent();
  net.resetStats();
  if (rpcMetrics) net.setMetrics(rpcMetrics);
  double latencySum = 0;
  for (std::size_t q = 0; q < w.sizes.lookups; ++q) {
    const sim::SimTime start = simulator.now();
    bool found = false;
    sim::SimTime foundAt = start;
    peers[w.queriers[q]]->search(w.keys[w.queries[q]], 5 * kSecond,
                                 [&](std::optional<util::Bytes> v) {
                                   found = v.has_value();
                                   foundAt = simulator.now();
                                 });
    simulator.run();
    if (found) {
      ++r.found;
      latencySum += static_cast<double>(foundAt - start) / kMillisecond;
    }
  }
  r.meanLatencyMs = r.found ? latencySum / static_cast<double>(r.found) : 0;
  r.msgsPerLookup =
      static_cast<double>(net.messagesSent()) / static_cast<double>(w.sizes.lookups);
  return r;
}

Result runHybrid(const Workload& w, sim::Metrics* rpcMetrics) {
  util::Rng rng(4);
  sim::Simulator simulator;
  sim::Network net(simulator,
                   sim::LatencyModel{20 * kMillisecond, 10 * kMillisecond, 0.0},
                   rng);
  std::vector<std::unique_ptr<HybridNode>> peers;
  for (std::size_t i = 0; i < w.sizes.peers; ++i) {
    peers.push_back(std::make_unique<HybridNode>(net, OverlayId::random(rng)));
  }
  const Contact seed{peers[0]->dht().id(), peers[0]->dht().addr()};
  std::vector<sim::NodeAddr> cachePeers;
  for (const auto& p : peers) cachePeers.push_back(p->cache().addr());
  for (std::size_t i = 0; i < w.sizes.peers; ++i) {
    if (i > 0) peers[i]->dht().bootstrap(seed);
    peers[i]->cache().setPeers(cachePeers);
    simulator.run();
  }
  // Popular items (top 20% of the Zipf ranks) are gossiped; the rest are
  // DHT-only.
  for (std::size_t i = 0; i < w.sizes.items; ++i) {
    peers[w.owners[i]]->publish(w.keys[i], util::toBytes("v"),
                                /*seedCache=*/i < w.sizes.items / 5);
    simulator.run();
  }
  for (const auto& p : peers) p->cache().start();
  simulator.runUntil(simulator.now() + 15 * kSecond);
  for (const auto& p : peers) p->cache().stop();

  Result r{"hybrid"};
  r.setupMessages = net.messagesSent();
  net.resetStats();
  if (rpcMetrics) net.setMetrics(rpcMetrics);
  double latencySum = 0;
  std::size_t cacheHits = 0;
  for (std::size_t q = 0; q < w.sizes.lookups; ++q) {
    const sim::SimTime start = simulator.now();
    bool found = false;
    bool fromCache = false;
    sim::SimTime foundAt = start;
    peers[w.queriers[q]]->lookup(w.keys[w.queries[q]],
                                 [&](HybridLookupResult result) {
                                   found = result.value.has_value();
                                   fromCache = result.fromCache;
                                   foundAt = simulator.now();
                                 });
    simulator.run();
    if (found) {
      ++r.found;
      if (fromCache) ++cacheHits;
      latencySum += static_cast<double>(foundAt - start) / kMillisecond;
    }
  }
  r.meanLatencyMs = r.found ? latencySum / static_cast<double>(r.found) : 0;
  r.msgsPerLookup =
      static_cast<double>(net.messagesSent()) / static_cast<double>(w.sizes.lookups);
  r.cacheHitRate = r.found ? static_cast<double>(cacheHits) /
                                 static_cast<double>(r.found)
                           : 0;
  return r;
}

}  // namespace

BENCH_SCENARIO(e6_dht, {.hot = true}) {
  const Workload w = makeWorkload(ctx);
  report(ctx, w, runDht(w, &ctx.metrics()));
  printSurface(ctx, "dht", ctx.metrics());
}

BENCH_SCENARIO(e6_flooding) {
  const Workload w = makeWorkload(ctx);
  report(ctx, w, runFlooding(w, &ctx.metrics()));
  printSurface(ctx, "flooding", ctx.metrics());
}

BENCH_SCENARIO(e6_superpeer) {
  const Workload w = makeWorkload(ctx);
  report(ctx, w, runSuperPeer(w, &ctx.metrics()));
  printSurface(ctx, "super-peer", ctx.metrics());
}

BENCH_SCENARIO(e6_hybrid, {.hot = true}) {
  const Workload w = makeWorkload(ctx);
  report(ctx, w, runHybrid(w, &ctx.metrics()));
  printSurface(ctx, "hybrid", ctx.metrics());
  if (ctx.printing()) {
    std::printf(
        "expected shape: flooding has ~0 setup messages but the most traffic\n"
        "per lookup and TTL-bounded success; the DHT resolves everything in\n"
        "bounded steps at moderate cost; super-peers are cheapest per query\n"
        "but concentrate index state; hybrid serves popular items from cache\n"
        "at near-zero marginal cost with DHT completeness for rare ones.\n");
  }
}

BENCHKIT_MAIN()
