#!/usr/bin/env python3
"""Compare two dosn-bench/1 JSON documents (or directories of them).

Usage:
  bench_compare.py BASELINE CURRENT [--max-regress PCT]

BASELINE and CURRENT are either two BENCH_<name>.json files produced by a
bench binary's --json flag, or two directories of such files (the comparison
pairs files by name; every baseline file must have a counterpart).

Default mode is a *structural* compare, safe across machines and compiler
versions:
  - both documents carry the known schema version,
  - every baseline scenario still exists in the current run,
  - every scenario has wall-clock stats (reps >= 1, median >= 0),
  - every baseline counter key is still recorded (values may drift with
    workload tuning; disappearing keys usually mean a port lost a metric).

With --max-regress PCT the script additionally gates wall-clock medians of
scenarios tagged "hot": current median must not exceed baseline median by
more than PCT percent. Only meaningful when both documents were produced on
the same machine at the same --reps; CI uses the structural mode against
bench/baselines/ and developers use --max-regress locally before/after a
change.

Scenarios that record a per-phase "timeline" (macro-workload benches such as
bench_dayinlife) are diffed phase by phase, not just as totals: the baseline's
phase-name sequence must be reproduced in order, every baseline phase counter
key must still be recorded, and under --exact-counters the per-phase counter
values must match exactly — so a regression (or determinism break) is
localized to the workload phase that caused it.

With --exact-counters every baseline counter must exist in the current run
WITH THE SAME VALUE. Counters produced by the deterministic simulator are a
pure function of the workload and the seed — independent of machine, load,
and compiler — so at a pinned seed this is a byte-identity check on the
simulation: any drift means scheduling order, RNG consumption, or delivery
semantics changed. The `bench_byte_identity` ctest case runs bench_faults
--smoke --seed 42 under this flag against the committed baseline.

Exit codes: 0 ok, 1 comparison failed, 2 usage or I/O error.
Stdlib only; do not add dependencies.
"""

import argparse
import json
import os
import sys

SCHEMA = "dosn-bench/1"


def fail(msg):
    print(f"bench_compare: FAIL: {msg}")
    return False


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: top level is not an object")
    return doc


def wall_ok(name, scenario):
    ok = True
    wall = scenario.get("wall_ms")
    if not isinstance(wall, dict):
        return fail(f"{name}: missing wall_ms stats")
    for key in ("min", "median", "mean", "p95", "max"):
        value = wall.get(key)
        if not isinstance(value, (int, float)) or value < 0:
            ok = fail(f"{name}: wall_ms.{key} is not a non-negative number")
    reps = scenario.get("reps")
    if not isinstance(reps, int) or reps < 1:
        ok = fail(f"{name}: reps must be >= 1")
    return ok


def counters_ok(label, base_counters, cur_counters, exact_counters):
    ok = True
    for key in base_counters:
        if key not in cur_counters:
            ok = fail(f"{label}: counter {key!r} disappeared")
        elif exact_counters and cur_counters[key] != base_counters[key]:
            ok = fail(
                f"{label}: counter {key!r} drifted: baseline "
                f"{base_counters[key]} vs current {cur_counters[key]} "
                f"(deterministic-sim byte identity violated)"
            )
    return ok


def timeline_ok(label, base_s, cur_s, exact_counters):
    base_tl = base_s.get("timeline")
    if not isinstance(base_tl, list):
        return True  # baseline has no timeline: nothing to hold cur to
    ok = True
    cur_tl = cur_s.get("timeline")
    if not isinstance(cur_tl, list):
        return fail(f"{label}: per-phase timeline disappeared")
    base_names = [p.get("name") for p in base_tl]
    cur_names = [p.get("name") for p in cur_tl]
    if base_names != cur_names:
        return fail(
            f"{label}: timeline phases changed: baseline {base_names} vs "
            f"current {cur_names} (phase sequence is part of the contract)"
        )
    for base_p, cur_p in zip(base_tl, cur_tl):
        phase_label = f"{label}[{base_p.get('name')}]"
        ok &= counters_ok(phase_label, base_p.get("counters") or {},
                          cur_p.get("counters") or {}, exact_counters)
    return ok


def compare_docs(base, cur, base_path, cur_path, max_regress,
                 exact_counters=False):
    ok = True
    for path, doc in ((base_path, base), (cur_path, cur)):
        if doc.get("schema") != SCHEMA:
            ok = fail(f"{path}: schema {doc.get('schema')!r}, want {SCHEMA!r}")
    if base.get("bench") != cur.get("bench"):
        ok = fail(
            f"bench name mismatch: baseline {base.get('bench')!r} vs "
            f"current {cur.get('bench')!r}"
        )
    if not ok:
        return False

    bench = base.get("bench", "?")
    base_scenarios = {s.get("name"): s for s in base.get("scenarios", [])}
    cur_scenarios = {s.get("name"): s for s in cur.get("scenarios", [])}

    for name, base_s in base_scenarios.items():
        label = f"{bench}/{name}"
        cur_s = cur_scenarios.get(name)
        if cur_s is None:
            ok = fail(f"{label}: scenario present in baseline but not in "
                      f"current run")
            continue
        ok &= wall_ok(label, cur_s)
        ok &= counters_ok(label, base_s.get("counters") or {},
                          cur_s.get("counters") or {}, exact_counters)
        ok &= timeline_ok(label, base_s, cur_s, exact_counters)
        if max_regress is not None and base_s.get("hot") and cur_s.get("hot"):
            base_median = (base_s.get("wall_ms") or {}).get("median", 0)
            cur_median = (cur_s.get("wall_ms") or {}).get("median", 0)
            if base_median > 0:
                limit = base_median * (1 + max_regress / 100.0)
                if cur_median > limit:
                    ok = fail(
                        f"{label}: hot median regressed "
                        f"{base_median:.3f} ms -> {cur_median:.3f} ms "
                        f"(limit {limit:.3f} ms at --max-regress "
                        f"{max_regress:g})"
                    )

    added = sorted(set(cur_scenarios) - set(base_scenarios))
    if added:
        print(f"bench_compare: note: {bench}: new scenarios not in baseline: "
              f"{', '.join(added)}")
    if ok:
        gate = (f", hot medians within {max_regress:g}%"
                if max_regress is not None else "")
        exact = ", counters byte-identical" if exact_counters else ""
        print(f"bench_compare: ok: {bench}: "
              f"{len(base_scenarios)} baseline scenarios present{gate}{exact}")
    return ok


def pair_files(base_dir, cur_dir):
    names = sorted(
        n for n in os.listdir(base_dir)
        if n.startswith("BENCH_") and n.endswith(".json")
    )
    if not names:
        raise ValueError(f"{base_dir}: no BENCH_*.json files")
    pairs = []
    for n in names:
        cur = os.path.join(cur_dir, n)
        if not os.path.exists(cur):
            raise ValueError(f"{cur}: baseline {n} has no current counterpart")
        pairs.append((os.path.join(base_dir, n), cur))
    return pairs


def main(argv):
    parser = argparse.ArgumentParser(
        prog="bench_compare.py",
        description="Compare dosn-bench/1 JSON documents.",
    )
    parser.add_argument("baseline", help="baseline file or directory")
    parser.add_argument("current", help="current file or directory")
    parser.add_argument(
        "--max-regress",
        type=float,
        metavar="PCT",
        help="fail if a hot scenario's wall median regresses more than PCT%% "
             "(same-machine comparisons only)",
    )
    parser.add_argument(
        "--exact-counters",
        action="store_true",
        help="require every baseline counter to match the current value "
             "exactly (byte identity of deterministic sim counters at a "
             "pinned seed)",
    )
    args = parser.parse_args(argv)

    try:
        if os.path.isdir(args.baseline) != os.path.isdir(args.current):
            raise ValueError("baseline and current must both be files or "
                             "both be directories")
        if os.path.isdir(args.baseline):
            pairs = pair_files(args.baseline, args.current)
        else:
            pairs = [(args.baseline, args.current)]
        ok = True
        for base_path, cur_path in pairs:
            ok &= compare_docs(load(base_path), load(cur_path),
                               base_path, cur_path, args.max_regress,
                               args.exact_counters)
    except (OSError, ValueError, json.JSONDecodeError) as err:
        print(f"bench_compare: error: {err}", file=sys.stderr)
        return 2
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
