# Empty dependencies file for bench_acl_groupcreate.
# This may be replaced when dependencies are built.
