file(REMOVE_RECURSE
  "CMakeFiles/bench_acl_groupcreate.dir/bench_acl_groupcreate.cpp.o"
  "CMakeFiles/bench_acl_groupcreate.dir/bench_acl_groupcreate.cpp.o.d"
  "bench_acl_groupcreate"
  "bench_acl_groupcreate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_acl_groupcreate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
