file(REMOVE_RECURSE
  "CMakeFiles/bench_fork.dir/bench_fork.cpp.o"
  "CMakeFiles/bench_fork.dir/bench_fork.cpp.o.d"
  "bench_fork"
  "bench_fork.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fork.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
