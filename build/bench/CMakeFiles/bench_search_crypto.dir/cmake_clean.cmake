file(REMOVE_RECURSE
  "CMakeFiles/bench_search_crypto.dir/bench_search_crypto.cpp.o"
  "CMakeFiles/bench_search_crypto.dir/bench_search_crypto.cpp.o.d"
  "bench_search_crypto"
  "bench_search_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_search_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
