# Empty dependencies file for bench_search_crypto.
# This may be replaced when dependencies are built.
