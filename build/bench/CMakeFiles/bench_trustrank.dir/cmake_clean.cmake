file(REMOVE_RECURSE
  "CMakeFiles/bench_trustrank.dir/bench_trustrank.cpp.o"
  "CMakeFiles/bench_trustrank.dir/bench_trustrank.cpp.o.d"
  "bench_trustrank"
  "bench_trustrank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trustrank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
