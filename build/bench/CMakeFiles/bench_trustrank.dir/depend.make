# Empty dependencies file for bench_trustrank.
# This may be replaced when dependencies are built.
