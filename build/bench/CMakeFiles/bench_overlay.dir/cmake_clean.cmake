file(REMOVE_RECURSE
  "CMakeFiles/bench_overlay.dir/bench_overlay.cpp.o"
  "CMakeFiles/bench_overlay.dir/bench_overlay.cpp.o.d"
  "bench_overlay"
  "bench_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
