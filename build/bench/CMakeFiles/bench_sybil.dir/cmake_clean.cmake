file(REMOVE_RECURSE
  "CMakeFiles/bench_sybil.dir/bench_sybil.cpp.o"
  "CMakeFiles/bench_sybil.dir/bench_sybil.cpp.o.d"
  "bench_sybil"
  "bench_sybil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sybil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
