file(REMOVE_RECURSE
  "CMakeFiles/bench_pad.dir/bench_pad.cpp.o"
  "CMakeFiles/bench_pad.dir/bench_pad.cpp.o.d"
  "bench_pad"
  "bench_pad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
