# Empty dependencies file for bench_pad.
# This may be replaced when dependencies are built.
