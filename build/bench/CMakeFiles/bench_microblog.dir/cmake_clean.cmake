file(REMOVE_RECURSE
  "CMakeFiles/bench_microblog.dir/bench_microblog.cpp.o"
  "CMakeFiles/bench_microblog.dir/bench_microblog.cpp.o.d"
  "bench_microblog"
  "bench_microblog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_microblog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
