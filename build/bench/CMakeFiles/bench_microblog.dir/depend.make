# Empty dependencies file for bench_microblog.
# This may be replaced when dependencies are built.
