file(REMOVE_RECURSE
  "CMakeFiles/bench_acl_membership.dir/bench_acl_membership.cpp.o"
  "CMakeFiles/bench_acl_membership.dir/bench_acl_membership.cpp.o.d"
  "bench_acl_membership"
  "bench_acl_membership.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_acl_membership.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
