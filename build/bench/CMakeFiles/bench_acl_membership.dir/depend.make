# Empty dependencies file for bench_acl_membership.
# This may be replaced when dependencies are built.
