
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_acl_encrypt.cpp" "bench/CMakeFiles/bench_acl_encrypt.dir/bench_acl_encrypt.cpp.o" "gcc" "bench/CMakeFiles/bench_acl_encrypt.dir/bench_acl_encrypt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dosn_privacy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dosn_social.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dosn_abe.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dosn_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dosn_ibbe.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dosn_pkcrypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dosn_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dosn_bignum.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dosn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
