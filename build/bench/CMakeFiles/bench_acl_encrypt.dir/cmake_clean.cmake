file(REMOVE_RECURSE
  "CMakeFiles/bench_acl_encrypt.dir/bench_acl_encrypt.cpp.o"
  "CMakeFiles/bench_acl_encrypt.dir/bench_acl_encrypt.cpp.o.d"
  "bench_acl_encrypt"
  "bench_acl_encrypt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_acl_encrypt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
