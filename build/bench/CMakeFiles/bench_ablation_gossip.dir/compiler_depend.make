# Empty compiler generated dependencies file for bench_ablation_gossip.
# This may be replaced when dependencies are built.
