file(REMOVE_RECURSE
  "CMakeFiles/bench_anonymization.dir/bench_anonymization.cpp.o"
  "CMakeFiles/bench_anonymization.dir/bench_anonymization.cpp.o.d"
  "bench_anonymization"
  "bench_anonymization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_anonymization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
