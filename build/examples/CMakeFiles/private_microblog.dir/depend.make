# Empty dependencies file for private_microblog.
# This may be replaced when dependencies are built.
