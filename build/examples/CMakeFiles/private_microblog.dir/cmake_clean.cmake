file(REMOVE_RECURSE
  "CMakeFiles/private_microblog.dir/private_microblog.cpp.o"
  "CMakeFiles/private_microblog.dir/private_microblog.cpp.o.d"
  "private_microblog"
  "private_microblog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/private_microblog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
