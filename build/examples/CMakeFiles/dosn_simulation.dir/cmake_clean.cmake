file(REMOVE_RECURSE
  "CMakeFiles/dosn_simulation.dir/dosn_simulation.cpp.o"
  "CMakeFiles/dosn_simulation.dir/dosn_simulation.cpp.o.d"
  "dosn_simulation"
  "dosn_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dosn_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
