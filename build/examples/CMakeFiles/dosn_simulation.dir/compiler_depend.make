# Empty compiler generated dependencies file for dosn_simulation.
# This may be replaced when dependencies are built.
