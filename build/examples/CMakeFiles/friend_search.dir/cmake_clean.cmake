file(REMOVE_RECURSE
  "CMakeFiles/friend_search.dir/friend_search.cpp.o"
  "CMakeFiles/friend_search.dir/friend_search.cpp.o.d"
  "friend_search"
  "friend_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/friend_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
