# Empty compiler generated dependencies file for friend_search.
# This may be replaced when dependencies are built.
