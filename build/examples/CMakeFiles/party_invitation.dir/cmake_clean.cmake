file(REMOVE_RECURSE
  "CMakeFiles/party_invitation.dir/party_invitation.cpp.o"
  "CMakeFiles/party_invitation.dir/party_invitation.cpp.o.d"
  "party_invitation"
  "party_invitation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/party_invitation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
