# Empty dependencies file for party_invitation.
# This may be replaced when dependencies are built.
