# Empty compiler generated dependencies file for secure_messaging.
# This may be replaced when dependencies are built.
