file(REMOVE_RECURSE
  "CMakeFiles/secure_messaging.dir/secure_messaging.cpp.o"
  "CMakeFiles/secure_messaging.dir/secure_messaging.cpp.o.d"
  "secure_messaging"
  "secure_messaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_messaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
