file(REMOVE_RECURSE
  "CMakeFiles/dosn_core.dir/dosn/core/node.cpp.o"
  "CMakeFiles/dosn_core.dir/dosn/core/node.cpp.o.d"
  "CMakeFiles/dosn_core.dir/dosn/core/registry.cpp.o"
  "CMakeFiles/dosn_core.dir/dosn/core/registry.cpp.o.d"
  "CMakeFiles/dosn_core.dir/dosn/core/table1.cpp.o"
  "CMakeFiles/dosn_core.dir/dosn/core/table1.cpp.o.d"
  "libdosn_core.a"
  "libdosn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dosn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
