file(REMOVE_RECURSE
  "libdosn_bignum.a"
)
