file(REMOVE_RECURSE
  "CMakeFiles/dosn_bignum.dir/dosn/bignum/biguint.cpp.o"
  "CMakeFiles/dosn_bignum.dir/dosn/bignum/biguint.cpp.o.d"
  "CMakeFiles/dosn_bignum.dir/dosn/bignum/modmath.cpp.o"
  "CMakeFiles/dosn_bignum.dir/dosn/bignum/modmath.cpp.o.d"
  "CMakeFiles/dosn_bignum.dir/dosn/bignum/prime.cpp.o"
  "CMakeFiles/dosn_bignum.dir/dosn/bignum/prime.cpp.o.d"
  "libdosn_bignum.a"
  "libdosn_bignum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dosn_bignum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
