
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dosn/bignum/biguint.cpp" "src/CMakeFiles/dosn_bignum.dir/dosn/bignum/biguint.cpp.o" "gcc" "src/CMakeFiles/dosn_bignum.dir/dosn/bignum/biguint.cpp.o.d"
  "/root/repo/src/dosn/bignum/modmath.cpp" "src/CMakeFiles/dosn_bignum.dir/dosn/bignum/modmath.cpp.o" "gcc" "src/CMakeFiles/dosn_bignum.dir/dosn/bignum/modmath.cpp.o.d"
  "/root/repo/src/dosn/bignum/prime.cpp" "src/CMakeFiles/dosn_bignum.dir/dosn/bignum/prime.cpp.o" "gcc" "src/CMakeFiles/dosn_bignum.dir/dosn/bignum/prime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dosn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
