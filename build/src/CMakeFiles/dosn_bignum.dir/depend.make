# Empty dependencies file for dosn_bignum.
# This may be replaced when dependencies are built.
