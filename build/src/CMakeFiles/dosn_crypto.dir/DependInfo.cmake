
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dosn/crypto/aead.cpp" "src/CMakeFiles/dosn_crypto.dir/dosn/crypto/aead.cpp.o" "gcc" "src/CMakeFiles/dosn_crypto.dir/dosn/crypto/aead.cpp.o.d"
  "/root/repo/src/dosn/crypto/chacha20.cpp" "src/CMakeFiles/dosn_crypto.dir/dosn/crypto/chacha20.cpp.o" "gcc" "src/CMakeFiles/dosn_crypto.dir/dosn/crypto/chacha20.cpp.o.d"
  "/root/repo/src/dosn/crypto/hkdf.cpp" "src/CMakeFiles/dosn_crypto.dir/dosn/crypto/hkdf.cpp.o" "gcc" "src/CMakeFiles/dosn_crypto.dir/dosn/crypto/hkdf.cpp.o.d"
  "/root/repo/src/dosn/crypto/hmac.cpp" "src/CMakeFiles/dosn_crypto.dir/dosn/crypto/hmac.cpp.o" "gcc" "src/CMakeFiles/dosn_crypto.dir/dosn/crypto/hmac.cpp.o.d"
  "/root/repo/src/dosn/crypto/merkle.cpp" "src/CMakeFiles/dosn_crypto.dir/dosn/crypto/merkle.cpp.o" "gcc" "src/CMakeFiles/dosn_crypto.dir/dosn/crypto/merkle.cpp.o.d"
  "/root/repo/src/dosn/crypto/poly1305.cpp" "src/CMakeFiles/dosn_crypto.dir/dosn/crypto/poly1305.cpp.o" "gcc" "src/CMakeFiles/dosn_crypto.dir/dosn/crypto/poly1305.cpp.o.d"
  "/root/repo/src/dosn/crypto/sha256.cpp" "src/CMakeFiles/dosn_crypto.dir/dosn/crypto/sha256.cpp.o" "gcc" "src/CMakeFiles/dosn_crypto.dir/dosn/crypto/sha256.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dosn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
