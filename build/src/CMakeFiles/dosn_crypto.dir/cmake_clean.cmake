file(REMOVE_RECURSE
  "CMakeFiles/dosn_crypto.dir/dosn/crypto/aead.cpp.o"
  "CMakeFiles/dosn_crypto.dir/dosn/crypto/aead.cpp.o.d"
  "CMakeFiles/dosn_crypto.dir/dosn/crypto/chacha20.cpp.o"
  "CMakeFiles/dosn_crypto.dir/dosn/crypto/chacha20.cpp.o.d"
  "CMakeFiles/dosn_crypto.dir/dosn/crypto/hkdf.cpp.o"
  "CMakeFiles/dosn_crypto.dir/dosn/crypto/hkdf.cpp.o.d"
  "CMakeFiles/dosn_crypto.dir/dosn/crypto/hmac.cpp.o"
  "CMakeFiles/dosn_crypto.dir/dosn/crypto/hmac.cpp.o.d"
  "CMakeFiles/dosn_crypto.dir/dosn/crypto/merkle.cpp.o"
  "CMakeFiles/dosn_crypto.dir/dosn/crypto/merkle.cpp.o.d"
  "CMakeFiles/dosn_crypto.dir/dosn/crypto/poly1305.cpp.o"
  "CMakeFiles/dosn_crypto.dir/dosn/crypto/poly1305.cpp.o.d"
  "CMakeFiles/dosn_crypto.dir/dosn/crypto/sha256.cpp.o"
  "CMakeFiles/dosn_crypto.dir/dosn/crypto/sha256.cpp.o.d"
  "libdosn_crypto.a"
  "libdosn_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dosn_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
