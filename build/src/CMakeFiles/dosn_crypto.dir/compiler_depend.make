# Empty compiler generated dependencies file for dosn_crypto.
# This may be replaced when dependencies are built.
