file(REMOVE_RECURSE
  "libdosn_crypto.a"
)
