file(REMOVE_RECURSE
  "CMakeFiles/dosn_social.dir/dosn/social/anonymize.cpp.o"
  "CMakeFiles/dosn_social.dir/dosn/social/anonymize.cpp.o.d"
  "CMakeFiles/dosn_social.dir/dosn/social/content.cpp.o"
  "CMakeFiles/dosn_social.dir/dosn/social/content.cpp.o.d"
  "CMakeFiles/dosn_social.dir/dosn/social/graph.cpp.o"
  "CMakeFiles/dosn_social.dir/dosn/social/graph.cpp.o.d"
  "CMakeFiles/dosn_social.dir/dosn/social/graph_gen.cpp.o"
  "CMakeFiles/dosn_social.dir/dosn/social/graph_gen.cpp.o.d"
  "CMakeFiles/dosn_social.dir/dosn/social/identity.cpp.o"
  "CMakeFiles/dosn_social.dir/dosn/social/identity.cpp.o.d"
  "CMakeFiles/dosn_social.dir/dosn/social/inference.cpp.o"
  "CMakeFiles/dosn_social.dir/dosn/social/inference.cpp.o.d"
  "CMakeFiles/dosn_social.dir/dosn/social/sybil.cpp.o"
  "CMakeFiles/dosn_social.dir/dosn/social/sybil.cpp.o.d"
  "libdosn_social.a"
  "libdosn_social.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dosn_social.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
