file(REMOVE_RECURSE
  "libdosn_social.a"
)
