
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dosn/social/anonymize.cpp" "src/CMakeFiles/dosn_social.dir/dosn/social/anonymize.cpp.o" "gcc" "src/CMakeFiles/dosn_social.dir/dosn/social/anonymize.cpp.o.d"
  "/root/repo/src/dosn/social/content.cpp" "src/CMakeFiles/dosn_social.dir/dosn/social/content.cpp.o" "gcc" "src/CMakeFiles/dosn_social.dir/dosn/social/content.cpp.o.d"
  "/root/repo/src/dosn/social/graph.cpp" "src/CMakeFiles/dosn_social.dir/dosn/social/graph.cpp.o" "gcc" "src/CMakeFiles/dosn_social.dir/dosn/social/graph.cpp.o.d"
  "/root/repo/src/dosn/social/graph_gen.cpp" "src/CMakeFiles/dosn_social.dir/dosn/social/graph_gen.cpp.o" "gcc" "src/CMakeFiles/dosn_social.dir/dosn/social/graph_gen.cpp.o.d"
  "/root/repo/src/dosn/social/identity.cpp" "src/CMakeFiles/dosn_social.dir/dosn/social/identity.cpp.o" "gcc" "src/CMakeFiles/dosn_social.dir/dosn/social/identity.cpp.o.d"
  "/root/repo/src/dosn/social/inference.cpp" "src/CMakeFiles/dosn_social.dir/dosn/social/inference.cpp.o" "gcc" "src/CMakeFiles/dosn_social.dir/dosn/social/inference.cpp.o.d"
  "/root/repo/src/dosn/social/sybil.cpp" "src/CMakeFiles/dosn_social.dir/dosn/social/sybil.cpp.o" "gcc" "src/CMakeFiles/dosn_social.dir/dosn/social/sybil.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dosn_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dosn_pkcrypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dosn_bignum.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dosn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
