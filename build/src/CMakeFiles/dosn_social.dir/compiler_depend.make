# Empty compiler generated dependencies file for dosn_social.
# This may be replaced when dependencies are built.
