# Empty dependencies file for dosn_abe.
# This may be replaced when dependencies are built.
