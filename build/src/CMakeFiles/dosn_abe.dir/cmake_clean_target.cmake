file(REMOVE_RECURSE
  "libdosn_abe.a"
)
