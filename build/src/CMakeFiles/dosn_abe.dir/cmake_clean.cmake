file(REMOVE_RECURSE
  "CMakeFiles/dosn_abe.dir/dosn/abe/cpabe.cpp.o"
  "CMakeFiles/dosn_abe.dir/dosn/abe/cpabe.cpp.o.d"
  "CMakeFiles/dosn_abe.dir/dosn/abe/kpabe.cpp.o"
  "CMakeFiles/dosn_abe.dir/dosn/abe/kpabe.cpp.o.d"
  "libdosn_abe.a"
  "libdosn_abe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dosn_abe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
