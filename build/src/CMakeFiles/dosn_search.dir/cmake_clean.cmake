file(REMOVE_RECURSE
  "CMakeFiles/dosn_search.dir/dosn/search/friend_finder.cpp.o"
  "CMakeFiles/dosn_search.dir/dosn/search/friend_finder.cpp.o.d"
  "CMakeFiles/dosn_search.dir/dosn/search/friend_rings.cpp.o"
  "CMakeFiles/dosn_search.dir/dosn/search/friend_rings.cpp.o.d"
  "CMakeFiles/dosn_search.dir/dosn/search/hummingbird.cpp.o"
  "CMakeFiles/dosn_search.dir/dosn/search/hummingbird.cpp.o.d"
  "CMakeFiles/dosn_search.dir/dosn/search/proxy_alias.cpp.o"
  "CMakeFiles/dosn_search.dir/dosn/search/proxy_alias.cpp.o.d"
  "CMakeFiles/dosn_search.dir/dosn/search/resource_handler.cpp.o"
  "CMakeFiles/dosn_search.dir/dosn/search/resource_handler.cpp.o.d"
  "CMakeFiles/dosn_search.dir/dosn/search/search_index.cpp.o"
  "CMakeFiles/dosn_search.dir/dosn/search/search_index.cpp.o.d"
  "CMakeFiles/dosn_search.dir/dosn/search/topic_subscription.cpp.o"
  "CMakeFiles/dosn_search.dir/dosn/search/topic_subscription.cpp.o.d"
  "CMakeFiles/dosn_search.dir/dosn/search/trust_rank.cpp.o"
  "CMakeFiles/dosn_search.dir/dosn/search/trust_rank.cpp.o.d"
  "CMakeFiles/dosn_search.dir/dosn/search/zkp_access.cpp.o"
  "CMakeFiles/dosn_search.dir/dosn/search/zkp_access.cpp.o.d"
  "libdosn_search.a"
  "libdosn_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dosn_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
