file(REMOVE_RECURSE
  "libdosn_search.a"
)
