
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dosn/search/friend_finder.cpp" "src/CMakeFiles/dosn_search.dir/dosn/search/friend_finder.cpp.o" "gcc" "src/CMakeFiles/dosn_search.dir/dosn/search/friend_finder.cpp.o.d"
  "/root/repo/src/dosn/search/friend_rings.cpp" "src/CMakeFiles/dosn_search.dir/dosn/search/friend_rings.cpp.o" "gcc" "src/CMakeFiles/dosn_search.dir/dosn/search/friend_rings.cpp.o.d"
  "/root/repo/src/dosn/search/hummingbird.cpp" "src/CMakeFiles/dosn_search.dir/dosn/search/hummingbird.cpp.o" "gcc" "src/CMakeFiles/dosn_search.dir/dosn/search/hummingbird.cpp.o.d"
  "/root/repo/src/dosn/search/proxy_alias.cpp" "src/CMakeFiles/dosn_search.dir/dosn/search/proxy_alias.cpp.o" "gcc" "src/CMakeFiles/dosn_search.dir/dosn/search/proxy_alias.cpp.o.d"
  "/root/repo/src/dosn/search/resource_handler.cpp" "src/CMakeFiles/dosn_search.dir/dosn/search/resource_handler.cpp.o" "gcc" "src/CMakeFiles/dosn_search.dir/dosn/search/resource_handler.cpp.o.d"
  "/root/repo/src/dosn/search/search_index.cpp" "src/CMakeFiles/dosn_search.dir/dosn/search/search_index.cpp.o" "gcc" "src/CMakeFiles/dosn_search.dir/dosn/search/search_index.cpp.o.d"
  "/root/repo/src/dosn/search/topic_subscription.cpp" "src/CMakeFiles/dosn_search.dir/dosn/search/topic_subscription.cpp.o" "gcc" "src/CMakeFiles/dosn_search.dir/dosn/search/topic_subscription.cpp.o.d"
  "/root/repo/src/dosn/search/trust_rank.cpp" "src/CMakeFiles/dosn_search.dir/dosn/search/trust_rank.cpp.o" "gcc" "src/CMakeFiles/dosn_search.dir/dosn/search/trust_rank.cpp.o.d"
  "/root/repo/src/dosn/search/zkp_access.cpp" "src/CMakeFiles/dosn_search.dir/dosn/search/zkp_access.cpp.o" "gcc" "src/CMakeFiles/dosn_search.dir/dosn/search/zkp_access.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dosn_privacy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dosn_integrity.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dosn_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dosn_abe.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dosn_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dosn_ibbe.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dosn_social.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dosn_pkcrypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dosn_bignum.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dosn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dosn_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dosn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
