# Empty compiler generated dependencies file for dosn_search.
# This may be replaced when dependencies are built.
