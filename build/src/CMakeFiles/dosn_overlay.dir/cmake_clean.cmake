file(REMOVE_RECURSE
  "CMakeFiles/dosn_overlay.dir/dosn/overlay/federation.cpp.o"
  "CMakeFiles/dosn_overlay.dir/dosn/overlay/federation.cpp.o.d"
  "CMakeFiles/dosn_overlay.dir/dosn/overlay/flooding.cpp.o"
  "CMakeFiles/dosn_overlay.dir/dosn/overlay/flooding.cpp.o.d"
  "CMakeFiles/dosn_overlay.dir/dosn/overlay/gossip.cpp.o"
  "CMakeFiles/dosn_overlay.dir/dosn/overlay/gossip.cpp.o.d"
  "CMakeFiles/dosn_overlay.dir/dosn/overlay/hybrid.cpp.o"
  "CMakeFiles/dosn_overlay.dir/dosn/overlay/hybrid.cpp.o.d"
  "CMakeFiles/dosn_overlay.dir/dosn/overlay/kademlia.cpp.o"
  "CMakeFiles/dosn_overlay.dir/dosn/overlay/kademlia.cpp.o.d"
  "CMakeFiles/dosn_overlay.dir/dosn/overlay/location_tree.cpp.o"
  "CMakeFiles/dosn_overlay.dir/dosn/overlay/location_tree.cpp.o.d"
  "CMakeFiles/dosn_overlay.dir/dosn/overlay/node_id.cpp.o"
  "CMakeFiles/dosn_overlay.dir/dosn/overlay/node_id.cpp.o.d"
  "CMakeFiles/dosn_overlay.dir/dosn/overlay/replication.cpp.o"
  "CMakeFiles/dosn_overlay.dir/dosn/overlay/replication.cpp.o.d"
  "CMakeFiles/dosn_overlay.dir/dosn/overlay/superpeer.cpp.o"
  "CMakeFiles/dosn_overlay.dir/dosn/overlay/superpeer.cpp.o.d"
  "libdosn_overlay.a"
  "libdosn_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dosn_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
