
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dosn/overlay/federation.cpp" "src/CMakeFiles/dosn_overlay.dir/dosn/overlay/federation.cpp.o" "gcc" "src/CMakeFiles/dosn_overlay.dir/dosn/overlay/federation.cpp.o.d"
  "/root/repo/src/dosn/overlay/flooding.cpp" "src/CMakeFiles/dosn_overlay.dir/dosn/overlay/flooding.cpp.o" "gcc" "src/CMakeFiles/dosn_overlay.dir/dosn/overlay/flooding.cpp.o.d"
  "/root/repo/src/dosn/overlay/gossip.cpp" "src/CMakeFiles/dosn_overlay.dir/dosn/overlay/gossip.cpp.o" "gcc" "src/CMakeFiles/dosn_overlay.dir/dosn/overlay/gossip.cpp.o.d"
  "/root/repo/src/dosn/overlay/hybrid.cpp" "src/CMakeFiles/dosn_overlay.dir/dosn/overlay/hybrid.cpp.o" "gcc" "src/CMakeFiles/dosn_overlay.dir/dosn/overlay/hybrid.cpp.o.d"
  "/root/repo/src/dosn/overlay/kademlia.cpp" "src/CMakeFiles/dosn_overlay.dir/dosn/overlay/kademlia.cpp.o" "gcc" "src/CMakeFiles/dosn_overlay.dir/dosn/overlay/kademlia.cpp.o.d"
  "/root/repo/src/dosn/overlay/location_tree.cpp" "src/CMakeFiles/dosn_overlay.dir/dosn/overlay/location_tree.cpp.o" "gcc" "src/CMakeFiles/dosn_overlay.dir/dosn/overlay/location_tree.cpp.o.d"
  "/root/repo/src/dosn/overlay/node_id.cpp" "src/CMakeFiles/dosn_overlay.dir/dosn/overlay/node_id.cpp.o" "gcc" "src/CMakeFiles/dosn_overlay.dir/dosn/overlay/node_id.cpp.o.d"
  "/root/repo/src/dosn/overlay/replication.cpp" "src/CMakeFiles/dosn_overlay.dir/dosn/overlay/replication.cpp.o" "gcc" "src/CMakeFiles/dosn_overlay.dir/dosn/overlay/replication.cpp.o.d"
  "/root/repo/src/dosn/overlay/superpeer.cpp" "src/CMakeFiles/dosn_overlay.dir/dosn/overlay/superpeer.cpp.o" "gcc" "src/CMakeFiles/dosn_overlay.dir/dosn/overlay/superpeer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dosn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dosn_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dosn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
