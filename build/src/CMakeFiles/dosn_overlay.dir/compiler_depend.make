# Empty compiler generated dependencies file for dosn_overlay.
# This may be replaced when dependencies are built.
