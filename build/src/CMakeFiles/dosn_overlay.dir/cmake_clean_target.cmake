file(REMOVE_RECURSE
  "libdosn_overlay.a"
)
