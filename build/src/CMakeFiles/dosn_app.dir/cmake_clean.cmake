file(REMOVE_RECURSE
  "CMakeFiles/dosn_app.dir/dosn/app/microblog.cpp.o"
  "CMakeFiles/dosn_app.dir/dosn/app/microblog.cpp.o.d"
  "libdosn_app.a"
  "libdosn_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dosn_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
