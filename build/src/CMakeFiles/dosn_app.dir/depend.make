# Empty dependencies file for dosn_app.
# This may be replaced when dependencies are built.
