file(REMOVE_RECURSE
  "libdosn_app.a"
)
