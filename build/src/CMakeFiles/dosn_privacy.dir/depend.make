# Empty dependencies file for dosn_privacy.
# This may be replaced when dependencies are built.
