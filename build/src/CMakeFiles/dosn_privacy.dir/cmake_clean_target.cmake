file(REMOVE_RECURSE
  "libdosn_privacy.a"
)
