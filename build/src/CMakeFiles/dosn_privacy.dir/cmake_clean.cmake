file(REMOVE_RECURSE
  "CMakeFiles/dosn_privacy.dir/dosn/privacy/abe_acl.cpp.o"
  "CMakeFiles/dosn_privacy.dir/dosn/privacy/abe_acl.cpp.o.d"
  "CMakeFiles/dosn_privacy.dir/dosn/privacy/access_controller.cpp.o"
  "CMakeFiles/dosn_privacy.dir/dosn/privacy/access_controller.cpp.o.d"
  "CMakeFiles/dosn_privacy.dir/dosn/privacy/app_capability.cpp.o"
  "CMakeFiles/dosn_privacy.dir/dosn/privacy/app_capability.cpp.o.d"
  "CMakeFiles/dosn_privacy.dir/dosn/privacy/direct_message.cpp.o"
  "CMakeFiles/dosn_privacy.dir/dosn/privacy/direct_message.cpp.o.d"
  "CMakeFiles/dosn_privacy.dir/dosn/privacy/hybrid_acl.cpp.o"
  "CMakeFiles/dosn_privacy.dir/dosn/privacy/hybrid_acl.cpp.o.d"
  "CMakeFiles/dosn_privacy.dir/dosn/privacy/ibbe_acl.cpp.o"
  "CMakeFiles/dosn_privacy.dir/dosn/privacy/ibbe_acl.cpp.o.d"
  "CMakeFiles/dosn_privacy.dir/dosn/privacy/pad.cpp.o"
  "CMakeFiles/dosn_privacy.dir/dosn/privacy/pad.cpp.o.d"
  "CMakeFiles/dosn_privacy.dir/dosn/privacy/pad_membership.cpp.o"
  "CMakeFiles/dosn_privacy.dir/dosn/privacy/pad_membership.cpp.o.d"
  "CMakeFiles/dosn_privacy.dir/dosn/privacy/publickey_acl.cpp.o"
  "CMakeFiles/dosn_privacy.dir/dosn/privacy/publickey_acl.cpp.o.d"
  "CMakeFiles/dosn_privacy.dir/dosn/privacy/substitution.cpp.o"
  "CMakeFiles/dosn_privacy.dir/dosn/privacy/substitution.cpp.o.d"
  "CMakeFiles/dosn_privacy.dir/dosn/privacy/symmetric_acl.cpp.o"
  "CMakeFiles/dosn_privacy.dir/dosn/privacy/symmetric_acl.cpp.o.d"
  "libdosn_privacy.a"
  "libdosn_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dosn_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
