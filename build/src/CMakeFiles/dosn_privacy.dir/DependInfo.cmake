
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dosn/privacy/abe_acl.cpp" "src/CMakeFiles/dosn_privacy.dir/dosn/privacy/abe_acl.cpp.o" "gcc" "src/CMakeFiles/dosn_privacy.dir/dosn/privacy/abe_acl.cpp.o.d"
  "/root/repo/src/dosn/privacy/access_controller.cpp" "src/CMakeFiles/dosn_privacy.dir/dosn/privacy/access_controller.cpp.o" "gcc" "src/CMakeFiles/dosn_privacy.dir/dosn/privacy/access_controller.cpp.o.d"
  "/root/repo/src/dosn/privacy/app_capability.cpp" "src/CMakeFiles/dosn_privacy.dir/dosn/privacy/app_capability.cpp.o" "gcc" "src/CMakeFiles/dosn_privacy.dir/dosn/privacy/app_capability.cpp.o.d"
  "/root/repo/src/dosn/privacy/direct_message.cpp" "src/CMakeFiles/dosn_privacy.dir/dosn/privacy/direct_message.cpp.o" "gcc" "src/CMakeFiles/dosn_privacy.dir/dosn/privacy/direct_message.cpp.o.d"
  "/root/repo/src/dosn/privacy/hybrid_acl.cpp" "src/CMakeFiles/dosn_privacy.dir/dosn/privacy/hybrid_acl.cpp.o" "gcc" "src/CMakeFiles/dosn_privacy.dir/dosn/privacy/hybrid_acl.cpp.o.d"
  "/root/repo/src/dosn/privacy/ibbe_acl.cpp" "src/CMakeFiles/dosn_privacy.dir/dosn/privacy/ibbe_acl.cpp.o" "gcc" "src/CMakeFiles/dosn_privacy.dir/dosn/privacy/ibbe_acl.cpp.o.d"
  "/root/repo/src/dosn/privacy/pad.cpp" "src/CMakeFiles/dosn_privacy.dir/dosn/privacy/pad.cpp.o" "gcc" "src/CMakeFiles/dosn_privacy.dir/dosn/privacy/pad.cpp.o.d"
  "/root/repo/src/dosn/privacy/pad_membership.cpp" "src/CMakeFiles/dosn_privacy.dir/dosn/privacy/pad_membership.cpp.o" "gcc" "src/CMakeFiles/dosn_privacy.dir/dosn/privacy/pad_membership.cpp.o.d"
  "/root/repo/src/dosn/privacy/publickey_acl.cpp" "src/CMakeFiles/dosn_privacy.dir/dosn/privacy/publickey_acl.cpp.o" "gcc" "src/CMakeFiles/dosn_privacy.dir/dosn/privacy/publickey_acl.cpp.o.d"
  "/root/repo/src/dosn/privacy/substitution.cpp" "src/CMakeFiles/dosn_privacy.dir/dosn/privacy/substitution.cpp.o" "gcc" "src/CMakeFiles/dosn_privacy.dir/dosn/privacy/substitution.cpp.o.d"
  "/root/repo/src/dosn/privacy/symmetric_acl.cpp" "src/CMakeFiles/dosn_privacy.dir/dosn/privacy/symmetric_acl.cpp.o" "gcc" "src/CMakeFiles/dosn_privacy.dir/dosn/privacy/symmetric_acl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dosn_social.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dosn_abe.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dosn_ibbe.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dosn_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dosn_pkcrypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dosn_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dosn_bignum.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dosn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
