# Empty dependencies file for dosn_pkcrypto.
# This may be replaced when dependencies are built.
