
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dosn/pkcrypto/blind_rsa.cpp" "src/CMakeFiles/dosn_pkcrypto.dir/dosn/pkcrypto/blind_rsa.cpp.o" "gcc" "src/CMakeFiles/dosn_pkcrypto.dir/dosn/pkcrypto/blind_rsa.cpp.o.d"
  "/root/repo/src/dosn/pkcrypto/dh.cpp" "src/CMakeFiles/dosn_pkcrypto.dir/dosn/pkcrypto/dh.cpp.o" "gcc" "src/CMakeFiles/dosn_pkcrypto.dir/dosn/pkcrypto/dh.cpp.o.d"
  "/root/repo/src/dosn/pkcrypto/elgamal.cpp" "src/CMakeFiles/dosn_pkcrypto.dir/dosn/pkcrypto/elgamal.cpp.o" "gcc" "src/CMakeFiles/dosn_pkcrypto.dir/dosn/pkcrypto/elgamal.cpp.o.d"
  "/root/repo/src/dosn/pkcrypto/group.cpp" "src/CMakeFiles/dosn_pkcrypto.dir/dosn/pkcrypto/group.cpp.o" "gcc" "src/CMakeFiles/dosn_pkcrypto.dir/dosn/pkcrypto/group.cpp.o.d"
  "/root/repo/src/dosn/pkcrypto/oprf.cpp" "src/CMakeFiles/dosn_pkcrypto.dir/dosn/pkcrypto/oprf.cpp.o" "gcc" "src/CMakeFiles/dosn_pkcrypto.dir/dosn/pkcrypto/oprf.cpp.o.d"
  "/root/repo/src/dosn/pkcrypto/rsa.cpp" "src/CMakeFiles/dosn_pkcrypto.dir/dosn/pkcrypto/rsa.cpp.o" "gcc" "src/CMakeFiles/dosn_pkcrypto.dir/dosn/pkcrypto/rsa.cpp.o.d"
  "/root/repo/src/dosn/pkcrypto/schnorr.cpp" "src/CMakeFiles/dosn_pkcrypto.dir/dosn/pkcrypto/schnorr.cpp.o" "gcc" "src/CMakeFiles/dosn_pkcrypto.dir/dosn/pkcrypto/schnorr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dosn_bignum.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dosn_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dosn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
