file(REMOVE_RECURSE
  "CMakeFiles/dosn_pkcrypto.dir/dosn/pkcrypto/blind_rsa.cpp.o"
  "CMakeFiles/dosn_pkcrypto.dir/dosn/pkcrypto/blind_rsa.cpp.o.d"
  "CMakeFiles/dosn_pkcrypto.dir/dosn/pkcrypto/dh.cpp.o"
  "CMakeFiles/dosn_pkcrypto.dir/dosn/pkcrypto/dh.cpp.o.d"
  "CMakeFiles/dosn_pkcrypto.dir/dosn/pkcrypto/elgamal.cpp.o"
  "CMakeFiles/dosn_pkcrypto.dir/dosn/pkcrypto/elgamal.cpp.o.d"
  "CMakeFiles/dosn_pkcrypto.dir/dosn/pkcrypto/group.cpp.o"
  "CMakeFiles/dosn_pkcrypto.dir/dosn/pkcrypto/group.cpp.o.d"
  "CMakeFiles/dosn_pkcrypto.dir/dosn/pkcrypto/oprf.cpp.o"
  "CMakeFiles/dosn_pkcrypto.dir/dosn/pkcrypto/oprf.cpp.o.d"
  "CMakeFiles/dosn_pkcrypto.dir/dosn/pkcrypto/rsa.cpp.o"
  "CMakeFiles/dosn_pkcrypto.dir/dosn/pkcrypto/rsa.cpp.o.d"
  "CMakeFiles/dosn_pkcrypto.dir/dosn/pkcrypto/schnorr.cpp.o"
  "CMakeFiles/dosn_pkcrypto.dir/dosn/pkcrypto/schnorr.cpp.o.d"
  "libdosn_pkcrypto.a"
  "libdosn_pkcrypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dosn_pkcrypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
