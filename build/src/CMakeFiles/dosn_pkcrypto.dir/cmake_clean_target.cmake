file(REMOVE_RECURSE
  "libdosn_pkcrypto.a"
)
