
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dosn/integrity/entanglement.cpp" "src/CMakeFiles/dosn_integrity.dir/dosn/integrity/entanglement.cpp.o" "gcc" "src/CMakeFiles/dosn_integrity.dir/dosn/integrity/entanglement.cpp.o.d"
  "/root/repo/src/dosn/integrity/fork_consistency.cpp" "src/CMakeFiles/dosn_integrity.dir/dosn/integrity/fork_consistency.cpp.o" "gcc" "src/CMakeFiles/dosn_integrity.dir/dosn/integrity/fork_consistency.cpp.o.d"
  "/root/repo/src/dosn/integrity/hash_chain.cpp" "src/CMakeFiles/dosn_integrity.dir/dosn/integrity/hash_chain.cpp.o" "gcc" "src/CMakeFiles/dosn_integrity.dir/dosn/integrity/hash_chain.cpp.o.d"
  "/root/repo/src/dosn/integrity/history_tree.cpp" "src/CMakeFiles/dosn_integrity.dir/dosn/integrity/history_tree.cpp.o" "gcc" "src/CMakeFiles/dosn_integrity.dir/dosn/integrity/history_tree.cpp.o.d"
  "/root/repo/src/dosn/integrity/relation.cpp" "src/CMakeFiles/dosn_integrity.dir/dosn/integrity/relation.cpp.o" "gcc" "src/CMakeFiles/dosn_integrity.dir/dosn/integrity/relation.cpp.o.d"
  "/root/repo/src/dosn/integrity/signed_post.cpp" "src/CMakeFiles/dosn_integrity.dir/dosn/integrity/signed_post.cpp.o" "gcc" "src/CMakeFiles/dosn_integrity.dir/dosn/integrity/signed_post.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dosn_social.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dosn_pkcrypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dosn_bignum.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dosn_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dosn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
