file(REMOVE_RECURSE
  "libdosn_integrity.a"
)
