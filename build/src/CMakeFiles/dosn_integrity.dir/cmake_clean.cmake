file(REMOVE_RECURSE
  "CMakeFiles/dosn_integrity.dir/dosn/integrity/entanglement.cpp.o"
  "CMakeFiles/dosn_integrity.dir/dosn/integrity/entanglement.cpp.o.d"
  "CMakeFiles/dosn_integrity.dir/dosn/integrity/fork_consistency.cpp.o"
  "CMakeFiles/dosn_integrity.dir/dosn/integrity/fork_consistency.cpp.o.d"
  "CMakeFiles/dosn_integrity.dir/dosn/integrity/hash_chain.cpp.o"
  "CMakeFiles/dosn_integrity.dir/dosn/integrity/hash_chain.cpp.o.d"
  "CMakeFiles/dosn_integrity.dir/dosn/integrity/history_tree.cpp.o"
  "CMakeFiles/dosn_integrity.dir/dosn/integrity/history_tree.cpp.o.d"
  "CMakeFiles/dosn_integrity.dir/dosn/integrity/relation.cpp.o"
  "CMakeFiles/dosn_integrity.dir/dosn/integrity/relation.cpp.o.d"
  "CMakeFiles/dosn_integrity.dir/dosn/integrity/signed_post.cpp.o"
  "CMakeFiles/dosn_integrity.dir/dosn/integrity/signed_post.cpp.o.d"
  "libdosn_integrity.a"
  "libdosn_integrity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dosn_integrity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
