# Empty dependencies file for dosn_integrity.
# This may be replaced when dependencies are built.
