
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dosn/policy/field.cpp" "src/CMakeFiles/dosn_policy.dir/dosn/policy/field.cpp.o" "gcc" "src/CMakeFiles/dosn_policy.dir/dosn/policy/field.cpp.o.d"
  "/root/repo/src/dosn/policy/policy.cpp" "src/CMakeFiles/dosn_policy.dir/dosn/policy/policy.cpp.o" "gcc" "src/CMakeFiles/dosn_policy.dir/dosn/policy/policy.cpp.o.d"
  "/root/repo/src/dosn/policy/shamir.cpp" "src/CMakeFiles/dosn_policy.dir/dosn/policy/shamir.cpp.o" "gcc" "src/CMakeFiles/dosn_policy.dir/dosn/policy/shamir.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dosn_bignum.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dosn_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dosn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
