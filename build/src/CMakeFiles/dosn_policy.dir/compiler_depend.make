# Empty compiler generated dependencies file for dosn_policy.
# This may be replaced when dependencies are built.
