file(REMOVE_RECURSE
  "libdosn_policy.a"
)
