file(REMOVE_RECURSE
  "CMakeFiles/dosn_policy.dir/dosn/policy/field.cpp.o"
  "CMakeFiles/dosn_policy.dir/dosn/policy/field.cpp.o.d"
  "CMakeFiles/dosn_policy.dir/dosn/policy/policy.cpp.o"
  "CMakeFiles/dosn_policy.dir/dosn/policy/policy.cpp.o.d"
  "CMakeFiles/dosn_policy.dir/dosn/policy/shamir.cpp.o"
  "CMakeFiles/dosn_policy.dir/dosn/policy/shamir.cpp.o.d"
  "libdosn_policy.a"
  "libdosn_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dosn_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
