file(REMOVE_RECURSE
  "CMakeFiles/dosn_sim.dir/dosn/sim/churn.cpp.o"
  "CMakeFiles/dosn_sim.dir/dosn/sim/churn.cpp.o.d"
  "CMakeFiles/dosn_sim.dir/dosn/sim/metrics.cpp.o"
  "CMakeFiles/dosn_sim.dir/dosn/sim/metrics.cpp.o.d"
  "CMakeFiles/dosn_sim.dir/dosn/sim/network.cpp.o"
  "CMakeFiles/dosn_sim.dir/dosn/sim/network.cpp.o.d"
  "CMakeFiles/dosn_sim.dir/dosn/sim/simulator.cpp.o"
  "CMakeFiles/dosn_sim.dir/dosn/sim/simulator.cpp.o.d"
  "libdosn_sim.a"
  "libdosn_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dosn_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
