
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dosn/util/bytes.cpp" "src/CMakeFiles/dosn_util.dir/dosn/util/bytes.cpp.o" "gcc" "src/CMakeFiles/dosn_util.dir/dosn/util/bytes.cpp.o.d"
  "/root/repo/src/dosn/util/codec.cpp" "src/CMakeFiles/dosn_util.dir/dosn/util/codec.cpp.o" "gcc" "src/CMakeFiles/dosn_util.dir/dosn/util/codec.cpp.o.d"
  "/root/repo/src/dosn/util/rng.cpp" "src/CMakeFiles/dosn_util.dir/dosn/util/rng.cpp.o" "gcc" "src/CMakeFiles/dosn_util.dir/dosn/util/rng.cpp.o.d"
  "/root/repo/src/dosn/util/strings.cpp" "src/CMakeFiles/dosn_util.dir/dosn/util/strings.cpp.o" "gcc" "src/CMakeFiles/dosn_util.dir/dosn/util/strings.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
