file(REMOVE_RECURSE
  "CMakeFiles/dosn_util.dir/dosn/util/bytes.cpp.o"
  "CMakeFiles/dosn_util.dir/dosn/util/bytes.cpp.o.d"
  "CMakeFiles/dosn_util.dir/dosn/util/codec.cpp.o"
  "CMakeFiles/dosn_util.dir/dosn/util/codec.cpp.o.d"
  "CMakeFiles/dosn_util.dir/dosn/util/rng.cpp.o"
  "CMakeFiles/dosn_util.dir/dosn/util/rng.cpp.o.d"
  "CMakeFiles/dosn_util.dir/dosn/util/strings.cpp.o"
  "CMakeFiles/dosn_util.dir/dosn/util/strings.cpp.o.d"
  "libdosn_util.a"
  "libdosn_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dosn_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
