# Empty compiler generated dependencies file for dosn_ibbe.
# This may be replaced when dependencies are built.
