file(REMOVE_RECURSE
  "libdosn_ibbe.a"
)
