file(REMOVE_RECURSE
  "CMakeFiles/dosn_ibbe.dir/dosn/ibbe/ibbe.cpp.o"
  "CMakeFiles/dosn_ibbe.dir/dosn/ibbe/ibbe.cpp.o.d"
  "libdosn_ibbe.a"
  "libdosn_ibbe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dosn_ibbe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
