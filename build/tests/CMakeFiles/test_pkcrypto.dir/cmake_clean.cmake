file(REMOVE_RECURSE
  "CMakeFiles/test_pkcrypto.dir/test_pkcrypto.cpp.o"
  "CMakeFiles/test_pkcrypto.dir/test_pkcrypto.cpp.o.d"
  "test_pkcrypto"
  "test_pkcrypto.pdb"
  "test_pkcrypto[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pkcrypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
