# Empty compiler generated dependencies file for test_pkcrypto.
# This may be replaced when dependencies are built.
