# Empty dependencies file for test_social.
# This may be replaced when dependencies are built.
