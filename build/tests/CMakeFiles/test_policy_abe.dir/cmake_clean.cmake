file(REMOVE_RECURSE
  "CMakeFiles/test_policy_abe.dir/test_policy_abe.cpp.o"
  "CMakeFiles/test_policy_abe.dir/test_policy_abe.cpp.o.d"
  "test_policy_abe"
  "test_policy_abe.pdb"
  "test_policy_abe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_policy_abe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
