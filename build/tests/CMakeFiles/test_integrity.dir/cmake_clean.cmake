file(REMOVE_RECURSE
  "CMakeFiles/test_integrity.dir/test_integrity.cpp.o"
  "CMakeFiles/test_integrity.dir/test_integrity.cpp.o.d"
  "test_integrity"
  "test_integrity.pdb"
  "test_integrity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integrity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
