
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_integrity.cpp" "tests/CMakeFiles/test_integrity.dir/test_integrity.cpp.o" "gcc" "tests/CMakeFiles/test_integrity.dir/test_integrity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dosn_integrity.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dosn_social.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dosn_pkcrypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dosn_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dosn_bignum.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dosn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
