# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_crypto[1]_include.cmake")
include("/root/repo/build/tests/test_bignum[1]_include.cmake")
include("/root/repo/build/tests/test_pkcrypto[1]_include.cmake")
include("/root/repo/build/tests/test_policy_abe[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_overlay[1]_include.cmake")
include("/root/repo/build/tests/test_social[1]_include.cmake")
include("/root/repo/build/tests/test_privacy[1]_include.cmake")
include("/root/repo/build/tests/test_integrity[1]_include.cmake")
include("/root/repo/build/tests/test_search[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_app[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_messaging[1]_include.cmake")
