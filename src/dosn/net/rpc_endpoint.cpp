#include "dosn/net/rpc_endpoint.hpp"

#include <utility>

#include "dosn/sim/metrics.hpp"
#include "dosn/util/codec.hpp"
#include "dosn/util/error.hpp"

namespace dosn::net {

RpcEndpoint::RpcEndpoint(sim::Network& network, std::string statsPrefix)
    : network_(network),
      statsPrefix_(std::move(statsPrefix)),
      addr_(network.addNode()),
      state_(std::make_shared<State>()) {
  network_.setHandler(addr_, [this](sim::NodeAddr from, const sim::Message& msg) {
    handleMessage(from, msg);
  });
}

RpcEndpoint::~RpcEndpoint() {
  // Unhook from the network so in-flight deliveries to this address are
  // counted as offline drops instead of invoking a dangling handler. Timeout
  // closures hold a weak_ptr to state_ and expire with it.
  network_.setHandler(addr_, nullptr);
}

void RpcEndpoint::onRequest(const std::string& type, RequestHandler handler) {
  requestHandlers_[type] = std::move(handler);
}

void RpcEndpoint::onMessage(const std::string& type, MessageHandler handler) {
  messageHandlers_[type] = std::move(handler);
}

void RpcEndpoint::addReplyChannel(const std::string& type) {
  replyChannels_.insert(type);
}

void RpcEndpoint::setReplyObserver(const std::string& type,
                                   ReplyObserver observer) {
  replyObservers_[type] = std::move(observer);
}

void RpcEndpoint::bump(const std::string& type, const char* event) {
  if (auto* m = network_.metrics()) {
    m->increment("rpc." + type + "." + event);
  }
}

void RpcEndpoint::observeOutcome(bool timedOut) {
  if (adaptive_) adaptive_->observeAttempt(timedOut);
}

RpcId RpcEndpoint::call(sim::NodeAddr to, const std::string& type,
                        util::BytesView body, const CallOptions& options,
                        ReplyCallback onReply) {
  const RpcId id =
      (static_cast<RpcId>(addr_) << 32) | static_cast<RpcId>(nextCallId_++);
  util::Writer w;
  w.u64(id);
  w.raw(body);

  PendingCall pending;
  pending.type = type;
  pending.onReply = std::move(onReply);
  pending.startedAt = network_.simulator().now();
  state_->pending.emplace(id, std::move(pending));

  const RetryPolicy retry = adaptive_ ? adaptive_->current() : options.retry;
  transmit(to, type, w.take(), id, 1, options.timeout, retry);
  return id;
}

void RpcEndpoint::transmit(sim::NodeAddr to, const std::string& type,
                           const util::Bytes& frame, RpcId id,
                           std::size_t attempt, sim::SimTime timeout,
                           const RetryPolicy& retry) {
  bump(type, "sent");
  try {
    network_.send(addr_, to, sim::Message{type, frame});
  } catch (const util::NetError&) {
    // Unroutable address (e.g. a contact learned from a corrupted reply):
    // treat like a black hole and let the timeout/retry path run its course.
  }
  std::weak_ptr<State> weak = state_;
  network_.simulator().schedule(
      timeout, [this, weak, to, type, frame, id, attempt, timeout, retry] {
        const auto state = weak.lock();
        if (!state) return;  // endpoint destroyed
        const auto it = state->pending.find(id);
        if (it == state->pending.end()) return;  // answered in time
        bump(type, "timeouts");
        observeOutcome(true);
        if (attempt < retry.attempts) {
          ++state->retries;
          bump(type, "retries");
          if (auto* m = network_.metrics()) m->increment(statsPrefix_ + ".retry");
          network_.simulator().schedule(
              retry.backoff(attempt),
              [this, weak, to, type, frame, id, attempt, timeout, retry] {
                const auto s = weak.lock();
                if (!s) return;
                if (!s->pending.count(id)) return;  // answered during backoff
                transmit(to, type, frame, id, attempt + 1, timeout, retry);
              });
          return;
        }
        ++state->failures;
        bump(type, "failed");
        if (auto* m = network_.metrics()) m->increment(statsPrefix_ + ".fail");
        auto callback = std::move(it->second.onReply);
        state->pending.erase(it);
        if (callback) callback(false, {});
      });
}

RpcId RpcEndpoint::openCall(const std::string& opType, sim::SimTime timeout,
                            util::Bytes tag, ReplyCallback onReply) {
  const RpcId id =
      (static_cast<RpcId>(addr_) << 32) | static_cast<RpcId>(nextCallId_++);
  PendingCall pending;
  pending.type = opType;
  pending.onReply = std::move(onReply);
  pending.startedAt = network_.simulator().now();
  pending.tag = std::move(tag);
  state_->pending.emplace(id, std::move(pending));
  bump(opType, "sent");

  std::weak_ptr<State> weak = state_;
  network_.simulator().schedule(timeout, [this, weak, opType, id] {
    const auto state = weak.lock();
    if (!state) return;
    const auto it = state->pending.find(id);
    if (it == state->pending.end()) return;  // completed in time
    bump(opType, "timeouts");
    ++state->failures;
    bump(opType, "failed");
    if (auto* m = network_.metrics()) m->increment(statsPrefix_ + ".fail");
    auto callback = std::move(it->second.onReply);
    state->pending.erase(it);
    if (callback) callback(false, {});
  });
  return id;
}

bool RpcEndpoint::complete(RpcId id, util::BytesView payload) {
  if (!state_->pending.count(id)) return false;
  finish(id, true, payload);
  return true;
}

bool RpcEndpoint::isPending(RpcId id) const {
  return state_->pending.count(id) > 0;
}

const util::Bytes* RpcEndpoint::tag(RpcId id) const {
  const auto it = state_->pending.find(id);
  if (it == state_->pending.end()) return nullptr;
  return &it->second.tag;
}

void RpcEndpoint::finish(RpcId id, bool ok, util::BytesView payload) {
  const auto it = state_->pending.find(id);
  if (it == state_->pending.end()) return;
  const std::string type = it->second.type;
  if (ok) {
    bump(type, "completed");
    if (auto* m = network_.metrics()) {
      const double rttMs =
          static_cast<double>(network_.simulator().now() - it->second.startedAt) /
          static_cast<double>(sim::kMillisecond);
      m->histogram("rpc." + type + ".rtt_ms").record(rttMs);
    }
    observeOutcome(false);
  }
  auto callback = std::move(it->second.onReply);
  state_->pending.erase(it);
  if (callback) callback(ok, payload);
}

void RpcEndpoint::reply(sim::NodeAddr to, const std::string& replyType,
                        RpcId rpcId, util::BytesView body) {
  util::Writer w;
  w.u64(rpcId);
  w.raw(body);
  network_.send(addr_, to, sim::Message{replyType, w.take()});
}

void RpcEndpoint::send(sim::NodeAddr to, const std::string& type,
                       util::Bytes payload) {
  network_.send(addr_, to, sim::Message{type, std::move(payload)});
}

void RpcEndpoint::handleReply(sim::NodeAddr from, const sim::Message& msg) {
  RpcId id = 0;
  try {
    util::Reader r(msg.payload);
    id = r.u64();
  } catch (const util::CodecError&) {
    return;  // frame too short to carry an rpcId
  }
  const util::BytesView body = util::BytesView(msg.payload).subspan(8);
  const auto observer = replyObservers_.find(msg.type);
  if (observer != replyObservers_.end()) {
    try {
      observer->second(from, body);
    } catch (const util::DosnError&) {
      // The observer doubles as a frame validator: a corrupted reply is
      // dropped and the call stays pending for a retry or the timeout.
      return;
    }
  }
  if (!state_->pending.count(id)) {
    if (auto* m = network_.metrics()) m->increment(statsPrefix_ + ".orphan");
    return;  // timed out already, or a fault-duplicated reply
  }
  finish(id, true, body);
}

void RpcEndpoint::handleMessage(sim::NodeAddr from, const sim::Message& msg) {
  if (replyChannels_.count(msg.type)) {
    handleReply(from, msg);
    return;
  }
  const auto request = requestHandlers_.find(msg.type);
  if (request != requestHandlers_.end()) {
    try {
      util::Reader r(msg.payload);
      const RpcId id = r.u64();
      request->second(from, util::BytesView(msg.payload).subspan(8), id);
    } catch (const util::DosnError&) {
      // Malformed payload or unroutable wire-derived address: drop.
    }
    return;
  }
  const auto handler = messageHandlers_.find(msg.type);
  if (handler != messageHandlers_.end()) {
    try {
      handler->second(from, msg.payload);
    } catch (const util::DosnError&) {
      // Malformed payload or unroutable wire-derived address: drop.
    }
  }
  // Unknown type: ignore (matches the old per-overlay handlers).
}

}  // namespace dosn::net
