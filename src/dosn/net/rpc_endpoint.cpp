#include "dosn/net/rpc_endpoint.hpp"

#include <algorithm>
#include <utility>

#include "dosn/sim/metrics.hpp"
#include "dosn/util/codec.hpp"
#include "dosn/util/error.hpp"

namespace dosn::net {

namespace {

template <class Table>
auto* findByType(Table& table, sim::MessageTypeId id) {
  for (auto& [key, handler] : table) {
    if (key == id) return &handler;
  }
  using Handler = std::remove_reference_t<decltype(table.front().second)>;
  return static_cast<Handler*>(nullptr);
}

}  // namespace

RpcEndpoint::RpcEndpoint(sim::Network& network, std::string statsPrefix)
    : network_(network),
      statsPrefix_(std::move(statsPrefix)),
      statsRetry_(statsPrefix_ + ".retry"),
      statsFail_(statsPrefix_ + ".fail"),
      statsOrphan_(statsPrefix_ + ".orphan"),
      addr_(network.addNode()),
      state_(std::make_shared<State>()) {
  network_.setHandler(addr_, [this](sim::NodeAddr from, const sim::Message& msg) {
    handleMessage(from, msg);
  });
  // Authoritative churn notice: a departed peer's RTT estimate and retry
  // budget describe a node that no longer exists — evict rather than let a
  // rejoining peer (or LRU pressure) inherit stale state.
  statusToken_ = network_.addStatusObserver(
      [this](sim::NodeAddr node, bool online) {
        if (!online && node != addr_) peers_.erase(node);
      });
}

RpcEndpoint::~RpcEndpoint() {
  // Unhook from the network so in-flight deliveries to this address are
  // counted as offline drops instead of invoking a dangling handler. Timeout
  // closures hold a weak_ptr to state_ and expire with it.
  network_.setHandler(addr_, nullptr);
  network_.removeStatusObserver(statusToken_);
}

void RpcEndpoint::onRequest(sim::MessageType type, RequestHandler handler) {
  if (auto* existing = findByType(requestHandlers_, type.id())) {
    *existing = std::move(handler);
    return;
  }
  requestHandlers_.emplace_back(type.id(), std::move(handler));
}

void RpcEndpoint::onMessage(sim::MessageType type, MessageHandler handler) {
  if (auto* existing = findByType(messageHandlers_, type.id())) {
    *existing = std::move(handler);
    return;
  }
  messageHandlers_.emplace_back(type.id(), std::move(handler));
}

void RpcEndpoint::addReplyChannel(sim::MessageType type) {
  if (std::find(replyChannels_.begin(), replyChannels_.end(), type.id()) ==
      replyChannels_.end()) {
    replyChannels_.push_back(type.id());
  }
}

void RpcEndpoint::setReplyObserver(sim::MessageType type,
                                   ReplyObserver observer) {
  if (auto* existing = findByType(replyObservers_, type.id())) {
    *existing = std::move(observer);
    return;
  }
  replyObservers_.emplace_back(type.id(), std::move(observer));
}

RpcEndpoint::TypeMetricNames& RpcEndpoint::metricNames(sim::MessageType type) {
  const std::size_t id = type.id();
  if (id >= typeMetricNames_.size()) typeMetricNames_.resize(id + 1);
  auto& slot = typeMetricNames_[id];
  if (!slot) {
    slot = std::make_unique<TypeMetricNames>();
    const std::string& t = type.name();
    slot->sent = "rpc." + t + ".sent";
    slot->retries = "rpc." + t + ".retries";
    slot->timeouts = "rpc." + t + ".timeouts";
    slot->completed = "rpc." + t + ".completed";
    slot->failed = "rpc." + t + ".failed";
    slot->spuriousTimeouts = "rpc." + t + ".spurious_timeouts";
    slot->rttMs = "rpc." + t + ".rtt_ms";
    slot->rttSamples = "rpc.rtt." + t + ".samples";
    slot->rttSrtt = "rpc.rtt." + t + ".srtt";
    slot->rttRttvar = "rpc.rtt." + t + ".rttvar";
    slot->rttTimeout = "rpc.rtt." + t + ".timeout";
  }
  return *slot;
}

void RpcEndpoint::bump(sim::MessageType type,
                       std::string TypeMetricNames::* event) {
  if (auto* m = network_.metrics()) {
    m->increment(metricNames(type).*event);
  }
}

void RpcEndpoint::observeOutcome(bool timedOut) {
  if (adaptive_) adaptive_->observeAttempt(timedOut);
}

RpcId RpcEndpoint::call(sim::NodeAddr to, sim::MessageType type,
                        util::BytesView body, const CallOptions& options,
                        ReplyCallback onReply) {
  const RpcId id =
      (static_cast<RpcId>(addr_) << 32) | static_cast<RpcId>(nextCallId_++);
  util::Writer w;
  w.u64(id);
  w.raw(body);

  PendingCall& pending = state_->pending[id];
  pending.type = type;
  pending.onReply = std::move(onReply);
  pending.startedAt = network_.simulator().now();
  pending.peer = to;
  pending.adaptive = options.adaptiveTimeout;

  const RetryPolicy retry = options.adaptiveTimeout
                                ? peers_.state(to).retry.current()
                                : (adaptive_ ? adaptive_->current()
                                             : options.retry);
  transmit(to, type, w.take(), id, 1, options.timeout, retry,
           options.adaptiveTimeout);
  return id;
}

void RpcEndpoint::transmit(sim::NodeAddr to, sim::MessageType type,
                           const util::Bytes& frame, RpcId id,
                           std::size_t attempt, sim::SimTime timeout,
                           const RetryPolicy& retry, bool adaptive) {
  bump(type, &TypeMetricNames::sent);
  try {
    network_.send(addr_, to, sim::Message{type, frame});
  } catch (const util::NetError&) {
    // Unroutable address (e.g. a contact learned from a corrupted reply):
    // treat like a black hole and let the timeout/retry path run its course.
  }
  // Adaptive calls take each attempt's timeout from the destination's
  // estimator at send time, so a backoff applied after an earlier timeout —
  // possibly by a concurrent call to the same peer — is already reflected.
  // `timeout` stays the caller's fixed value and doubles as the pre-sample
  // fallback.
  const sim::SimTime wait =
      adaptive ? peers_.state(to).rtt.timeout(timeout) : timeout;
  std::weak_ptr<State> weak = state_;
  network_.simulator().schedule(
      wait, [this, weak, to, type, frame, id, attempt, timeout, retry,
             adaptive] {
        const auto state = weak.lock();
        if (!state) return;  // endpoint destroyed
        PendingCall* call = state->pending.find(id);
        if (!call) return;  // answered in time
        ++call->timeouts;
        bump(type, &TypeMetricNames::timeouts);
        observeOutcome(true);
        if (adaptive) {
          PeerStateTable::PeerState& ps = peers_.state(to);
          ps.rtt.onTimeout();
          ps.retry.observeAttempt(true);
        }
        if (attempt < retry.attempts) {
          call->retransmitted = true;
          ++state->retries;
          bump(type, &TypeMetricNames::retries);
          if (auto* m = network_.metrics()) m->increment(statsRetry_);
          network_.simulator().schedule(
              retry.backoff(attempt, network_.rng()),
              [this, weak, to, type, frame, id, attempt, timeout, retry,
               adaptive] {
                const auto s = weak.lock();
                if (!s) return;
                if (!s->pending.contains(id)) return;  // answered during backoff
                transmit(to, type, frame, id, attempt + 1, timeout, retry,
                         adaptive);
              });
          return;
        }
        ++state->failures;
        bump(type, &TypeMetricNames::failed);
        if (auto* m = network_.metrics()) m->increment(statsFail_);
        auto callback = std::move(call->onReply);
        state->pending.erase(id);
        if (callback) callback(false, {});
      });
}

RpcId RpcEndpoint::openCall(sim::MessageType opType, sim::SimTime timeout,
                            util::Bytes tag, ReplyCallback onReply) {
  OpenCallOptions options;
  options.timeout = timeout;
  return openCall(opType, options, std::move(tag), std::move(onReply));
}

RpcId RpcEndpoint::openCall(sim::MessageType opType,
                            const OpenCallOptions& options, util::Bytes tag,
                            ReplyCallback onReply) {
  const RpcId id =
      (static_cast<RpcId>(addr_) << 32) | static_cast<RpcId>(nextCallId_++);
  const bool adaptive = options.adaptiveTimeout;
  const sim::NodeAddr peer = options.peer;
  PendingCall& pending = state_->pending[id];
  pending.type = opType;
  pending.onReply = std::move(onReply);
  pending.startedAt = network_.simulator().now();
  pending.tag = std::move(tag);
  pending.peer = peer;
  pending.adaptive = adaptive;
  bump(opType, &TypeMetricNames::sent);

  const sim::SimTime deadline =
      adaptive ? peers_.state(peer).rtt.timeout(options.timeout)
               : options.timeout;
  std::weak_ptr<State> weak = state_;
  network_.simulator().schedule(deadline, [this, weak, opType, id, adaptive,
                                           peer] {
    const auto state = weak.lock();
    if (!state) return;
    PendingCall* call = state->pending.find(id);
    if (!call) return;  // completed in time
    bump(opType, &TypeMetricNames::timeouts);
    if (adaptive) peers_.state(peer).rtt.onTimeout();
    ++state->failures;
    bump(opType, &TypeMetricNames::failed);
    if (auto* m = network_.metrics()) m->increment(statsFail_);
    auto callback = std::move(call->onReply);
    state->pending.erase(id);
    if (callback) callback(false, {});
  });
  return id;
}

bool RpcEndpoint::complete(RpcId id, util::BytesView payload) {
  if (!state_->pending.contains(id)) return false;
  finish(id, true, payload);
  return true;
}

bool RpcEndpoint::isPending(RpcId id) const {
  return state_->pending.contains(id);
}

const util::Bytes* RpcEndpoint::tag(RpcId id) const {
  const PendingCall* call = state_->pending.find(id);
  return call ? &call->tag : nullptr;
}

void RpcEndpoint::finish(RpcId id, bool ok, util::BytesView payload) {
  PendingCall* call = state_->pending.find(id);
  if (!call) return;
  const sim::MessageType type = call->type;
  if (ok) {
    bump(type, &TypeMetricNames::completed);
    const sim::SimTime rtt =
        network_.simulator().now() - call->startedAt;
    if (auto* m = network_.metrics()) {
      const double rttMs =
          static_cast<double>(rtt) / static_cast<double>(sim::kMillisecond);
      m->histogram(metricNames(type).rttMs).record(rttMs);
      if (trackSpurious_ && call->timeouts > 0) {
        // The call completed after timing out: those timeouts fired on a
        // reply that was late, not lost (exact when links never drop; an
        // upper bound under loss, comparably so across timeout policies).
        m->increment(metricNames(type).spuriousTimeouts, call->timeouts);
      }
    }
    observeOutcome(false);
    if (call->adaptive) {
      PeerStateTable::PeerState& ps = peers_.state(call->peer);
      ps.retry.observeAttempt(false);
      // Karn's rule: only calls answered on their first attempt yield an
      // unambiguous sample. openCall never retransmits, so every completed
      // operation samples its first-hop estimator.
      if (!call->retransmitted) recordRttSample(call->peer, type, rtt);
    }
  }
  auto callback = std::move(call->onReply);
  state_->pending.erase(id);
  if (callback) callback(ok, payload);
}

void RpcEndpoint::recordRttSample(sim::NodeAddr peer, sim::MessageType type,
                                  sim::SimTime rtt) {
  RttEstimator& est = peers_.state(peer).rtt;
  est.addSample(rtt);
  if (auto* m = network_.metrics()) {
    constexpr double kMs = static_cast<double>(sim::kMillisecond);
    const TypeMetricNames& names = metricNames(type);
    m->increment(names.rttSamples);
    m->gauge(names.rttSrtt, est.srtt() / kMs);
    m->gauge(names.rttRttvar, est.rttvar() / kMs);
    m->gauge(names.rttTimeout, static_cast<double>(est.timeout(0)) / kMs);
  }
}

void RpcEndpoint::reply(sim::NodeAddr to, sim::MessageType replyType,
                        RpcId rpcId, util::BytesView body) {
  util::Writer w;
  w.u64(rpcId);
  w.raw(body);
  network_.send(addr_, to, sim::Message{replyType, w.take()});
}

void RpcEndpoint::send(sim::NodeAddr to, sim::MessageType type,
                       util::Bytes payload) {
  network_.send(addr_, to, sim::Message{type, std::move(payload)});
}

void RpcEndpoint::handleReply(sim::NodeAddr from, const sim::Message& msg) {
  RpcId id = 0;
  try {
    util::Reader r(msg.payload);
    id = r.u64();
  } catch (const util::CodecError&) {
    return;  // frame too short to carry an rpcId
  }
  const util::BytesView body = util::BytesView(msg.payload).subspan(8);
  if (const ReplyObserver* observer =
          findByType(replyObservers_, msg.type.id())) {
    try {
      (*observer)(from, body);
    } catch (const util::DosnError&) {
      // The observer doubles as a frame validator: a corrupted reply is
      // dropped and the call stays pending for a retry or the timeout.
      return;
    }
  }
  if (!state_->pending.contains(id)) {
    if (auto* m = network_.metrics()) m->increment(statsOrphan_);
    return;  // timed out already, or a fault-duplicated reply
  }
  finish(id, true, body);
}

void RpcEndpoint::handleMessage(sim::NodeAddr from, const sim::Message& msg) {
  const sim::MessageTypeId typeId = msg.type.id();
  if (std::find(replyChannels_.begin(), replyChannels_.end(), typeId) !=
      replyChannels_.end()) {
    handleReply(from, msg);
    return;
  }
  if (const RequestHandler* request = findByType(requestHandlers_, typeId)) {
    try {
      util::Reader r(msg.payload);
      const RpcId id = r.u64();
      (*request)(from, util::BytesView(msg.payload).subspan(8), id);
    } catch (const util::DosnError&) {
      // Malformed payload or unroutable wire-derived address: drop.
    }
    return;
  }
  if (const MessageHandler* handler = findByType(messageHandlers_, typeId)) {
    try {
      (*handler)(from, msg.payload);
    } catch (const util::DosnError&) {
      // Malformed payload or unroutable wire-derived address: drop.
    }
  }
  // Unknown type: ignore (matches the old per-overlay handlers).
}

}  // namespace dosn::net
