#include "dosn/net/rpc_endpoint.hpp"

#include <utility>

#include "dosn/sim/metrics.hpp"
#include "dosn/util/codec.hpp"
#include "dosn/util/error.hpp"

namespace dosn::net {

RpcEndpoint::RpcEndpoint(sim::Network& network, std::string statsPrefix)
    : network_(network),
      statsPrefix_(std::move(statsPrefix)),
      addr_(network.addNode()),
      state_(std::make_shared<State>()) {
  network_.setHandler(addr_, [this](sim::NodeAddr from, const sim::Message& msg) {
    handleMessage(from, msg);
  });
  // Authoritative churn notice: a departed peer's RTT estimate and retry
  // budget describe a node that no longer exists — evict rather than let a
  // rejoining peer (or LRU pressure) inherit stale state.
  statusToken_ = network_.addStatusObserver(
      [this](sim::NodeAddr node, bool online) {
        if (!online && node != addr_) peers_.erase(node);
      });
}

RpcEndpoint::~RpcEndpoint() {
  // Unhook from the network so in-flight deliveries to this address are
  // counted as offline drops instead of invoking a dangling handler. Timeout
  // closures hold a weak_ptr to state_ and expire with it.
  network_.setHandler(addr_, nullptr);
  network_.removeStatusObserver(statusToken_);
}

void RpcEndpoint::onRequest(const std::string& type, RequestHandler handler) {
  requestHandlers_[type] = std::move(handler);
}

void RpcEndpoint::onMessage(const std::string& type, MessageHandler handler) {
  messageHandlers_[type] = std::move(handler);
}

void RpcEndpoint::addReplyChannel(const std::string& type) {
  replyChannels_.insert(type);
}

void RpcEndpoint::setReplyObserver(const std::string& type,
                                   ReplyObserver observer) {
  replyObservers_[type] = std::move(observer);
}

void RpcEndpoint::bump(const std::string& type, const char* event) {
  if (auto* m = network_.metrics()) {
    m->increment("rpc." + type + "." + event);
  }
}

void RpcEndpoint::observeOutcome(bool timedOut) {
  if (adaptive_) adaptive_->observeAttempt(timedOut);
}

RpcId RpcEndpoint::call(sim::NodeAddr to, const std::string& type,
                        util::BytesView body, const CallOptions& options,
                        ReplyCallback onReply) {
  const RpcId id =
      (static_cast<RpcId>(addr_) << 32) | static_cast<RpcId>(nextCallId_++);
  util::Writer w;
  w.u64(id);
  w.raw(body);

  PendingCall pending;
  pending.type = type;
  pending.onReply = std::move(onReply);
  pending.startedAt = network_.simulator().now();
  pending.peer = to;
  pending.adaptive = options.adaptiveTimeout;
  state_->pending.emplace(id, std::move(pending));

  const RetryPolicy retry = options.adaptiveTimeout
                                ? peers_.state(to).retry.current()
                                : (adaptive_ ? adaptive_->current()
                                             : options.retry);
  transmit(to, type, w.take(), id, 1, options.timeout, retry,
           options.adaptiveTimeout);
  return id;
}

void RpcEndpoint::transmit(sim::NodeAddr to, const std::string& type,
                           const util::Bytes& frame, RpcId id,
                           std::size_t attempt, sim::SimTime timeout,
                           const RetryPolicy& retry, bool adaptive) {
  bump(type, "sent");
  try {
    network_.send(addr_, to, sim::Message{type, frame});
  } catch (const util::NetError&) {
    // Unroutable address (e.g. a contact learned from a corrupted reply):
    // treat like a black hole and let the timeout/retry path run its course.
  }
  // Adaptive calls take each attempt's timeout from the destination's
  // estimator at send time, so a backoff applied after an earlier timeout —
  // possibly by a concurrent call to the same peer — is already reflected.
  // `timeout` stays the caller's fixed value and doubles as the pre-sample
  // fallback.
  const sim::SimTime wait =
      adaptive ? peers_.state(to).rtt.timeout(timeout) : timeout;
  std::weak_ptr<State> weak = state_;
  network_.simulator().schedule(
      wait, [this, weak, to, type, frame, id, attempt, timeout, retry,
             adaptive] {
        const auto state = weak.lock();
        if (!state) return;  // endpoint destroyed
        const auto it = state->pending.find(id);
        if (it == state->pending.end()) return;  // answered in time
        ++it->second.timeouts;
        bump(type, "timeouts");
        observeOutcome(true);
        if (adaptive) {
          PeerStateTable::PeerState& ps = peers_.state(to);
          ps.rtt.onTimeout();
          ps.retry.observeAttempt(true);
        }
        if (attempt < retry.attempts) {
          it->second.retransmitted = true;
          ++state->retries;
          bump(type, "retries");
          if (auto* m = network_.metrics()) m->increment(statsPrefix_ + ".retry");
          network_.simulator().schedule(
              retry.backoff(attempt, network_.rng()),
              [this, weak, to, type, frame, id, attempt, timeout, retry,
               adaptive] {
                const auto s = weak.lock();
                if (!s) return;
                if (!s->pending.count(id)) return;  // answered during backoff
                transmit(to, type, frame, id, attempt + 1, timeout, retry,
                         adaptive);
              });
          return;
        }
        ++state->failures;
        bump(type, "failed");
        if (auto* m = network_.metrics()) m->increment(statsPrefix_ + ".fail");
        auto callback = std::move(it->second.onReply);
        state->pending.erase(it);
        if (callback) callback(false, {});
      });
}

RpcId RpcEndpoint::openCall(const std::string& opType, sim::SimTime timeout,
                            util::Bytes tag, ReplyCallback onReply) {
  OpenCallOptions options;
  options.timeout = timeout;
  return openCall(opType, options, std::move(tag), std::move(onReply));
}

RpcId RpcEndpoint::openCall(const std::string& opType,
                            const OpenCallOptions& options, util::Bytes tag,
                            ReplyCallback onReply) {
  const RpcId id =
      (static_cast<RpcId>(addr_) << 32) | static_cast<RpcId>(nextCallId_++);
  const bool adaptive = options.adaptiveTimeout;
  const sim::NodeAddr peer = options.peer;
  PendingCall pending;
  pending.type = opType;
  pending.onReply = std::move(onReply);
  pending.startedAt = network_.simulator().now();
  pending.tag = std::move(tag);
  pending.peer = peer;
  pending.adaptive = adaptive;
  state_->pending.emplace(id, std::move(pending));
  bump(opType, "sent");

  const sim::SimTime deadline =
      adaptive ? peers_.state(peer).rtt.timeout(options.timeout)
               : options.timeout;
  std::weak_ptr<State> weak = state_;
  network_.simulator().schedule(deadline, [this, weak, opType, id, adaptive,
                                           peer] {
    const auto state = weak.lock();
    if (!state) return;
    const auto it = state->pending.find(id);
    if (it == state->pending.end()) return;  // completed in time
    bump(opType, "timeouts");
    if (adaptive) peers_.state(peer).rtt.onTimeout();
    ++state->failures;
    bump(opType, "failed");
    if (auto* m = network_.metrics()) m->increment(statsPrefix_ + ".fail");
    auto callback = std::move(it->second.onReply);
    state->pending.erase(it);
    if (callback) callback(false, {});
  });
  return id;
}

bool RpcEndpoint::complete(RpcId id, util::BytesView payload) {
  if (!state_->pending.count(id)) return false;
  finish(id, true, payload);
  return true;
}

bool RpcEndpoint::isPending(RpcId id) const {
  return state_->pending.count(id) > 0;
}

const util::Bytes* RpcEndpoint::tag(RpcId id) const {
  const auto it = state_->pending.find(id);
  if (it == state_->pending.end()) return nullptr;
  return &it->second.tag;
}

void RpcEndpoint::finish(RpcId id, bool ok, util::BytesView payload) {
  const auto it = state_->pending.find(id);
  if (it == state_->pending.end()) return;
  const std::string type = it->second.type;
  if (ok) {
    bump(type, "completed");
    const sim::SimTime rtt =
        network_.simulator().now() - it->second.startedAt;
    if (auto* m = network_.metrics()) {
      const double rttMs =
          static_cast<double>(rtt) / static_cast<double>(sim::kMillisecond);
      m->histogram("rpc." + type + ".rtt_ms").record(rttMs);
      if (trackSpurious_ && it->second.timeouts > 0) {
        // The call completed after timing out: those timeouts fired on a
        // reply that was late, not lost (exact when links never drop; an
        // upper bound under loss, comparably so across timeout policies).
        m->increment("rpc." + type + ".spurious_timeouts",
                     it->second.timeouts);
      }
    }
    observeOutcome(false);
    if (it->second.adaptive) {
      PeerStateTable::PeerState& ps = peers_.state(it->second.peer);
      ps.retry.observeAttempt(false);
      // Karn's rule: only calls answered on their first attempt yield an
      // unambiguous sample. openCall never retransmits, so every completed
      // operation samples its first-hop estimator.
      if (!it->second.retransmitted) recordRttSample(it->second.peer, type, rtt);
    }
  }
  auto callback = std::move(it->second.onReply);
  state_->pending.erase(it);
  if (callback) callback(ok, payload);
}

void RpcEndpoint::recordRttSample(sim::NodeAddr peer, const std::string& type,
                                  sim::SimTime rtt) {
  RttEstimator& est = peers_.state(peer).rtt;
  est.addSample(rtt);
  if (auto* m = network_.metrics()) {
    constexpr double kMs = static_cast<double>(sim::kMillisecond);
    m->increment("rpc.rtt." + type + ".samples");
    m->gauge("rpc.rtt." + type + ".srtt", est.srtt() / kMs);
    m->gauge("rpc.rtt." + type + ".rttvar", est.rttvar() / kMs);
    m->gauge("rpc.rtt." + type + ".timeout",
             static_cast<double>(est.timeout(0)) / kMs);
  }
}

void RpcEndpoint::reply(sim::NodeAddr to, const std::string& replyType,
                        RpcId rpcId, util::BytesView body) {
  util::Writer w;
  w.u64(rpcId);
  w.raw(body);
  network_.send(addr_, to, sim::Message{replyType, w.take()});
}

void RpcEndpoint::send(sim::NodeAddr to, const std::string& type,
                       util::Bytes payload) {
  network_.send(addr_, to, sim::Message{type, std::move(payload)});
}

void RpcEndpoint::handleReply(sim::NodeAddr from, const sim::Message& msg) {
  RpcId id = 0;
  try {
    util::Reader r(msg.payload);
    id = r.u64();
  } catch (const util::CodecError&) {
    return;  // frame too short to carry an rpcId
  }
  const util::BytesView body = util::BytesView(msg.payload).subspan(8);
  const auto observer = replyObservers_.find(msg.type);
  if (observer != replyObservers_.end()) {
    try {
      observer->second(from, body);
    } catch (const util::DosnError&) {
      // The observer doubles as a frame validator: a corrupted reply is
      // dropped and the call stays pending for a retry or the timeout.
      return;
    }
  }
  if (!state_->pending.count(id)) {
    if (auto* m = network_.metrics()) m->increment(statsPrefix_ + ".orphan");
    return;  // timed out already, or a fault-duplicated reply
  }
  finish(id, true, body);
}

void RpcEndpoint::handleMessage(sim::NodeAddr from, const sim::Message& msg) {
  if (replyChannels_.count(msg.type)) {
    handleReply(from, msg);
    return;
  }
  const auto request = requestHandlers_.find(msg.type);
  if (request != requestHandlers_.end()) {
    try {
      util::Reader r(msg.payload);
      const RpcId id = r.u64();
      request->second(from, util::BytesView(msg.payload).subspan(8), id);
    } catch (const util::DosnError&) {
      // Malformed payload or unroutable wire-derived address: drop.
    }
    return;
  }
  const auto handler = messageHandlers_.find(msg.type);
  if (handler != messageHandlers_.end()) {
    try {
      handler->second(from, msg.payload);
    } catch (const util::DosnError&) {
      // Malformed payload or unroutable wire-derived address: drop.
    }
  }
  // Unknown type: ignore (matches the old per-overlay handlers).
}

}  // namespace dosn::net
