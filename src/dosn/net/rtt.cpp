#include "dosn/net/rtt.hpp"

#include <algorithm>
#include <cmath>

namespace dosn::net {

void RttEstimator::addSample(sim::SimTime rtt) {
  const double r = static_cast<double>(rtt);
  if (samples_ == 0) {
    srtt_ = r;
    rttvar_ = r / 2.0;
  } else {
    // RFC 6298 §2.3: RTTVAR before SRTT, so the deviation is measured
    // against the pre-update smoothed estimate.
    rttvar_ = (1.0 - config_.beta) * rttvar_ + config_.beta * std::abs(srtt_ - r);
    srtt_ = (1.0 - config_.alpha) * srtt_ + config_.alpha * r;
  }
  ++samples_;
  consecutiveTimeouts_ = 0;
}

void RttEstimator::onTimeout() {
  // Saturate well before the backoff factor alone exceeds any plausible
  // maxTimeout; keeps pow() finite.
  if (consecutiveTimeouts_ < 63) ++consecutiveTimeouts_;
}

sim::SimTime RttEstimator::timeout(sim::SimTime fallback) const {
  double base = samples_ > 0 ? srtt_ + config_.k * rttvar_
                             : static_cast<double>(fallback);
  base *= std::pow(config_.backoffMultiplier,
                   static_cast<double>(consecutiveTimeouts_));
  const auto lo = static_cast<double>(config_.minTimeout);
  const auto hi = static_cast<double>(config_.maxTimeout);
  // The negated comparison also catches +inf/NaN from the pow above.
  if (!(base < hi)) return config_.maxTimeout;
  if (base < lo) return config_.minTimeout;
  return static_cast<sim::SimTime>(base);
}

PeerStateTable::PeerStateTable(PeerTableConfig config) : config_(config) {
  if (config_.maxPeers == 0) config_.maxPeers = 1;
}

PeerStateTable::PeerState& PeerStateTable::state(sim::NodeAddr peer) {
  Entry* entry = peers_.find(peer);
  if (!entry) {
    entry = &peers_[peer];
    entry->state.rtt = RttEstimator(config_.rtt);
    entry->state.retry = AdaptiveRetryPolicy(config_.retry);
  }
  // Touch before evicting so a just-created entry can never be its own
  // eviction victim (unique monotonic touches keep eviction deterministic
  // regardless of the table's iteration order).
  entry->lastTouch = ++touchClock_;
  evictIfNeeded();
  // Eviction's backward-shift deletion may relocate surviving entries, so
  // the pre-eviction pointer cannot be returned.
  return peers_.find(peer)->state;
}

const PeerStateTable::PeerState* PeerStateTable::find(sim::NodeAddr peer) const {
  const Entry* entry = peers_.find(peer);
  return entry ? &entry->state : nullptr;
}

bool PeerStateTable::erase(sim::NodeAddr peer) {
  return peers_.erase(peer);
}

std::size_t PeerStateTable::sampledPeers() const {
  std::size_t n = 0;
  peers_.forEach([&](sim::NodeAddr, const Entry& entry) {
    if (entry.state.rtt.hasSample()) ++n;
  });
  return n;
}

void PeerStateTable::evictIfNeeded() {
  while (peers_.size() > config_.maxPeers) {
    sim::NodeAddr victim = sim::kNoAddr;
    std::uint64_t victimTouch = ~std::uint64_t{0};
    peers_.forEach([&](sim::NodeAddr addr, const Entry& entry) {
      if (entry.lastTouch < victimTouch) {
        victim = addr;
        victimTouch = entry.lastTouch;
      }
    });
    peers_.erase(victim);
  }
}

}  // namespace dosn::net
