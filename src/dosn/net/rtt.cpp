#include "dosn/net/rtt.hpp"

#include <algorithm>
#include <cmath>

namespace dosn::net {

void RttEstimator::addSample(sim::SimTime rtt) {
  const double r = static_cast<double>(rtt);
  if (samples_ == 0) {
    srtt_ = r;
    rttvar_ = r / 2.0;
  } else {
    // RFC 6298 §2.3: RTTVAR before SRTT, so the deviation is measured
    // against the pre-update smoothed estimate.
    rttvar_ = (1.0 - config_.beta) * rttvar_ + config_.beta * std::abs(srtt_ - r);
    srtt_ = (1.0 - config_.alpha) * srtt_ + config_.alpha * r;
  }
  ++samples_;
  consecutiveTimeouts_ = 0;
}

void RttEstimator::onTimeout() {
  // Saturate well before the backoff factor alone exceeds any plausible
  // maxTimeout; keeps pow() finite.
  if (consecutiveTimeouts_ < 63) ++consecutiveTimeouts_;
}

sim::SimTime RttEstimator::timeout(sim::SimTime fallback) const {
  double base = samples_ > 0 ? srtt_ + config_.k * rttvar_
                             : static_cast<double>(fallback);
  base *= std::pow(config_.backoffMultiplier,
                   static_cast<double>(consecutiveTimeouts_));
  const auto lo = static_cast<double>(config_.minTimeout);
  const auto hi = static_cast<double>(config_.maxTimeout);
  // The negated comparison also catches +inf/NaN from the pow above.
  if (!(base < hi)) return config_.maxTimeout;
  if (base < lo) return config_.minTimeout;
  return static_cast<sim::SimTime>(base);
}

PeerStateTable::PeerStateTable(PeerTableConfig config) : config_(config) {
  if (config_.maxPeers == 0) config_.maxPeers = 1;
}

PeerStateTable::PeerState& PeerStateTable::state(sim::NodeAddr peer) {
  auto it = peers_.find(peer);
  if (it == peers_.end()) {
    Entry entry;
    entry.state.rtt = RttEstimator(config_.rtt);
    entry.state.retry = AdaptiveRetryPolicy(config_.retry);
    it = peers_.emplace(peer, std::move(entry)).first;
  }
  // Touch before evicting so a just-created entry can never be its own
  // eviction victim.
  it->second.lastTouch = ++touchClock_;
  evictIfNeeded();
  return it->second.state;
}

const PeerStateTable::PeerState* PeerStateTable::find(sim::NodeAddr peer) const {
  const auto it = peers_.find(peer);
  return it == peers_.end() ? nullptr : &it->second.state;
}

bool PeerStateTable::erase(sim::NodeAddr peer) {
  return peers_.erase(peer) > 0;
}

std::size_t PeerStateTable::sampledPeers() const {
  std::size_t n = 0;
  for (const auto& [addr, entry] : peers_) {
    if (entry.state.rtt.hasSample()) ++n;
  }
  return n;
}

void PeerStateTable::evictIfNeeded() {
  while (peers_.size() > config_.maxPeers) {
    auto victim = peers_.begin();
    for (auto it = peers_.begin(); it != peers_.end(); ++it) {
      if (it->second.lastTouch < victim->second.lastTouch) victim = it;
    }
    peers_.erase(victim);
  }
}

}  // namespace dosn::net
