// Per-destination round-trip-time estimation for the shared RPC endpoint
// (net/rpc_endpoint.hpp), following the Jacobson/Karn algorithm with RFC 6298
// semantics:
//
//  - first valid sample R:        SRTT = R, RTTVAR = R/2
//  - subsequent valid samples:    RTTVAR = (1-beta)*RTTVAR + beta*|SRTT - R|
//                                 SRTT   = (1-alpha)*SRTT  + alpha*R
//    (RTTVAR updated before SRTT, exactly as the RFC orders the assignments)
//  - timeout = SRTT + k*RTTVAR, clamped to [minTimeout, maxTimeout]
//  - Karn's rule: a reply to a call that was retransmitted is ambiguous (it
//    may answer any attempt) and must never update the estimate — the
//    endpoint only feeds addSample() for calls answered on their first
//    attempt.
//  - exponential backoff: every consecutive timeout doubles the effective
//    timeout (still clamped to maxTimeout); the next valid sample collapses
//    the backoff. Because the backoff persists across calls to the same
//    destination, a peer whose true RTT exceeds the current estimate is
//    probed with geometrically growing timeouts until one attempt survives
//    unretransmitted and yields a Karn-valid sample — this is how the
//    estimator escapes the classic "RTO < RTT forever" trap.
//
// Before the first sample the estimator has no opinion: timeout(fallback)
// returns the caller-provided fixed timeout (backed off and clamped), so an
// adaptive call to an unknown peer behaves like a classic fixed-timeout call.
//
// PeerStateTable keys one RttEstimator plus one AdaptiveRetryPolicy per
// destination NodeAddr, so each peer earns its own timeout and retry budget
// instead of sharing fleet-global constants. The table is bounded: under
// churn, peers come and go forever, so entries are evicted least-recently-
// used once maxPeers is exceeded (eviction order is deterministic — a
// monotonic touch counter, no clocks). Storage is an open-addressing
// AddrMap (DESIGN.md §3d): the per-send state(peer) lookup is one hash and
// a short probe instead of a red-black-tree walk.
#pragma once

#include <cstddef>
#include <cstdint>

#include "dosn/net/retry.hpp"
#include "dosn/sim/flat_map.hpp"
#include "dosn/sim/network.hpp"

namespace dosn::net {

class RttEstimator {
 public:
  struct Config {
    double alpha = 0.125;  // SRTT gain  (RFC 6298 value 1/8)
    double beta = 0.25;    // RTTVAR gain (RFC 6298 value 1/4)
    double k = 4.0;        // timeout = SRTT + k*RTTVAR
    sim::SimTime minTimeout = 50 * sim::kMillisecond;
    sim::SimTime maxTimeout = 10 * sim::kSecond;
    double backoffMultiplier = 2.0;  // per consecutive timeout
  };

  RttEstimator() = default;
  explicit RttEstimator(Config config) : config_(config) {}

  /// Feeds a Karn-valid sample (call answered without retransmission) and
  /// collapses any accumulated backoff.
  void addSample(sim::SimTime rtt);

  /// One timeout expired against this destination: backs off the timeout.
  void onTimeout();

  /// The adaptive timeout: SRTT + k*RTTVAR (or `fallback` before the first
  /// sample), multiplied by the current backoff, clamped to [min, max].
  sim::SimTime timeout(sim::SimTime fallback) const;

  bool hasSample() const { return samples_ > 0; }
  std::size_t samples() const { return samples_; }
  /// Smoothed RTT / variance in microseconds (0 before the first sample).
  double srtt() const { return srtt_; }
  double rttvar() const { return rttvar_; }
  std::size_t consecutiveTimeouts() const { return consecutiveTimeouts_; }

  const Config& config() const { return config_; }

 private:
  Config config_;
  double srtt_ = 0.0;
  double rttvar_ = 0.0;
  std::size_t samples_ = 0;
  std::size_t consecutiveTimeouts_ = 0;
};

struct PeerTableConfig {
  RttEstimator::Config rtt;
  /// Per-destination retry budget: each peer's budget is sized from the
  /// timeout rate observed against *that peer*, not the fleet average.
  AdaptiveRetryPolicy::Config retry;
  /// LRU bound on tracked destinations (churny fleets meet new peers
  /// forever; estimator state for long-gone ones is dead weight).
  std::size_t maxPeers = 1024;
};

class PeerStateTable {
 public:
  struct PeerState {
    RttEstimator rtt;
    AdaptiveRetryPolicy retry;
  };

  PeerStateTable() : PeerStateTable(PeerTableConfig{}) {}
  explicit PeerStateTable(PeerTableConfig config);

  /// The state for `peer`, created on first use; touches the LRU order and
  /// may evict the least-recently-used other entry to stay within maxPeers.
  PeerState& state(sim::NodeAddr peer);

  /// Read-only lookup; nullptr if the peer is not tracked. Does not touch
  /// the LRU order.
  const PeerState* find(sim::NodeAddr peer) const;

  /// Drops a peer's state (e.g. on authoritative churn notice).
  bool erase(sim::NodeAddr peer);

  std::size_t size() const { return peers_.size(); }
  const PeerTableConfig& config() const { return config_; }

  /// Destinations with at least one Karn-valid sample.
  std::size_t sampledPeers() const;

 private:
  struct Entry {
    PeerState state;
    std::uint64_t lastTouch = 0;
  };

  void evictIfNeeded();

  PeerTableConfig config_;
  sim::AddrMap<Entry> peers_;
  std::uint64_t touchClock_ = 0;
};

}  // namespace dosn::net
