// Retry policies for the shared RPC endpoint layer (net/rpc_endpoint.hpp).
//
// RetryPolicy: fixed retry-with-exponential-backoff. With jitterFraction = 0
// (the default) delays are closed-form functions of the attempt number, so
// retried runs stay bit-reproducible under the simulator's virtual clock.
// A nonzero jitterFraction scales each delay by a uniform factor drawn from
// the simulation rng — still deterministic per seed, but retransmissions of
// calls that timed out together decorrelate instead of re-colliding in
// synchronized retry storms.
//
// AdaptiveRetryPolicy: sizes the retry budget from the observed per-attempt
// timeout rate (an EWMA over attempt outcomes the endpoint feeds it), picking
// the smallest budget whose residual failure probability meets a target.
#pragma once

#include <cmath>
#include <cstddef>

#include "dosn/sim/simulator.hpp"
#include "dosn/util/rng.hpp"

namespace dosn::net {

struct RetryPolicy {
  /// Total send attempts per RPC; 1 means no retries (classic behavior).
  std::size_t attempts = 1;
  /// Backoff before the 2nd attempt; attempt n waits base * multiplier^(n-1).
  sim::SimTime backoffBase = 100 * sim::kMillisecond;
  double backoffMultiplier = 2.0;
  /// Upper clamp on any single backoff delay. Keeps pathological attempt
  /// counts (or multipliers) from overflowing SimTime in the cast below.
  sim::SimTime maxBackoff = 60 * sim::kSecond;
  /// Fraction f in [0, 1): each backoff is scaled by a uniform factor in
  /// [1-f, 1+f] drawn from the rng passed to backoff(). 0 (the default)
  /// draws nothing, so existing fixed-seed runs stay byte-identical.
  double jitterFraction = 0.0;

  /// Backoff to wait after attempt `attempt` (1-based) times out.
  sim::SimTime backoff(std::size_t attempt) const {
    const double delay =
        static_cast<double>(backoffBase) *
        std::pow(backoffMultiplier, static_cast<double>(attempt - 1));
    // The negated comparison also catches NaN (e.g. 0 * inf) and +inf.
    if (!(delay < static_cast<double>(maxBackoff))) return maxBackoff;
    return static_cast<sim::SimTime>(delay);
  }

  /// As backoff(attempt), jittered. Consumes exactly one rng draw when
  /// jitterFraction > 0 and none otherwise — the zero-jitter path must not
  /// perturb the deterministic draw sequence of existing experiments.
  sim::SimTime backoff(std::size_t attempt, util::Rng& rng) const {
    const sim::SimTime flat = backoff(attempt);
    if (jitterFraction <= 0.0) return flat;
    const double scale =
        1.0 + jitterFraction * (2.0 * rng.uniformReal() - 1.0);
    const double jittered = static_cast<double>(flat) * scale;
    if (!(jittered < static_cast<double>(maxBackoff))) return maxBackoff;
    if (jittered <= 0.0) return 0;
    return static_cast<sim::SimTime>(jittered);
  }
};

/// Estimates the per-attempt timeout probability from outcomes observed at an
/// RpcEndpoint and derives the smallest attempt budget whose residual failure
/// probability (rate^attempts) meets `targetResidualFailure`. Deterministic:
/// the estimate is a pure function of the observed outcome sequence.
class AdaptiveRetryPolicy {
 public:
  struct Config {
    RetryPolicy base;                    // backoff shape + minimum attempts
    std::size_t maxAttempts = 6;         // budget ceiling
    double targetResidualFailure = 0.01; // accepted give-up probability
    double decay = 0.95;                 // EWMA weight of history per outcome
  };

  AdaptiveRetryPolicy() = default;
  explicit AdaptiveRetryPolicy(Config config) : config_(config) {}

  /// One attempt resolved: it either timed out or was answered.
  void observeAttempt(bool timedOut) {
    rate_ = config_.decay * rate_ + (timedOut ? 1.0 - config_.decay : 0.0);
    ++observed_;
  }

  /// EWMA of the per-attempt timeout probability (0 until first observation).
  double timeoutRate() const { return rate_; }
  std::size_t observedAttempts() const { return observed_; }

  /// Current budget: smallest n with timeoutRate()^n <= target, clamped to
  /// [base.attempts, maxAttempts].
  std::size_t attempts() const {
    std::size_t n = config_.base.attempts > 0 ? config_.base.attempts : 1;
    if (rate_ > 0.0) {
      double residual = std::pow(rate_, static_cast<double>(n));
      while (n < config_.maxAttempts && residual > config_.targetResidualFailure) {
        ++n;
        residual *= rate_;
      }
    }
    return n;
  }

  /// The base policy with the adaptive attempt budget substituted in.
  RetryPolicy current() const {
    RetryPolicy policy = config_.base;
    policy.attempts = attempts();
    return policy;
  }

  const Config& config() const { return config_; }

 private:
  Config config_;
  double rate_ = 0.0;
  std::size_t observed_ = 0;
};

}  // namespace dosn::net
