// Shared request/response endpoint on top of sim::Network — the one RPC
// substrate under every overlay (Kademlia, flooding, super-peer, federation,
// replication, gossip anti-entropy). It owns what each overlay used to
// hand-roll separately:
//
//  - rpcId allocation (globally unique: high bits are the node address, so
//    ids can double as flood/query identifiers deduplicated across nodes);
//  - the pending-call map. A pending entry survives retransmissions, so a
//    late reply to an earlier attempt still completes the call;
//  - single-shot and retry-with-backoff timeout handling via RetryPolicy
//    (or an attached AdaptiveRetryPolicy that sizes budgets from the
//    endpoint's observed timeout rate);
//  - DosnError containment: a corrupted payload that makes a handler or
//    observer throw is dropped, never propagated;
//  - uniform observability into the network's attached Metrics:
//      rpc.<type>.sent / .retries / .timeouts / .completed / .failed
//    counters plus a per-type round-trip latency histogram
//      rpc.<type>.rtt_ms
//    and legacy per-endpoint `<statsPrefix>.retry` / `<statsPrefix>.fail`
//    counters (kept stable for the fault experiments);
//  - opt-in per-destination adaptivity (CallOptions::adaptiveTimeout): a
//    PeerStateTable keys an RFC 6298-style RttEstimator and an
//    AdaptiveRetryPolicy by destination, so each peer earns its own timeout
//    and retry budget instead of fleet-global constants. Samples export
//    rpc.rtt.<type>.{srtt,rttvar,timeout} gauges and a
//    rpc.rtt.<type>.samples counter. With the flag off (the default) the
//    fixed-timeout path is byte-identical to the pre-adaptive endpoint.
//
// Two correlation styles cover all six layers:
//
//  - call(): a paired RPC. The request is framed as `u64 rpcId | body`; any
//    message on a registered reply channel whose leading rpcId matches
//    completes it (the responder need not be the node called — super-peer
//    fan-outs answer from third parties). Timeouts retransmit per the
//    RetryPolicy and finally fail the call exactly once.
//  - openCall(): a correlation slot for multi-hop operations (flood search,
//    super-peer query->owner->fetch chains). The overlay sends its own probe
//    messages and completes the slot explicitly via complete(); the endpoint
//    owns the single overall deadline.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dosn/net/retry.hpp"
#include "dosn/net/rtt.hpp"
#include "dosn/sim/flat_map.hpp"
#include "dosn/sim/message_type.hpp"
#include "dosn/sim/network.hpp"
#include "dosn/util/bytes.hpp"

namespace dosn::net {

using RpcId = std::uint64_t;

struct CallOptions {
  sim::SimTime timeout = 500 * sim::kMillisecond;
  /// attempts=1 preserves classic single-shot behavior. Ignored when an
  /// AdaptiveRetryPolicy is attached to the endpoint.
  RetryPolicy retry{};
  /// Opt-in per-destination adaptivity (RFC 6298 semantics, see net/rtt.hpp):
  /// each attempt's timeout comes from the destination's RttEstimator
  /// (`timeout` above is only the pre-sample fallback), the retry budget from
  /// the destination's own AdaptiveRetryPolicy, and completions answered on
  /// their first attempt feed the estimator (Karn's rule: retransmitted calls
  /// never do). Off by default: the classic fixed-timeout path is untouched.
  bool adaptiveTimeout = false;
};

struct OpenCallOptions {
  sim::SimTime timeout = 5 * sim::kSecond;
  /// Opt-in adaptive deadline for multi-hop operations: the deadline comes
  /// from the estimator keyed by `peer` (the operation's first hop, or the
  /// caller's own address for fan-outs with no single destination), which is
  /// fed the operation's completion time — so the estimate is an *operation*
  /// time, not a link RTT. openCall never retransmits, so every completion
  /// is Karn-valid by construction.
  bool adaptiveTimeout = false;
  sim::NodeAddr peer = sim::kNoAddr;
};

class RpcEndpoint {
 public:
  /// Completion of a call: ok=true with the reply body (after the rpcId for
  /// paired calls, verbatim for complete()), or ok=false on final timeout.
  using ReplyCallback = std::function<void(bool ok, util::BytesView reply)>;
  /// An incoming paired request: `body` is the payload after the rpcId;
  /// answer it with reply(from, <replyType>, rpcId, ...).
  using RequestHandler =
      std::function<void(sim::NodeAddr from, util::BytesView body, RpcId rpcId)>;
  /// An incoming one-way message (flood forwards, gossip pushes, registers).
  using MessageHandler =
      std::function<void(sim::NodeAddr from, util::BytesView payload)>;
  /// Inspects every reply on a channel before correlation (late and duplicate
  /// replies included — Kademlia refreshes routing contacts this way). If the
  /// observer throws a DosnError the reply is dropped and the call stays
  /// pending, so observers double as frame validators.
  using ReplyObserver =
      std::function<void(sim::NodeAddr from, util::BytesView body)>;

  /// Registers a fresh node on the network and claims its handler. The
  /// statsPrefix names the per-endpoint aggregate counters (e.g. "kad.rpc"
  /// yields kad.rpc.retry / kad.rpc.fail in the attached Metrics).
  RpcEndpoint(sim::Network& network, std::string statsPrefix);
  ~RpcEndpoint();

  RpcEndpoint(const RpcEndpoint&) = delete;
  RpcEndpoint& operator=(const RpcEndpoint&) = delete;

  sim::NodeAddr addr() const { return addr_; }
  sim::Network& network() { return network_; }

  // --- server side ---
  // Types are interned sim::MessageType handles; string spellings convert
  // implicitly (interning once), and hot paths dispatch on the dense id.
  void onRequest(sim::MessageType type, RequestHandler handler);
  void onMessage(sim::MessageType type, MessageHandler handler);
  /// Frames and sends `body` as the reply to `rpcId`.
  void reply(sim::NodeAddr to, sim::MessageType replyType, RpcId rpcId,
             util::BytesView body);

  // --- client side ---
  /// Marks `type` as a reply channel: incoming messages of this type are
  /// parsed as `u64 rpcId | body` and complete the matching pending call.
  void addReplyChannel(sim::MessageType type);
  void setReplyObserver(sim::MessageType type, ReplyObserver observer);

  /// Starts a paired RPC to `to`. The wire frame is `u64 rpcId | body`.
  RpcId call(sim::NodeAddr to, sim::MessageType type, util::BytesView body,
             const CallOptions& options, ReplyCallback onReply);

  /// Opens a correlation slot with a single overall deadline and no
  /// retransmission. `opType` is the metrics name (e.g. "flood.search");
  /// `tag` is opaque per-call context readable back via tag() (super-peer
  /// chains stash the searched key there).
  RpcId openCall(sim::MessageType opType, sim::SimTime timeout,
                 util::Bytes tag, ReplyCallback onReply);
  /// As above with an optionally adaptive deadline (see OpenCallOptions).
  RpcId openCall(sim::MessageType opType, const OpenCallOptions& options,
                 util::Bytes tag, ReplyCallback onReply);
  /// Completes a pending call with a validated payload; returns false if the
  /// call is no longer pending (timed out, duplicate completion).
  bool complete(RpcId id, util::BytesView payload);
  bool isPending(RpcId id) const;
  /// The tag attached at openCall, or nullptr if the call is not pending.
  const util::Bytes* tag(RpcId id) const;

  /// Fire-and-forget message from this endpoint's address.
  void send(sim::NodeAddr to, sim::MessageType type, util::Bytes payload);

  /// Attaches an adaptive budget (nullptr detaches). Not owned; must outlive
  /// use. While attached it replaces CallOptions::retry on every call and is
  /// fed every attempt outcome (timeout / answered). Calls made with
  /// adaptiveTimeout take their budget from the per-destination table
  /// instead.
  void setAdaptiveRetry(AdaptiveRetryPolicy* policy) { adaptive_ = policy; }

  /// Replaces the per-destination state table (estimator shape, retry
  /// config, LRU bound). Existing per-peer state is discarded.
  void configurePeerTable(PeerTableConfig config) {
    peers_ = PeerStateTable(config);
  }
  PeerStateTable& peerStates() { return peers_; }
  const PeerStateTable& peerStates() const { return peers_; }

  /// Opt-in: counts `rpc.<type>.spurious_timeouts` — timeouts that fired on
  /// calls which subsequently completed, i.e. the reply was merely late, not
  /// lost. Off by default so existing metric surfaces stay byte-identical.
  void trackSpuriousTimeouts(bool on) { trackSpurious_ = on; }

  // Aggregate robustness stats (also mirrored into the network's Metrics as
  // `<statsPrefix>.retry` / `<statsPrefix>.fail`).
  std::uint64_t retries() const { return state_->retries; }
  std::uint64_t failures() const { return state_->failures; }
  std::size_t pendingCalls() const { return state_->pending.size(); }

 private:
  struct PendingCall {
    sim::MessageType type;       // request type (metrics key)
    ReplyCallback onReply;
    sim::SimTime startedAt = 0;
    util::Bytes tag;             // openCall context
    sim::NodeAddr peer = sim::kNoAddr;  // estimator key for adaptive calls
    bool adaptive = false;
    bool retransmitted = false;  // Karn's rule: ambiguous once retransmitted
    std::size_t timeouts = 0;    // timeouts fired against this call so far
  };

  // Shared with every closure scheduled on the simulator so timeouts fired
  // after the endpoint is destroyed find the state gone instead of dangling.
  // RpcIds are (addr << 32 | counter), never ~0, so AddrMap's reserved key
  // is safe here too.
  struct State {
    sim::AddrMap<PendingCall> pending;
    std::uint64_t retries = 0;
    std::uint64_t failures = 0;
  };

  /// The per-type metric names, built once per type on first use so the
  /// hot path never concatenates strings ("rpc.<type>.sent" et al.).
  struct TypeMetricNames {
    std::string sent, retries, timeouts, completed, failed, spuriousTimeouts;
    std::string rttMs, rttSamples, rttSrtt, rttRttvar, rttTimeout;
  };

  void handleMessage(sim::NodeAddr from, const sim::Message& msg);
  void handleReply(sim::NodeAddr from, const sim::Message& msg);
  void transmit(sim::NodeAddr to, sim::MessageType type, const util::Bytes& frame,
                RpcId id, std::size_t attempt, sim::SimTime timeout,
                const RetryPolicy& retry, bool adaptive);
  void finish(RpcId id, bool ok, util::BytesView payload);
  TypeMetricNames& metricNames(sim::MessageType type);
  void bump(sim::MessageType type, std::string TypeMetricNames::* event);
  void observeOutcome(bool timedOut);
  /// Feeds a Karn-valid sample to `peer`'s estimator and exports the
  /// rpc.rtt.<type>.{srtt,rttvar,timeout} gauges + sample counter.
  void recordRttSample(sim::NodeAddr peer, sim::MessageType type,
                       sim::SimTime rtt);

  sim::Network& network_;
  std::string statsPrefix_;
  std::string statsRetry_, statsFail_, statsOrphan_;  // "<prefix>.<event>"
  sim::NodeAddr addr_;
  std::uint64_t statusToken_ = 0;
  std::shared_ptr<State> state_;
  std::uint32_t nextCallId_ = 1;
  AdaptiveRetryPolicy* adaptive_ = nullptr;
  PeerStateTable peers_;
  bool trackSpurious_ = false;
  // Dispatch tables keyed by interned id; handler lists are deques so a
  // handler registering further handlers never invalidates the one running.
  // Endpoints register a handful of types, so lookup is a linear scan.
  std::deque<std::pair<sim::MessageTypeId, RequestHandler>> requestHandlers_;
  std::deque<std::pair<sim::MessageTypeId, MessageHandler>> messageHandlers_;
  std::deque<std::pair<sim::MessageTypeId, ReplyObserver>> replyObservers_;
  std::vector<sim::MessageTypeId> replyChannels_;
  std::vector<std::unique_ptr<TypeMetricNames>> typeMetricNames_;  // by id
};

}  // namespace dosn::net
