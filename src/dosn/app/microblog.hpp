// A decentralized microblogging service (Fethr [21] / Cuckoo [22] style) that
// ties the whole stack together: publishers keep hash-chained, ACL-encrypted
// timelines whose entries are stored in the Kademlia DHT; followers fetch a
// publisher's signed head record, walk the chain, verify every signature and
// decrypt what their circle membership allows.
//
// DHT layout (all values are replica-visible ciphertext/marshalled bytes):
//   mb:<user>:head      -> signed HeadRecord{length, headHash}
//   mb:<user>:<seq>     -> TimelineRecord{ChainEntry, Envelope}
//
// Trust model: replicas are untrusted. Content integrity and order are
// protected by the chain + signatures; confidentiality by the ACL envelope.
// A malicious replica can at worst serve a stale (shorter) but internally
// valid prefix — the §IV-B freshness limitation the fork-consistency
// machinery addresses at the provider level.
#pragma once

#include <functional>
#include <optional>

#include "dosn/integrity/hash_chain.hpp"
#include "dosn/overlay/kademlia.hpp"
#include "dosn/privacy/access_controller.hpp"
#include "dosn/social/content.hpp"
#include "dosn/store/cache_store.hpp"

namespace dosn::app {

using privacy::AccessController;
using social::UserId;

/// The publisher-signed head pointer for a timeline.
struct HeadRecord {
  std::uint64_t length = 0;
  crypto::Digest headHash{};
  pkcrypto::SchnorrSignature signature;

  util::Bytes signedBytes() const;
  util::Bytes serialize() const;
  static std::optional<HeadRecord> deserialize(util::BytesView data);
};

/// One stored timeline slot: the chain entry plus the encrypted post.
struct TimelineRecord {
  integrity::ChainEntry entry;
  privacy::Envelope envelope;

  util::Bytes serialize() const;
  static std::optional<TimelineRecord> deserialize(util::BytesView data);
};

/// A fetched, verified, decrypted view of someone's timeline.
struct FetchedTimeline {
  bool chainValid = false;          // signatures + hash chain verified
  bool headValid = false;           // head record signature verified
  std::vector<social::Post> posts;  // the posts this reader could decrypt
  std::size_t undecryptable = 0;    // entries the reader had no access to
};

/// One-hop friend-cache tier (DESIGN.md §3f): followers opportunistically
/// cache the timeline records they fetch in a bounded CacheStore, answer
/// `mb.cache.get` probes from friends, and resolve entry fetches
/// cache-first — local cache, then up to `fanout` friend caches (the
/// author's own node first), then the DHT. The signed head record is NEVER
/// cached: it is the freshness anchor, so a stale cached entry is caught by
/// chain/head verification, invalidated, and re-fetched from the DHT.
struct FriendCacheConfig {
  bool enabled = false;
  std::size_t capacityBlocks = 256;
  std::size_t capacityBytes = 256 * 1024;
  /// Remote friend caches probed per entry before falling back to the DHT.
  std::size_t fanout = 2;
  /// Single-shot timeout per cache probe (no retries — the DHT is the
  /// fallback, not a retransmission).
  sim::SimTime rpcTimeout = 200 * sim::kMillisecond;
};

/// Fetch-side traffic accounting, kept per node so benches can compare
/// social/cached vs vanilla configurations without touching the shared
/// metrics surface: `hops` counts DHT query rounds plus one hop per remote
/// cache hit (a local hit is free).
struct FetchStats {
  std::uint64_t lookups = 0;            // DHT value lookups issued
  std::uint64_t hops = 0;
  std::uint64_t cacheLocalHits = 0;
  std::uint64_t cacheRemoteHits = 0;
  std::uint64_t cacheMisses = 0;        // fell through to the DHT
  std::uint64_t cacheInvalidations = 0; // stale cache detected + flushed
};

class MicroblogNode {
 public:
  /// The node owns its DHT presence; registry/ACL are shared infrastructure.
  MicroblogNode(sim::Network& network, overlay::OverlayId dhtId,
                const pkcrypto::DlogGroup& group, UserId user,
                social::IdentityRegistry& registry, AccessController& acl,
                util::Rng& rng, overlay::KademliaConfig dhtConfig = {},
                FriendCacheConfig cacheConfig = {});

  const UserId& user() const { return keyring_.user; }
  overlay::KademliaNode& dht() { return dht_; }

  /// This node's DHT block store (DESIGN.md §3e). Records this node holds as
  /// a *replica host* for others live here; pass a
  /// `KademliaConfig::makeStore` factory at construction to run a durable /
  /// encrypting stack (e.g. Crypt(Cache(Async(File))) via store::makeStack)
  /// instead of the default in-memory backend.
  store::BlockStore& blockStore() { return dht_.blockStore(); }
  const store::BlockStore& blockStore() const { return dht_.localStore(); }

  // DHT RPC robustness stats, surfaced so the fault/churn benches can report
  // per-node retry spend without reaching through dht().
  std::uint64_t dhtRpcRetries() const { return dht_.rpcRetries(); }
  std::uint64_t dhtRpcFailures() const { return dht_.rpcFailures(); }

  /// Joins the DHT through a seed contact.
  void join(const overlay::Contact& seed, std::function<void()> done = {});

  // Circle management (namespaced like DosnNode).
  std::string circleId(const std::string& circle) const;
  void createCircle(const std::string& circle);
  void addToCircle(const std::string& circle, const UserId& member);

  /// Encrypts, chains, and stores a post in the DHT; updates the signed head.
  /// `done(ok)` fires when both stores complete.
  void publish(const std::string& circle, const std::string& text,
               social::Timestamp now, util::Rng& rng,
               std::function<void(bool ok)> done = {});

  /// Fetches and verifies `author`'s full timeline from the DHT, decrypting
  /// as this node's user.
  void fetchTimeline(const UserId& author,
                     std::function<void(FetchedTimeline)> done);

  std::size_t publishedCount() const { return timeline_.size(); }

  // --- friend-cache tier (no-ops unless FriendCacheConfig::enabled) ---

  /// Registers a friend's node as a cache peer; `user`'s records may be
  /// probed there. Fetches of `user`'s timeline try that user's own entry
  /// first, then other registered peers, up to the configured fanout.
  void addFriendPeer(const UserId& user, sim::NodeAddr addr);

  /// The bounded friend cache, or nullptr when the tier is disabled.
  const store::CacheStore* friendCache() const { return friendCache_.get(); }

  /// Per-node fetch traffic accounting (see FetchStats).
  const FetchStats& fetchStats() const { return fetchStats_; }

  static overlay::OverlayId headKey(const UserId& user);
  static overlay::OverlayId entryKey(const UserId& user, std::uint64_t seq);

 private:
  struct FetchState;
  void fetchEntries(const std::shared_ptr<FetchState>& state);
  void fetchRecord(const std::shared_ptr<FetchState>& state, std::uint64_t seq);
  void tryRemoteCache(const std::shared_ptr<FetchState>& state,
                      std::uint64_t seq, const overlay::OverlayId& key,
                      std::shared_ptr<std::vector<sim::NodeAddr>> peers,
                      std::size_t index);
  void dhtFetch(const std::shared_ptr<FetchState>& state, std::uint64_t seq,
                const overlay::OverlayId& key);
  void finishFetch(const std::shared_ptr<FetchState>& state);
  void failFetch(const std::shared_ptr<FetchState>& state, FetchedTimeline out);
  void cachePut(const overlay::OverlayId& id, util::BytesView data);
  std::vector<sim::NodeAddr> cachePeersFor(const UserId& author) const;

  const pkcrypto::DlogGroup& group_;
  social::IdentityRegistry& registry_;
  AccessController& acl_;
  social::Keyring keyring_;
  integrity::Timeline timeline_;
  overlay::KademliaNode dht_;
  std::vector<privacy::Envelope> envelopes_;  // local copies, by seq
  social::PostId nextPostId_ = 1;
  util::Rng& rng_;
  FriendCacheConfig cacheConfig_;
  std::unique_ptr<store::CacheStore> friendCache_;  // null when disabled
  std::vector<std::pair<UserId, sim::NodeAddr>> friendPeers_;  // insert order
  FetchStats fetchStats_;
};

}  // namespace dosn::app
