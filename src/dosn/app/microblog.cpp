#include "dosn/app/microblog.hpp"

#include <algorithm>
#include <set>

#include "dosn/store/memory_store.hpp"
#include "dosn/util/codec.hpp"
#include "dosn/util/error.hpp"

namespace dosn::app {

namespace {

// Friend-cache probe protocol, answered on the node's existing DHT endpoint
// (no extra network node, so the disabled-tier path stays byte-identical):
//   mb.cache.get {rpcId, key} -> mb.cache.value {rpcId, found, value}
const sim::MessageType kMsgCacheGet("mb.cache.get");
const sim::MessageType kMsgCacheValue("mb.cache.value");

}  // namespace

util::Bytes HeadRecord::signedBytes() const {
  util::Writer w;
  w.u64(length);
  w.raw(util::BytesView(headHash));
  return w.take();
}

util::Bytes HeadRecord::serialize() const {
  util::Writer w;
  w.u64(length);
  w.raw(util::BytesView(headHash));
  w.bytes(signature.serialize());
  return w.take();
}

std::optional<HeadRecord> HeadRecord::deserialize(util::BytesView data) {
  try {
    util::Reader r(data);
    HeadRecord record;
    record.length = r.u64();
    const util::Bytes hash = r.raw(crypto::kSha256DigestSize);
    std::copy(hash.begin(), hash.end(), record.headHash.begin());
    const auto sig = pkcrypto::SchnorrSignature::deserialize(r.bytes());
    if (!sig) return std::nullopt;
    record.signature = *sig;
    r.expectEnd();
    return record;
  } catch (const util::CodecError&) {
    return std::nullopt;
  }
}

util::Bytes TimelineRecord::serialize() const {
  util::Writer w;
  w.bytes(entry.serialize());
  w.str(envelope.scheme);
  w.str(envelope.group);
  w.u64(envelope.serial);
  w.bytes(envelope.blob);
  return w.take();
}

std::optional<TimelineRecord> TimelineRecord::deserialize(util::BytesView data) {
  try {
    util::Reader r(data);
    TimelineRecord record;
    const auto entry = integrity::ChainEntry::deserialize(r.bytes());
    if (!entry) return std::nullopt;
    record.entry = *entry;
    record.envelope.scheme = r.str();
    record.envelope.group = r.str();
    record.envelope.serial = r.u64();
    record.envelope.blob = r.bytes();
    r.expectEnd();
    return record;
  } catch (const util::CodecError&) {
    return std::nullopt;
  }
}

overlay::OverlayId MicroblogNode::headKey(const UserId& user) {
  return overlay::OverlayId::hash("mb:" + user + ":head");
}

overlay::OverlayId MicroblogNode::entryKey(const UserId& user,
                                           std::uint64_t seq) {
  return overlay::OverlayId::hash("mb:" + user + ":" + std::to_string(seq));
}

MicroblogNode::MicroblogNode(sim::Network& network, overlay::OverlayId dhtId,
                             const pkcrypto::DlogGroup& group, UserId user,
                             social::IdentityRegistry& registry,
                             AccessController& acl, util::Rng& rng,
                             overlay::KademliaConfig dhtConfig,
                             FriendCacheConfig cacheConfig)
    : group_(group),
      registry_(registry),
      acl_(acl),
      keyring_(social::createKeyring(group, std::move(user), rng)),
      timeline_(group, keyring_),
      dht_(network, dhtId, dhtConfig),
      rng_(rng),
      cacheConfig_(cacheConfig) {
  registry_.registerIdentity(social::publicIdentity(keyring_));
  if (cacheConfig_.enabled) {
    friendCache_ = std::make_unique<store::CacheStore>(
        std::make_unique<store::MemoryStore>(), cacheConfig_.capacityBlocks,
        cacheConfig_.capacityBytes);
    dht_.endpoint().addReplyChannel(kMsgCacheValue);
    dht_.endpoint().onRequest(
        kMsgCacheGet,
        [this](sim::NodeAddr from, util::BytesView body, net::RpcId reqId) {
          util::Reader r(body);
          const util::Bytes raw = r.raw(overlay::kIdBytes);
          overlay::OverlayId key;
          std::copy(raw.begin(), raw.end(), key.bytes.begin());
          util::Writer w;
          const auto value = friendCache_->get(key);
          if (value) {
            w.boolean(true);
            w.bytes(*value);
          } else {
            w.boolean(false);
          }
          dht_.endpoint().reply(from, kMsgCacheValue, reqId, w.buffer());
        });
  }
}

void MicroblogNode::addFriendPeer(const UserId& user, sim::NodeAddr addr) {
  for (auto& [peer, peerAddr] : friendPeers_) {
    if (peer == user) {
      peerAddr = addr;
      return;
    }
  }
  friendPeers_.emplace_back(user, addr);
}

void MicroblogNode::cachePut(const overlay::OverlayId& id,
                             util::BytesView data) {
  friendCache_->put(id, data);
  // CacheStore is a write-through decorator: evicted blocks survive in the
  // inner MemoryStore, which would grow without bound. Prune everything the
  // cache no longer tracks so the friend tier honors its capacity.
  const auto cached = friendCache_->cachedIds();
  const std::set<store::BlockId> keep(cached.begin(), cached.end());
  for (const store::BlockId& stored : friendCache_->list()) {
    if (!keep.count(stored)) friendCache_->erase(stored);
  }
}

std::vector<sim::NodeAddr> MicroblogNode::cachePeersFor(
    const UserId& author) const {
  // The author's own node first — it seeds its cache at publish time, so a
  // single probe there resolves a cold fetch in one hop; other registered
  // friends follow in registration order, capped at the configured fanout.
  std::vector<sim::NodeAddr> peers;
  for (const auto& [peer, addr] : friendPeers_) {
    if (peer == author) peers.push_back(addr);
  }
  for (const auto& [peer, addr] : friendPeers_) {
    if (peers.size() >= cacheConfig_.fanout) break;
    if (peer == author) continue;
    peers.push_back(addr);
  }
  if (peers.size() > cacheConfig_.fanout) peers.resize(cacheConfig_.fanout);
  return peers;
}

void MicroblogNode::join(const overlay::Contact& seed,
                         std::function<void()> done) {
  dht_.bootstrap(seed, std::move(done));
}

std::string MicroblogNode::circleId(const std::string& circle) const {
  return keyring_.user + "/" + circle;
}

void MicroblogNode::createCircle(const std::string& circle) {
  acl_.createGroup(circleId(circle));
  acl_.addMember(circleId(circle), keyring_.user);
}

void MicroblogNode::addToCircle(const std::string& circle,
                                const UserId& member) {
  acl_.addMember(circleId(circle), member);
}

void MicroblogNode::publish(const std::string& circle, const std::string& text,
                            social::Timestamp now, util::Rng& rng,
                            std::function<void(bool)> done) {
  social::Post post;
  post.author = keyring_.user;
  post.id = nextPostId_++;
  post.created = now;
  post.text = text;

  TimelineRecord record;
  record.envelope = acl_.encrypt(circleId(circle), post.serialize(), rng);
  // The chain entry commits to the stored ciphertext, binding order and
  // content even though replicas only ever see the envelope.
  record.entry =
      timeline_.append(crypto::sha256Bytes(record.envelope.blob), rng);
  envelopes_.push_back(record.envelope);
  const std::uint64_t seq = timeline_.size() - 1;

  HeadRecord head;
  head.length = timeline_.size();
  head.headHash = timeline_.head();
  head.signature =
      pkcrypto::schnorrSign(group_, keyring_.signing, head.signedBytes(), rng);

  // Seed the publisher's own friend cache: followers probing the author
  // resolve a cold fetch in one hop instead of a full DHT lookup. The head
  // is deliberately not seeded — it stays a DHT-only freshness anchor.
  if (friendCache_) {
    cachePut(entryKey(keyring_.user, seq), record.serialize());
  }

  // Store the entry, then the head (owner-attributed, so a socially-aware
  // placement policy can rank the store targets; with no policy configured
  // this is the classic store()).
  auto shared = std::make_shared<std::pair<bool, bool>>(false, false);
  auto maybeDone = [shared, done]() {
    if (shared->first && shared->second && done) done(true);
  };
  dht_.storeAs(entryKey(keyring_.user, seq), record.serialize(), keyring_.user,
               [shared, maybeDone](bool) {
                 shared->first = true;
                 maybeDone();
               });
  dht_.storeAs(headKey(keyring_.user), head.serialize(), keyring_.user,
               [shared, maybeDone](bool) {
                 shared->second = true;
                 maybeDone();
               });
}

struct MicroblogNode::FetchState {
  UserId author;
  pkcrypto::SchnorrPublicKey authorKey;
  HeadRecord head;
  std::vector<std::optional<TimelineRecord>> records;
  std::size_t pending = 0;
  std::function<void(FetchedTimeline)> done;
  bool usedCache = false;   // any record came from a cache tier
  bool retried = false;     // one invalidate-and-refetch round already ran
  bool bypassCache = false; // retry round: resolve straight from the DHT
};

void MicroblogNode::fetchTimeline(const UserId& author,
                                  std::function<void(FetchedTimeline)> done) {
  const auto identity = registry_.lookup(author);
  if (!identity) {
    done(FetchedTimeline{});
    return;
  }
  auto state = std::make_shared<FetchState>();
  state->author = author;
  state->authorKey = identity->signingKey;
  state->done = std::move(done);

  ++fetchStats_.lookups;
  dht_.findValue(headKey(author), [this, state](overlay::LookupResult result) {
    fetchStats_.hops += result.hops;
    if (!result.value) {
      state->done(FetchedTimeline{});
      return;
    }
    const auto head = HeadRecord::deserialize(*result.value);
    if (!head || !pkcrypto::schnorrVerify(group_, state->authorKey,
                                          head->signedBytes(),
                                          head->signature)) {
      state->done(FetchedTimeline{});
      return;
    }
    state->head = *head;
    fetchEntries(state);
  });
}

void MicroblogNode::fetchEntries(const std::shared_ptr<FetchState>& state) {
  const std::size_t count = state->head.length;
  if (count == 0) {
    FetchedTimeline out;
    out.headValid = true;
    out.chainValid = true;
    state->done(std::move(out));
    return;
  }
  state->records.assign(count, std::nullopt);
  state->pending = count;
  for (std::uint64_t seq = 0; seq < count; ++seq) {
    fetchRecord(state, seq);
  }
}

void MicroblogNode::fetchRecord(const std::shared_ptr<FetchState>& state,
                                std::uint64_t seq) {
  const overlay::OverlayId key = entryKey(state->author, seq);
  if (friendCache_ && !state->bypassCache) {
    if (const auto cached = friendCache_->get(key)) {
      ++fetchStats_.cacheLocalHits;
      state->usedCache = true;
      state->records[seq] = TimelineRecord::deserialize(*cached);
      if (--state->pending == 0) finishFetch(state);
      return;
    }
    auto peers = std::make_shared<std::vector<sim::NodeAddr>>(
        cachePeersFor(state->author));
    if (!peers->empty()) {
      tryRemoteCache(state, seq, key, std::move(peers), 0);
      return;
    }
  }
  if (friendCache_ && !state->bypassCache) ++fetchStats_.cacheMisses;
  dhtFetch(state, seq, key);
}

void MicroblogNode::tryRemoteCache(
    const std::shared_ptr<FetchState>& state, std::uint64_t seq,
    const overlay::OverlayId& key,
    std::shared_ptr<std::vector<sim::NodeAddr>> peers, std::size_t index) {
  if (index >= peers->size()) {
    ++fetchStats_.cacheMisses;
    dhtFetch(state, seq, key);
    return;
  }
  util::Writer body;
  body.raw(util::BytesView(key.bytes));
  net::CallOptions options;
  options.timeout = cacheConfig_.rpcTimeout;
  const sim::NodeAddr peer = (*peers)[index];
  dht_.endpoint().call(
      peer, kMsgCacheGet, body.buffer(), options,
      [this, state, seq, key, peers = std::move(peers), index](
          bool ok, util::BytesView reply) mutable {
        if (ok) {
          try {
            util::Reader r(reply);
            if (r.boolean()) {
              const util::Bytes value = r.bytes();
              ++fetchStats_.cacheRemoteHits;
              ++fetchStats_.hops;  // one hop to the friend's cache
              state->usedCache = true;
              cachePut(key, value);
              state->records[seq] = TimelineRecord::deserialize(value);
              if (--state->pending == 0) finishFetch(state);
              return;
            }
          } catch (const util::CodecError&) {
            // corrupted probe reply: treat as a miss at this peer
          }
        }
        tryRemoteCache(state, seq, key, std::move(peers), index + 1);
      });
}

void MicroblogNode::dhtFetch(const std::shared_ptr<FetchState>& state,
                             std::uint64_t seq, const overlay::OverlayId& key) {
  ++fetchStats_.lookups;
  dht_.findValue(key, [this, state, seq, key](overlay::LookupResult result) {
    fetchStats_.hops += result.hops;
    if (result.value) {
      if (friendCache_) cachePut(key, *result.value);
      state->records[seq] = TimelineRecord::deserialize(*result.value);
    }
    if (--state->pending == 0) finishFetch(state);
  });
}

void MicroblogNode::finishFetch(const std::shared_ptr<FetchState>& state) {
  FetchedTimeline out;
  out.headValid = true;

  // Assemble and verify the chain. Any failure routes through failFetch:
  // when a cache tier contributed records, the cached copies may simply be
  // stale (the author overwrote the timeline since they were cached) — the
  // cache is invalidated and the fetch retried once straight from the DHT.
  std::vector<integrity::ChainEntry> entries;
  for (const auto& record : state->records) {
    if (!record) {
      failFetch(state, std::move(out));  // missing entry: chain invalid
      return;
    }
    entries.push_back(record->entry);
  }
  // verifyChain checks the whole fetched page's signatures in one
  // schnorrVerifyBatch call (single-author pages amortize the author-key
  // subgroup check and fixed-base table across every entry).
  if (!integrity::verifyChain(group_, state->authorKey, entries)) {
    failFetch(state, std::move(out));
    return;
  }
  // The signed head must match the reconstructed chain's head.
  if (entries.back().entryHash() != state->head.headHash) {
    failFetch(state, std::move(out));
    return;
  }
  // Each chain entry must commit to its envelope (payload = H(envelope)).
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].payload !=
        crypto::sha256Bytes((*state->records[i]).envelope.blob)) {
      failFetch(state, std::move(out));
      return;
    }
  }
  out.chainValid = true;

  // Decrypt what we can.
  for (const auto& record : state->records) {
    const auto plain = acl_.decrypt(keyring_.user, record->envelope);
    if (!plain) {
      ++out.undecryptable;
      continue;
    }
    const auto post = social::Post::deserialize(*plain);
    if (post) {
      out.posts.push_back(*post);
    } else {
      ++out.undecryptable;
    }
  }
  state->done(std::move(out));
}

void MicroblogNode::failFetch(const std::shared_ptr<FetchState>& state,
                              FetchedTimeline out) {
  if (friendCache_ && state->usedCache && !state->retried) {
    // Coherence: the freshly fetched (never cached) head disagreed with
    // cache-served records. Drop the author's cached entries and re-resolve
    // the whole timeline from the DHT, once.
    ++fetchStats_.cacheInvalidations;
    for (std::uint64_t seq = 0; seq < state->head.length; ++seq) {
      friendCache_->erase(entryKey(state->author, seq));
    }
    state->retried = true;
    state->bypassCache = true;
    state->usedCache = false;
    fetchEntries(state);
    return;
  }
  state->done(std::move(out));
}

}  // namespace dosn::app
