#include "dosn/app/microblog.hpp"

#include "dosn/util/codec.hpp"
#include "dosn/util/error.hpp"

namespace dosn::app {

util::Bytes HeadRecord::signedBytes() const {
  util::Writer w;
  w.u64(length);
  w.raw(util::BytesView(headHash));
  return w.take();
}

util::Bytes HeadRecord::serialize() const {
  util::Writer w;
  w.u64(length);
  w.raw(util::BytesView(headHash));
  w.bytes(signature.serialize());
  return w.take();
}

std::optional<HeadRecord> HeadRecord::deserialize(util::BytesView data) {
  try {
    util::Reader r(data);
    HeadRecord record;
    record.length = r.u64();
    const util::Bytes hash = r.raw(crypto::kSha256DigestSize);
    std::copy(hash.begin(), hash.end(), record.headHash.begin());
    const auto sig = pkcrypto::SchnorrSignature::deserialize(r.bytes());
    if (!sig) return std::nullopt;
    record.signature = *sig;
    r.expectEnd();
    return record;
  } catch (const util::CodecError&) {
    return std::nullopt;
  }
}

util::Bytes TimelineRecord::serialize() const {
  util::Writer w;
  w.bytes(entry.serialize());
  w.str(envelope.scheme);
  w.str(envelope.group);
  w.u64(envelope.serial);
  w.bytes(envelope.blob);
  return w.take();
}

std::optional<TimelineRecord> TimelineRecord::deserialize(util::BytesView data) {
  try {
    util::Reader r(data);
    TimelineRecord record;
    const auto entry = integrity::ChainEntry::deserialize(r.bytes());
    if (!entry) return std::nullopt;
    record.entry = *entry;
    record.envelope.scheme = r.str();
    record.envelope.group = r.str();
    record.envelope.serial = r.u64();
    record.envelope.blob = r.bytes();
    r.expectEnd();
    return record;
  } catch (const util::CodecError&) {
    return std::nullopt;
  }
}

overlay::OverlayId MicroblogNode::headKey(const UserId& user) {
  return overlay::OverlayId::hash("mb:" + user + ":head");
}

overlay::OverlayId MicroblogNode::entryKey(const UserId& user,
                                           std::uint64_t seq) {
  return overlay::OverlayId::hash("mb:" + user + ":" + std::to_string(seq));
}

MicroblogNode::MicroblogNode(sim::Network& network, overlay::OverlayId dhtId,
                             const pkcrypto::DlogGroup& group, UserId user,
                             social::IdentityRegistry& registry,
                             AccessController& acl, util::Rng& rng,
                             overlay::KademliaConfig dhtConfig)
    : group_(group),
      registry_(registry),
      acl_(acl),
      keyring_(social::createKeyring(group, std::move(user), rng)),
      timeline_(group, keyring_),
      dht_(network, dhtId, dhtConfig),
      rng_(rng) {
  registry_.registerIdentity(social::publicIdentity(keyring_));
}

void MicroblogNode::join(const overlay::Contact& seed,
                         std::function<void()> done) {
  dht_.bootstrap(seed, std::move(done));
}

std::string MicroblogNode::circleId(const std::string& circle) const {
  return keyring_.user + "/" + circle;
}

void MicroblogNode::createCircle(const std::string& circle) {
  acl_.createGroup(circleId(circle));
  acl_.addMember(circleId(circle), keyring_.user);
}

void MicroblogNode::addToCircle(const std::string& circle,
                                const UserId& member) {
  acl_.addMember(circleId(circle), member);
}

void MicroblogNode::publish(const std::string& circle, const std::string& text,
                            social::Timestamp now, util::Rng& rng,
                            std::function<void(bool)> done) {
  social::Post post;
  post.author = keyring_.user;
  post.id = nextPostId_++;
  post.created = now;
  post.text = text;

  TimelineRecord record;
  record.envelope = acl_.encrypt(circleId(circle), post.serialize(), rng);
  // The chain entry commits to the stored ciphertext, binding order and
  // content even though replicas only ever see the envelope.
  record.entry =
      timeline_.append(crypto::sha256Bytes(record.envelope.blob), rng);
  envelopes_.push_back(record.envelope);
  const std::uint64_t seq = timeline_.size() - 1;

  HeadRecord head;
  head.length = timeline_.size();
  head.headHash = timeline_.head();
  head.signature =
      pkcrypto::schnorrSign(group_, keyring_.signing, head.signedBytes(), rng);

  // Store the entry, then the head.
  auto shared = std::make_shared<std::pair<bool, bool>>(false, false);
  auto maybeDone = [shared, done]() {
    if (shared->first && shared->second && done) done(true);
  };
  dht_.store(entryKey(keyring_.user, seq), record.serialize(),
             [shared, maybeDone](bool) {
               shared->first = true;
               maybeDone();
             });
  dht_.store(headKey(keyring_.user), head.serialize(),
             [shared, maybeDone](bool) {
               shared->second = true;
               maybeDone();
             });
}

struct MicroblogNode::FetchState {
  UserId author;
  pkcrypto::SchnorrPublicKey authorKey;
  HeadRecord head;
  std::vector<std::optional<TimelineRecord>> records;
  std::size_t pending = 0;
  std::function<void(FetchedTimeline)> done;
};

void MicroblogNode::fetchTimeline(const UserId& author,
                                  std::function<void(FetchedTimeline)> done) {
  const auto identity = registry_.lookup(author);
  if (!identity) {
    done(FetchedTimeline{});
    return;
  }
  auto state = std::make_shared<FetchState>();
  state->author = author;
  state->authorKey = identity->signingKey;
  state->done = std::move(done);

  dht_.findValue(headKey(author), [this, state](overlay::LookupResult result) {
    if (!result.value) {
      state->done(FetchedTimeline{});
      return;
    }
    const auto head = HeadRecord::deserialize(*result.value);
    if (!head || !pkcrypto::schnorrVerify(group_, state->authorKey,
                                          head->signedBytes(),
                                          head->signature)) {
      state->done(FetchedTimeline{});
      return;
    }
    state->head = *head;
    fetchEntries(state);
  });
}

void MicroblogNode::fetchEntries(const std::shared_ptr<FetchState>& state) {
  const std::size_t count = state->head.length;
  if (count == 0) {
    FetchedTimeline out;
    out.headValid = true;
    out.chainValid = true;
    state->done(std::move(out));
    return;
  }
  state->records.assign(count, std::nullopt);
  state->pending = count;
  for (std::uint64_t seq = 0; seq < count; ++seq) {
    dht_.findValue(entryKey(state->author, seq),
                   [this, state, seq](overlay::LookupResult result) {
                     if (result.value) {
                       state->records[seq] =
                           TimelineRecord::deserialize(*result.value);
                     }
                     if (--state->pending == 0) finishFetch(state);
                   });
  }
}

void MicroblogNode::finishFetch(const std::shared_ptr<FetchState>& state) {
  FetchedTimeline out;
  out.headValid = true;

  // Assemble and verify the chain.
  std::vector<integrity::ChainEntry> entries;
  for (const auto& record : state->records) {
    if (!record) {
      state->done(std::move(out));  // missing entry: chain invalid
      return;
    }
    entries.push_back(record->entry);
  }
  if (!integrity::verifyChain(group_, state->authorKey, entries)) {
    state->done(std::move(out));
    return;
  }
  // The signed head must match the reconstructed chain's head.
  if (entries.back().entryHash() != state->head.headHash) {
    state->done(std::move(out));
    return;
  }
  // Each chain entry must commit to its envelope (payload = H(envelope)).
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].payload !=
        crypto::sha256Bytes((*state->records[i]).envelope.blob)) {
      state->done(std::move(out));
      return;
    }
  }
  out.chainValid = true;

  // Decrypt what we can.
  for (const auto& record : state->records) {
    const auto plain = acl_.decrypt(keyring_.user, record->envelope);
    if (!plain) {
      ++out.undecryptable;
      continue;
    }
    const auto post = social::Post::deserialize(*plain);
    if (post) {
      out.posts.push_back(*post);
    } else {
      ++out.undecryptable;
    }
  }
  state->done(std::move(out));
}

}  // namespace dosn::app
