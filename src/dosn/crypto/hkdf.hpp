// HKDF-SHA256 (RFC 5869). Used everywhere a key must be derived from a shared
// secret: hybrid envelopes, IBBE identity keys, ABE share-wrapping, OPRF
// outputs.
#pragma once

#include "dosn/util/bytes.hpp"

namespace dosn::crypto {

/// HKDF-Extract: PRK = HMAC(salt, ikm).
util::Bytes hkdfExtract(util::BytesView salt, util::BytesView ikm);

/// HKDF-Expand: OKM of `length` bytes (length <= 255*32).
util::Bytes hkdfExpand(util::BytesView prk, util::BytesView info,
                       std::size_t length);

/// Extract-then-expand convenience.
util::Bytes hkdf(util::BytesView ikm, util::BytesView salt,
                 util::BytesView info, std::size_t length);

/// Derives a 32-byte key from a secret and a domain-separation label.
util::Bytes deriveKey(util::BytesView secret, std::string_view label);

}  // namespace dosn::crypto
