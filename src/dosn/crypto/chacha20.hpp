// ChaCha20 stream cipher (RFC 8439). The library's symmetric-key encryption
// primitive (paper §III-B): same key encrypts and decrypts.
#pragma once

#include <array>
#include <cstdint>

#include "dosn/util/bytes.hpp"

namespace dosn::crypto {

inline constexpr std::size_t kChaChaKeySize = 32;
inline constexpr std::size_t kChaChaNonceSize = 12;

/// XORs the keystream into `data` (encryption == decryption).
/// `counter` is the initial 32-bit block counter (RFC 8439 uses 1 for AEAD
/// payloads, 0 for the Poly1305 one-time key block).
util::Bytes chacha20Xor(util::BytesView key, util::BytesView nonce,
                        std::uint32_t counter, util::BytesView data);

/// Produces one 64-byte keystream block (used to derive Poly1305 keys).
std::array<std::uint8_t, 64> chacha20Block(util::BytesView key,
                                           util::BytesView nonce,
                                           std::uint32_t counter);

}  // namespace dosn::crypto
