#include "dosn/crypto/chacha20.hpp"

#include "dosn/util/error.hpp"

namespace dosn::crypto {

namespace {

std::uint32_t rotl(std::uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

void quarterRound(std::array<std::uint32_t, 16>& s, int a, int b, int c, int d) {
  s[a] += s[b];
  s[d] = rotl(s[d] ^ s[a], 16);
  s[c] += s[d];
  s[b] = rotl(s[b] ^ s[c], 12);
  s[a] += s[b];
  s[d] = rotl(s[d] ^ s[a], 8);
  s[c] += s[d];
  s[b] = rotl(s[b] ^ s[c], 7);
}

std::uint32_t load32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

std::array<std::uint8_t, 64> chacha20Block(util::BytesView key,
                                           util::BytesView nonce,
                                           std::uint32_t counter) {
  if (key.size() != kChaChaKeySize) {
    throw util::CryptoError("chacha20: key must be 32 bytes");
  }
  if (nonce.size() != kChaChaNonceSize) {
    throw util::CryptoError("chacha20: nonce must be 12 bytes");
  }
  std::array<std::uint32_t, 16> state = {
      0x61707865, 0x3320646e, 0x79622d32, 0x6b206574,
      load32(&key[0]),  load32(&key[4]),  load32(&key[8]),  load32(&key[12]),
      load32(&key[16]), load32(&key[20]), load32(&key[24]), load32(&key[28]),
      counter, load32(&nonce[0]), load32(&nonce[4]), load32(&nonce[8])};
  std::array<std::uint32_t, 16> working = state;
  for (int round = 0; round < 10; ++round) {
    quarterRound(working, 0, 4, 8, 12);
    quarterRound(working, 1, 5, 9, 13);
    quarterRound(working, 2, 6, 10, 14);
    quarterRound(working, 3, 7, 11, 15);
    quarterRound(working, 0, 5, 10, 15);
    quarterRound(working, 1, 6, 11, 12);
    quarterRound(working, 2, 7, 8, 13);
    quarterRound(working, 3, 4, 9, 14);
  }
  std::array<std::uint8_t, 64> out{};
  for (std::size_t i = 0; i < 16; ++i) {
    const std::uint32_t v = working[i] + state[i];
    out[4 * i + 0] = static_cast<std::uint8_t>(v);
    out[4 * i + 1] = static_cast<std::uint8_t>(v >> 8);
    out[4 * i + 2] = static_cast<std::uint8_t>(v >> 16);
    out[4 * i + 3] = static_cast<std::uint8_t>(v >> 24);
  }
  return out;
}

util::Bytes chacha20Xor(util::BytesView key, util::BytesView nonce,
                        std::uint32_t counter, util::BytesView data) {
  if (key.size() != kChaChaKeySize) {
    throw util::CryptoError("chacha20: key must be 32 bytes");
  }
  if (nonce.size() != kChaChaNonceSize) {
    throw util::CryptoError("chacha20: nonce must be 12 bytes");
  }
  util::Bytes out(data.begin(), data.end());
  std::size_t offset = 0;
  while (offset < out.size()) {
    const auto block = chacha20Block(key, nonce, counter++);
    const std::size_t take = std::min<std::size_t>(64, out.size() - offset);
    for (std::size_t i = 0; i < take; ++i) out[offset + i] ^= block[i];
    offset += take;
  }
  return out;
}

}  // namespace dosn::crypto
