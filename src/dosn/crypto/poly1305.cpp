#include "dosn/crypto/poly1305.hpp"

#include "dosn/util/error.hpp"

namespace dosn::crypto {

// 26-bit limb implementation (5 limbs represent a 130-bit accumulator).
PolyTag poly1305(util::BytesView key, util::BytesView message) {
  if (key.size() != kPolyKeySize) {
    throw util::CryptoError("poly1305: key must be 32 bytes");
  }
  auto load32 = [](const std::uint8_t* p) {
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
  };

  // r is clamped per the RFC.
  const std::uint32_t r0 = load32(&key[0]) & 0x3ffffff;
  const std::uint32_t r1 = (load32(&key[3]) >> 2) & 0x3ffff03;
  const std::uint32_t r2 = (load32(&key[6]) >> 4) & 0x3ffc0ff;
  const std::uint32_t r3 = (load32(&key[9]) >> 6) & 0x3f03fff;
  const std::uint32_t r4 = (load32(&key[12]) >> 8) & 0x00fffff;

  const std::uint32_t s1 = r1 * 5;
  const std::uint32_t s2 = r2 * 5;
  const std::uint32_t s3 = r3 * 5;
  const std::uint32_t s4 = r4 * 5;

  std::uint32_t h0 = 0, h1 = 0, h2 = 0, h3 = 0, h4 = 0;

  std::size_t offset = 0;
  const std::size_t len = message.size();
  while (offset < len) {
    const std::size_t take = std::min<std::size_t>(16, len - offset);
    std::array<std::uint8_t, 17> block{};
    for (std::size_t i = 0; i < take; ++i) block[i] = message[offset + i];
    block[take] = 1;  // the "high bit" pad byte

    h0 += (static_cast<std::uint32_t>(block[0]) |
           (static_cast<std::uint32_t>(block[1]) << 8) |
           (static_cast<std::uint32_t>(block[2]) << 16) |
           (static_cast<std::uint32_t>(block[3]) << 24)) & 0x3ffffff;
    h1 += ((static_cast<std::uint32_t>(block[3]) |
            (static_cast<std::uint32_t>(block[4]) << 8) |
            (static_cast<std::uint32_t>(block[5]) << 16) |
            (static_cast<std::uint32_t>(block[6]) << 24)) >> 2) & 0x3ffffff;
    h2 += ((static_cast<std::uint32_t>(block[6]) |
            (static_cast<std::uint32_t>(block[7]) << 8) |
            (static_cast<std::uint32_t>(block[8]) << 16) |
            (static_cast<std::uint32_t>(block[9]) << 24)) >> 4) & 0x3ffffff;
    h3 += ((static_cast<std::uint32_t>(block[9]) |
            (static_cast<std::uint32_t>(block[10]) << 8) |
            (static_cast<std::uint32_t>(block[11]) << 16) |
            (static_cast<std::uint32_t>(block[12]) << 24)) >> 6) & 0x3ffffff;
    h4 += ((static_cast<std::uint32_t>(block[12]) |
            (static_cast<std::uint32_t>(block[13]) << 8) |
            (static_cast<std::uint32_t>(block[14]) << 16) |
            (static_cast<std::uint32_t>(block[15]) << 24)) >> 8) |
          (static_cast<std::uint32_t>(block[16]) << 24);

    // h *= r (mod 2^130 - 5)
    const std::uint64_t d0 =
        static_cast<std::uint64_t>(h0) * r0 + static_cast<std::uint64_t>(h1) * s4 +
        static_cast<std::uint64_t>(h2) * s3 + static_cast<std::uint64_t>(h3) * s2 +
        static_cast<std::uint64_t>(h4) * s1;
    std::uint64_t d1 =
        static_cast<std::uint64_t>(h0) * r1 + static_cast<std::uint64_t>(h1) * r0 +
        static_cast<std::uint64_t>(h2) * s4 + static_cast<std::uint64_t>(h3) * s3 +
        static_cast<std::uint64_t>(h4) * s2;
    std::uint64_t d2 =
        static_cast<std::uint64_t>(h0) * r2 + static_cast<std::uint64_t>(h1) * r1 +
        static_cast<std::uint64_t>(h2) * r0 + static_cast<std::uint64_t>(h3) * s4 +
        static_cast<std::uint64_t>(h4) * s3;
    std::uint64_t d3 =
        static_cast<std::uint64_t>(h0) * r3 + static_cast<std::uint64_t>(h1) * r2 +
        static_cast<std::uint64_t>(h2) * r1 + static_cast<std::uint64_t>(h3) * r0 +
        static_cast<std::uint64_t>(h4) * s4;
    std::uint64_t d4 =
        static_cast<std::uint64_t>(h0) * r4 + static_cast<std::uint64_t>(h1) * r3 +
        static_cast<std::uint64_t>(h2) * r2 + static_cast<std::uint64_t>(h3) * r1 +
        static_cast<std::uint64_t>(h4) * r0;

    std::uint64_t carry = d0 >> 26;
    h0 = static_cast<std::uint32_t>(d0) & 0x3ffffff;
    d1 += carry;
    carry = d1 >> 26;
    h1 = static_cast<std::uint32_t>(d1) & 0x3ffffff;
    d2 += carry;
    carry = d2 >> 26;
    h2 = static_cast<std::uint32_t>(d2) & 0x3ffffff;
    d3 += carry;
    carry = d3 >> 26;
    h3 = static_cast<std::uint32_t>(d3) & 0x3ffffff;
    d4 += carry;
    carry = d4 >> 26;
    h4 = static_cast<std::uint32_t>(d4) & 0x3ffffff;
    h0 += static_cast<std::uint32_t>(carry) * 5;
    h1 += h0 >> 26;
    h0 &= 0x3ffffff;

    offset += take;
  }

  // Full carry propagation.
  std::uint32_t carry = h1 >> 26;
  h1 &= 0x3ffffff;
  h2 += carry;
  carry = h2 >> 26;
  h2 &= 0x3ffffff;
  h3 += carry;
  carry = h3 >> 26;
  h3 &= 0x3ffffff;
  h4 += carry;
  carry = h4 >> 26;
  h4 &= 0x3ffffff;
  h0 += carry * 5;
  carry = h0 >> 26;
  h0 &= 0x3ffffff;
  h1 += carry;

  // Compute h + -p to select h mod p.
  std::uint32_t g0 = h0 + 5;
  carry = g0 >> 26;
  g0 &= 0x3ffffff;
  std::uint32_t g1 = h1 + carry;
  carry = g1 >> 26;
  g1 &= 0x3ffffff;
  std::uint32_t g2 = h2 + carry;
  carry = g2 >> 26;
  g2 &= 0x3ffffff;
  std::uint32_t g3 = h3 + carry;
  carry = g3 >> 26;
  g3 &= 0x3ffffff;
  std::uint32_t g4 = h4 + carry - (1u << 26);

  const std::uint32_t mask = (g4 >> 31) - 1;  // all-ones if h >= p
  h0 = (h0 & ~mask) | (g0 & mask);
  h1 = (h1 & ~mask) | (g1 & mask);
  h2 = (h2 & ~mask) | (g2 & mask);
  h3 = (h3 & ~mask) | (g3 & mask);
  h4 = (h4 & ~mask) | (g4 & mask);

  // Serialize h as 128 bits and add s (second half of the key).
  auto load32k = [&](std::size_t i) {
    return static_cast<std::uint64_t>(key[16 + i]) |
           (static_cast<std::uint64_t>(key[17 + i]) << 8) |
           (static_cast<std::uint64_t>(key[18 + i]) << 16) |
           (static_cast<std::uint64_t>(key[19 + i]) << 24);
  };
  std::uint64_t f0 = (static_cast<std::uint64_t>(h0) |
                      (static_cast<std::uint64_t>(h1) << 26)) & 0xffffffff;
  std::uint64_t f1 = ((static_cast<std::uint64_t>(h1) >> 6) |
                      (static_cast<std::uint64_t>(h2) << 20)) & 0xffffffff;
  std::uint64_t f2 = ((static_cast<std::uint64_t>(h2) >> 12) |
                      (static_cast<std::uint64_t>(h3) << 14)) & 0xffffffff;
  std::uint64_t f3 = ((static_cast<std::uint64_t>(h3) >> 18) |
                      (static_cast<std::uint64_t>(h4) << 8)) & 0xffffffff;

  f0 += load32k(0);
  f1 += load32k(4) + (f0 >> 32);
  f2 += load32k(8) + (f1 >> 32);
  f3 += load32k(12) + (f2 >> 32);

  PolyTag tag{};
  const std::array<std::uint64_t, 4> fs = {f0, f1, f2, f3};
  for (std::size_t w = 0; w < 4; ++w) {
    for (std::size_t b = 0; b < 4; ++b) {
      tag[4 * w + b] = static_cast<std::uint8_t>(fs[w] >> (8 * b));
    }
  }
  return tag;
}

}  // namespace dosn::crypto
