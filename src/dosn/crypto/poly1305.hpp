// Poly1305 one-time authenticator (RFC 8439).
#pragma once

#include <array>
#include <cstdint>

#include "dosn/util/bytes.hpp"

namespace dosn::crypto {

inline constexpr std::size_t kPolyKeySize = 32;
inline constexpr std::size_t kPolyTagSize = 16;

using PolyTag = std::array<std::uint8_t, kPolyTagSize>;

/// Computes the Poly1305 tag of `message` under a 32-byte one-time key.
PolyTag poly1305(util::BytesView key, util::BytesView message);

}  // namespace dosn::crypto
