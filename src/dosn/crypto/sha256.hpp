// SHA-256 (FIPS 180-4), streaming and one-shot.
//
// Simulation-grade crypto notice: this is a from-scratch reproduction
// implementation — unaudited and not constant-time. Do not protect real data
// with it. (Applies to every header in dosn/crypto and dosn/pkcrypto.)
#pragma once

#include <array>
#include <cstdint>

#include "dosn/util/bytes.hpp"

namespace dosn::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;

using Digest = std::array<std::uint8_t, kSha256DigestSize>;

class Sha256 {
 public:
  Sha256();

  /// Absorbs more input.
  Sha256& update(util::BytesView data);

  /// Finalizes and returns the digest. The object must not be reused after.
  Digest finish();

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t bufferLen_ = 0;
  std::uint64_t totalLen_ = 0;
  bool finished_ = false;
};

/// One-shot convenience.
Digest sha256(util::BytesView data);

/// One-shot returning an owning buffer (handy for codec APIs).
util::Bytes sha256Bytes(util::BytesView data);

/// Digest -> Bytes conversion.
util::Bytes digestToBytes(const Digest& d);

}  // namespace dosn::crypto
