#include "dosn/crypto/aead.hpp"

#include "dosn/crypto/chacha20.hpp"
#include "dosn/crypto/poly1305.hpp"
#include "dosn/util/error.hpp"

namespace dosn::crypto {

namespace {

// Poly1305 input per RFC 8439: aad || pad16 || ct || pad16 || len(aad) || len(ct).
util::Bytes macInput(util::BytesView aad, util::BytesView ciphertext) {
  util::Bytes input(aad.begin(), aad.end());
  input.resize((input.size() + 15) / 16 * 16, 0);
  input.insert(input.end(), ciphertext.begin(), ciphertext.end());
  input.resize((input.size() + 15) / 16 * 16, 0);
  auto appendLen = [&input](std::uint64_t n) {
    for (int i = 0; i < 8; ++i) input.push_back(static_cast<std::uint8_t>(n >> (8 * i)));
  };
  appendLen(aad.size());
  appendLen(ciphertext.size());
  return input;
}

util::Bytes oneTimeKey(util::BytesView key, util::BytesView nonce) {
  const auto block = chacha20Block(key, nonce, 0);
  return util::Bytes(block.begin(), block.begin() + 32);
}

}  // namespace

util::Bytes aeadSeal(util::BytesView key, util::BytesView nonce,
                     util::BytesView plaintext, util::BytesView aad) {
  util::Bytes ciphertext = chacha20Xor(key, nonce, 1, plaintext);
  const util::Bytes otk = oneTimeKey(key, nonce);
  const PolyTag tag = poly1305(otk, macInput(aad, ciphertext));
  ciphertext.insert(ciphertext.end(), tag.begin(), tag.end());
  return ciphertext;
}

std::optional<util::Bytes> aeadOpen(util::BytesView key, util::BytesView nonce,
                                    util::BytesView sealed,
                                    util::BytesView aad) {
  if (sealed.size() < kPolyTagSize) return std::nullopt;
  const util::BytesView ciphertext = sealed.first(sealed.size() - kPolyTagSize);
  const util::BytesView tag = sealed.last(kPolyTagSize);
  const util::Bytes otk = oneTimeKey(key, nonce);
  const PolyTag expected = poly1305(otk, macInput(aad, ciphertext));
  if (!util::constantTimeEqual(util::BytesView(expected), tag)) return std::nullopt;
  return chacha20Xor(key, nonce, 1, ciphertext);
}

util::Bytes sealWithNonce(util::BytesView key, util::BytesView plaintext,
                          util::Rng& rng, util::BytesView aad) {
  util::Bytes nonce = rng.bytes(kChaChaNonceSize);
  util::Bytes sealed = aeadSeal(key, nonce, plaintext, aad);
  nonce.insert(nonce.end(), sealed.begin(), sealed.end());
  return nonce;
}

std::optional<util::Bytes> openWithNonce(util::BytesView key,
                                         util::BytesView box,
                                         util::BytesView aad) {
  if (box.size() < kChaChaNonceSize + kPolyTagSize) return std::nullopt;
  return aeadOpen(key, box.first(kChaChaNonceSize),
                  box.subspan(kChaChaNonceSize), aad);
}

}  // namespace dosn::crypto
