// HMAC-SHA256 (RFC 2104) and the PRF abstraction the paper's §III-F uses:
// Hummingbird derives message keys by applying "a combination of a PRF and a
// hash function" to a message part — prf() here is that PRF family f_s(x).
#pragma once

#include "dosn/crypto/sha256.hpp"
#include "dosn/util/bytes.hpp"

namespace dosn::crypto {

/// HMAC-SHA256 over the message with the given key (any key length).
Digest hmacSha256(util::BytesView key, util::BytesView message);

/// Convenience returning an owning buffer.
util::Bytes hmacSha256Bytes(util::BytesView key, util::BytesView message);

/// The PRF family f_s(x) used throughout the library (instantiated as
/// HMAC-SHA256). `secret` is s, `input` is x.
util::Bytes prf(util::BytesView secret, util::BytesView input);

/// Verifies a MAC in constant time.
bool verifyHmacSha256(util::BytesView key, util::BytesView message,
                      util::BytesView tag);

}  // namespace dosn::crypto
