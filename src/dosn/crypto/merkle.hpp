// Binary Merkle tree with membership proofs. Substrate for the persistent
// authenticated dictionary (Frientegrity ACLs, paper §III-F) and the object
// history tree (paper §IV-B).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dosn/crypto/sha256.hpp"
#include "dosn/util/bytes.hpp"

namespace dosn::crypto {

/// One step of a Merkle authentication path.
struct MerkleStep {
  Digest sibling{};
  bool siblingOnLeft = false;
};

using MerkleProof = std::vector<MerkleStep>;

/// Domain-separated hashing so leaves can't be confused with inner nodes.
Digest merkleLeafHash(util::BytesView leaf);
Digest merkleNodeHash(const Digest& left, const Digest& right);

/// Merkle tree over a fixed list of leaves (odd levels duplicate the last
/// node, Bitcoin-style).
class MerkleTree {
 public:
  explicit MerkleTree(const std::vector<util::Bytes>& leaves);

  const Digest& root() const { return root_; }
  std::size_t leafCount() const { return leafCount_; }

  /// Authentication path for the leaf at `index`.
  MerkleProof prove(std::size_t index) const;

 private:
  std::vector<std::vector<Digest>> levels_;  // levels_[0] = leaf hashes
  Digest root_{};
  std::size_t leafCount_ = 0;
};

/// Verifies a membership proof against a root.
bool merkleVerify(const Digest& root, util::BytesView leaf,
                  const MerkleProof& proof);

}  // namespace dosn::crypto
