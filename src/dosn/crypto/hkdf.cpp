#include "dosn/crypto/hkdf.hpp"

#include "dosn/crypto/hmac.hpp"
#include "dosn/util/error.hpp"

namespace dosn::crypto {

util::Bytes hkdfExtract(util::BytesView salt, util::BytesView ikm) {
  return hmacSha256Bytes(salt, ikm);
}

util::Bytes hkdfExpand(util::BytesView prk, util::BytesView info,
                       std::size_t length) {
  if (length > 255 * kSha256DigestSize) {
    throw util::CryptoError("hkdfExpand: length too large");
  }
  util::Bytes okm;
  okm.reserve(length);
  util::Bytes previous;
  std::uint8_t counter = 1;
  while (okm.size() < length) {
    util::Bytes input = previous;
    input.insert(input.end(), info.begin(), info.end());
    input.push_back(counter++);
    previous = hmacSha256Bytes(prk, input);
    const std::size_t take = std::min(previous.size(), length - okm.size());
    okm.insert(okm.end(), previous.begin(),
               previous.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return okm;
}

util::Bytes hkdf(util::BytesView ikm, util::BytesView salt,
                 util::BytesView info, std::size_t length) {
  return hkdfExpand(hkdfExtract(salt, ikm), info, length);
}

util::Bytes deriveKey(util::BytesView secret, std::string_view label) {
  return hkdf(secret, {}, util::toBytes(label), 32);
}

}  // namespace dosn::crypto
