#include "dosn/crypto/merkle.hpp"

#include "dosn/util/error.hpp"

namespace dosn::crypto {

Digest merkleLeafHash(util::BytesView leaf) {
  Sha256 h;
  const std::uint8_t tag = 0x00;
  h.update(util::BytesView(&tag, 1)).update(leaf);
  return h.finish();
}

Digest merkleNodeHash(const Digest& left, const Digest& right) {
  Sha256 h;
  const std::uint8_t tag = 0x01;
  h.update(util::BytesView(&tag, 1))
      .update(util::BytesView(left))
      .update(util::BytesView(right));
  return h.finish();
}

MerkleTree::MerkleTree(const std::vector<util::Bytes>& leaves)
    : leafCount_(leaves.size()) {
  if (leaves.empty()) {
    root_ = sha256({});
    return;
  }
  std::vector<Digest> level;
  level.reserve(leaves.size());
  for (const auto& leaf : leaves) level.push_back(merkleLeafHash(leaf));
  levels_.push_back(level);
  while (levels_.back().size() > 1) {
    const auto& prev = levels_.back();
    std::vector<Digest> next;
    next.reserve((prev.size() + 1) / 2);
    for (std::size_t i = 0; i < prev.size(); i += 2) {
      const Digest& left = prev[i];
      const Digest& right = (i + 1 < prev.size()) ? prev[i + 1] : prev[i];
      next.push_back(merkleNodeHash(left, right));
    }
    levels_.push_back(std::move(next));
  }
  root_ = levels_.back().front();
}

MerkleProof MerkleTree::prove(std::size_t index) const {
  if (index >= leafCount_) throw util::DosnError("MerkleTree::prove: index out of range");
  MerkleProof proof;
  std::size_t i = index;
  for (std::size_t lvl = 0; lvl + 1 < levels_.size(); ++lvl) {
    const auto& nodes = levels_[lvl];
    const std::size_t sibling = (i % 2 == 0) ? i + 1 : i - 1;
    MerkleStep step;
    step.sibling = (sibling < nodes.size()) ? nodes[sibling] : nodes[i];
    step.siblingOnLeft = (i % 2 == 1);
    proof.push_back(step);
    i /= 2;
  }
  return proof;
}

bool merkleVerify(const Digest& root, util::BytesView leaf,
                  const MerkleProof& proof) {
  Digest current = merkleLeafHash(leaf);
  for (const auto& step : proof) {
    current = step.siblingOnLeft ? merkleNodeHash(step.sibling, current)
                                 : merkleNodeHash(current, step.sibling);
  }
  return current == root;
}

}  // namespace dosn::crypto
