// ChaCha20-Poly1305 AEAD (RFC 8439). This is the library's authenticated
// symmetric encryption: the "symmetric key encryption ... mostly used with the
// combination of other data integrity methods" of the paper's §III-B.
#pragma once

#include <optional>

#include "dosn/util/bytes.hpp"
#include "dosn/util/rng.hpp"

namespace dosn::crypto {

/// Ciphertext || 16-byte tag. Nonce must be 12 bytes and unique per key.
util::Bytes aeadSeal(util::BytesView key, util::BytesView nonce,
                     util::BytesView plaintext, util::BytesView aad = {});

/// Returns std::nullopt if the tag does not verify.
std::optional<util::Bytes> aeadOpen(util::BytesView key, util::BytesView nonce,
                                    util::BytesView sealed,
                                    util::BytesView aad = {});

/// Convenience envelope that prepends a random nonce to the sealed box.
util::Bytes sealWithNonce(util::BytesView key, util::BytesView plaintext,
                          util::Rng& rng, util::BytesView aad = {});
std::optional<util::Bytes> openWithNonce(util::BytesView key,
                                         util::BytesView box,
                                         util::BytesView aad = {});

}  // namespace dosn::crypto
