#include "dosn/crypto/hmac.hpp"

#include <array>

namespace dosn::crypto {

Digest hmacSha256(util::BytesView key, util::BytesView message) {
  std::array<std::uint8_t, 64> block{};
  if (key.size() > block.size()) {
    const Digest kd = sha256(key);
    std::copy(kd.begin(), kd.end(), block.begin());
  } else {
    std::copy(key.begin(), key.end(), block.begin());
  }

  std::array<std::uint8_t, 64> ipad{};
  std::array<std::uint8_t, 64> opad{};
  for (std::size_t i = 0; i < 64; ++i) {
    ipad[i] = block[i] ^ 0x36;
    opad[i] = block[i] ^ 0x5c;
  }

  const Digest inner =
      Sha256{}.update(util::BytesView(ipad)).update(message).finish();
  return Sha256{}
      .update(util::BytesView(opad))
      .update(util::BytesView(inner))
      .finish();
}

util::Bytes hmacSha256Bytes(util::BytesView key, util::BytesView message) {
  return digestToBytes(hmacSha256(key, message));
}

util::Bytes prf(util::BytesView secret, util::BytesView input) {
  return hmacSha256Bytes(secret, input);
}

bool verifyHmacSha256(util::BytesView key, util::BytesView message,
                      util::BytesView tag) {
  const Digest expected = hmacSha256(key, message);
  return util::constantTimeEqual(util::BytesView(expected), tag);
}

}  // namespace dosn::crypto
