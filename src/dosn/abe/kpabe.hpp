// Key-Policy ABE (paper §III-D: "the condition in the key policy ABE is
// reverse" — the key carries the access structure, the ciphertext carries an
// attribute set).
//
// Construction (simulation-grade; see DESIGN.md §3.1): ciphertexts label the
// payload with an attribute set A; for each a in A the session secret is
// wrapped to the attribute public key Y_a (hashed ElGamal). A user key holds
// the policy tree plus the scalar k_a for every attribute appearing in it.
// Decryption verifies that A satisfies the key's policy and unwraps via a
// leaf attribute in the satisfying set.
//
// Known deviation (forced without pairings, since the encryptor cannot know
// key policies): the threshold gates are enforced by the decryption routine,
// not algebraically — a dishonest key holder with any single matching
// attribute could skip the tree. Leaf access itself IS cryptographic. The
// structural properties the paper discusses (key size grows with the policy,
// ciphertext size with |A|, revocation via re-encryption) are preserved.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "dosn/abe/cpabe.hpp"  // AttributePublicKeys
#include "dosn/pkcrypto/group.hpp"
#include "dosn/policy/policy.hpp"
#include "dosn/util/bytes.hpp"
#include "dosn/util/rng.hpp"

namespace dosn::abe {

struct KpAbeUserKey {
  policy::Policy keyPolicy;
  std::map<std::string, BigUint> attributeSecrets;  // k_a per policy attr
};

struct KpAbeCiphertext {
  std::set<std::string> attributes;
  BigUint c1;  // g^k, shared across attribute wraps
  std::map<std::string, util::Bytes> wraps;  // a -> AEAD(KDF(Y_a^k), s)
  util::Bytes payloadBox;

  util::Bytes serialize() const;
  static std::optional<KpAbeCiphertext> deserialize(util::BytesView data);
};

class KpAbeAuthority {
 public:
  KpAbeAuthority(const DlogGroup& group, util::Rng& rng);

  BigUint attributePublicKey(const std::string& attribute) const;
  AttributePublicKeys publicKeysFor(const std::set<std::string>& attrs) const;

  /// Issues a key whose policy governs which ciphertexts it can open.
  KpAbeUserKey keyGen(const policy::Policy& keyPolicy) const;

  const DlogGroup& group() const { return group_; }

 private:
  BigUint attributeSecret(const std::string& attribute) const;

  const DlogGroup& group_;
  util::Bytes masterSecret_;
};

KpAbeCiphertext kpabeEncrypt(const DlogGroup& group,
                             const AttributePublicKeys& attributeKeys,
                             const std::set<std::string>& attributes,
                             util::BytesView plaintext, util::Rng& rng);

std::optional<util::Bytes> kpabeDecrypt(const DlogGroup& group,
                                        const KpAbeUserKey& key,
                                        const KpAbeCiphertext& ct);

}  // namespace dosn::abe
