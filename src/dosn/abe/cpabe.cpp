#include "dosn/abe/cpabe.hpp"

#include "dosn/crypto/aead.hpp"
#include "dosn/crypto/hkdf.hpp"
#include "dosn/crypto/hmac.hpp"
#include "dosn/policy/shamir.hpp"
#include "dosn/util/codec.hpp"
#include "dosn/util/error.hpp"

namespace dosn::abe {

using policy::PolicyNode;
using policy::PrimeField;
using policy::Share;

namespace {

const PrimeField& field() { return PrimeField::standard(); }

util::Bytes payloadKey(const PrimeField& f, const BigUint& s) {
  return crypto::deriveKey(f.encode(s), "cpabe-payload");
}

util::Bytes leafKey(const DlogGroup& group, const BigUint& shared) {
  return crypto::deriveKey(shared.toBytesPadded(group.elementBytes()),
                           "cpabe-leaf");
}

// Walks the tree assigning each leaf its Shamir share of `secret` (DFS leaf
// order matches Policy::leaves()).
void distributeShares(const PolicyNode& node, const BigUint& secret,
                      util::Rng& rng, std::vector<BigUint>& leafSecrets) {
  if (node.kind == PolicyNode::Kind::kAttribute) {
    leafSecrets.push_back(secret);
    return;
  }
  const auto shares = policy::shamirShare(field(), secret, node.threshold,
                                          node.children.size(), rng);
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    distributeShares(*node.children[i], shares[i].y, rng, leafSecrets);
  }
}

// Recursively reconstructs the node's secret from recovered leaf values.
// `leafValues[i]` is the recovered share of DFS-leaf i (nullopt if that leaf
// could not be opened). `nextLeaf` advances through DFS order.
std::optional<BigUint> reconstruct(
    const PolicyNode& node,
    const std::vector<std::optional<BigUint>>& leafValues,
    std::size_t& nextLeaf) {
  if (node.kind == PolicyNode::Kind::kAttribute) {
    return leafValues[nextLeaf++];
  }
  std::vector<Share> recovered;
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    const auto childValue = reconstruct(*node.children[i], leafValues, nextLeaf);
    if (childValue && recovered.size() < node.threshold) {
      recovered.push_back(Share{BigUint(i + 1), *childValue});
    }
  }
  if (recovered.size() < node.threshold) return std::nullopt;
  return policy::shamirReconstruct(field(), recovered);
}

}  // namespace

util::Bytes CpAbeCiphertext::serialize() const {
  util::Writer w;
  w.bytes(accessPolicy.serialize());
  w.u32(static_cast<std::uint32_t>(leafWraps.size()));
  for (const auto& wrap : leafWraps) {
    w.bytes(wrap.c1.toBytes());
    w.bytes(wrap.box);
  }
  w.bytes(payloadBox);
  return w.take();
}

std::optional<CpAbeCiphertext> CpAbeCiphertext::deserialize(
    util::BytesView data) {
  try {
    util::Reader r(data);
    CpAbeCiphertext ct;
    const auto pol = policy::Policy::deserialize(r.bytes());
    if (!pol) return std::nullopt;
    ct.accessPolicy = *pol;
    const std::uint32_t count = r.u32();
    if (count != ct.accessPolicy.leaves().size()) return std::nullopt;
    ct.leafWraps.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      LeafWrap wrap;
      wrap.c1 = BigUint::fromBytes(r.bytes());
      wrap.box = r.bytes();
      ct.leafWraps.push_back(std::move(wrap));
    }
    ct.payloadBox = r.bytes();
    r.expectEnd();
    return ct;
  } catch (const util::CodecError&) {
    return std::nullopt;
  }
}

CpAbeAuthority::CpAbeAuthority(const DlogGroup& group, util::Rng& rng)
    : group_(group), masterSecret_(rng.bytes(32)) {}

BigUint CpAbeAuthority::attributeSecret(const std::string& attribute) const {
  // Deterministic scalar per attribute, derived from the master secret.
  const util::Bytes material =
      crypto::prf(masterSecret_, util::toBytes("attr:" + attribute));
  return group_.hashToScalar(material);
}

BigUint CpAbeAuthority::attributePublicKey(const std::string& attribute) const {
  return group_.exp(attributeSecret(attribute));
}

AttributePublicKeys CpAbeAuthority::publicKeysFor(
    const policy::Policy& policy) const {
  AttributePublicKeys keys;
  for (const auto& attr : policy.attributes()) {
    keys.emplace(attr, attributePublicKey(attr));
  }
  return keys;
}

CpAbeUserKey CpAbeAuthority::keyGen(
    const std::set<std::string>& attributes) const {
  CpAbeUserKey key;
  key.attributes = attributes;
  for (const auto& attr : attributes) {
    key.attributeSecrets.emplace(attr, attributeSecret(attr));
  }
  return key;
}

CpAbeCiphertext cpabeEncrypt(const DlogGroup& group,
                             const AttributePublicKeys& attributeKeys,
                             const policy::Policy& accessPolicy,
                             util::BytesView plaintext, util::Rng& rng) {
  if (accessPolicy.empty()) {
    throw util::CryptoError("cpabeEncrypt: empty policy");
  }
  const PrimeField& f = field();
  const BigUint s = f.random(rng);

  std::vector<BigUint> leafSecrets;
  distributeShares(*accessPolicy.root(), s, rng, leafSecrets);

  CpAbeCiphertext ct;
  ct.accessPolicy = accessPolicy;
  const auto leaves = accessPolicy.leaves();
  ct.leafWraps.reserve(leaves.size());
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    const auto it = attributeKeys.find(leaves[i]->attribute);
    if (it == attributeKeys.end()) {
      throw util::CryptoError("cpabeEncrypt: missing public key for attribute " +
                              leaves[i]->attribute);
    }
    const BigUint k = group.randomScalar(rng);
    CpAbeCiphertext::LeafWrap wrap;
    wrap.c1 = group.exp(k);
    const BigUint shared = group.exp(it->second, k);
    wrap.box = crypto::sealWithNonce(leafKey(group, shared),
                                     f.encode(leafSecrets[i]), rng);
    ct.leafWraps.push_back(std::move(wrap));
  }
  ct.payloadBox = crypto::sealWithNonce(payloadKey(f, s), plaintext, rng);
  return ct;
}

std::optional<util::Bytes> cpabeDecrypt(const DlogGroup& group,
                                        const CpAbeUserKey& key,
                                        const CpAbeCiphertext& ct) {
  const PrimeField& f = field();
  const auto leaves = ct.accessPolicy.leaves();
  if (leaves.size() != ct.leafWraps.size()) return std::nullopt;

  // Open every leaf whose attribute we hold.
  std::vector<std::optional<BigUint>> leafValues(leaves.size());
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    const auto it = key.attributeSecrets.find(leaves[i]->attribute);
    if (it == key.attributeSecrets.end()) continue;
    const BigUint shared = group.exp(ct.leafWraps[i].c1, it->second);
    const auto opened =
        crypto::openWithNonce(leafKey(group, shared), ct.leafWraps[i].box);
    if (!opened) return std::nullopt;  // corrupted ciphertext
    leafValues[i] = BigUint::fromBytes(*opened);
  }

  std::size_t nextLeaf = 0;
  const auto s = reconstruct(*ct.accessPolicy.root(), leafValues, nextLeaf);
  if (!s) return std::nullopt;  // policy not satisfied
  return crypto::openWithNonce(payloadKey(f, *s), ct.payloadBox);
}

}  // namespace dosn::abe
