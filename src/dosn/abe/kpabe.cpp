#include "dosn/abe/kpabe.hpp"

#include "dosn/crypto/aead.hpp"
#include "dosn/crypto/hkdf.hpp"
#include "dosn/crypto/hmac.hpp"
#include "dosn/util/codec.hpp"
#include "dosn/util/error.hpp"

namespace dosn::abe {

namespace {

util::Bytes wrapKey(const DlogGroup& group, const BigUint& shared,
                    const std::string& attribute) {
  util::Bytes material = shared.toBytesPadded(group.elementBytes());
  const util::Bytes attr = util::toBytes(attribute);
  material.insert(material.end(), attr.begin(), attr.end());
  return crypto::deriveKey(material, "kpabe-wrap");
}

}  // namespace

util::Bytes KpAbeCiphertext::serialize() const {
  util::Writer w;
  w.u32(static_cast<std::uint32_t>(attributes.size()));
  for (const auto& a : attributes) w.str(a);
  w.bytes(c1.toBytes());
  w.u32(static_cast<std::uint32_t>(wraps.size()));
  for (const auto& [attr, box] : wraps) {
    w.str(attr);
    w.bytes(box);
  }
  w.bytes(payloadBox);
  return w.take();
}

std::optional<KpAbeCiphertext> KpAbeCiphertext::deserialize(
    util::BytesView data) {
  try {
    util::Reader r(data);
    KpAbeCiphertext ct;
    const std::uint32_t attrCount = r.u32();
    for (std::uint32_t i = 0; i < attrCount; ++i) ct.attributes.insert(r.str());
    ct.c1 = BigUint::fromBytes(r.bytes());
    const std::uint32_t wrapCount = r.u32();
    for (std::uint32_t i = 0; i < wrapCount; ++i) {
      std::string attr = r.str();
      ct.wraps.emplace(std::move(attr), r.bytes());
    }
    ct.payloadBox = r.bytes();
    r.expectEnd();
    return ct;
  } catch (const util::CodecError&) {
    return std::nullopt;
  }
}

KpAbeAuthority::KpAbeAuthority(const DlogGroup& group, util::Rng& rng)
    : group_(group), masterSecret_(rng.bytes(32)) {}

BigUint KpAbeAuthority::attributeSecret(const std::string& attribute) const {
  const util::Bytes material =
      crypto::prf(masterSecret_, util::toBytes("attr:" + attribute));
  return group_.hashToScalar(material);
}

BigUint KpAbeAuthority::attributePublicKey(const std::string& attribute) const {
  return group_.exp(attributeSecret(attribute));
}

AttributePublicKeys KpAbeAuthority::publicKeysFor(
    const std::set<std::string>& attrs) const {
  AttributePublicKeys keys;
  for (const auto& attr : attrs) keys.emplace(attr, attributePublicKey(attr));
  return keys;
}

KpAbeUserKey KpAbeAuthority::keyGen(const policy::Policy& keyPolicy) const {
  KpAbeUserKey key;
  key.keyPolicy = keyPolicy;
  for (const auto& attr : keyPolicy.attributes()) {
    key.attributeSecrets.emplace(attr, attributeSecret(attr));
  }
  return key;
}

KpAbeCiphertext kpabeEncrypt(const DlogGroup& group,
                             const AttributePublicKeys& attributeKeys,
                             const std::set<std::string>& attributes,
                             util::BytesView plaintext, util::Rng& rng) {
  if (attributes.empty()) {
    throw util::CryptoError("kpabeEncrypt: empty attribute set");
  }
  KpAbeCiphertext ct;
  ct.attributes = attributes;
  const BigUint k = group.randomScalar(rng);
  ct.c1 = group.exp(k);
  const util::Bytes sessionSecret = rng.bytes(32);
  for (const auto& attr : attributes) {
    const auto it = attributeKeys.find(attr);
    if (it == attributeKeys.end()) {
      throw util::CryptoError("kpabeEncrypt: missing public key for " + attr);
    }
    const BigUint shared = group.exp(it->second, k);
    ct.wraps.emplace(attr, crypto::sealWithNonce(wrapKey(group, shared, attr),
                                                 sessionSecret, rng));
  }
  ct.payloadBox = crypto::sealWithNonce(
      crypto::deriveKey(sessionSecret, "kpabe-payload"), plaintext, rng);
  return ct;
}

std::optional<util::Bytes> kpabeDecrypt(const DlogGroup& group,
                                        const KpAbeUserKey& key,
                                        const KpAbeCiphertext& ct) {
  // Policy gate: the ciphertext's attribute set must satisfy the key policy.
  if (!key.keyPolicy.satisfied(ct.attributes)) return std::nullopt;
  // Unwrap the session secret through any held attribute present in the
  // ciphertext.
  for (const auto& [attr, secret] : key.attributeSecrets) {
    const auto wrapIt = ct.wraps.find(attr);
    if (wrapIt == ct.wraps.end()) continue;
    const BigUint shared = group.exp(ct.c1, secret);
    const auto session =
        crypto::openWithNonce(wrapKey(group, shared, attr), wrapIt->second);
    if (!session) continue;
    return crypto::openWithNonce(crypto::deriveKey(*session, "kpabe-payload"),
                                 ct.payloadBox);
  }
  return std::nullopt;
}

}  // namespace dosn::abe
