// Ciphertext-Policy ABE (paper §III-D; used by Persona and Cachet).
//
// Construction (simulation-grade; see DESIGN.md §3.1): the access-structure
// machinery of Bethencourt-Sahai-Waters is implemented exactly — the
// encryptor embeds a policy tree in the ciphertext, a random secret s is
// Shamir-shared down every threshold gate, and decryption Lagrange-
// reconstructs s from the leaves it can open. The pairing-based leaf blinding
// is replaced by per-attribute hashed ElGamal: the authority derives a scalar
// k_a per attribute from its master secret and publishes Y_a = g^{k_a};
// leaf shares are encrypted to Y_a and holders of attribute a receive k_a.
//
// Preserved properties (the ones the paper's claims are about): encryption is
// public-key; a group is formed with a single encryption; expressive
// AND/OR/k-of-n policies; ciphertext size and decrypt cost grow with the
// policy; revocation requires re-encryption. Known deviation: attribute keys
// are attribute-global, so colluding users can pool attributes (real CP-ABE
// binds keys to a user); none of the reproduced experiments depend on
// collusion resistance.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "dosn/pkcrypto/group.hpp"
#include "dosn/policy/field.hpp"
#include "dosn/policy/policy.hpp"
#include "dosn/util/bytes.hpp"
#include "dosn/util/rng.hpp"

namespace dosn::abe {

using bignum::BigUint;
using pkcrypto::DlogGroup;

/// Public per-attribute keys Y_a needed by encryptors.
using AttributePublicKeys = std::map<std::string, BigUint>;

/// A user's decryption key: the scalar k_a for each attribute held.
struct CpAbeUserKey {
  std::set<std::string> attributes;
  std::map<std::string, BigUint> attributeSecrets;
};

struct CpAbeCiphertext {
  policy::Policy accessPolicy;
  // Per policy leaf (DFS order): ElGamal ephemeral + wrapped share.
  struct LeafWrap {
    BigUint c1;
    util::Bytes box;
  };
  std::vector<LeafWrap> leafWraps;
  util::Bytes payloadBox;  // AEAD under KDF(s)

  util::Bytes serialize() const;
  static std::optional<CpAbeCiphertext> deserialize(util::BytesView data);
};

/// The trusted attribute authority (holds the master secret).
class CpAbeAuthority {
 public:
  CpAbeAuthority(const DlogGroup& group, util::Rng& rng);

  /// Public key for an attribute (derived lazily; any string is valid).
  BigUint attributePublicKey(const std::string& attribute) const;

  /// Public keys for every attribute in a policy.
  AttributePublicKeys publicKeysFor(const policy::Policy& policy) const;

  /// Issues a decryption key for an attribute set.
  CpAbeUserKey keyGen(const std::set<std::string>& attributes) const;

  const DlogGroup& group() const { return group_; }

 private:
  BigUint attributeSecret(const std::string& attribute) const;

  const DlogGroup& group_;
  util::Bytes masterSecret_;
};

/// Encrypts under a policy. `attributeKeys` must contain Y_a for every leaf
/// attribute (use CpAbeAuthority::publicKeysFor).
CpAbeCiphertext cpabeEncrypt(const DlogGroup& group,
                             const AttributePublicKeys& attributeKeys,
                             const policy::Policy& accessPolicy,
                             util::BytesView plaintext, util::Rng& rng);

/// Decrypts if the key's attributes satisfy the ciphertext policy.
std::optional<util::Bytes> cpabeDecrypt(const DlogGroup& group,
                                        const CpAbeUserKey& key,
                                        const CpAbeCiphertext& ct);

}  // namespace dosn::abe
