// Pseudonymous access with zero-knowledge proofs (paper §V-B): "A user can
// use a pseudonym while searching in the network, and when (s)he wants to
// reach a content belonging to another person, (s)he uses ZKP to prove having
// privileges to access" (Backes et al. [40]).
//
// A pseudonym is a fresh Schnorr public key y = g^x; access proofs are
// Fiat-Shamir Schnorr proofs of knowledge of x bound to the resource being
// requested, so a proof for one resource cannot be replayed for another.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "dosn/pkcrypto/schnorr.hpp"

namespace dosn::search {

/// A pseudonym: an unlinkable key pair (no connection to the real UserId is
/// ever registered anywhere).
struct Pseudonym {
  std::string handle;  // "pseu:" + hex of the public key hash
  pkcrypto::SchnorrPrivateKey key;
};

Pseudonym createPseudonym(const pkcrypto::DlogGroup& group, util::Rng& rng);

/// Guards resources; grants access to authorized pseudonyms that prove key
/// knowledge, learning nothing but the pseudonym handle.
class AccessGate {
 public:
  explicit AccessGate(const pkcrypto::DlogGroup& group) : group_(group) {}

  /// The resource owner authorizes a pseudonym (public part only).
  void authorize(const std::string& resource, const std::string& handle,
                 const pkcrypto::SchnorrPublicKey& key);
  void revoke(const std::string& resource, const std::string& handle);

  /// Non-interactive access check: the proof must be bound to (resource ||
  /// handle).
  bool checkAccess(const std::string& resource, const std::string& handle,
                   const pkcrypto::SchnorrProof& proof) const;

  /// One pending access request of a batched check.
  struct AccessRequest {
    std::string resource;
    std::string handle;
    pkcrypto::SchnorrProof proof;
  };

  /// Checks a page of requests through one random-linear-combination
  /// schnorrProofVerifyBatch call; result[i] == checkAccess(request i).
  /// Requests for unknown resources/handles reject without joining the
  /// combined check.
  std::vector<bool> checkAccessBatch(
      const std::vector<AccessRequest>& requests) const;

  std::size_t authorizedCount(const std::string& resource) const;

 private:
  const pkcrypto::DlogGroup& group_;
  std::map<std::string, std::map<std::string, pkcrypto::SchnorrPublicKey>>
      authorized_;
};

/// Client-side: produce the access proof for a resource.
pkcrypto::SchnorrProof proveAccess(const pkcrypto::DlogGroup& group,
                                   const Pseudonym& pseudonym,
                                   const std::string& resource,
                                   util::Rng& rng);

}  // namespace dosn::search
