#include "dosn/search/proxy_alias.hpp"

#include <memory>

#include "dosn/util/bytes.hpp"

namespace dosn::search {

ProxyServer::ProxyServer(std::string name) : name_(std::move(name)) {}

Alias ProxyServer::registerUser(const UserId& user, util::Rng& rng) {
  const auto existing = mapping_.find(user);
  if (existing != mapping_.end()) return existing->second;
  const Alias alias = name_ + ":" + util::toHex(rng.bytes(8));
  mapping_[user] = alias;
  reverse_[alias] = user;
  return alias;
}

std::optional<Alias> ProxyServer::aliasOf(const UserId& user) const {
  const auto it = mapping_.find(user);
  if (it == mapping_.end()) return std::nullopt;
  return it->second;
}

std::optional<UserId> ProxyServer::resolve(const Alias& alias) const {
  const auto it = reverse_.find(alias);
  if (it == reverse_.end()) return std::nullopt;
  return it->second;
}

ProxyServer& ProxyNetwork::addProxy(const std::string& name) {
  proxies_.push_back(std::make_unique<ProxyServer>(name));
  return *proxies_.back();
}

Alias ProxyNetwork::registerUser(const UserId& user, std::size_t proxyIndex,
                                 util::Rng& rng) {
  const Alias alias = proxies_.at(proxyIndex)->registerUser(user, rng);
  ++totalUsers_;
  return alias;
}

std::optional<std::size_t> ProxyNetwork::proxyOfUser(const UserId& user) const {
  for (std::size_t i = 0; i < proxies_.size(); ++i) {
    if (proxies_[i]->aliasOf(user)) return i;
  }
  return std::nullopt;
}

std::optional<std::size_t> ProxyNetwork::proxyOfAlias(const Alias& alias) const {
  for (std::size_t i = 0; i < proxies_.size(); ++i) {
    if (proxies_[i]->resolve(alias)) return i;
  }
  return std::nullopt;
}

std::optional<DeliveredMessage> ProxyNetwork::send(const UserId& from,
                                                   const Alias& toAlias,
                                                   util::Bytes body) {
  const auto fromProxy = proxyOfUser(from);
  const auto toProxy = proxyOfAlias(toAlias);
  if (!fromProxy || !toProxy) return std::nullopt;
  // The sender's proxy swaps the real name for the alias before the message
  // crosses the proxy boundary.
  const Alias fromAlias = *proxies_[*fromProxy]->aliasOf(from);
  // The receiver's proxy resolves the destination alias for delivery.
  const UserId to = *proxies_[*toProxy]->resolve(toAlias);
  return DeliveredMessage{fromAlias, to, std::move(body)};
}

double ProxyNetwork::collusionRecoveryFraction(
    const std::vector<std::size_t>& colluding) const {
  if (totalUsers_ == 0) return 0.0;
  std::size_t recovered = 0;
  for (const std::size_t index : colluding) {
    recovered += proxies_.at(index)->observedMapping().size();
  }
  return static_cast<double>(recovered) / static_cast<double>(totalUsers_);
}

}  // namespace dosn::search
