// Privacy of the searched data owner (paper §V-C): "every data item has a
// handler as a reference to that data. For example 'Alice's birthday' instead
// of '26 October 1990'. When one is interested in knowing the content of that
// handler, he must prove himself to the data owner and then get access to the
// real content."
//
// Handlers are freely searchable/listable metadata; the content behind a
// handler is released only to pseudonyms that pass the owner's AccessGate.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dosn/search/zkp_access.hpp"
#include "dosn/util/bytes.hpp"

namespace dosn::search {

class ResourceHandlerRegistry {
 public:
  explicit ResourceHandlerRegistry(const pkcrypto::DlogGroup& group)
      : gate_(group) {}

  /// Registers content behind a handler ("alice/birthday").
  void registerResource(const std::string& handle, const std::string& owner,
                        util::Bytes content);

  /// Owner grants a pseudonym access to one of their handlers.
  void grant(const std::string& handle, const std::string& owner,
             const std::string& pseudonymHandle,
             const pkcrypto::SchnorrPublicKey& pseudonymKey);
  void revoke(const std::string& handle, const std::string& owner,
              const std::string& pseudonymHandle);

  /// What searches see: handlers only, never content.
  std::vector<std::string> listHandles() const;
  std::optional<std::string> ownerOf(const std::string& handle) const;

  /// Content release: requires a valid ZKP access proof for the handle.
  std::optional<util::Bytes> request(const std::string& handle,
                                     const std::string& pseudonymHandle,
                                     const pkcrypto::SchnorrProof& proof) const;

 private:
  struct Resource {
    std::string owner;
    util::Bytes content;
  };

  AccessGate gate_;
  std::map<std::string, Resource> resources_;
};

}  // namespace dosn::search
