// Searcher privacy via proxies (paper §V-B): "the real identity of users will
// be replaced by aliases via the proxy server. Since the proxy server knows
// all the aliases of their users, it can forward messages correctly. Servers
// cannot see the real names of other servers' users. However, the security of
// this approach can be under the risk by collusion of proxy servers."
//
// Each user registers with one proxy under an alias; cross-proxy messages are
// forwarded alias-to-alias. Every proxy records what it observes so the
// collusion experiment (E11) can quantify the deanonymization risk.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "dosn/social/identity.hpp"
#include "dosn/util/bytes.hpp"
#include "dosn/util/rng.hpp"

namespace dosn::search {

using social::UserId;
using Alias = std::string;

struct DeliveredMessage {
  Alias fromAlias;
  UserId to;  // the receiving proxy resolves the alias for final delivery
  util::Bytes body;
};

class ProxyServer {
 public:
  explicit ProxyServer(std::string name);

  const std::string& name() const { return name_; }

  /// Registers a user, assigning a fresh alias.
  Alias registerUser(const UserId& user, util::Rng& rng);

  std::optional<Alias> aliasOf(const UserId& user) const;
  std::optional<UserId> resolve(const Alias& alias) const;

  /// What this proxy alone has observed: its own alias<->user table.
  const std::map<UserId, Alias>& observedMapping() const { return mapping_; }

 private:
  std::string name_;
  std::map<UserId, Alias> mapping_;
  std::map<Alias, UserId> reverse_;
};

/// A network of proxies: routes messages between users of (possibly)
/// different proxies, exposing only aliases across proxy boundaries.
class ProxyNetwork {
 public:
  ProxyServer& addProxy(const std::string& name);

  /// Registers a user at a proxy (round-robin helper available via index).
  Alias registerUser(const UserId& user, std::size_t proxyIndex,
                     util::Rng& rng);

  /// Sends from a real user to a destination alias. Returns what the final
  /// receiver sees. The sender's proxy learns (sender, toAlias); the
  /// receiver's proxy learns (fromAlias, receiver).
  std::optional<DeliveredMessage> send(const UserId& from, const Alias& toAlias,
                                       util::Bytes body);

  std::size_t proxyCount() const { return proxies_.size(); }
  ProxyServer& proxy(std::size_t index) { return *proxies_[index]; }

  /// The alias->user mapping recoverable when the given subset of proxies
  /// colludes, as a fraction of all registered users.
  double collusionRecoveryFraction(const std::vector<std::size_t>& colluding) const;

 private:
  std::optional<std::size_t> proxyOfUser(const UserId& user) const;
  std::optional<std::size_t> proxyOfAlias(const Alias& alias) const;

  std::vector<std::unique_ptr<ProxyServer>> proxies_;
  std::size_t totalUsers_ = 0;
};

}  // namespace dosn::search
