#include "dosn/search/hummingbird.hpp"

#include "dosn/crypto/aead.hpp"
#include "dosn/crypto/hkdf.hpp"
#include "dosn/util/codec.hpp"
#include "dosn/util/error.hpp"

namespace dosn::search {

util::Bytes EncryptedTweet::serialize() const {
  util::Writer w;
  w.bytes(index);
  w.bytes(box);
  return w.take();
}

std::optional<EncryptedTweet> EncryptedTweet::deserialize(
    util::BytesView data) {
  try {
    util::Reader r(data);
    EncryptedTweet t;
    t.index = r.bytes();
    t.box = r.bytes();
    r.expectEnd();
    return t;
  } catch (const util::CodecError&) {
    return std::nullopt;
  }
}

HummingbirdPublisher::HummingbirdPublisher(const pkcrypto::DlogGroup& group,
                                           std::size_t rsaBits, util::Rng& rng)
    : group_(group), oprf_(group, rng), rsa_(pkcrypto::rsaGenerate(rsaBits, rng)) {}

Subscription HummingbirdPublisher::deriveFromPrfOutput(
    util::BytesView prfOutput) {
  Subscription sub;
  sub.key = crypto::deriveKey(prfOutput, "hummingbird-key");
  sub.index = crypto::deriveKey(prfOutput, "hummingbird-index");
  return sub;
}

Subscription HummingbirdPublisher::selfSubscription(const std::string& hashtag,
                                                    KeyPath path) const {
  if (path == KeyPath::kOprf) {
    return deriveFromPrfOutput(oprf_.evaluate(util::toBytes(hashtag)));
  }
  // FDH-RSA signature on the tag, computed directly with the private key.
  const bignum::BigUint h =
      pkcrypto::rsaFullDomainHash(rsa_.pub, util::toBytes(hashtag));
  const bignum::BigUint sig = pkcrypto::rsaRawPrivate(rsa_, h);
  return deriveFromPrfOutput(sig.toBytesPadded(rsa_.pub.modulusBytes()));
}

EncryptedTweet HummingbirdPublisher::publish(const std::string& hashtag,
                                             const std::string& text,
                                             util::Rng& rng, KeyPath path) {
  const Subscription sub = selfSubscription(hashtag, path);
  EncryptedTweet tweet;
  tweet.index = sub.index;
  tweet.box = crypto::sealWithNonce(sub.key, util::toBytes(text), rng);
  return tweet;
}

bignum::BigUint HummingbirdPublisher::oprfEvaluate(
    const bignum::BigUint& blinded) const {
  return oprf_.evaluateBlinded(blinded);
}

bignum::BigUint HummingbirdPublisher::blindSign(
    const bignum::BigUint& blinded) const {
  return pkcrypto::blindSign(rsa_, blinded);
}

HummingbirdSubscriber::OprfRequest HummingbirdSubscriber::beginOprf(
    const std::string& hashtag, util::Rng& rng) const {
  return OprfRequest{
      pkcrypto::OprfReceiver(group_, util::toBytes(hashtag), rng)};
}

Subscription HummingbirdSubscriber::finishOprf(
    const OprfRequest& request, const bignum::BigUint& reply) const {
  return HummingbirdPublisher::deriveFromPrfOutput(
      request.receiver.finalize(reply));
}

std::vector<Subscription> HummingbirdSubscriber::finishOprfBatch(
    const std::vector<const OprfRequest*>& requests,
    const std::vector<bignum::BigUint>& replies) const {
  std::vector<const pkcrypto::OprfReceiver*> receivers;
  receivers.reserve(requests.size());
  for (const OprfRequest* request : requests) {
    receivers.push_back(&request->receiver);
  }
  const std::vector<util::Bytes> outputs =
      pkcrypto::oprfFinalizeBatch(receivers, replies);
  std::vector<Subscription> subs;
  subs.reserve(outputs.size());
  for (const util::Bytes& prf : outputs) {
    subs.push_back(HummingbirdPublisher::deriveFromPrfOutput(prf));
  }
  return subs;
}

HummingbirdSubscriber::BlindRequest HummingbirdSubscriber::beginBlind(
    const pkcrypto::RsaPublicKey& publisherKey, const std::string& hashtag,
    util::Rng& rng) const {
  return BlindRequest{
      pkcrypto::BlindSignatureRequest(publisherKey, util::toBytes(hashtag), rng),
      hashtag};
}

std::optional<Subscription> HummingbirdSubscriber::finishBlind(
    const pkcrypto::RsaPublicKey& publisherKey, const BlindRequest& request,
    const bignum::BigUint& blindSignature) const {
  const bignum::BigUint sig = request.request.unblind(blindSignature);
  if (!pkcrypto::blindSignatureVerify(publisherKey,
                                      util::toBytes(request.hashtag), sig)) {
    return std::nullopt;
  }
  return HummingbirdPublisher::deriveFromPrfOutput(
      sig.toBytesPadded(publisherKey.modulusBytes()));
}

std::optional<std::string> HummingbirdSubscriber::decrypt(
    const Subscription& sub, const EncryptedTweet& tweet) {
  const auto plain = crypto::openWithNonce(sub.key, tweet.box);
  if (!plain) return std::nullopt;
  return util::toString(*plain);
}

void HummingbirdServer::accept(EncryptedTweet tweet) {
  tweets_[tweet.index].push_back(std::move(tweet));
}

std::vector<EncryptedTweet> HummingbirdServer::match(
    util::BytesView index) const {
  const auto it = tweets_.find(util::Bytes(index.begin(), index.end()));
  if (it == tweets_.end()) return {};
  return it->second;
}

std::size_t HummingbirdServer::tweetCount() const {
  std::size_t total = 0;
  for (const auto& [index, stream] : tweets_) total += stream.size();
  return total;
}

}  // namespace dosn::search
