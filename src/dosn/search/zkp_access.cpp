#include "dosn/search/zkp_access.hpp"

#include "dosn/crypto/sha256.hpp"
#include "dosn/util/bytes.hpp"

namespace dosn::search {

namespace {

util::Bytes accessContext(const std::string& resource,
                          const std::string& handle) {
  return util::toBytes("zkp-access:" + resource + ":" + handle);
}

}  // namespace

Pseudonym createPseudonym(const pkcrypto::DlogGroup& group, util::Rng& rng) {
  Pseudonym p;
  p.key = pkcrypto::schnorrGenerate(group, rng);
  const crypto::Digest d = crypto::sha256(p.key.pub.serialize());
  p.handle = "pseu:" + util::toHex(util::BytesView(d.data(), 8));
  return p;
}

void AccessGate::authorize(const std::string& resource,
                           const std::string& handle,
                           const pkcrypto::SchnorrPublicKey& key) {
  authorized_[resource][handle] = key;
}

void AccessGate::revoke(const std::string& resource,
                        const std::string& handle) {
  const auto it = authorized_.find(resource);
  if (it != authorized_.end()) it->second.erase(handle);
}

bool AccessGate::checkAccess(const std::string& resource,
                             const std::string& handle,
                             const pkcrypto::SchnorrProof& proof) const {
  const auto resIt = authorized_.find(resource);
  if (resIt == authorized_.end()) return false;
  const auto keyIt = resIt->second.find(handle);
  if (keyIt == resIt->second.end()) return false;
  return pkcrypto::schnorrProofVerify(group_, keyIt->second,
                                      accessContext(resource, handle), proof);
}

std::vector<bool> AccessGate::checkAccessBatch(
    const std::vector<AccessRequest>& requests) const {
  std::vector<bool> out(requests.size(), false);
  std::vector<pkcrypto::SchnorrProofBatchItem> items;
  std::vector<std::size_t> mapping;
  items.reserve(requests.size());
  mapping.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const auto resIt = authorized_.find(requests[i].resource);
    if (resIt == authorized_.end()) continue;
    const auto keyIt = resIt->second.find(requests[i].handle);
    if (keyIt == resIt->second.end()) continue;
    items.push_back(pkcrypto::SchnorrProofBatchItem{
        keyIt->second,
        accessContext(requests[i].resource, requests[i].handle),
        requests[i].proof});
    mapping.push_back(i);
  }
  const std::vector<bool> results =
      pkcrypto::schnorrProofVerifyBatch(group_, items);
  for (std::size_t k = 0; k < mapping.size(); ++k) out[mapping[k]] = results[k];
  return out;
}

std::size_t AccessGate::authorizedCount(const std::string& resource) const {
  const auto it = authorized_.find(resource);
  return it == authorized_.end() ? 0 : it->second.size();
}

pkcrypto::SchnorrProof proveAccess(const pkcrypto::DlogGroup& group,
                                   const Pseudonym& pseudonym,
                                   const std::string& resource,
                                   util::Rng& rng) {
  return pkcrypto::schnorrProve(group, pseudonym.key,
                                accessContext(resource, pseudonym.handle), rng);
}

}  // namespace dosn::search
