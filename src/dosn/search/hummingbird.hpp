// Hummingbird (paper §III-F and §V-A): a Twitter-like service where the
// server matches encrypted tweets to subscriptions without learning tweet
// contents or hashtags.
//
//  - Publishing: the tweet key is derived by "a combination of a PRF and a
//    hash function" on the hashtag: key = H(f_s(tag)). A deterministic index
//    H(f_s(tag) || "idx") lets the server match without learning the tag.
//  - Subscription (OPRF): the subscriber runs the oblivious PRF with the
//    publisher, learning f_s(tag) without revealing the tag.
//  - Subscription (blind signature, §V-A): the subscriber obtains the
//    publisher's FDH-RSA signature on the tag blindly; H(sig(tag)) is the
//    key, "while his interest will not be revealed to the publisher".
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "dosn/pkcrypto/blind_rsa.hpp"
#include "dosn/pkcrypto/oprf.hpp"
#include "dosn/util/bytes.hpp"

namespace dosn::search {

/// An encrypted tweet as the (untrusted) server stores it.
struct EncryptedTweet {
  util::Bytes index;  // deterministic per (publisher, tag); opaque to server
  util::Bytes box;    // AEAD ciphertext of the tweet text

  util::Bytes serialize() const;
  static std::optional<EncryptedTweet> deserialize(util::BytesView data);
};

/// A subscriber's capability for one (publisher, tag) stream.
struct Subscription {
  util::Bytes key;    // decryption key
  util::Bytes index;  // matching index to query the server with
};

/// Which dissemination protocol a tweet stream's key is derived for. The two
/// paths produce unrelated keys; a publisher picks one per stream.
enum class KeyPath {
  kOprf,      // f_s(tag) via the 2HashDH OPRF
  kBlindSig,  // FDH-RSA signature on the tag (itself a verifiable OPRF)
};

class HummingbirdPublisher {
 public:
  HummingbirdPublisher(const pkcrypto::DlogGroup& group, std::size_t rsaBits,
                       util::Rng& rng);

  /// Encrypts a tweet under its hashtag-derived key.
  EncryptedTweet publish(const std::string& hashtag, const std::string& text,
                         util::Rng& rng, KeyPath path = KeyPath::kOprf);

  // --- OPRF subscription protocol (server side of f_s) ---
  bignum::BigUint oprfEvaluate(const bignum::BigUint& blinded) const;

  // --- Blind-signature subscription protocol ---
  const pkcrypto::RsaPublicKey& blindPublicKey() const { return rsa_.pub; }
  bignum::BigUint blindSign(const bignum::BigUint& blinded) const;

  /// The publisher's own (non-oblivious) subscription for a tag.
  Subscription selfSubscription(const std::string& hashtag,
                                KeyPath path = KeyPath::kOprf) const;

  /// Key/index derivation shared by both subscription paths.
  static Subscription deriveFromPrfOutput(util::BytesView prfOutput);

  const pkcrypto::DlogGroup& group() const { return group_; }

 private:
  const pkcrypto::DlogGroup& group_;
  pkcrypto::OprfSender oprf_;
  pkcrypto::RsaPrivateKey rsa_;
};

class HummingbirdSubscriber {
 public:
  explicit HummingbirdSubscriber(const pkcrypto::DlogGroup& group)
      : group_(group) {}

  /// OPRF flow: blind the tag, send blinded() to the publisher, finish with
  /// the reply.
  struct OprfRequest {
    pkcrypto::OprfReceiver receiver;
    const bignum::BigUint& blinded() const { return receiver.blinded(); }
  };
  OprfRequest beginOprf(const std::string& hashtag, util::Rng& rng) const;
  Subscription finishOprf(const OprfRequest& request,
                          const bignum::BigUint& reply) const;
  /// Finishes a whole subscription round at once: one batch inversion covers
  /// every request's unblinding scalar (pkcrypto::oprfFinalizeBatch), instead
  /// of one extended-Euclid per tag. result[i] == finishOprf(requests[i],
  /// replies[i]) byte-for-byte; sizes must match.
  std::vector<Subscription> finishOprfBatch(
      const std::vector<const OprfRequest*>& requests,
      const std::vector<bignum::BigUint>& replies) const;

  /// Blind-signature flow.
  struct BlindRequest {
    pkcrypto::BlindSignatureRequest request;
    std::string hashtag;
    const bignum::BigUint& blinded() const { return request.blinded(); }
  };
  BlindRequest beginBlind(const pkcrypto::RsaPublicKey& publisherKey,
                          const std::string& hashtag, util::Rng& rng) const;
  /// Verifies the unblinded signature before deriving the key; std::nullopt
  /// if the publisher cheated.
  std::optional<Subscription> finishBlind(
      const pkcrypto::RsaPublicKey& publisherKey, const BlindRequest& request,
      const bignum::BigUint& blindSignature) const;

  /// Decrypts a matched tweet.
  static std::optional<std::string> decrypt(const Subscription& sub,
                                            const EncryptedTweet& tweet);

 private:
  const pkcrypto::DlogGroup& group_;
};

/// The honest-but-curious server: stores ciphertexts and matches by index.
class HummingbirdServer {
 public:
  void accept(EncryptedTweet tweet);
  std::vector<EncryptedTweet> match(util::BytesView index) const;
  std::size_t tweetCount() const;
  std::size_t streamCount() const { return tweets_.size(); }

 private:
  std::map<util::Bytes, std::vector<EncryptedTweet>> tweets_;
};

}  // namespace dosn::search
