#include "dosn/search/resource_handler.hpp"

#include "dosn/util/error.hpp"

namespace dosn::search {

void ResourceHandlerRegistry::registerResource(const std::string& handle,
                                               const std::string& owner,
                                               util::Bytes content) {
  if (resources_.count(handle)) {
    throw util::DosnError("ResourceHandlerRegistry: handle exists");
  }
  resources_.emplace(handle, Resource{owner, std::move(content)});
}

void ResourceHandlerRegistry::grant(const std::string& handle,
                                    const std::string& owner,
                                    const std::string& pseudonymHandle,
                                    const pkcrypto::SchnorrPublicKey& key) {
  const auto it = resources_.find(handle);
  if (it == resources_.end() || it->second.owner != owner) {
    throw util::DosnError("ResourceHandlerRegistry: not the owner");
  }
  gate_.authorize(handle, pseudonymHandle, key);
}

void ResourceHandlerRegistry::revoke(const std::string& handle,
                                     const std::string& owner,
                                     const std::string& pseudonymHandle) {
  const auto it = resources_.find(handle);
  if (it == resources_.end() || it->second.owner != owner) {
    throw util::DosnError("ResourceHandlerRegistry: not the owner");
  }
  gate_.revoke(handle, pseudonymHandle);
}

std::vector<std::string> ResourceHandlerRegistry::listHandles() const {
  std::vector<std::string> out;
  out.reserve(resources_.size());
  for (const auto& [handle, resource] : resources_) out.push_back(handle);
  return out;
}

std::optional<std::string> ResourceHandlerRegistry::ownerOf(
    const std::string& handle) const {
  const auto it = resources_.find(handle);
  if (it == resources_.end()) return std::nullopt;
  return it->second.owner;
}

std::optional<util::Bytes> ResourceHandlerRegistry::request(
    const std::string& handle, const std::string& pseudonymHandle,
    const pkcrypto::SchnorrProof& proof) const {
  const auto it = resources_.find(handle);
  if (it == resources_.end()) return std::nullopt;
  if (!gate_.checkAccess(handle, pseudonymHandle, proof)) return std::nullopt;
  return it->second.content;
}

}  // namespace dosn::search
