#include "dosn/search/search_index.hpp"

#include <algorithm>

#include "dosn/util/strings.hpp"

namespace dosn::search {

void InvertedIndex::indexPost(const UserId& owner, PostId post,
                              std::string_view text) {
  for (const std::string& token : util::tokenize(text)) {
    postings_[token].insert(PostingRef{owner, post});
  }
}

void InvertedIndex::indexProfile(const social::Profile& profile) {
  for (const auto& [field, value] : profile.fields) {
    for (const std::string& token : util::tokenize(value)) {
      postings_[token].insert(PostingRef{profile.user, 0});
    }
  }
}

std::vector<PostingRef> InvertedIndex::search(std::string_view query) const {
  const std::vector<std::string> tokens = util::tokenize(query);
  if (tokens.empty()) return {};
  std::set<PostingRef> result;
  bool first = true;
  for (const std::string& token : tokens) {
    const auto it = postings_.find(token);
    if (it == postings_.end()) return {};
    if (first) {
      result = it->second;
      first = false;
      continue;
    }
    std::set<PostingRef> intersection;
    std::set_intersection(result.begin(), result.end(), it->second.begin(),
                          it->second.end(),
                          std::inserter(intersection, intersection.begin()));
    result = std::move(intersection);
    if (result.empty()) return {};
  }
  return std::vector<PostingRef>(result.begin(), result.end());
}

std::vector<std::pair<PostingRef, std::size_t>> InvertedIndex::searchAny(
    std::string_view query) const {
  std::map<PostingRef, std::size_t> counts;
  for (const std::string& token : util::tokenize(query)) {
    const auto it = postings_.find(token);
    if (it == postings_.end()) continue;
    for (const PostingRef& ref : it->second) ++counts[ref];
  }
  std::vector<std::pair<PostingRef, std::size_t>> out(counts.begin(),
                                                      counts.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

}  // namespace dosn::search
