// Keyword search substrate: a tokenizing inverted index over social content.
// The secure-search mechanisms of §V wrap this plain index with their privacy
// layers (blind subscription, pseudonymous access, trust ranking).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "dosn/social/content.hpp"

namespace dosn::search {

using social::PostId;
using social::UserId;

struct PostingRef {
  UserId owner;
  PostId post = 0;

  auto operator<=>(const PostingRef&) const = default;
};

class InvertedIndex {
 public:
  /// Tokenizes and indexes a post's text.
  void indexPost(const UserId& owner, PostId post, std::string_view text);

  /// Indexes a profile's field values under their tokens.
  void indexProfile(const social::Profile& profile);

  /// Posts matching ALL query tokens (conjunctive).
  std::vector<PostingRef> search(std::string_view query) const;

  /// Posts matching ANY query token, ranked by match count.
  std::vector<std::pair<PostingRef, std::size_t>> searchAny(
      std::string_view query) const;

  std::size_t termCount() const { return postings_.size(); }

 private:
  std::map<std::string, std::set<PostingRef>> postings_;
};

}  // namespace dosn::search
