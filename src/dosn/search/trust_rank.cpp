#include "dosn/search/trust_rank.hpp"

#include <algorithm>
#include <map>
#include <queue>

namespace dosn::search {

std::optional<double> chainTrust(const SocialGraph& graph,
                                 const std::vector<UserId>& chain) {
  if (chain.size() < 2) return std::nullopt;
  double product = 1.0;
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    const auto edge = graph.trust(chain[i], chain[i + 1]);
    if (!edge) return std::nullopt;
    product *= *edge;
  }
  return product;
}

std::optional<double> bestChainTrust(const SocialGraph& graph,
                                     const UserId& from, const UserId& to,
                                     std::size_t maxHops) {
  if (from == to) return 1.0;
  // Max-product Dijkstra with a hop bound: state = (trust, hops, user).
  struct State {
    double trust;
    std::size_t hops;
    UserId user;
    bool operator<(const State& o) const { return trust < o.trust; }
  };
  // best[user][hops] pruning: track the best trust seen per user at <= hops.
  std::map<UserId, double> best;
  std::priority_queue<State> queue;
  queue.push(State{1.0, 0, from});
  while (!queue.empty()) {
    const State current = queue.top();
    queue.pop();
    if (current.user == to) return current.trust;
    if (current.hops == maxHops) continue;
    const auto bestIt = best.find(current.user);
    if (bestIt != best.end() && bestIt->second > current.trust) continue;
    for (const UserId& next : graph.friendsOf(current.user)) {
      const double edge = *graph.trust(current.user, next);
      const double trust = current.trust * edge;
      const auto it = best.find(next);
      if (it != best.end() && it->second >= trust) continue;
      best[next] = trust;
      queue.push(State{trust, current.hops + 1, next});
    }
  }
  return std::nullopt;
}

std::vector<RankedResult> trustRankedSearch(const SocialGraph& graph,
                                            const UserId& searcher,
                                            const std::vector<UserId>& candidates,
                                            std::size_t maxHops, double alpha) {
  std::size_t maxDegree = 1;
  for (const UserId& user : graph.users()) {
    maxDegree = std::max(maxDegree, graph.degree(user));
  }
  std::vector<RankedResult> results;
  results.reserve(candidates.size());
  for (const UserId& candidate : candidates) {
    RankedResult r;
    r.user = candidate;
    r.trust = bestChainTrust(graph, searcher, candidate, maxHops).value_or(0.0);
    r.popularity = static_cast<double>(graph.degree(candidate)) /
                   static_cast<double>(maxDegree);
    r.score = alpha * r.trust + (1.0 - alpha) * r.popularity;
    results.push_back(std::move(r));
  }
  std::sort(results.begin(), results.end(),
            [](const RankedResult& a, const RankedResult& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.user < b.user;
            });
  return results;
}

}  // namespace dosn::search
