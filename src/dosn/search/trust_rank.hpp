// Trusted search results (paper §V-D): "if Alice trusts Bob and Bob trusts
// Sara, then Alice can trust Sara too. The amount of trust ... is a function
// of trust levels of every intermediate friend of that chain" — with
// popularity blended in, following Huang et al. [41].
//
// Chain trust is the product of edge trusts along the best chain (found with
// a Dijkstra-style max-product search, bounded by a hop limit). Popularity is
// normalized degree. The final score blends both.
#pragma once

#include <optional>
#include <vector>

#include "dosn/social/graph.hpp"

namespace dosn::search {

using social::SocialGraph;
using social::UserId;

/// Trust of a concrete chain: product of edge trusts; std::nullopt if any
/// link is missing.
std::optional<double> chainTrust(const SocialGraph& graph,
                                 const std::vector<UserId>& chain);

/// Best-chain trust from `from` to `to` within `maxHops` hops (max-product
/// Dijkstra). std::nullopt if unreachable within the bound.
std::optional<double> bestChainTrust(const SocialGraph& graph,
                                     const UserId& from, const UserId& to,
                                     std::size_t maxHops);

struct RankedResult {
  UserId user;
  double trust = 0.0;       // best-chain trust from the searcher
  double popularity = 0.0;  // degree / max degree
  double score = 0.0;       // alpha*trust + (1-alpha)*popularity
};

/// Ranks `candidates` for `searcher`. `alpha` weighs trust vs popularity.
/// Unreachable candidates (within maxHops) get trust 0.
std::vector<RankedResult> trustRankedSearch(const SocialGraph& graph,
                                            const UserId& searcher,
                                            const std::vector<UserId>& candidates,
                                            std::size_t maxHops,
                                            double alpha = 0.7);

}  // namespace dosn::search
