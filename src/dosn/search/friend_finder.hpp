// Friend discovery as a pipeline (paper §V intro: "the social network users
// ... intend to find new friends with common interests", under the
// search-vs-privacy trade-off):
//
//   1. candidate generation — keyword match over the profiles users chose to
//      expose (owner privacy: only published fields are indexed, §V-C);
//   2. ranking — chain trust blended with popularity (§V-D);
//   3. optional scope restriction — friends-of-friends only, trading recall
//      for not surfacing strangers.
//
// The searcher's identity never reaches the index (queries are posed under
// an opaque session tag), mirroring the §V-B searcher-privacy concern at the
// API level.
#pragma once

#include <string>
#include <vector>

#include "dosn/search/search_index.hpp"
#include "dosn/search/trust_rank.hpp"

namespace dosn::search {

struct FriendFinderConfig {
  std::size_t maxHops = 4;      // trust-chain search bound
  double alpha = 0.7;           // trust vs popularity blend
  bool fofOnly = false;         // restrict to friends-of-friends
  std::size_t maxResults = 10;
};

struct FriendCandidate {
  UserId user;
  double matchStrength = 0;  // fraction of query tokens the profile matched
  double trust = 0;
  double popularity = 0;
  double score = 0;  // matchStrength * (alpha*trust + (1-alpha)*popularity)
};

class FriendFinder {
 public:
  FriendFinder(const SocialGraph& graph, FriendFinderConfig config = {})
      : graph_(graph), config_(config) {}

  /// A user opts INTO discoverability by publishing (a subset of) their
  /// profile. Unpublished users never appear in results.
  void publishProfile(const social::Profile& profile);

  /// Runs the pipeline for `searcher` (used only for trust ranking and the
  /// optional friends-of-friends scope — never exposed to the index).
  std::vector<FriendCandidate> find(const UserId& searcher,
                                    const std::string& interests) const;

  std::size_t publishedCount() const { return published_.size(); }

 private:
  const SocialGraph& graph_;
  FriendFinderConfig config_;
  InvertedIndex index_;
  std::set<UserId> published_;
};

}  // namespace dosn::search
