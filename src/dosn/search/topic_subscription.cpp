#include "dosn/search/topic_subscription.hpp"

namespace dosn::search {

TopicPost TopicPublisher::publish(const std::set<std::string>& topics,
                                  const social::Post& post,
                                  util::Rng& rng) const {
  TopicPost out;
  out.topics = topics;
  out.ciphertext =
      abe::kpabeEncrypt(authority_.group(), authority_.publicKeysFor(topics),
                        topics, post.serialize(), rng)
          .serialize();
  return out;
}

std::optional<social::Post> TopicSubscriber::receive(const TopicPost& post) const {
  const auto ct = abe::KpAbeCiphertext::deserialize(post.ciphertext);
  if (!ct) return std::nullopt;
  const auto plain = abe::kpabeDecrypt(group_, key_, *ct);
  if (!plain) return std::nullopt;
  return social::Post::deserialize(*plain);
}

std::vector<social::Post> TopicSubscriber::filterFeed(
    const std::vector<TopicPost>& feed) const {
  std::vector<social::Post> out;
  for (const TopicPost& post : feed) {
    if (auto decoded = receive(post)) out.push_back(std::move(*decoded));
  }
  return out;
}

}  // namespace dosn::search
