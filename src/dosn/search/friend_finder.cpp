#include "dosn/search/friend_finder.hpp"

#include <algorithm>

#include "dosn/util/strings.hpp"

namespace dosn::search {

void FriendFinder::publishProfile(const social::Profile& profile) {
  index_.indexProfile(profile);
  published_.insert(profile.user);
}

std::vector<FriendCandidate> FriendFinder::find(
    const UserId& searcher, const std::string& interests) const {
  const std::size_t queryTokens = util::tokenize(interests).size();
  if (queryTokens == 0) return {};

  // 1. Candidate generation from the opt-in index.
  std::vector<FriendCandidate> candidates;
  std::set<UserId> seen;
  const std::set<UserId> fof =
      config_.fofOnly ? graph_.friendsOfFriends(searcher) : std::set<UserId>{};
  for (const auto& [ref, hits] : index_.searchAny(interests)) {
    if (ref.owner == searcher) continue;
    if (graph_.areFriends(searcher, ref.owner)) continue;  // already friends
    if (config_.fofOnly && !fof.count(ref.owner)) continue;
    if (!seen.insert(ref.owner).second) continue;
    FriendCandidate c;
    c.user = ref.owner;
    c.matchStrength =
        static_cast<double>(hits) / static_cast<double>(queryTokens);
    candidates.push_back(std::move(c));
  }
  if (candidates.empty()) return {};

  // 2. Trust + popularity ranking.
  std::vector<UserId> users;
  users.reserve(candidates.size());
  for (const auto& c : candidates) users.push_back(c.user);
  const auto ranked = trustRankedSearch(graph_, searcher, users,
                                        config_.maxHops, config_.alpha);
  for (auto& candidate : candidates) {
    const auto it = std::find_if(ranked.begin(), ranked.end(),
                                 [&](const RankedResult& r) {
                                   return r.user == candidate.user;
                                 });
    candidate.trust = it->trust;
    candidate.popularity = it->popularity;
    candidate.score = candidate.matchStrength * it->score;
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const FriendCandidate& a, const FriendCandidate& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.user < b.user;
            });
  if (candidates.size() > config_.maxResults) {
    candidates.resize(config_.maxResults);
  }
  return candidates;
}

}  // namespace dosn::search
