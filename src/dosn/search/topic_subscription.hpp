// KP-ABE topic subscriptions (paper §III-D, key-policy flavor): the
// subscriber's KEY carries the filter policy; publishers just label posts
// with topic attributes. A subscription key for "sports AND turkey" opens
// exactly the posts tagged with both — enforced by the KP-ABE layer, without
// the publisher knowing any subscriber's interests.
#pragma once

#include <optional>
#include <set>
#include <vector>

#include "dosn/abe/kpabe.hpp"
#include "dosn/social/content.hpp"

namespace dosn::search {

/// A labeled, encrypted post as published to the (untrusted) feed store.
struct TopicPost {
  std::set<std::string> topics;  // public labels (the KP-ABE attribute set)
  util::Bytes ciphertext;        // serialized KpAbeCiphertext
};

/// Publisher side: encrypts posts to their topic sets.
class TopicPublisher {
 public:
  explicit TopicPublisher(const abe::KpAbeAuthority& authority)
      : authority_(authority) {}

  TopicPost publish(const std::set<std::string>& topics,
                    const social::Post& post, util::Rng& rng) const;

 private:
  const abe::KpAbeAuthority& authority_;
};

/// Subscriber side: holds a key whose policy IS the subscription filter.
class TopicSubscriber {
 public:
  TopicSubscriber(const pkcrypto::DlogGroup& group, abe::KpAbeUserKey key)
      : group_(group), key_(std::move(key)) {}

  /// Decrypts iff the post's topic set satisfies the subscription policy.
  std::optional<social::Post> receive(const TopicPost& post) const;

  /// Filters a feed down to the matching, decrypted posts.
  std::vector<social::Post> filterFeed(const std::vector<TopicPost>& feed) const;

 private:
  const pkcrypto::DlogGroup& group_;
  abe::KpAbeUserKey key_;
};

}  // namespace dosn::search
