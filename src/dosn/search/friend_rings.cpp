#include "dosn/search/friend_rings.hpp"

#include <deque>
#include <map>
#include <set>

#include "dosn/util/error.hpp"

namespace dosn::search {

Matryoshka::Matryoshka(const SocialGraph& graph, UserId core, std::size_t depth,
                       std::size_t pathCount, util::Rng& rng)
    : core_(std::move(core)) {
  if (depth == 0) throw util::DosnError("Matryoshka: depth must be >= 1");
  std::set<UserId> used;  // nodes already serving on some path
  used.insert(core_);
  for (std::size_t p = 0; p < pathCount; ++p) {
    std::vector<UserId> path;
    UserId current = core_;
    for (std::size_t hop = 0; hop < depth; ++hop) {
      std::vector<UserId> candidates;
      for (const UserId& f : graph.friendsOf(current)) {
        if (!used.count(f)) candidates.push_back(f);
      }
      if (candidates.empty()) break;
      const UserId next = candidates[rng.uniform(candidates.size())];
      path.push_back(next);
      used.insert(next);
      current = next;
    }
    if (!path.empty()) paths_.push_back(std::move(path));
  }
}

const std::vector<UserId>& Matryoshka::path(std::size_t index) const {
  return paths_.at(index);
}

const UserId& Matryoshka::entryPoint(std::size_t index) const {
  return paths_.at(index).back();
}

std::string Matryoshka::route(
    std::size_t pathIndex, const std::string& request,
    const std::function<std::string(const std::string&)>& coreHandler,
    std::vector<UserId>* relayTrace) const {
  const std::vector<UserId>& chain = paths_.at(pathIndex);
  // Relay inward: entry point first, then toward the core.
  for (std::size_t i = chain.size(); i-- > 0;) {
    if (relayTrace) relayTrace->push_back(chain[i]);
  }
  return coreHandler(request);
}

std::size_t Matryoshka::anonymitySetSize(const SocialGraph& graph,
                                         std::size_t pathIndex) const {
  const UserId& entry = entryPoint(pathIndex);
  const std::size_t chainLength = paths_.at(pathIndex).size();
  // BFS from the entry point; candidates are all users at distance exactly
  // chainLength (any of them could be the core behind this mirror).
  std::map<UserId, std::size_t> dist;
  std::deque<UserId> queue;
  dist[entry] = 0;
  queue.push_back(entry);
  std::size_t candidates = 0;
  while (!queue.empty()) {
    const UserId current = queue.front();
    queue.pop_front();
    const std::size_t d = dist[current];
    if (d == chainLength) {
      ++candidates;
      continue;  // no need to expand past the radius
    }
    for (const UserId& next : graph.friendsOf(current)) {
      if (dist.count(next)) continue;
      dist[next] = d + 1;
      queue.push_back(next);
    }
  }
  return candidates;
}

}  // namespace dosn::search
