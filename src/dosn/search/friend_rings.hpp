// Trusted-friends ring routing (paper §V-B, Safebook's matryoshka): "each
// user connects directly to trusted friends to forward messages. It will
// cause a concentric circle of friends around each user, which makes it
// possible to communicate with the user without revealing identity or even
// IP address."
//
// A Matryoshka builds chains of friends from the core outward; requests enter
// at the outermost node (the mirror) and are relayed inward hop by hop. Each
// hop knows only its predecessor and successor; the requester learns only the
// entry point. anonymitySetSize() measures how many users an observer at the
// entry point must consider as possible cores (experiment E11).
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "dosn/social/graph.hpp"
#include "dosn/util/rng.hpp"

namespace dosn::search {

using social::SocialGraph;
using social::UserId;

class Matryoshka {
 public:
  /// Builds up to `pathCount` disjoint chains of length `depth` from `core`
  /// outward, each hop a friendship edge. Chains may come out shorter when
  /// the neighborhood is too small.
  Matryoshka(const SocialGraph& graph, UserId core, std::size_t depth,
             std::size_t pathCount, util::Rng& rng);

  const UserId& core() const { return core_; }
  std::size_t pathCount() const { return paths_.size(); }

  /// A chain, innermost hop first (paths_[i][0] is a direct friend of core).
  const std::vector<UserId>& path(std::size_t index) const;

  /// The outermost node of a chain — the only identity exposed to outsiders.
  const UserId& entryPoint(std::size_t index) const;

  /// Routes a request inward along the chain; every relay appends itself to
  /// `relayTrace` (what a global observer could log). Returns the core's
  /// response.
  std::string route(std::size_t pathIndex, const std::string& request,
                    const std::function<std::string(const std::string&)>& coreHandler,
                    std::vector<UserId>* relayTrace = nullptr) const;

  /// Size of the anonymity set an observer at the entry point faces: all
  /// users whose graph distance to the entry point is exactly the chain
  /// length (the observer knows the protocol depth, not the direction).
  std::size_t anonymitySetSize(const SocialGraph& graph,
                               std::size_t pathIndex) const;

 private:
  UserId core_;
  std::vector<std::vector<UserId>> paths_;
};

}  // namespace dosn::search
