#include "dosn/sim/churn.hpp"

#include <memory>

namespace dosn::sim {

double expectedAvailability(const ChurnConfig& config) {
  return config.meanOnlineSeconds /
         (config.meanOnlineSeconds + config.meanOfflineSeconds);
}

ChurnProcess::ChurnProcess(Network& network, ChurnConfig config,
                           std::vector<NodeAddr> nodes)
    : network_(network), config_(config), alive_(std::make_shared<bool>(true)) {
  for (const NodeAddr node : nodes) {
    const bool startOnline = network_.rng().chance(config_.initialOnlineFraction);
    network_.setOnline(node, startOnline);
    scheduleTransition(node);
  }
}

void ChurnProcess::scheduleTransition(NodeAddr node) {
  const bool online = network_.isOnline(node);
  const double meanSeconds =
      online ? config_.meanOnlineSeconds : config_.meanOfflineSeconds;
  const double durationSeconds = network_.rng().exponential(meanSeconds);
  const auto delay =
      static_cast<SimTime>(durationSeconds * static_cast<double>(kSecond));
  std::shared_ptr<bool> alive = alive_;
  network_.simulator().schedule(delay, [this, node, alive] {
    if (!*alive) return;
    network_.setOnline(node, !network_.isOnline(node));
    scheduleTransition(node);
  });
}

}  // namespace dosn::sim
