// Churn model: nodes alternate online/offline sessions with exponentially
// distributed durations — the availability threat the paper's §I motivates
// replication against ("users cannot guarantee full time data availability").
#pragma once

#include <memory>
#include <vector>

#include "dosn/sim/network.hpp"

namespace dosn::sim {

struct ChurnConfig {
  double meanOnlineSeconds = 600;   // mean session length
  double meanOfflineSeconds = 1200; // mean downtime
  /// Fraction of nodes that are online at t=0.
  double initialOnlineFraction = 0.5;
};

/// Expected steady-state availability of a node under this config.
double expectedAvailability(const ChurnConfig& config);

/// Drives on/off sessions for a set of nodes. Construct after the nodes
/// exist; it schedules the first transition for each node immediately.
class ChurnProcess {
 public:
  ChurnProcess(Network& network, ChurnConfig config,
               std::vector<NodeAddr> nodes);

  /// Stops scheduling further transitions (in-flight ones become no-ops).
  void stop() { *alive_ = false; }

  const ChurnConfig& config() const { return config_; }

 private:
  void scheduleTransition(NodeAddr node);

  Network& network_;
  ChurnConfig config_;
  std::shared_ptr<bool> alive_;
};

}  // namespace dosn::sim
