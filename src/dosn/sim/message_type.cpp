#include "dosn/sim/message_type.hpp"

#include <deque>
#include <unordered_map>

#include "dosn/util/error.hpp"

namespace dosn::sim {

namespace {

struct TransparentHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};

struct TransparentEq {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const {
    return a == b;
  }
};

struct InternTable {
  // deque: name storage never relocates, so messageTypeName() can hand out
  // stable references for the process lifetime.
  std::deque<std::string> names;
  std::unordered_map<std::string, MessageTypeId, TransparentHash, TransparentEq>
      ids;

  InternTable() { intern(""); }  // id 0: the default MessageType

  MessageTypeId intern(std::string_view name) {
    const auto it = ids.find(name);
    if (it != ids.end()) return it->second;
    const auto id = static_cast<MessageTypeId>(names.size());
    names.emplace_back(name);
    ids.emplace(names.back(), id);
    return id;
  }
};

InternTable& table() {
  static InternTable instance;
  return instance;
}

}  // namespace

MessageTypeId internMessageType(std::string_view name) {
  return table().intern(name);
}

const std::string& messageTypeName(MessageTypeId id) {
  const InternTable& t = table();
  if (id >= t.names.size()) {
    throw util::DosnError("MessageType: unknown id");
  }
  return t.names[id];
}

std::size_t messageTypeCount() { return table().names.size(); }

}  // namespace dosn::sim
