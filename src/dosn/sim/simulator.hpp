// Discrete-event simulator: the substrate substituting for a planet-scale P2P
// deployment (DESIGN.md §3.2, §3d). Virtual time is in microseconds; events
// are closures ordered by (time, insertion sequence) — the sequence number is
// the FIFO tie-break for same-timestamp events and is load-bearing for
// deterministic replay.
//
// The hot path is allocation-free for small closures: schedule() type-erases
// the callable into an EventClosure (48-byte inline buffer, simulator-owned
// pool for larger captures — no std::function, no malloc per event) and the
// calendar EventQueue buckets near-future events so pushes and pops stop
// paying log(pending) comparisons across the whole horizon.
#pragma once

#include <cstdint>
#include <utility>

#include "dosn/sim/event_queue.hpp"
#include "dosn/sim/pool.hpp"
#include "dosn/util/error.hpp"

namespace dosn::sim {

inline constexpr SimTime kMicrosecond = 1;
inline constexpr SimTime kMillisecond = 1000;
inline constexpr SimTime kSecond = 1000 * 1000;

class Simulator {
 public:
  SimTime now() const { return now_; }

  /// Schedules `fn` to run `delay` after the current time.
  template <class F>
  void schedule(SimTime delay, F&& fn) {
    scheduleAt(now_ + delay, std::forward<F>(fn));
  }

  /// Schedules `fn` at an absolute time (>= now).
  template <class F>
  void scheduleAt(SimTime when, F&& fn) {
    if (when < now_) throw util::NetError("Simulator: scheduling in the past");
    queue_.push(Event{when, nextSeq_++, EventClosure(pool_, std::forward<F>(fn))});
  }

  /// Runs events until the queue drains or `maxEvents` have executed.
  /// Returns the number of events executed.
  std::size_t run(std::size_t maxEvents = kDefaultMaxEvents);

  /// Runs events with time <= `until` (events scheduled later stay queued).
  std::size_t runUntil(SimTime until, std::size_t maxEvents = kDefaultMaxEvents);

  bool idle() const { return queue_.empty(); }
  std::size_t pendingEvents() const { return queue_.size(); }

  /// The pool backing spilled event closures (stats feed bench_scale).
  const Pool& eventPool() const { return pool_; }
  /// The calendar queue (partition sizes feed tests and bench_scale).
  const EventQueue& eventQueue() const { return queue_; }

  static constexpr std::size_t kDefaultMaxEvents = 50'000'000;

 private:
  // Declared before queue_: pending EventClosures hold blocks from this
  // pool, so it must outlive (construct before, destruct after) the queue.
  Pool pool_{/*blockSize=*/192, /*blocksPerSlab=*/1024};
  EventQueue queue_;
  SimTime now_ = 0;
  std::uint64_t nextSeq_ = 0;
};

}  // namespace dosn::sim
