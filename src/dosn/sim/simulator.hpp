// Discrete-event simulator: the substrate substituting for a planet-scale P2P
// deployment (DESIGN.md §3.2). Virtual time is in microseconds; events are
// closures ordered by (time, insertion sequence).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace dosn::sim {

/// Virtual time in microseconds.
using SimTime = std::uint64_t;

inline constexpr SimTime kMicrosecond = 1;
inline constexpr SimTime kMillisecond = 1000;
inline constexpr SimTime kSecond = 1000 * 1000;

class Simulator {
 public:
  SimTime now() const { return now_; }

  /// Schedules `fn` to run `delay` after the current time.
  void schedule(SimTime delay, std::function<void()> fn);

  /// Schedules `fn` at an absolute time (>= now).
  void scheduleAt(SimTime when, std::function<void()> fn);

  /// Runs events until the queue drains or `maxEvents` have executed.
  /// Returns the number of events executed.
  std::size_t run(std::size_t maxEvents = kDefaultMaxEvents);

  /// Runs events with time <= `until` (events scheduled later stay queued).
  std::size_t runUntil(SimTime until, std::size_t maxEvents = kDefaultMaxEvents);

  bool idle() const { return queue_.empty(); }
  std::size_t pendingEvents() const { return queue_.size(); }

  static constexpr std::size_t kDefaultMaxEvents = 50'000'000;

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t nextSeq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace dosn::sim
