#include "dosn/sim/simulator.hpp"

#include "dosn/util/error.hpp"

namespace dosn::sim {

void Simulator::schedule(SimTime delay, std::function<void()> fn) {
  scheduleAt(now_ + delay, std::move(fn));
}

void Simulator::scheduleAt(SimTime when, std::function<void()> fn) {
  if (when < now_) throw util::NetError("Simulator: scheduling in the past");
  queue_.push(Event{when, nextSeq_++, std::move(fn)});
}

std::size_t Simulator::run(std::size_t maxEvents) {
  std::size_t executed = 0;
  while (!queue_.empty() && executed < maxEvents) {
    // Copy out before pop: the handler may schedule new events.
    Event event = queue_.top();
    queue_.pop();
    now_ = event.when;
    event.fn();
    ++executed;
  }
  return executed;
}

std::size_t Simulator::runUntil(SimTime until, std::size_t maxEvents) {
  std::size_t executed = 0;
  while (!queue_.empty() && executed < maxEvents && queue_.top().when <= until) {
    Event event = queue_.top();
    queue_.pop();
    now_ = event.when;
    event.fn();
    ++executed;
  }
  if (now_ < until) now_ = until;
  return executed;
}

}  // namespace dosn::sim
