#include "dosn/sim/simulator.hpp"

namespace dosn::sim {

std::size_t Simulator::run(std::size_t maxEvents) {
  std::size_t executed = 0;
  while (!queue_.empty() && executed < maxEvents) {
    // Move out before running: the handler may schedule new events.
    Event event = queue_.pop();
    queue_.prefetchNext();  // warm the next closure block while this one runs
    now_ = event.when;
    event.fn();
    ++executed;
  }
  return executed;
}

std::size_t Simulator::runUntil(SimTime until, std::size_t maxEvents) {
  std::size_t executed = 0;
  while (!queue_.empty() && executed < maxEvents && queue_.nextTime() <= until) {
    Event event = queue_.pop();
    queue_.prefetchNext();  // warm the next closure block while this one runs
    now_ = event.when;
    event.fn();
    ++executed;
  }
  if (now_ < until) now_ = until;
  return executed;
}

}  // namespace dosn::sim
