// Deterministic fault injection for the simulated network (DESIGN.md §3.2).
//
// The paper's §I motivates every availability mechanism it surveys with the
// observation that in a DOSN "users cannot guarantee full time data
// availability". A single uniform loss probability (LatencyModel) cannot
// exercise that claim: real deployments see flaky individual links, nodes
// behind bad NATs, bit corruption, duplicated datagrams and transient
// partitions. A FaultPlan scripts all of those against the virtual clock:
//
//   FaultPlan plan;
//   plan.add(FaultRule::link(a, b).drop(1.0));              // severed, one way
//   plan.at(10 * kSecond, FaultRule::node(c).corrupt(0.2)); // c's NIC goes bad
//   plan.between(t1, t2, FaultRule::global().drop(0.2));    // 20% storm
//   plan.partition("rack-4", {n1, n2}, t1, /*heal=*/t2);    // island until t2
//   network.setFaultPlan(&plan);
//
// Every random draw flows through the network's seeded Rng, so a fixed seed
// plus a fixed plan reproduces a byte-identical delivery trace — the property
// test_faults locks in. Fault events are counted in an attached sim::Metrics
// (`net.dropped.fault`, `net.duplicated`, `net.corrupted`, `net.partitioned`).
#pragma once

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "dosn/sim/flat_map.hpp"
#include "dosn/sim/pool.hpp"
#include "dosn/sim/simulator.hpp"
#include "dosn/util/bytes.hpp"
#include "dosn/util/rng.hpp"

namespace dosn::sim {

using NodeAddr = std::uint64_t;  // mirrors network.hpp (kept header-light)

inline constexpr SimTime kFaultForever = ~SimTime{0};

/// One scripted network defect. Rules are *directional*: a kLink rule matches
/// only from->to traffic, so an asymmetric link is simply two different rules
/// (or one rule for one direction and none for the other). A kNode rule
/// matches traffic in or out of the node; a kGlobal rule matches everything.
struct FaultRule {
  enum class Scope { kGlobal, kLink, kNode };

  Scope scope = Scope::kGlobal;
  NodeAddr a = 0;  // kLink: sender; kNode: the node
  NodeAddr b = 0;  // kLink: receiver

  /// Overrides the link's base loss probability while active.
  std::optional<double> dropProbability;
  double duplicateProbability = 0.0;
  double corruptProbability = 0.0;
  /// Extra latency added on top of the sampled link latency.
  SimTime delaySpike = 0;
  double delaySpikeProbability = 0.0;

  /// Active window [start, end).
  SimTime start = 0;
  SimTime end = kFaultForever;

  static FaultRule global() { return {}; }
  static FaultRule link(NodeAddr from, NodeAddr to);
  static FaultRule node(NodeAddr n);

  // Chainable effect setters (probabilities clamped to [0, 1] on use).
  FaultRule& drop(double p);
  FaultRule& duplicate(double p);
  FaultRule& corrupt(double p);
  FaultRule& delay(SimTime spike, double probability = 1.0);

  bool matches(SimTime now, NodeAddr from, NodeAddr to) const;
};

/// A named network partition: `island` cannot exchange messages with the rest
/// of the network during [start, heal). Traffic within the island, and among
/// non-members, is unaffected; two distinct islands active at once also sever
/// island-to-island traffic (each crossing is a boundary crossing).
struct NetPartition {
  std::string name;
  // Open-addressing membership set: severs() runs on every send while a
  // plan is attached, so the island check is two O(1) probes, not two
  // red-black tree walks.
  AddrSet island;
  SimTime start = 0;
  SimTime heal = kFaultForever;

  bool severs(SimTime now, NodeAddr from, NodeAddr to) const;
};

class FaultPlan {
 public:
  /// Adds a rule with whatever window it already carries (default: always).
  FaultRule& add(FaultRule rule);
  /// Rule active from `t` onwards.
  FaultRule& at(SimTime t, FaultRule rule);
  /// Rule active during [t1, t2).
  FaultRule& between(SimTime t1, SimTime t2, FaultRule rule);
  /// Named partition isolating `island` during [start, heal).
  NetPartition& partition(std::string name, std::set<NodeAddr> island,
                          SimTime start, SimTime heal = kFaultForever);

  bool empty() const { return rules_.empty() && partitions_.empty(); }
  const std::vector<FaultRule>& rules() const { return rules_; }
  const std::vector<NetPartition>& partitions() const { return partitions_; }

  /// What the fault layer does to one message. `copies == 0` means dropped.
  struct Decision {
    bool partitioned = false;   // dropped at a partition boundary
    bool droppedByFault = false;  // dropped by a rule's drop override
    bool droppedByLoss = false;   // dropped by the link's base loss
    std::size_t copies = 1;     // 2 when duplicated
    bool corrupt = false;
    SimTime extraDelay = 0;

    bool dropped() const { return partitioned || droppedByFault || droppedByLoss; }
  };

  /// Evaluates all active faults for a from->to message at `now`.
  /// `baseLoss` is the link's LatencyModel loss, used when no active rule
  /// overrides it. Consumes rng draws in a fixed order, so the outcome
  /// sequence is a pure function of (seed, call sequence).
  ///
  /// Combination across multiple active matching rules: the *last added*
  /// drop override wins; duplicate/corrupt take the max probability; delay
  /// spikes accumulate.
  Decision decide(SimTime now, NodeAddr from, NodeAddr to, double baseLoss,
                  util::Rng& rng) const;

  /// True if any active partition severs from->to at `now`.
  bool partitioned(SimTime now, NodeAddr from, NodeAddr to) const;

 private:
  std::vector<FaultRule> rules_;
  std::vector<NetPartition> partitions_;
};

/// Flips 1–3 random bits of `payload` in place (no-op on empty payloads);
/// models in-flight corruption that a checksum/AEAD layer must reject.
/// Both overloads consume rng draws in the identical order, so swapping the
/// payload representation cannot shift the deterministic trace.
void corruptPayload(util::Bytes& payload, util::Rng& rng);
void corruptPayload(PooledBytes& payload, util::Rng& rng);

}  // namespace dosn::sim
