#include "dosn/sim/faults.hpp"

#include <algorithm>

namespace dosn::sim {

namespace {

double clamp01(double p) { return std::min(1.0, std::max(0.0, p)); }

}  // namespace

FaultRule FaultRule::link(NodeAddr from, NodeAddr to) {
  FaultRule rule;
  rule.scope = Scope::kLink;
  rule.a = from;
  rule.b = to;
  return rule;
}

FaultRule FaultRule::node(NodeAddr n) {
  FaultRule rule;
  rule.scope = Scope::kNode;
  rule.a = n;
  return rule;
}

FaultRule& FaultRule::drop(double p) {
  dropProbability = clamp01(p);
  return *this;
}

FaultRule& FaultRule::duplicate(double p) {
  duplicateProbability = clamp01(p);
  return *this;
}

FaultRule& FaultRule::corrupt(double p) {
  corruptProbability = clamp01(p);
  return *this;
}

FaultRule& FaultRule::delay(SimTime spike, double probability) {
  delaySpike = spike;
  delaySpikeProbability = clamp01(probability);
  return *this;
}

bool FaultRule::matches(SimTime now, NodeAddr from, NodeAddr to) const {
  if (now < start || now >= end) return false;
  switch (scope) {
    case Scope::kGlobal:
      return true;
    case Scope::kLink:
      return from == a && to == b;
    case Scope::kNode:
      return from == a || to == a;
  }
  return false;
}

bool NetPartition::severs(SimTime now, NodeAddr from, NodeAddr to) const {
  if (now < start || now >= heal) return false;
  return island.count(from) != island.count(to);
}

FaultRule& FaultPlan::add(FaultRule rule) {
  rules_.push_back(rule);
  return rules_.back();
}

FaultRule& FaultPlan::at(SimTime t, FaultRule rule) {
  rule.start = t;
  rule.end = kFaultForever;
  return add(rule);
}

FaultRule& FaultPlan::between(SimTime t1, SimTime t2, FaultRule rule) {
  rule.start = t1;
  rule.end = t2;
  return add(rule);
}

NetPartition& FaultPlan::partition(std::string name, std::set<NodeAddr> island,
                                   SimTime start, SimTime heal) {
  partitions_.push_back(NetPartition{
      std::move(name), AddrSet(island.begin(), island.end()), start, heal});
  return partitions_.back();
}

bool FaultPlan::partitioned(SimTime now, NodeAddr from, NodeAddr to) const {
  for (const NetPartition& p : partitions_) {
    if (p.severs(now, from, to)) return true;
  }
  return false;
}

FaultPlan::Decision FaultPlan::decide(SimTime now, NodeAddr from, NodeAddr to,
                                      double baseLoss, util::Rng& rng) const {
  Decision d;
  if (partitioned(now, from, to)) {
    d.partitioned = true;
    d.copies = 0;
    return d;
  }

  // Fold all active matching rules into one effect set before drawing any
  // randomness, so the number of rng draws per message does not depend on
  // rule order.
  std::optional<double> dropOverride;
  double duplicateP = 0.0;
  double corruptP = 0.0;
  SimTime spike = 0;
  double spikeP = 0.0;
  for (const FaultRule& rule : rules_) {
    if (!rule.matches(now, from, to)) continue;
    if (rule.dropProbability) dropOverride = rule.dropProbability;
    duplicateP = std::max(duplicateP, rule.duplicateProbability);
    corruptP = std::max(corruptP, rule.corruptProbability);
    if (rule.delaySpike > 0) {
      spike += rule.delaySpike;
      spikeP = std::max(spikeP, rule.delaySpikeProbability);
    }
  }

  const double loss = dropOverride ? *dropOverride : baseLoss;
  if (loss > 0 && rng.chance(loss)) {
    d.copies = 0;
    if (dropOverride) {
      d.droppedByFault = true;
    } else {
      d.droppedByLoss = true;
    }
    return d;
  }
  if (duplicateP > 0 && rng.chance(duplicateP)) d.copies = 2;
  if (corruptP > 0 && rng.chance(corruptP)) d.corrupt = true;
  if (spike > 0 && spikeP > 0 && rng.chance(spikeP)) d.extraDelay = spike;
  return d;
}

namespace {

// One body for both payload representations — the draw order (flip count,
// then per flip: index, bit) is part of the deterministic trace.
void corruptBytes(std::uint8_t* data, std::size_t size, util::Rng& rng) {
  if (size == 0) return;
  const std::size_t flips = 1 + static_cast<std::size_t>(rng.uniform(3));
  for (std::size_t f = 0; f < flips; ++f) {
    data[rng.uniform(size)] ^= static_cast<std::uint8_t>(1u << rng.uniform(8));
  }
}

}  // namespace

void corruptPayload(util::Bytes& payload, util::Rng& rng) {
  corruptBytes(payload.data(), payload.size(), rng);
}

void corruptPayload(PooledBytes& payload, util::Rng& rng) {
  corruptBytes(payload.data(), payload.size(), rng);
}

}  // namespace dosn::sim
