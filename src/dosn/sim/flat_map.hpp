// Open-addressing hash tables keyed by NodeAddr (DESIGN.md §3d). The sim's
// per-node / per-peer lookups (fault islands, RTT state, overlay link state)
// sat on std::map — every hit a pointer chase per tree level. At 100k–1M
// nodes those lookups dominate; AddrMap replaces them with one splitmix64
// hash and a short linear probe over a flat slot array.
//
// Design points:
//  - kNoAddr (~0) is the reserved empty-slot marker; it is already the
//    sentinel "no such node" address everywhere in the sim, so no legal key
//    collides with it.
//  - Deletion is backward-shift (no tombstones): probe chains stay compact,
//    so load factor and probe length never degrade with erase-heavy churn.
//  - Iteration order is the probe-table order, i.e. NOT deterministic across
//    table sizes. Anything feeding user-visible output must sort first
//    (see sortedKeys()).
#pragma once

#include <cstddef>
#include <cstdint>
#include <algorithm>
#include <utility>
#include <vector>

namespace dosn::sim {

namespace detail {

inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace detail

/// Open-addressing map from NodeAddr to V. The reserved key ~0 (kNoAddr)
/// cannot be stored.
template <class V>
class AddrMap {
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

 public:
  AddrMap() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    slots_.clear();
    size_ = 0;
    mask_ = 0;
  }

  /// Pointer to the value for `key`, or nullptr if absent.
  V* find(std::uint64_t key) {
    if (size_ == 0) return nullptr;
    for (std::size_t i = detail::splitmix64(key) & mask_;;
         i = (i + 1) & mask_) {
      Slot& s = slots_[i];
      if (s.key == key) return &s.value;
      if (s.key == kEmpty) return nullptr;
    }
  }
  const V* find(std::uint64_t key) const {
    return const_cast<AddrMap*>(this)->find(key);
  }
  bool contains(std::uint64_t key) const { return find(key) != nullptr; }

  /// The value for `key`, default-constructed and inserted if absent.
  V& operator[](std::uint64_t key) {
    reserveForInsert();
    for (std::size_t i = detail::splitmix64(key) & mask_;;
         i = (i + 1) & mask_) {
      Slot& s = slots_[i];
      if (s.key == key) return s.value;
      if (s.key == kEmpty) {
        s.key = key;
        s.value = V{};
        ++size_;
        return s.value;
      }
    }
  }

  /// Removes `key` if present; returns whether it was.
  bool erase(std::uint64_t key) {
    if (size_ == 0) return false;
    std::size_t i = detail::splitmix64(key) & mask_;
    for (;; i = (i + 1) & mask_) {
      if (slots_[i].key == key) break;
      if (slots_[i].key == kEmpty) return false;
    }
    // Backward-shift: pull each displaced follower of the probe chain into
    // the hole so no tombstone is needed.
    std::size_t hole = i;
    for (std::size_t j = (hole + 1) & mask_;; j = (j + 1) & mask_) {
      if (slots_[j].key == kEmpty) break;
      const std::size_t home = detail::splitmix64(slots_[j].key) & mask_;
      // Move j into the hole unless j still sits between its home slot and
      // the hole (cyclic comparison — the standard Robin-Hood test).
      const bool between = ((j - home) & mask_) < ((j - hole) & mask_);
      if (!between) {
        slots_[hole] = std::move(slots_[j]);
        hole = j;
      }
    }
    slots_[hole].key = kEmpty;
    slots_[hole].value = V{};
    --size_;
    return true;
  }

  /// Visits every (key, value) pair in table order (not sorted).
  template <class F>
  void forEach(F&& f) const {
    for (const Slot& s : slots_) {
      if (s.key != kEmpty) f(s.key, s.value);
    }
  }
  template <class F>
  void forEach(F&& f) {
    for (Slot& s : slots_) {
      if (s.key != kEmpty) f(s.key, s.value);
    }
  }

  /// All keys, ascending — for deterministic output paths.
  std::vector<std::uint64_t> sortedKeys() const {
    std::vector<std::uint64_t> keys;
    keys.reserve(size_);
    forEach([&](std::uint64_t k, const V&) { keys.push_back(k); });
    std::sort(keys.begin(), keys.end());
    return keys;
  }

 private:
  struct Slot {
    std::uint64_t key = kEmpty;
    V value{};
  };

  void reserveForInsert() {
    if (slots_.empty()) {
      slots_.resize(16);
      mask_ = 15;
      return;
    }
    // Grow at 70% load. Rehash by draining into a doubled table.
    if ((size_ + 1) * 10 <= slots_.size() * 7) return;
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    mask_ = slots_.size() - 1;
    for (Slot& s : old) {
      if (s.key == kEmpty) continue;
      for (std::size_t i = detail::splitmix64(s.key) & mask_;;
           i = (i + 1) & mask_) {
        if (slots_[i].key == kEmpty) {
          slots_[i] = std::move(s);
          break;
        }
      }
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
};

/// Open-addressing set of NodeAddr — AddrMap's membership-only sibling.
class AddrSet {
 public:
  AddrSet() = default;
  AddrSet(std::initializer_list<std::uint64_t> keys) {
    for (const std::uint64_t k : keys) insert(k);
  }
  template <class Iter>
  AddrSet(Iter first, Iter last) {
    for (; first != last; ++first) insert(*first);
  }

  std::size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  bool contains(std::uint64_t key) const { return map_.contains(key); }
  /// std::set-compatible spelling (0 or 1).
  std::size_t count(std::uint64_t key) const { return contains(key) ? 1 : 0; }
  void insert(std::uint64_t key) { map_[key] = Unit{}; }
  bool erase(std::uint64_t key) { return map_.erase(key); }
  void clear() { map_.clear(); }
  std::vector<std::uint64_t> sortedKeys() const { return map_.sortedKeys(); }

 private:
  struct Unit {};
  AddrMap<Unit> map_;
};

}  // namespace dosn::sim
