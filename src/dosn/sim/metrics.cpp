#include "dosn/sim/metrics.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace dosn::sim {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
}

void Histogram::record(double value) {
  values_.push_back(value);
  sorted_ = false;
}

void Histogram::ensureSorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Histogram::mean() const {
  if (values_.empty()) return kNaN;
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double Histogram::min() const {
  ensureSorted();
  return values_.empty() ? kNaN : values_.front();
}

double Histogram::max() const {
  ensureSorted();
  return values_.empty() ? kNaN : values_.back();
}

double Histogram::percentile(double p) const {
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: bad p");
  if (values_.empty()) return kNaN;
  ensureSorted();
  const double rank = p / 100.0 * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

void Metrics::increment(const std::string& name, std::uint64_t by) {
  counters_[name] += by;
}

std::uint64_t Metrics::counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void Metrics::gauge(const std::string& name, double value) {
  gauges_[name] = value;
}

double Metrics::gaugeValue(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? kNaN : it->second;
}

Histogram& Metrics::histogram(const std::string& name) {
  return histograms_[name];
}

std::vector<std::pair<std::string, std::uint64_t>> Metrics::countersWithPrefix(
    const std::string& prefix) const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  // counters_ is name-ordered, so the prefix range is contiguous.
  for (auto it = counters_.lower_bound(prefix); it != counters_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.emplace_back(it->first, it->second);
  }
  return out;
}

void printRpcObservability(const Metrics& metrics, std::FILE* out) {
  std::fprintf(out, "%-24s %10s\n", "counter", "value");
  for (const auto& [name, value] : metrics.countersWithPrefix("rpc.")) {
    std::fprintf(out, "%-24s %10llu\n", name.c_str(),
                 static_cast<unsigned long long>(value));
  }
  std::fprintf(out, "\n%-24s %8s %8s %8s %8s\n", "rtt histogram", "count",
               "mean", "p50", "p99");
  for (const auto& [name, hist] : metrics.histograms()) {
    if (name.rfind("rpc.", 0) != 0) continue;
    std::fprintf(out, "%-24s %8zu %7.1fms %6.1fms %6.1fms\n", name.c_str(),
                 hist.count(), hist.mean(), hist.percentile(50),
                 hist.percentile(99));
  }
}

}  // namespace dosn::sim
