// Interned message-type names (DESIGN.md §3d). Every sim::Message carries a
// dense MessageTypeId instead of an owned std::string, so the network's
// per-type traffic counters are flat arrays indexed without hashing and
// per-delivery dispatch compares one 32-bit id. Interning happens once —
// at endpoint registration or at first use of a string literal — and the
// id->name mapping is process-lifetime stable, so string-keyed views
// (printers, tests, the JSON artifacts) read exactly the names they always
// did.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace dosn::sim {

using MessageTypeId = std::uint32_t;

/// Interns `name`, returning its dense id. Re-interning the same name
/// returns the same id; ids are assigned contiguously from 0 (the empty
/// name is pre-interned as id 0, the id a default MessageType carries).
MessageTypeId internMessageType(std::string_view name);

/// The interned name for `id`. Throws util::DosnError on an id that was
/// never handed out (only possible by forging one from an integer).
const std::string& messageTypeName(MessageTypeId id);

/// Number of distinct names interned so far (upper bound for any id yet
/// handed out; dense counter arrays size themselves against this).
std::size_t messageTypeCount();

/// Value handle for an interned message type: 4 bytes, trivially copyable,
/// compares by id. Implicitly converts from any string spelling (interning
/// on construction) and back to the interned name, so string-based call
/// sites keep compiling while the hot path never touches a std::string.
class MessageType {
 public:
  MessageType() = default;  // the pre-interned empty name, id 0
  MessageType(std::string_view name) : id_(internMessageType(name)) {}
  MessageType(const char* name) : id_(internMessageType(name)) {}
  MessageType(const std::string& name) : id_(internMessageType(name)) {}
  /// Wraps an id previously obtained from internMessageType()/id().
  static MessageType fromId(MessageTypeId id) {
    MessageType t;
    t.id_ = id;
    return t;
  }

  MessageTypeId id() const { return id_; }
  const std::string& name() const { return messageTypeName(id_); }
  operator const std::string&() const { return name(); }

  friend bool operator==(MessageType a, MessageType b) { return a.id_ == b.id_; }
  friend bool operator!=(MessageType a, MessageType b) { return a.id_ != b.id_; }
  // Exact-type overloads (not string_view) so `type == "x"` never has to
  // choose between two user-defined conversions — and never interns: a
  // comparison against a name nobody sends should not grow the table.
  friend bool operator==(MessageType a, const char* b) { return a.name() == b; }
  friend bool operator==(const char* a, MessageType b) { return b.name() == a; }
  friend bool operator==(MessageType a, const std::string& b) {
    return a.name() == b;
  }
  friend bool operator==(const std::string& a, MessageType b) {
    return b.name() == a;
  }
  friend bool operator!=(MessageType a, const char* b) { return !(a == b); }
  friend bool operator!=(const char* a, MessageType b) { return !(a == b); }
  friend bool operator!=(MessageType a, const std::string& b) { return !(a == b); }
  friend bool operator!=(const std::string& a, MessageType b) { return !(a == b); }

 private:
  MessageTypeId id_ = 0;
};

}  // namespace dosn::sim
