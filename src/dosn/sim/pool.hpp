// Fixed-size block pool for the simulator hot path (DESIGN.md §3d), plus the
// two clients that put it on every message's critical path:
//
//  - EventClosure: the move-only type-erased closure stored in the event
//    queue. Small captures (<= 48 bytes) live inline in the queue slot;
//    larger ones take one pool block instead of a malloc. Every scheduled
//    event used to cost at least one std::function heap allocation; now the
//    common ones cost none and the rest recycle freed blocks.
//  - PooledBytes: the owning payload buffer of an in-flight sim::Message.
//    Small payloads are copied into pool blocks; oversized ones spill to a
//    regular heap buffer (util::Bytes), and buffers adopted from an rvalue
//    util::Bytes keep their storage without any copy.
//
// The pool is a free list over slab-carved blocks: allocation is a pointer
// pop, deallocation a pointer push, and slabs are only returned to the
// system on reset(). Everything is single-threaded, like the simulator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "dosn/util/bytes.hpp"
#include "dosn/util/error.hpp"

namespace dosn::sim {

class Pool {
 public:
  explicit Pool(std::size_t blockSize = 256, std::size_t blocksPerSlab = 1024);
  ~Pool() = default;

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// Block-sized or smaller requests come from the free list (or a fresh
  /// slab); anything larger spills to ::operator new. Never returns null.
  void* allocate(std::size_t n);
  /// `n` must be the size passed to allocate() — it selects pool vs spill.
  void deallocate(void* p, std::size_t n) noexcept;

  std::size_t blockSize() const { return blockSize_; }
  std::size_t blocksPerSlab() const { return blocksPerSlab_; }

  // Observability (bench_scale reports these; tests pin reuse/spill/reset).
  std::uint64_t blockAllocs() const { return blockAllocs_; }  ///< pool-served
  std::uint64_t reuses() const { return reuses_; }  ///< served from free list
  std::uint64_t spills() const { return spills_; }  ///< oversized -> heap
  std::size_t slabCount() const { return slabs_.size(); }
  std::size_t liveBlocks() const { return liveBlocks_; }
  std::size_t liveSpills() const { return liveSpills_; }

  /// Releases every slab back to the system and clears the free list (the
  /// cumulative counters survive). Throws util::DosnError while any block
  /// or spill allocation is still outstanding.
  void reset();

 private:
  struct FreeNode {
    FreeNode* next;
  };

  std::size_t blockSize_;
  std::size_t blocksPerSlab_;
  std::vector<std::unique_ptr<unsigned char[]>> slabs_;
  FreeNode* freeList_ = nullptr;
  std::size_t slabUsed_ = 0;  // blocks carved from the newest slab

  std::uint64_t blockAllocs_ = 0;
  std::uint64_t reuses_ = 0;
  std::uint64_t spills_ = 0;
  std::size_t liveBlocks_ = 0;
  std::size_t liveSpills_ = 0;
};

/// The process-wide pool PooledBytes draws from (message payloads).
Pool& payloadPool();

/// Pool-backed owning byte buffer for in-flight message payloads. Converts
/// implicitly from/to the library-wide util::Bytes / util::BytesView so
/// handlers and tests keep reading payloads the way they always did.
///
/// Storage tiers by payload size: <= kInlineSize bytes live inline in the
/// object itself — for an in-flight message that means inside the delivery
/// closure's pool block, zero extra allocations and one contiguous cache
/// run per message; <= the pool's block size takes one payloadPool() block;
/// anything bigger spills to a regular heap buffer.
class PooledBytes {
 public:
  /// Covers control-plane frames (pings, digests, lookups); picked so the
  /// delivery closure + inline payload still fit one event-pool block.
  static constexpr std::size_t kInlineSize = 64;

  PooledBytes() = default;
  PooledBytes(util::BytesView data) { assign(data); }
  PooledBytes(const util::Bytes& data) { assign(util::BytesView(data)); }
  /// Adopts the vector's storage: no copy, no pool traffic. Copies made
  /// from this buffer later still go through the inline/pool tiers.
  PooledBytes(util::Bytes&& data) noexcept : spill_(std::move(data)) {}

  PooledBytes(const PooledBytes& other) { assign(other.view()); }
  PooledBytes(PooledBytes&& other) noexcept
      : block_(other.block_), size_(other.size_), inlined_(other.inlined_),
        spill_(std::move(other.spill_)) {
    if (inlined_) __builtin_memcpy(inline_, other.inline_, size_);
    other.block_ = nullptr;
    other.size_ = 0;
    other.inlined_ = false;
  }
  PooledBytes& operator=(const PooledBytes& other) {
    if (this != &other) {
      release();
      assign(other.view());
    }
    return *this;
  }
  PooledBytes& operator=(PooledBytes&& other) noexcept {
    if (this != &other) {
      release();
      block_ = other.block_;
      size_ = other.size_;
      inlined_ = other.inlined_;
      spill_ = std::move(other.spill_);
      if (inlined_) __builtin_memcpy(inline_, other.inline_, size_);
      other.block_ = nullptr;
      other.size_ = 0;
      other.inlined_ = false;
    }
    return *this;
  }
  ~PooledBytes() { release(); }

  const std::uint8_t* data() const {
    return inlined_ ? inline_ : block_ ? block_ : spill_.data();
  }
  std::uint8_t* data() {
    return inlined_ ? inline_ : block_ ? block_ : spill_.data();
  }
  std::size_t size() const {
    return (inlined_ || block_) ? size_ : spill_.size();
  }
  bool empty() const { return size() == 0; }
  /// True when the bytes live in a payloadPool() block (not inline/spill).
  bool pooled() const { return block_ != nullptr; }
  /// True when the bytes live inside the object itself.
  bool inlined() const { return inlined_; }

  const std::uint8_t* begin() const { return data(); }
  const std::uint8_t* end() const { return data() + size(); }

  util::BytesView view() const { return {data(), size()}; }
  operator util::BytesView() const { return view(); }
  operator util::Bytes() const { return util::Bytes(begin(), end()); }

 private:
  void assign(util::BytesView data);
  void release() noexcept;

  std::uint8_t* block_ = nullptr;  // pool block when set (and not inlined_)
  std::uint32_t size_ = 0;         // payload size when inline or pooled
  bool inlined_ = false;
  util::Bytes spill_;
  std::uint8_t inline_[kInlineSize];
};

/// Move-only type-erased void() closure for simulator events. The handle is
/// ONE pointer: the capture lives in a pool block behind a small header
/// (dispatch table, owning pool, block size), so the events sifting through
/// the queue's heaps are 24-byte PODs whose moves are two stores — no inline
/// buffer to relocate, no branches. Invocation is one indirect call; the
/// block is recycled through the pool free list immediately after it runs,
/// so consecutive events reuse the same cache-hot lines.
class EventClosure {
 public:
  EventClosure() = default;

  template <class F, class Fn = std::decay_t<F>>
  EventClosure(Pool& pool, F&& fn) {
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "EventClosure: over-aligned callables are not supported");
    const std::size_t bytes = sizeof(Header) + sizeof(Fn);
    block_ = static_cast<Header*>(pool.allocate(bytes));
    // One combined entry for the hot path (invoke + destroy in a single
    // indirect call); `destroy` alone is only for dropping unrun closures.
    block_->run = [](void* p) {
      Fn* fn = static_cast<Fn*>(p);
      (*fn)();
      fn->~Fn();
    };
    block_->destroy = [](void* p) { static_cast<Fn*>(p)->~Fn(); };
    block_->pool = &pool;
    block_->bytes = static_cast<std::uint32_t>(bytes);
    ::new (capture()) Fn(std::forward<F>(fn));
  }

  EventClosure(const EventClosure&) = delete;
  EventClosure& operator=(const EventClosure&) = delete;

  EventClosure(EventClosure&& other) noexcept : block_(other.block_) {
    other.block_ = nullptr;
  }
  EventClosure& operator=(EventClosure&& other) noexcept {
    if (this != &other) {
      reset();
      block_ = other.block_;
      other.block_ = nullptr;
    }
    return *this;
  }
  ~EventClosure() { reset(); }

  /// Runs the closure, then releases its block back to the pool (the
  /// capture is single-shot, like the events it carries).
  void operator()() {
    Header* h = block_;
    block_ = nullptr;
    h->run(static_cast<void*>(h + 1));
    h->pool->deallocate(h, h->bytes);
  }
  explicit operator bool() const { return block_ != nullptr; }

  /// The closure's pool block, for best-effort prefetching by the event
  /// loop (the block was last touched when the event was scheduled, many
  /// thousands of events ago — it is essentially always cold).
  const void* block() const noexcept { return block_; }

 private:
  struct Header {
    void (*run)(void*);      // invoke + destroy the capture (hot path)
    void (*destroy)(void*);  // destroy only (closure dropped unrun)
    Pool* pool;
    std::uint32_t bytes;
  };

  void* capture() { return static_cast<void*>(block_ + 1); }

  void reset() noexcept {
    if (!block_) return;
    block_->destroy(static_cast<void*>(block_ + 1));
    block_->pool->deallocate(block_, block_->bytes);
    block_ = nullptr;
  }

  Header* block_ = nullptr;
};

}  // namespace dosn::sim
