#include "dosn/sim/event_queue.hpp"

#include <algorithm>
#include <utility>

namespace dosn::sim {

namespace {

// Same ordering the old std::priority_queue used: a "later than" comparator,
// which std::*_heap turns into a min-heap on (when, seq).
bool later(const Event& a, const Event& b) {
  if (a.when != b.when) return a.when > b.when;
  return a.seq > b.seq;
}

}  // namespace

void EventQueue::heapPush(Heap& heap, Event e) {
  heap.push_back(std::move(e));
  std::push_heap(heap.begin(), heap.end(), later);
}

Event EventQueue::heapPop(Heap& heap) {
  std::pop_heap(heap.begin(), heap.end(), later);
  Event e = std::move(heap.back());
  heap.pop_back();
  return e;
}

void EventQueue::push(Event e) {
  // All comparisons are in bucket space: times near 2^64 (kFaultForever
  // horizons) would overflow `windowStart + span` in time units, while the
  // max bucket number (2^54) leaves plenty of headroom.
  const std::uint64_t b = bucketOf(e.when);
  if (b < windowStartBucket_) {
    heapPush(early_, std::move(e));
  } else if (b >= windowStartBucket_ + kBucketCount) {
    heapPush(overflow_, std::move(e));
  } else {
    heapPush(ring_[b % kBucketCount], std::move(e));
    ++ringSize_;
    // An event may land behind the cursor (delay-0 scheduling, arbitrary
    // property-test orders); dragging the cursor back keeps the scan-from-
    // cursor invariant: no ring event lives in a bucket before it.
    if (b < cursorBucket_) cursorBucket_ = b;
  }
  ++size_;
}

EventQueue::Heap& EventQueue::locate() {
  // Partitions are totally ordered in time: early < ring < overflow.
  if (!early_.empty()) return early_;
  if (ringSize_ == 0) rebase();  // overflow must be non-empty (size_ > 0)
  while (ring_[cursorBucket_ % kBucketCount].empty()) ++cursorBucket_;
  // Buckets from the cursor up are visited in time order, and a bucket's
  // events all precede any later bucket's, so the first non-empty bucket
  // holds the ring minimum.
  return ring_[cursorBucket_ % kBucketCount];
}

void EventQueue::rebase() {
  windowStartBucket_ = bucketOf(overflow_.front().when);
  cursorBucket_ = windowStartBucket_;
  const std::uint64_t windowEndBucket = windowStartBucket_ + kBucketCount;
  while (!overflow_.empty() && bucketOf(overflow_.front().when) < windowEndBucket) {
    Event e = heapPop(overflow_);
    heapPush(ring_[bucketOf(e.when) % kBucketCount], std::move(e));
    ++ringSize_;
  }
}

Event EventQueue::pop() {
  Heap& heap = locate();
  const bool fromRing = &heap != &early_;
  Event e = heapPop(heap);
  if (fromRing) --ringSize_;
  --size_;
  return e;
}

SimTime EventQueue::nextTime() { return locate().front().when; }

}  // namespace dosn::sim
