#include "dosn/sim/pool.hpp"

#include <cstring>

namespace dosn::sim {

namespace {

std::size_t roundUp(std::size_t n, std::size_t to) {
  return (n + to - 1) / to * to;
}

}  // namespace

Pool::Pool(std::size_t blockSize, std::size_t blocksPerSlab)
    : blockSize_(roundUp(std::max(blockSize, sizeof(FreeNode)),
                         alignof(std::max_align_t))),
      blocksPerSlab_(std::max<std::size_t>(blocksPerSlab, 1)) {}

void* Pool::allocate(std::size_t n) {
  if (n > blockSize_) {
    ++spills_;
    ++liveSpills_;
    return ::operator new(n);
  }
  ++blockAllocs_;
  ++liveBlocks_;
  if (freeList_) {
    ++reuses_;
    FreeNode* node = freeList_;
    freeList_ = node->next;
    return node;
  }
  if (slabs_.empty() || slabUsed_ == blocksPerSlab_) {
    // new unsigned char[] is aligned for any type without extended
    // alignment, and blockSize_ is a multiple of alignof(max_align_t), so
    // every carved block keeps that alignment.
    slabs_.push_back(
        std::make_unique<unsigned char[]>(blockSize_ * blocksPerSlab_));
    slabUsed_ = 0;
  }
  return slabs_.back().get() + blockSize_ * slabUsed_++;
}

void Pool::deallocate(void* p, std::size_t n) noexcept {
  if (!p) return;
  if (n > blockSize_) {
    --liveSpills_;
    ::operator delete(p);
    return;
  }
  --liveBlocks_;
  FreeNode* node = static_cast<FreeNode*>(p);
  node->next = freeList_;
  freeList_ = node;
}

void Pool::reset() {
  if (liveBlocks_ > 0 || liveSpills_ > 0) {
    throw util::DosnError("Pool: reset with live allocations outstanding");
  }
  slabs_.clear();
  freeList_ = nullptr;
  slabUsed_ = 0;
}

Pool& payloadPool() {
  static Pool pool(/*blockSize=*/256, /*blocksPerSlab=*/1024);
  return pool;
}

void PooledBytes::assign(util::BytesView data) {
  if (data.size() <= kInlineSize) {
    inlined_ = true;
    size_ = static_cast<std::uint32_t>(data.size());
    if (!data.empty()) std::memcpy(inline_, data.data(), data.size());
    return;
  }
  Pool& pool = payloadPool();
  if (data.size() <= pool.blockSize()) {
    block_ = static_cast<std::uint8_t*>(pool.allocate(data.size()));
    size_ = static_cast<std::uint32_t>(data.size());
    std::memcpy(block_, data.data(), data.size());
  } else {
    spill_.assign(data.begin(), data.end());
  }
}

void PooledBytes::release() noexcept {
  if (block_) {
    payloadPool().deallocate(block_, size_);
    block_ = nullptr;
  }
  inlined_ = false;
  size_ = 0;
  spill_.clear();
}

}  // namespace dosn::sim
