#include "dosn/sim/network.hpp"

#include <vector>

#include "dosn/sim/faults.hpp"
#include "dosn/sim/metrics.hpp"
#include "dosn/util/error.hpp"

namespace dosn::sim {

SimTime LatencyModel::sample(util::Rng& rng) const {
  SimTime t = base;
  if (jitter > 0) t += rng.uniform(jitter + 1);
  return t;
}

Network::Network(Simulator& sim, LatencyModel latency, util::Rng& rng)
    : sim_(sim), latency_(latency), rng_(rng) {}

NodeAddr Network::addNode() {
  const NodeAddr addr = nextAddr_++;
  nodes_.emplace(addr, NodeState{});
  return addr;
}

Network::NodeState& Network::state(NodeAddr node) {
  const auto it = nodes_.find(node);
  if (it == nodes_.end()) throw util::NetError("Network: unknown node");
  return it->second;
}

const Network::NodeState& Network::state(NodeAddr node) const {
  const auto it = nodes_.find(node);
  if (it == nodes_.end()) throw util::NetError("Network: unknown node");
  return it->second;
}

void Network::setHandler(NodeAddr node, Handler handler) {
  state(node).handler = std::move(handler);
}

void Network::setStatusHook(NodeAddr node, StatusHook hook) {
  state(node).statusHook = std::move(hook);
}

std::uint64_t Network::addStatusObserver(StatusHook observer) {
  const std::uint64_t token = nextObserverToken_++;
  statusObservers_.emplace(token, std::move(observer));
  return token;
}

void Network::removeStatusObserver(std::uint64_t token) {
  statusObservers_.erase(token);
}

void Network::setOnline(NodeAddr node, bool online) {
  NodeState& s = state(node);
  if (s.online == online) return;
  s.online = online;
  if (s.statusHook) s.statusHook(node, online);
  // Copy the tokens first: an observer may add/remove observers while
  // running (e.g. an endpoint tearing down in reaction to churn).
  std::vector<std::uint64_t> tokens;
  tokens.reserve(statusObservers_.size());
  for (const auto& [token, hook] : statusObservers_) tokens.push_back(token);
  for (const std::uint64_t token : tokens) {
    const auto it = statusObservers_.find(token);
    if (it != statusObservers_.end() && it->second) it->second(node, online);
  }
}

bool Network::isOnline(NodeAddr node) const { return state(node).online; }

std::size_t Network::onlineCount() const {
  std::size_t count = 0;
  for (const auto& [addr, s] : nodes_) {
    if (s.online) ++count;
  }
  return count;
}

void Network::count(const char* name) {
  if (metrics_) metrics_->increment(name);
}

void Network::deliver(NodeAddr from, NodeAddr to, SimTime delay, Message msg) {
  sim_.schedule(delay, [this, from, to, msg = std::move(msg)]() mutable {
    const auto it = nodes_.find(to);
    if (it == nodes_.end() || !it->second.online || !it->second.handler) {
      ++messagesDropped_;
      count("net.dropped.offline");
      return;
    }
    ++messagesDelivered_;
    bytesDelivered_ += msg.payload.size();
    ++deliveredByType_[msg.type];
    it->second.handler(from, msg);
  });
}

void Network::send(NodeAddr from, NodeAddr to, Message msg) {
  const NodeState& sender = state(from);
  state(to);  // validate address
  if (!sender.online) return;

  ++messagesSent_;
  bytesSent_ += msg.payload.size();
  ++messagesByType_[msg.type];

  if (faults_ && !faults_->empty()) {
    const FaultPlan::Decision d =
        faults_->decide(sim_.now(), from, to, latency_.lossProbability, rng_);
    if (d.dropped()) {
      ++messagesDropped_;
      if (d.partitioned) count("net.partitioned");
      if (d.droppedByFault) count("net.dropped.fault");
      if (d.droppedByLoss) count("net.dropped.loss");
      return;
    }
    if (d.corrupt) {
      corruptPayload(msg.payload, rng_);
      count("net.corrupted");
    }
    if (d.copies > 1) count("net.duplicated");
    for (std::size_t i = 0; i < d.copies; ++i) {
      const SimTime delay = latency_.sample(rng_) + d.extraDelay;
      deliver(from, to, delay, msg);
    }
    return;
  }

  if (latency_.lossProbability > 0 && rng_.chance(latency_.lossProbability)) {
    ++messagesDropped_;
    count("net.dropped.loss");
    return;
  }
  deliver(from, to, latency_.sample(rng_), std::move(msg));
}

void Network::resetStats() {
  messagesSent_ = 0;
  messagesDelivered_ = 0;
  messagesDropped_ = 0;
  bytesSent_ = 0;
  bytesDelivered_ = 0;
  messagesByType_.clear();
  deliveredByType_.clear();
}

}  // namespace dosn::sim
