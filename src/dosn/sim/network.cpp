#include "dosn/sim/network.hpp"

#include <vector>

#include "dosn/sim/faults.hpp"
#include "dosn/sim/metrics.hpp"
#include "dosn/util/error.hpp"

namespace dosn::sim {

SimTime LatencyModel::sample(util::Rng& rng) const {
  SimTime t = base;
  if (jitter > 0) t += rng.uniform(jitter + 1);
  return t;
}

Network::Network(Simulator& sim, LatencyModel latency, util::Rng& rng)
    : sim_(sim), latency_(latency), rng_(rng) {}

NodeAddr Network::addNode() {
  handlers_.emplace_back();
  online_.push_back(1);
  return static_cast<NodeAddr>(handlers_.size());
}

void Network::validate(NodeAddr node) const {
  if (node == 0 || node > handlers_.size()) {
    throw util::NetError("Network: unknown node");
  }
}

void Network::setHandler(NodeAddr node, Handler handler) {
  validate(node);
  handlers_[node - 1] = std::move(handler);
}

void Network::setStatusHook(NodeAddr node, StatusHook hook) {
  validate(node);
  statusHooks_[node] = std::move(hook);
}

std::uint64_t Network::addStatusObserver(StatusHook observer) {
  const std::uint64_t token = nextObserverToken_++;
  statusObservers_.emplace(token, std::move(observer));
  return token;
}

void Network::removeStatusObserver(std::uint64_t token) {
  statusObservers_.erase(token);
}

void Network::setOnline(NodeAddr node, bool online) {
  validate(node);
  if (static_cast<bool>(online_[node - 1]) == online) return;
  online_[node - 1] = online ? 1 : 0;
  if (StatusHook* hook = statusHooks_.find(node); hook && *hook) {
    (*hook)(node, online);
  }
  // Copy the tokens first: an observer may add/remove observers while
  // running (e.g. an endpoint tearing down in reaction to churn).
  std::vector<std::uint64_t> tokens;
  tokens.reserve(statusObservers_.size());
  for (const auto& [token, hook] : statusObservers_) tokens.push_back(token);
  for (const std::uint64_t token : tokens) {
    const auto it = statusObservers_.find(token);
    if (it != statusObservers_.end() && it->second) it->second(node, online);
  }
}

bool Network::isOnline(NodeAddr node) const {
  validate(node);
  return online_[node - 1] != 0;
}

std::size_t Network::onlineCount() const {
  std::size_t count = 0;
  for (const std::uint8_t flag : online_) {
    if (flag) ++count;
  }
  return count;
}

void Network::count(const char* name) {
  if (metrics_) metrics_->increment(name);
}

void Network::bumpTypeCounter(std::vector<std::uint64_t>& counters,
                              MessageTypeId id) {
  if (id >= counters.size()) counters.resize(id + 1, 0);
  ++counters[id];
}

std::map<std::string, std::uint64_t> Network::typeCounterView(
    const std::vector<std::uint64_t>& counters) {
  std::map<std::string, std::uint64_t> view;
  for (MessageTypeId id = 0; id < counters.size(); ++id) {
    if (counters[id] != 0) view.emplace(messageTypeName(id), counters[id]);
  }
  return view;
}

std::map<std::string, std::uint64_t> Network::messagesByType() const {
  return typeCounterView(sentByType_);
}

std::map<std::string, std::uint64_t> Network::deliveredByType() const {
  return typeCounterView(deliveredByType_);
}

std::uint64_t Network::sentOfType(MessageType type) const {
  return type.id() < sentByType_.size() ? sentByType_[type.id()] : 0;
}

std::uint64_t Network::deliveredOfType(MessageType type) const {
  return type.id() < deliveredByType_.size() ? deliveredByType_[type.id()] : 0;
}

void Network::recordSent(const Message& msg) {
  ++messagesSent_;
  bytesSent_ += msg.payload.size();
  bumpTypeCounter(sentByType_, msg.type.id());
}

void Network::recordDelivered(const Message& msg) {
  ++messagesDelivered_;
  bytesDelivered_ += msg.payload.size();
  bumpTypeCounter(deliveredByType_, msg.type.id());
}

void Network::deliver(NodeAddr from, NodeAddr to, SimTime delay, Message msg) {
  sim_.schedule(delay, [this, from, to, msg = std::move(msg)]() mutable {
    // `to` was validated at send time and nodes are never removed, so only
    // the flag and handler need rechecking at delivery time.
    Handler& handler = handlers_[to - 1];
    if (!online_[to - 1] || !handler) {
      ++messagesDropped_;
      count("net.dropped.offline");
      return;
    }
    recordDelivered(msg);
    handler(from, msg);
  });
}

void Network::send(NodeAddr from, NodeAddr to, Message msg) {
  validate(from);
  validate(to);
  if (!online_[from - 1]) return;

  recordSent(msg);

  if (faults_ && !faults_->empty()) {
    const FaultPlan::Decision d =
        faults_->decide(sim_.now(), from, to, latency_.lossProbability, rng_);
    if (d.dropped()) {
      ++messagesDropped_;
      if (d.partitioned) count("net.partitioned");
      if (d.droppedByFault) count("net.dropped.fault");
      if (d.droppedByLoss) count("net.dropped.loss");
      return;
    }
    if (d.corrupt) {
      corruptPayload(msg.payload, rng_);
      count("net.corrupted");
    }
    if (d.copies > 1) count("net.duplicated");
    for (std::size_t i = 0; i < d.copies; ++i) {
      const SimTime delay = latency_.sample(rng_) + d.extraDelay;
      deliver(from, to, delay, msg);
    }
    return;
  }

  if (latency_.lossProbability > 0 && rng_.chance(latency_.lossProbability)) {
    ++messagesDropped_;
    count("net.dropped.loss");
    return;
  }
  deliver(from, to, latency_.sample(rng_), std::move(msg));
}

void Network::resetStats() {
  messagesSent_ = 0;
  messagesDelivered_ = 0;
  messagesDropped_ = 0;
  bytesSent_ = 0;
  bytesDelivered_ = 0;
  sentByType_.assign(sentByType_.size(), 0);
  deliveredByType_.assign(deliveredByType_.size(), 0);
}

}  // namespace dosn::sim
