// Lightweight metrics for experiments: counters, last-value gauges and value
// histograms with percentile queries.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace dosn::sim {

class Histogram {
 public:
  void record(double value);

  std::size_t count() const { return values_.size(); }
  // mean/min/max/percentile return quiet NaN on an empty histogram — a value
  // that cannot be mistaken for a measurement in a report (0.0 can).
  double mean() const;
  double min() const;
  double max() const;
  /// p in [0, 100]; linear interpolation between order statistics.
  double percentile(double p) const;

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = true;

  void ensureSorted() const;
};

class Metrics {
 public:
  void increment(const std::string& name, std::uint64_t by = 1);
  std::uint64_t counter(const std::string& name) const;

  /// Sets a last-value gauge (e.g. the current SRTT of an RTT estimator).
  void gauge(const std::string& name, double value);
  /// The gauge's last value, or quiet NaN if it was never set.
  double gaugeValue(const std::string& name) const;
  const std::map<std::string, double>& gauges() const { return gauges_; }

  Histogram& histogram(const std::string& name);
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }
  const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }

  /// Counters whose name starts with `prefix`, in name order — how the
  /// benches dump one RPC type's `rpc.<type>.*` family in one call.
  std::vector<std::pair<std::string, std::uint64_t>> countersWithPrefix(
      const std::string& prefix) const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// Dumps the shared RPC endpoint's uniform observability surface — every
/// `rpc.*` counter plus every `rpc.*` histogram (count/mean/p50/p99) — in
/// the fixed format bench_faults F1b established, so the benches that adopt
/// it print comparable trajectories.
void printRpcObservability(const Metrics& metrics, std::FILE* out = stdout);

}  // namespace dosn::sim
