// Simulated message network: typed messages between addressable nodes over
// links with configurable latency, jitter and loss. Messages to offline nodes
// are dropped (at delivery time — a node can go offline while a message is in
// flight), matching the availability semantics the DOSN literature assumes.
//
// Hot-path layout (DESIGN.md §3d): message types are interned MessageType
// ids, so per-type traffic counters are flat arrays indexed by id (no string
// hashing per send); payloads are pool-backed PooledBytes; and per-node state
// is stored in columns indexed directly by the densely-assigned NodeAddr —
// a deque of handlers (deque, not vector: a delivery handler may addNode(),
// and deque growth never moves the handler currently executing), a byte
// vector of online flags, and a side table for the rarely-set status hooks.
// A delivery touches one handler row and one flag byte; at 100k+ nodes that
// is the difference between one cache miss per event and three.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "dosn/sim/flat_map.hpp"
#include "dosn/sim/message_type.hpp"
#include "dosn/sim/pool.hpp"
#include "dosn/sim/simulator.hpp"
#include "dosn/util/bytes.hpp"
#include "dosn/util/rng.hpp"

namespace dosn::sim {

class FaultPlan;
class Metrics;

using NodeAddr = std::uint64_t;
inline constexpr NodeAddr kNoAddr = ~NodeAddr{0};

struct Message {
  MessageType type;
  PooledBytes payload;
};

/// Latency distribution of a link: base + uniform jitter, plus loss.
struct LatencyModel {
  SimTime base = 20 * kMillisecond;
  SimTime jitter = 10 * kMillisecond;  // uniform in [0, jitter]
  double lossProbability = 0.0;

  SimTime sample(util::Rng& rng) const;
};

class Network {
 public:
  using Handler = std::function<void(NodeAddr from, const Message& msg)>;
  /// Called when churn (or a test) flips a node online/offline.
  using StatusHook = std::function<void(NodeAddr node, bool online)>;

  Network(Simulator& sim, LatencyModel latency, util::Rng& rng);

  /// Registers a node (online, no handler). Returns its address.
  /// Addresses are dense: 1, 2, 3, ... — the node table is indexed by them.
  NodeAddr addNode();

  void setHandler(NodeAddr node, Handler handler);
  void setStatusHook(NodeAddr node, StatusHook hook);

  /// Registers a network-wide status observer, invoked (after the node's own
  /// StatusHook) whenever any node flips online/offline. Returns a token for
  /// removeStatusObserver. Endpoints use this as the authoritative churn
  /// signal to evict per-peer state for departed nodes.
  std::uint64_t addStatusObserver(StatusHook observer);
  void removeStatusObserver(std::uint64_t token);

  void setOnline(NodeAddr node, bool online);
  bool isOnline(NodeAddr node) const;
  std::size_t nodeCount() const { return handlers_.size(); }
  std::size_t onlineCount() const;

  /// Sends a message. Silently dropped if the sender is offline, the link
  /// loses it, an active fault swallows it, or the receiver is offline at
  /// delivery time.
  void send(NodeAddr from, NodeAddr to, Message msg);

  /// Attaches a fault plan (nullptr detaches). Not owned; must outlive use.
  void setFaultPlan(const FaultPlan* plan) { faults_ = plan; }
  /// Attaches a metrics sink for fault/drop counters (nullptr detaches):
  /// `net.dropped.loss`, `net.dropped.fault`, `net.dropped.offline`,
  /// `net.duplicated`, `net.corrupted`, `net.partitioned`.
  void setMetrics(Metrics* metrics) { metrics_ = metrics; }
  Metrics* metrics() { return metrics_; }

  Simulator& simulator() { return sim_; }
  util::Rng& rng() { return rng_; }

  // Traffic accounting (for the overhead experiments). "Sent" counts every
  // send() by an online sender; "delivered" counts handler invocations, so
  // the two differ by losses, faults and offline receivers (and duplicated
  // messages can be delivered more often than sent).
  std::uint64_t messagesSent() const { return messagesSent_; }
  std::uint64_t messagesDelivered() const { return messagesDelivered_; }
  std::uint64_t messagesDropped() const { return messagesDropped_; }
  std::uint64_t bytesSent() const { return bytesSent_; }
  std::uint64_t bytesDelivered() const { return bytesDelivered_; }

  // String-keyed views over the dense per-type counter arrays, built on
  // demand (name-sorted, zero-count types omitted — exactly what the old
  // std::map-backed counters exposed). The hot path only ever touches the
  // arrays; these views are for printers, tests and JSON artifacts.
  std::map<std::string, std::uint64_t> messagesByType() const;
  std::map<std::string, std::uint64_t> deliveredByType() const;
  /// Dense counter lookups for a single interned type (no map building).
  std::uint64_t sentOfType(MessageType type) const;
  std::uint64_t deliveredOfType(MessageType type) const;

  void resetStats();

 private:
  /// Throws util::NetError unless `node` names a registered node.
  void validate(NodeAddr node) const;
  void count(const char* name);
  void deliver(NodeAddr from, NodeAddr to, SimTime delay, Message msg);

  // The single place each direction of the traffic accounting is updated
  // (send() and deliver() both used to hand-roll these increments).
  void recordSent(const Message& msg);
  void recordDelivered(const Message& msg);
  static void bumpTypeCounter(std::vector<std::uint64_t>& counters,
                              MessageTypeId id);
  static std::map<std::string, std::uint64_t> typeCounterView(
      const std::vector<std::uint64_t>& counters);

  Simulator& sim_;
  LatencyModel latency_;
  util::Rng& rng_;
  const FaultPlan* faults_ = nullptr;
  Metrics* metrics_ = nullptr;
  // Column-per-field node table; NodeAddr a lives at row a - 1.
  std::deque<Handler> handlers_;
  std::vector<std::uint8_t> online_;
  AddrMap<StatusHook> statusHooks_;  // sparse: most nodes never set one
  // Token-keyed (not NodeAddr-keyed) and iterated in ascending token order
  // when fanning out status flips — that order is part of the deterministic
  // trace, so this deliberately stays an ordered map.
  std::map<std::uint64_t, StatusHook> statusObservers_;
  std::uint64_t nextObserverToken_ = 1;

  std::uint64_t messagesSent_ = 0;
  std::uint64_t messagesDelivered_ = 0;
  std::uint64_t messagesDropped_ = 0;
  std::uint64_t bytesSent_ = 0;
  std::uint64_t bytesDelivered_ = 0;
  // Indexed by MessageTypeId, grown on first use of an id.
  std::vector<std::uint64_t> sentByType_;
  std::vector<std::uint64_t> deliveredByType_;
};

}  // namespace dosn::sim
