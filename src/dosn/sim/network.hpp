// Simulated message network: typed messages between addressable nodes over
// links with configurable latency, jitter and loss. Messages to offline nodes
// are dropped (at delivery time — a node can go offline while a message is in
// flight), matching the availability semantics the DOSN literature assumes.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>

#include "dosn/sim/simulator.hpp"
#include "dosn/util/bytes.hpp"
#include "dosn/util/rng.hpp"

namespace dosn::sim {

class FaultPlan;
class Metrics;

using NodeAddr = std::uint64_t;
inline constexpr NodeAddr kNoAddr = ~NodeAddr{0};

struct Message {
  std::string type;
  util::Bytes payload;
};

/// Latency distribution of a link: base + uniform jitter, plus loss.
struct LatencyModel {
  SimTime base = 20 * kMillisecond;
  SimTime jitter = 10 * kMillisecond;  // uniform in [0, jitter]
  double lossProbability = 0.0;

  SimTime sample(util::Rng& rng) const;
};

class Network {
 public:
  using Handler = std::function<void(NodeAddr from, const Message& msg)>;
  /// Called when churn (or a test) flips a node online/offline.
  using StatusHook = std::function<void(NodeAddr node, bool online)>;

  Network(Simulator& sim, LatencyModel latency, util::Rng& rng);

  /// Registers a node (online, no handler). Returns its address.
  NodeAddr addNode();

  void setHandler(NodeAddr node, Handler handler);
  void setStatusHook(NodeAddr node, StatusHook hook);

  /// Registers a network-wide status observer, invoked (after the node's own
  /// StatusHook) whenever any node flips online/offline. Returns a token for
  /// removeStatusObserver. Endpoints use this as the authoritative churn
  /// signal to evict per-peer state for departed nodes.
  std::uint64_t addStatusObserver(StatusHook observer);
  void removeStatusObserver(std::uint64_t token);

  void setOnline(NodeAddr node, bool online);
  bool isOnline(NodeAddr node) const;
  std::size_t nodeCount() const { return nodes_.size(); }
  std::size_t onlineCount() const;

  /// Sends a message. Silently dropped if the sender is offline, the link
  /// loses it, an active fault swallows it, or the receiver is offline at
  /// delivery time.
  void send(NodeAddr from, NodeAddr to, Message msg);

  /// Attaches a fault plan (nullptr detaches). Not owned; must outlive use.
  void setFaultPlan(const FaultPlan* plan) { faults_ = plan; }
  /// Attaches a metrics sink for fault/drop counters (nullptr detaches):
  /// `net.dropped.loss`, `net.dropped.fault`, `net.dropped.offline`,
  /// `net.duplicated`, `net.corrupted`, `net.partitioned`.
  void setMetrics(Metrics* metrics) { metrics_ = metrics; }
  Metrics* metrics() { return metrics_; }

  Simulator& simulator() { return sim_; }
  util::Rng& rng() { return rng_; }

  // Traffic accounting (for the overhead experiments). "Sent" counts every
  // send() by an online sender; "delivered" counts handler invocations, so
  // the two differ by losses, faults and offline receivers (and duplicated
  // messages can be delivered more often than sent).
  std::uint64_t messagesSent() const { return messagesSent_; }
  std::uint64_t messagesDelivered() const { return messagesDelivered_; }
  std::uint64_t messagesDropped() const { return messagesDropped_; }
  std::uint64_t bytesSent() const { return bytesSent_; }
  std::uint64_t bytesDelivered() const { return bytesDelivered_; }
  const std::map<std::string, std::uint64_t>& messagesByType() const {
    return messagesByType_;
  }
  const std::map<std::string, std::uint64_t>& deliveredByType() const {
    return deliveredByType_;
  }
  void resetStats();

 private:
  struct NodeState {
    bool online = true;
    Handler handler;
    StatusHook statusHook;
  };

  NodeState& state(NodeAddr node);
  const NodeState& state(NodeAddr node) const;
  void count(const char* name);
  void deliver(NodeAddr from, NodeAddr to, SimTime delay, Message msg);

  Simulator& sim_;
  LatencyModel latency_;
  util::Rng& rng_;
  const FaultPlan* faults_ = nullptr;
  Metrics* metrics_ = nullptr;
  std::unordered_map<NodeAddr, NodeState> nodes_;
  std::map<std::uint64_t, StatusHook> statusObservers_;
  std::uint64_t nextObserverToken_ = 1;
  NodeAddr nextAddr_ = 1;

  std::uint64_t messagesSent_ = 0;
  std::uint64_t messagesDelivered_ = 0;
  std::uint64_t messagesDropped_ = 0;
  std::uint64_t bytesSent_ = 0;
  std::uint64_t bytesDelivered_ = 0;
  std::map<std::string, std::uint64_t> messagesByType_;
  std::map<std::string, std::uint64_t> deliveredByType_;
};

}  // namespace dosn::sim
