// Calendar (bucketed) event queue for the simulator (DESIGN.md §3d).
//
// The simulator used one std::priority_queue over every pending event: each
// push/pop paid O(log n) comparisons over a heap spanning wildly different
// horizons (20–30 ms deliveries interleaved with 60 s churn timers). The
// calendar queue splits pending events into three partitions by virtual
// time, so the hot near-future traffic sorts only against its own bucket:
//
//   early    — events before the current window (binary heap; only
//              reachable after runUntil() jumps `now` forward and a rebase
//              has moved the window past it)
//   ring     — kBucketCount buckets of kBucketWidth µs each, covering the
//              static window [windowStart, windowStart + span); one small
//              binary heap per bucket
//   overflow — events at or beyond the window end (binary heap)
//
// Ordering invariant: every early event precedes every ring event precedes
// every overflow event in virtual time (buckets never straddle a partition
// boundary), so pop() never compares across partitions. Within a partition,
// heaps order by (when, seq) — EXACTLY the comparator the old priority
// queue used — so same-timestamp events still pop in scheduling (FIFO)
// order and the replacement is pop-for-pop identical (test_event_queue
// differentially checks this against a reference std::priority_queue).
//
// The window is STATIC: windowStart moves only in rebase(), and rebase()
// runs only when early and ring are both empty, pulling the overflow prefix
// into a fresh window. The cursor's march through ring buckets never moves
// the window — that is what makes "pushed behind the cursor" (delay-0
// events, arbitrary property-test interleavings) safe: push just drags the
// cursor back.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "dosn/sim/pool.hpp"

namespace dosn::sim {

/// Virtual time in microseconds (mirrors simulator.hpp; kept header-light).
using SimTime = std::uint64_t;

struct Event {
  SimTime when;
  std::uint64_t seq;
  EventClosure fn;
};

class EventQueue {
 public:
  // 1024 µs buckets x 4096 buckets = a ~4.2 s window. Swept empirically on
  // the S1 workload: finer buckets lose more to cache footprint than they
  // gain in shorter per-bucket heaps.
  static constexpr unsigned kBucketShift = 10;
  static constexpr SimTime kBucketWidth = SimTime{1} << kBucketShift;
  static constexpr std::size_t kBucketCount = 4096;

  void push(Event e);
  /// Removes and returns the minimum event by (when, seq). Precondition:
  /// !empty().
  Event pop();
  /// The minimum pending `when` (what runUntil peeks). Precondition:
  /// !empty().
  SimTime nextTime();

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Best-effort cache warm-up: prefetches the NEXT event's closure block
  /// while the current event executes. The block was written when its event
  /// was scheduled — thousands of events ago — so it is essentially always
  /// cold, and the handler running in between gives the lines time to
  /// arrive. Purely a hint; never affects ordering. (A push during the
  /// current event can still preempt the prefetched event; that only wastes
  /// the hint.)
  void prefetchNext() {
    if (size_ == 0) return;
    const char* p = static_cast<const char*>(locate().front().fn.block());
    if (!p) return;
    __builtin_prefetch(p);
    __builtin_prefetch(p + 64);
    __builtin_prefetch(p + 128);
  }

  // Introspection for tests and bench_scale.
  std::size_t ringSize() const { return ringSize_; }
  std::size_t earlySize() const { return early_.size(); }
  std::size_t overflowSize() const { return overflow_.size(); }
  /// Absolute bucket number the window starts at.
  std::uint64_t windowStartBucket() const { return windowStartBucket_; }

 private:
  using Heap = std::vector<Event>;  // binary min-heap via std::*_heap

  static std::uint64_t bucketOf(SimTime when) { return when >> kBucketShift; }
  static void heapPush(Heap& heap, Event e);
  static Event heapPop(Heap& heap);

  /// Normalizes state (rebases if the ring and early heap are drained,
  /// advances the cursor past empty buckets) and returns the heap holding
  /// the global minimum. Precondition: !empty().
  Heap& locate();
  /// Moves the window to start at the overflow minimum's bucket and pulls
  /// every overflow event that fits the new window into the ring.
  /// Precondition: early, ring empty; overflow non-empty.
  void rebase();

  std::array<Heap, kBucketCount> ring_;
  Heap early_;
  Heap overflow_;
  std::uint64_t windowStartBucket_ = 0;  // absolute; moves only in rebase()
  std::uint64_t cursorBucket_ = 0;       // absolute; min possibly-occupied
  std::size_t ringSize_ = 0;
  std::size_t size_ = 0;
};

}  // namespace dosn::sim
