// Deterministic random number generation. Every random choice in the library
// (key generation, simulator jitter, workload generation) flows through Rng so
// that tests and experiments are reproducible under a fixed seed.
//
// The generator is xoshiro256** seeded via splitmix64. It is NOT a CSPRNG;
// this whole repository is a reproduction/simulation codebase (see DESIGN.md
// "simulation-grade crypto notice").
#pragma once

#include <array>
#include <cstdint>

#include "dosn/util/bytes.hpp"

namespace dosn::util {

class Rng {
 public:
  /// Seeds deterministically from a 64-bit value.
  explicit Rng(std::uint64_t seed = 0xd05adefau);

  /// Next raw 64-bit output.
  std::uint64_t next();

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double uniformReal();

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Normally distributed value (Box-Muller).
  double normal(double mean, double stddev);

  /// Bernoulli trial.
  bool chance(double probability);

  /// Fills a buffer with random bytes.
  void fill(std::uint8_t* out, std::size_t len);

  /// Fresh random byte buffer of the given length.
  Bytes bytes(std::size_t len);

  /// Fisher-Yates shuffle of any random-access container.
  template <typename Container>
  void shuffle(Container& c) {
    if (c.size() < 2) return;
    for (std::size_t i = c.size() - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform(i + 1));
      using std::swap;
      swap(c[i], c[j]);
    }
  }

  /// Zipf-distributed rank in [0, n) with exponent s (s=0 -> uniform).
  /// Uses the rejection-free inverse-CDF over precomputation-less harmonic
  /// approximation; adequate for workload generation.
  std::size_t zipf(std::size_t n, double s);

 private:
  std::array<std::uint64_t, 4> state_{};
  // uniform() rejection limits, memoized for the last two bounds. Simulator
  // hot paths alternate between the same couple of bounds (jitter span, node
  // count) millions of times; caching the limits removes one 64-bit division
  // per draw without changing a single output value.
  std::uint64_t lastBound_[2] = {0, 0};
  std::uint64_t lastLimit_[2] = {0, 0};
};

/// Process-wide RNG used when callers don't thread their own through.
Rng& globalRng();

}  // namespace dosn::util
