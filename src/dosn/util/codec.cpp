#include "dosn/util/codec.hpp"

namespace dosn::util {

void Writer::u8(std::uint8_t v) { buf_.push_back(v); }

void Writer::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::boolean(bool v) { u8(v ? 1 : 0); }

void Writer::bytes(BytesView data) {
  u32(static_cast<std::uint32_t>(data.size()));
  raw(data);
}

void Writer::str(std::string_view text) {
  u32(static_cast<std::uint32_t>(text.size()));
  buf_.insert(buf_.end(), text.begin(), text.end());
}

void Writer::raw(BytesView data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void Reader::need(std::size_t n) const {
  if (remaining() < n) throw CodecError("Reader: truncated input");
}

std::uint8_t Reader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t Reader::u16() {
  need(2);
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i) v |= static_cast<std::uint16_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  return v;
}

bool Reader::boolean() {
  const std::uint8_t v = u8();
  if (v > 1) throw CodecError("Reader: invalid boolean");
  return v == 1;
}

Bytes Reader::bytes() {
  const std::uint32_t n = u32();
  return raw(n);
}

std::string Reader::str() {
  const std::uint32_t n = u32();
  need(n);
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return out;
}

Bytes Reader::raw(std::size_t n) {
  need(n);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

void Reader::expectEnd() const {
  if (!atEnd()) throw CodecError("Reader: trailing bytes");
}

}  // namespace dosn::util
